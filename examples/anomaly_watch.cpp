// Route anomaly detection with intent labels — use case (3) from §1 of the
// paper: "whether a route is anomalous (e.g., sudden absence of information
// communities)".
//
// Compares two RIB snapshots of the same collector (base day vs. a churn
// day), classifies every community, and flags per-prefix anomalies:
//   - a vantage point's route LOST its information communities entirely
//     (possible path hijack or community-stripping change upstream), and
//   - a route GAINED action communities it did not carry before
//     (someone started steering that prefix).
//
// Two classification backends:
//   anomaly_watch               — in-process batch Pipeline (default)
//   anomaly_watch <host>:<port> — a running daemon: the tuples are
//     streamed over INGEST, then labels arrive in one SUBSCRIBE snapshot
//     round (stream-mode daemons, docs/STREAMING.md).  Classic daemons
//     answer ERR to SUBSCRIBE and the watcher falls back to per-community
//     LABEL polling, so several watchers can share either kind of
//     long-lived classifier.
//
// A third mode watches live label transitions and survives daemon
// restarts (the CommunityWatch use case a journaled daemon enables):
//   anomaly_watch <host>:<port> watch [N] — SUBSCRIBE to the event
//     stream and print label-change transitions until N events were seen
//     (0 = forever).  On connection loss the watcher reconnects with
//     Client::connect_with_retry and re-SUBSCRIBEs `from=<last seen
//     seq>`; a daemon recovered from its journal resumes the sequence
//     gap-free, and when the resume point is genuinely gone (no journal,
//     or the ring trimmed past it) the daemon answers with a fresh
//     snapshot block that rebuilds the label cache before events resume.
#include <cstdio>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>

#include "core/pipeline.hpp"
#include "dict/intent.hpp"
#include "routing/scenario.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "util/strings.hpp"

using namespace bgpintent;

namespace {

using RouteKey = std::pair<bgp::Prefix, bgp::Asn>;  // (prefix, vantage point)
using Labeler = std::function<dict::Intent(bgp::Community)>;

std::map<RouteKey, std::set<bgp::Community>> index_routes(
    const std::vector<bgp::RibEntry>& entries) {
  std::map<RouteKey, std::set<bgp::Community>> by_route;
  for (const auto& entry : entries)
    by_route[{entry.route.prefix, entry.vantage_point.asn}] =
        std::set<bgp::Community>(entry.route.communities.begin(),
                                 entry.route.communities.end());
  return by_route;
}

// Streams the tuples to a serve daemon over INGEST.
void stream_observations(serve::Client& client,
                         const std::vector<bgp::RibEntry>& entries) {
  std::size_t sent = 0;
  std::size_t skipped = 0;
  for (const auto& entry : entries) {
    if (entry.route.communities.empty()) continue;
    // The wire form carries pure AS_SEQUENCE paths only.
    if (!serve::format_path(entry.route.path)) {
      ++skipped;
      continue;
    }
    client.ingest(entry.route.path, entry.route.communities);
    ++sent;
  }
  std::printf("streamed %zu observations to the daemon (%zu skipped)\n",
              sent, skipped);
}

// Labels from the daemon.  One "SUBSCRIBE snapshot" round trip fetches
// every current label at once from a stream-mode daemon; a classic daemon
// answers ERR and the labeler falls back to memoised per-community LABEL
// polling on the same connection (SUBSCRIBE only upgrades to a push
// stream on an OK response).
Labeler remote_labeler(serve::Client& client) {
  auto cache = std::make_shared<std::map<bgp::Community, dict::Intent>>();
  bool snapshot = false;
  try {
    client.send_line("SUBSCRIBE snapshot");
    auto line = client.read_line(10000);
    if (line && util::starts_with(*line, "OK")) {
      snapshot = true;
      while ((line = client.read_line(10000))) {
        if (util::starts_with(*line, "END")) break;
        // DATA community=<a:b> label=<l>
        std::optional<bgp::Community> community;
        std::optional<dict::Intent> intent;
        for (const auto field : util::split_whitespace(*line)) {
          if (field.starts_with("community="))
            community = bgp::Community::parse(field.substr(10));
          else if (field.starts_with("label="))
            intent = dict::parse_intent(field.substr(6));
        }
        if (community && intent) cache->emplace(*community, *intent);
      }
      std::printf("fetched %zu labels in one SUBSCRIBE snapshot\n",
                  cache->size());
    }
  } catch (const serve::ServeError&) {
    snapshot = false;  // treat a dropped probe like a classic daemon
  }
  if (snapshot) {
    return [cache](bgp::Community community) {
      const auto it = cache->find(community);
      return it == cache->end() ? dict::Intent::kUnclassified : it->second;
    };
  }
  std::printf("daemon has no event stream; polling labels over LABEL\n");
  return [&client, cache](bgp::Community community) {
    const auto it = cache->find(community);
    if (it != cache->end()) return it->second;
    const dict::Intent intent = client.label(community);
    cache->emplace(community, intent);
    return intent;
  };
}

// Live transition watcher: the restart-surviving SUBSCRIBE loop.  Exits
// after `max_events` transitions (0 = run until the connection budget is
// spent).  Every reconnect resumes `from=<last seen seq>`; the daemon
// decides whether that is servable as a delta (journaled restart) or
// needs a snapshot resync (lost resume point), and the watcher handles
// both answers.
int watch_daemon(const std::string& host, std::uint16_t port,
                 std::uint64_t max_events) {
  std::uint64_t last_seq = 0;
  bool have_seq = false;
  std::uint64_t seen = 0;
  std::map<bgp::Community, dict::Intent> labels;
  bool in_snapshot = false;

  for (;;) {
    std::optional<serve::Client> client;
    try {
      client = serve::Client::connect_with_retry(host, port);
    } catch (const serve::ServeError& e) {
      std::fprintf(stderr, "error: daemon unreachable: %s\n", e.what());
      return 1;
    }
    try {
      client->send_line(have_seq
                            ? util::format("SUBSCRIBE from=%llu",
                                           static_cast<unsigned long long>(
                                               last_seq))
                            : std::string("SUBSCRIBE snapshot"));
      auto line = client->read_line(10000);
      if (!line || !util::starts_with(*line, "OK subscribed")) {
        std::fprintf(stderr, "error: SUBSCRIBE rejected: %s\n",
                     line ? line->c_str() : "(timeout)");
        return 1;
      }
      if (have_seq)
        std::printf("resubscribed from=%llu\n",
                    static_cast<unsigned long long>(last_seq));
      while ((line = client->read_line(/*timeout_ms=*/-1))) {
        if (util::starts_with(*line, "ERR lagged")) {
          // Dropped as a laggard: the resume point is stale, so the next
          // SUBSCRIBE from= will be answered with a snapshot resync.
          std::printf("dropped as laggard; reconnecting\n");
          break;
        }
        if (util::starts_with(*line, "DATA ")) {
          // First DATA line of a resync block: the delta we asked for is
          // gone, start the cache over from the fresh snapshot.
          if (!in_snapshot) {
            in_snapshot = true;
            labels.clear();
          }
          std::optional<bgp::Community> community;
          std::optional<dict::Intent> intent;
          for (const auto field : util::split_whitespace(*line)) {
            if (field.starts_with("community="))
              community = bgp::Community::parse(field.substr(10));
            else if (field.starts_with("label="))
              intent = dict::parse_intent(field.substr(6));
          }
          if (community && intent) labels[*community] = *intent;
          continue;
        }
        if (util::starts_with(*line, "END snapshot seq=")) {
          in_snapshot = false;
          if (const auto seq = util::parse_u64(
                  std::string_view(*line).substr(17))) {
            last_seq = *seq;
            have_seq = true;
          }
          std::printf("snapshot resync: %zu labels, seq=%llu\n",
                      labels.size(),
                      static_cast<unsigned long long>(last_seq));
          continue;
        }
        if (util::starts_with(*line, "EVENT ")) {
          std::optional<std::uint64_t> seq;
          std::optional<bgp::Community> community;
          for (const auto field : util::split_whitespace(*line)) {
            if (field.starts_with("seq="))
              seq = util::parse_u64(field.substr(4));
            else if (field.starts_with("community="))
              community = bgp::Community::parse(field.substr(10));
          }
          if (seq) {
            last_seq = *seq;
            have_seq = true;
          }
          std::printf("%s\n", line->c_str());
          if (community) {
            // Keep the cache current so a resync diff stays meaningful.
            for (const auto field : util::split_whitespace(*line))
              if (field.starts_with("new="))
                if (const auto intent = dict::parse_intent(field.substr(4)))
                  labels[*community] = *intent;
          }
          if (max_events > 0 && ++seen >= max_events) {
            std::printf("saw %llu events; done\n",
                        static_cast<unsigned long long>(seen));
            return 0;
          }
        }
      }
    } catch (const serve::ServeError&) {
      // Connection dropped mid-stream: the daemon crashed or restarted.
      // Loop around: connect_with_retry rides out the restart window and
      // the re-SUBSCRIBE resumes from last_seq.
      std::printf("connection lost at seq=%llu; reconnecting\n",
                  static_cast<unsigned long long>(last_seq));
      in_snapshot = false;
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  routing::ScenarioConfig cfg;
  cfg.topology.seed = 99;
  cfg.topology.tier1_count = 6;
  cfg.topology.tier2_count = 30;
  cfg.topology.stub_count = 200;
  cfg.vantage_point_count = 30;
  cfg.day_churn = 0.4;
  const auto scenario = routing::Scenario::build(cfg);

  const auto before = scenario.day_entries(0);
  auto after = scenario.day_entries(1);

  // Fault injection for the demo: overnight, the upstream of a handful of
  // prefixes starts stripping all communities (a real failure mode the
  // intent labels let us notice).
  std::set<bgp::Prefix> stripped;
  for (const auto& entry : before) {
    if (stripped.size() >= 4) break;
    if (entry.route.communities.size() >= 2)
      stripped.insert(entry.route.prefix);
  }
  for (auto& entry : after)
    if (stripped.contains(entry.route.prefix)) entry.route.communities.clear();

  // Classify once over both days (more data, stabler labels).
  std::vector<bgp::RibEntry> combined = before;
  combined.insert(combined.end(), after.begin(), after.end());

  Labeler label_of;
  std::size_t information_count = 0;
  std::size_t action_count = 0;
  std::optional<core::PipelineResult> batch;  // kept alive for the labeler
  std::optional<serve::Client> client;        // likewise, daemon mode

  if (argc > 1) {
    const std::string target = argv[1];
    const auto colon = target.rfind(':');
    const auto port = colon == std::string::npos
                          ? std::nullopt
                          : util::parse_u64(target.substr(colon + 1));
    if (!port || *port > 65535) {
      std::fprintf(stderr, "usage: %s [host:port [watch [events]]]\n",
                   argv[0]);
      return 2;
    }
    if (argc > 2 && std::string(argv[2]) == "watch") {
      std::uint64_t max_events = 0;
      if (argc > 3) {
        const auto parsed = util::parse_u64(argv[3]);
        if (!parsed) {
          std::fprintf(stderr, "usage: %s host:port watch [events]\n",
                       argv[0]);
          return 2;
        }
        max_events = *parsed;
      }
      return watch_daemon(target.substr(0, colon),
                          static_cast<std::uint16_t>(*port), max_events);
    }
    try {
      // Retry with backoff so the watcher survives the daemon's startup
      // window or a quick restart (serve/client.hpp RetryPolicy).
      client = serve::Client::connect_with_retry(
          target.substr(0, colon), static_cast<std::uint16_t>(*port));
      stream_observations(*client, combined);
      // TOTALS must precede the SUBSCRIBE probe: an OK response upgrades
      // the connection to a push stream with no request/response left.
      const auto totals = client->totals();
      information_count = totals.information;
      action_count = totals.action;
      label_of = remote_labeler(*client);
    } catch (const serve::ServeError& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
  } else {
    core::Pipeline pipeline;
    pipeline.set_org_map(&scenario.topology().orgs);
    batch = pipeline.run(combined);
    label_of = [&batch](bgp::Community community) {
      return batch->inference.label_of(community);
    };
    information_count = batch->inference.information_count;
    action_count = batch->inference.action_count;
  }

  std::printf("labels from %zu entries: %zu information / %zu action\n\n",
              combined.size(), information_count, action_count);

  const auto routes_before = index_routes(before);
  const auto routes_after = index_routes(after);

  std::size_t lost_info = 0;
  std::size_t gained_action = 0;
  for (const auto& [key, communities_after] : routes_after) {
    const auto it = routes_before.find(key);
    if (it == routes_before.end()) continue;
    const auto& communities_before = it->second;

    auto count_of = [&label_of](const std::set<bgp::Community>& communities,
                                dict::Intent intent) {
      std::size_t n = 0;
      for (const bgp::Community community : communities)
        if (label_of(community) == intent) ++n;
      return n;
    };
    const std::size_t info_before =
        count_of(communities_before, dict::Intent::kInformation);
    const std::size_t info_after =
        count_of(communities_after, dict::Intent::kInformation);
    if (info_before >= 2 && info_after == 0) {
      if (++lost_info <= 5)
        std::printf("ANOMALY  %s @ vp %u: %zu information communities "
                    "disappeared\n",
                    key.first.to_string().c_str(), key.second, info_before);
    }
    std::size_t new_actions = 0;
    for (const bgp::Community community : communities_after)
      if (!communities_before.contains(community) &&
          label_of(community) == dict::Intent::kAction)
        ++new_actions;
    if (new_actions > 0) {
      if (++gained_action <= 5)
        std::printf("steering %s @ vp %u: %zu new action communities "
                    "attached\n",
                    key.first.to_string().c_str(), key.second, new_actions);
    }
  }
  std::printf("\nsummary: %zu routes lost all information communities, "
              "%zu routes gained action communities\n",
              lost_info, gained_action);
  return 0;
}
