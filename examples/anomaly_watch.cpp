// Route anomaly detection with intent labels — use case (3) from §1 of the
// paper: "whether a route is anomalous (e.g., sudden absence of information
// communities)".
//
// Compares two RIB snapshots of the same collector (base day vs. a churn
// day), classifies every community once over the combined data, and flags
// per-prefix anomalies:
//   - a vantage point's route LOST its information communities entirely
//     (possible path hijack or community-stripping change upstream), and
//   - a route GAINED action communities it did not carry before
//     (someone started steering that prefix).
#include <cstdio>
#include <map>
#include <set>

#include "core/pipeline.hpp"
#include "routing/scenario.hpp"

using namespace bgpintent;

namespace {

using RouteKey = std::pair<bgp::Prefix, bgp::Asn>;  // (prefix, vantage point)

std::map<RouteKey, std::set<bgp::Community>> index_routes(
    const std::vector<bgp::RibEntry>& entries) {
  std::map<RouteKey, std::set<bgp::Community>> by_route;
  for (const auto& entry : entries)
    by_route[{entry.route.prefix, entry.vantage_point.asn}] =
        std::set<bgp::Community>(entry.route.communities.begin(),
                                 entry.route.communities.end());
  return by_route;
}

}  // namespace

int main() {
  routing::ScenarioConfig cfg;
  cfg.topology.seed = 99;
  cfg.topology.tier1_count = 6;
  cfg.topology.tier2_count = 30;
  cfg.topology.stub_count = 200;
  cfg.vantage_point_count = 30;
  cfg.day_churn = 0.4;
  const auto scenario = routing::Scenario::build(cfg);

  const auto before = scenario.day_entries(0);
  auto after = scenario.day_entries(1);

  // Fault injection for the demo: overnight, the upstream of a handful of
  // prefixes starts stripping all communities (a real failure mode the
  // intent labels let us notice).
  std::set<bgp::Prefix> stripped;
  for (const auto& entry : before) {
    if (stripped.size() >= 4) break;
    if (entry.route.communities.size() >= 2)
      stripped.insert(entry.route.prefix);
  }
  for (auto& entry : after)
    if (stripped.contains(entry.route.prefix)) entry.route.communities.clear();

  // Classify once over both days (more data, stabler labels).
  std::vector<bgp::RibEntry> combined = before;
  combined.insert(combined.end(), after.begin(), after.end());
  core::Pipeline pipeline;
  pipeline.set_org_map(&scenario.topology().orgs);
  const auto result = pipeline.run(combined);
  std::printf("labels from %zu entries: %zu information / %zu action\n\n",
              combined.size(), result.inference.information_count,
              result.inference.action_count);

  const auto routes_before = index_routes(before);
  const auto routes_after = index_routes(after);

  std::size_t lost_info = 0;
  std::size_t gained_action = 0;
  for (const auto& [key, communities_after] : routes_after) {
    const auto it = routes_before.find(key);
    if (it == routes_before.end()) continue;
    const auto& communities_before = it->second;

    auto count_of = [&result](const std::set<bgp::Community>& communities,
                              dict::Intent intent) {
      std::size_t n = 0;
      for (const bgp::Community community : communities)
        if (result.inference.label_of(community) == intent) ++n;
      return n;
    };
    const std::size_t info_before =
        count_of(communities_before, dict::Intent::kInformation);
    const std::size_t info_after =
        count_of(communities_after, dict::Intent::kInformation);
    if (info_before >= 2 && info_after == 0) {
      if (++lost_info <= 5)
        std::printf("ANOMALY  %s @ vp %u: %zu information communities "
                    "disappeared\n",
                    key.first.to_string().c_str(), key.second, info_before);
    }
    std::size_t new_actions = 0;
    for (const bgp::Community community : communities_after)
      if (!communities_before.contains(community) &&
          result.inference.label_of(community) == dict::Intent::kAction)
        ++new_actions;
    if (new_actions > 0) {
      if (++gained_action <= 5)
        std::printf("steering %s @ vp %u: %zu new action communities "
                    "attached\n",
                    key.first.to_string().c_str(), key.second, new_actions);
    }
  }
  std::printf("\nsummary: %zu routes lost all information communities, "
              "%zu routes gained action communities\n",
              lost_info, gained_action);
  return 0;
}
