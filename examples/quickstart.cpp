// Quickstart: infer BGP community intent from observed routes.
//
// This is the smallest end-to-end use of the library:
//   1. get BGP observations (here: a small simulated Internet; in
//      production: RIB entries parsed from RouteViews MRT files),
//   2. run the inference pipeline,
//   3. look up per-community labels.
//
// Build & run:  ./examples/quickstart
#include <cstdio>

#include "core/pipeline.hpp"
#include "routing/scenario.hpp"

using namespace bgpintent;

int main() {
  // 1. Observations: a deterministic synthetic Internet with ~230 ASes.
  routing::ScenarioConfig cfg;
  cfg.topology.seed = 7;
  cfg.topology.tier1_count = 6;
  cfg.topology.tier2_count = 30;
  cfg.topology.stub_count = 200;
  cfg.vantage_point_count = 40;
  const auto scenario = routing::Scenario::build(cfg);
  const auto entries = scenario.entries();
  std::printf("observed %zu RIB entries from %zu vantage points\n",
              entries.size(), scenario.vantage_points().size());

  // 2. Inference: cluster each AS's community values and classify the
  //    clusters by their on-path:off-path ratio (gap 140, threshold 160:1).
  core::Pipeline pipeline;
  pipeline.set_org_map(&scenario.topology().orgs);  // sibling-aware matching
  const auto result = pipeline.run(entries);
  std::printf("classified %zu communities: %zu information, %zu action\n",
              result.inference.classified_count(),
              result.inference.information_count,
              result.inference.action_count);

  // 3. Use the labels: print the first few communities of each kind.
  int shown_info = 0;
  int shown_action = 0;
  for (const auto& stats : result.observations.all()) {
    const auto intent = result.inference.label_of(stats.community);
    if (intent == dict::Intent::kInformation && shown_info < 3) {
      std::printf("  %-12s -> information (on-path %zu, off-path %zu)\n",
                  stats.community.to_string().c_str(), stats.on_path_paths,
                  stats.off_path_paths);
      ++shown_info;
    } else if (intent == dict::Intent::kAction && shown_action < 3) {
      std::printf("  %-12s -> action      (on-path %zu, off-path %zu)\n",
                  stats.community.to_string().c_str(), stats.on_path_paths,
                  stats.off_path_paths);
      ++shown_action;
    }
    if (shown_info >= 3 && shown_action >= 3) break;
  }

  // Because this is a simulation, ground truth exists; score against it.
  const auto eval = result.score(scenario.ground_truth());
  std::printf("accuracy vs ground-truth dictionaries: %.1f%% over %zu labeled "
              "communities\n",
              eval.accuracy() * 100.0, eval.classified);
  return 0;
}
