// Infer community intent from an MRT file — the production workflow.
//
//   ./examples/infer_from_mrt [rib.mrt]
//
// With an argument: parses the given (uncompressed) MRT file — a
// TABLE_DUMP_V2 RIB dump and/or BGP4MP updates, e.g. a decompressed
// RouteViews "rib.YYYYMMDD.HHMM" — runs the inference, and writes a CSV of
// per-community labels to stdout.
//
// Without an argument: demonstrates the same flow end-to-end by first
// *writing* an MRT snapshot of a simulated collector to a temporary file,
// then treating that file as the input.
#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/pipeline.hpp"
#include "mrt/mrt_file.hpp"
#include "routing/scenario.hpp"
#include "util/csv.hpp"

#include <iostream>

using namespace bgpintent;

namespace {

void write_sample_mrt(const std::string& path) {
  routing::ScenarioConfig cfg;
  cfg.topology.seed = 20230501;
  cfg.topology.tier1_count = 6;
  cfg.topology.tier2_count = 30;
  cfg.topology.stub_count = 150;
  cfg.vantage_point_count = 30;
  const auto scenario = routing::Scenario::build(cfg);
  std::ofstream out(path, std::ios::binary);
  mrt::MrtWriter writer(out);
  writer.write_rib_snapshot(scenario.entries(), 0x7f000001, 1682899200);
  std::fprintf(stderr, "wrote sample MRT snapshot to %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  if (argc > 1) {
    path = argv[1];
  } else {
    path = "/tmp/bgpintent_sample_rib.mrt";
    write_sample_mrt(path);
  }

  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "error: cannot open %s\n", path.c_str());
    return 1;
  }

  core::Pipeline pipeline;
  core::PipelineResult result;
  try {
    result = pipeline.run_mrt(in);
  } catch (const mrt::MrtError& error) {
    std::fprintf(stderr, "error: malformed MRT input: %s\n", error.what());
    return 1;
  }

  std::fprintf(stderr,
               "parsed %zu unique paths, %zu communities; classified %zu "
               "(%zu information / %zu action), excluded %zu\n",
               result.observations.unique_path_count(),
               result.observations.community_count(),
               result.inference.classified_count(),
               result.inference.information_count,
               result.inference.action_count,
               result.inference.excluded_private +
                   result.inference.excluded_never_on_path);

  // CSV of inferences to stdout.
  util::CsvWriter csv(std::cout);
  csv.write_row({"community", "intent", "on_path_paths", "off_path_paths"});
  for (const auto& stats : result.observations.all()) {
    const auto intent = result.inference.label_of(stats.community);
    csv.write_row({stats.community.to_string(),
                   std::string(dict::to_string(intent)),
                   std::to_string(stats.on_path_paths),
                   std::to_string(stats.off_path_paths)});
  }
  return 0;
}
