// Looking-glass style route annotation: interpret the communities on a
// route using the built-in dictionary of documented values (RFC well-known
// communities + Arelion's published dictionary, as described in the paper).
//
//   ./examples/dictionary_explorer                 # annotate demo routes
//   ./examples/dictionary_explorer 1299:2569 ...   # look up specific values
#include <cstdio>

#include "dict/builtin.hpp"

using namespace bgpintent;

namespace {

void annotate(const dict::DictionaryStore& store, bgp::Community community) {
  const dict::DictEntry* entry = store.lookup(community);
  if (entry == nullptr) {
    std::printf("  %-12s  (undocumented — run the inference pipeline for a "
                "coarse label)\n",
                community.to_string().c_str());
    return;
  }
  std::printf("  %-12s  %-11s  %-20s  %s\n", community.to_string().c_str(),
              std::string(dict::to_string(entry->intent())).c_str(),
              std::string(dict::to_string(entry->category)).c_str(),
              entry->description.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const dict::DictionaryStore store = dict::builtin_dictionary();
  std::printf("built-in dictionary: %zu ASes, %zu entries\n\n",
              store.as_count(), store.entry_count());

  if (argc > 1) {
    for (int i = 1; i < argc; ++i) {
      const auto community = bgp::Community::parse(argv[i]);
      if (!community) {
        std::fprintf(stderr, "error: '%s' is not alpha:beta\n", argv[i]);
        return 1;
      }
      annotate(store, *community);
    }
    return 0;
  }

  // Demo: the route from Figure 1 of the paper, as a collector would see it.
  struct DemoRoute {
    const char* description;
    const char* path;
    std::vector<bgp::Community> communities;
  };
  const std::vector<DemoRoute> routes{
      {"192.0.2.0/24 via Arelion (Figure 1 of the paper)",
       "65269 7018 1299 64496",
       {bgp::Community(1299, 2569), bgp::Community(1299, 35130)}},
      {"203.0.113.0/24 blackholed at origin's request",
       "65269 1299 64497",
       {bgp::kBlackhole, bgp::Community(1299, 666)}},
      {"198.51.100.0/24 with ROV state and graceful shutdown",
       "65269 1299 64498",
       {bgp::Community(1299, 430), bgp::kGracefulShutdown}},
  };
  for (const auto& route : routes) {
    std::printf("route: %s\n  AS path: %s\n", route.description, route.path);
    for (const bgp::Community community : route.communities)
      annotate(store, community);
    std::printf("\n");
  }
  return 0;
}
