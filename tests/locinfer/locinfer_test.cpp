#include "locinfer/locinfer.hpp"

#include <gtest/gtest.h>

#include "core/pipeline.hpp"
#include "routing/scenario.hpp"

namespace bgpintent::locinfer {
namespace {

bgp::RibEntry entry(std::uint32_t vp, std::vector<bgp::Asn> path,
                    std::vector<Community> communities) {
  bgp::RibEntry e;
  e.vantage_point.asn = vp;
  e.vantage_point.address = vp;
  e.route.prefix = *bgp::Prefix::parse("10.0.0.0/24");
  e.route.path = bgp::AsPath(std::move(path));
  e.route.communities = std::move(communities);
  return e;
}

const LocationInference* find(const std::vector<LocationInference>& all,
                              Community c) {
  for (const auto& inference : all)
    if (inference.community == c) return &inference;
  return nullptr;
}

TEST(InferLocations, ConcentratedIngressIsLocation) {
  // Geo tag 100:20000 always enters AS 100 via neighbor 201; AS 100 has
  // many other successors (via other communities' routes).
  std::vector<bgp::RibEntry> entries;
  const Community geo(100, 20000);
  const Community broad(100, 45000);
  for (bgp::Asn origin = 201; origin <= 208; ++origin)
    entries.push_back(
        entry(60000 + origin, {60000, 100, origin}, {broad}));
  entries.push_back(entry(61001, {61001, 100, 201}, {geo, broad}));
  entries.push_back(entry(61002, {61002, 100, 201, 301}, {geo, broad}));

  const auto inferences = infer_locations(entries);
  const auto* geo_result = find(inferences, geo);
  ASSERT_NE(geo_result, nullptr);
  EXPECT_TRUE(geo_result->inferred_location);
  EXPECT_EQ(geo_result->distinct_successors, 1u);
  const auto* broad_result = find(inferences, broad);
  ASSERT_NE(broad_result, nullptr);
  EXPECT_FALSE(broad_result->inferred_location);
  EXPECT_EQ(broad_result->distinct_successors, 8u);
}

TEST(InferLocations, MinSupportRespected) {
  std::vector<bgp::RibEntry> entries;
  const Community geo(100, 20000);
  // Give alpha plenty of successors so the fraction test could pass.
  for (bgp::Asn origin = 201; origin <= 208; ++origin)
    entries.push_back(entry(60000 + origin, {60000, 100, origin},
                            {Community(100, 45000)}));
  entries.push_back(entry(61001, {61001, 100, 201}, {geo}));  // support 1
  const auto inferences = infer_locations(entries);
  EXPECT_FALSE(find(inferences, geo)->inferred_location);
}

TEST(InferLocations, OffPathCommunitiesIgnored) {
  std::vector<bgp::RibEntry> entries;
  const Community c(999, 2569);  // 999 never on path
  entries.push_back(entry(61001, {61001, 100, 201}, {c}));
  entries.push_back(entry(61002, {61002, 100, 202}, {c}));
  const auto inferences = infer_locations(entries);
  EXPECT_EQ(find(inferences, c), nullptr);
}

TEST(InferLocations, TrafficEngineeringFalsePositive) {
  // A TE action community attached by a single customer of AS 100 looks
  // exactly like a location tag to the baseline — the published failure
  // mode this experiment is about.
  std::vector<bgp::RibEntry> entries;
  const Community te(100, 2569);
  for (bgp::Asn origin = 201; origin <= 208; ++origin)
    entries.push_back(entry(60000 + origin, {60000, 100, origin},
                            {Community(100, 45000)}));
  entries.push_back(entry(61001, {61001, 100, 205}, {te}));
  entries.push_back(entry(61002, {61002, 100, 205}, {te}));
  const auto inferences = infer_locations(entries);
  ASSERT_NE(find(inferences, te), nullptr);
  EXPECT_TRUE(find(inferences, te)->inferred_location);
}

TEST(Table1Class, CategoryMapping) {
  EXPECT_EQ(table1_class(dict::Category::kLocationCity),
            Table1Class::kGeolocation);
  EXPECT_EQ(table1_class(dict::Category::kLocationRegion),
            Table1Class::kGeolocation);
  EXPECT_EQ(table1_class(dict::Category::kPrepend),
            Table1Class::kTrafficEngineering);
  EXPECT_EQ(table1_class(dict::Category::kSuppressToAs),
            Table1Class::kTrafficEngineering);
  EXPECT_EQ(table1_class(dict::Category::kBlackhole),
            Table1Class::kTrafficEngineering);
  EXPECT_EQ(table1_class(dict::Category::kRelationship),
            Table1Class::kRouteType);
  EXPECT_EQ(table1_class(dict::Category::kRovStatus), Table1Class::kInternal);
  EXPECT_EQ(table1_class(dict::Category::kInterface), Table1Class::kInternal);
}

TEST(Table1, FilterRemovesActionFalsePositives) {
  // Hand-built inferences + labels: 2 geo (info), 2 TE (action), 1 route
  // type (info).
  std::vector<LocationInference> inferences;
  auto add = [&inferences](Community c) {
    LocationInference inference;
    inference.community = c;
    inference.support = 5;
    inference.distinct_successors = 1;
    inference.inferred_location = true;
    inferences.push_back(inference);
  };
  add(Community(100, 20000));
  add(Community(100, 20001));
  add(Community(100, 2569));
  add(Community(100, 2579));
  add(Community(100, 45000));

  dict::DictionaryStore truth;
  auto& d = truth.dictionary_for(100);
  d.add(dict::CommunityPattern::compile("100:20000-20010"),
        dict::Category::kLocationCity, "");
  d.add(dict::CommunityPattern::compile("100:2\\d\\d9"),
        dict::Category::kSuppressToAs, "");
  d.add(dict::CommunityPattern::compile("100:45000-45003"),
        dict::Category::kRelationship, "");

  core::InferenceResult intent;
  intent.labels[Community(100, 2569)] = dict::Intent::kAction;
  intent.labels[Community(100, 2579)] = dict::Intent::kAction;
  intent.labels[Community(100, 20000)] = dict::Intent::kInformation;

  const auto result = table1_comparison(inferences, truth, intent);
  EXPECT_EQ(result.total_before, 5u);
  EXPECT_EQ(result.total_after, 3u);
  EXPECT_EQ(result.row(Table1Class::kGeolocation)->before, 2u);
  EXPECT_EQ(result.row(Table1Class::kGeolocation)->after, 2u);
  EXPECT_EQ(result.row(Table1Class::kTrafficEngineering)->before, 2u);
  EXPECT_EQ(result.row(Table1Class::kTrafficEngineering)->after, 0u);
  EXPECT_EQ(result.row(Table1Class::kRouteType)->before, 1u);
  EXPECT_DOUBLE_EQ(result.precision_before, 0.4);
  EXPECT_NEAR(result.precision_after, 2.0 / 3.0, 1e-9);
}

TEST(Table1, UnlabeledInferencesIgnored) {
  std::vector<LocationInference> inferences;
  LocationInference inference;
  inference.community = Community(100, 777);
  inference.inferred_location = true;
  inferences.push_back(inference);
  const auto result =
      table1_comparison(inferences, dict::DictionaryStore{}, {});
  EXPECT_EQ(result.total_before, 0u);
}

// End-to-end: on a full scenario, filtering with the intent classifier
// must improve location precision (the Table 1 headline).
TEST(Table1, EndToEndPrecisionImproves) {
  routing::ScenarioConfig cfg;
  cfg.topology.seed = 51;
  cfg.topology.tier1_count = 6;
  cfg.topology.tier2_count = 40;
  cfg.topology.stub_count = 250;
  cfg.vantage_point_count = 40;
  const auto scenario = routing::Scenario::build(cfg);
  const auto entries = scenario.entries();

  core::Pipeline pipeline;
  pipeline.set_org_map(&scenario.topology().orgs);
  const auto intent = pipeline.run(entries);

  const auto inferences = infer_locations(entries);
  const auto result =
      table1_comparison(inferences, scenario.ground_truth(), intent.inference);
  ASSERT_GT(result.total_before, 20u);
  const auto* te = result.row(Table1Class::kTrafficEngineering);
  EXPECT_GT(te->before, 0u) << "baseline should produce TE false positives";
  EXPECT_LT(te->after, te->before);
  EXPECT_GT(result.precision_after, result.precision_before);
}

}  // namespace
}  // namespace bgpintent::locinfer
