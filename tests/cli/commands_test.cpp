#include "cli/commands.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

namespace bgpintent::cli {
namespace {

namespace fs = std::filesystem;

/// Runs a cli command with string arguments; returns its exit code.
int run(int (*command)(int, char**), std::vector<std::string> args) {
  args.insert(args.begin(), "bgpintent");
  std::vector<char*> argv;
  for (auto& a : args) argv.push_back(a.data());
  return command(static_cast<int>(argv.size()), argv.data());
}

class CliCommands : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("bgpintent_cli_test_" + std::to_string(::getpid()));
    fs::create_directories(dir_);
    mrt_ = (dir_ / "rib.mrt").string();
    dict_ = (dir_ / "truth.dict").string();
    // A small simulated world shared by the tests below.
    ASSERT_EQ(run(cmd_simulate,
                  {"simulate", "--seed", "5", "--tier1", "4", "--tier2", "14",
                   "--stubs", "60", "--vantage-points", "15", "--out", mrt_,
                   "--dict", dict_}),
              0);
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  fs::path dir_;
  std::string mrt_;
  std::string dict_;
};

TEST_F(CliCommands, SimulateProducesFiles) {
  EXPECT_GT(fs::file_size(mrt_), 1000u);
  EXPECT_GT(fs::file_size(dict_), 100u);
}

TEST_F(CliCommands, InferWritesCsvAndSummary) {
  const std::string csv = (dir_ / "labels.csv").string();
  const std::string summary = (dir_ / "inferred.dict").string();
  ASSERT_EQ(run(cmd_infer,
                {"infer", mrt_, "--out", csv, "--summary", summary}),
            0);
  std::ifstream in(csv);
  std::string header;
  ASSERT_TRUE(std::getline(in, header));
  EXPECT_EQ(header, "community,intent,on_path_paths,off_path_paths");
  std::size_t rows = 0;
  for (std::string line; std::getline(in, line);) ++rows;
  EXPECT_GT(rows, 50u);
  EXPECT_GT(fs::file_size(summary), 100u);
}

TEST_F(CliCommands, InferRejectsMissingFile) {
  // Unreadable input is a data failure (3); no input at all is usage (2).
  EXPECT_EQ(run(cmd_infer, {"infer", (dir_ / "nope.mrt").string()}),
            kExitData);
  EXPECT_EQ(run(cmd_infer, {"infer"}), kExitUsage);
}

TEST_F(CliCommands, InferRejectsBadOptions) {
  EXPECT_EQ(run(cmd_infer, {"infer", mrt_, "--gap", "abc"}), kExitUsage);
  EXPECT_EQ(run(cmd_infer, {"infer", mrt_, "--bogus"}), kExitUsage);
  // The budget knobs are meaningless without --tolerant.
  EXPECT_EQ(run(cmd_infer, {"infer", mrt_, "--max-errors", "3"}), kExitUsage);
  EXPECT_EQ(run(cmd_infer,
                {"infer", mrt_, "--tolerant", "--max-error-frac", "1.5"}),
            kExitUsage);
}

TEST_F(CliCommands, InferRejectsMalformedMrt) {
  const std::string bad = (dir_ / "bad.mrt").string();
  std::ofstream(bad) << "this is not MRT data at all............";
  EXPECT_EQ(run(cmd_infer, {"infer", bad}), kExitData);
  // Tolerant mode cannot salvage a single decodable record from pure
  // garbage, so the 100% error fraction trips the budget: exit 4.
  EXPECT_EQ(run(cmd_infer, {"infer", bad, "--tolerant"}), kExitBudget);
}

TEST_F(CliCommands, TolerantInferSurvivesSeededCorruption) {
  // mrt-corrupt + infer --tolerant is the CLI face of the fault-injection
  // harness: strict fails with the data exit code, tolerant succeeds, and
  // a zero error budget degrades to the budget exit code.
  const std::string bad = (dir_ / "corrupt.mrt").string();
  ASSERT_EQ(run(cmd_mrt_corrupt,
                {"mrt-corrupt", mrt_, "--out", bad, "--kind", "truncate",
                 "--seed", "7"}),
            0);
  EXPECT_EQ(run(cmd_infer, {"infer", bad}), kExitData);
  EXPECT_EQ(run(cmd_infer, {"infer", bad, "--tolerant"}), 0);
  EXPECT_EQ(run(cmd_infer,
                {"infer", bad, "--tolerant", "--max-errors", "0"}),
            kExitBudget);
}

TEST_F(CliCommands, MrtCorruptValidatesArguments) {
  const std::string out = (dir_ / "corrupt.mrt").string();
  EXPECT_EQ(run(cmd_mrt_corrupt, {"mrt-corrupt", mrt_}), kExitUsage);
  EXPECT_EQ(run(cmd_mrt_corrupt,
                {"mrt-corrupt", mrt_, "--out", out, "--kind", "nonsense"}),
            kExitUsage);
  EXPECT_EQ(run(cmd_mrt_corrupt,
                {"mrt-corrupt", (dir_ / "nope.mrt").string(), "--out", out}),
            kExitData);
}

TEST_F(CliCommands, EvalRequiresDictAndScores) {
  EXPECT_EQ(run(cmd_eval, {"eval", mrt_}), kExitUsage);  // --dict missing
  EXPECT_EQ(run(cmd_eval, {"eval", mrt_, "--dict", dict_}), 0);
  EXPECT_EQ(run(cmd_eval, {"eval", mrt_, "--dict",
                           (dir_ / "nope.dict").string()}),
            kExitData);
}

TEST_F(CliCommands, RelationshipsWritesSerial1) {
  const std::string out = (dir_ / "rels.txt").string();
  ASSERT_EQ(run(cmd_relationships, {"relationships", mrt_, "--out", out}), 0);
  std::ifstream in(out);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line.front(), '#');
  std::size_t links = 0;
  while (std::getline(in, line)) ++links;
  EXPECT_GT(links, 30u);
}

TEST_F(CliCommands, AnnotateKnownAndUnknown) {
  EXPECT_EQ(run(cmd_annotate, {"annotate", "1299:2569", "65535:666"}), 0);
  EXPECT_EQ(run(cmd_annotate, {"annotate", "not-a-community"}), 2);
  EXPECT_EQ(run(cmd_annotate, {"annotate"}), 2);
}

TEST_F(CliCommands, AnnotateWithCustomDictionary) {
  EXPECT_EQ(run(cmd_annotate, {"annotate", "--dict", dict_, "1000:45000"}), 0);
  EXPECT_EQ(run(cmd_annotate,
                {"annotate", "--dict", (dir_ / "nope.dict").string(),
                 "1299:1"}),
            kExitData);
}

TEST_F(CliCommands, MrtInfoCountsRecords) {
  EXPECT_EQ(run(cmd_mrt_info, {"mrt-info", mrt_}), 0);
  EXPECT_EQ(run(cmd_mrt_info, {"mrt-info"}), kExitUsage);
  EXPECT_EQ(run(cmd_mrt_info, {"mrt-info", (dir_ / "nope.mrt").string()}),
            kExitData);
}

TEST_F(CliCommands, InferredSummaryScoresWellAgainstTruth) {
  // End-to-end CLI round trip: infer a summary dictionary, reload it, and
  // verify it broadly agrees with the generator's published truth.
  const std::string summary = (dir_ / "inferred.dict").string();
  const std::string csv = (dir_ / "labels.csv").string();
  ASSERT_EQ(run(cmd_infer,
                {"infer", mrt_, "--out", csv, "--summary", summary}),
            0);
  // Evaluating the raw MRT against the *inferred* dictionary must be
  // near-perfect by construction (the summary is the classifier's output).
  EXPECT_EQ(run(cmd_eval, {"eval", mrt_, "--dict", summary}), 0);
}

}  // namespace
}  // namespace bgpintent::cli
