#include "cli/args.hpp"

#include <gtest/gtest.h>

namespace bgpintent::cli {
namespace {

std::vector<char*> make_argv(std::vector<std::string>& storage) {
  std::vector<char*> argv;
  for (auto& s : storage) argv.push_back(s.data());
  return argv;
}

TEST(Args, PositionalAndOptions) {
  std::vector<std::string> raw{"prog", "cmd",       "file1.mrt", "--gap",
                               "140", "file2.mrt", "--verbose"};
  auto argv = make_argv(raw);
  const auto args = Args::parse(static_cast<int>(argv.size()), argv.data(), 2,
                                {"gap"}, {"verbose"});
  ASSERT_TRUE(args);
  EXPECT_EQ(args->positional(),
            (std::vector<std::string>{"file1.mrt", "file2.mrt"}));
  EXPECT_EQ(args->value("gap"), "140");
  EXPECT_TRUE(args->flag("verbose"));
  EXPECT_FALSE(args->flag("quiet"));
  EXPECT_FALSE(args->value("threshold"));
}

TEST(Args, UnknownOptionRejected) {
  std::vector<std::string> raw{"prog", "cmd", "--bogus"};
  auto argv = make_argv(raw);
  EXPECT_FALSE(
      Args::parse(static_cast<int>(argv.size()), argv.data(), 2, {}, {}));
}

TEST(Args, MissingValueRejected) {
  std::vector<std::string> raw{"prog", "cmd", "--gap"};
  auto argv = make_argv(raw);
  EXPECT_FALSE(Args::parse(static_cast<int>(argv.size()), argv.data(), 2,
                           {"gap"}, {}));
}

TEST(Args, TypedAccessors) {
  std::vector<std::string> raw{"prog", "cmd", "--gap", "250", "--threshold",
                               "2.5"};
  auto argv = make_argv(raw);
  const auto args = Args::parse(static_cast<int>(argv.size()), argv.data(), 2,
                                {"gap", "threshold"}, {});
  ASSERT_TRUE(args);
  EXPECT_EQ(args->value_u64("gap", 140), 250u);
  EXPECT_EQ(args->value_u64("absent", 140), 140u);
  EXPECT_DOUBLE_EQ(*args->value_double("threshold", 160.0), 2.5);
  EXPECT_DOUBLE_EQ(*args->value_double("absent", 160.0), 160.0);
}

TEST(Args, MalformedNumbersRejected) {
  std::vector<std::string> raw{"prog", "cmd", "--gap", "abc"};
  auto argv = make_argv(raw);
  const auto args = Args::parse(static_cast<int>(argv.size()), argv.data(), 2,
                                {"gap"}, {});
  ASSERT_TRUE(args);
  EXPECT_FALSE(args->value_u64("gap", 140));
  EXPECT_FALSE(args->value_double("gap", 160.0));
}

TEST(Args, NegativeNumbersRejected) {
  std::vector<std::string> raw{"prog", "cmd", "--gap", "-3"};
  auto argv = make_argv(raw);
  const auto args = Args::parse(static_cast<int>(argv.size()), argv.data(), 2,
                                {"gap"}, {});
  ASSERT_TRUE(args);
  EXPECT_FALSE(args->value_u64("gap", 140));
  // A negative double is still a valid double.
  EXPECT_DOUBLE_EQ(*args->value_double("gap", 160.0), -3.0);
}

TEST(Args, ValuesAboveMaxRejected) {
  std::vector<std::string> raw{"prog", "cmd", "--threads", "4097"};
  auto argv = make_argv(raw);
  const auto args = Args::parse(static_cast<int>(argv.size()), argv.data(), 2,
                                {"threads"}, {});
  ASSERT_TRUE(args);
  // Above the cap: rejected, so a later narrowing cast cannot wrap.
  EXPECT_FALSE(args->value_u64("threads", 0, 4096));
  // At the cap: accepted.
  EXPECT_EQ(args->value_u64("threads", 0, 4097), 4097u);
  // Way beyond any u32/u16 narrowing target.
  std::vector<std::string> raw2{"prog", "cmd", "--port", "4294967296"};
  auto argv2 = make_argv(raw2);
  const auto args2 = Args::parse(static_cast<int>(argv2.size()),
                                 argv2.data(), 2, {"port"}, {});
  ASSERT_TRUE(args2);
  EXPECT_FALSE(args2->value_u64("port", 0, 65535));
}

TEST(Args, EmptyArgs) {
  std::vector<std::string> raw{"prog", "cmd"};
  auto argv = make_argv(raw);
  const auto args =
      Args::parse(static_cast<int>(argv.size()), argv.data(), 2, {}, {});
  ASSERT_TRUE(args);
  EXPECT_TRUE(args->positional().empty());
}

TEST(Args, RepeatedValueLastWins) {
  std::vector<std::string> raw{"prog", "cmd", "--gap", "1", "--gap", "2"};
  auto argv = make_argv(raw);
  const auto args = Args::parse(static_cast<int>(argv.size()), argv.data(), 2,
                                {"gap"}, {});
  ASSERT_TRUE(args);
  EXPECT_EQ(args->value("gap"), "2");
}

}  // namespace
}  // namespace bgpintent::cli
