#include "routing/policy.hpp"

#include <gtest/gtest.h>

#include "topo/generator.hpp"

namespace bgpintent::routing {
namespace {

topo::Topology small_topo(std::uint64_t seed = 5) {
  topo::TopologyConfig cfg;
  cfg.seed = seed;
  cfg.tier1_count = 4;
  cfg.tier2_count = 16;
  cfg.stub_count = 40;
  return topo::generate_topology(cfg);
}

TEST(CommunityPolicy, GeoCommunityEncodesLocation) {
  CommunityPolicy p;
  p.asn = 1299;
  p.geo_base = 20000;
  p.geo_block_width = 20;
  const auto a = p.geo_community(topo::Location{0, 0}, 0, 6);
  ASSERT_TRUE(a);
  EXPECT_EQ(*a, Community(1299, 20000));
  const auto b = p.geo_community(topo::Location{1, 2}, 5, 6);
  ASSERT_TRUE(b);
  EXPECT_EQ(b->beta(), 20000 + (1 * 6 + 2) * 20 + 5);
  // Ports wrap within the block.
  const auto c = p.geo_community(topo::Location{0, 0}, 23, 6);
  EXPECT_EQ(c->beta(), 20003);
}

TEST(CommunityPolicy, GeoCommunityDisabled) {
  CommunityPolicy p;
  p.asn = 1299;
  EXPECT_FALSE(p.geo_community(topo::Location{0, 0}, 0, 6));
}

TEST(CommunityPolicy, GeoCommunityOverflowRejected) {
  CommunityPolicy p;
  p.asn = 1299;
  p.geo_base = 65500;
  p.geo_block_width = 100;
  EXPECT_FALSE(p.geo_community(topo::Location{5, 5}, 0, 6));
}

TEST(CommunityPolicy, RelationshipCodes) {
  CommunityPolicy p;
  p.asn = 701;
  p.rel_base = 45000;
  EXPECT_EQ(p.relationship_community(topo::RelFrom::kCustomer)->beta(), 45000);
  EXPECT_EQ(p.relationship_community(topo::RelFrom::kPeer)->beta(), 45001);
  EXPECT_EQ(p.relationship_community(topo::RelFrom::kProvider)->beta(), 45002);
  EXPECT_EQ(p.relationship_community(topo::RelFrom::kSibling)->beta(), 45003);
}

TEST(CommunityPolicy, RovCodes) {
  CommunityPolicy p;
  p.asn = 701;
  p.rov_base = 430;
  EXPECT_EQ(p.rov_community(true)->beta(), 430);
  EXPECT_EQ(p.rov_community(false)->beta(), 431);
  CommunityPolicy off;
  EXPECT_FALSE(off.rov_community(true));
}

TEST(CommunityPolicy, ActionLookupAndEnumeration) {
  CommunityPolicy p;
  p.asn = 1299;
  p.actions[2569] = ActionSpec{ActionType::kNoExportToAs, 3356, 0, 0, 0};
  p.actions[2561] = ActionSpec{ActionType::kPrependToAs, 3356, 0, 1, 0};
  ASSERT_NE(p.action_for(2569), nullptr);
  EXPECT_EQ(p.action_for(2569)->type, ActionType::kNoExportToAs);
  EXPECT_EQ(p.action_for(9999), nullptr);
  const auto offered = p.offered_actions();
  ASSERT_EQ(offered.size(), 2u);
  EXPECT_EQ(offered[0], Community(1299, 2561));  // ascending beta
  EXPECT_EQ(offered[1], Community(1299, 2569));
}

TEST(GeneratePolicies, DeterministicForSeed) {
  const auto topo = small_topo();
  PolicyConfig cfg;
  cfg.seed = 11;
  const PolicySet a = generate_policies(topo, cfg);
  const PolicySet b = generate_policies(topo, cfg);
  EXPECT_EQ(a.policies.size(), b.policies.size());
  EXPECT_EQ(a.ground_truth.entry_count(), b.ground_truth.entry_count());
}

TEST(GeneratePolicies, TransitAsesGetPoliciesAndDictionaries) {
  const auto topo = small_topo();
  PolicyConfig cfg;
  cfg.tier1_defines = 1.0;
  cfg.tier2_defines = 1.0;
  const PolicySet set = generate_policies(topo, cfg);
  for (const Asn asn : topo.asns_with_tier(topo::Tier::kTier1)) {
    const CommunityPolicy* policy = set.find(asn);
    ASSERT_NE(policy, nullptr) << asn;
    EXPECT_TRUE(policy->defines_any());
    EXPECT_NE(set.ground_truth.find(static_cast<std::uint16_t>(asn)), nullptr);
  }
}

TEST(GeneratePolicies, GroundTruthConsistentWithPolicyActions) {
  // Every concrete offered action must be labeled action by the emitted
  // dictionary; every geo tag the policy can produce must be information.
  const auto topo = small_topo();
  PolicyConfig cfg;
  cfg.tier2_defines = 1.0;
  const PolicySet set = generate_policies(topo, cfg);
  std::size_t checked_actions = 0, checked_geo = 0;
  for (const auto& [asn, policy] : set.policies) {
    if (topo.graph.find(asn)->tier == topo::Tier::kRouteServer) continue;
    for (const Community community : policy.offered_actions()) {
      const auto intent = set.ground_truth.intent(community);
      ASSERT_TRUE(intent) << community.to_string();
      EXPECT_EQ(*intent, dict::Intent::kAction) << community.to_string();
      ++checked_actions;
    }
    if (policy.geo_base) {
      for (const topo::Location& loc : topo.graph.find(asn)->presence) {
        const auto geo =
            policy.geo_community(loc, 3, topo.config.cities_per_region);
        if (!geo) continue;
        const auto intent = set.ground_truth.intent(*geo);
        ASSERT_TRUE(intent) << geo->to_string();
        EXPECT_EQ(*intent, dict::Intent::kInformation);
        ++checked_geo;
      }
    }
  }
  EXPECT_GT(checked_actions, 100u);
  EXPECT_GT(checked_geo, 5u);
}

TEST(GeneratePolicies, RouteServersTagButPublishNothing) {
  const auto topo = small_topo();
  PolicyConfig cfg;
  const PolicySet set = generate_policies(topo, cfg);
  for (const Asn rs : topo.asns_with_tier(topo::Tier::kRouteServer)) {
    const CommunityPolicy* policy = set.find(rs);
    ASSERT_NE(policy, nullptr);
    EXPECT_TRUE(policy->geo_base.has_value());
    EXPECT_TRUE(policy->actions.empty());
    EXPECT_EQ(set.ground_truth.find(static_cast<std::uint16_t>(rs)), nullptr);
  }
}

TEST(GeneratePolicies, StubsMostlyUndefined) {
  const auto topo = small_topo();
  PolicyConfig cfg;
  cfg.stub_defines = 0.0;
  const PolicySet set = generate_policies(topo, cfg);
  for (const Asn asn : topo.asns_with_tier(topo::Tier::kStub))
    EXPECT_EQ(set.find(asn), nullptr);
}

TEST(GeneratePolicies, ExportControlBlocksFollowRegionDigits) {
  const auto topo = small_topo();
  PolicyConfig cfg;
  cfg.tier2_defines = 1.0;
  cfg.with_export_control = 1.0;
  const PolicySet set = generate_policies(topo, cfg);
  // Find a tier-1 with export-control actions and check beta structure:
  // digit d in {2,5,7} (regions 0-2), peer slot 01.., trailing op digit.
  bool found = false;
  for (const Asn asn : topo.asns_with_tier(topo::Tier::kTier1)) {
    const CommunityPolicy* policy = set.find(asn);
    if (policy == nullptr) continue;
    for (const auto& [beta, spec] : policy->actions) {
      if (spec.type != ActionType::kNoExportToAs || beta < 1000) continue;
      found = true;
      const int digit = beta / 1000;
      EXPECT_TRUE(digit == 2 || digit == 5 || digit == 7) << beta;
      EXPECT_EQ(beta % 10, 9) << "suppress op digit";
      EXPECT_NE(spec.target_as, 0u);
    }
  }
  EXPECT_TRUE(found);
}

TEST(PolicySet, FindMissingReturnsNull) {
  PolicySet set;
  EXPECT_EQ(set.find(42), nullptr);
}

TEST(GeneratePolicies, AsesPastThe16BitBoundaryDefineNothing) {
  // Large-scale presets run the stub range past 65535; those ASes cannot
  // key classic communities with their own ASN and must stay policy-free
  // (a truncated alpha would alias another AS's community space).
  topo::TopologyConfig cfg;
  cfg.seed = 9;
  cfg.tier1_count = 4;
  cfg.tier2_count = 16;
  cfg.stub_count = 40;
  cfg.stub_base = 65520;  // stubs 65520..65559 straddle the boundary
  const auto topo = topo::generate_topology(cfg);
  PolicyConfig pcfg;
  pcfg.stub_defines = 1.0;
  const PolicySet set = generate_policies(topo, pcfg);
  for (const auto& [asn, policy] : set.policies) EXPECT_LE(asn, 0xffffu);
  for (const Asn asn : topo.asns_with_tier(topo::Tier::kStub)) {
    if (asn > 0xffff) {
      EXPECT_EQ(set.find(asn), nullptr) << asn;
    } else {
      EXPECT_NE(set.find(asn), nullptr) << asn;
    }
  }
}

}  // namespace
}  // namespace bgpintent::routing
