#include "routing/simulator.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace bgpintent::routing {
namespace {

using topo::AsNode;
using topo::Location;
using topo::Relationship;
using topo::Tier;

AsNode node(Asn asn, Tier tier = Tier::kStub, bool strips = false) {
  AsNode n;
  n.asn = asn;
  n.tier = tier;
  n.presence = {Location{0, 0}};
  n.strips_communities = strips;
  return n;
}

bgp::Prefix pfx() { return *bgp::Prefix::parse("10.0.0.0/24"); }

Announcement ann(Asn origin, std::vector<Community> communities = {}) {
  Announcement a;
  a.prefix = pfx();
  a.origin = origin;
  a.communities = std::move(communities);
  return a;
}

std::vector<Asn> path_of(const PrefixRib& rib, Asn asn) {
  const auto view = rib.at(asn);
  return {view.path.begin(), view.path.end()};
}

std::vector<Community> comms_of(const PrefixRib& rib, Asn asn) {
  const auto view = rib.at(asn);
  return {view.communities.begin(), view.communities.end()};
}

/// Simple chain: 1 (tier1) provides 2, 2 provides 3 (origin).
struct Chain {
  topo::Topology topo;
  PolicySet policies;

  Chain() {
    topo.config.cities_per_region = 6;
    topo.graph.add_as(node(1, Tier::kTier1));
    topo.graph.add_as(node(2, Tier::kTier2));
    topo.graph.add_as(node(3));
    topo.graph.add_edge(1, 2, Relationship::kP2C);
    topo.graph.add_edge(2, 3, Relationship::kP2C);
  }
};

TEST(Simulator, PropagatesUpChain) {
  Chain c;
  Simulator sim(c.topo, c.policies);
  const auto rib = sim.propagate(ann(3));
  ASSERT_TRUE(rib.contains(3));
  ASSERT_TRUE(rib.contains(2));
  ASSERT_TRUE(rib.contains(1));
  EXPECT_EQ(path_of(rib, 3), (std::vector<Asn>{3}));
  EXPECT_EQ(path_of(rib, 2), (std::vector<Asn>{2, 3}));
  EXPECT_EQ(path_of(rib, 1), (std::vector<Asn>{1, 2, 3}));
  EXPECT_EQ(rib.at(1).learned_from, 2u);
}

TEST(Simulator, UnknownOriginYieldsEmptyRib) {
  Chain c;
  Simulator sim(c.topo, c.policies);
  EXPECT_TRUE(sim.propagate(ann(99)).empty());
}

TEST(Simulator, ValleyFreePeerRoutesNotReExportedToPeer) {
  // 1 -p2p- 2, 2 -p2p- 4, origin 3 customer of 2: 1 and 4 learn via peer 2,
  // but 1 must not learn a path 1-4-2-3 (peer route re-exported to peer).
  topo::Topology topo;
  topo.graph.add_as(node(1, Tier::kTier2));
  topo.graph.add_as(node(2, Tier::kTier2));
  topo.graph.add_as(node(4, Tier::kTier2));
  topo.graph.add_as(node(3));
  topo.graph.add_edge(1, 2, Relationship::kP2P);
  topo.graph.add_edge(2, 4, Relationship::kP2P);
  topo.graph.add_edge(1, 4, Relationship::kP2P);
  topo.graph.add_edge(2, 3, Relationship::kP2C);
  PolicySet policies;
  Simulator sim(topo, policies);
  const auto rib = sim.propagate(ann(3));
  ASSERT_TRUE(rib.contains(1));
  EXPECT_EQ(path_of(rib, 1), (std::vector<Asn>{1, 2, 3}));
  ASSERT_TRUE(rib.contains(4));
  EXPECT_EQ(path_of(rib, 4), (std::vector<Asn>{4, 2, 3}));
}

TEST(Simulator, ProviderRouteNotExportedToProviderOrPeer) {
  // origin 9 is customer of 1 only; 2 is a customer of 1; 2 also has
  // provider 5. 2 must not export the provider-learned route to 5.
  topo::Topology topo;
  topo.graph.add_as(node(1, Tier::kTier1));
  topo.graph.add_as(node(2, Tier::kTier2));
  topo.graph.add_as(node(5, Tier::kTier1));
  topo.graph.add_as(node(9));
  topo.graph.add_edge(1, 9, Relationship::kP2C);
  topo.graph.add_edge(1, 2, Relationship::kP2C);
  topo.graph.add_edge(5, 2, Relationship::kP2C);
  PolicySet policies;
  Simulator sim(topo, policies);
  const auto rib = sim.propagate(ann(9));
  EXPECT_TRUE(rib.contains(2));
  EXPECT_FALSE(rib.contains(5));  // valley blocked
}

TEST(Simulator, PrefersCustomerOverPeerOverProvider) {
  // AS 10 can reach origin 3 via customer 11, peer 12, provider 13 (all of
  // which are providers of 3).  Customer route must win despite equal length.
  topo::Topology topo;
  topo.graph.add_as(node(10, Tier::kTier2));
  topo.graph.add_as(node(11, Tier::kTier2));
  topo.graph.add_as(node(12, Tier::kTier2));
  topo.graph.add_as(node(13, Tier::kTier1));
  topo.graph.add_as(node(3));
  topo.graph.add_edge(10, 11, Relationship::kP2C);  // 11 customer of 10
  topo.graph.add_edge(10, 12, Relationship::kP2P);
  topo.graph.add_edge(13, 10, Relationship::kP2C);  // 13 provider of 10
  topo.graph.add_edge(11, 3, Relationship::kP2C);
  topo.graph.add_edge(12, 3, Relationship::kP2C);
  topo.graph.add_edge(13, 3, Relationship::kP2C);
  PolicySet policies;
  Simulator sim(topo, policies);
  const auto rib = sim.propagate(ann(3));
  ASSERT_TRUE(rib.contains(10));
  EXPECT_EQ(path_of(rib, 10), (std::vector<Asn>{10, 11, 3}));
}

TEST(Simulator, ShorterPathWinsWithinClass) {
  topo::Topology topo;
  topo.graph.add_as(node(1, Tier::kTier1));
  topo.graph.add_as(node(2, Tier::kTier2));
  topo.graph.add_as(node(3));
  topo.graph.add_edge(1, 2, Relationship::kP2C);
  topo.graph.add_edge(1, 3, Relationship::kP2C);  // direct
  topo.graph.add_edge(2, 3, Relationship::kP2C);  // via 2
  PolicySet policies;
  Simulator sim(topo, policies);
  const auto rib = sim.propagate(ann(3));
  EXPECT_EQ(path_of(rib, 1), (std::vector<Asn>{1, 3}));
}

TEST(Simulator, LoopPrevention) {
  Chain c;
  Simulator sim(c.topo, c.policies);
  const auto rib = sim.propagate(ann(3));
  rib.for_each([](Asn asn, const PrefixRib::RouteView& route) {
    std::vector<Asn> sorted(route.path.begin(), route.path.end());
    std::sort(sorted.begin(), sorted.end());
    EXPECT_TRUE(std::adjacent_find(sorted.begin(), sorted.end()) ==
                sorted.end())
        << "duplicate ASN in path of AS " << asn;
  });
}

TEST(Simulator, NoExportToAsHonored) {
  Chain c;
  // 2 offers beta 100 = do not export to AS 1.
  CommunityPolicy policy;
  policy.asn = 2;
  policy.actions[100] =
      ActionSpec{ActionType::kNoExportToAs, 1, kAnyRegion, 0, 0};
  c.policies.policies.emplace(2, std::move(policy));
  Simulator sim(c.topo, c.policies);
  const auto rib =
      sim.propagate(ann(3, {Community(2, 100)}));
  EXPECT_TRUE(rib.contains(2));
  EXPECT_FALSE(rib.contains(1));  // suppressed
  // Community still visible at AS 2 (transitive attribute).
  const auto communities = comms_of(rib, 2);
  EXPECT_TRUE(std::count(communities.begin(), communities.end(),
                         Community(2, 100)));
}

TEST(Simulator, NoExportToAsRegionScoped) {
  Chain c;
  CommunityPolicy policy;
  policy.asn = 2;
  // Region 1 never matches the edge (region 0), so export proceeds.
  policy.actions[100] = ActionSpec{ActionType::kNoExportToAs, 1, 1, 0, 0};
  c.policies.policies.emplace(2, std::move(policy));
  Simulator sim(c.topo, c.policies);
  const auto rib =
      sim.propagate(ann(3, {Community(2, 100)}));
  EXPECT_TRUE(rib.contains(1));
}

TEST(Simulator, NoExportAllHonored) {
  Chain c;
  CommunityPolicy policy;
  policy.asn = 2;
  policy.actions[200] =
      ActionSpec{ActionType::kNoExportAll, 0, kAnyRegion, 0, 0};
  c.policies.policies.emplace(2, std::move(policy));
  Simulator sim(c.topo, c.policies);
  const auto rib =
      sim.propagate(ann(3, {Community(2, 200)}));
  EXPECT_TRUE(rib.contains(2));
  EXPECT_FALSE(rib.contains(1));
}

TEST(Simulator, PrependHonored) {
  Chain c;
  CommunityPolicy policy;
  policy.asn = 2;
  policy.actions[102] =
      ActionSpec{ActionType::kPrependToAs, 1, kAnyRegion, 2, 0};
  c.policies.policies.emplace(2, std::move(policy));
  Simulator sim(c.topo, c.policies);
  const auto rib =
      sim.propagate(ann(3, {Community(2, 102)}));
  ASSERT_TRUE(rib.contains(1));
  EXPECT_EQ(path_of(rib, 1), (std::vector<Asn>{1, 2, 2, 2, 3}));
}

TEST(Simulator, BlackholeDropsAtOwner) {
  Chain c;
  CommunityPolicy policy;
  policy.asn = 2;
  policy.actions[666] = ActionSpec{ActionType::kBlackhole, 0, kAnyRegion, 0, 0};
  c.policies.policies.emplace(2, std::move(policy));
  Simulator sim(c.topo, c.policies);
  const auto rib =
      sim.propagate(ann(3, {Community(2, 666)}));
  EXPECT_TRUE(rib.contains(3));
  EXPECT_FALSE(rib.contains(2));
  EXPECT_FALSE(rib.contains(1));
}

TEST(Simulator, SetLocalPrefSteersSelection) {
  // AS 10 has two customers 11, 12 leading to origin 3; path via 11 is
  // shorter, but route carries 10's "local-pref 50" community only on the
  // 11 branch... communities travel with the route, so instead: the
  // announcement carries lp-50 for 10, and 10 has an equal-length choice;
  // verify the local_pref field reflects the honored action.
  Chain c;
  CommunityPolicy policy;
  policy.asn = 2;
  policy.actions[50] =
      ActionSpec{ActionType::kSetLocalPref, 0, kAnyRegion, 0, 50};
  c.policies.policies.emplace(2, std::move(policy));
  Simulator sim(c.topo, c.policies);
  const auto rib = sim.propagate(ann(3, {Community(2, 50)}));
  ASSERT_TRUE(rib.contains(2));
  EXPECT_EQ(rib.at(2).local_pref, 50u);
  // Downstream AS 1 is unaffected (community owned by 2).
  ASSERT_TRUE(rib.contains(1));
  EXPECT_EQ(rib.at(1).local_pref, 300u);  // customer-class default
}

TEST(Simulator, InfoTaggingAtIngress) {
  Chain c;
  CommunityPolicy policy;
  policy.asn = 2;
  policy.geo_base = 20000;
  policy.geo_block_width = 20;
  policy.rel_base = 45000;
  policy.rov_base = 430;
  c.policies.policies.emplace(2, std::move(policy));
  Simulator sim(c.topo, c.policies);
  const auto rib = sim.propagate(ann(3));
  ASSERT_TRUE(rib.contains(2));
  const auto communities = comms_of(rib, 2);
  // Geo tag present (alpha 2, geo block for region 0 city 0).
  bool has_geo = false, has_rel = false, has_rov = false;
  for (const Community community : communities) {
    if (community.alpha() != 2) continue;
    if (community.beta() >= 20000 && community.beta() < 20020) has_geo = true;
    if (community.beta() == 45000) has_rel = true;  // learned from customer
    if (community.beta() == 430 || community.beta() == 431) has_rov = true;
  }
  EXPECT_TRUE(has_geo);
  EXPECT_TRUE(has_rel);
  EXPECT_TRUE(has_rov);
  // Tags propagate transitively to AS 1.
  ASSERT_TRUE(rib.contains(1));
  EXPECT_EQ(comms_of(rib, 1), communities);
}

TEST(Simulator, RelationshipTagReflectsPerspective) {
  // AS 2 tags routes from its *provider* 1 with code 2.
  topo::Topology topo;
  topo.graph.add_as(node(1, Tier::kTier1));
  topo.graph.add_as(node(2, Tier::kTier2));
  topo.graph.add_as(node(9));
  topo.graph.add_edge(1, 2, Relationship::kP2C);
  topo.graph.add_edge(1, 9, Relationship::kP2C);
  PolicySet policies;
  CommunityPolicy policy;
  policy.asn = 2;
  policy.rel_base = 45000;
  policies.policies.emplace(2, std::move(policy));
  Simulator sim(topo, policies);
  const auto rib = sim.propagate(ann(9));
  ASSERT_TRUE(rib.contains(2));
  const auto communities = comms_of(rib, 2);
  EXPECT_TRUE(std::count(communities.begin(), communities.end(),
                         Community(2, 45002)));  // learned from provider
}

TEST(Simulator, StrippingAsRemovesCommunitiesOnExport) {
  topo::Topology topo;
  topo.graph.add_as(node(1, Tier::kTier1));
  topo.graph.add_as(node(2, Tier::kTier2, /*strips=*/true));
  topo.graph.add_as(node(3));
  topo.graph.add_edge(1, 2, Relationship::kP2C);
  topo.graph.add_edge(2, 3, Relationship::kP2C);
  PolicySet policies;
  Simulator sim(topo, policies);
  const auto rib =
      sim.propagate(ann(3, {Community(2, 100)}));
  // AS 2 still sees the community (stripping applies on export)...
  ASSERT_TRUE(rib.contains(2));
  EXPECT_FALSE(rib.at(2).communities.empty());
  // ...but AS 1 receives a bare route.
  ASSERT_TRUE(rib.contains(1));
  EXPECT_TRUE(rib.at(1).communities.empty());
}

TEST(Simulator, RouteServerTagsWithoutAppearingInPath) {
  topo::Topology topo;
  topo.graph.add_as(node(1, Tier::kTier2));
  topo.graph.add_as(node(2, Tier::kTier2));
  topo.graph.add_as(node(3));
  AsNode rs = node(60000, Tier::kRouteServer);
  topo.graph.add_as(rs);
  topo.graph.add_edge(1, 2, Relationship::kP2P, Location{0, 3}, Asn{60000});
  topo.graph.add_edge(2, 3, Relationship::kP2C);
  PolicySet policies;
  CommunityPolicy rs_policy;
  rs_policy.asn = 60000;
  rs_policy.geo_base = 20000;
  rs_policy.geo_block_width = 20;
  policies.policies.emplace(60000, std::move(rs_policy));
  Simulator sim(topo, policies);
  const auto rib = sim.propagate(ann(3));
  ASSERT_TRUE(rib.contains(1));
  const auto route = rib.at(1);
  EXPECT_EQ(path_of(rib, 1), (std::vector<Asn>{1, 2, 3}));  // RS not in path
  bool has_rs_tag = false;
  for (const Community community : route.communities)
    if (community.alpha() == 60000) has_rs_tag = true;
  EXPECT_TRUE(has_rs_tag);
}

TEST(Simulator, SiblingRoutesExportEverywhere) {
  // 2a and 2b are siblings; origin 3 is customer of 2b; 2a's provider 1
  // must still learn the route (sibling-learned routes export upward).
  topo::Topology topo;
  topo.graph.add_as(node(1, Tier::kTier1));
  topo.graph.add_as(node(20, Tier::kTier2));
  topo.graph.add_as(node(21, Tier::kTier2));
  topo.graph.add_as(node(3));
  topo.graph.add_edge(1, 20, Relationship::kP2C);
  topo.graph.add_edge(20, 21, Relationship::kS2S);
  topo.graph.add_edge(21, 3, Relationship::kP2C);
  PolicySet policies;
  Simulator sim(topo, policies);
  const auto rib = sim.propagate(ann(3));
  ASSERT_TRUE(rib.contains(1));
  EXPECT_EQ(path_of(rib, 1), (std::vector<Asn>{1, 20, 21, 3}));
}

TEST(Simulator, AnnouncementCommunitiesDeduplicated) {
  Chain c;
  Simulator sim(c.topo, c.policies);
  const auto rib = sim.propagate(
      ann(3, {Community(2, 7), Community(2, 7)}));
  ASSERT_TRUE(rib.contains(3));
  EXPECT_EQ(rib.at(3).communities.size(), 1u);
}

TEST(Collector, RecordsBestRoutePerVantagePoint) {
  Chain c;
  Collector collector(c.topo, c.policies, {1, 2});
  const auto entries = collector.collect({ann(3)});
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].vantage_point.asn, 1u);
  EXPECT_EQ(entries[0].route.path.to_string(), "1 2 3");
  EXPECT_EQ(entries[1].vantage_point.asn, 2u);
  EXPECT_EQ(entries[1].route.path.to_string(), "2 3");
  EXPECT_EQ(entries[0].route.prefix, pfx());
}

TEST(Collector, DeduplicatesVantagePoints) {
  Chain c;
  Collector collector(c.topo, c.policies, {2, 2, 1, 1});
  EXPECT_EQ(collector.vantage_points().size(), 2u);
}

TEST(Collector, SkipsVantagePointsWithoutRoute) {
  Chain c;
  Collector collector(c.topo, c.policies, {1, 42});
  const auto entries = collector.collect({ann(3)});
  EXPECT_EQ(entries.size(), 1u);
}

}  // namespace
}  // namespace bgpintent::routing
