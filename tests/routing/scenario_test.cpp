#include "routing/scenario.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

namespace bgpintent::routing {
namespace {

ScenarioConfig small_scenario(std::uint64_t seed = 9) {
  ScenarioConfig cfg;
  cfg.topology.seed = seed;
  cfg.topology.tier1_count = 4;
  cfg.topology.tier2_count = 16;
  cfg.topology.stub_count = 50;
  cfg.policy.seed = seed + 1;
  cfg.workload_seed = seed + 2;
  cfg.vantage_point_count = 12;
  return cfg;
}

TEST(Scenario, BuildIsDeterministic) {
  const Scenario a = Scenario::build(small_scenario());
  const Scenario b = Scenario::build(small_scenario());
  ASSERT_EQ(a.announcements().size(), b.announcements().size());
  for (std::size_t i = 0; i < a.announcements().size(); ++i) {
    EXPECT_EQ(a.announcements()[i].prefix, b.announcements()[i].prefix);
    EXPECT_EQ(a.announcements()[i].origin, b.announcements()[i].origin);
    EXPECT_EQ(a.announcements()[i].communities,
              b.announcements()[i].communities);
  }
  EXPECT_EQ(a.vantage_points(), b.vantage_points());
}

TEST(Scenario, EveryStubOriginatesAtLeastOnce) {
  const Scenario s = Scenario::build(small_scenario());
  std::unordered_set<Asn> origins;
  for (const auto& a : s.announcements()) origins.insert(a.origin);
  for (const Asn stub : s.topology().asns_with_tier(topo::Tier::kStub))
    EXPECT_TRUE(origins.contains(stub)) << stub;
}

TEST(Scenario, PrefixesAreUnique) {
  const Scenario s = Scenario::build(small_scenario());
  std::unordered_set<bgp::Prefix> prefixes;
  for (const auto& a : s.announcements())
    EXPECT_TRUE(prefixes.insert(a.prefix).second) << a.prefix.to_string();
}

TEST(Scenario, SomeAnnouncementsCarryActionCommunities) {
  const Scenario s = Scenario::build(small_scenario());
  std::size_t with_actions = 0;
  std::size_t with_private = 0;
  std::size_t with_misused_info = 0;
  for (const auto& a : s.announcements()) {
    bool has_action = false;
    for (const Community community : a.communities) {
      if (bgp::is_private_asn16(community.alpha())) {
        ++with_private;  // leaked internal tag
        continue;
      }
      // Everything else is a value defined by a provider's policy: either
      // an offered action or a misused information value.
      const CommunityPolicy* owner = s.policies().find(community.alpha());
      ASSERT_NE(owner, nullptr) << community.to_string();
      if (owner->action_for(community.beta()) != nullptr)
        has_action = true;
      else
        ++with_misused_info;
    }
    if (has_action) ++with_actions;
  }
  EXPECT_GT(with_actions, s.announcements().size() / 10);
  EXPECT_LT(with_actions, s.announcements().size());
  EXPECT_GT(with_private + with_misused_info, 0u);
}

TEST(Scenario, VantagePointsAreRealAses) {
  const Scenario s = Scenario::build(small_scenario());
  EXPECT_EQ(s.vantage_points().size(), 12u);
  for (const Asn vp : s.vantage_points()) {
    EXPECT_TRUE(s.topology().graph.contains(vp));
    EXPECT_NE(s.topology().graph.find(vp)->tier, topo::Tier::kRouteServer);
  }
}

TEST(Scenario, EntriesNonEmptyAndWellFormed) {
  const Scenario s = Scenario::build(small_scenario());
  const auto entries = s.entries();
  ASSERT_GT(entries.size(), 100u);
  for (const auto& entry : entries) {
    EXPECT_FALSE(entry.route.path.empty());
    EXPECT_EQ(entry.route.path.first(), entry.vantage_point.asn);
    ASSERT_TRUE(entry.route.path.origin());
  }
}

TEST(Scenario, EntriesWithVpSubsetIsSubset) {
  const Scenario s = Scenario::build(small_scenario());
  const std::vector<Asn> subset{s.vantage_points().front()};
  const auto sub_entries = s.entries_with_vps(subset);
  ASSERT_FALSE(sub_entries.empty());
  for (const auto& entry : sub_entries)
    EXPECT_EQ(entry.vantage_point.asn, subset.front());
  EXPECT_LT(sub_entries.size(), s.entries().size());
}

TEST(Scenario, DayZeroMatchesBaseEntries) {
  const Scenario s = Scenario::build(small_scenario());
  EXPECT_EQ(s.day_entries(0), s.entries());
}

TEST(Scenario, ChurnDaysDifferButDeterministic) {
  const Scenario s = Scenario::build(small_scenario());
  const auto day1a = s.day_entries(1);
  const auto day1b = s.day_entries(1);
  EXPECT_EQ(day1a, day1b);
  const auto day2 = s.day_entries(2);
  EXPECT_NE(day1a, day2);
}

TEST(Scenario, ObservedCommunitiesIncludeInfoAndAction) {
  const Scenario s = Scenario::build(small_scenario());
  std::size_t info = 0, action = 0, unknown = 0;
  std::unordered_set<Community> seen;
  for (const auto& entry : s.entries())
    for (const Community community : entry.route.communities)
      seen.insert(community);
  for (const Community community : seen) {
    const auto intent = s.ground_truth().intent(community);
    if (!intent)
      ++unknown;
    else if (*intent == dict::Intent::kAction)
      ++action;
    else
      ++info;
  }
  EXPECT_GT(info, 20u);
  EXPECT_GT(action, 5u);
  // Route-server communities are observed but not in any dictionary.
  EXPECT_GT(unknown, 0u);
}

// The core structural property the paper's method exploits (§5.1):
// information communities appear overwhelmingly on-path, action
// communities appear off-path substantially more often.
TEST(Scenario, OnPathOffPathSeparationHoldsInAggregate) {
  ScenarioConfig cfg = small_scenario();
  cfg.topology.stub_count = 80;
  cfg.vantage_point_count = 20;
  const Scenario s = Scenario::build(cfg);
  std::size_t info_on = 0, info_off = 0, action_on = 0, action_off = 0;
  for (const auto& entry : s.entries()) {
    for (const Community community : entry.route.communities) {
      const auto intent = s.ground_truth().intent(community);
      if (!intent) continue;
      const bool on_path = entry.route.path.contains(community.alpha());
      if (*intent == dict::Intent::kInformation) {
        ++(on_path ? info_on : info_off);
      } else {
        ++(on_path ? action_on : action_off);
      }
    }
  }
  ASSERT_GT(info_on + info_off, 0u);
  ASSERT_GT(action_on + action_off, 0u);
  const double info_on_frac =
      static_cast<double>(info_on) / static_cast<double>(info_on + info_off);
  const double action_off_frac = static_cast<double>(action_off) /
                                 static_cast<double>(action_on + action_off);
  EXPECT_GT(info_on_frac, 0.95);
  EXPECT_GT(action_off_frac, 0.2);
}

}  // namespace
}  // namespace bgpintent::routing
