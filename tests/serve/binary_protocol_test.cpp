// Binary protocol (serve/binary.hpp): wire primitives, framing, the
// negotiated fast path through Client, and — the part that earns its
// keep — corruption fuzzing with mrt::corrupt_spans over the frame
// layout.  A server facing a hostile or damaged byte stream must answer
// a framed error or close; it must never hang, over-read, or die.
#include "serve/binary.hpp"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "bgp/community.hpp"
#include "mrt/fault.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"

namespace bgpintent::serve {
namespace {

namespace bin = binary;
using dict::Intent;

bgp::RibEntry entry(std::uint32_t vp, std::vector<bgp::Asn> path,
                    std::vector<bgp::Community> communities) {
  bgp::RibEntry e;
  e.vantage_point.asn = vp;
  e.vantage_point.address = vp;
  e.route.prefix = *bgp::Prefix::parse("10.0.0.0/24");
  e.route.path = bgp::AsPath(std::move(path));
  e.route.communities = std::move(communities);
  return e;
}

ServerConfig loopback_config() {
  ServerConfig cfg;
  cfg.port = 0;
  cfg.threads = 2;
  return cfg;
}

core::IncrementalClassifier primed_classifier() {
  core::IncrementalClassifier classifier;
  classifier.ingest(entry(61, {61, 100, 201}, {bgp::Community(100, 20000)}));
  classifier.ingest(entry(62, {62, 100, 202}, {bgp::Community(100, 20000)}));
  classifier.ingest(entry(61, {61, 100, 203}, {bgp::Community(100, 1)}));
  return classifier;
}

// --- wire primitives ----------------------------------------------------

TEST(BinaryWire, PrimitivesRoundTrip) {
  std::string out;
  bin::put_u16(out, 0xBEEF);
  bin::put_u32(out, 0xDEADBEEFu);
  bin::put_u64(out, 0x0123456789ABCDEFull);
  bin::put_f64(out, 1234.5678);
  const auto* p = reinterpret_cast<const unsigned char*>(out.data());
  EXPECT_EQ(bin::get_u16(p), 0xBEEF);
  EXPECT_EQ(bin::get_u32(p + 2), 0xDEADBEEFu);
  EXPECT_EQ(bin::get_u64(p + 6), 0x0123456789ABCDEFull);
  EXPECT_EQ(bin::get_f64(p + 14), 1234.5678);
}

TEST(BinaryWire, IntentCodesRoundTrip) {
  EXPECT_EQ(bin::intent_from_wire(0), Intent::kAction);
  EXPECT_EQ(bin::intent_from_wire(1), Intent::kInformation);
  EXPECT_EQ(bin::intent_from_wire(2), Intent::kUnclassified);
  EXPECT_FALSE(bin::intent_from_wire(3).has_value());
  EXPECT_FALSE(bin::intent_from_wire(0xFF).has_value());
}

std::span<const unsigned char> as_bytes(const std::string& s) {
  return {reinterpret_cast<const unsigned char*>(s.data()), s.size()};
}

TEST(BinaryWire, ParseFrameNeedsTheWholeFrame) {
  std::string out;
  bin::encode_label_request(out, bgp::Community(100, 20000));
  bin::Frame frame;
  // Every strict prefix is kNeedMore; the full buffer yields the frame.
  for (std::size_t n = 0; n < out.size(); ++n)
    EXPECT_EQ(bin::parse_frame(as_bytes(out).first(n), frame),
              bin::ParseResult::kNeedMore)
        << n;
  ASSERT_EQ(bin::parse_frame(as_bytes(out), frame), bin::ParseResult::kFrame);
  EXPECT_EQ(frame.tag, static_cast<std::uint8_t>(bin::Op::kLabel));
  ASSERT_EQ(frame.body.size(), 4u);
  EXPECT_EQ(bin::get_u32(frame.body.data()),
            bgp::Community(100, 20000).wire());
  EXPECT_EQ(frame.consumed, out.size());
}

TEST(BinaryWire, OversizedLengthRejectedBeforeBodyArrives) {
  // Only the 4-byte length field is present — a liar's length must be
  // rejected immediately, not buffered toward.
  std::string out;
  bin::put_u32(out, static_cast<std::uint32_t>(bin::kMaxFramePayload + 1));
  bin::Frame frame;
  EXPECT_EQ(bin::parse_frame(as_bytes(out), frame),
            bin::ParseResult::kOversized);
}

TEST(BinaryWire, ZeroPayloadIsMalformed) {
  std::string out;
  bin::put_u32(out, 0);  // no room for even the tag byte
  bin::Frame frame;
  EXPECT_EQ(bin::parse_frame(as_bytes(out), frame),
            bin::ParseResult::kMalformed);
}

TEST(BinaryWire, ErrBodyRoundTrip) {
  std::string out;
  bin::encode_err(out, bin::ErrCode::kVersionSkew, "speak version 1");
  bin::Frame frame;
  ASSERT_EQ(bin::parse_frame(as_bytes(out), frame), bin::ParseResult::kFrame);
  EXPECT_EQ(frame.tag, static_cast<std::uint8_t>(bin::Status::kErr));
  const auto err = bin::parse_err_body(frame.body);
  ASSERT_TRUE(err);
  EXPECT_EQ(err->code, bin::ErrCode::kVersionSkew);
  EXPECT_EQ(err->message, "speak version 1");
}

TEST(BinaryWire, StatsBodyRoundTrip) {
  bin::StatsPayload stats;
  stats.connections = 7;
  stats.queries = 12345;
  stats.batch_queries = 42;
  stats.entries = 99;
  stats.label_epochs = 3;
  stats.p50_us = 1.5;
  stats.p99_us = 250.25;
  std::string out;
  bin::encode_stats_ok(out, stats);
  bin::Frame frame;
  ASSERT_EQ(bin::parse_frame(as_bytes(out), frame), bin::ParseResult::kFrame);
  EXPECT_EQ(frame.tag, static_cast<std::uint8_t>(bin::Status::kOk));
  const auto parsed = bin::parse_stats_body(frame.body);
  ASSERT_TRUE(parsed);
  EXPECT_EQ(*parsed, stats);
}

// --- negotiated fast path through Client --------------------------------

TEST(BinaryServer, NegotiatedLabelMatchesLineProtocol) {
  Server server(primed_classifier(), loopback_config());
  server.start();

  auto line = Client::connect("127.0.0.1", server.port());
  auto wire = Client::connect("127.0.0.1", server.port());
  wire.negotiate_binary();
  EXPECT_TRUE(wire.binary());
  EXPECT_FALSE(line.binary());

  for (const auto community :
       {bgp::Community(100, 20000), bgp::Community(100, 1),
        bgp::Community(100, 9999), bgp::Community(5, 5)}) {
    EXPECT_EQ(wire.label(community), line.label(community))
        << community.to_string();
  }

  server.request_stop();
  server.wait();
}

TEST(BinaryServer, BatchLabelMatchesIndividualQueries) {
  Server server(primed_classifier(), loopback_config());
  server.start();

  auto client = Client::connect("127.0.0.1", server.port());
  client.negotiate_binary();

  const std::vector<bgp::Community> batch = {
      bgp::Community(100, 20000), bgp::Community(100, 1),
      bgp::Community(100, 203), bgp::Community(7, 7)};
  const auto labels = client.labels(batch);
  ASSERT_EQ(labels.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i)
    EXPECT_EQ(labels[i], client.label(batch[i])) << batch[i].to_string();

  // One BATCH-LABEL frame counts every community as a query but only one
  // round trip.
  const auto stats = client.binary_stats();
  EXPECT_GE(stats.batch_queries, 1u);
  EXPECT_GE(stats.queries, batch.size());
  EXPECT_GE(stats.label_epochs, 1u);
  EXPECT_EQ(stats.entries, 3u);

  server.request_stop();
  server.wait();
}

TEST(BinaryServer, LineModeBatchHelperDegradesToLoop) {
  Server server(primed_classifier(), loopback_config());
  server.start();

  auto client = Client::connect("127.0.0.1", server.port());
  const std::vector<bgp::Community> batch = {bgp::Community(100, 20000),
                                             bgp::Community(100, 1)};
  const auto labels = client.labels(batch);  // line mode: N LABEL commands
  ASSERT_EQ(labels.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i)
    EXPECT_EQ(labels[i], client.label(batch[i]));

  server.request_stop();
  server.wait();
}

// --- raw-socket abuse ---------------------------------------------------

/// Minimal blocking TCP connection with a receive deadline, for tests
/// that must send bytes Client would refuse to encode.
class RawConn {
 public:
  explicit RawConn(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof addr) != 0) {
      ::close(fd_);
      fd_ = -1;
      return;
    }
    timeval tv{};
    tv.tv_sec = 2;
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  }
  ~RawConn() {
    if (fd_ >= 0) ::close(fd_);
  }
  RawConn(const RawConn&) = delete;
  RawConn& operator=(const RawConn&) = delete;

  [[nodiscard]] bool ok() const { return fd_ >= 0; }

  /// Best-effort send: the server may already have closed on us
  /// mid-stream (that is the point of these tests), so EPIPE/ECONNRESET
  /// are not failures.
  void send_bytes(std::span<const std::uint8_t> bytes) {
    std::size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                               MSG_NOSIGNAL);
      if (n <= 0) return;
      sent += static_cast<std::size_t>(n);
    }
  }
  void send_str(const std::string& s) {
    send_bytes({reinterpret_cast<const std::uint8_t*>(s.data()), s.size()});
  }
  void shutdown_write() { ::shutdown(fd_, SHUT_WR); }

  /// Reads until the server closes the connection or `deadline` passes.
  /// Returns everything received; sets `closed` when the server hung up.
  std::string drain(bool& closed,
                    std::chrono::milliseconds deadline =
                        std::chrono::milliseconds(5000)) {
    closed = false;
    std::string all;
    const auto until = std::chrono::steady_clock::now() + deadline;
    char buf[4096];
    while (std::chrono::steady_clock::now() < until) {
      const ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
      if (n == 0) {
        closed = true;
        break;
      }
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) continue;
        closed = true;  // reset counts as a close for these tests
        break;
      }
      all.append(buf, static_cast<std::size_t>(n));
    }
    return all;
  }

 private:
  int fd_ = -1;
};

/// Parses every complete frame out of `bytes`; returns false if the
/// stream holds bytes that are neither a complete frame nor a prefix of
/// one (i.e. the server wrote garbage).
bool parse_all_frames(const std::string& bytes,
                      std::vector<bin::Frame>* frames = nullptr) {
  std::span<const unsigned char> rest = as_bytes(bytes);
  while (!rest.empty()) {
    bin::Frame frame;
    switch (bin::parse_frame(rest, frame)) {
      case bin::ParseResult::kFrame:
        if (frames != nullptr) frames->push_back(frame);
        rest = rest.subspan(frame.consumed);
        break;
      case bin::ParseResult::kNeedMore:
        return true;  // trailing prefix is fine: the server got closed on
      default:
        return false;
    }
  }
  return true;
}

std::string hello_bytes(std::uint16_t version = bin::kVersion) {
  std::string out;
  bin::encode_hello(out, version);
  return out;
}

void expect_server_alive(Server& server) {
  auto probe = Client::connect("127.0.0.1", server.port());
  (void)probe.label(bgp::Community(100, 20000));  // throws on a dead server
}

TEST(BinaryServer, VersionSkewGetsFramedErrorThenClose) {
  Server server(primed_classifier(), loopback_config());
  server.start();

  RawConn conn(server.port());
  ASSERT_TRUE(conn.ok());
  conn.send_str(hello_bytes(/*version=*/2));
  bool closed = false;
  const std::string answer = conn.drain(closed);
  EXPECT_TRUE(closed);
  std::vector<bin::Frame> frames;
  ASSERT_TRUE(parse_all_frames(answer, &frames));
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].tag, static_cast<std::uint8_t>(bin::Status::kErr));
  const auto err = bin::parse_err_body(frames[0].body);
  ASSERT_TRUE(err);
  EXPECT_EQ(err->code, bin::ErrCode::kVersionSkew);

  expect_server_alive(server);
  server.request_stop();
  server.wait();
}

TEST(BinaryServer, BadMagicGetsFramedErrorThenClose) {
  Server server(primed_classifier(), loopback_config());
  server.start();

  RawConn conn(server.port());
  ASSERT_TRUE(conn.ok());
  // First byte 0xB6 routes to the binary path; the rest of the magic is
  // wrong.
  std::string hello = hello_bytes();
  hello[1] = 'X';
  conn.send_str(hello);
  bool closed = false;
  const std::string answer = conn.drain(closed);
  EXPECT_TRUE(closed);
  std::vector<bin::Frame> frames;
  ASSERT_TRUE(parse_all_frames(answer, &frames));
  ASSERT_EQ(frames.size(), 1u);
  const auto err = bin::parse_err_body(frames[0].body);
  ASSERT_TRUE(err);
  EXPECT_EQ(err->code, bin::ErrCode::kBadMagic);

  expect_server_alive(server);
  server.request_stop();
  server.wait();
}

TEST(BinaryServer, LengthLieAboveCapGetsOversizedThenClose) {
  Server server(primed_classifier(), loopback_config());
  server.start();

  RawConn conn(server.port());
  ASSERT_TRUE(conn.ok());
  std::string stream = hello_bytes();
  bin::put_u32(stream, 0x7FFFFFFFu);  // length lie: ~2 GiB frame
  conn.send_str(stream);
  bool closed = false;
  const std::string answer = conn.drain(closed);
  EXPECT_TRUE(closed);
  std::vector<bin::Frame> frames;
  ASSERT_TRUE(parse_all_frames(answer, &frames));
  ASSERT_EQ(frames.size(), 2u);  // hello-ok, then the error
  const auto err = bin::parse_err_body(frames[1].body);
  ASSERT_TRUE(err);
  EXPECT_EQ(err->code, bin::ErrCode::kOversized);

  expect_server_alive(server);
  server.request_stop();
  server.wait();
}

TEST(BinaryServer, TruncatedFrameThenEofClosesCleanly) {
  Server server(primed_classifier(), loopback_config());
  server.start();

  RawConn conn(server.port());
  ASSERT_TRUE(conn.ok());
  std::string request;
  bin::encode_label_request(request, bgp::Community(100, 20000));
  std::string stream = hello_bytes() + request.substr(0, request.size() - 2);
  conn.send_str(stream);
  conn.shutdown_write();
  bool closed = false;
  const std::string answer = conn.drain(closed);
  EXPECT_TRUE(closed);  // half a frame never blocks the connection open
  std::vector<bin::Frame> frames;
  ASSERT_TRUE(parse_all_frames(answer, &frames));
  ASSERT_EQ(frames.size(), 1u);  // just the hello-ok; no answer invented
  EXPECT_EQ(frames[0].tag, static_cast<std::uint8_t>(bin::Status::kOk));

  expect_server_alive(server);
  server.request_stop();
  server.wait();
}

TEST(BinaryServer, TruncatedHelloThenEofClosesCleanly) {
  Server server(primed_classifier(), loopback_config());
  server.start();

  RawConn conn(server.port());
  ASSERT_TRUE(conn.ok());
  const std::string hello = hello_bytes();
  conn.send_str(hello.substr(0, 3));
  conn.shutdown_write();
  bool closed = false;
  (void)conn.drain(closed);
  EXPECT_TRUE(closed);

  expect_server_alive(server);
  server.request_stop();
  server.wait();
}

TEST(BinaryServer, UnknownOpcodeGetsBadOpcode) {
  Server server(primed_classifier(), loopback_config());
  server.start();

  RawConn conn(server.port());
  ASSERT_TRUE(conn.ok());
  std::string stream = hello_bytes();
  bin::put_u32(stream, 1);
  stream.push_back(static_cast<char>(0x7F));  // no such opcode
  conn.send_str(stream);
  bool closed = false;
  const std::string answer = conn.drain(closed);
  EXPECT_TRUE(closed);
  std::vector<bin::Frame> frames;
  ASSERT_TRUE(parse_all_frames(answer, &frames));
  ASSERT_EQ(frames.size(), 2u);
  const auto err = bin::parse_err_body(frames[1].body);
  ASSERT_TRUE(err);
  EXPECT_EQ(err->code, bin::ErrCode::kBadOpcode);

  expect_server_alive(server);
  server.request_stop();
  server.wait();
}

TEST(BinaryServer, MismatchedBodyGetsMalformed) {
  Server server(primed_classifier(), loopback_config());
  server.start();

  RawConn conn(server.port());
  ASSERT_TRUE(conn.ok());
  std::string stream = hello_bytes();
  bin::put_u32(stream, 4);  // LABEL with a 3-byte community: wrong
  stream.push_back(static_cast<char>(bin::Op::kLabel));
  stream.append(3, '\0');
  conn.send_str(stream);
  bool closed = false;
  const std::string answer = conn.drain(closed);
  EXPECT_TRUE(closed);
  std::vector<bin::Frame> frames;
  ASSERT_TRUE(parse_all_frames(answer, &frames));
  ASSERT_EQ(frames.size(), 2u);
  const auto err = bin::parse_err_body(frames[1].body);
  ASSERT_TRUE(err);
  EXPECT_EQ(err->code, bin::ErrCode::kMalformed);

  expect_server_alive(server);
  server.request_stop();
  server.wait();
}

// --- corruption fuzz ----------------------------------------------------
//
// mrt::corrupt_spans was built for MRT records and journal frames; binary
// protocol frames are just a third layout: {4-byte header, length at
// offset 0, little-endian}.  Sweep every corruption kind over a valid
// request stream and assert the invariant that matters: the server
// answers only well-formed frames, eventually closes once we stop
// sending, and survives to serve the next connection.  It must never
// hang (drain() has a deadline) and never crash (expect_server_alive).

inline constexpr mrt::FrameLayout kBinaryFrameLayout{
    /*header_bytes=*/4, /*length_offset=*/0, /*length_big_endian=*/false};

struct RequestImage {
  std::vector<std::uint8_t> bytes;
  std::vector<mrt::RecordSpan> spans;
};

RequestImage build_request_image() {
  RequestImage image;
  std::string arena;
  const std::vector<bgp::Community> batch = {bgp::Community(100, 20000),
                                             bgp::Community(100, 1)};
  for (int i = 0; i < 6; ++i) {
    const std::size_t before = arena.size();
    switch (i % 3) {
      case 0:
        bin::encode_label_request(
            arena, bgp::Community(100, static_cast<std::uint16_t>(i)));
        break;
      case 1:
        bin::encode_batch_label_request(arena, batch);
        break;
      default:
        bin::encode_stats_request(arena);
        break;
    }
    image.spans.push_back({before, arena.size() - before});
  }
  image.bytes.assign(arena.begin(), arena.end());
  return image;
}

TEST(BinaryFuzz, CorruptedFrameStreamsNeverWedgeTheServer) {
  Server server(primed_classifier(), loopback_config());
  server.start();

  const RequestImage image = build_request_image();
  for (const mrt::CorruptionKind kind : mrt::kAllCorruptionKinds) {
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
      const auto corrupted = mrt::corrupt_spans(
          image.bytes, image.spans, kBinaryFrameLayout, kind, seed);
      SCOPED_TRACE(corrupted.description);

      RawConn conn(server.port());
      ASSERT_TRUE(conn.ok());
      conn.send_str(hello_bytes());
      conn.send_bytes(corrupted.bytes);
      conn.shutdown_write();

      bool closed = false;
      const std::string answer = conn.drain(closed);
      // The server stopped talking to us in bounded time — either it
      // closed on a protocol error or it drained to EOF and closed.
      EXPECT_TRUE(closed);
      // Whatever it said on the way out parses as frames: a corrupted
      // *request* stream must never produce a corrupted *response*
      // stream.
      EXPECT_TRUE(parse_all_frames(answer));
    }
  }

  // After 16 hostile connections the daemon still answers.
  expect_server_alive(server);
  const auto stats = server.stats();
  EXPECT_GE(stats.binary_connections, 16u);
  server.request_stop();
  server.wait();
}

}  // namespace
}  // namespace bgpintent::serve
