#include "serve/server.hpp"

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "core/pipeline.hpp"
#include "routing/scenario.hpp"
#include "serve/client.hpp"
#include "serve/snapshot.hpp"
#include "util/strings.hpp"

namespace bgpintent::serve {
namespace {

using core::IncrementalClassifier;
using dict::Intent;

bgp::RibEntry entry(std::uint32_t vp, std::vector<bgp::Asn> path,
                    std::vector<bgp::Community> communities) {
  bgp::RibEntry e;
  e.vantage_point.asn = vp;
  e.vantage_point.address = vp;
  e.route.prefix = *bgp::Prefix::parse("10.0.0.0/24");
  e.route.path = bgp::AsPath(std::move(path));
  e.route.communities = std::move(communities);
  return e;
}

ServerConfig loopback_config() {
  ServerConfig cfg;
  cfg.port = 0;        // ephemeral
  cfg.threads = 2;     // independent of the host's core count
  return cfg;
}

// The acceptance integration test: a server started from a snapshot must
// answer LABEL queries identically to a batch Pipeline::run over the same
// tuples.
TEST(Server, SnapshotServerMatchesBatchPipeline) {
  routing::ScenarioConfig cfg;
  cfg.topology.seed = 103;
  cfg.topology.tier1_count = 4;
  cfg.topology.tier2_count = 12;
  cfg.topology.stub_count = 60;
  cfg.vantage_point_count = 12;
  const auto scenario = routing::Scenario::build(cfg);
  const auto entries = scenario.entries();

  core::Pipeline batch;
  batch.set_org_map(&scenario.topology().orgs);
  const auto batch_result = batch.run(entries);

  // Prime a classifier, persist it, and start the server from the loaded
  // snapshot — the restart must be invisible to queries.
  IncrementalClassifier primed;
  primed.set_org_map(&scenario.topology().orgs);
  primed.ingest(entries);
  const std::string snap = ::testing::TempDir() + "serve_test_snap.bin";
  save_snapshot(primed, snap);
  auto loaded = load_snapshot(snap);
  loaded.set_org_map(&scenario.topology().orgs);
  std::remove(snap.c_str());

  Server server(std::move(loaded), loopback_config());
  server.start();
  ASSERT_NE(server.port(), 0);
  auto client = Client::connect("127.0.0.1", server.port());

  std::size_t compared = 0;
  for (const auto& stats : batch_result.observations.all()) {
    ++compared;
    EXPECT_EQ(client.label(stats.community),
              batch_result.inference.label_of(stats.community))
        << stats.community.to_string();
  }
  EXPECT_GT(compared, 100u);

  const auto totals = client.totals();
  EXPECT_EQ(totals.information, batch_result.inference.information_count);
  EXPECT_EQ(totals.action, batch_result.inference.action_count);

  client.quit();
  server.request_stop();
  server.wait();
}

TEST(Server, IngestViaProtocolMatchesDirectIngest) {
  IncrementalClassifier reference;
  Server server(IncrementalClassifier(), loopback_config());
  server.start();
  auto client = Client::connect("127.0.0.1", server.port());

  const std::vector<bgp::RibEntry> feed{
      entry(61, {61, 100, 201}, {bgp::Community(100, 20000)}),
      entry(62, {62, 100, 201}, {bgp::Community(100, 20000)}),
      entry(70, {70, 999, 201}, {bgp::Community(100, 2569)}),
      entry(71, {71, 999, 201}, {bgp::Community(100, 2569)}),
      entry(61, {61, 64512, 201}, {bgp::Community(64512, 9)}),
  };
  for (const auto& e : feed) {
    reference.ingest(e);
    client.ingest(e.route.path, e.route.communities);
  }

  const auto want = reference.totals();
  const auto got = client.totals();
  EXPECT_EQ(got.communities, want.communities);
  EXPECT_EQ(got.information, want.information);
  EXPECT_EQ(got.action, want.action);
  EXPECT_EQ(got.unclassified, want.unclassified);
  EXPECT_EQ(client.label(bgp::Community(100, 20000)),
            reference.label_of(bgp::Community(100, 20000)));

  server.request_stop();
  server.wait();
}

// Regression: a server started with preloaded-but-dirty state publishes
// its initial RCU epoch from the *cached* labels and settles lazily.  A
// TOTALS arriving before the first LABEL used to let classifier_.totals()
// consume the dirty set privately — the settle-on-first-query path then
// found nothing dirty, published no epoch, and every later LABEL answered
// from the stale initial epoch forever.
TEST(Server, TotalsBeforeFirstLabelStillPublishesSettledEpoch) {
  const std::vector<bgp::RibEntry> feed{
      entry(61, {61, 100, 201}, {bgp::Community(100, 20000)}),
      entry(62, {62, 100, 201}, {bgp::Community(100, 20000)}),
      entry(70, {70, 999, 201}, {bgp::Community(100, 2569)}),
      entry(71, {71, 999, 201}, {bgp::Community(100, 2569)}),
      entry(61, {61, 64512, 201}, {bgp::Community(64512, 9)}),
  };
  IncrementalClassifier reference;
  IncrementalClassifier primed;
  for (const auto& e : feed) {
    reference.ingest(e);
    primed.ingest(e);
  }
  ASSERT_GT(primed.dirty_alpha_count(), 0u);

  Server server(std::move(primed), loopback_config());
  server.start();
  auto client = Client::connect("127.0.0.1", server.port());

  // First command is TOTALS: it must settle through the epoch publisher.
  const auto want = reference.totals();
  const auto got = client.totals();
  EXPECT_EQ(got.communities, want.communities);
  EXPECT_EQ(got.information, want.information);
  EXPECT_EQ(got.action, want.action);
  EXPECT_EQ(got.unclassified, want.unclassified);

  // LABEL queries after that TOTALS must see the settled labels, not the
  // stale initial epoch.
  std::size_t classified = 0;
  for (const auto c : {bgp::Community(100, 20000), bgp::Community(100, 2569),
                       bgp::Community(64512, 9)}) {
    const Intent want_label = reference.label_of(c);
    EXPECT_EQ(client.label(c), want_label) << c.to_string();
    if (want_label != Intent::kUnclassified) ++classified;
  }
  EXPECT_GT(classified, 0u);

  client.quit();
  server.request_stop();
  server.wait();
}

// Regression for response-backlog backpressure: a peer that pipelines
// thousands of requests without reading must not grow the outbox without
// bound — the server pauses parsing at max_response_backlog_bytes — and
// once the peer starts draining, every pipelined request must still be
// answered: pause and resume are lossless across many cycles.
TEST(Server, PipelinedRequestsSurviveBacklogPauseAndResume) {
  IncrementalClassifier classifier;
  classifier.ingest(entry(61, {61, 100, 201}, {bgp::Community(100, 1)}));
  ServerConfig cfg = loopback_config();
  cfg.max_response_backlog_bytes = 2048;  // force many pause/resume cycles
  Server server(std::move(classifier), cfg);
  server.start();

  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  (void)::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr);

  constexpr std::size_t kRequests = 4000;
  std::string burst;
  for (std::size_t i = 0; i < kRequests; ++i) burst += "LABEL 100:1\n";

  // Interleave nonblocking sends with reads: once the server pauses, our
  // send window closes until we drain responses, so a blocking writer
  // would deadlock — exactly the flow-control regime under test.
  std::size_t sent = 0;
  std::string received;
  std::size_t answers = 0;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (answers < kRequests) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "pause/resume wedged: sent=" << sent << " answers=" << answers;
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = static_cast<short>(
        POLLIN | (sent < burst.size() ? POLLOUT : 0));
    if (::poll(&pfd, 1, 1000) <= 0) continue;
    if (sent < burst.size() && (pfd.revents & POLLOUT) != 0) {
      const ssize_t n = ::send(fd, burst.data() + sent, burst.size() - sent,
                               MSG_NOSIGNAL);
      if (n > 0) sent += static_cast<std::size_t>(n);
    }
    if ((pfd.revents & (POLLIN | POLLHUP)) != 0) {
      char chunk[4096];
      const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
      ASSERT_NE(n, 0) << "server closed after " << answers << " answers";
      if (n > 0) {
        received.append(chunk, static_cast<std::size_t>(n));
        answers = static_cast<std::size_t>(
            std::count(received.begin(), received.end(), '\n'));
      }
    }
  }
  EXPECT_EQ(answers, kRequests);
  std::size_t start = 0;
  while (start < received.size()) {
    const std::size_t newline = received.find('\n', start);
    ASSERT_NE(newline, std::string::npos);
    EXPECT_TRUE(util::starts_with(received.substr(start, newline - start),
                                  "OK community=100:1 label="))
        << received.substr(start, newline - start);
    start = newline + 1;
  }
  ::close(fd);
  server.request_stop();
  server.wait();
}

TEST(Server, StatsReportCountersAndLatency) {
  IncrementalClassifier classifier;
  classifier.ingest(entry(61, {61, 100, 201}, {bgp::Community(100, 1)}));
  Server server(std::move(classifier), loopback_config());
  server.start();
  auto client = Client::connect("127.0.0.1", server.port());

  (void)client.label(bgp::Community(100, 1));
  (void)client.label(bgp::Community(100, 2));

  const std::string response = client.request("STATS");
  const auto pairs = parse_ok_response(response);
  ASSERT_TRUE(pairs) << response;
  for (const char* key :
       {"uptime_s", "connections", "queries", "entries", "dirty",
        "decode_ok", "decode_errors", "p50_us", "p99_us"})
    EXPECT_TRUE(pairs->contains(key)) << key << " missing in " << response;
  EXPECT_EQ(pairs->at("queries"), "2");
  EXPECT_EQ(pairs->at("entries"), "1");
  EXPECT_EQ(pairs->at("connections"), "1");

  const auto stats = server.stats();
  EXPECT_EQ(stats.queries_served, 2u);
  EXPECT_EQ(stats.entries_ingested, 1u);
  EXPECT_GE(stats.p99_query_us, stats.p50_query_us);

  server.request_stop();
  server.wait();
}

TEST(Server, IngestBatchSkipsAndCountsMalformedPairs) {
  Server server(IncrementalClassifier(), loopback_config());
  server.start();
  auto client = Client::connect("127.0.0.1", server.port());

  // Three pairs, the middle one torn: the good ones ingest, the bad one is
  // counted — mirroring a tolerant MRT decode of a batch.
  const std::string response = client.request(
      "INGEST 61,100,201 100:1 61,abc 100:2 62,100,201 100:3");
  EXPECT_EQ(response, "OK ingested=2 errors=1 entries=2") << response;

  // The per-batch outcome accumulates into the daemon-wide counters.
  const auto pairs = parse_ok_response(client.request("STATS"));
  ASSERT_TRUE(pairs);
  EXPECT_EQ(pairs->at("decode_ok"), "2");
  EXPECT_EQ(pairs->at("decode_errors"), "1");
  const auto stats = server.stats();
  EXPECT_EQ(stats.decode_records_ok, 2u);
  EXPECT_EQ(stats.decode_records_skipped, 1u);

  server.request_stop();
  server.wait();
}

TEST(Server, SnapshotCommandWritesLoadableFile) {
  IncrementalClassifier classifier;
  classifier.ingest(entry(61, {61, 100, 201}, {bgp::Community(100, 20000)}));
  const auto want_state = classifier.export_state();

  Server server(std::move(classifier), loopback_config());
  server.start();
  auto client = Client::connect("127.0.0.1", server.port());

  const std::string path = ::testing::TempDir() + "serve_cmd_snap.bin";
  client.snapshot(path);
  const auto restored = load_snapshot(path);
  EXPECT_EQ(restored.export_state(), want_state);
  std::remove(path.c_str());

  // Unwritable destination must produce an ERR, not kill the server.
  EXPECT_THROW(client.snapshot("/nonexistent-dir/snap.bin"), ServeError);
  (void)client.request("STATS");  // connection still alive

  server.request_stop();
  server.wait();
}

TEST(Server, MalformedCommandsGetErrResponses) {
  Server server(IncrementalClassifier(), loopback_config());
  server.start();
  auto client = Client::connect("127.0.0.1", server.port());

  for (const char* bad : {
           "BOGUS",                  // unknown command
           "LABEL",                  // missing argument
           "LABEL notacommunity",    // unparsable community
           "LABEL 100:1 extra",      // trailing garbage
           "INGEST 61,100",          // missing communities
           "INGEST 61,abc 100:1",    // bad path
           "INGEST 61,100 100",      // bad community
           "SNAPSHOT",               // missing path
       }) {
    const std::string response = client.request(bad);
    EXPECT_TRUE(util::starts_with(response, "ERR ")) << bad << " -> "
                                                     << response;
  }
  // The connection survives every ERR.
  EXPECT_EQ(client.request("QUIT"), "OK bye");

  server.request_stop();
  server.wait();
}

TEST(Server, OverlongLineIsRejected) {
  Server server(IncrementalClassifier(), loopback_config());
  server.start();
  auto client = Client::connect("127.0.0.1", server.port());

  // Longer than kMaxLineBytes: the server must answer ERR and close (or
  // the connection drops mid-send once the server closes its end).
  const std::string huge(kMaxLineBytes + 16, 'A');
  try {
    const std::string response = client.request(huge);
    EXPECT_TRUE(util::starts_with(response, "ERR ")) << response;
  } catch (const ServeError&) {
    // Acceptable: server closed before we finished sending.
  }

  server.request_stop();
  server.wait();
}

TEST(Server, IdleConnectionTimesOut) {
  auto cfg = loopback_config();
  cfg.read_timeout_ms = 200;
  Server server(IncrementalClassifier(), cfg);
  server.start();
  auto client = Client::connect("127.0.0.1", server.port());

  std::this_thread::sleep_for(std::chrono::milliseconds(700));
  // The server has sent "ERR read timeout" and closed; the next request
  // either reads that line or hits the closed socket.
  try {
    const std::string response = client.request("STATS");
    EXPECT_TRUE(util::starts_with(response, "ERR ")) << response;
  } catch (const ServeError&) {
    // Also acceptable.
  }

  server.request_stop();
  server.wait();
}

TEST(Server, GracefulDrainStopsAccepting) {
  Server server(IncrementalClassifier(), loopback_config());
  server.start();
  const std::uint16_t port = server.port();
  {
    auto client = Client::connect("127.0.0.1", port);
    EXPECT_EQ(client.request("QUIT"), "OK bye");
  }
  server.request_stop();
  server.wait();
  EXPECT_THROW((void)Client::connect("127.0.0.1", port), ServeError);
}

TEST(Server, FinalSnapshotWrittenOnDrain) {
  const std::string path = ::testing::TempDir() + "serve_drain_snap.bin";
  auto cfg = loopback_config();
  cfg.snapshot_path = path;
  IncrementalClassifier classifier;
  classifier.ingest(entry(61, {61, 100, 201}, {bgp::Community(100, 20000)}));
  const auto want_state = classifier.export_state();

  Server server(std::move(classifier), cfg);
  server.start();
  server.request_stop();
  server.wait();

  const auto restored = load_snapshot(path);
  EXPECT_EQ(restored.export_state(), want_state);
  std::remove(path.c_str());
}

TEST(Server, IdleLoopBlocksWithoutConnections) {
  // The event loop must park in epoll_wait while nothing is happening: no
  // timers armed, no connections, no subscribers.  The seed daemon span
  // spun a 100 ms poll slice per worker; this asserts the epoll rewrite
  // stays parked.  A handful of wakeups is tolerated (startup, the
  // stop eventfd), a polling loop would show hundreds.
  Server server(IncrementalClassifier(), loopback_config());
  server.start();

  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  const std::uint64_t settled = server.stats().loop_wakeups;
  std::this_thread::sleep_for(std::chrono::milliseconds(1000));
  const std::uint64_t after_idle = server.stats().loop_wakeups;
  EXPECT_LE(after_idle - settled, 4u)
      << "idle second burned " << (after_idle - settled) << " wakeups";

  server.request_stop();
  server.wait();
}

TEST(Server, ConcurrentLabelAndIngestSeeOnlyWholeEpochs) {
  // The RCU contract: a LABEL reader dereferences one published snapshot
  // and never observes a half-applied reclassification.  Readers hammer
  // LABEL while a writer INGESTs evidence that flips 100:20000 between
  // labels; every answer must be a value some epoch actually published —
  // the label may change between queries but may never be torn into a
  // value outside the intent enum, and the per-epoch batch answer must be
  // internally consistent.  Run under TSan (ctest preset tsan) this also
  // proves the swap itself is race-free.
  Server server(IncrementalClassifier(), loopback_config());
  server.start();

  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> reads{0};
  std::vector<std::thread> readers;
  readers.reserve(2);
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&server, &done, &reads] {
      auto client = Client::connect("127.0.0.1", server.port());
      while (!done.load(std::memory_order_relaxed)) {
        const Intent got = client.label(bgp::Community(100, 20000));
        ASSERT_TRUE(got == Intent::kAction || got == Intent::kInformation ||
                    got == Intent::kUnclassified);
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  {
    auto writer = Client::connect("127.0.0.1", server.port());
    for (int round = 0; round < 40; ++round) {
      // Alternate evidence shape so reclassification keeps flipping the
      // label: sometimes on-path (action-ish), sometimes off-path.
      const std::uint32_t vp = 61 + static_cast<std::uint32_t>(round % 4);
      const std::string path = (round % 2 == 0)
                                   ? util::format("%u,100,201", vp)
                                   : util::format("%u,300,%u", vp, 400 + round);
      (void)writer.request(
          util::format("INGEST %s 100:20000", path.c_str()));
    }
  }

  // Let the readers observe the final epoch a little longer, then stop.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  done.store(true, std::memory_order_relaxed);
  for (auto& reader : readers) reader.join();
  EXPECT_GT(reads.load(), 0u);

  // Epochs were actually swapped while the readers ran.
  EXPECT_GT(server.stats().label_epochs, 1u);

  server.request_stop();
  server.wait();
}

// --- connect_with_retry -------------------------------------------------

TEST(ClientRetry, TransientErrnoClassification) {
  EXPECT_TRUE(ConnectError("refused", ECONNREFUSED).transient());
  EXPECT_TRUE(ConnectError("timed out", ETIMEDOUT).transient());
  EXPECT_FALSE(ConnectError("bad address", 0).transient());
  EXPECT_FALSE(ConnectError("no such host", EACCES).transient());
}

TEST(ClientRetry, SucceedsAgainstRunningServer) {
  Server server(IncrementalClassifier(), loopback_config());
  server.start();
  auto client = Client::connect_with_retry("127.0.0.1", server.port());
  EXPECT_TRUE(util::starts_with(client.request("STATS"), "OK "));
  server.request_stop();
  server.wait();
}

TEST(ClientRetry, BacksOffThenRethrowsAgainstClosedPort) {
  // A port that just stopped listening: connections are refused, which is
  // transient — the retry loop must spend its budget before rethrowing.
  Server server(IncrementalClassifier(), loopback_config());
  server.start();
  const std::uint16_t port = server.port();
  server.request_stop();
  server.wait();

  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.initial_delay_ms = 20;
  policy.max_delay_ms = 40;
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_THROW((void)Client::connect_with_retry("127.0.0.1", port, policy),
               ConnectError);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - t0);
  // Two backoff sleeps of >= (1 - jitter) * {20, 40} ms happened.
  EXPECT_GE(elapsed.count(), 40);
}

TEST(ClientRetry, NonTransientFailureDoesNotRetry) {
  RetryPolicy policy;
  policy.max_attempts = 10;
  policy.initial_delay_ms = 500;  // would be very visible if retried
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_THROW(
      (void)Client::connect_with_retry("not-an-ipv4-literal", 1, policy),
      ConnectError);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - t0);
  EXPECT_LT(elapsed.count(), 400);
}

}  // namespace
}  // namespace bgpintent::serve
