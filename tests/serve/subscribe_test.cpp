// SUBSCRIBE protocol tests over a stream-mode server: the mode split
// (classic servers ERR, stream servers lose SNAPSHOT), the snapshot
// block, live EVENT push after an INGEST, and from= resumption with the
// automatic snapshot resync — docs/STREAMING.md end to end over a real
// socket.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "core/incremental.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "stream/engine.hpp"
#include "util/strings.hpp"

namespace bgpintent::serve {
namespace {

constexpr int kPushTimeoutMs = 10000;

bgp::RibEntry entry(std::uint32_t vp, std::vector<bgp::Asn> path,
                    std::vector<bgp::Community> communities) {
  bgp::RibEntry e;
  e.vantage_point.asn = vp;
  e.vantage_point.address = vp;
  e.route.prefix = *bgp::Prefix::parse("10.0.0.0/24");
  e.route.path = bgp::AsPath(std::move(path));
  e.route.communities = std::move(communities);
  return e;
}

ServerConfig loopback_config() {
  ServerConfig cfg;
  cfg.port = 0;
  cfg.threads = 2;
  return cfg;
}

/// Reads a full SUBSCRIBE snapshot block after its OK line: DATA lines up
/// to "END snapshot seq=N".  Returns the DATA lines.
std::vector<std::string> read_snapshot_block(Client& client) {
  std::vector<std::string> data;
  for (;;) {
    const auto line = client.read_line(kPushTimeoutMs);
    if (!line) {
      ADD_FAILURE() << "timed out inside snapshot block";
      return data;
    }
    if (util::starts_with(*line, "END snapshot ")) return data;
    EXPECT_TRUE(util::starts_with(*line, "DATA ")) << *line;
    data.push_back(*line);
  }
}

TEST(Subscribe, ClassicServerAnswersErr) {
  Server server(core::IncrementalClassifier(), loopback_config());
  server.start();
  auto client = Client::connect("127.0.0.1", server.port());
  EXPECT_TRUE(util::starts_with(client.request("SUBSCRIBE"), "ERR "));
  // The connection stays request/response after the rejection.
  EXPECT_TRUE(util::starts_with(client.request("STATS"), "OK "));
  server.request_stop();
  server.wait();
}

TEST(Subscribe, StreamServerRejectsSnapshotCommandButServesQueries) {
  stream::StreamEngine engine;
  engine.announce(entry(61, {61, 100, 201}, {bgp::Community(100, 1)}), 10);
  engine.reclassify();
  Server server(engine, loopback_config());
  server.start();
  auto client = Client::connect("127.0.0.1", server.port());

  EXPECT_TRUE(util::starts_with(client.request("SNAPSHOT /tmp/x"), "ERR "));
  EXPECT_EQ(client.label(bgp::Community(100, 1)), dict::Intent::kInformation);
  const auto totals = client.totals();
  EXPECT_EQ(totals.information, 1u);

  // STATS carries the stream-mode counters.
  const auto pairs = parse_ok_response(client.request("STATS"));
  ASSERT_TRUE(pairs);
  for (const char* key : {"updates_ok", "updates_errors", "window_epochs",
                          "reclassified_communities"})
    EXPECT_TRUE(pairs->contains(key)) << key;

  server.request_stop();
  server.wait();
}

TEST(Subscribe, SnapshotThenLivePush) {
  stream::StreamEngine engine;
  engine.announce(entry(61, {61, 100, 201}, {bgp::Community(100, 1)}), 10);
  engine.reclassify();

  Server server(engine, loopback_config());
  server.start();
  auto subscriber = Client::connect("127.0.0.1", server.port());
  subscriber.send_line("SUBSCRIBE snapshot");
  const auto ok = subscriber.read_line(kPushTimeoutMs);
  ASSERT_TRUE(ok);
  EXPECT_TRUE(util::starts_with(*ok, "OK subscribed seq=")) << *ok;

  const auto data = read_snapshot_block(subscriber);
  ASSERT_EQ(data.size(), 1u);
  EXPECT_EQ(data[0], "DATA community=100:1 label=information");

  // A second connection ingests a fresh pure-on community: the engine
  // publishes a label-change event and the accept thread pushes it to the
  // parked subscriber without any further request.
  auto producer = Client::connect("127.0.0.1", server.port());
  const std::string response =
      producer.request("INGEST 62,300,400 300:7");
  EXPECT_TRUE(util::starts_with(response, "OK ")) << response;

  const auto event = subscriber.read_line(kPushTimeoutMs);
  ASSERT_TRUE(event) << "no EVENT pushed";
  EXPECT_TRUE(util::starts_with(*event, "EVENT seq=")) << *event;
  EXPECT_NE(event->find("community=300:7"), std::string::npos) << *event;
  EXPECT_NE(event->find("old=unclassified"), std::string::npos) << *event;
  EXPECT_NE(event->find("new=information"), std::string::npos) << *event;

  server.request_stop();
  server.wait();
}

TEST(Subscribe, FromResumesTheDelta) {
  stream::StreamEngine engine;
  engine.announce(entry(61, {61, 100, 201}, {bgp::Community(100, 1)}), 10);
  engine.announce(entry(62, {62, 300, 400}, {bgp::Community(300, 7)}), 11);
  engine.reclassify();
  ASSERT_EQ(engine.last_seq(), 2u);

  Server server(engine, loopback_config());
  server.start();

  // from=1: event 1 was seen, event 2 is the delta.
  auto client = Client::connect("127.0.0.1", server.port());
  client.send_line("SUBSCRIBE from=1");
  const auto ok = client.read_line(kPushTimeoutMs);
  ASSERT_TRUE(ok);
  EXPECT_EQ(*ok, "OK subscribed seq=1");
  const auto event = client.read_line(kPushTimeoutMs);
  ASSERT_TRUE(event);
  EXPECT_TRUE(util::starts_with(*event, "EVENT seq=2 ")) << *event;

  server.request_stop();
  server.wait();
}

TEST(Subscribe, FromBeyondLastSeqResyncsWithSnapshot) {
  stream::StreamEngine engine;
  engine.announce(entry(61, {61, 100, 201}, {bgp::Community(100, 1)}), 10);
  engine.reclassify();

  Server server(engine, loopback_config());
  server.start();
  auto client = Client::connect("127.0.0.1", server.port());

  // A subscriber claiming to be ahead of the log is stale (e.g. the
  // server restarted): it must be resynced with a full snapshot.
  client.send_line("SUBSCRIBE from=9999");
  const auto ok = client.read_line(kPushTimeoutMs);
  ASSERT_TRUE(ok);
  EXPECT_TRUE(util::starts_with(*ok, "OK subscribed seq=")) << *ok;
  const auto data = read_snapshot_block(client);
  EXPECT_EQ(data.size(), 1u);

  server.request_stop();
  server.wait();
}

TEST(Subscribe, LaggedSubscriberIsDroppedAndCounted) {
  stream::StreamEngine engine;
  engine.announce(entry(61, {61, 100, 201}, {bgp::Community(100, 1)}), 10);
  engine.reclassify();

  // Zero queue budget: the outbox counts as full the moment the engine's
  // event ring trims past the peer, so the laggard path fires
  // deterministically instead of depending on socket buffer sizes.
  ServerConfig cfg = loopback_config();
  cfg.max_subscriber_queue_bytes = 0;
  Server server(engine, cfg);
  server.start();

  auto subscriber = Client::connect("127.0.0.1", server.port());
  subscriber.send_line("SUBSCRIBE snapshot");
  const auto ok = subscriber.read_line(kPushTimeoutMs);
  ASSERT_TRUE(ok);
  ASSERT_TRUE(util::starts_with(*ok, "OK subscribed seq=")) << *ok;
  (void)read_snapshot_block(subscriber);

  // Push the event log more than kMaxBufferedEvents past the subscriber
  // while it reads nothing: its delta position falls off the ring.  Every
  // announce carries a fresh community, so each pass publishes one event
  // per announce since the previous pass.
  // A gap needs first_buffered > next_after + 1 = 2, i.e. the ring must
  // trim *past* the peer's resume point, not merely reach it.
  for (std::uint32_t i = 0; engine.first_buffered_seq() <= 2 && i < 90000;
       ++i) {
    engine.announce(
        entry(100000 + i, {100000 + i, 1000 + (i >> 12), 201},
              {bgp::Community(static_cast<std::uint16_t>(1000 + (i >> 12)),
                              static_cast<std::uint16_t>(i & 0xFFF))}),
        10);
    if ((i & 0xFFF) == 0xFFF) engine.reclassify();
  }
  engine.reclassify();
  ASSERT_GT(engine.first_buffered_seq(), 2u);

  // The push loop notices the gap, sends the final notice, and drops the
  // connection.
  bool lagged = false;
  for (;;) {
    const auto line = subscriber.read_line(kPushTimeoutMs);
    if (!line) break;  // connection closed
    if (*line == "ERR lagged") {
      lagged = true;
      break;
    }
  }
  EXPECT_TRUE(lagged);

  auto observer = Client::connect("127.0.0.1", server.port());
  const auto pairs = parse_ok_response(observer.request("STATS"));
  ASSERT_TRUE(pairs);
  EXPECT_EQ(pairs->at("subscribers_dropped"), "1");

  server.request_stop();
  server.wait();
}

/// A line-oriented subscriber over a raw socket with a deliberately tiny
/// SO_RCVBUF, so the loopback pair holds only a few tens of KB and the
/// server's per-subscriber outbox genuinely retains unsent bytes across
/// service passes (serve::Client inherits default buffers large enough to
/// swallow whole outboxes, which hides partial-flush bugs).
class TinyBufferSubscriber {
 public:
  explicit TinyBufferSubscriber(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) throw std::runtime_error("socket() failed");
    int rcvbuf = 4096;  // kernel doubles it; still far below one outbox
    if (::setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof rcvbuf) !=
        0)
      throw std::runtime_error("setsockopt(SO_RCVBUF) failed");
    // Advertise a small MSS: loopback's 64 KB segments let the server's
    // sndbuf auto-tune past the whole outbox, which would make every
    // flush complete and defeat the partial-flush regime this test needs.
    int mss = 536;
    if (::setsockopt(fd_, IPPROTO_TCP, TCP_MAXSEG, &mss, sizeof mss) != 0)
      throw std::runtime_error("setsockopt(TCP_MAXSEG) failed");
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr) != 1 ||
        ::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof addr) != 0)
      throw std::runtime_error("connect to loopback failed");
  }

  ~TinyBufferSubscriber() {
    if (fd_ >= 0) ::close(fd_);
  }

  void send_line(const std::string& line) {
    const std::string message = line + "\n";
    std::size_t sent = 0;
    while (sent < message.size()) {
      const ssize_t n = ::send(fd_, message.data() + sent,
                               message.size() - sent, MSG_NOSIGNAL);
      ASSERT_GT(n, 0);
      sent += static_cast<std::size_t>(n);
    }
  }

  std::optional<std::string> read_line(int timeout_ms) {
    for (;;) {
      const std::size_t newline = buffer_.find('\n');
      if (newline != std::string::npos) {
        std::string line = buffer_.substr(0, newline);
        buffer_.erase(0, newline + 1);
        return line;
      }
      pollfd pfd{};
      pfd.fd = fd_;
      pfd.events = POLLIN;
      const int ready = ::poll(&pfd, 1, timeout_ms);
      if (ready <= 0) return std::nullopt;  // timeout or poll error
      char chunk[4096];
      const ssize_t got = ::recv(fd_, chunk, sizeof chunk, 0);
      if (got <= 0) return std::nullopt;  // peer closed
      buffer_.append(chunk, static_cast<std::size_t>(got));
    }
  }

 private:
  int fd_ = -1;
  std::string buffer_;  // bytes received beyond the last returned line
};

TEST(Subscribe, SlowReaderEventuallyReceivesEveryEvent) {
  stream::StreamEngine engine;
  engine.announce(entry(61, {61, 100, 201}, {bgp::Community(100, 1)}), 10);
  engine.reclassify();

  Server server(engine, loopback_config());
  server.start();

  TinyBufferSubscriber subscriber(server.port());
  subscriber.send_line("SUBSCRIBE");
  const auto ok = subscriber.read_line(kPushTimeoutMs);
  ASSERT_TRUE(ok);
  ASSERT_TRUE(util::starts_with(*ok, "OK subscribed seq=")) << *ok;
  const auto subscribed_at = util::parse_u64(
      std::string_view(*ok).substr(std::string_view("OK subscribed seq=")
                                       .size()));
  ASSERT_TRUE(subscribed_at) << *ok;

  // Publish far more event bytes than the shrunken socket pair can hold
  // while the subscriber reads nothing, so flushes go partial and the
  // subscriber survives many service passes with unsent outbox bytes —
  // the regime where a compaction self-move used to wipe the outbox and
  // strand the peer.  Stay below the 65536-event ring so the peer is
  // never genuinely lagged.
  constexpr std::uint32_t kEvents = 6000;
  for (std::uint32_t i = 0; i < kEvents; ++i) {
    engine.announce(
        entry(100000 + i, {100000 + i, 1000 + (i >> 12), 201},
              {bgp::Community(static_cast<std::uint16_t>(1000 + (i >> 12)),
                              static_cast<std::uint16_t>(i & 0xFFF))}),
        10);
    if ((i & 0x1FF) == 0x1FF) engine.reclassify();
  }
  engine.reclassify();
  const std::uint64_t last = engine.last_seq();
  ASSERT_GE(last, kEvents);
  ASSERT_EQ(engine.first_buffered_seq(), 1u) << "ring trimmed; test invalid";

  // Stay idle across several service passes: the accept thread queues the
  // backlog, fills the tiny socket, and compacts the registry while most
  // of the outbox is still unsent — only then start reading.
  std::this_thread::sleep_for(std::chrono::milliseconds(500));

  // A merely-slow subscriber (still on the ring) must receive every event
  // after its subscription point, in order, with no gap and no ERR lagged.
  for (std::uint64_t next = *subscribed_at + 1; next <= last; ++next) {
    const auto line = subscriber.read_line(kPushTimeoutMs);
    ASSERT_TRUE(line) << "push stream stalled waiting for seq=" << next;
    ASSERT_TRUE(util::starts_with(*line, "EVENT seq=")) << *line;
    const std::string_view rest =
        std::string_view(*line).substr(std::string_view("EVENT seq=").size());
    const auto seq = util::parse_u64(rest.substr(0, rest.find(' ')));
    ASSERT_TRUE(seq) << *line;
    ASSERT_EQ(*seq, next) << *line;
  }

  server.request_stop();
  server.wait();
}

TEST(Subscribe, MalformedSubscribeArgumentsGetErr) {
  stream::StreamEngine engine;
  Server server(engine, loopback_config());
  server.start();
  auto client = Client::connect("127.0.0.1", server.port());
  for (const char* bad :
       {"SUBSCRIBE bogus", "SUBSCRIBE from=notanumber",
        "SUBSCRIBE snapshot extra junk"}) {
    const std::string response = client.request(bad);
    EXPECT_TRUE(util::starts_with(response, "ERR ")) << bad << " -> "
                                                     << response;
  }
  server.request_stop();
  server.wait();
}

}  // namespace
}  // namespace bgpintent::serve
