// SUBSCRIBE protocol tests over a stream-mode server: the mode split
// (classic servers ERR, stream servers lose SNAPSHOT), the snapshot
// block, live EVENT push after an INGEST, and from= resumption with the
// automatic snapshot resync — docs/STREAMING.md end to end over a real
// socket.
#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "core/incremental.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "stream/engine.hpp"
#include "util/strings.hpp"

namespace bgpintent::serve {
namespace {

constexpr int kPushTimeoutMs = 10000;

bgp::RibEntry entry(std::uint32_t vp, std::vector<bgp::Asn> path,
                    std::vector<bgp::Community> communities) {
  bgp::RibEntry e;
  e.vantage_point.asn = vp;
  e.vantage_point.address = vp;
  e.route.prefix = *bgp::Prefix::parse("10.0.0.0/24");
  e.route.path = bgp::AsPath(std::move(path));
  e.route.communities = std::move(communities);
  return e;
}

ServerConfig loopback_config() {
  ServerConfig cfg;
  cfg.port = 0;
  cfg.threads = 2;
  return cfg;
}

/// Reads a full SUBSCRIBE snapshot block after its OK line: DATA lines up
/// to "END snapshot seq=N".  Returns the DATA lines.
std::vector<std::string> read_snapshot_block(Client& client) {
  std::vector<std::string> data;
  for (;;) {
    const auto line = client.read_line(kPushTimeoutMs);
    if (!line) {
      ADD_FAILURE() << "timed out inside snapshot block";
      return data;
    }
    if (util::starts_with(*line, "END snapshot ")) return data;
    EXPECT_TRUE(util::starts_with(*line, "DATA ")) << *line;
    data.push_back(*line);
  }
}

TEST(Subscribe, ClassicServerAnswersErr) {
  Server server(core::IncrementalClassifier(), loopback_config());
  server.start();
  auto client = Client::connect("127.0.0.1", server.port());
  EXPECT_TRUE(util::starts_with(client.request("SUBSCRIBE"), "ERR "));
  // The connection stays request/response after the rejection.
  EXPECT_TRUE(util::starts_with(client.request("STATS"), "OK "));
  server.request_stop();
  server.wait();
}

TEST(Subscribe, StreamServerRejectsSnapshotCommandButServesQueries) {
  stream::StreamEngine engine;
  engine.announce(entry(61, {61, 100, 201}, {bgp::Community(100, 1)}), 10);
  engine.reclassify();
  Server server(engine, loopback_config());
  server.start();
  auto client = Client::connect("127.0.0.1", server.port());

  EXPECT_TRUE(util::starts_with(client.request("SNAPSHOT /tmp/x"), "ERR "));
  EXPECT_EQ(client.label(bgp::Community(100, 1)), dict::Intent::kInformation);
  const auto totals = client.totals();
  EXPECT_EQ(totals.information, 1u);

  // STATS carries the stream-mode counters.
  const auto pairs = parse_ok_response(client.request("STATS"));
  ASSERT_TRUE(pairs);
  for (const char* key : {"updates_ok", "updates_errors", "window_epochs",
                          "reclassified_communities"})
    EXPECT_TRUE(pairs->contains(key)) << key;

  server.request_stop();
  server.wait();
}

TEST(Subscribe, SnapshotThenLivePush) {
  stream::StreamEngine engine;
  engine.announce(entry(61, {61, 100, 201}, {bgp::Community(100, 1)}), 10);
  engine.reclassify();

  Server server(engine, loopback_config());
  server.start();
  auto subscriber = Client::connect("127.0.0.1", server.port());
  subscriber.send_line("SUBSCRIBE snapshot");
  const auto ok = subscriber.read_line(kPushTimeoutMs);
  ASSERT_TRUE(ok);
  EXPECT_TRUE(util::starts_with(*ok, "OK subscribed seq=")) << *ok;

  const auto data = read_snapshot_block(subscriber);
  ASSERT_EQ(data.size(), 1u);
  EXPECT_EQ(data[0], "DATA community=100:1 label=information");

  // A second connection ingests a fresh pure-on community: the engine
  // publishes a label-change event and the accept thread pushes it to the
  // parked subscriber without any further request.
  auto producer = Client::connect("127.0.0.1", server.port());
  const std::string response =
      producer.request("INGEST 62,300,400 300:7");
  EXPECT_TRUE(util::starts_with(response, "OK ")) << response;

  const auto event = subscriber.read_line(kPushTimeoutMs);
  ASSERT_TRUE(event) << "no EVENT pushed";
  EXPECT_TRUE(util::starts_with(*event, "EVENT seq=")) << *event;
  EXPECT_NE(event->find("community=300:7"), std::string::npos) << *event;
  EXPECT_NE(event->find("old=unclassified"), std::string::npos) << *event;
  EXPECT_NE(event->find("new=information"), std::string::npos) << *event;

  server.request_stop();
  server.wait();
}

TEST(Subscribe, FromResumesTheDelta) {
  stream::StreamEngine engine;
  engine.announce(entry(61, {61, 100, 201}, {bgp::Community(100, 1)}), 10);
  engine.announce(entry(62, {62, 300, 400}, {bgp::Community(300, 7)}), 11);
  engine.reclassify();
  ASSERT_EQ(engine.last_seq(), 2u);

  Server server(engine, loopback_config());
  server.start();

  // from=1: event 1 was seen, event 2 is the delta.
  auto client = Client::connect("127.0.0.1", server.port());
  client.send_line("SUBSCRIBE from=1");
  const auto ok = client.read_line(kPushTimeoutMs);
  ASSERT_TRUE(ok);
  EXPECT_EQ(*ok, "OK subscribed seq=1");
  const auto event = client.read_line(kPushTimeoutMs);
  ASSERT_TRUE(event);
  EXPECT_TRUE(util::starts_with(*event, "EVENT seq=2 ")) << *event;

  server.request_stop();
  server.wait();
}

TEST(Subscribe, FromBeyondLastSeqResyncsWithSnapshot) {
  stream::StreamEngine engine;
  engine.announce(entry(61, {61, 100, 201}, {bgp::Community(100, 1)}), 10);
  engine.reclassify();

  Server server(engine, loopback_config());
  server.start();
  auto client = Client::connect("127.0.0.1", server.port());

  // A subscriber claiming to be ahead of the log is stale (e.g. the
  // server restarted): it must be resynced with a full snapshot.
  client.send_line("SUBSCRIBE from=9999");
  const auto ok = client.read_line(kPushTimeoutMs);
  ASSERT_TRUE(ok);
  EXPECT_TRUE(util::starts_with(*ok, "OK subscribed seq=")) << *ok;
  const auto data = read_snapshot_block(client);
  EXPECT_EQ(data.size(), 1u);

  server.request_stop();
  server.wait();
}

TEST(Subscribe, LaggedSubscriberIsDroppedAndCounted) {
  stream::StreamEngine engine;
  engine.announce(entry(61, {61, 100, 201}, {bgp::Community(100, 1)}), 10);
  engine.reclassify();

  // Zero queue budget: the outbox counts as full the moment the engine's
  // event ring trims past the peer, so the laggard path fires
  // deterministically instead of depending on socket buffer sizes.
  ServerConfig cfg = loopback_config();
  cfg.max_subscriber_queue_bytes = 0;
  Server server(engine, cfg);
  server.start();

  auto subscriber = Client::connect("127.0.0.1", server.port());
  subscriber.send_line("SUBSCRIBE snapshot");
  const auto ok = subscriber.read_line(kPushTimeoutMs);
  ASSERT_TRUE(ok);
  ASSERT_TRUE(util::starts_with(*ok, "OK subscribed seq=")) << *ok;
  (void)read_snapshot_block(subscriber);

  // Push the event log more than kMaxBufferedEvents past the subscriber
  // while it reads nothing: its delta position falls off the ring.  Every
  // announce carries a fresh community, so each pass publishes one event
  // per announce since the previous pass.
  // A gap needs first_buffered > next_after + 1 = 2, i.e. the ring must
  // trim *past* the peer's resume point, not merely reach it.
  for (std::uint32_t i = 0; engine.first_buffered_seq() <= 2 && i < 90000;
       ++i) {
    engine.announce(
        entry(100000 + i, {100000 + i, 1000 + (i >> 12), 201},
              {bgp::Community(static_cast<std::uint16_t>(1000 + (i >> 12)),
                              static_cast<std::uint16_t>(i & 0xFFF))}),
        10);
    if ((i & 0xFFF) == 0xFFF) engine.reclassify();
  }
  engine.reclassify();
  ASSERT_GT(engine.first_buffered_seq(), 2u);

  // The push loop notices the gap, sends the final notice, and drops the
  // connection.
  bool lagged = false;
  for (;;) {
    const auto line = subscriber.read_line(kPushTimeoutMs);
    if (!line) break;  // connection closed
    if (*line == "ERR lagged") {
      lagged = true;
      break;
    }
  }
  EXPECT_TRUE(lagged);

  auto observer = Client::connect("127.0.0.1", server.port());
  const auto pairs = parse_ok_response(observer.request("STATS"));
  ASSERT_TRUE(pairs);
  EXPECT_EQ(pairs->at("subscribers_dropped"), "1");

  server.request_stop();
  server.wait();
}

TEST(Subscribe, MalformedSubscribeArgumentsGetErr) {
  stream::StreamEngine engine;
  Server server(engine, loopback_config());
  server.start();
  auto client = Client::connect("127.0.0.1", server.port());
  for (const char* bad :
       {"SUBSCRIBE bogus", "SUBSCRIBE from=notanumber",
        "SUBSCRIBE snapshot extra junk"}) {
    const std::string response = client.request(bad);
    EXPECT_TRUE(util::starts_with(response, "ERR ")) << bad << " -> "
                                                     << response;
  }
  server.request_stop();
  server.wait();
}

}  // namespace
}  // namespace bgpintent::serve
