#include "serve/protocol.hpp"

#include <gtest/gtest.h>

namespace bgpintent::serve {
namespace {

TEST(Protocol, PathRoundTrip) {
  const bgp::AsPath path(std::vector<bgp::Asn>{61, 100, 100, 201});
  const auto wire = format_path(path);
  ASSERT_TRUE(wire);
  EXPECT_EQ(*wire, "61,100,100,201");
  const auto parsed = parse_path(*wire);
  ASSERT_TRUE(parsed);
  EXPECT_EQ(*parsed, path);
}

TEST(Protocol, PathRejectsSetsEmptyAndGarbage) {
  EXPECT_FALSE(format_path(bgp::AsPath()));
  const bgp::AsPath with_set(std::vector<bgp::PathSegment>{
      {bgp::SegmentType::kSequence, {61}},
      {bgp::SegmentType::kSet, {4, 5}}});
  EXPECT_FALSE(format_path(with_set));
  EXPECT_FALSE(parse_path(""));
  EXPECT_FALSE(parse_path("61,,201"));
  EXPECT_FALSE(parse_path("61,abc"));
  EXPECT_FALSE(parse_path("61,-2"));
}

TEST(Protocol, CommunitiesRoundTrip) {
  const std::vector<bgp::Community> communities{{100, 1}, {200, 65535}};
  const std::string wire = format_communities(communities);
  EXPECT_EQ(wire, "100:1,200:65535");
  const auto parsed = parse_communities(wire);
  ASSERT_TRUE(parsed);
  EXPECT_EQ(*parsed, communities);
}

TEST(Protocol, EmptyCommunitiesUseDash) {
  EXPECT_EQ(format_communities({}), "-");
  const auto parsed = parse_communities("-");
  ASSERT_TRUE(parsed);
  EXPECT_TRUE(parsed->empty());
  EXPECT_FALSE(parse_communities(""));
  EXPECT_FALSE(parse_communities("100:1,"));
  EXPECT_FALSE(parse_communities("100"));
}

TEST(Protocol, ParseOkResponse) {
  const auto pairs = parse_ok_response("OK label=information queries=42");
  ASSERT_TRUE(pairs);
  EXPECT_EQ(pairs->at("label"), "information");
  EXPECT_EQ(pairs->at("queries"), "42");
  EXPECT_FALSE(parse_ok_response("ERR unknown command 'X'"));
  EXPECT_FALSE(parse_ok_response(""));
  const auto bare = parse_ok_response("OK");
  ASSERT_TRUE(bare);
  EXPECT_TRUE(bare->empty());
}

}  // namespace
}  // namespace bgpintent::serve
