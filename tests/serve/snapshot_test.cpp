#include "serve/snapshot.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "routing/scenario.hpp"

namespace bgpintent::serve {
namespace {

using core::IncrementalClassifier;
using dict::Intent;

bgp::RibEntry entry(std::uint32_t vp, std::vector<bgp::Asn> path,
                    std::vector<bgp::Community> communities) {
  bgp::RibEntry e;
  e.vantage_point.asn = vp;
  e.vantage_point.address = vp;
  e.route.prefix = *bgp::Prefix::parse("10.0.0.0/24");
  e.route.path = bgp::AsPath(std::move(path));
  e.route.communities = std::move(communities);
  return e;
}

IncrementalClassifier populated_classifier() {
  IncrementalClassifier classifier;
  for (std::uint32_t vp = 61; vp < 66; ++vp)
    classifier.ingest(entry(vp, {vp, 100, 201}, {bgp::Community(100, 20000)}));
  for (std::uint32_t vp = 70; vp < 90; ++vp)
    classifier.ingest(entry(vp, {vp, 999, 201}, {bgp::Community(100, 2569)}));
  classifier.ingest(entry(61, {61, 64512, 201}, {bgp::Community(64512, 7)}));
  // Query one community so part of the state is clean, part dirty.
  (void)classifier.label_of(bgp::Community(100, 20000));
  return classifier;
}

std::string decode_error(std::vector<std::uint8_t> bytes) {
  try {
    (void)decode_snapshot(bytes);
  } catch (const SnapshotError& e) {
    return e.what();
  }
  return "";
}

TEST(Snapshot, EmptyStateRoundTrips) {
  IncrementalClassifier empty;
  auto restored = decode_snapshot(encode_snapshot(empty));
  EXPECT_EQ(restored.export_state(), empty.export_state());
  const auto totals = restored.totals();
  EXPECT_EQ(totals.communities, 0u);
  EXPECT_EQ(totals.information, 0u);
  EXPECT_EQ(totals.action, 0u);
  EXPECT_EQ(totals.unclassified, 0u);
  EXPECT_EQ(restored.label_of(bgp::Community(100, 1)), Intent::kUnclassified);
}

// The acceptance property: save -> load leaves state, totals(), and every
// label_of() bit-identical to the original.
TEST(Snapshot, RoundTripIsLossless) {
  routing::ScenarioConfig cfg;
  cfg.topology.seed = 97;
  cfg.topology.tier1_count = 4;
  cfg.topology.tier2_count = 15;
  cfg.topology.stub_count = 80;
  cfg.vantage_point_count = 15;
  const auto scenario = routing::Scenario::build(cfg);
  const auto entries = scenario.entries();

  IncrementalClassifier original;
  original.set_org_map(&scenario.topology().orgs);
  original.ingest(entries);
  // Query a subset so the snapshot carries a mix of cached labels and
  // still-dirty alphas.
  std::size_t queried = 0;
  for (const auto& e : entries) {
    if (e.route.communities.empty()) continue;
    (void)original.label_of(e.route.communities.front());
    if (++queried >= 50) break;
  }

  auto restored = decode_snapshot(encode_snapshot(original));
  restored.set_org_map(&scenario.topology().orgs);

  EXPECT_EQ(restored.export_state(), original.export_state());
  EXPECT_EQ(restored.entries_ingested(), original.entries_ingested());
  EXPECT_EQ(restored.dirty_alpha_count(), original.dirty_alpha_count());
  EXPECT_EQ(restored.classifier_config().min_gap,
            original.classifier_config().min_gap);

  // Every label identical (forces reclassification of the dirty alphas on
  // both sides, which must agree too).
  core::Pipeline batch;
  batch.set_org_map(&scenario.topology().orgs);
  const auto batch_result = batch.run(entries);
  std::size_t compared = 0;
  for (const auto& stats : batch_result.observations.all()) {
    ++compared;
    EXPECT_EQ(restored.label_of(stats.community),
              original.label_of(stats.community))
        << stats.community.to_string();
  }
  EXPECT_GT(compared, 100u);

  const auto a = original.totals();
  const auto b = restored.totals();
  EXPECT_EQ(a.communities, b.communities);
  EXPECT_EQ(a.information, b.information);
  EXPECT_EQ(a.action, b.action);
  EXPECT_EQ(a.unclassified, b.unclassified);
}

// A mid-stream snapshot must behave as if the restart never happened:
// continuing to ingest into the restored classifier matches continuing in
// the original.
TEST(Snapshot, MidStreamRestartIsTransparent) {
  routing::ScenarioConfig cfg;
  cfg.topology.seed = 99;
  cfg.topology.tier1_count = 4;
  cfg.topology.tier2_count = 16;
  cfg.topology.stub_count = 50;
  cfg.vantage_point_count = 12;
  const auto scenario = routing::Scenario::build(cfg);
  const auto entries = scenario.entries();
  const std::size_t half = entries.size() / 2;

  IncrementalClassifier original;
  original.set_org_map(&scenario.topology().orgs);
  original.ingest(std::span(entries).first(half));

  auto restored = decode_snapshot(encode_snapshot(original));
  restored.set_org_map(&scenario.topology().orgs);

  original.ingest(std::span(entries).subspan(half));
  restored.ingest(std::span(entries).subspan(half));

  EXPECT_EQ(restored.export_state(), original.export_state());
  const auto a = original.totals();
  const auto b = restored.totals();
  EXPECT_EQ(a.communities, b.communities);
  EXPECT_EQ(a.information, b.information);
  EXPECT_EQ(a.action, b.action);
  EXPECT_EQ(a.unclassified, b.unclassified);
}

TEST(Snapshot, NeverOnPathExclusionLiftsAfterRestore) {
  IncrementalClassifier classifier;
  classifier.ingest(entry(61, {61, 100, 201}, {bgp::Community(777, 5)}));
  EXPECT_EQ(classifier.label_of(bgp::Community(777, 5)),
            Intent::kUnclassified);

  auto restored = decode_snapshot(encode_snapshot(classifier));
  EXPECT_EQ(restored.label_of(bgp::Community(777, 5)),
            Intent::kUnclassified);
  // The lifting path arrives only after the restart; the exclusion must
  // still lift.
  restored.ingest(entry(62, {62, 777, 201}, {bgp::Community(777, 5)}));
  EXPECT_NE(restored.label_of(bgp::Community(777, 5)),
            Intent::kUnclassified);
}

TEST(Snapshot, PrivateAlphaSurvivesAndStaysUnclassified) {
  IncrementalClassifier classifier;
  classifier.ingest(
      entry(61, {61, 64512, 201}, {bgp::Community(64512, 100)}));
  auto restored = decode_snapshot(encode_snapshot(classifier));
  EXPECT_EQ(restored.label_of(bgp::Community(64512, 100)),
            Intent::kUnclassified);
  const auto totals = restored.totals();
  EXPECT_EQ(totals.communities, 1u);
  EXPECT_EQ(totals.unclassified, 1u);
}

TEST(Snapshot, ConfigsSurviveRoundTrip) {
  core::ClassifierConfig cc;
  cc.min_gap = 7;
  cc.ratio_threshold = 3.5;
  cc.mean_of_ratios = true;
  core::ObservationConfig oc;
  oc.sibling_aware = false;
  IncrementalClassifier classifier(cc, oc);
  classifier.ingest(entry(61, {61, 100, 201}, {bgp::Community(100, 1)}));

  const auto restored = decode_snapshot(encode_snapshot(classifier));
  EXPECT_EQ(restored.classifier_config().min_gap, 7u);
  EXPECT_DOUBLE_EQ(restored.classifier_config().ratio_threshold, 3.5);
  EXPECT_TRUE(restored.classifier_config().mean_of_ratios);
  EXPECT_FALSE(restored.observation_config().sibling_aware);
}

TEST(Snapshot, StreamRoundTrip) {
  const auto classifier = populated_classifier();
  std::stringstream stream;
  save_snapshot(classifier, stream);
  auto restored = load_snapshot(stream);
  EXPECT_EQ(restored.export_state(), classifier.export_state());
}

TEST(Snapshot, FileRoundTripIsAtomic) {
  const auto classifier = populated_classifier();
  const std::string path = ::testing::TempDir() + "bgpintent_snap_test.bin";
  save_snapshot(classifier, path);
  auto restored = load_snapshot(path);
  EXPECT_EQ(restored.export_state(), classifier.export_state());
  // The temp file used for the atomic rename must be gone.
  std::FILE* tmp = std::fopen((path + ".tmp").c_str(), "rb");
  EXPECT_EQ(tmp, nullptr);
  if (tmp != nullptr) std::fclose(tmp);
  std::remove(path.c_str());
}

TEST(Snapshot, LoadMissingFileThrows) {
  EXPECT_THROW((void)load_snapshot(std::string(::testing::TempDir()) +
                                   "no_such_snapshot.bin"),
               SnapshotError);
}

// --- corruption fuzzing -------------------------------------------------

TEST(Snapshot, RejectsTruncation) {
  const auto bytes = encode_snapshot(populated_classifier());
  ASSERT_GT(bytes.size(), 28u);
  for (const std::size_t len :
       {std::size_t{0}, std::size_t{7}, std::size_t{8}, std::size_t{12},
        std::size_t{20}, std::size_t{27}, std::size_t{28}, bytes.size() / 2,
        bytes.size() - 1}) {
    std::vector<std::uint8_t> cut(bytes.begin(),
                                  bytes.begin() + static_cast<long>(len));
    EXPECT_THROW((void)decode_snapshot(cut), SnapshotError) << len;
  }
}

TEST(Snapshot, RejectsBadMagic) {
  auto bytes = encode_snapshot(populated_classifier());
  bytes[0] ^= 0xff;
  EXPECT_NE(decode_error(bytes).find("magic"), std::string::npos);
}

TEST(Snapshot, RejectsFutureVersion) {
  auto bytes = encode_snapshot(populated_classifier());
  bytes[8] = static_cast<std::uint8_t>(kSnapshotVersion + 1);  // u32 LE
  EXPECT_NE(decode_error(bytes).find("version"), std::string::npos);
}

TEST(Snapshot, RejectsZeroVersion) {
  auto bytes = encode_snapshot(populated_classifier());
  bytes[8] = 0;
  EXPECT_NE(decode_error(bytes).find("version"), std::string::npos);
}

// Version 2 added the persisted decode counters mid-payload, so version-1
// images cannot be read; the rejection must say so and tell the operator
// what to do about it.
TEST(Snapshot, RejectsVersion1WithReingestGuidance) {
  auto bytes = encode_snapshot(populated_classifier());
  ASSERT_GE(kSnapshotVersion, 2u);
  bytes[8] = 1;  // u32 LE version field
  const std::string error = decode_error(bytes);
  EXPECT_NE(error.find("no longer supported"), std::string::npos) << error;
  EXPECT_NE(error.find("re-ingest"), std::string::npos) << error;
}

TEST(Snapshot, DecodeCountersSurviveRoundTrip) {
  auto classifier = populated_classifier();
  classifier.record_decode_outcome(1234, 7);
  classifier.record_decode_outcome(66, 3);
  const auto restored = decode_snapshot(encode_snapshot(classifier));
  EXPECT_EQ(restored.decode_records_ok(), 1300u);
  EXPECT_EQ(restored.decode_records_skipped(), 10u);
}

TEST(Snapshot, RejectsFlippedChecksumByte) {
  auto bytes = encode_snapshot(populated_classifier());
  bytes[12] ^= 0x01;  // first checksum byte
  EXPECT_NE(decode_error(bytes).find("checksum"), std::string::npos);
}

TEST(Snapshot, RejectsFlippedPayloadByte) {
  auto bytes = encode_snapshot(populated_classifier());
  bytes.back() ^= 0x01;
  EXPECT_NE(decode_error(bytes).find("checksum"), std::string::npos);
}

TEST(Snapshot, RejectsTrailingBytes) {
  auto bytes = encode_snapshot(populated_classifier());
  bytes.push_back(0);
  EXPECT_THROW((void)decode_snapshot(bytes), SnapshotError);
}

// --- v3 columnar format -------------------------------------------------

TEST(SnapshotV3, DefaultWriteFormatIsStillV2) {
  // Old builds must keep reading snapshots written with default options.
  const auto bytes = encode_snapshot(populated_classifier());
  ASSERT_GT(bytes.size(), 12u);
  EXPECT_EQ(bytes[8], 2u);  // u32 LE version field
}

TEST(SnapshotV3, EmptyStateRoundTrips) {
  IncrementalClassifier empty;
  auto restored =
      decode_snapshot(encode_snapshot(empty, SnapshotFormat::kV3));
  EXPECT_EQ(restored.export_state(), empty.export_state());
  EXPECT_EQ(restored.label_of(bgp::Community(100, 1)), Intent::kUnclassified);
}

TEST(SnapshotV3, HeapDecodeRoundTripsLosslessly) {
  const auto classifier = populated_classifier();
  const auto bytes = encode_snapshot(classifier, SnapshotFormat::kV3);
  ASSERT_GT(bytes.size(), 12u);
  EXPECT_EQ(bytes[8], 3u);
  auto restored = decode_snapshot(bytes);
  EXPECT_EQ(restored.export_state(), classifier.export_state());
  EXPECT_EQ(restored.entries_ingested(), classifier.entries_ingested());
  EXPECT_EQ(restored.dirty_alpha_count(), classifier.dirty_alpha_count());
}

TEST(SnapshotV3, ConfigsSurviveRoundTrip) {
  core::ClassifierConfig cc;
  cc.min_gap = 9;
  cc.ratio_threshold = 2.25;
  cc.mean_of_ratios = true;
  core::ObservationConfig oc;
  oc.sibling_aware = false;
  IncrementalClassifier classifier(cc, oc);
  classifier.ingest(entry(61, {61, 100, 201}, {bgp::Community(100, 1)}));

  const auto restored =
      decode_snapshot(encode_snapshot(classifier, SnapshotFormat::kV3));
  EXPECT_EQ(restored.classifier_config().min_gap, 9u);
  EXPECT_DOUBLE_EQ(restored.classifier_config().ratio_threshold, 2.25);
  EXPECT_TRUE(restored.classifier_config().mean_of_ratios);
  EXPECT_FALSE(restored.observation_config().sibling_aware);
}

TEST(SnapshotV3, MappedSnapshotServesBorrowedLabels) {
  auto classifier = populated_classifier();
  const std::string path = ::testing::TempDir() + "bgpintent_snap_v3.bin";
  save_snapshot(classifier, path, SnapshotFormat::kV3);

  const auto mapped = MappedSnapshot::open(path);
  EXPECT_EQ(mapped->classifier_config().min_gap,
            classifier.classifier_config().min_gap);
  // The pre-flattened serve columns are label_snapshot(), wire-sorted.
  auto expected = classifier.label_snapshot();
  std::sort(expected.begin(), expected.end(),
            [](const auto& a, const auto& b) {
              return a.first.wire() < b.first.wire();
            });
  const auto wires = mapped->label_wires();
  const auto intents = mapped->label_intents();
  ASSERT_EQ(wires.size(), expected.size());
  for (std::size_t i = 0; i < wires.size(); ++i) {
    EXPECT_EQ(wires[i], expected[i].first.wire());
    EXPECT_EQ(intents[i], expected[i].second);
  }

  // A borrowed classifier answers identically to the original.
  IncrementalClassifier borrowed(mapped->classifier_config(),
                                 mapped->observation_config());
  borrowed.restore_view(mapped->state_view());
  EXPECT_TRUE(borrowed.is_borrowed());
  EXPECT_EQ(borrowed.export_state(), classifier.export_state());
  for (const auto& [community, intent] : expected)
    EXPECT_EQ(borrowed.label_of(community), classifier.label_of(community))
        << community.to_string();
  std::remove(path.c_str());
}

TEST(SnapshotV3, FirstIngestDetachesTheBorrow) {
  auto original = populated_classifier();
  const std::string path = ::testing::TempDir() + "bgpintent_snap_v3d.bin";
  save_snapshot(original, path, SnapshotFormat::kV3);

  const auto mapped = MappedSnapshot::open(path);
  IncrementalClassifier borrowed(mapped->classifier_config(),
                                 mapped->observation_config());
  borrowed.restore_view(mapped->state_view());

  const auto extra = entry(91, {91, 555, 201}, {bgp::Community(555, 40)});
  borrowed.ingest(extra);
  original.ingest(extra);
  EXPECT_FALSE(borrowed.is_borrowed());
  EXPECT_EQ(borrowed.export_state(), original.export_state());
  std::remove(path.c_str());
}

TEST(SnapshotV3, MappedOpenRejectsV2WithResaveGuidance) {
  const std::string path = ::testing::TempDir() + "bgpintent_snap_v2m.bin";
  save_snapshot(populated_classifier(), path, SnapshotFormat::kV2);
  try {
    (void)MappedSnapshot::open(path);
    FAIL() << "a v2 file must not open as a mapping";
  } catch (const SnapshotError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("v3"), std::string::npos) << what;
    EXPECT_NE(what.find("--snapshot-mmap"), std::string::npos) << what;
  }
  std::remove(path.c_str());
}

TEST(SnapshotV3, MappedOpenRejectsMissingFile) {
  EXPECT_THROW((void)MappedSnapshot::open(std::string(::testing::TempDir()) +
                                          "no_such_snapshot_v3.bin"),
               SnapshotError);
}

TEST(SnapshotV3, RegionsCoverTheWholeImage) {
  const auto bytes =
      encode_snapshot(populated_classifier(), SnapshotFormat::kV3);
  const auto regions = snapshot_v3_regions(bytes);
  ASSERT_EQ(regions.size(), 28u);  // 26 segments + table + footer
  // Regions are disjoint, in order, and the footer ends the file; the gaps
  // between them are validated-zero alignment padding.
  std::size_t previous_end = 0;
  for (const auto& region : regions) {
    EXPECT_GE(region.offset, previous_end) << region.name;
    previous_end = region.offset + region.length;
  }
  EXPECT_EQ(previous_end, bytes.size());
  EXPECT_EQ(regions.back().name, "footer");
  EXPECT_EQ(regions.back().length, 32u);
}

}  // namespace
}  // namespace bgpintent::serve
