// v3 snapshot corruption fuzz sweep (docs/ROBUSTNESS.md): seeded
// bit-flip / truncation / splice / length-lie damage aimed at every named
// region of a columnar image — each column segment, the segment table, and
// the footer.  The contract under test: every corruption is rejected with
// a SnapshotError (never a misparse, never a crash), by both the heap
// decoder and the mmap reader, and a bit-flip inside a column segment is
// blamed on that segment by name.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bgp/community.hpp"
#include "mrt/fault.hpp"
#include "serve/snapshot.hpp"
#include "util/strings.hpp"

namespace bgpintent::serve {
namespace {

using core::IncrementalClassifier;

/// Snapshot regions are flat byte ranges with no per-record framing: a
/// "length lie" degenerates into stomping the region's first word, which
/// the checksums must still catch.
constexpr mrt::FrameLayout kFlatRegionLayout{0, 0, false};

bgp::RibEntry entry(std::uint32_t vp, std::vector<bgp::Asn> path,
                    std::vector<bgp::Community> communities) {
  bgp::RibEntry e;
  e.vantage_point.asn = vp;
  e.vantage_point.address = vp;
  e.route.prefix = *bgp::Prefix::parse("10.0.0.0/24");
  e.route.path = bgp::AsPath(std::move(path));
  e.route.communities = std::move(communities);
  return e;
}

/// One populated v3 image, built once: a mix of settled labels, dirty
/// alphas, and repeated paths so every column has content to damage.
const std::vector<std::uint8_t>& base_image() {
  static const std::vector<std::uint8_t> bytes = [] {
    IncrementalClassifier classifier;
    for (std::uint32_t vp = 61; vp < 66; ++vp)
      classifier.ingest(
          entry(vp, {vp, 100, 201}, {bgp::Community(100, 20000)}));
    for (std::uint32_t vp = 70; vp < 90; ++vp)
      classifier.ingest(entry(vp, {vp, 999, 201}, {bgp::Community(100, 2569),
                                                   bgp::Community(999, 30)}));
    classifier.ingest(entry(61, {61, 64512, 201}, {bgp::Community(64512, 7)}));
    (void)classifier.label_of(bgp::Community(100, 20000));
    return encode_snapshot(classifier, SnapshotFormat::kV3);
  }();
  return bytes;
}

const std::vector<SnapshotRegion>& base_regions() {
  static const std::vector<SnapshotRegion> regions =
      snapshot_v3_regions(base_image());
  return regions;
}

/// Both read paths must reject `bytes`; returns the heap decoder's message
/// for blame assertions.
std::string expect_both_readers_reject(const std::vector<std::uint8_t>& bytes,
                                       const std::string& label) {
  std::string message;
  try {
    (void)decode_snapshot(bytes);
    ADD_FAILURE() << label << ": heap decode accepted a corrupt image";
  } catch (const SnapshotError& error) {
    message = error.what();
    EXPECT_FALSE(message.empty()) << label;
  }

  const std::string path = ::testing::TempDir() + "bgpintent_v3fuzz.bin";
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    EXPECT_TRUE(out.good()) << label;
  }
  try {
    (void)MappedSnapshot::open(path);
    ADD_FAILURE() << label << ": mmap open accepted a corrupt image";
  } catch (const SnapshotError&) {
  }
  std::remove(path.c_str());
  return message;
}

TEST(SnapshotV3Corruption, BaseImageIsValidAndFullyRegioned) {
  EXPECT_NO_THROW((void)decode_snapshot(base_image()));
  ASSERT_EQ(base_regions().size(), 28u);
  std::size_t damageable = 0;
  for (const auto& region : base_regions())
    if (region.length >= 2) ++damageable;
  // Nearly every column must be populated, or the sweep proves nothing.
  EXPECT_GE(damageable, 26u);
}

// The full sweep: every region x every corruption kind x several seeds.
TEST(SnapshotV3Corruption, EveryRegionRejectsEveryDamageKind) {
  std::size_t applied = 0;
  for (const auto& region : base_regions()) {
    if (region.length < 2) continue;  // nothing to aim at (empty column)
    const mrt::RecordSpan span{region.offset, region.length};
    for (const mrt::CorruptionKind kind : mrt::kAllCorruptionKinds) {
      for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        const std::string label =
            util::format("%s:%s:seed%llu", region.name.c_str(),
                         mrt::to_string(kind).data(),
                         static_cast<unsigned long long>(seed));
        const mrt::CorruptionResult result = mrt::corrupt_spans(
            base_image(), {&span, 1}, kFlatRegionLayout, kind, seed);
        // A length lie can coincidentally rewrite the word to its current
        // value; an unchanged image is not a corruption case.
        if (result.bytes == base_image()) continue;
        ++applied;
        (void)expect_both_readers_reject(result.bytes, label);
      }
    }
  }
  // 28 regions x 4 kinds x 3 seeds, minus empty columns and the rare
  // no-op length lie.
  EXPECT_GE(applied, 28u * 4u * 3u - 40u);
}

// A bit flip inside a column segment must be blamed on that segment by
// name: the operator learns *which* column rotted, not just "bad file".
TEST(SnapshotV3Corruption, BitFlipBlamesTheDamagedSegmentByName) {
  for (const auto& region : base_regions()) {
    if (region.length < 2) continue;
    if (region.name == "segment_table" || region.name == "footer") continue;
    const mrt::RecordSpan span{region.offset, region.length};
    const mrt::CorruptionResult result =
        mrt::corrupt_spans(base_image(), {&span, 1}, kFlatRegionLayout,
                           mrt::CorruptionKind::kBitFlip, 11);
    const std::string message =
        expect_both_readers_reject(result.bytes, region.name);
    EXPECT_NE(message.find(region.name), std::string::npos)
        << region.name << ": " << message;
  }
}

TEST(SnapshotV3Corruption, TruncationAtEveryRegionBoundaryIsRejected) {
  const auto& bytes = base_image();
  for (const auto& region : base_regions()) {
    std::vector<std::uint8_t> cut(
        bytes.begin(),
        bytes.begin() + static_cast<std::ptrdiff_t>(region.offset));
    (void)expect_both_readers_reject(
        cut, util::format("cut-before-%s", region.name.c_str()));
  }
  std::vector<std::uint8_t> almost(bytes.begin(), bytes.end() - 1);
  (void)expect_both_readers_reject(almost, "cut-last-byte");
}

TEST(SnapshotV3Corruption, TrailingBytesAreRejected) {
  for (const std::size_t extra : {std::size_t{1}, std::size_t{64}}) {
    auto bytes = base_image();
    bytes.insert(bytes.end(), extra, 0);
    (void)expect_both_readers_reject(
        bytes, util::format("trailing-%zu", extra));
  }
}

TEST(SnapshotV3Corruption, NonZeroAlignmentPaddingIsRejected) {
  // Regions are 64-byte aligned, so the base image has padding gaps; a
  // flipped pad byte must not slip through unvalidated.
  const auto& regions = base_regions();
  std::size_t flipped = 0;
  for (std::size_t i = 1; i < regions.size(); ++i) {
    const std::size_t gap_start = regions[i - 1].offset + regions[i - 1].length;
    if (gap_start >= regions[i].offset) continue;
    auto bytes = base_image();
    bytes[gap_start] = 0xa5;
    ++flipped;
    (void)expect_both_readers_reject(
        bytes, util::format("pad-before-%s", regions[i].name.c_str()));
  }
  EXPECT_GT(flipped, 0u);
}

TEST(SnapshotV3Corruption, FooterSizeLieIsRejected) {
  auto bytes = base_image();
  // total_file_size is the last u64 of the 32-byte footer.
  bytes[bytes.size() - 8] ^= 0x01;
  (void)expect_both_readers_reject(bytes, "footer-size-lie");
}

}  // namespace
}  // namespace bgpintent::serve
