// Journal corruption fuzz sweep (docs/ROBUSTNESS.md): seeded
// truncation / bit-flip / splice / length-lie damage on journal segments,
// plus targeted CRC-field and whole-segment faults.  The contract under
// test: tolerant recovery keeps every record before the first damaged
// frame and physically truncates the rest; strict recovery refuses with an
// actionable error.
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "mrt/fault.hpp"
#include "mrt/source.hpp"
#include "stream/engine.hpp"
#include "stream/journal.hpp"
#include "stream/recovery.hpp"
#include "stream/synth.hpp"
#include "util/strings.hpp"

namespace bgpintent::stream {
namespace {

namespace fs = std::filesystem;

/// Journal frames: 8-byte header = payload length u32 LE + CRC u32 LE.
constexpr mrt::FrameLayout kJournalFrameLayout{8, 0, false};

std::vector<std::uint8_t> read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void write_file(const fs::path& path, std::span<const std::uint8_t> bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good());
}

/// One sealed multi-segment journal, built once and copied per case.
struct BaseJournal {
  fs::path dir;
  ScanSummary scan;

  BaseJournal() {
    dir = fs::path(::testing::TempDir()) /
          util::format("bgpintent_corrupt_base_%d", ::getpid());
    fs::remove_all(dir);
    fs::create_directories(dir);

    SynthStreamConfig cfg;
    cfg.scenario.topology.seed = 47;
    cfg.scenario.topology.tier1_count = 4;
    cfg.scenario.topology.tier2_count = 12;
    cfg.scenario.topology.stub_count = 60;
    cfg.scenario.vantage_point_count = 8;
    cfg.epochs = 3;
    cfg.epoch_seconds = 600;
    const SynthStream synth = generate_update_stream(cfg);

    JournalConfig journal;
    journal.directory = dir.string();
    journal.max_segment_bytes = 4096;  // force several segments
    journal.fsync = FsyncPolicy::kNever;
    {
      StreamEngine engine;
      engine.attach_journal(std::make_unique<JournalWriter>(journal, 0));
      engine.ingest(
          mrt::BufferSource{std::vector<std::uint8_t>(synth.bytes)});
      // No detach: the writer destructor seals without a checkpoint, so
      // every recovery below replays from record 0 — corruption anywhere
      // in the record space is exercised, not hidden behind a checkpoint.
    }
    scan = scan_journal(dir.string());
  }
  ~BaseJournal() {
    std::error_code ec;
    fs::remove_all(dir, ec);
  }
};

const BaseJournal& base() {
  static const BaseJournal journal;
  return journal;
}

struct CaseDir {
  fs::path path;
  explicit CaseDir(const std::string& tag) {
    path = fs::path(::testing::TempDir()) /
           util::format("bgpintent_corrupt_%s_%d", tag.c_str(), ::getpid());
    fs::remove_all(path);
    fs::copy(base().dir, path, fs::copy_options::recursive);
  }
  ~CaseDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
};

JournalConfig case_config(const CaseDir& dir) {
  JournalConfig cfg;
  cfg.directory = dir.path.string();
  cfg.max_segment_bytes = 4096;
  cfg.fsync = FsyncPolicy::kNever;
  return cfg;
}

/// Applies one seeded corruption to segment `segment_index` of a copy of
/// the base journal and returns the global index of the first record that
/// can no longer be trusted (== total records when only the footer or
/// padding was hit).
std::uint64_t corrupt_segment(const CaseDir& dir, std::size_t segment_index,
                              mrt::CorruptionKind kind, std::uint64_t seed) {
  const SegmentInfo& segment = base().scan.segments[segment_index];
  const fs::path target =
      dir.path / fs::path(segment.path).filename();
  const std::vector<std::uint8_t> image = read_file(target);
  const std::vector<mrt::RecordSpan> spans = index_segment_frames(image);
  const mrt::CorruptionResult result =
      mrt::corrupt_spans(image, spans, kJournalFrameLayout, kind, seed);
  write_file(target, result.bytes);
  const std::uint64_t first_touched =
      *std::min_element(result.touched_records.begin(),
                        result.touched_records.end());
  return segment.first_record + std::min(first_touched, segment.records);
}

void expect_tolerant_keeps_prefix(const CaseDir& dir,
                                  std::uint64_t intact_prefix,
                                  const std::string& label) {
  RecoveryReport report;
  std::unique_ptr<StreamEngine> engine;
  ASSERT_NO_THROW(engine = recover_stream(case_config(dir), {}, &report))
      << label;
  EXPECT_EQ(report.journal_records, intact_prefix) << label;
  // The damaged tail was physically removed: the journal scans clean at
  // exactly the surviving prefix.
  engine->detach_journal();
  const ScanSummary after = scan_journal(dir.path.string());
  EXPECT_FALSE(after.torn) << label;
  EXPECT_EQ(after.records, intact_prefix) << label;
}

void expect_strict_refuses(const CaseDir& dir, const std::string& label) {
  RecoveryOptions strict;
  strict.strict = true;
  try {
    (void)recover_stream(case_config(dir), strict);
    FAIL() << label << ": strict recovery accepted a corrupt journal";
  } catch (const JournalError& error) {
    EXPECT_FALSE(std::string(error.what()).empty()) << label;
  }
}

TEST(JournalCorruption, BaseJournalIsMultiSegmentAndClean) {
  const ScanSummary& scan = base().scan;
  ASSERT_GE(scan.segments.size(), 3u)
      << "fuzz sweep needs middle segments to aim at";
  EXPECT_FALSE(scan.torn);
  EXPECT_GT(scan.records, 100u);
  for (const SegmentInfo& segment : scan.segments)
    EXPECT_TRUE(segment.sealed) << segment.path;
}

TEST(JournalCorruption, SweepOverKindsAndSeedsOnTheLastSegment) {
  const std::size_t last = base().scan.segments.size() - 1;
  for (const mrt::CorruptionKind kind : mrt::kAllCorruptionKinds) {
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      const std::string label =
          util::format("last:%s:seed%llu", mrt::to_string(kind).data(),
                       static_cast<unsigned long long>(seed));
      {
        CaseDir tolerant(label + "_tol");
        const std::uint64_t prefix =
            corrupt_segment(tolerant, last, kind, seed);
        expect_tolerant_keeps_prefix(tolerant, prefix, label);
      }
      {
        CaseDir strict(label + "_strict");
        (void)corrupt_segment(strict, last, kind, seed);
        expect_strict_refuses(strict, label);
      }
    }
  }
}

TEST(JournalCorruption, SweepOnAMiddleSegmentDropsAllLaterSegments) {
  const std::size_t middle = base().scan.segments.size() / 2;
  ASSERT_GT(middle, 0u);
  for (const mrt::CorruptionKind kind : mrt::kAllCorruptionKinds) {
    const std::string label =
        util::format("middle:%s", mrt::to_string(kind).data());
    CaseDir tolerant(label + "_tol");
    const std::uint64_t prefix = corrupt_segment(tolerant, middle, kind, 7);
    expect_tolerant_keeps_prefix(tolerant, prefix, label);

    CaseDir strict(label + "_strict");
    (void)corrupt_segment(strict, middle, kind, 7);
    expect_strict_refuses(strict, label);
  }
}

TEST(JournalCorruption, BadChecksumInAFrameHeaderIsDetected) {
  // Flip one bit inside the stored CRC field itself (header offset 4..8):
  // the payload is untouched but no longer matches its checksum.  Aim at
  // the fullest non-head segment so the cut lands between records.
  std::size_t pick = 1;
  for (std::size_t i = 1; i < base().scan.segments.size(); ++i)
    if (base().scan.segments[i].records >
        base().scan.segments[pick].records)
      pick = i;
  const SegmentInfo& segment = base().scan.segments[pick];
  ASSERT_GT(segment.records, 1u);

  CaseDir dir("badcrc");
  const fs::path target = dir.path / fs::path(segment.path).filename();
  std::vector<std::uint8_t> image = read_file(target);
  const std::vector<mrt::RecordSpan> spans = index_segment_frames(image);
  const std::size_t victim = spans.size() / 2;
  image[spans[victim].offset + 4] ^= 0x01;
  write_file(target, image);

  const std::uint64_t prefix = segment.first_record + victim;
  expect_tolerant_keeps_prefix(dir, prefix, "badcrc-tolerant");

  CaseDir strict_dir("badcrc_strict");
  const fs::path strict_target =
      strict_dir.path / fs::path(segment.path).filename();
  std::vector<std::uint8_t> strict_image = read_file(strict_target);
  strict_image[spans[victim].offset + 4] ^= 0x01;
  write_file(strict_target, strict_image);
  expect_strict_refuses(strict_dir, "badcrc-strict");
}

TEST(JournalCorruption, MissingMiddleSegmentBreaksContinuity) {
  // A spliced-out segment file: the record index jumps across the hole, so
  // the scan tears at the end of the preceding segment.
  const std::size_t middle = base().scan.segments.size() / 2;
  const SegmentInfo& removed = base().scan.segments[middle];

  CaseDir dir("splicedseg");
  fs::remove(dir.path / fs::path(removed.path).filename());
  const ScanSummary torn = scan_journal(dir.path.string());
  ASSERT_TRUE(torn.torn);
  expect_tolerant_keeps_prefix(dir, removed.first_record, "splicedseg");

  CaseDir strict_dir("splicedseg_strict");
  fs::remove(strict_dir.path / fs::path(removed.path).filename());
  expect_strict_refuses(strict_dir, "splicedseg-strict");
}

TEST(JournalCorruption, CorruptSegmentHeaderDropsTheWholeSegment) {
  const std::size_t last = base().scan.segments.size() - 1;
  const SegmentInfo& segment = base().scan.segments[last];

  CaseDir dir("badheader");
  const fs::path target = dir.path / fs::path(segment.path).filename();
  std::vector<std::uint8_t> image = read_file(target);
  ASSERT_GE(image.size(), kSegmentHeaderBytes);
  image[3] ^= 0x40;  // damage the magic
  write_file(target, image);

  expect_tolerant_keeps_prefix(dir, segment.first_record, "badheader");

  CaseDir strict_dir("badheader_strict");
  const fs::path strict_target =
      strict_dir.path / fs::path(segment.path).filename();
  std::vector<std::uint8_t> strict_image = read_file(strict_target);
  strict_image[3] ^= 0x40;
  write_file(strict_target, strict_image);
  expect_strict_refuses(strict_dir, "badheader-strict");
}

}  // namespace
}  // namespace bgpintent::stream
