// Journal writer/scanner unit tests: record encode/decode roundtrips,
// frame + footer integrity, segment rotation, resume-append, torn-tail
// detection, and checkpoint save/load (docs/STREAMING.md §6).
#include "stream/journal.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <vector>

#include "stream/checkpoint.hpp"
#include "stream/engine.hpp"
#include "stream/wire.hpp"
#include "util/strings.hpp"

namespace bgpintent::stream {
namespace {

namespace fs = std::filesystem;

/// Fresh scratch journal directory, removed on destruction.
struct ScratchDir {
  explicit ScratchDir(const char* tag)
      : path(fs::path(::testing::TempDir()) /
             util::format("bgpintent_journal_%s_%d", tag, ::getpid())) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~ScratchDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  [[nodiscard]] std::string str() const { return path.string(); }
  fs::path path;
};

JournalConfig small_segments(const ScratchDir& dir,
                             std::uint64_t max_bytes = 4ull << 20) {
  JournalConfig cfg;
  cfg.directory = dir.str();
  cfg.max_segment_bytes = max_bytes;
  cfg.fsync = FsyncPolicy::kNever;
  return cfg;
}

std::vector<std::uint8_t> announce_payload(std::uint32_t timestamp) {
  std::vector<std::uint8_t> payload;
  encode_announce_record(payload, bgp::AsPath({61, 100, 201}),
                         std::vector<Community>{Community(100, 1)},
                         timestamp);
  return payload;
}

TEST(JournalRecords, EveryTypeRoundTrips) {
  std::vector<std::uint8_t> payload;

  WindowConfig config;
  config.epoch_seconds = 60;
  config.window_epochs = 7;
  config.classifier.min_gap = 9;
  config.classifier.ratio_threshold = 3.5;
  config.classifier.mean_of_ratios = true;
  config.observation.sibling_aware = false;
  encode_config_record(payload, config);
  JournalRecord record = decode_record(payload);
  EXPECT_EQ(record.type, RecordType::kConfig);
  EXPECT_EQ(record.config.epoch_seconds, 60u);
  EXPECT_EQ(record.config.window_epochs, 7u);
  EXPECT_EQ(record.config.classifier.min_gap, 9u);
  EXPECT_DOUBLE_EQ(record.config.classifier.ratio_threshold, 3.5);
  EXPECT_TRUE(record.config.classifier.mean_of_ratios);
  EXPECT_FALSE(record.config.observation.sibling_aware);

  payload.clear();
  encode_announce_record(payload, bgp::AsPath({61, 100, 201}),
                         std::vector<Community>{Community(100, 1),
                                                Community(300, 7)},
                         1234);
  record = decode_record(payload);
  EXPECT_EQ(record.type, RecordType::kAnnounce);
  EXPECT_EQ(record.timestamp, 1234u);
  ASSERT_EQ(record.path.length(), 3u);
  ASSERT_EQ(record.communities.size(), 2u);
  EXPECT_EQ(record.communities[1], Community(300, 7));

  payload.clear();
  encode_withdraw_record(payload, 777);
  record = decode_record(payload);
  EXPECT_EQ(record.type, RecordType::kWithdraw);
  EXPECT_EQ(record.timestamp, 777u);

  payload.clear();
  encode_epoch_record(payload, 42);
  record = decode_record(payload);
  EXPECT_EQ(record.type, RecordType::kEpoch);
  EXPECT_EQ(record.epoch, 42u);

  payload.clear();
  LabelChange change;
  change.community = Community(100, 1);
  change.previous = Intent::kUnclassified;
  change.current = Intent::kInformation;
  change.epoch = 5;
  encode_event_record(payload, 17, change);
  record = decode_record(payload);
  EXPECT_EQ(record.type, RecordType::kEvent);
  EXPECT_EQ(record.seq, 17u);
  EXPECT_EQ(record.change.community, Community(100, 1));
  EXPECT_EQ(record.change.previous, Intent::kUnclassified);
  EXPECT_EQ(record.change.current, Intent::kInformation);
  EXPECT_EQ(record.change.epoch, 5u);

  payload.clear();
  encode_reclassify_record(payload, 18, 4, 99);
  record = decode_record(payload);
  EXPECT_EQ(record.type, RecordType::kReclassify);
  EXPECT_EQ(record.first_seq, 18u);
  EXPECT_EQ(record.event_count, 4u);
  EXPECT_EQ(record.updates_since_reclassify, 99u);

  payload.clear();
  encode_decode_stats_record(payload, 1000, 3);
  record = decode_record(payload);
  EXPECT_EQ(record.type, RecordType::kDecodeStats);
  EXPECT_EQ(record.decode_ok, 1000u);
  EXPECT_EQ(record.decode_skipped, 3u);
}

TEST(JournalRecords, MalformedPayloadsThrow) {
  EXPECT_THROW((void)decode_record({}), JournalError);
  const std::vector<std::uint8_t> unknown_type = {99};
  EXPECT_THROW((void)decode_record(unknown_type), JournalError);
  // Truncated: an epoch record missing its u64.
  std::vector<std::uint8_t> truncated;
  encode_epoch_record(truncated, 42);
  truncated.resize(truncated.size() - 2);
  EXPECT_THROW((void)decode_record(truncated), JournalError);
  // Trailing garbage after a valid record.
  std::vector<std::uint8_t> trailing;
  encode_withdraw_record(trailing, 7);
  trailing.push_back(0);
  EXPECT_THROW((void)decode_record(trailing), JournalError);
}

TEST(JournalWriter, AppendScanRoundTrip) {
  const ScratchDir dir("roundtrip");
  {
    JournalWriter writer(small_segments(dir), 0);
    for (std::uint32_t i = 0; i < 10; ++i)
      writer.append(announce_payload(1000 + i));
    EXPECT_EQ(writer.next_record(), 10u);
    EXPECT_EQ(writer.stats().appends, 10u);
    EXPECT_GT(writer.stats().bytes, 0u);
    writer.close();
  }

  std::vector<std::uint32_t> timestamps;
  const ScanSummary summary = scan_journal(
      dir.str(), {},
      [&](const RecordLocation& location, std::span<const std::uint8_t> p) {
        EXPECT_EQ(location.index, timestamps.size());
        timestamps.push_back(decode_record(p).timestamp);
        return true;
      });
  EXPECT_FALSE(summary.torn);
  EXPECT_EQ(summary.records, 10u);
  ASSERT_EQ(summary.segments.size(), 1u);
  EXPECT_TRUE(summary.segments[0].sealed);
  ASSERT_EQ(timestamps.size(), 10u);
  EXPECT_EQ(timestamps[0], 1000u);
  EXPECT_EQ(timestamps[9], 1009u);
}

TEST(JournalWriter, RotatesSegmentsAndScanChecksContinuity) {
  const ScratchDir dir("rotate");
  {
    // ~60-byte frames against a 256-byte cap: every few appends rotate.
    JournalWriter writer(small_segments(dir, 256), 0);
    for (std::uint32_t i = 0; i < 50; ++i)
      writer.append(announce_payload(2000 + i));
    EXPECT_GT(writer.stats().rotations, 2u);
    writer.close();
  }
  const ScanSummary summary = scan_journal(dir.str());
  EXPECT_FALSE(summary.torn);
  EXPECT_EQ(summary.records, 50u);
  EXPECT_GT(summary.segments.size(), 2u);
  for (const SegmentInfo& segment : summary.segments)
    EXPECT_TRUE(segment.sealed) << segment.path;
  // Segments tile the record space without gaps.
  std::uint64_t next = 0;
  for (const SegmentInfo& segment : summary.segments) {
    EXPECT_EQ(segment.first_record, next);
    next += segment.records;
  }
  EXPECT_EQ(next, 50u);
}

TEST(JournalWriter, ResumesAppendingAfterCleanClose) {
  const ScratchDir dir("resume");
  const JournalConfig cfg = small_segments(dir);
  {
    JournalWriter writer(cfg, 0);
    for (std::uint32_t i = 0; i < 5; ++i)
      writer.append(announce_payload(3000 + i));
    writer.close();
  }
  {
    // A sealed active segment: the resumed writer starts a fresh one.
    JournalWriter writer(cfg, 5);
    EXPECT_EQ(writer.next_record(), 5u);
    for (std::uint32_t i = 0; i < 5; ++i)
      writer.append(announce_payload(3005 + i));
    writer.close();
  }
  const ScanSummary summary = scan_journal(dir.str());
  EXPECT_FALSE(summary.torn);
  EXPECT_EQ(summary.records, 10u);
  EXPECT_EQ(summary.segments.size(), 2u);
}

TEST(JournalWriter, ResumesIntoUnsealedSegment) {
  const ScratchDir dir("unsealed");
  const JournalConfig cfg = small_segments(dir);
  {
    JournalWriter writer(cfg, 0);
    for (std::uint32_t i = 0; i < 5; ++i)
      writer.append(announce_payload(4000 + i));
    writer.sync();
    // No close(): simulate a crash that left the segment unsealed.  The
    // destructor would seal, so leak the frames by abandoning the fd via
    // a fresh writer opened on the same directory after a hard stop.
    // (Destruction seals; to model the crash, truncate the footer off.)
  }
  // The destructor sealed; cut the footer back off to model the crash.
  const ScanSummary sealed = scan_journal(dir.str());
  ASSERT_EQ(sealed.segments.size(), 1u);
  const std::string segment = sealed.segments[0].path;
  const auto frames = [&] {
    std::ifstream in(segment, std::ios::binary);
    std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                    std::istreambuf_iterator<char>());
    return bytes;
  }();
  const auto spans = index_segment_frames(frames);
  ASSERT_EQ(spans.size(), 6u);  // 5 records + footer
  fs::resize_file(segment, spans.back().offset);

  {
    JournalWriter writer(cfg, 5);
    EXPECT_EQ(writer.next_record(), 5u);
    writer.append(announce_payload(4005));
    writer.close();
  }
  const ScanSummary summary = scan_journal(dir.str());
  EXPECT_FALSE(summary.torn);
  EXPECT_EQ(summary.records, 6u);
  EXPECT_EQ(summary.segments.size(), 1u);  // appended in place
}

TEST(JournalScan, TornTailIsReportedTolerantlyAndThrowsStrict) {
  const ScratchDir dir("torn");
  {
    JournalWriter writer(small_segments(dir), 0);
    for (std::uint32_t i = 0; i < 8; ++i)
      writer.append(announce_payload(5000 + i));
    writer.close();
  }
  const ScanSummary clean = scan_journal(dir.str());
  ASSERT_EQ(clean.segments.size(), 1u);
  const std::string segment = clean.segments[0].path;
  // Cut mid-way through the last record's frame (frame index 7; the
  // footer behind it is lost with the tail).
  const std::vector<std::uint8_t> image = [&] {
    std::ifstream in(segment, std::ios::binary);
    return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                     std::istreambuf_iterator<char>());
  }();
  const auto spans = index_segment_frames(image);
  ASSERT_GE(spans.size(), 8u);
  fs::resize_file(segment, spans[7].offset + 3);

  const ScanSummary torn = scan_journal(dir.str());
  EXPECT_TRUE(torn.torn);
  EXPECT_FALSE(torn.torn_detail.empty());
  EXPECT_EQ(torn.records, 7u);  // the intact prefix survives

  ScanOptions strict;
  strict.strict = true;
  EXPECT_THROW((void)scan_journal(dir.str(), strict), JournalError);
}

TEST(JournalScan, MissingDirectoryScansEmpty) {
  const ScanSummary summary =
      scan_journal(::testing::TempDir() + "bgpintent_journal_nonexistent");
  EXPECT_EQ(summary.records, 0u);
  EXPECT_TRUE(summary.segments.empty());
  EXPECT_FALSE(summary.torn);
}

TEST(JournalScan, SinkCanStopEarly) {
  const ScratchDir dir("stop");
  {
    JournalWriter writer(small_segments(dir), 0);
    for (std::uint32_t i = 0; i < 8; ++i)
      writer.append(announce_payload(6000 + i));
    writer.close();
  }
  std::size_t seen = 0;
  const ScanSummary summary = scan_journal(
      dir.str(), {},
      [&](const RecordLocation&, std::span<const std::uint8_t>) {
        return ++seen < 3;
      });
  EXPECT_EQ(seen, 3u);
  EXPECT_FALSE(summary.torn);
}

TEST(FsyncPolicy, NamesRoundTrip) {
  for (const FsyncPolicy policy :
       {FsyncPolicy::kNever, FsyncPolicy::kInterval,
        FsyncPolicy::kEveryRecord}) {
    const auto parsed = parse_fsync_policy(to_string(policy));
    ASSERT_TRUE(parsed);
    EXPECT_EQ(*parsed, policy);
  }
  EXPECT_FALSE(parse_fsync_policy("sometimes"));
}

TEST(JournalWriter, EveryRecordPolicySyncsPerAppend) {
  const ScratchDir dir("fsync");
  JournalConfig cfg = small_segments(dir);
  cfg.fsync = FsyncPolicy::kEveryRecord;
  JournalWriter writer(cfg, 0);
  writer.append(announce_payload(1));
  writer.append(announce_payload(2));
  EXPECT_GE(writer.stats().fsyncs, 2u);
  writer.close();
}

TEST(Checkpoint, SaveLoadRoundTripsEngineState) {
  const ScratchDir dir("ckpt");
  StreamEngine engine;
  bgp::RibEntry entry;
  entry.route.prefix = *bgp::Prefix::parse("10.0.0.0/24");
  entry.route.path = bgp::AsPath({61, 100, 201});
  entry.route.communities = {Community(100, 1)};
  engine.announce(entry, 100);
  engine.reclassify();

  CheckpointData data;
  data.config = WindowConfig{};
  data.state = engine.export_state();
  save_checkpoint(dir.str(), 123, data);

  const auto checkpoints = list_checkpoints(dir.str());
  ASSERT_EQ(checkpoints.size(), 1u);
  EXPECT_EQ(checkpoints[0].first, 123u);

  const CheckpointData loaded = load_checkpoint(checkpoints[0].second);
  EXPECT_TRUE(loaded.state == data.state);
  EXPECT_TRUE(wire::same_window_config(loaded.config, data.config));

  // Restoring into a fresh engine reproduces the canonical image.
  StreamEngine restored;
  restored.restore_state(loaded.state);
  EXPECT_TRUE(restored.export_state() == data.state);
  EXPECT_EQ(restored.label_of(Community(100, 1)), Intent::kInformation);
}

TEST(Checkpoint, CorruptFilesAreRefused) {
  const ScratchDir dir("ckpt_bad");
  CheckpointData data;
  data.state = StreamEngine().export_state();
  save_checkpoint(dir.str(), 7, data);
  const std::string path = checkpoint_path(dir.str(), 7);

  // Flip one payload byte: checksum mismatch.
  {
    std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
    file.seekp(static_cast<std::streamoff>(kCheckpointHeaderBytes + 3));
    file.put('\xff');
  }
  EXPECT_THROW((void)load_checkpoint(path), JournalError);

  // Truncated header.
  fs::resize_file(path, kCheckpointHeaderBytes - 4);
  EXPECT_THROW((void)load_checkpoint(path), JournalError);

  EXPECT_THROW((void)load_checkpoint(dir.str() + "/missing.ckpt"),
               JournalError);
}

}  // namespace
}  // namespace bgpintent::stream
