// Crash-recovery semantics: checkpoint-load + bounded replay rebuilds the
// exact engine (labels, event sequence, window ring), clean shutdowns
// replay nothing, config precedence follows the persisted-wins rule, and
// inspect_journal reports what `bgpintent recover` prints.
#include "stream/recovery.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <memory>
#include <vector>

#include "bgp/route.hpp"
#include "mrt/source.hpp"
#include "stream/engine.hpp"
#include "stream/synth.hpp"
#include "util/strings.hpp"

namespace bgpintent::stream {
namespace {

namespace fs = std::filesystem;

struct ScratchDir {
  explicit ScratchDir(const char* tag)
      : path(fs::path(::testing::TempDir()) /
             util::format("bgpintent_recovery_%s_%d", tag, ::getpid())) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~ScratchDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  [[nodiscard]] std::string str() const { return path.string(); }
  fs::path path;
};

JournalConfig journal_config(const ScratchDir& dir) {
  JournalConfig cfg;
  cfg.directory = dir.str();
  cfg.fsync = FsyncPolicy::kNever;
  return cfg;
}

SynthStream small_stream(std::uint64_t seed = 42) {
  SynthStreamConfig cfg;
  cfg.scenario.topology.seed = seed;
  cfg.scenario.topology.tier1_count = 4;
  cfg.scenario.topology.tier2_count = 12;
  cfg.scenario.topology.stub_count = 60;
  cfg.scenario.vantage_point_count = 8;
  cfg.epochs = 3;
  cfg.epoch_seconds = 600;
  return generate_update_stream(cfg);
}

void ingest(StreamEngine& engine, const SynthStream& synth) {
  engine.ingest(mrt::BufferSource{std::vector<std::uint8_t>(synth.bytes)});
}

bgp::RibEntry entry(std::uint32_t vp, std::vector<bgp::Asn> path,
                    std::vector<bgp::Community> communities,
                    const char* prefix = "10.0.0.0/24") {
  bgp::RibEntry e;
  e.vantage_point.asn = vp;
  e.vantage_point.address = vp;
  e.route.prefix = *bgp::Prefix::parse(prefix);
  e.route.path = bgp::AsPath(std::move(path));
  e.route.communities = std::move(communities);
  return e;
}

TEST(Recovery, FreshDirectoryRecoversToFreshEngine) {
  const ScratchDir dir("fresh");
  RecoveryReport report;
  const auto engine = recover_stream(journal_config(dir), {}, &report);
  ASSERT_NE(engine, nullptr);
  EXPECT_TRUE(report.fresh);
  EXPECT_EQ(report.journal_records, 0u);
  EXPECT_TRUE(engine->has_journal());
  EXPECT_EQ(engine->last_seq(), 0u);
  // The fresh journal got the config as record 0.
  engine->detach_journal();
  EXPECT_EQ(scan_journal(dir.str()).records, 1u);
}

TEST(Recovery, CleanShutdownReplaysNothing) {
  const ScratchDir dir("clean");
  const SynthStream synth = small_stream();
  EngineState original;
  {
    StreamEngine engine;
    engine.attach_journal(
        std::make_unique<JournalWriter>(journal_config(dir), 0));
    ingest(engine, synth);
    original = engine.export_state();
    engine.detach_journal();  // writes the final checkpoint
  }
  RecoveryReport report;
  const auto recovered = recover_stream(journal_config(dir), {}, &report);
  EXPECT_TRUE(report.used_checkpoint);
  EXPECT_EQ(report.records_replayed, 0u);
  EXPECT_FALSE(report.fresh);
  EXPECT_TRUE(recovered->export_state() == original);
}

TEST(Recovery, CrashWithoutCheckpointReplaysTheFullJournal) {
  const ScratchDir dir("nockpt");
  const SynthStream synth = small_stream();
  EngineState original;
  {
    StreamEngine engine;
    engine.attach_journal(
        std::make_unique<JournalWriter>(journal_config(dir), 0));
    ingest(engine, synth);
    original = engine.export_state();
    // No detach_journal(): the writer destructor seals the segment but
    // writes no checkpoint — the crash-without-checkpoint shape.
  }
  RecoveryReport report;
  const auto recovered = recover_stream(journal_config(dir), {}, &report);
  EXPECT_FALSE(report.used_checkpoint);
  EXPECT_EQ(report.records_replayed, report.journal_records);
  EXPECT_TRUE(recovered->export_state() == original);
  EXPECT_EQ(recovered->stats().recovered_events, original.next_seq - 1);
}

TEST(Recovery, CheckpointBoundsTheReplay) {
  const ScratchDir dir("bounded");
  const SynthStream synth = small_stream();
  EngineState original;
  {
    StreamEngine engine;
    // Checkpoint every 100 updates: recovery replays only the short tail
    // past the last checkpoint, not the whole journal.
    engine.attach_journal(
        std::make_unique<JournalWriter>(journal_config(dir), 0), 100);
    ingest(engine, synth);
    original = engine.export_state();
  }
  RecoveryReport report;
  const auto recovered = recover_stream(journal_config(dir), {}, &report);
  EXPECT_TRUE(report.used_checkpoint);
  EXPECT_GT(report.checkpoint_record, 0u);
  EXPECT_LT(report.records_replayed, report.journal_records);
  EXPECT_TRUE(recovered->export_state() == original);
}

TEST(Recovery, RecoveredEngineResumesTheEventSequence) {
  const ScratchDir dir("resume_seq");
  const SynthStream synth = small_stream();
  std::uint64_t last_seq = 0;
  {
    StreamEngine engine;
    engine.attach_journal(
        std::make_unique<JournalWriter>(journal_config(dir), 0));
    ingest(engine, synth);
    last_seq = engine.last_seq();
  }
  const auto recovered = recover_stream(journal_config(dir));
  ASSERT_GT(last_seq, 0u);
  EXPECT_EQ(recovered->last_seq(), last_seq);
  // A subscriber resuming from its pre-crash position sees no gap.
  bool gap = false;
  (void)recovered->events_since(last_seq, 16, gap);
  EXPECT_FALSE(gap);

  // New activity continues the sequence instead of restarting it.
  recovered->announce(
      entry(61, {61, 100, 909}, {bgp::Community(909, 1)}, "10.9.0.0/24"), 0);
  recovered->reclassify();
  EXPECT_GT(recovered->last_seq(), last_seq);
  const auto fresh = recovered->events_since(last_seq, 16, gap);
  EXPECT_FALSE(gap);
  ASSERT_FALSE(fresh.empty());
  EXPECT_EQ(fresh.front().seq, last_seq + 1);
}

TEST(Recovery, PersistedConfigWinsOverOptions) {
  const ScratchDir dir("config");
  WindowConfig persisted;
  persisted.epoch_seconds = 60;
  persisted.window_epochs = 5;
  {
    StreamEngine engine(persisted);
    JournalConfig cfg = journal_config(dir);
    auto writer = std::make_unique<JournalWriter>(cfg, 0);
    engine.attach_journal(std::move(writer));
    engine.announce(entry(61, {61, 100, 201}, {bgp::Community(100, 1)}), 100);
    engine.reclassify();
  }
  RecoveryOptions options;
  options.config.epoch_seconds = 3600;  // differs from the journal's
  RecoveryReport report;
  const auto recovered =
      recover_stream(journal_config(dir), options, &report);
  EXPECT_TRUE(report.config_overridden);
  EXPECT_EQ(recovered->stats().current_epoch, 100u / 60u);
}

TEST(Recovery, ReplayJournalDrivesARecoveredEngineToTheFinalState) {
  const ScratchDir dir("continue");
  const SynthStream synth = small_stream();
  EngineState final_state;
  std::uint64_t total_records = 0;
  {
    StreamEngine engine;
    engine.attach_journal(
        std::make_unique<JournalWriter>(journal_config(dir), 0));
    ingest(engine, synth);
    final_state = engine.export_state();
  }
  total_records = scan_journal(dir.str()).records;

  // Replay the full journal into a fresh engine without journaling side
  // effects — the crash harness's continuation primitive.
  StreamEngine fresh;
  const ReplayReport report =
      replay_journal(fresh, dir.str(), 0, /*strict=*/true);
  EXPECT_TRUE(report.complete) << report.detail;
  EXPECT_EQ(report.records_applied, total_records);
  EXPECT_TRUE(fresh.export_state() == final_state);
  EXPECT_FALSE(fresh.has_journal());
}

TEST(Recovery, StrictRefusesATornTailAndTolerantTruncatesIt) {
  const ScratchDir dir("torn");
  const SynthStream synth = small_stream();
  {
    StreamEngine engine;
    engine.attach_journal(
        std::make_unique<JournalWriter>(journal_config(dir), 0));
    ingest(engine, synth);
  }
  // Tear the tail mid-frame.
  const ScanSummary clean = scan_journal(dir.str());
  const std::string segment = clean.segments.back().path;
  fs::resize_file(segment, fs::file_size(segment) - 11);
  const ScanSummary torn = scan_journal(dir.str());
  ASSERT_TRUE(torn.torn);

  RecoveryOptions strict;
  strict.strict = true;
  EXPECT_THROW((void)recover_stream(journal_config(dir), strict),
               JournalError);

  RecoveryReport report;
  const auto recovered = recover_stream(journal_config(dir), {}, &report);
  EXPECT_GT(report.torn_tail_truncated, 0u);
  EXPECT_EQ(report.journal_records, torn.records);
  EXPECT_EQ(recovered->stats().torn_tail_truncated,
            report.torn_tail_truncated);
  // The truncated journal now scans clean and the writer resumed at the
  // surviving prefix.
  recovered->detach_journal();
  const ScanSummary after = scan_journal(dir.str());
  EXPECT_FALSE(after.torn);
  EXPECT_GE(after.records, torn.records);
}

TEST(Recovery, InspectJournalCountsRecordTypes) {
  const ScratchDir dir("inspect");
  const SynthStream synth = small_stream();
  std::uint64_t last_seq = 0;
  {
    StreamEngine engine;
    engine.attach_journal(
        std::make_unique<JournalWriter>(journal_config(dir), 0), 100);
    ingest(engine, synth);
    last_seq = engine.last_seq();
  }
  const JournalInspection inspection = inspect_journal(dir.str());
  EXPECT_FALSE(inspection.scan.torn);
  EXPECT_EQ(
      inspection.type_counts[static_cast<std::size_t>(RecordType::kConfig)],
      1u);
  EXPECT_GT(
      inspection.type_counts[static_cast<std::size_t>(RecordType::kAnnounce)],
      0u);
  EXPECT_EQ(inspection.undecodable, 0u);
  EXPECT_EQ(inspection.last_event_seq, last_seq);
  EXPECT_FALSE(inspection.checkpoints.empty());
}

}  // namespace
}  // namespace bgpintent::stream
