// Synthetic update-stream generator tests: determinism (bytes, at any
// pool size), flap-driven withdrawals, timestamp shape, and that the
// output decodes cleanly in strict mode — the contract `bgpintent
// synth-stream`, the CI streaming smoke, and bench/stream_throughput
// rely on.
#include "stream/synth.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "mrt/source.hpp"
#include "mrt/update_stream.hpp"
#include "util/thread_pool.hpp"

namespace bgpintent::stream {
namespace {

SynthStreamConfig small_config() {
  SynthStreamConfig cfg;
  cfg.scenario.topology.seed = 20230808;
  cfg.scenario.topology.tier1_count = 4;
  cfg.scenario.topology.tier2_count = 12;
  cfg.scenario.topology.stub_count = 40;
  cfg.scenario.vantage_point_count = 8;
  cfg.scenario.day_churn = 0.25;
  cfg.epochs = 3;
  cfg.epoch_seconds = 600;
  return cfg;
}

/// Counts decoded updates and checks timestamp monotonicity.
class Counter final : public mrt::UpdateSink {
 public:
  void on_announce(bgp::RibEntry&, std::uint32_t timestamp) override {
    ++announces;
    note(timestamp);
  }
  void on_withdraw(const bgp::VantagePointId&, const bgp::Prefix&,
                   std::uint32_t timestamp) override {
    ++withdraws;
    note(timestamp);
  }
  std::uint64_t announces = 0;
  std::uint64_t withdraws = 0;
  std::uint32_t first_timestamp = 0;
  std::uint32_t last_timestamp = 0;
  bool monotone = true;

 private:
  void note(std::uint32_t timestamp) {
    if (first_timestamp == 0) first_timestamp = timestamp;
    if (timestamp < last_timestamp) monotone = false;
    last_timestamp = timestamp;
  }
};

Counter decode(const SynthStream& synth) {
  Counter counter;
  mrt::decode_update_stream(
      mrt::BufferSource{std::vector<std::uint8_t>(synth.bytes)}, counter);
  return counter;
}

TEST(SynthStream, DeterministicBytesAtAnyPoolSize) {
  const auto cfg = small_config();
  const SynthStream sequential = generate_update_stream(cfg);
  EXPECT_FALSE(sequential.bytes.empty());
  EXPECT_EQ(generate_update_stream(cfg).bytes, sequential.bytes);

  for (const unsigned threads : {2u, 8u}) {
    util::ThreadPool pool(threads);
    EXPECT_EQ(generate_update_stream(cfg, &pool).bytes, sequential.bytes)
        << threads << " threads";
  }
}

TEST(SynthStream, DecodesStrictlyAndStatsMatchTheWire) {
  const SynthStream synth = generate_update_stream(small_config());
  const Counter counter = decode(synth);  // strict: throws on a bad record
  EXPECT_EQ(counter.announces, synth.stats.announcements);
  EXPECT_EQ(counter.withdraws, synth.stats.withdrawals);
  EXPECT_TRUE(counter.monotone);

  const auto cfg = small_config();
  EXPECT_GE(counter.first_timestamp, cfg.start_timestamp);
  EXPECT_LT(counter.last_timestamp,
            cfg.start_timestamp + cfg.epochs * cfg.epoch_seconds);
}

TEST(SynthStream, FlapsProduceWithdrawalRecords) {
  auto cfg = small_config();
  cfg.flap_fraction = 0.0;
  const auto calm = generate_update_stream(cfg);

  cfg.flap_fraction = 0.2;
  const auto flappy = generate_update_stream(cfg);
  EXPECT_GT(flappy.stats.withdrawals, calm.stats.withdrawals);
  EXPECT_GT(flappy.stats.withdrawals, 0u);
  // A flap withdraws and re-announces, so announcements grow in step.
  EXPECT_GT(flappy.stats.announcements, calm.stats.announcements);
}

TEST(SynthStream, EpochZeroCarriesTheFullTable) {
  auto cfg = small_config();
  cfg.flap_fraction = 0.0;
  cfg.epochs = 1;
  const SynthStream table_only = generate_update_stream(cfg);
  const Counter counter = decode(table_only);
  // Every vantage point announces its full RIB once; no churn, no flaps.
  EXPECT_GT(counter.announces, 100u);
  EXPECT_EQ(counter.withdraws, 0u);

  cfg.epochs = 3;
  const SynthStream longer = generate_update_stream(cfg);
  EXPECT_GT(longer.stats.records, table_only.stats.records);
}

}  // namespace
}  // namespace bgpintent::stream
