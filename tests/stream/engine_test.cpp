// StreamEngine unit tests: event sequencing, delta resumption (including
// the trimmed-backlog gap that forces a snapshot resync), protocol-driven
// announcements, and decode counter accounting.
#include "stream/engine.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "bgp/route.hpp"
#include "mrt/fault.hpp"
#include "mrt/mrt_file.hpp"
#include "mrt/source.hpp"
#include "stream/synth.hpp"

namespace bgpintent::stream {
namespace {

bgp::RibEntry entry(std::uint32_t vp, std::vector<bgp::Asn> path,
                    std::vector<bgp::Community> communities) {
  bgp::RibEntry e;
  e.vantage_point.asn = vp;
  e.vantage_point.address = vp;
  e.route.prefix = *bgp::Prefix::parse("10.0.0.0/24");
  e.route.path = bgp::AsPath(std::move(path));
  e.route.communities = std::move(communities);
  return e;
}

TEST(StreamEngine, EventsAreSequencedFromOne) {
  StreamEngine engine;
  EXPECT_EQ(engine.last_seq(), 0u);
  EXPECT_EQ(engine.first_buffered_seq(), 0u);

  engine.announce(entry(61, {61, 100, 201}, {bgp::Community(100, 1)}), 10);
  engine.announce(entry(62, {62, 300, 400}, {bgp::Community(300, 7)}), 11);
  engine.reclassify();

  bool gap = false;
  const auto events = engine.events_since(0, 100, gap);
  EXPECT_FALSE(gap);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].seq, 1u);
  EXPECT_EQ(events[1].seq, 2u);
  EXPECT_EQ(engine.last_seq(), 2u);
  EXPECT_EQ(engine.first_buffered_seq(), 1u);

  // Resuming from the newest seq yields nothing, without a gap.
  const auto none = engine.events_since(engine.last_seq(), 100, gap);
  EXPECT_FALSE(gap);
  EXPECT_TRUE(none.empty());

  // A limit smaller than the backlog pages through it.
  const auto page = engine.events_since(0, 1, gap);
  ASSERT_EQ(page.size(), 1u);
  EXPECT_EQ(page[0].seq, 1u);
}

TEST(StreamEngine, ProtocolAnnounceWithZeroTimestampReusesLatest) {
  WindowConfig cfg;
  cfg.epoch_seconds = 100;
  cfg.window_epochs = 2;
  StreamEngine engine(cfg);
  engine.announce(entry(61, {61, 100, 201}, {bgp::Community(100, 1)}), 1000);
  const auto before = engine.stats();

  // The serve INGEST verb carries no timestamp: it must never move the
  // window (stream/engine.hpp).
  engine.announce(entry(62, {62, 300, 400}, {bgp::Community(300, 7)}));
  const auto after = engine.stats();
  EXPECT_EQ(after.latest_timestamp, before.latest_timestamp);
  EXPECT_EQ(after.current_epoch, before.current_epoch);
  EXPECT_EQ(after.announces, before.announces + 1);
}

TEST(StreamEngine, LabelSnapshotIsConsistentWithItsSequencePoint) {
  StreamEngine engine;
  engine.announce(entry(61, {61, 100, 201}, {bgp::Community(100, 1)}), 10);

  // label_snapshot reclassifies first, so the pending label change is both
  // in the snapshot and reflected in the returned sequence point.
  std::uint64_t as_of = 0;
  const auto snapshot = engine.label_snapshot(as_of);
  EXPECT_EQ(as_of, engine.last_seq());
  ASSERT_EQ(snapshot.size(), 1u);
  EXPECT_EQ(snapshot[0].first, bgp::Community(100, 1));
  EXPECT_EQ(snapshot[0].second, Intent::kInformation);
  bool gap = false;
  EXPECT_TRUE(engine.events_since(as_of, 100, gap).empty());
}

/// Flap two alphas across one-epoch windows until the event log wraps:
/// resuming from before the buffered range must signal the gap that sends
/// a subscriber to a full snapshot (the delta-snapshot protocol).
TEST(StreamEngine, TrimmedBacklogSignalsGapForStaleResume) {
  WindowConfig cfg;
  cfg.epoch_seconds = 1;
  cfg.window_epochs = 1;
  StreamEngine engine(cfg);
  const auto a = entry(61, {61, 100, 201}, {bgp::Community(100, 1)});
  const auto b = entry(62, {62, 300, 400}, {bgp::Community(300, 7)});

  // Each flip expires the other alpha's evidence: two label changes per
  // iteration (one retraction, one fresh label).
  std::uint32_t t = 1;
  for (std::uint64_t i = 0;
       engine.last_seq() <= StreamEngine::kMaxBufferedEvents + 2;
       ++i, t += 2) {
    engine.announce((i % 2 == 0) ? a : b, t);
    engine.reclassify();
  }

  EXPECT_GT(engine.first_buffered_seq(), 1u);
  bool gap = false;
  const auto stale = engine.events_since(1, 16, gap);
  EXPECT_TRUE(gap);
  ASSERT_FALSE(stale.empty());
  EXPECT_EQ(stale.front().seq, engine.first_buffered_seq());

  // The advertised recovery: take a snapshot and resume from its seq.
  std::uint64_t as_of = 0;
  (void)engine.label_snapshot(as_of);
  const auto fresh = engine.events_since(as_of, 16, gap);
  EXPECT_FALSE(gap);
  EXPECT_TRUE(fresh.empty());
}

TEST(StreamEngine, IngestFoldsDecodeCountersIntoStats) {
  SynthStreamConfig cfg;
  cfg.scenario.topology.seed = 42;
  cfg.scenario.topology.tier1_count = 4;
  cfg.scenario.topology.tier2_count = 12;
  cfg.scenario.topology.stub_count = 40;
  cfg.scenario.vantage_point_count = 8;
  cfg.epochs = 2;
  const SynthStream synth = generate_update_stream(cfg);

  StreamEngine engine;
  mrt::DecodeReport report;
  engine.ingest(mrt::BufferSource{std::vector<std::uint8_t>(synth.bytes)}, {},
                &report);
  const auto stats = engine.stats();
  EXPECT_EQ(stats.updates_ok, report.records_ok);
  EXPECT_EQ(stats.updates_errors, 0u);
  EXPECT_EQ(stats.announces, synth.stats.announcements);
  EXPECT_EQ(stats.withdraws, synth.stats.withdrawals);
  EXPECT_GT(stats.live_tuples, 0u);
  EXPECT_EQ(stats.dirty_alphas, 0u);  // ingest reclassifies at end

  // The istream strict path (the stdin firehose) sees the same stream.
  StreamEngine from_stream;
  std::istringstream in(std::string(
      reinterpret_cast<const char*>(synth.bytes.data()), synth.bytes.size()));
  from_stream.ingest(in);
  EXPECT_EQ(from_stream.stats().announces, stats.announces);
  EXPECT_EQ(from_stream.stats().withdraws, stats.withdraws);
}

TEST(StreamEngine, TolerantIngestOfCorruptStreamCountsErrors) {
  SynthStreamConfig cfg;
  cfg.scenario.topology.seed = 43;
  cfg.scenario.topology.tier1_count = 4;
  cfg.scenario.topology.tier2_count = 12;
  cfg.scenario.topology.stub_count = 40;
  cfg.scenario.vantage_point_count = 8;
  cfg.epochs = 2;
  const SynthStream synth = generate_update_stream(cfg);
  const auto corrupted =
      mrt::corrupt_mrt(synth.bytes, mrt::CorruptionKind::kSplice, 7);

  mrt::DecodeOptions tolerant;
  tolerant.mode = mrt::DecodeMode::kTolerant;
  StreamEngine engine;
  mrt::DecodeReport report;
  engine.ingest(mrt::BufferSource{std::vector<std::uint8_t>(corrupted.bytes)},
                tolerant, &report);
  const auto stats = engine.stats();
  EXPECT_EQ(stats.updates_ok, report.records_ok);
  EXPECT_EQ(stats.updates_errors, report.records_skipped);
  EXPECT_GT(stats.updates_ok, 0u);
}

}  // namespace
}  // namespace bgpintent::stream
