// WindowClassifier unit tests: the refcounted sliding window's local
// behaviors — labeling, expiry, withdrawal semantics, late records, and
// dirty tracking.  The global window==batch equivalence lives in
// tests/property/stream_window_test.cpp.
#include "stream/window.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "bgp/route.hpp"

namespace bgpintent::stream {
namespace {

bgp::RibEntry entry(std::uint32_t vp, std::vector<bgp::Asn> path,
                    std::vector<bgp::Community> communities,
                    const char* prefix = "10.0.0.0/24") {
  bgp::RibEntry e;
  e.vantage_point.asn = vp;
  e.vantage_point.address = vp;
  e.route.prefix = *bgp::Prefix::parse(prefix);
  e.route.path = bgp::AsPath(std::move(path));
  e.route.communities = std::move(communities);
  return e;
}

/// Short epochs and a two-epoch window so expiry is easy to trigger.
WindowConfig tight() {
  WindowConfig cfg;
  cfg.epoch_seconds = 100;
  cfg.window_epochs = 2;
  return cfg;
}

TEST(WindowClassifier, LabelsPureOnAsInformationAndPureOffAsAction) {
  WindowClassifier window(tight());
  // 100:1 only on paths containing 100 (pure on-path); 100:5000 only on a
  // path without 100 (pure off-path).  The betas are >140 apart, so gap
  // clustering keeps them in separate clusters.
  window.announce(entry(61, {61, 100, 201}, {bgp::Community(100, 1)}), 10);
  window.announce(entry(62, {62, 300, 400}, {bgp::Community(100, 5000)}), 11);

  const auto changes = window.reclassify_dirty();
  ASSERT_EQ(changes.size(), 2u);
  EXPECT_EQ(window.label_of(bgp::Community(100, 1)), Intent::kInformation);
  EXPECT_EQ(window.label_of(bgp::Community(100, 5000)), Intent::kAction);
  for (const auto& change : changes)
    EXPECT_EQ(change.previous, Intent::kUnclassified);

  const auto totals = window.totals();
  EXPECT_EQ(totals.communities, 2u);
  EXPECT_EQ(totals.information, 1u);
  EXPECT_EQ(totals.action, 1u);
}

TEST(WindowClassifier, ExpiryRetractsLabelsAndEvidence) {
  WindowClassifier window(tight());
  window.announce(entry(61, {61, 100, 201}, {bgp::Community(100, 1)}), 10);
  (void)window.reclassify_dirty();
  ASSERT_EQ(window.label_of(bgp::Community(100, 1)), Intent::kInformation);
  ASSERT_EQ(window.live_tuple_count(), 1u);

  // Epochs 0 and 2: announcing at t=250 pushes the window to [1, 2] and
  // expires epoch 0 wholesale.
  window.announce(entry(62, {62, 300, 400}, {bgp::Community(300, 7)}), 250);
  EXPECT_EQ(window.expired_epochs(), 1u);
  const auto changes = window.reclassify_dirty();
  EXPECT_EQ(window.label_of(bgp::Community(100, 1)), Intent::kUnclassified);
  bool retracted = false;
  for (const auto& change : changes)
    if (change.community == bgp::Community(100, 1)) {
      retracted = true;
      EXPECT_EQ(change.previous, Intent::kInformation);
      EXPECT_EQ(change.current, Intent::kUnclassified);
    }
  EXPECT_TRUE(retracted);
  EXPECT_EQ(window.live_tuple_count(), 1u);  // only the epoch-2 tuple
}

TEST(WindowClassifier, WithdrawalAdvancesClockWithoutRemovingEvidence) {
  WindowClassifier window(tight());
  window.announce(entry(61, {61, 100, 201}, {bgp::Community(100, 1)}), 10);
  (void)window.reclassify_dirty();

  // Same-epoch withdrawal: counted, but the observation stays (evidence
  // ages out by time, not by retraction — stream/window.hpp).
  bgp::VantagePointId vp;
  vp.asn = 61;
  vp.address = 61;
  window.withdraw(vp, *bgp::Prefix::parse("10.0.0.0/24"), 20);
  EXPECT_EQ(window.withdraws(), 1u);
  EXPECT_EQ(window.live_tuple_count(), 1u);
  EXPECT_EQ(window.label_of(bgp::Community(100, 1)), Intent::kInformation);

  // A far-future withdrawal advances the clock past the window: now the
  // evidence expires like any aged-out tuple.
  window.withdraw(vp, *bgp::Prefix::parse("10.0.0.0/24"), 500);
  (void)window.reclassify_dirty();
  EXPECT_EQ(window.live_tuple_count(), 0u);
  EXPECT_EQ(window.label_of(bgp::Community(100, 1)), Intent::kUnclassified);
}

TEST(WindowClassifier, LateRecordsFoldIntoNewestEpoch) {
  WindowClassifier window(tight());
  window.announce(entry(61, {61, 100, 201}, {bgp::Community(100, 1)}), 500);
  const auto epoch = window.current_epoch();

  // A record stamped long before the newest epoch must not move the
  // window backward — it lands in the newest epoch.
  window.announce(entry(62, {62, 300, 400}, {bgp::Community(300, 7)}), 10);
  EXPECT_EQ(window.current_epoch(), epoch);
  EXPECT_EQ(window.latest_timestamp(), 500u);
  EXPECT_EQ(window.window_epoch_count(), 1u);
  EXPECT_EQ(window.live_tuple_count(), 2u);
  EXPECT_EQ(window.expired_epochs(), 0u);
}

TEST(WindowClassifier, DirtyTrackingFiresOnlyOnCountTransitions) {
  WindowClassifier window(tight());
  const auto e = entry(61, {61, 100, 201}, {bgp::Community(100, 1)});
  window.announce(e, 10);
  EXPECT_EQ(window.dirty_alpha_count(), 1u);
  (void)window.reclassify_dirty();
  EXPECT_EQ(window.dirty_alpha_count(), 0u);

  // Re-announcing the identical (path, community) observation only bumps
  // refcounts — no 0<->1 transition, nothing to reclassify.
  window.announce(e, 20);
  EXPECT_EQ(window.dirty_alpha_count(), 0u);
  EXPECT_EQ(window.live_tuple_count(), 1u);
  EXPECT_EQ(window.announces(), 2u);

  // A new community on the same path is a fresh transition.
  window.announce(entry(61, {61, 100, 201}, {bgp::Community(100, 2)}), 30);
  EXPECT_EQ(window.dirty_alpha_count(), 1u);
}

TEST(WindowClassifier, MarkAllDirtyForcesFullReexamination) {
  WindowClassifier window(tight());
  window.announce(entry(61, {61, 100, 201}, {bgp::Community(100, 1)}), 10);
  window.announce(entry(62, {62, 300, 400}, {bgp::Community(300, 7)}), 11);
  (void)window.reclassify_dirty();
  const auto examined = window.reclassified_communities();

  // Nothing changed, so the forced pass relabels identically (no
  // transitions) while re-examining every community — the full-reclassify
  // baseline bench/stream_throughput compares against.
  window.mark_all_dirty();
  EXPECT_EQ(window.dirty_alpha_count(), 2u);
  const auto changes = window.reclassify_dirty();
  EXPECT_TRUE(changes.empty());
  EXPECT_EQ(window.reclassified_communities(), examined + 2);
}

TEST(WindowClassifier, MemoryEstimateGrowsWithEvidence) {
  WindowClassifier window(tight());
  const auto empty = window.memory_bytes();
  for (std::uint32_t i = 0; i < 64; ++i)
    window.announce(entry(61, {61, 100, 200 + i},
                          {bgp::Community(100, static_cast<std::uint16_t>(i))}),
                    10 + i);
  EXPECT_GT(window.memory_bytes(), empty);
}

}  // namespace
}  // namespace bgpintent::stream
