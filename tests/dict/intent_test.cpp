#include "dict/intent.hpp"

#include <gtest/gtest.h>

namespace bgpintent::dict {
namespace {

TEST(Intent, EveryCategoryHasACoarseIntent) {
  for (int raw = 0; raw <= static_cast<int>(Category::kOtherInfo); ++raw) {
    const auto category = static_cast<Category>(raw);
    const Intent intent = intent_of(category);
    EXPECT_TRUE(intent == Intent::kAction || intent == Intent::kInformation)
        << "category " << raw;
  }
}

TEST(Intent, ActionCategories) {
  EXPECT_EQ(intent_of(Category::kNoExport), Intent::kAction);
  EXPECT_EQ(intent_of(Category::kNoPeer), Intent::kAction);
  EXPECT_EQ(intent_of(Category::kSuppressToAs), Intent::kAction);
  EXPECT_EQ(intent_of(Category::kSuppressInLocation), Intent::kAction);
  EXPECT_EQ(intent_of(Category::kBlackhole), Intent::kAction);
  EXPECT_EQ(intent_of(Category::kGracefulShutdown), Intent::kAction);
  EXPECT_EQ(intent_of(Category::kSetLocalPref), Intent::kAction);
  EXPECT_EQ(intent_of(Category::kPrepend), Intent::kAction);
  EXPECT_EQ(intent_of(Category::kAnnounceToAs), Intent::kAction);
  EXPECT_EQ(intent_of(Category::kAnnounceInLocation), Intent::kAction);
  EXPECT_EQ(intent_of(Category::kOtherAction), Intent::kAction);
}

TEST(Intent, InformationCategories) {
  EXPECT_EQ(intent_of(Category::kLocationCity), Intent::kInformation);
  EXPECT_EQ(intent_of(Category::kLocationCountry), Intent::kInformation);
  EXPECT_EQ(intent_of(Category::kLocationRegion), Intent::kInformation);
  EXPECT_EQ(intent_of(Category::kRovStatus), Intent::kInformation);
  EXPECT_EQ(intent_of(Category::kRelationship), Intent::kInformation);
  EXPECT_EQ(intent_of(Category::kInterface), Intent::kInformation);
  EXPECT_EQ(intent_of(Category::kOtherInfo), Intent::kInformation);
}

TEST(Intent, LocationCategories) {
  EXPECT_TRUE(is_location_category(Category::kLocationCity));
  EXPECT_TRUE(is_location_category(Category::kLocationCountry));
  EXPECT_TRUE(is_location_category(Category::kLocationRegion));
  EXPECT_FALSE(is_location_category(Category::kRovStatus));
  EXPECT_FALSE(is_location_category(Category::kSuppressInLocation));
}

TEST(Intent, CategoryStringRoundTrip) {
  for (int raw = 0; raw <= static_cast<int>(Category::kOtherInfo); ++raw) {
    const auto category = static_cast<Category>(raw);
    const auto name = to_string(category);
    ASSERT_NE(name, "?") << raw;
    const auto parsed = parse_category(name);
    ASSERT_TRUE(parsed) << name;
    EXPECT_EQ(*parsed, category);
  }
}

TEST(Intent, IntentStringRoundTrip) {
  for (Intent intent :
       {Intent::kAction, Intent::kInformation, Intent::kUnclassified}) {
    const auto parsed = parse_intent(to_string(intent));
    ASSERT_TRUE(parsed);
    EXPECT_EQ(*parsed, intent);
  }
}

TEST(Intent, ParseRejectsUnknownTokens) {
  EXPECT_FALSE(parse_category("bogus"));
  EXPECT_FALSE(parse_category(""));
  EXPECT_FALSE(parse_intent("maybe"));
}

}  // namespace
}  // namespace bgpintent::dict
