#include "dict/pattern.hpp"

#include <gtest/gtest.h>

#include "util/strings.hpp"

namespace bgpintent::dict {
namespace {

using util::ParseError;

TEST(BetaPattern, LiteralMatchesExactly) {
  const auto p = BetaPattern::compile("2569");
  EXPECT_TRUE(p.matches(2569));
  EXPECT_FALSE(p.matches(2568));
  EXPECT_FALSE(p.matches(25690));
  EXPECT_FALSE(p.matches(569));
}

TEST(BetaPattern, WildcardDigit) {
  const auto p = BetaPattern::compile("\\d\\d");
  EXPECT_TRUE(p.matches(10));
  EXPECT_TRUE(p.matches(99));
  EXPECT_FALSE(p.matches(9));    // renders as one digit
  EXPECT_FALSE(p.matches(100));  // three digits
}

TEST(BetaPattern, PaperArelionExportPattern) {
  // 1299:[257]\d\d[1239] from §4 of the paper.
  const auto p = BetaPattern::compile("[257]\\d\\d[1239]");
  EXPECT_TRUE(p.matches(2569));  // do not export to Level3 in Europe
  EXPECT_TRUE(p.matches(2561));  // prepend once to Level3 in Europe
  EXPECT_TRUE(p.matches(5541));  // Orange, North America
  EXPECT_TRUE(p.matches(7693));  // GTT, Asia Pacific
  EXPECT_FALSE(p.matches(2564));  // 4 not in final class
  EXPECT_FALSE(p.matches(3569));  // 3 not in leading class
  EXPECT_FALSE(p.matches(256));   // too short
}

TEST(BetaPattern, DigitClassWithRange) {
  const auto p = BetaPattern::compile("[1-3]5");
  EXPECT_TRUE(p.matches(15));
  EXPECT_TRUE(p.matches(25));
  EXPECT_TRUE(p.matches(35));
  EXPECT_FALSE(p.matches(45));
  EXPECT_FALSE(p.matches(55));
}

TEST(BetaPattern, MixedClassListAndRange) {
  const auto p = BetaPattern::compile("[0-24]");
  EXPECT_TRUE(p.matches(0));
  EXPECT_TRUE(p.matches(1));
  EXPECT_TRUE(p.matches(2));
  EXPECT_FALSE(p.matches(3));
  EXPECT_TRUE(p.matches(4));
}

TEST(BetaPattern, NumericRangeForm) {
  const auto p = BetaPattern::compile("2000-7999");
  EXPECT_FALSE(p.matches(1999));
  EXPECT_TRUE(p.matches(2000));
  EXPECT_TRUE(p.matches(5000));
  EXPECT_TRUE(p.matches(7999));
  EXPECT_FALSE(p.matches(8000));
}

TEST(BetaPattern, SingleValueRange) {
  const auto p = BetaPattern::compile("430-431");
  EXPECT_TRUE(p.matches(430));
  EXPECT_TRUE(p.matches(431));
  EXPECT_FALSE(p.matches(432));
}

TEST(BetaPattern, ZeroMatchesOnlyZero) {
  const auto p = BetaPattern::compile("0");
  EXPECT_TRUE(p.matches(0));
  EXPECT_FALSE(p.matches(10));
}

TEST(BetaPattern, LeadingZeroPositionsNeverMatchLongValues) {
  // "0\d" would require a rendering "0x" which never occurs.
  const auto p = BetaPattern::compile("0\\d");
  for (std::uint32_t beta = 0; beta <= 0xffff; ++beta)
    EXPECT_FALSE(p.matches(static_cast<std::uint16_t>(beta))) << beta;
}

TEST(BetaPattern, CompileErrors) {
  EXPECT_THROW(BetaPattern::compile(""), ParseError);
  EXPECT_THROW(BetaPattern::compile("[12"), ParseError);
  EXPECT_THROW(BetaPattern::compile("[]"), ParseError);
  EXPECT_THROW(BetaPattern::compile("[ab]"), ParseError);
  EXPECT_THROW(BetaPattern::compile("\\x"), ParseError);
  EXPECT_THROW(BetaPattern::compile("12x"), ParseError);
  EXPECT_THROW(BetaPattern::compile("\\d\\d\\d\\d\\d\\d"), ParseError);
  EXPECT_THROW(BetaPattern::compile("[3-1]"), ParseError);
  EXPECT_THROW(BetaPattern::compile("70000-70001"), ParseError);
  EXPECT_THROW(BetaPattern::compile("500-100"), ParseError);
}

TEST(BetaPattern, BoundsDigitForm) {
  const auto p = BetaPattern::compile("[257]\\d\\d[1239]");
  const auto [lo, hi] = p.bounds();
  EXPECT_EQ(lo, 2001);
  EXPECT_EQ(hi, 7999);
}

TEST(BetaPattern, BoundsRangeForm) {
  const auto p = BetaPattern::compile("430-431");
  const auto [lo, hi] = p.bounds();
  EXPECT_EQ(lo, 430);
  EXPECT_EQ(hi, 431);
}

TEST(BetaPattern, EnumerateRange) {
  const auto values = BetaPattern::compile("100-103").enumerate();
  ASSERT_EQ(values.size(), 4u);
  EXPECT_EQ(values.front(), 100);
  EXPECT_EQ(values.back(), 103);
}

TEST(BetaPattern, EnumerateDigitForm) {
  const auto values = BetaPattern::compile("[12]5").enumerate();
  ASSERT_EQ(values.size(), 2u);
  EXPECT_EQ(values[0], 15);
  EXPECT_EQ(values[1], 25);
}

TEST(BetaPattern, EnumerateMatchesMatches) {
  const auto p = BetaPattern::compile("[257]0[05]");
  for (std::uint16_t v : p.enumerate()) EXPECT_TRUE(p.matches(v));
  EXPECT_EQ(p.enumerate().size(), 6u);
}

TEST(CommunityPattern, MatchRequiresAlpha) {
  const auto p = CommunityPattern::compile("1299:2569");
  EXPECT_TRUE(p.matches(bgp::Community(1299, 2569)));
  EXPECT_FALSE(p.matches(bgp::Community(3356, 2569)));
}

TEST(CommunityPattern, CompileErrors) {
  EXPECT_THROW(CommunityPattern::compile("2569"), ParseError);
  EXPECT_THROW(CommunityPattern::compile("70000:1"), ParseError);
  EXPECT_THROW(CommunityPattern::compile("x:1"), ParseError);
}

TEST(CommunityPattern, CompileAcceptsPatternAfterColon) {
  const auto p = CommunityPattern::compile("1299:[257]\\d\\d[1239]");
  EXPECT_EQ(p.alpha(), 1299);
  EXPECT_TRUE(p.matches(bgp::Community(1299, 2569)));
}

TEST(CommunityPattern, Enumerate) {
  const auto p = CommunityPattern::compile("701:10-12");
  const auto all = p.enumerate();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0], bgp::Community(701, 10));
  EXPECT_EQ(all[2], bgp::Community(701, 12));
}

TEST(CommunityPattern, ToString) {
  EXPECT_EQ(CommunityPattern::compile("1299:430-431").to_string(),
            "1299:430-431");
  EXPECT_EQ(CommunityPattern::compile("1299:[257]\\d\\d9").to_string(),
            "1299:[257]\\d\\d9");
}

TEST(CommunityPattern, FromParts) {
  const auto p = CommunityPattern::from_parts(
      3356, BetaPattern::compile("2\\d\\d\\d"));
  EXPECT_EQ(p.alpha(), 3356);
  EXPECT_TRUE(p.matches(bgp::Community(3356, 2500)));
  EXPECT_FALSE(p.matches(bgp::Community(3356, 500)));
}

}  // namespace
}  // namespace bgpintent::dict
