#include "dict/dictionary.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "dict/builtin.hpp"
#include "util/strings.hpp"

namespace bgpintent::dict {
namespace {

AsDictionary make_arelion_like() {
  AsDictionary d(1299);
  d.add(CommunityPattern::compile("1299:430-431"), Category::kRovStatus,
        "ROV status");
  d.add(CommunityPattern::compile("1299:[257]\\d\\d9"),
        Category::kSuppressToAs, "do not export");
  d.add(CommunityPattern::compile("1299:2\\d\\d\\d\\d"),
        Category::kLocationCity, "ingress city");
  return d;
}

TEST(AsDictionary, LookupFirstMatchWins) {
  AsDictionary d(100);
  d.add(CommunityPattern::compile("100:15"), Category::kBlackhole, "specific");
  d.add(CommunityPattern::compile("100:10-20"), Category::kLocationCity,
        "broad");
  const auto* specific = d.lookup(bgp::Community(100, 15));
  ASSERT_NE(specific, nullptr);
  EXPECT_EQ(specific->category, Category::kBlackhole);
  const auto* broad = d.lookup(bgp::Community(100, 16));
  ASSERT_NE(broad, nullptr);
  EXPECT_EQ(broad->category, Category::kLocationCity);
}

TEST(AsDictionary, LookupMiss) {
  const auto d = make_arelion_like();
  EXPECT_EQ(d.lookup(bgp::Community(1299, 1)), nullptr);
  EXPECT_EQ(d.lookup(bgp::Community(3356, 430)), nullptr);  // wrong alpha
}

TEST(AsDictionary, IntentConvenience) {
  const auto d = make_arelion_like();
  EXPECT_EQ(d.intent(bgp::Community(1299, 430)), Intent::kInformation);
  EXPECT_EQ(d.intent(bgp::Community(1299, 2569)), Intent::kAction);
  EXPECT_EQ(d.intent(bgp::Community(1299, 21000)), Intent::kInformation);
  EXPECT_FALSE(d.intent(bgp::Community(1299, 1)));
}

TEST(AsDictionary, CoveredCommunitiesDeduplicated) {
  AsDictionary d(100);
  d.add(CommunityPattern::compile("100:10-12"), Category::kBlackhole, "");
  d.add(CommunityPattern::compile("100:11-13"), Category::kBlackhole, "");
  const auto covered = d.covered_communities();
  ASSERT_EQ(covered.size(), 4u);
  EXPECT_EQ(covered.front(), bgp::Community(100, 10));
  EXPECT_EQ(covered.back(), bgp::Community(100, 13));
}

TEST(DictionaryStore, FindAndCreate) {
  DictionaryStore store;
  EXPECT_EQ(store.find(1299), nullptr);
  store.dictionary_for(1299).add(CommunityPattern::compile("1299:666"),
                                 Category::kBlackhole, "");
  ASSERT_NE(store.find(1299), nullptr);
  EXPECT_EQ(store.as_count(), 1u);
  EXPECT_EQ(store.entry_count(), 1u);
}

TEST(DictionaryStore, LookupRoutesToOwner) {
  DictionaryStore store;
  store.dictionary_for(1299).add(CommunityPattern::compile("1299:666"),
                                 Category::kBlackhole, "bh");
  store.dictionary_for(3356).add(CommunityPattern::compile("3356:666"),
                                 Category::kLocationCity, "city");
  EXPECT_EQ(store.intent(bgp::Community(1299, 666)), Intent::kAction);
  EXPECT_EQ(store.intent(bgp::Community(3356, 666)), Intent::kInformation);
  EXPECT_FALSE(store.intent(bgp::Community(701, 666)));
}

TEST(DictionaryStore, CountsByIntent) {
  DictionaryStore store;
  store.dictionary_for(1).add(CommunityPattern::compile("1:1"),
                              Category::kPrepend, "");
  store.dictionary_for(1).add(CommunityPattern::compile("1:2"),
                              Category::kRovStatus, "");
  store.dictionary_for(2).add(CommunityPattern::compile("2:1"),
                              Category::kLocationCountry, "");
  const auto counts = store.count_entries_by_intent();
  EXPECT_EQ(counts.action, 1u);
  EXPECT_EQ(counts.information, 2u);
}

TEST(DictionaryStore, SaveLoadRoundTrip) {
  DictionaryStore store;
  store.dictionary_for(1299).add(
      CommunityPattern::compile("1299:[257]\\d\\d9"), Category::kSuppressToAs,
      "do not export");
  store.dictionary_for(1299).add(CommunityPattern::compile("1299:430-431"),
                                 Category::kRovStatus, "ROV");
  std::ostringstream out;
  store.save(out);

  DictionaryStore loaded;
  std::istringstream in(out.str());
  loaded.load(in);
  EXPECT_EQ(loaded.as_count(), 1u);
  EXPECT_EQ(loaded.entry_count(), 2u);
  EXPECT_EQ(loaded.intent(bgp::Community(1299, 2569)), Intent::kAction);
  EXPECT_EQ(loaded.intent(bgp::Community(1299, 431)), Intent::kInformation);
  const auto* entry = loaded.lookup(bgp::Community(1299, 430));
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->description, "ROV");
}

TEST(DictionaryStore, LoadSkipsCommentsAndBlank) {
  DictionaryStore store;
  std::istringstream in("# comment\n\n1299|666|blackhole|bh\n");
  store.load(in);
  EXPECT_EQ(store.entry_count(), 1u);
}

TEST(DictionaryStore, LoadRejectsMalformed) {
  {
    DictionaryStore store;
    std::istringstream in("1299|666\n");  // too few fields
    EXPECT_THROW(store.load(in), util::ParseError);
  }
  {
    DictionaryStore store;
    std::istringstream in("70000|666|blackhole|x\n");  // alpha too big
    EXPECT_THROW(store.load(in), util::ParseError);
  }
  {
    DictionaryStore store;
    std::istringstream in("1299|666|not_a_category|x\n");
    EXPECT_THROW(store.load(in), util::ParseError);
  }
  {
    DictionaryStore store;
    std::istringstream in("1299|[66|blackhole|x\n");  // bad pattern
    EXPECT_THROW(store.load(in), util::ParseError);
  }
}

TEST(BuiltinDictionary, ContainsWellKnownAndArelion) {
  const DictionaryStore store = builtin_dictionary();
  // RFC well-knowns.
  EXPECT_EQ(store.intent(bgp::kNoExport), Intent::kAction);
  EXPECT_EQ(store.intent(bgp::kBlackhole), Intent::kAction);
  EXPECT_EQ(store.intent(bgp::kGracefulShutdown), Intent::kAction);
  // Arelion examples straight from the paper.
  EXPECT_EQ(store.intent(bgp::Community(1299, 2569)), Intent::kAction);
  EXPECT_EQ(store.intent(bgp::Community(1299, 35130)), Intent::kInformation);
  EXPECT_EQ(store.intent(bgp::Community(1299, 430)), Intent::kInformation);
  EXPECT_EQ(store.intent(bgp::Community(1299, 666)), Intent::kAction);
  EXPECT_EQ(store.intent(bgp::Community(1299, 50)), Intent::kAction);
}

TEST(BuiltinDictionary, ArelionPrependVersusNoExport) {
  const DictionaryStore store = builtin_dictionary();
  const auto* prepend = store.lookup(bgp::Community(1299, 2561));
  ASSERT_NE(prepend, nullptr);
  EXPECT_EQ(prepend->category, Category::kPrepend);
  const auto* noexp = store.lookup(bgp::Community(1299, 2569));
  ASSERT_NE(noexp, nullptr);
  EXPECT_EQ(noexp->category, Category::kSuppressToAs);
}

}  // namespace
}  // namespace bgpintent::dict
