#include <gtest/gtest.h>

#include <sstream>

#include "mrt/mrt_file.hpp"

namespace bgpintent::mrt {
namespace {

bgp::RibEntry make_entry(std::uint32_t peer_asn, const char* prefix,
                         std::vector<bgp::Asn> path,
                         std::vector<bgp::Community> communities = {}) {
  bgp::RibEntry entry;
  entry.vantage_point.asn = peer_asn;
  entry.vantage_point.address = 0xc0000000u | peer_asn;
  entry.route.prefix = *bgp::Prefix::parse(prefix);
  entry.route.path = bgp::AsPath(std::move(path));
  entry.route.communities = std::move(communities);
  entry.route.next_hop = entry.vantage_point.address;
  return entry;
}

TEST(LegacyTableDump, RoundTrip) {
  std::vector<bgp::RibEntry> entries;
  entries.push_back(make_entry(65001, "10.0.0.0/24", {65001, 1299, 64496},
                               {bgp::Community(1299, 35130)}));
  entries.push_back(make_entry(65002, "10.0.1.0/24", {65002, 701}));
  std::ostringstream out;
  MrtWriter writer(out);
  writer.write_legacy_rib(entries, 1082000000);

  std::istringstream in(out.str());
  const auto decoded = read_rib_entries(in);
  ASSERT_EQ(decoded.size(), 2u);
  EXPECT_EQ(decoded[0].vantage_point, entries[0].vantage_point);
  EXPECT_EQ(decoded[0].route.prefix, entries[0].route.prefix);
  EXPECT_EQ(decoded[0].route.path, entries[0].route.path);
  EXPECT_EQ(decoded[0].route.communities, entries[0].route.communities);
  EXPECT_EQ(decoded[1].route.path, entries[1].route.path);
}

TEST(LegacyTableDump, Rejects4OctetAsns) {
  std::ostringstream out;
  MrtWriter writer(out);
  EXPECT_THROW(
      writer.write_legacy_rib(
          {make_entry(65001, "10.0.0.0/24", {65001, 212483})}, 0),
      MrtError);
  EXPECT_THROW(
      writer.write_legacy_rib(
          {make_entry(212483, "10.0.0.0/24", {65001, 701})}, 0),
      MrtError);
}

TEST(LegacyTableDump, ManyCommunitiesUseExtendedLength) {
  std::vector<bgp::Community> many;
  for (std::uint16_t beta = 0; beta < 100; ++beta)
    many.emplace_back(1299, beta);
  const auto entry =
      make_entry(65001, "10.0.0.0/24", {65001, 1299}, std::move(many));
  std::ostringstream out;
  MrtWriter writer(out);
  writer.write_legacy_rib({entry}, 0);
  std::istringstream in(out.str());
  const auto decoded = read_rib_entries(in);
  ASSERT_EQ(decoded.size(), 1u);
  EXPECT_EQ(decoded[0].route.communities.size(), 100u);
  EXPECT_EQ(decoded[0].route.communities, entry.route.communities);
}

TEST(StateChange, WrittenAndSkippedOnRead) {
  const auto entry = make_entry(65001, "10.0.0.0/24", {65001, 701});
  std::ostringstream out;
  MrtWriter writer(out);
  writer.write_state_change(entry.vantage_point, 6, 1, 100);  // Established->Idle
  writer.write_update(entry.vantage_point, entry.route, 101);
  writer.write_state_change(entry.vantage_point, 1, 6, 102);

  std::istringstream raw(out.str());
  MrtReader reader(raw);
  MrtRecord record;
  std::size_t state_changes = 0;
  while (reader.next(record))
    if (record.type == kTypeBgp4mp &&
        record.subtype == kSubtypeBgp4mpStateChangeAs4)
      ++state_changes;
  EXPECT_EQ(state_changes, 2u);

  std::istringstream in(out.str());
  const auto decoded = read_rib_entries(in);
  ASSERT_EQ(decoded.size(), 1u);  // only the update contributes routes
  EXPECT_EQ(decoded[0].route.path, entry.route.path);
}

TEST(LegacyTableDump, MixedWithV2InOneStream) {
  const auto a = make_entry(65001, "10.0.0.0/24", {65001, 701});
  const auto b = make_entry(65002, "10.0.1.0/24", {65002, 1299});
  std::ostringstream out;
  MrtWriter writer(out);
  writer.write_legacy_rib({a}, 100);
  writer.write_rib_snapshot({b}, 0x7f000001, 200);
  std::istringstream in(out.str());
  const auto decoded = read_rib_entries(in);
  EXPECT_EQ(decoded.size(), 2u);
}

}  // namespace
}  // namespace bgpintent::mrt
