// Update-stream decode tests: BGP4MP announce/withdraw ordering and
// timestamps, interleaved RIB rows, state-change skipping, and fault
// injection over update streams — including that corrupt_mrt treats every
// record of a peer-table-free stream as a victim candidate while still
// protecting the PEER_INDEX_TABLE of RIB images.
#include "mrt/update_stream.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <vector>

#include "bgp/route.hpp"
#include "mrt/fault.hpp"
#include "mrt/mrt_file.hpp"
#include "mrt/source.hpp"
#include "routing/scenario.hpp"

namespace bgpintent::mrt {
namespace {

bgp::VantagePointId peer(std::uint32_t asn) {
  bgp::VantagePointId vp;
  vp.asn = asn;
  vp.address = asn;
  return vp;
}

bgp::Route route(const char* prefix, std::vector<bgp::Asn> path,
                 std::vector<bgp::Community> communities) {
  bgp::Route r;
  r.prefix = *bgp::Prefix::parse(prefix);
  r.path = bgp::AsPath(std::move(path));
  r.communities = std::move(communities);
  return r;
}

std::vector<std::uint8_t> bytes_of(const std::ostringstream& out) {
  const std::string str = out.str();
  return std::vector<std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(str.data()),
      reinterpret_cast<const std::uint8_t*>(str.data()) + str.size());
}

struct Seen {
  bool announce = false;
  bgp::VantagePointId vp;
  bgp::Prefix prefix;
  std::vector<bgp::Community> communities;
  std::uint32_t timestamp = 0;
};

class Recorder final : public UpdateSink {
 public:
  void on_announce(bgp::RibEntry& entry, std::uint32_t timestamp) override {
    seen.push_back(Seen{true, entry.vantage_point, entry.route.prefix,
                        entry.route.communities, timestamp});
  }
  void on_withdraw(const bgp::VantagePointId& vp, const bgp::Prefix& prefix,
                   std::uint32_t timestamp) override {
    seen.push_back(Seen{false, vp, prefix, {}, timestamp});
  }
  std::vector<Seen> seen;
};

TEST(UpdateStream, AnnounceWithdrawAndStateChangeSemantics) {
  std::ostringstream out;
  MrtWriter writer(out);
  writer.write_update(peer(61), route("10.1.0.0/24", {61, 100, 201},
                                      {bgp::Community(100, 1)}),
                      1000);
  const bgp::Prefix withdrawn[] = {*bgp::Prefix::parse("10.1.0.0/24"),
                                   *bgp::Prefix::parse("10.2.0.0/24")};
  writer.write_withdraw(peer(61), withdrawn, 1010);
  writer.write_state_change(peer(61), 6, 1, 1020);  // must be skipped

  Recorder recorder;
  DecodeReport report;
  decode_update_stream(BufferSource{bytes_of(out)}, recorder, {}, &report);

  ASSERT_EQ(recorder.seen.size(), 3u);
  EXPECT_TRUE(recorder.seen[0].announce);
  EXPECT_EQ(recorder.seen[0].vp.asn, 61u);
  EXPECT_EQ(recorder.seen[0].timestamp, 1000u);
  EXPECT_EQ(recorder.seen[0].communities,
            std::vector<bgp::Community>{bgp::Community(100, 1)});
  EXPECT_FALSE(recorder.seen[1].announce);
  EXPECT_EQ(recorder.seen[1].prefix, withdrawn[0]);
  EXPECT_FALSE(recorder.seen[2].announce);
  EXPECT_EQ(recorder.seen[2].prefix, withdrawn[1]);
  EXPECT_EQ(recorder.seen[2].timestamp, 1010u);
  EXPECT_EQ(report.records_ok, 3u);  // the state change decodes, emits none
}

TEST(UpdateStream, WithdrawalsPrecedeAnnouncementsWithinOneMessage) {
  // A priming RIB dump concatenated in front of BGP4MP updates — the
  // record mix a real archive replay produces.
  routing::ScenarioConfig cfg;
  cfg.topology.seed = 7;
  cfg.topology.tier1_count = 4;
  cfg.topology.tier2_count = 12;
  cfg.topology.stub_count = 40;
  cfg.vantage_point_count = 8;
  const auto scenario = routing::Scenario::build(cfg);
  const auto entries = scenario.entries();

  std::ostringstream out;
  MrtWriter writer(out);
  writer.write_rib_snapshot(entries, 0x7f000001, 900);
  writer.write_update(peer(61), route("10.9.0.0/24", {61, 100},
                                      {bgp::Community(100, 2)}),
                      1000);

  Recorder recorder;
  decode_update_stream(BufferSource{bytes_of(out)}, recorder);
  ASSERT_EQ(recorder.seen.size(), entries.size() + 1);
  // RIB rows surface as announcements stamped with the dump timestamp.
  for (std::size_t i = 0; i < entries.size(); ++i) {
    EXPECT_TRUE(recorder.seen[i].announce);
    EXPECT_EQ(recorder.seen[i].timestamp, 900u);
  }
  EXPECT_EQ(recorder.seen.back().timestamp, 1000u);
}

TEST(UpdateStream, IstreamStrictMatchesBufferDecode) {
  std::ostringstream out;
  MrtWriter writer(out);
  for (std::uint32_t i = 0; i < 8; ++i)
    writer.write_update(peer(61 + i),
                        route("10.1.0.0/24", {61 + i, 100, 201},
                              {bgp::Community(100, static_cast<std::uint16_t>(
                                                       i))}),
                        1000 + i);

  Recorder from_buffer;
  decode_update_stream(BufferSource{bytes_of(out)}, from_buffer);

  std::istringstream in(out.str());
  Recorder from_stream;
  decode_update_stream(in, from_stream);
  ASSERT_EQ(from_stream.seen.size(), from_buffer.seen.size());
  for (std::size_t i = 0; i < from_buffer.seen.size(); ++i) {
    EXPECT_EQ(from_stream.seen[i].timestamp, from_buffer.seen[i].timestamp);
    EXPECT_EQ(from_stream.seen[i].communities,
              from_buffer.seen[i].communities);
  }
}

// --- fault injection over update streams --------------------------------

std::vector<std::uint8_t> update_only_stream(std::size_t records) {
  std::ostringstream out;
  MrtWriter writer(out);
  for (std::size_t i = 0; i < records; ++i)
    writer.write_update(
        peer(61), route("10.1.0.0/24", {61, 100, 201},
                        {bgp::Community(100, static_cast<std::uint16_t>(i))}),
        static_cast<std::uint32_t>(1000 + i));
  return bytes_of(out);
}

TEST(UpdateStreamFault, EveryRecordOfAPeerTableFreeStreamIsACandidate) {
  const auto bytes = update_only_stream(6);
  bool hit_record_zero = false;
  for (std::uint64_t seed = 1; seed <= 32 && !hit_record_zero; ++seed) {
    const auto result =
        corrupt_mrt(bytes, CorruptionKind::kBitFlip, seed);
    hit_record_zero = std::find(result.touched_records.begin(),
                                result.touched_records.end(),
                                0u) != result.touched_records.end();
  }
  EXPECT_TRUE(hit_record_zero)
      << "record 0 of a BGP4MP stream must be corruptible";
}

TEST(UpdateStreamFault, RibImagesStillProtectThePeerIndexTable) {
  routing::ScenarioConfig cfg;
  cfg.topology.seed = 8;
  cfg.topology.tier1_count = 4;
  cfg.topology.tier2_count = 12;
  cfg.topology.stub_count = 40;
  cfg.vantage_point_count = 8;
  const auto scenario = routing::Scenario::build(cfg);
  std::ostringstream out;
  MrtWriter writer(out);
  writer.write_rib_snapshot(scenario.entries(), 0x7f000001, 900);
  const auto bytes = bytes_of(out);

  for (const CorruptionKind kind : kAllCorruptionKinds)
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
      const auto result = corrupt_mrt(bytes, kind, seed);
      EXPECT_EQ(std::find(result.touched_records.begin(),
                          result.touched_records.end(), 0u),
                result.touched_records.end())
          << result.description;
    }
}

/// The tolerant-recovery contract extended to update streams: every
/// record corrupt_mrt did not name decodes to exactly its original
/// updates, for every corruption kind and several seeds.
TEST(UpdateStreamFault, TolerantDecodeRecoversEveryUntouchedRecord) {
  constexpr std::size_t kRecords = 10;
  const auto bytes = update_only_stream(kRecords);
  DecodeOptions tolerant;
  tolerant.mode = DecodeMode::kTolerant;

  for (const CorruptionKind kind : kAllCorruptionKinds)
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
      const auto corrupted = corrupt_mrt(bytes, kind, seed);
      SCOPED_TRACE(corrupted.description);

      Recorder recorder;
      DecodeReport report;
      decode_update_stream(BufferSource{corrupted.bytes}, recorder, tolerant,
                           &report);
      // One announce per record here; survivors must keep their identity
      // (the beta encodes the record index).
      std::vector<std::uint16_t> recovered;
      for (const Seen& seen : recorder.seen)
        if (seen.announce && seen.communities.size() == 1)
          recovered.push_back(seen.communities[0].beta());
      for (std::uint64_t r = 0; r < kRecords; ++r) {
        if (std::find(corrupted.touched_records.begin(),
                      corrupted.touched_records.end(),
                      r) != corrupted.touched_records.end())
          continue;
        EXPECT_NE(std::find(recovered.begin(), recovered.end(),
                            static_cast<std::uint16_t>(r)),
                  recovered.end())
            << "record " << r << " not recovered";
      }
      EXPECT_GE(report.records_ok + report.records_skipped, 1u);
    }
}

TEST(UpdateStreamFault, StrictDecodeThrowsOnTruncation) {
  const auto bytes = update_only_stream(6);
  const auto corrupted = corrupt_mrt(bytes, CorruptionKind::kTruncate, 3);
  Recorder recorder;
  EXPECT_THROW(decode_update_stream(BufferSource{corrupted.bytes}, recorder),
               MrtError);
}

}  // namespace
}  // namespace bgpintent::mrt
