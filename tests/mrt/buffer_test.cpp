#include "mrt/buffer.hpp"

#include <gtest/gtest.h>

namespace bgpintent::mrt {
namespace {

TEST(ByteWriter, BigEndianEncoding) {
  ByteWriter w;
  w.put_u8(0x01);
  w.put_u16(0x0203);
  w.put_u32(0x04050607);
  w.put_u64(0x08090a0b0c0d0e0fULL);
  const auto& b = w.bytes();
  ASSERT_EQ(b.size(), 15u);
  EXPECT_EQ(b[0], 0x01);
  EXPECT_EQ(b[1], 0x02);
  EXPECT_EQ(b[2], 0x03);
  EXPECT_EQ(b[3], 0x04);
  EXPECT_EQ(b[6], 0x07);
  EXPECT_EQ(b[7], 0x08);
  EXPECT_EQ(b[14], 0x0f);
}

TEST(ByteWriter, PutBytes) {
  ByteWriter w;
  const std::uint8_t data[] = {1, 2, 3};
  w.put_bytes(data);
  EXPECT_EQ(w.size(), 3u);
  EXPECT_EQ(w.bytes()[2], 3);
}

TEST(ByteWriter, PatchU16) {
  ByteWriter w;
  w.put_u16(0);
  w.put_u8(42);
  w.patch_u16(0, 0xbeef);
  EXPECT_EQ(w.bytes()[0], 0xbe);
  EXPECT_EQ(w.bytes()[1], 0xef);
  EXPECT_EQ(w.bytes()[2], 42);
  EXPECT_THROW(w.patch_u16(2, 1), MrtError);
}

TEST(ByteWriter, PatchU32) {
  ByteWriter w;
  w.put_u32(0);
  w.patch_u32(0, 0xdeadbeef);
  EXPECT_EQ(w.bytes()[0], 0xde);
  EXPECT_EQ(w.bytes()[3], 0xef);
  EXPECT_THROW(w.patch_u32(1, 1), MrtError);
}

TEST(ByteWriter, TakeMovesBuffer) {
  ByteWriter w;
  w.put_u8(7);
  auto taken = w.take();
  EXPECT_EQ(taken.size(), 1u);
}

TEST(ByteReader, RoundTripThroughWriter) {
  ByteWriter w;
  w.put_u8(0xab);
  w.put_u16(0x1234);
  w.put_u32(0xdeadbeef);
  w.put_u64(0x1122334455667788ULL);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.get_u8(), 0xab);
  EXPECT_EQ(r.get_u16(), 0x1234);
  EXPECT_EQ(r.get_u32(), 0xdeadbeefu);
  EXPECT_EQ(r.get_u64(), 0x1122334455667788ULL);
  EXPECT_TRUE(r.exhausted());
}

TEST(ByteReader, ThrowsOnTruncation) {
  const std::uint8_t data[] = {1, 2, 3};
  ByteReader r(data);
  EXPECT_EQ(r.get_u16(), 0x0102);
  EXPECT_THROW((void)r.get_u16(), MrtError);
  // Failed read consumes nothing.
  EXPECT_EQ(r.get_u8(), 3);
}

TEST(ByteReader, GetBytesAndSkip) {
  const std::uint8_t data[] = {1, 2, 3, 4, 5};
  ByteReader r(data);
  r.skip(1);
  const auto view = r.get_bytes(2);
  ASSERT_EQ(view.size(), 2u);
  EXPECT_EQ(view[0], 2);
  EXPECT_EQ(view[1], 3);
  EXPECT_EQ(r.remaining(), 2u);
  EXPECT_THROW(r.skip(3), MrtError);
}

TEST(ByteReader, SubReaderIsBounded) {
  const std::uint8_t data[] = {1, 2, 3, 4};
  ByteReader r(data);
  ByteReader sub = r.sub_reader(2);
  EXPECT_EQ(sub.get_u8(), 1);
  EXPECT_EQ(sub.get_u8(), 2);
  EXPECT_THROW((void)sub.get_u8(), MrtError);
  // Parent advanced past the sub-range.
  EXPECT_EQ(r.get_u8(), 3);
}

TEST(ByteReader, PositionTracking) {
  const std::uint8_t data[] = {1, 2, 3, 4};
  ByteReader r(data);
  EXPECT_EQ(r.position(), 0u);
  (void)r.get_u16();
  EXPECT_EQ(r.position(), 2u);
  EXPECT_EQ(r.remaining(), 2u);
}

}  // namespace
}  // namespace bgpintent::mrt
