#include "mrt/bgp_message.hpp"

#include <gtest/gtest.h>

#include <utility>
#include <vector>

namespace bgpintent::mrt {
namespace {

PathAttributes sample_attrs() {
  PathAttributes attrs;
  attrs.origin = bgp::Origin::kEgp;
  attrs.as_path = bgp::AsPath({701, 1299, 64496});
  attrs.next_hop = 0xc0000201;
  attrs.med = 10;
  attrs.local_pref = 200;
  attrs.communities = {bgp::Community(1299, 2569), bgp::Community(1299, 35130)};
  attrs.large_communities = {bgp::LargeCommunity(212483, 1, 42)};
  return attrs;
}

TEST(NlriPrefix, RoundTripVariousLengths) {
  for (const char* text :
       {"0.0.0.0/0", "10.0.0.0/8", "10.32.0.0/11", "192.0.2.0/24",
        "203.0.113.5/32", "128.0.0.0/1"}) {
    const auto prefix = bgp::Prefix::parse(text);
    ASSERT_TRUE(prefix) << text;
    ByteWriter w;
    encode_nlri_prefix(w, *prefix);
    ByteReader r(w.bytes());
    EXPECT_EQ(decode_nlri_prefix(r), *prefix) << text;
    EXPECT_TRUE(r.exhausted());
  }
}

TEST(NlriPrefix, UsesMinimalBytes) {
  ByteWriter w;
  encode_nlri_prefix(w, *bgp::Prefix::parse("10.0.0.0/8"));
  EXPECT_EQ(w.size(), 2u);  // len byte + 1 address byte
  ByteWriter w2;
  encode_nlri_prefix(w2, *bgp::Prefix::parse("0.0.0.0/0"));
  EXPECT_EQ(w2.size(), 1u);
}

TEST(NlriPrefix, RejectsBadLength) {
  const std::uint8_t bad[] = {33, 1, 2, 3, 4, 5};
  ByteReader r(bad);
  EXPECT_THROW((void)decode_nlri_prefix(r), MrtError);
}

TEST(PathAttributes, RoundTrip) {
  const PathAttributes attrs = sample_attrs();
  ByteWriter w;
  encode_path_attributes(w, attrs);
  ByteReader r(w.bytes());
  const PathAttributes decoded = decode_path_attributes(r, w.size());
  EXPECT_EQ(decoded.origin, attrs.origin);
  EXPECT_EQ(decoded.as_path, attrs.as_path);
  EXPECT_EQ(decoded.next_hop, attrs.next_hop);
  EXPECT_EQ(decoded.med, attrs.med);
  EXPECT_EQ(decoded.local_pref, attrs.local_pref);
  EXPECT_EQ(decoded.communities, attrs.communities);
  EXPECT_EQ(decoded.large_communities, attrs.large_communities);
}

TEST(PathAttributes, RoundTripMinimal) {
  PathAttributes attrs;
  attrs.as_path = bgp::AsPath(std::vector<bgp::Asn>{65000});
  ByteWriter w;
  encode_path_attributes(w, attrs);
  ByteReader r(w.bytes());
  const PathAttributes decoded = decode_path_attributes(r, w.size());
  EXPECT_EQ(decoded.as_path, attrs.as_path);
  EXPECT_FALSE(decoded.med);
  EXPECT_FALSE(decoded.local_pref);
  EXPECT_TRUE(decoded.communities.empty());
}

TEST(PathAttributes, RoundTripWithAsSet) {
  PathAttributes attrs;
  attrs.as_path = bgp::AsPath(std::vector<bgp::PathSegment>{
      {bgp::SegmentType::kSequence, {701, 1299}},
      {bgp::SegmentType::kSet, {64496, 64497}},
  });
  ByteWriter w;
  encode_path_attributes(w, attrs);
  ByteReader r(w.bytes());
  EXPECT_EQ(decode_path_attributes(r, w.size()).as_path, attrs.as_path);
}

TEST(PathAttributes, ExtendedLengthForManyCommunities) {
  PathAttributes attrs;
  attrs.as_path = bgp::AsPath(std::vector<bgp::Asn>{1});
  for (std::uint16_t beta = 0; beta < 100; ++beta)
    attrs.communities.emplace_back(1299, beta);  // 400 bytes > 255
  ByteWriter w;
  encode_path_attributes(w, attrs);
  ByteReader r(w.bytes());
  const PathAttributes decoded = decode_path_attributes(r, w.size());
  EXPECT_EQ(decoded.communities.size(), 100u);
  EXPECT_EQ(decoded.communities, attrs.communities);
}

TEST(PathAttributes, TwoByteAsnMode) {
  PathAttributes attrs;
  attrs.as_path = bgp::AsPath({701, 1299});
  ByteWriter w;
  // Hand-encode a 2-octet AS_PATH.
  ByteWriter body;
  body.put_u8(2);  // AS_SEQUENCE
  body.put_u8(2);
  body.put_u16(701);
  body.put_u16(1299);
  w.put_u8(kFlagTransitive);
  w.put_u8(kAttrAsPath);
  w.put_u8(static_cast<std::uint8_t>(body.size()));
  w.put_bytes(body.bytes());
  ByteReader r(w.bytes());
  const PathAttributes decoded =
      decode_path_attributes(r, w.size(), /*asn16=*/true);
  EXPECT_EQ(decoded.as_path, attrs.as_path);
}

TEST(PathAttributes, UnknownOptionalAttributeSkipped) {
  ByteWriter w;
  w.put_u8(kFlagOptional | kFlagTransitive);
  w.put_u8(99);  // unknown type
  w.put_u8(2);
  w.put_u16(0xbeef);
  ByteReader r(w.bytes());
  EXPECT_NO_THROW((void)decode_path_attributes(r, w.size()));
}

TEST(PathAttributes, UnknownWellKnownAttributeThrows) {
  ByteWriter w;
  w.put_u8(kFlagTransitive);  // well-known (not optional)
  w.put_u8(99);
  w.put_u8(0);
  ByteReader r(w.bytes());
  EXPECT_THROW((void)decode_path_attributes(r, w.size()), MrtError);
}

TEST(PathAttributes, MalformedCommunitiesLengthThrows) {
  ByteWriter w;
  w.put_u8(kFlagOptional | kFlagTransitive);
  w.put_u8(kAttrCommunities);
  w.put_u8(3);  // not divisible by 4
  w.put_u8(0);
  w.put_u8(0);
  w.put_u8(0);
  ByteReader r(w.bytes());
  EXPECT_THROW((void)decode_path_attributes(r, w.size()), MrtError);
}

TEST(PathAttributes, BadOriginValueThrows) {
  ByteWriter w;
  w.put_u8(kFlagTransitive);
  w.put_u8(kAttrOrigin);
  w.put_u8(1);
  w.put_u8(7);  // invalid origin
  ByteReader r(w.bytes());
  EXPECT_THROW((void)decode_path_attributes(r, w.size()), MrtError);
}

TEST(PathAttributes, TruncatedBlockThrows) {
  const PathAttributes attrs = sample_attrs();
  ByteWriter w;
  encode_path_attributes(w, attrs);
  ByteReader r(w.bytes());
  EXPECT_THROW((void)decode_path_attributes(r, w.size() + 10), MrtError);
}

TEST(BgpUpdate, RoundTrip) {
  BgpUpdate update;
  update.attrs = sample_attrs();
  update.announced = {*bgp::Prefix::parse("192.0.2.0/24"),
                      *bgp::Prefix::parse("198.51.100.0/24")};
  update.withdrawn = {*bgp::Prefix::parse("203.0.113.0/24")};
  ByteWriter w;
  encode_bgp_update(w, update);
  ByteReader r(w.bytes());
  const BgpUpdate decoded = decode_bgp_message(r);
  EXPECT_EQ(decoded.announced, update.announced);
  EXPECT_EQ(decoded.withdrawn, update.withdrawn);
  EXPECT_EQ(decoded.attrs.as_path, update.attrs.as_path);
  EXPECT_EQ(decoded.attrs.communities, update.attrs.communities);
  EXPECT_TRUE(r.exhausted());
}

TEST(BgpUpdate, WithdrawOnly) {
  BgpUpdate update;
  update.withdrawn = {*bgp::Prefix::parse("192.0.2.0/24")};
  ByteWriter w;
  encode_bgp_update(w, update);
  ByteReader r(w.bytes());
  const BgpUpdate decoded = decode_bgp_message(r);
  EXPECT_TRUE(decoded.announced.empty());
  EXPECT_EQ(decoded.withdrawn.size(), 1u);
}

TEST(BgpUpdate, BadMarkerThrows) {
  BgpUpdate update;
  update.announced = {*bgp::Prefix::parse("192.0.2.0/24")};
  update.attrs.as_path = bgp::AsPath(std::vector<bgp::Asn>{1});
  ByteWriter w;
  encode_bgp_update(w, update);
  auto bytes = w.take();
  bytes[3] = 0x00;  // corrupt marker
  ByteReader r(bytes);
  EXPECT_THROW((void)decode_bgp_message(r), MrtError);
}

TEST(BgpUpdate, MessageLengthIsPatched) {
  BgpUpdate update;
  update.announced = {*bgp::Prefix::parse("192.0.2.0/24")};
  update.attrs.as_path = bgp::AsPath(std::vector<bgp::Asn>{64500});
  ByteWriter w;
  encode_bgp_update(w, update);
  const auto& b = w.bytes();
  const std::size_t declared = static_cast<std::size_t>(b[16]) << 8 | b[17];
  EXPECT_EQ(declared, b.size());
}

// --- Scratch-reuse decode (the in-place overload behind RowScratch) ---

namespace scratch_reuse {

/// Hand-encodes one AS_PATH attribute from (type, asns) segment pairs,
/// including shapes the encoder refuses to emit (empty segments).
void put_as_path(ByteWriter& out,
                 const std::vector<std::pair<std::uint8_t,
                                             std::vector<bgp::Asn>>>& segs) {
  ByteWriter body;
  for (const auto& [type, asns] : segs) {
    body.put_u8(type);
    body.put_u8(static_cast<std::uint8_t>(asns.size()));
    for (const bgp::Asn asn : asns) body.put_u32(asn);
  }
  out.put_u8(kFlagTransitive);
  out.put_u8(kAttrAsPath);
  out.put_u8(static_cast<std::uint8_t>(body.size()));
  out.put_bytes(body.bytes());
}

TEST(PathAttributesInPlace, RepeatedAsPathReplacesFirst) {
  ByteWriter w;
  put_as_path(w, {{2, {701, 1299}}});
  put_as_path(w, {{2, {64496}}});
  ByteReader r(w.bytes());
  PathAttributes attrs;
  decode_path_attributes(r, w.size(), /*asn16=*/false, attrs);
  EXPECT_EQ(attrs.as_path, bgp::AsPath(std::vector<bgp::Asn>{64496}));
}

TEST(PathAttributesInPlace, EmptySegmentsAreDropped) {
  // AsPath's invariant is "no empty segments"; the wire may carry them.
  ByteWriter w;
  put_as_path(w, {{1, {}}, {2, {701, 1299}}, {1, {}}});
  ByteReader r(w.bytes());
  PathAttributes attrs;
  decode_path_attributes(r, w.size(), /*asn16=*/false, attrs);
  EXPECT_EQ(attrs.as_path, bgp::AsPath({701, 1299}));
}

TEST(PathAttributesInPlace, AllSegmentsEmptyYieldsEmptyPath) {
  ByteWriter w;
  put_as_path(w, {{2, {}}});
  ByteReader r(w.bytes());
  PathAttributes attrs;
  decode_path_attributes(r, w.size(), /*asn16=*/false, attrs);
  EXPECT_TRUE(attrs.as_path.segments().empty());
}

TEST(PathAttributesInPlace, ReuseResetsEveryField) {
  // First decode fills every optional field; the second block carries
  // only ORIGIN + a shorter AS_PATH, so everything else must come back
  // reset, not leak through from the previous record.
  PathAttributes attrs;
  {
    ByteWriter w;
    encode_path_attributes(w, sample_attrs());
    ByteReader r(w.bytes());
    decode_path_attributes(r, w.size(), /*asn16=*/false, attrs);
  }
  ASSERT_TRUE(attrs.med);
  ASSERT_FALSE(attrs.communities.empty());

  ByteWriter w;
  {
    ByteWriter body;
    body.put_u8(static_cast<std::uint8_t>(bgp::Origin::kIgp));
    w.put_u8(kFlagTransitive);
    w.put_u8(kAttrOrigin);
    w.put_u8(1);
    w.put_bytes(body.bytes());
  }
  put_as_path(w, {{2, {64500}}});
  ByteReader r(w.bytes());
  decode_path_attributes(r, w.size(), /*asn16=*/false, attrs);

  EXPECT_EQ(attrs.origin, bgp::Origin::kIgp);
  EXPECT_EQ(attrs.as_path, bgp::AsPath(std::vector<bgp::Asn>{64500}));
  EXPECT_FALSE(attrs.med);
  EXPECT_FALSE(attrs.local_pref);
  EXPECT_TRUE(attrs.communities.empty());
  EXPECT_TRUE(attrs.large_communities.empty());
  EXPECT_TRUE(attrs.ext_communities.empty());
}

TEST(PathAttributesInPlace, SegmentSlotRecyclingShrinksPath) {
  // Two-segment path first, then a one-segment path into the same
  // scratch: the recycled slot vector must shrink to one segment.
  PathAttributes attrs;
  {
    ByteWriter w;
    put_as_path(w, {{2, {701, 1299}}, {1, {64496, 64497}}});
    ByteReader r(w.bytes());
    decode_path_attributes(r, w.size(), /*asn16=*/false, attrs);
    ASSERT_EQ(attrs.as_path.segments().size(), 2u);
  }
  ByteWriter w;
  put_as_path(w, {{2, {3356}}});
  ByteReader r(w.bytes());
  decode_path_attributes(r, w.size(), /*asn16=*/false, attrs);
  EXPECT_EQ(attrs.as_path, bgp::AsPath(std::vector<bgp::Asn>{3356}));
}

}  // namespace scratch_reuse

}  // namespace
}  // namespace bgpintent::mrt
