// Deterministic fault-injection harness for the tolerant MRT decoder
// (docs/ROBUSTNESS.md).  A seeded corruptor damages a valid fixture in four
// distinct ways; the tests assert the contract end to end:
//
//   * tolerant mode recovers every record the corruption did not touch,
//   * strict mode still hard-fails on the same images,
//   * the sequential and parallel tolerant readers agree exactly,
//   * error budgets trip where documented (absolute mid-stream, fractional
//     at end of stream), and
//   * classification over the survivors is identical to a clean run over
//     the same records.
#include "mrt/fault.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "mrt/mrt_file.hpp"
#include "routing/scenario.hpp"
#include "util/thread_pool.hpp"

namespace bgpintent::mrt {
namespace {

DecodeOptions tolerant_options() {
  DecodeOptions options;
  options.mode = DecodeMode::kTolerant;
  return options;
}

/// A valid RIB snapshot image from a small simulated world.
std::vector<std::uint8_t> make_image(unsigned stub_count = 40) {
  routing::ScenarioConfig cfg;
  cfg.topology.seed = 11;
  cfg.topology.tier1_count = 4;
  cfg.topology.tier2_count = 10;
  cfg.topology.stub_count = stub_count;
  cfg.vantage_point_count = 8;
  const auto scenario = routing::Scenario::build(cfg);
  std::ostringstream out;
  MrtWriter writer(out);
  writer.write_rib_snapshot(scenario.entries(), 0x0a000001, 1700000000);
  const std::string s = out.str();
  return {s.begin(), s.end()};
}

/// Order-insensitive identity of one decoded entry.
std::string entry_key(const bgp::RibEntry& entry) {
  std::string key = entry.route.prefix.to_string() + "|" +
                    std::to_string(entry.vantage_point.asn) + "|" +
                    entry.route.path.to_string() + "|";
  for (const bgp::Community community : entry.route.communities)
    key += community.to_string() + ",";
  return key;
}

std::multiset<std::string> keys_of(const std::vector<bgp::RibEntry>& entries) {
  std::multiset<std::string> keys;
  for (const auto& entry : entries) keys.insert(entry_key(entry));
  return keys;
}

bool is_subset(const std::multiset<std::string>& inner,
               const std::multiset<std::string>& outer) {
  return std::includes(outer.begin(), outer.end(), inner.begin(), inner.end());
}

/// Strict decode of the clean image minus the records in `drop` (record 0,
/// the peer table, is always kept) — the ground truth for what a tolerant
/// decode of the corrupted image must recover.
std::vector<bgp::RibEntry> decode_without(
    const std::vector<std::uint8_t>& clean,
    const std::vector<RecordSpan>& spans,
    const std::vector<std::uint64_t>& drop) {
  const std::set<std::uint64_t> dropped(drop.begin(), drop.end());
  std::vector<std::uint8_t> sub;
  for (std::uint64_t i = 0; i < spans.size(); ++i) {
    if (i != 0 && dropped.contains(i)) continue;
    const auto begin = clean.begin() + static_cast<std::ptrdiff_t>(spans[i].offset);
    sub.insert(sub.end(), begin, begin + static_cast<std::ptrdiff_t>(spans[i].length));
  }
  return read_rib_entries(sub);
}

std::vector<bgp::RibEntry> tolerant_decode(
    const std::vector<std::uint8_t>& bytes, const DecodeOptions& options,
    DecodeReport* report = nullptr) {
  return read_rib_entries(std::span<const std::uint8_t>(bytes), options,
                          report);
}

TEST(FaultInjection, CleanImageTolerantMatchesStrict) {
  const auto image = make_image();
  const auto strict = read_rib_entries(image);
  DecodeReport report;
  const auto tolerant = tolerant_decode(image, tolerant_options(), &report);
  EXPECT_EQ(keys_of(tolerant), keys_of(strict));
  EXPECT_EQ(report.records_ok, index_records(image).size());
  EXPECT_EQ(report.records_skipped, 0u);
  EXPECT_EQ(report.resyncs, 0u);
  EXPECT_TRUE(report.errors.empty());
}

TEST(FaultInjection, CorruptorIsDeterministic) {
  const auto image = make_image();
  for (CorruptionKind kind : kAllCorruptionKinds) {
    const auto a = corrupt_mrt(image, kind, 42);
    const auto b = corrupt_mrt(image, kind, 42);
    EXPECT_EQ(a.bytes, b.bytes) << a.description;
    EXPECT_EQ(a.touched_records, b.touched_records) << a.description;
    const auto c = corrupt_mrt(image, kind, 43);
    EXPECT_NE(a.description, c.description);
  }
}

// The core recovery guarantee: whatever one corruption destroys, every
// record it did not touch decodes — across all kinds and several seeds.
TEST(FaultInjection, TolerantDecodeRecoversEveryUntouchedRecord) {
  const auto image = make_image();
  const auto spans = index_records(image);
  for (CorruptionKind kind : kAllCorruptionKinds) {
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
      const auto corruption = corrupt_mrt(image, kind, seed);
      const auto expected =
          keys_of(decode_without(image, spans, corruption.touched_records));
      DecodeReport report;
      const auto recovered = keys_of(
          tolerant_decode(corruption.bytes, tolerant_options(), &report));
      EXPECT_TRUE(is_subset(expected, recovered))
          << corruption.description << ": tolerant decode recovered "
          << recovered.size() << " entries but the " << expected.size()
          << " from untouched records are not all among them ("
          << report.summary() << ")";
    }
  }
}

// Strict mode keeps its historical contract on the same corrupted images.
// kBitFlip is exempt: a flipped bit inside, say, a community value decodes
// fine (into a different value) — that is exactly why the recovery
// assertions above compare entry content, not success.
TEST(FaultInjection, StrictModeStillThrowsOnStructuralCorruption) {
  const auto image = make_image();
  for (CorruptionKind kind : {CorruptionKind::kTruncate,
                              CorruptionKind::kSplice,
                              CorruptionKind::kLengthLie}) {
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
      const auto corruption = corrupt_mrt(image, kind, seed);
      EXPECT_THROW((void)read_rib_entries(corruption.bytes), MrtError)
          << corruption.description;
    }
  }
}

// The sequential and parallel tolerant readers share one framer, so they
// must agree on entries and on every counter — at any pool size.
TEST(FaultInjection, SequentialAndParallelTolerantAgree) {
  const auto image = make_image();
  util::ThreadPool pool(4);
  for (CorruptionKind kind : kAllCorruptionKinds) {
    for (std::uint64_t seed : {3u, 9u}) {
      const auto corruption = corrupt_mrt(image, kind, seed);
      DecodeReport sequential_report;
      const auto sequential = tolerant_decode(
          corruption.bytes, tolerant_options(), &sequential_report);

      std::istringstream in(std::string(corruption.bytes.begin(),
                                        corruption.bytes.end()));
      DecodeReport parallel_report;
      const auto parallel = read_rib_entries_parallel(
          in, pool, tolerant_options(), &parallel_report);

      ASSERT_EQ(sequential.size(), parallel.size()) << corruption.description;
      for (std::size_t i = 0; i < sequential.size(); ++i)
        EXPECT_EQ(entry_key(sequential[i]), entry_key(parallel[i]))
            << corruption.description << " entry " << i;
      EXPECT_EQ(sequential_report.records_ok, parallel_report.records_ok)
          << corruption.description;
      EXPECT_EQ(sequential_report.records_skipped,
                parallel_report.records_skipped)
          << corruption.description;
      EXPECT_EQ(sequential_report.bytes_skipped, parallel_report.bytes_skipped)
          << corruption.description;
      EXPECT_EQ(sequential_report.resyncs, parallel_report.resyncs)
          << corruption.description;
      EXPECT_EQ(sequential_report.resync_distance_log2,
                parallel_report.resync_distance_log2)
          << corruption.description;
      // Error details may interleave differently (framing errors surface on
      // the framing thread, body errors inside chunks); the *set* is equal.
      auto sorted_errors = [](DecodeReport report) {
        std::sort(report.errors.begin(), report.errors.end(),
                  [](const DecodeError& a, const DecodeError& b) {
                    return a.record_index < b.record_index;
                  });
        return report.errors;
      };
      EXPECT_EQ(sorted_errors(sequential_report),
                sorted_errors(parallel_report))
          << corruption.description;
    }
  }
}

// End-to-end acceptance: classification over the survivors of a corrupted
// file equals classification over a clean file containing exactly those
// records.  Truncation is the kind whose survivor set is always exact
// (everything before the cut, nothing after).
TEST(FaultInjection, ClassificationOverSurvivorsMatchesCleanBaseline) {
  const auto image = make_image(120);  // enough survivors to classify
  const auto spans = index_records(image);
  // Deterministically pick a seed whose cut lands in the last quarter of
  // the file, so plenty of records survive for the classifier.
  std::uint64_t seed = 1;
  while (corrupt_mrt(image, CorruptionKind::kTruncate, seed)
             .touched_records.front() < spans.size() * 3 / 4)
    ++seed;
  const auto corruption = corrupt_mrt(image, CorruptionKind::kTruncate, seed);
  const auto survivors =
      tolerant_decode(corruption.bytes, tolerant_options());
  const auto baseline =
      decode_without(image, spans, corruption.touched_records);
  ASSERT_EQ(keys_of(survivors), keys_of(baseline));
  ASSERT_GT(survivors.size(), 50u);

  core::Pipeline pipeline;
  const auto from_survivors = pipeline.run(survivors);
  const auto from_baseline = pipeline.run(baseline);
  EXPECT_EQ(from_survivors.inference.information_count,
            from_baseline.inference.information_count);
  EXPECT_EQ(from_survivors.inference.action_count,
            from_baseline.inference.action_count);
  std::set<bgp::Community> communities;
  for (const auto& entry : survivors)
    communities.insert(entry.route.communities.begin(),
                       entry.route.communities.end());
  ASSERT_FALSE(communities.empty());
  for (const bgp::Community community : communities)
    EXPECT_EQ(from_survivors.inference.label_of(community),
              from_baseline.inference.label_of(community))
        << community.to_string();
}

TEST(FaultInjection, AbsoluteBudgetTripsMidStream) {
  const auto image = make_image();
  const auto corruption = corrupt_mrt(image, CorruptionKind::kSplice, 2);
  DecodeOptions options = tolerant_options();
  options.max_errors = 0;
  DecodeReport report;
  EXPECT_THROW((void)tolerant_decode(corruption.bytes, options, &report),
               DecodeBudgetError);
  EXPECT_TRUE(report.budget_exhausted);
  EXPECT_GE(report.records_skipped, 1u);

  // The parallel reader defers the trip until in-flight chunks drain, but
  // the outcome is the same.
  util::ThreadPool pool(4);
  std::istringstream in(
      std::string(corruption.bytes.begin(), corruption.bytes.end()));
  DecodeReport parallel_report;
  EXPECT_THROW(
      (void)read_rib_entries_parallel(in, pool, options, &parallel_report),
      DecodeBudgetError);
  EXPECT_TRUE(parallel_report.budget_exhausted);
}

TEST(FaultInjection, FractionalBudgetIsEnforcedAtEndOfStream) {
  // Hand-built tiny image: peer table + 3 RIB records; tearing the last
  // record yields exactly 3 ok / 1 skipped = 25% errors.
  std::vector<bgp::RibEntry> entries;
  for (int i = 0; i < 3; ++i) {
    bgp::RibEntry entry;
    entry.vantage_point.asn = 65001;
    entry.vantage_point.address = 0xc0000001;
    entry.route.prefix =
        *bgp::Prefix::parse("10.0." + std::to_string(i) + ".0/24");
    entry.route.path = bgp::AsPath({65001, 1299, 64496});
    entry.route.communities = {bgp::Community(1299, 100)};
    entry.route.next_hop = entry.vantage_point.address;
    entries.push_back(entry);
  }
  std::ostringstream out;
  MrtWriter writer(out);
  writer.write_rib_snapshot(entries, 1, 0);
  const std::string s = out.str();
  std::vector<std::uint8_t> torn(s.begin(), s.end());
  torn.resize(torn.size() - 5);

  DecodeOptions strict_frac = tolerant_options();
  strict_frac.max_error_frac = 0.2;
  DecodeReport report;
  try {
    (void)tolerant_decode(torn, strict_frac, &report);
    FAIL() << "expected DecodeBudgetError";
  } catch (const DecodeBudgetError& error) {
    // The whole stream was still decoded before the end-of-stream check
    // tripped — the fraction needs the full-stream denominator.
    EXPECT_EQ(error.report().records_ok, 3u);
    EXPECT_EQ(error.report().records_skipped, 1u);
  }

  DecodeOptions loose_frac = tolerant_options();
  loose_frac.max_error_frac = 0.3;
  DecodeReport ok_report;
  const auto recovered = tolerant_decode(torn, loose_frac, &ok_report);
  EXPECT_EQ(recovered.size(), 2u);  // two intact RIB records
  EXPECT_EQ(ok_report.records_skipped, 1u);
  EXPECT_FALSE(ok_report.budget_exhausted);
}

TEST(FaultInjection, GarbageOnlyInputTripsFractionalBudget) {
  const std::string garbage = "this is not MRT data at all............";
  const std::vector<std::uint8_t> bytes(garbage.begin(), garbage.end());
  DecodeReport report;
  EXPECT_THROW((void)tolerant_decode(bytes, tolerant_options(), &report),
               DecodeBudgetError);
  EXPECT_EQ(report.records_ok, 0u);
  EXPECT_GE(report.records_skipped, 1u);
}

// --- parallel strict error path -----------------------------------------
//
// These poisons keep framing intact (lengths untouched) so the failure
// happens inside a worker's decode task, exercising the future-draining
// logic.  Run under the tsan preset to check the drain for races.

/// Offset of the entry-count field inside a RIB_IPV4_UNICAST body.
std::size_t rib_count_offset(const std::vector<std::uint8_t>& image,
                             const RecordSpan& span) {
  const std::size_t body = static_cast<std::size_t>(span.offset) + 12;
  const std::uint8_t prefix_bits = image[body + 4];
  return body + 4 + 1 + (static_cast<std::size_t>(prefix_bits) + 7) / 8;
}

/// Makes record `index` fail decode with "peer index out of range".
void poison_peer_index(std::vector<std::uint8_t>& image,
                       const std::vector<RecordSpan>& spans,
                       std::size_t index) {
  const std::size_t off = rib_count_offset(image, spans[index]) + 2;
  image[off] = 0xff;
  image[off + 1] = 0xff;
}

/// Makes record `index` fail decode with a ByteReader underflow
/// ("truncated record: ...") by lying about its entry count.
void poison_entry_count(std::vector<std::uint8_t>& image,
                        const std::vector<RecordSpan>& spans,
                        std::size_t index) {
  const std::size_t off = rib_count_offset(image, spans[index]);
  image[off] = 0x7f;
  image[off + 1] = 0xff;
}

TEST(ParallelStrictErrors, PoisonedChunkRethrowsAndPoolSurvives) {
  auto image = make_image(200);  // > 128 data records => several chunks
  const auto spans = index_records(image);
  ASSERT_GT(spans.size(), 160u);
  poison_peer_index(image, spans, 150);

  util::ThreadPool pool(4);
  std::istringstream in(std::string(image.begin(), image.end()));
  try {
    (void)read_rib_entries_parallel(in, pool, {});
    FAIL() << "expected MrtError";
  } catch (const MrtError& error) {
    EXPECT_NE(std::string(error.what()).find("peer index out of range"),
              std::string::npos);
  }

  // No deadlocked or leaked futures: the same pool immediately completes a
  // clean parallel decode.
  const auto clean = make_image(200);
  std::istringstream clean_in(std::string(clean.begin(), clean.end()));
  EXPECT_EQ(read_rib_entries_parallel(clean_in, pool).size(),
            read_rib_entries(clean).size());
}

TEST(ParallelStrictErrors, ErrorsSurfaceInChunkOrder) {
  auto image = make_image(200);
  const auto spans = index_records(image);
  ASSERT_GT(spans.size(), 160u);
  // Two poisons with distinguishable messages in different chunks (64
  // records each): the earlier chunk's error must win, every time.
  poison_entry_count(image, spans, 30);   // chunk 0: "truncated record: ..."
  poison_peer_index(image, spans, 150);   // chunk 2: "peer index out of range"

  util::ThreadPool pool(4);
  for (int round = 0; round < 3; ++round) {
    std::istringstream in(std::string(image.begin(), image.end()));
    std::size_t throws = 0;
    std::string message;
    try {
      (void)read_rib_entries_parallel(in, pool, {});
    } catch (const MrtError& error) {
      ++throws;
      message = error.what();
    }
    EXPECT_EQ(throws, 1u);
    EXPECT_NE(message.find("truncated record"), std::string::npos)
        << "expected the earlier chunk's error, got: " << message;
  }
}

}  // namespace
}  // namespace bgpintent::mrt
