// ByteSource contract: MmapSource and BufferSource expose the same bytes,
// open_source picks between them (and reports which via zero_copy()), and
// slurp_stream buffers arbitrary istreams — the stdin fallback the CLI
// rides on.  The decode layers only ever see a span, so these tests pin
// the span's contents, not decoder behavior.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "mrt/buffer.hpp"
#include "mrt/source.hpp"

namespace bgpintent::mrt {
namespace {

std::vector<std::uint8_t> sample_bytes() {
  std::vector<std::uint8_t> bytes;
  for (int i = 0; i < 1000; ++i)
    bytes.push_back(static_cast<std::uint8_t>(i * 37 + 11));
  return bytes;
}

/// Writes `bytes` to a fresh file under the test temp dir and returns its
/// path.
std::string write_temp_file(const std::string& name,
                            const std::vector<std::uint8_t>& bytes) {
  const std::string path = ::testing::TempDir() + name;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  EXPECT_TRUE(out.good());
  return path;
}

std::vector<std::uint8_t> to_vector(std::span<const std::uint8_t> data) {
  return {data.begin(), data.end()};
}

TEST(BufferSourceTest, ExposesOwnedBytes) {
  const auto bytes = sample_bytes();
  const BufferSource source{std::vector<std::uint8_t>(bytes)};
  EXPECT_EQ(to_vector(source.data()), bytes);
  EXPECT_FALSE(source.zero_copy());
}

TEST(BufferSourceTest, EmptyBufferIsEmptySpan) {
  const BufferSource source{{}};
  EXPECT_TRUE(source.data().empty());
}

TEST(MmapSourceTest, MapsRegularFile) {
  const auto bytes = sample_bytes();
  const std::string path = write_temp_file("mmap_regular.bin", bytes);
  const MmapSource source(path);
  EXPECT_EQ(to_vector(source.data()), bytes);
  EXPECT_TRUE(source.zero_copy());
  std::remove(path.c_str());
}

TEST(MmapSourceTest, EmptyFileMapsToEmptySpan) {
  const std::string path = write_temp_file("mmap_empty.bin", {});
  const MmapSource source(path);
  EXPECT_TRUE(source.data().empty());
  std::remove(path.c_str());
}

TEST(MmapSourceTest, MissingFileThrows) {
  EXPECT_THROW(MmapSource(::testing::TempDir() + "does_not_exist.bin"),
               MrtError);
}

TEST(OpenSourceTest, RegularFileIsZeroCopy) {
  const auto bytes = sample_bytes();
  const std::string path = write_temp_file("open_regular.bin", bytes);
  const auto source = open_source(path);
  ASSERT_NE(source, nullptr);
  EXPECT_TRUE(source->zero_copy());
  EXPECT_EQ(to_vector(source->data()), bytes);
  std::remove(path.c_str());
}

TEST(OpenSourceTest, MmapDisabledFallsBackToBuffer) {
  const auto bytes = sample_bytes();
  const std::string path = write_temp_file("open_no_mmap.bin", bytes);
  const auto source = open_source(path, /*allow_mmap=*/false);
  ASSERT_NE(source, nullptr);
  EXPECT_FALSE(source->zero_copy());
  EXPECT_EQ(to_vector(source->data()), bytes);
  std::remove(path.c_str());
}

TEST(OpenSourceTest, MissingFileThrows) {
  EXPECT_THROW((void)open_source(::testing::TempDir() + "missing.bin"),
               MrtError);
}

TEST(SlurpStreamTest, BuffersWholeStream) {
  const auto bytes = sample_bytes();
  std::istringstream in(
      std::string(reinterpret_cast<const char*>(bytes.data()), bytes.size()));
  EXPECT_EQ(slurp_stream(in), bytes);
}

TEST(SlurpStreamTest, EmptyStreamIsEmpty) {
  std::istringstream in;
  EXPECT_TRUE(slurp_stream(in).empty());
}

TEST(SlurpStreamTest, LargeStreamCrossesChunkBoundaries) {
  // Larger than any plausible internal chunk size, with content that
  // would expose an off-by-one at a chunk seam.
  std::string text;
  for (int i = 0; i < 300000; ++i) text.push_back(static_cast<char>(i % 251));
  std::istringstream in(text);
  const auto slurped = slurp_stream(in);
  ASSERT_EQ(slurped.size(), text.size());
  EXPECT_EQ(std::memcmp(slurped.data(), text.data(), text.size()), 0);
}

}  // namespace
}  // namespace bgpintent::mrt
