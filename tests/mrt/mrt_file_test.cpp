#include "mrt/mrt_file.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "routing/scenario.hpp"

namespace bgpintent::mrt {
namespace {

bgp::RibEntry make_entry(std::uint32_t peer_asn, const char* prefix,
                         std::vector<bgp::Asn> path,
                         std::vector<bgp::Community> communities = {}) {
  bgp::RibEntry entry;
  entry.vantage_point.asn = peer_asn;
  entry.vantage_point.address = 0xc0000000u | peer_asn;
  entry.route.prefix = *bgp::Prefix::parse(prefix);
  entry.route.path = bgp::AsPath(std::move(path));
  entry.route.communities = std::move(communities);
  entry.route.next_hop = entry.vantage_point.address;
  return entry;
}

TEST(MrtRecord, RawRoundTrip) {
  std::ostringstream out;
  MrtWriter writer(out);
  writer.write_record(MrtRecord{1234, 13, 1, {1, 2, 3}});
  writer.write_record(MrtRecord{1235, 16, 4, {}});

  std::istringstream in(out.str());
  MrtReader reader(in);
  MrtRecord record;
  ASSERT_TRUE(reader.next(record));
  EXPECT_EQ(record.timestamp, 1234u);
  EXPECT_EQ(record.type, 13u);
  EXPECT_EQ(record.subtype, 1u);
  EXPECT_EQ(record.body, (std::vector<std::uint8_t>{1, 2, 3}));
  ASSERT_TRUE(reader.next(record));
  EXPECT_EQ(record.timestamp, 1235u);
  EXPECT_TRUE(record.body.empty());
  EXPECT_FALSE(reader.next(record));
}

TEST(MrtReader, TruncatedHeaderThrows) {
  std::istringstream in(std::string("\x00\x01\x02", 3));
  MrtReader reader(in);
  MrtRecord record;
  EXPECT_THROW((void)reader.next(record), MrtError);
}

TEST(MrtReader, TruncatedBodyThrows) {
  std::ostringstream out;
  MrtWriter writer(out);
  writer.write_record(MrtRecord{0, 13, 1, {1, 2, 3, 4}});
  std::string data = out.str();
  data.resize(data.size() - 2);
  std::istringstream in(data);
  MrtReader reader(in);
  MrtRecord record;
  EXPECT_THROW((void)reader.next(record), MrtError);
}

TEST(RibSnapshot, RoundTripPreservesEntries) {
  std::vector<bgp::RibEntry> entries;
  entries.push_back(make_entry(65001, "10.0.0.0/24", {65001, 1299, 64496},
                               {bgp::Community(1299, 35130)}));
  entries.push_back(make_entry(65002, "10.0.0.0/24", {65002, 701, 64496},
                               {bgp::Community(1299, 2569)}));
  entries.push_back(make_entry(65001, "10.0.1.0/24", {65001, 64497}));

  std::ostringstream out;
  MrtWriter writer(out);
  writer.write_rib_snapshot(entries, 0x0a0a0a0a, 1700000000);

  std::istringstream in(out.str());
  auto decoded = read_rib_entries(in);
  ASSERT_EQ(decoded.size(), entries.size());
  // Reader groups by prefix; compare as multisets via sorting.
  auto key = [](const bgp::RibEntry& e) {
    return std::make_tuple(e.route.prefix, e.vantage_point.asn);
  };
  std::sort(entries.begin(), entries.end(),
            [&](const auto& a, const auto& b) { return key(a) < key(b); });
  std::sort(decoded.begin(), decoded.end(),
            [&](const auto& a, const auto& b) { return key(a) < key(b); });
  for (std::size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ(decoded[i].vantage_point, entries[i].vantage_point);
    EXPECT_EQ(decoded[i].route.prefix, entries[i].route.prefix);
    EXPECT_EQ(decoded[i].route.path, entries[i].route.path);
    EXPECT_EQ(decoded[i].route.communities, entries[i].route.communities);
  }
}

TEST(RibSnapshot, EmptySnapshotYieldsPeerTableOnly) {
  std::ostringstream out;
  MrtWriter writer(out);
  writer.write_rib_snapshot({}, 1, 0);
  std::istringstream in(out.str());
  EXPECT_TRUE(read_rib_entries(in).empty());
}

TEST(Updates, RoundTripThroughBgp4mp) {
  const auto entry = make_entry(65001, "10.7.0.0/24", {65001, 1299, 64496},
                                {bgp::Community(1299, 430)});
  std::ostringstream out;
  MrtWriter writer(out);
  writer.write_update(entry.vantage_point, entry.route, 1700000001);

  std::istringstream in(out.str());
  const auto decoded = read_rib_entries(in);
  ASSERT_EQ(decoded.size(), 1u);
  EXPECT_EQ(decoded[0].vantage_point, entry.vantage_point);
  EXPECT_EQ(decoded[0].route.prefix, entry.route.prefix);
  EXPECT_EQ(decoded[0].route.path, entry.route.path);
  EXPECT_EQ(decoded[0].route.communities, entry.route.communities);
}

TEST(Updates, MixedSnapshotAndUpdatesInOneStream) {
  const auto a = make_entry(65001, "10.0.0.0/24", {65001, 64496});
  const auto b = make_entry(65002, "10.0.1.0/24", {65002, 64497});
  std::ostringstream out;
  MrtWriter writer(out);
  writer.write_rib_snapshot({a}, 1, 100);
  writer.write_update(b.vantage_point, b.route, 101);
  std::istringstream in(out.str());
  const auto decoded = read_rib_entries(in);
  EXPECT_EQ(decoded.size(), 2u);
}

TEST(Updates, UnknownRecordTypesSkipped) {
  std::ostringstream out;
  MrtWriter writer(out);
  writer.write_record(MrtRecord{0, 99, 0, {1, 2, 3}});
  const auto a = make_entry(65001, "10.0.0.0/24", {65001, 64496});
  writer.write_update(a.vantage_point, a.route, 1);
  std::istringstream in(out.str());
  EXPECT_EQ(read_rib_entries(in).size(), 1u);
}

TEST(Updates, ReadFromByteVector) {
  const auto a = make_entry(65001, "10.0.0.0/24", {65001, 64496});
  std::ostringstream out;
  MrtWriter writer(out);
  writer.write_update(a.vantage_point, a.route, 1);
  const std::string s = out.str();
  std::vector<std::uint8_t> bytes(s.begin(), s.end());
  EXPECT_EQ(read_rib_entries(bytes).size(), 1u);
}

// Integration: a full simulated collector RIB survives the MRT round trip
// bit-exactly (the pipeline can run from MRT files instead of memory).
TEST(MrtIntegration, ScenarioRibSurvivesRoundTrip) {
  routing::ScenarioConfig cfg;
  cfg.topology.seed = 21;
  cfg.topology.tier1_count = 4;
  cfg.topology.tier2_count = 12;
  cfg.topology.stub_count = 30;
  cfg.vantage_point_count = 8;
  const auto scenario = routing::Scenario::build(cfg);
  auto entries = scenario.entries();
  ASSERT_GT(entries.size(), 50u);

  std::ostringstream out;
  MrtWriter writer(out);
  writer.write_rib_snapshot(entries, 0x7f000001, 1684886400);
  std::istringstream in(out.str());
  auto decoded = read_rib_entries(in);
  ASSERT_EQ(decoded.size(), entries.size());

  auto key = [](const bgp::RibEntry& e) {
    return std::make_tuple(e.route.prefix, e.vantage_point.asn,
                           e.route.path.to_string());
  };
  std::sort(entries.begin(), entries.end(),
            [&](const auto& x, const auto& y) { return key(x) < key(y); });
  std::sort(decoded.begin(), decoded.end(),
            [&](const auto& x, const auto& y) { return key(x) < key(y); });
  for (std::size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ(decoded[i].route.path, entries[i].route.path);
    EXPECT_EQ(decoded[i].route.communities, entries[i].route.communities);
  }
}

}  // namespace
}  // namespace bgpintent::mrt
