#include "core/pipeline.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "mrt/mrt_file.hpp"
#include "rel/asrank.hpp"
#include "routing/scenario.hpp"

namespace bgpintent::core {
namespace {

routing::ScenarioConfig default_scenario(std::uint64_t seed = 41) {
  routing::ScenarioConfig cfg;
  cfg.topology.seed = seed;
  cfg.topology.tier1_count = 6;
  cfg.topology.tier2_count = 40;
  cfg.topology.stub_count = 250;
  cfg.policy.seed = seed + 1;
  cfg.workload_seed = seed + 2;
  cfg.vantage_point_count = 150;
  return cfg;
}

class PipelineIntegration : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    scenario_ = new routing::Scenario(
        routing::Scenario::build(default_scenario()));
    entries_ = new std::vector<bgp::RibEntry>(scenario_->entries());
  }
  static void TearDownTestSuite() {
    delete entries_;
    delete scenario_;
    entries_ = nullptr;
    scenario_ = nullptr;
  }
  static routing::Scenario* scenario_;
  static std::vector<bgp::RibEntry>* entries_;
};

routing::Scenario* PipelineIntegration::scenario_ = nullptr;
std::vector<bgp::RibEntry>* PipelineIntegration::entries_ = nullptr;

TEST_F(PipelineIntegration, HighAccuracyAgainstGroundTruth) {
  Pipeline pipeline;
  pipeline.set_org_map(&scenario_->topology().orgs);
  const auto result = pipeline.run(*entries_);
  const auto eval = result.score(scenario_->ground_truth());
  ASSERT_GT(eval.labeled_observed, 300u);
  EXPECT_GT(eval.coverage(), 0.9);
  // This test topology is deliberately small (fast); the calibrated
  // bench-scale scenario reaches ~96% (see bench/eval_overall).  At this
  // scale the scale-dependent noise terms cost a few points.
  EXPECT_GT(eval.accuracy(), 0.85)
      << "accuracy " << eval.accuracy() << " over " << eval.classified
      << " classified communities";
}

TEST_F(PipelineIntegration, ClusteringBeatsNoClustering) {
  Pipeline clustered;
  clustered.set_org_map(&scenario_->topology().orgs);
  const auto with_clusters = clustered.run(*entries_);

  PipelineConfig no_cluster_cfg;
  no_cluster_cfg.classifier.min_gap = 0;
  Pipeline isolated(no_cluster_cfg);
  isolated.set_org_map(&scenario_->topology().orgs);
  const auto without = isolated.run(*entries_);

  const double acc_clustered =
      with_clusters.score(scenario_->ground_truth()).accuracy();
  const double acc_isolated =
      without.score(scenario_->ground_truth()).accuracy();
  EXPECT_GT(acc_clustered, acc_isolated)
      << "clustered " << acc_clustered << " vs isolated " << acc_isolated;
}

TEST_F(PipelineIntegration, RouteServerCommunitiesExcluded) {
  Pipeline pipeline;
  pipeline.set_org_map(&scenario_->topology().orgs);
  const auto result = pipeline.run(*entries_);
  // Every observed route-server community must be unclassified.
  std::size_t rs_seen = 0;
  for (const auto& ixp : scenario_->topology().ixps) {
    const auto rs_alpha = static_cast<std::uint16_t>(ixp.route_server);
    for (const std::uint16_t beta :
         result.observations.observed_betas(rs_alpha)) {
      ++rs_seen;
      EXPECT_EQ(result.inference.label_of(Community(rs_alpha, beta)),
                Intent::kUnclassified);
    }
  }
  EXPECT_GT(rs_seen, 0u);
  EXPECT_GT(result.inference.excluded_never_on_path, 0u);
}

TEST_F(PipelineIntegration, MrtRoundTripGivesIdenticalInferences) {
  Pipeline pipeline;
  pipeline.set_org_map(&scenario_->topology().orgs);
  const auto direct = pipeline.run(*entries_);

  std::ostringstream mrt_bytes;
  mrt::MrtWriter writer(mrt_bytes);
  writer.write_rib_snapshot(*entries_, 0x7f000001, 1684886400);
  std::istringstream in(mrt_bytes.str());
  const auto via_mrt = pipeline.run_mrt(in);

  EXPECT_EQ(via_mrt.inference.information_count,
            direct.inference.information_count);
  EXPECT_EQ(via_mrt.inference.action_count, direct.inference.action_count);
  EXPECT_EQ(via_mrt.inference.labels, direct.inference.labels);
}

TEST_F(PipelineIntegration, MostCommunitiesInformation) {
  // The paper infers ~69% information / ~31% action; our scenario should
  // produce an information-majority split as well.
  Pipeline pipeline;
  pipeline.set_org_map(&scenario_->topology().orgs);
  const auto result = pipeline.run(*entries_);
  EXPECT_GT(result.inference.information_count,
            result.inference.action_count);
  EXPECT_GT(result.inference.action_count, 0u);
}

TEST_F(PipelineIntegration, CustomerPeerFeatureIsWorse) {
  // Fig. 7: the customer:peer feature peaks at ~80% while the on/off-path
  // feature reaches ~96%.  Verify the ordering (not absolute values).
  std::vector<bgp::AsPath> paths;
  for (const auto& entry : *entries_) paths.push_back(entry.route.path);
  const auto rels = rel::infer_relationships(paths);

  ObservationConfig obs_cfg;
  const auto index = ObservationIndex::from_entries(
      *entries_, &scenario_->topology().orgs, &rels, obs_cfg);
  const auto on_off = classify(index);
  const auto cust_peer = classify_customer_peer(index);
  const double acc_on_off =
      evaluate(index, on_off, scenario_->ground_truth()).accuracy();
  const double acc_cust_peer =
      evaluate(index, cust_peer, scenario_->ground_truth()).accuracy();
  EXPECT_GT(acc_on_off, acc_cust_peer)
      << "on/off " << acc_on_off << " vs customer:peer " << acc_cust_peer;
}

TEST(Pipeline, RunOnTuplesMatchesRunOnEntries) {
  routing::ScenarioConfig cfg = default_scenario(77);
  cfg.topology.stub_count = 60;
  cfg.vantage_point_count = 10;
  const auto scenario = routing::Scenario::build(cfg);
  const auto entries = scenario.entries();
  const auto tuples = bgp::tuples_from_entries(entries);
  Pipeline pipeline;
  const auto via_entries = pipeline.run(entries);
  const auto via_tuples = pipeline.run(tuples);
  EXPECT_EQ(via_entries.inference.labels, via_tuples.inference.labels);
}

TEST(Pipeline, EmptyInput) {
  Pipeline pipeline;
  const auto result = pipeline.run(std::vector<bgp::RibEntry>{});
  EXPECT_EQ(result.inference.classified_count(), 0u);
  EXPECT_EQ(result.observations.community_count(), 0u);
}

TEST_F(PipelineIntegration, ThreadCountDoesNotChangeOutput) {
  // The contract of the parallel pipeline (docs/THREADING.md): for any
  // thread count the observation index AND the inference are identical to
  // the sequential reference path, field by field.
  const auto tuples = bgp::tuples_from_entries(*entries_);

  PipelineConfig sequential_cfg;
  sequential_cfg.threads = 1;
  Pipeline sequential(sequential_cfg);
  sequential.set_org_map(&scenario_->topology().orgs);
  const auto reference = sequential.run(tuples);

  for (const unsigned threads : {2u, 8u}) {
    PipelineConfig cfg;
    cfg.threads = threads;
    Pipeline parallel(cfg);
    parallel.set_org_map(&scenario_->topology().orgs);
    const auto result = parallel.run(tuples);

    // Observation index: same stats in the same (sorted) order.
    EXPECT_EQ(result.observations.all(), reference.observations.all())
        << "threads=" << threads;
    EXPECT_EQ(result.observations.unique_path_count(),
              reference.observations.unique_path_count());
    EXPECT_EQ(result.observations.alphas(), reference.observations.alphas());

    // Inference: same clusters in the same order, same labels and counts.
    EXPECT_EQ(result.inference.clusters, reference.inference.clusters)
        << "threads=" << threads;
    EXPECT_EQ(result.inference.labels, reference.inference.labels);
    EXPECT_EQ(result.inference.information_count,
              reference.inference.information_count);
    EXPECT_EQ(result.inference.action_count, reference.inference.action_count);
    EXPECT_EQ(result.inference.excluded_private,
              reference.inference.excluded_private);
    EXPECT_EQ(result.inference.excluded_never_on_path,
              reference.inference.excluded_never_on_path);
  }
}

TEST_F(PipelineIntegration, ParallelMrtPathMatchesSequential) {
  std::ostringstream mrt_bytes;
  mrt::MrtWriter writer(mrt_bytes);
  writer.write_rib_snapshot(*entries_, 0x7f000001, 1684886400);

  PipelineConfig sequential_cfg;
  sequential_cfg.threads = 1;
  Pipeline sequential(sequential_cfg);
  sequential.set_org_map(&scenario_->topology().orgs);
  std::istringstream seq_in(mrt_bytes.str());
  const auto reference = sequential.run_mrt(seq_in);

  PipelineConfig parallel_cfg;
  parallel_cfg.threads = 4;
  Pipeline parallel(parallel_cfg);
  parallel.set_org_map(&scenario_->topology().orgs);
  std::istringstream par_in(mrt_bytes.str());
  const auto result = parallel.run_mrt(par_in);

  EXPECT_EQ(result.observations.all(), reference.observations.all());
  EXPECT_EQ(result.inference.clusters, reference.inference.clusters);
  EXPECT_EQ(result.inference.labels, reference.inference.labels);
}

TEST(Pipeline, ThreadsZeroResolvesToHardwareConcurrency) {
  // threads = 0 must behave like "some valid worker count", not crash or
  // change results on any machine.
  routing::ScenarioConfig cfg = default_scenario(99);
  cfg.topology.stub_count = 40;
  cfg.vantage_point_count = 8;
  const auto scenario = routing::Scenario::build(cfg);
  const auto entries = scenario.entries();

  PipelineConfig auto_cfg;
  auto_cfg.threads = 0;
  const auto via_auto = Pipeline(auto_cfg).run(entries);
  const auto via_sequential = Pipeline().run(entries);
  EXPECT_EQ(via_auto.inference.labels, via_sequential.inference.labels);
  EXPECT_EQ(via_auto.observations.all(), via_sequential.observations.all());
}

}  // namespace
}  // namespace bgpintent::core
