#include "core/summarize.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace bgpintent::core {
namespace {

using bgp::AsPath;
using bgp::PathCommunityTuple;

PathCommunityTuple tuple(std::vector<Asn> path, Community community) {
  return PathCommunityTuple{AsPath(std::move(path)), community, 1};
}

void add_observations(std::vector<PathCommunityTuple>& tuples,
                      Community community, std::size_t on, std::size_t off) {
  for (std::size_t i = 0; i < on; ++i)
    tuples.push_back(tuple({static_cast<Asn>(60000 + i),
                            community.alpha(), 64496},
                           community));
  for (std::size_t i = 0; i < off; ++i)
    tuples.push_back(tuple({static_cast<Asn>(61000 + i), 64496}, community));
}

struct Fixture {
  ObservationIndex index;
  InferenceResult inference;

  Fixture() {
    std::vector<PathCommunityTuple> tuples;
    add_observations(tuples, Community(100, 1000), 10, 0);  // info block
    add_observations(tuples, Community(100, 1005), 8, 0);
    add_observations(tuples, Community(100, 5000), 1, 9);   // action block
    add_observations(tuples, Community(100, 5010), 1, 7);
    add_observations(tuples, Community(100, 9000), 4, 0);   // singleton
    index = ObservationIndex::build(tuples);
    inference = classify(index);
  }
};

TEST(Summarize, EmitsOneEntryPerCluster) {
  Fixture f;
  const auto entries = summarize(f.index, f.inference);
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].pattern.to_string(), "100:1000-1005");
  EXPECT_EQ(entries[0].intent, Intent::kInformation);
  EXPECT_EQ(entries[0].member_count, 2u);
  EXPECT_EQ(entries[0].observations, 18u);
  EXPECT_EQ(entries[1].pattern.to_string(), "100:5000-5010");
  EXPECT_EQ(entries[1].intent, Intent::kAction);
  EXPECT_EQ(entries[2].pattern.to_string(), "100:9000");
  EXPECT_EQ(entries[2].intent, Intent::kInformation);
}

TEST(Summarize, MinObservationsFilter) {
  Fixture f;
  SummaryConfig cfg;
  cfg.min_observations = 10;
  const auto entries = summarize(f.index, f.inference, cfg);
  ASSERT_EQ(entries.size(), 2u);  // the 4-observation singleton drops out
  EXPECT_EQ(entries[0].intent, Intent::kInformation);
  EXPECT_EQ(entries[1].intent, Intent::kAction);
}

TEST(Summarize, PatternsCoverTheirMembers) {
  Fixture f;
  for (const auto& entry : summarize(f.index, f.inference)) {
    for (const std::uint16_t beta :
         entry.pattern.beta_pattern().enumerate()) {
      const Community community(entry.pattern.alpha(), beta);
      // Every enumerated value inside the inferred range that was observed
      // must carry the same inferred intent.
      const auto label = f.inference.label_of(community);
      if (label != Intent::kUnclassified) {
        EXPECT_EQ(label, entry.intent);
      }
    }
  }
}

TEST(Summarize, ToDictionaryRoundTrip) {
  Fixture f;
  const auto entries = summarize(f.index, f.inference);
  const auto store = to_dictionary(entries);
  EXPECT_EQ(store.intent(Community(100, 1000)), dict::Intent::kInformation);
  EXPECT_EQ(store.intent(Community(100, 1003)), dict::Intent::kInformation);
  EXPECT_EQ(store.intent(Community(100, 5005)), dict::Intent::kAction);
  EXPECT_FALSE(store.intent(Community(100, 40000)));
}

TEST(Summarize, WriteSummaryIsLoadable) {
  Fixture f;
  const auto entries = summarize(f.index, f.inference);
  std::ostringstream out;
  write_summary(out, entries);
  dict::DictionaryStore loaded;
  std::istringstream in(out.str());
  loaded.load(in);
  EXPECT_EQ(loaded.entry_count(), entries.size());
  EXPECT_EQ(loaded.intent(Community(100, 1000)), dict::Intent::kInformation);
}

TEST(Summarize, EmptyInference) {
  const auto index = ObservationIndex::build({});
  const auto inference = classify(index);
  EXPECT_TRUE(summarize(index, inference).empty());
}

TEST(DiffDictionaries, AgreementAndCoverage) {
  Fixture f;
  const auto inferred = to_dictionary(summarize(f.index, f.inference));

  dict::DictionaryStore reference;
  auto& d = reference.dictionary_for(100);
  d.add(dict::CommunityPattern::compile("100:1000-1999"),
        dict::Category::kLocationCity, "");
  d.add(dict::CommunityPattern::compile("100:5000"),
        dict::Category::kLocationCity, "");  // reference calls it info
  d.add(dict::CommunityPattern::compile("100:7777"),
        dict::Category::kBlackhole, "");  // never observed

  const auto diff = diff_dictionaries(f.index, inferred, reference);
  // Observed communities: 1000, 1005 (both covered, agree), 5000 (both
  // covered, disagree), 5010 + 9000 (inferred only).
  EXPECT_EQ(diff.both_cover, 3u);
  EXPECT_EQ(diff.agree, 2u);
  EXPECT_EQ(diff.inferred_only, 2u);
  EXPECT_EQ(diff.reference_only, 0u);
  EXPECT_NEAR(diff.agreement(), 2.0 / 3.0, 1e-9);
}

TEST(DiffDictionaries, EmptyObservations) {
  const auto index = ObservationIndex::build({});
  const auto diff =
      diff_dictionaries(index, dict::DictionaryStore{}, dict::DictionaryStore{});
  EXPECT_EQ(diff.both_cover, 0u);
  EXPECT_DOUBLE_EQ(diff.agreement(), 0.0);
}

}  // namespace
}  // namespace bgpintent::core
