#include "core/classifier.hpp"

#include <gtest/gtest.h>

namespace bgpintent::core {
namespace {

using bgp::AsPath;
using bgp::PathCommunityTuple;

PathCommunityTuple tuple(std::vector<Asn> path, Community community) {
  return PathCommunityTuple{AsPath(std::move(path)), community, 1};
}

/// N distinct on-path and M distinct off-path tuples for `community`.
void add_observations(std::vector<PathCommunityTuple>& tuples,
                      Community community, std::size_t on, std::size_t off) {
  for (std::size_t i = 0; i < on; ++i)
    tuples.push_back(tuple({static_cast<Asn>(60000 + i),
                            community.alpha(), 64496},
                           community));
  for (std::size_t i = 0; i < off; ++i)
    tuples.push_back(tuple({static_cast<Asn>(61000 + i), 64496}, community));
}

TEST(Classifier, PureOnPathClusterIsInformation) {
  std::vector<PathCommunityTuple> tuples;
  add_observations(tuples, Community(1299, 20000), 5, 0);
  const auto index = ObservationIndex::build(tuples);
  const auto result = classify(index);
  EXPECT_EQ(result.label_of(Community(1299, 20000)), Intent::kInformation);
  EXPECT_EQ(result.information_count, 1u);
  EXPECT_EQ(result.action_count, 0u);
  ASSERT_EQ(result.clusters.size(), 1u);
  EXPECT_TRUE(result.clusters[0].pure_on);
}

TEST(Classifier, PureOffPathClusterIsAction) {
  std::vector<PathCommunityTuple> tuples;
  add_observations(tuples, Community(1299, 2569), 0, 4);
  // Alpha 1299 must appear somewhere (else the AS is excluded entirely);
  // give it an unrelated info community observed on-path.
  add_observations(tuples, Community(1299, 20000), 3, 0);
  const auto index = ObservationIndex::build(tuples);
  const auto result = classify(index);
  EXPECT_EQ(result.label_of(Community(1299, 2569)), Intent::kAction);
  EXPECT_EQ(result.label_of(Community(1299, 20000)), Intent::kInformation);
}

TEST(Classifier, ThresholdSeparatesMixedClusters) {
  std::vector<PathCommunityTuple> tuples;
  // ratio 200 (>=160) -> information.
  add_observations(tuples, Community(100, 1000), 200, 1);
  // ratio 2 (<160) -> action; far away so it forms its own cluster.
  add_observations(tuples, Community(100, 5000), 2, 1);
  const auto index = ObservationIndex::build(tuples);
  const auto result = classify(index);
  EXPECT_EQ(result.label_of(Community(100, 1000)), Intent::kInformation);
  EXPECT_EQ(result.label_of(Community(100, 5000)), Intent::kAction);
}

TEST(Classifier, ClusterLabelAppliesToAllMembers) {
  std::vector<PathCommunityTuple> tuples;
  // Two nearby betas: one strongly on-path, one weakly observed off-path
  // once.  Clustered together, the mean ratio dominates and both get the
  // same label.
  add_observations(tuples, Community(100, 1000), 400, 0);
  add_observations(tuples, Community(100, 1001), 400, 1);
  const auto index = ObservationIndex::build(tuples);
  const auto result = classify(index);
  EXPECT_EQ(result.label_of(Community(100, 1000)), Intent::kInformation);
  EXPECT_EQ(result.label_of(Community(100, 1001)), Intent::kInformation);
  ASSERT_EQ(result.clusters.size(), 1u);
  EXPECT_EQ(result.clusters[0].cluster.size(), 2u);
}

TEST(Classifier, ClusteringRescuesSparseMember) {
  // A lone action community observed once on-path would look informational
  // in isolation; clustered with its strongly off-path neighbors it is
  // correctly labeled action (the argument of Fig. 9).
  std::vector<PathCommunityTuple> tuples;
  add_observations(tuples, Community(100, 2000), 1, 0);   // sparse member
  add_observations(tuples, Community(100, 2010), 1, 50);  // strong action
  add_observations(tuples, Community(100, 2020), 1, 50);
  const auto index = ObservationIndex::build(tuples);

  const auto clustered = classify(index, ClassifierConfig{140, 160.0, true});
  EXPECT_EQ(clustered.label_of(Community(100, 2000)), Intent::kAction);

  const auto isolated = classify(index, ClassifierConfig{0, 160.0, true});
  EXPECT_EQ(isolated.label_of(Community(100, 2000)), Intent::kInformation);
}

TEST(Classifier, PrivateAlphaExcluded) {
  std::vector<PathCommunityTuple> tuples;
  add_observations(tuples, Community(64512, 100), 5, 0);   // private
  add_observations(tuples, Community(65535, 666), 5, 0);   // reserved
  add_observations(tuples, Community(64496, 100), 5, 0);   // documentation
  const auto index = ObservationIndex::build(tuples);
  const auto result = classify(index);
  EXPECT_EQ(result.label_of(Community(64512, 100)), Intent::kUnclassified);
  EXPECT_EQ(result.label_of(Community(65535, 666)), Intent::kUnclassified);
  EXPECT_EQ(result.label_of(Community(64496, 100)), Intent::kUnclassified);
  EXPECT_EQ(result.excluded_private, 3u);
  EXPECT_EQ(result.classified_count(), 0u);
}

TEST(Classifier, NeverOnPathAlphaExcluded) {
  // Route-server communities: alpha 60000 never appears in any path.
  std::vector<PathCommunityTuple> tuples;
  tuples.push_back(tuple({701, 1299, 64496}, Community(60000, 20000)));
  tuples.push_back(tuple({702, 1299, 64496}, Community(60000, 20001)));
  const auto index = ObservationIndex::build(tuples);
  const auto result = classify(index);
  EXPECT_EQ(result.label_of(Community(60000, 20000)), Intent::kUnclassified);
  EXPECT_EQ(result.excluded_never_on_path, 2u);
}

TEST(Classifier, SiblingPresenceLiftsExclusion) {
  topo::OrgMap orgs;
  orgs.assign(1299, 1);
  orgs.assign(1300, 1);
  std::vector<PathCommunityTuple> tuples;
  // Alpha 1299 itself never on a path, but sibling 1300 is.
  tuples.push_back(tuple({701, 1300, 64496}, Community(1299, 20000)));
  const auto index = ObservationIndex::build(tuples, &orgs);
  const auto result = classify(index);
  EXPECT_EQ(result.label_of(Community(1299, 20000)), Intent::kInformation);
  EXPECT_EQ(result.excluded_never_on_path, 0u);
}

TEST(Classifier, MeanVersusPooledAblation) {
  // Member A: 1 on / 1 off (ratio 1).  Member B: 320 on / 1 off (ratio 320).
  // Mean of ratios = 160.5 >= 160 -> information.
  // Pooled = 321/2 = 160.5 >= 160 -> information as well; use a sharper
  // split: A: 1/1, B: 479 on / 1 off => mean 240 info; pooled 480/2=240.
  // To actually separate, use B pure-on? pure rules bypass. Use counts:
  // A: 10 on / 10 off (ratio 1), B: 3190 on / 10 off (ratio 319):
  // mean = 160 -> info; pooled = 3200/20 = 160 -> info. Equal here, so
  // instead verify both modes run and agree on unambiguous data.
  std::vector<PathCommunityTuple> tuples;
  add_observations(tuples, Community(100, 1000), 300, 1);
  add_observations(tuples, Community(100, 1001), 2, 1);
  const auto index = ObservationIndex::build(tuples);
  const auto mean_mode = classify(index, ClassifierConfig{140, 160.0, true});
  const auto pooled_mode =
      classify(index, ClassifierConfig{140, 160.0, false});
  // mean = (300 + 2) / 2 = 151 < 160 -> action;
  // pooled = 302 / 2 = 151 < 160 -> action.
  EXPECT_EQ(mean_mode.label_of(Community(100, 1000)), Intent::kAction);
  EXPECT_EQ(pooled_mode.label_of(Community(100, 1000)), Intent::kAction);
}

TEST(Classifier, MeanAndPooledCanDisagree) {
  // A: 1 on / 100 off (ratio 0.01), B: 50000 on / 1 off (ratio 50000).
  // Mean = 25000 -> information.  Pooled = 50001/101 = 495 -> information.
  // Make pooled fall below threshold: A: 1 on / 1000 off, B: 600 on / 1 off.
  // Mean = (0.001 + 600)/2 = 300 -> information.
  // Pooled = 601 / 1001 = 0.6 -> action.
  std::vector<PathCommunityTuple> tuples;
  add_observations(tuples, Community(100, 1000), 1, 1000);
  add_observations(tuples, Community(100, 1001), 600, 1);
  const auto index = ObservationIndex::build(tuples);
  const auto mean_mode = classify(index, ClassifierConfig{140, 160.0, true});
  const auto pooled_mode =
      classify(index, ClassifierConfig{140, 160.0, false});
  EXPECT_EQ(mean_mode.label_of(Community(100, 1000)), Intent::kInformation);
  EXPECT_EQ(pooled_mode.label_of(Community(100, 1000)), Intent::kAction);
}

TEST(Classifier, EmptyIndex) {
  const auto index = ObservationIndex::build({});
  const auto result = classify(index);
  EXPECT_TRUE(result.clusters.empty());
  EXPECT_EQ(result.classified_count(), 0u);
}

TEST(ClassifierCustomerPeer, HighCustomerRatioIsAction) {
  rel::RelationshipDataset rels;
  rels.set_p2c(100, 64496);
  rels.set_p2p(100, 7018);
  std::vector<PathCommunityTuple> tuples;
  // Action-like: alpha followed by customer on 6 distinct paths.
  for (Asn vp = 60000; vp < 60006; ++vp)
    tuples.push_back(tuple({vp, 100, 64496}, Community(100, 1000)));
  // Info-like: alpha followed by peer on most paths.
  for (Asn vp = 61000; vp < 61005; ++vp)
    tuples.push_back(tuple({vp, 100, 7018, 64496}, Community(100, 5000)));
  tuples.push_back(tuple({61999, 100, 64496}, Community(100, 5000)));
  const auto index = ObservationIndex::build(tuples, nullptr, &rels);
  const auto result = classify_customer_peer(index);
  EXPECT_EQ(result.label_of(Community(100, 1000)), Intent::kAction);
  EXPECT_EQ(result.label_of(Community(100, 5000)), Intent::kInformation);
}

}  // namespace
}  // namespace bgpintent::core
