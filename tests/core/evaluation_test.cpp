#include "core/evaluation.hpp"

#include <gtest/gtest.h>

namespace bgpintent::core {
namespace {

using bgp::AsPath;
using bgp::PathCommunityTuple;

PathCommunityTuple tuple(std::vector<Asn> path, Community community) {
  return PathCommunityTuple{AsPath(std::move(path)), community, 1};
}

void add_observations(std::vector<PathCommunityTuple>& tuples,
                      Community community, std::size_t on, std::size_t off) {
  for (std::size_t i = 0; i < on; ++i)
    tuples.push_back(tuple({static_cast<Asn>(60000 + i),
                            community.alpha(), 64496},
                           community));
  for (std::size_t i = 0; i < off; ++i)
    tuples.push_back(tuple({static_cast<Asn>(61000 + i), 64496}, community));
}

dict::DictionaryStore truth_for_100() {
  dict::DictionaryStore truth;
  auto& d = truth.dictionary_for(100);
  d.add(dict::CommunityPattern::compile("100:1000-1999"),
        dict::Category::kLocationCity, "geo");
  d.add(dict::CommunityPattern::compile("100:5000-5999"),
        dict::Category::kSuppressToAs, "suppress");
  return truth;
}

TEST(Evaluate, CountsCorrectAndMisclassified) {
  std::vector<PathCommunityTuple> tuples;
  add_observations(tuples, Community(100, 1000), 10, 0);  // info, inferred info
  add_observations(tuples, Community(100, 5000), 0, 5);   // action, inferred action
  add_observations(tuples, Community(100, 5500), 300, 1); // action, inferred info (wrong)
  add_observations(tuples, Community(100, 9999), 5, 0);   // not in dictionary
  const auto index = ObservationIndex::build(tuples);
  const auto result = classify(index);
  const auto eval = evaluate(index, result, truth_for_100());
  EXPECT_EQ(eval.labeled_observed, 3u);
  EXPECT_EQ(eval.classified, 3u);
  EXPECT_EQ(eval.correct, 2u);
  EXPECT_EQ(eval.action_as_info, 1u);
  EXPECT_EQ(eval.info_as_action, 0u);
  EXPECT_NEAR(eval.accuracy(), 2.0 / 3.0, 1e-9);
  EXPECT_DOUBLE_EQ(eval.coverage(), 1.0);
}

TEST(Evaluate, UnclassifiedCountedSeparately) {
  std::vector<PathCommunityTuple> tuples;
  // Covered by dictionary but alpha never on-path -> excluded.
  tuples.push_back(tuple({701, 1299, 64496}, Community(100, 1000)));
  const auto index = ObservationIndex::build(tuples);
  const auto result = classify(index);
  const auto eval = evaluate(index, result, truth_for_100());
  EXPECT_EQ(eval.labeled_observed, 1u);
  EXPECT_EQ(eval.classified, 0u);
  EXPECT_EQ(eval.unclassified, 1u);
  EXPECT_DOUBLE_EQ(eval.accuracy(), 0.0);
}

TEST(Evaluate, EmptyEverything) {
  const auto index = ObservationIndex::build({});
  const auto result = classify(index);
  const auto eval = evaluate(index, result, dict::DictionaryStore{});
  EXPECT_EQ(eval.labeled_observed, 0u);
  EXPECT_DOUBLE_EQ(eval.accuracy(), 0.0);
  EXPECT_DOUBLE_EQ(eval.coverage(), 0.0);
}

TEST(BaselineClusters, BuiltPerDictionaryEntry) {
  std::vector<PathCommunityTuple> tuples;
  add_observations(tuples, Community(100, 1000), 10, 0);
  add_observations(tuples, Community(100, 1001), 10, 0);
  add_observations(tuples, Community(100, 5000), 1, 5);
  const auto index = ObservationIndex::build(tuples);
  const auto clusters = baseline_clusters(index, truth_for_100());
  ASSERT_EQ(clusters.size(), 2u);
  const auto& info = clusters[0];
  EXPECT_EQ(info.truth, Intent::kInformation);
  EXPECT_EQ(info.member_count, 2u);
  EXPECT_TRUE(info.pure_on);
  EXPECT_FALSE(info.mixed());
  const auto& action = clusters[1];
  EXPECT_EQ(action.truth, Intent::kAction);
  EXPECT_EQ(action.member_count, 1u);
  EXPECT_TRUE(action.mixed());
  EXPECT_NEAR(action.mean_on_off_ratio, 0.2, 1e-9);
}

TEST(BaselineClusters, EntriesWithoutObservationsSkipped) {
  const auto index = ObservationIndex::build({});
  EXPECT_TRUE(baseline_clusters(index, truth_for_100()).empty());
}

TEST(BaselineClusters, OverlappingPatternsStayDisjoint) {
  dict::DictionaryStore truth;
  auto& d = truth.dictionary_for(100);
  d.add(dict::CommunityPattern::compile("100:1000"),
        dict::Category::kBlackhole, "specific");
  d.add(dict::CommunityPattern::compile("100:1000-1010"),
        dict::Category::kLocationCity, "broad");
  std::vector<PathCommunityTuple> tuples;
  add_observations(tuples, Community(100, 1000), 3, 0);
  add_observations(tuples, Community(100, 1005), 3, 0);
  const auto index = ObservationIndex::build(tuples);
  const auto clusters = baseline_clusters(index, truth);
  ASSERT_EQ(clusters.size(), 2u);
  EXPECT_EQ(clusters[0].member_count, 1u);  // specific owns 1000
  EXPECT_EQ(clusters[1].member_count, 1u);  // broad owns only 1005
}

TEST(SweepRatioThreshold, OnOffDirection) {
  std::vector<BaselineCluster> clusters;
  BaselineCluster info;
  info.truth = Intent::kInformation;
  info.mean_on_off_ratio = 500;
  clusters.push_back(info);
  BaselineCluster action;
  action.truth = Intent::kAction;
  action.mean_on_off_ratio = 3;
  clusters.push_back(action);
  const auto points = sweep_ratio_threshold(clusters, {1.0, 160.0, 1000.0},
                                            ClusterFeature::kMeanOnOff);
  ASSERT_EQ(points.size(), 3u);
  EXPECT_DOUBLE_EQ(points[0].accuracy, 0.5);  // everything info
  EXPECT_DOUBLE_EQ(points[1].accuracy, 1.0);  // separates perfectly
  EXPECT_DOUBLE_EQ(points[2].accuracy, 0.5);  // everything action
}

TEST(SweepRatioThreshold, CustomerPeerDirectionInverted) {
  std::vector<BaselineCluster> clusters;
  BaselineCluster info;
  info.truth = Intent::kInformation;
  info.mean_customer_peer_ratio = 1.0;
  clusters.push_back(info);
  BaselineCluster action;
  action.truth = Intent::kAction;
  action.mean_customer_peer_ratio = 20.0;
  clusters.push_back(action);
  const auto points =
      sweep_ratio_threshold(clusters, {5.0}, ClusterFeature::kCustomerPeer);
  EXPECT_DOUBLE_EQ(points[0].accuracy, 1.0);
}

TEST(SweepRatioThreshold, PureClustersIgnored) {
  std::vector<BaselineCluster> clusters;
  BaselineCluster pure;
  pure.truth = Intent::kInformation;
  pure.pure_on = true;
  pure.mean_on_off_ratio = 0.0;  // would misclassify if counted
  clusters.push_back(pure);
  const auto points = sweep_ratio_threshold(clusters, {160.0});  // pooled default
  EXPECT_DOUBLE_EQ(points[0].accuracy, 0.0);  // no mixed clusters at all
}

}  // namespace
}  // namespace bgpintent::core
