#include "core/incremental.hpp"

#include <gtest/gtest.h>

#include "core/pipeline.hpp"
#include "routing/scenario.hpp"

namespace bgpintent::core {
namespace {

bgp::RibEntry entry(std::uint32_t vp, std::vector<bgp::Asn> path,
                    std::vector<Community> communities) {
  bgp::RibEntry e;
  e.vantage_point.asn = vp;
  e.vantage_point.address = vp;
  e.route.prefix = *bgp::Prefix::parse("10.0.0.0/24");
  e.route.path = bgp::AsPath(std::move(path));
  e.route.communities = std::move(communities);
  return e;
}

TEST(Incremental, EmptyStateTotalsAreZero) {
  IncrementalClassifier classifier;
  const auto totals = classifier.totals();
  EXPECT_EQ(totals.communities, 0u);
  EXPECT_EQ(totals.information, 0u);
  EXPECT_EQ(totals.action, 0u);
  EXPECT_EQ(totals.unclassified, 0u);
  EXPECT_EQ(classifier.entries_ingested(), 0u);
  EXPECT_EQ(classifier.dirty_alpha_count(), 0u);
  EXPECT_TRUE(classifier.export_state().alphas.empty());
}

TEST(Incremental, ExportStateIsIngestOrderInsensitive) {
  const std::vector<bgp::RibEntry> entries{
      entry(61, {61, 100, 201}, {Community(100, 20000)}),
      entry(62, {62, 100, 201}, {Community(100, 20000), Community(200, 1)}),
      entry(70, {70, 999, 201}, {Community(100, 2569)}),
  };
  IncrementalClassifier forward;
  for (const auto& e : entries) forward.ingest(e);
  IncrementalClassifier backward;
  for (auto it = entries.rbegin(); it != entries.rend(); ++it)
    backward.ingest(*it);
  EXPECT_EQ(forward.export_state(), backward.export_state());
}

TEST(Incremental, RestoreStateReplacesEverything) {
  IncrementalClassifier source;
  source.ingest(entry(61, {61, 100, 201}, {Community(100, 20000)}));
  (void)source.label_of(Community(100, 20000));  // cache a label

  IncrementalClassifier target;
  target.ingest(entry(99, {99, 500, 201}, {Community(500, 1)}));
  target.restore_state(source.export_state());
  EXPECT_EQ(target.export_state(), source.export_state());
  // The pre-restore community is gone, the restored one is present.
  EXPECT_EQ(target.label_of(Community(500, 1)), Intent::kUnclassified);
  EXPECT_EQ(target.label_of(Community(100, 20000)),
            source.label_of(Community(100, 20000)));
}

TEST(Incremental, LabelsAppearAsEvidenceArrives) {
  IncrementalClassifier classifier;
  EXPECT_EQ(classifier.label_of(Community(100, 20000)), Intent::kUnclassified);
  for (std::uint32_t vp = 61; vp < 66; ++vp)
    classifier.ingest(entry(vp, {vp, 100, 201}, {Community(100, 20000)}));
  EXPECT_EQ(classifier.label_of(Community(100, 20000)), Intent::kInformation);
  EXPECT_EQ(classifier.entries_ingested(), 5u);
}

TEST(Incremental, LabelCanFlipWithNewEvidence) {
  IncrementalClassifier classifier;
  // First evidence: one on-path observation -> information (pure on).
  classifier.ingest(entry(61, {61, 100, 201}, {Community(100, 2569)}));
  EXPECT_EQ(classifier.label_of(Community(100, 2569)), Intent::kInformation);
  // Then a flood of off-path observations flips it to action.
  for (std::uint32_t vp = 70; vp < 90; ++vp)
    classifier.ingest(entry(vp, {vp, 999, 201}, {Community(100, 2569)}));
  EXPECT_EQ(classifier.label_of(Community(100, 2569)), Intent::kAction);
}

TEST(Incremental, NeverOnPathExclusionLiftsDynamically) {
  IncrementalClassifier classifier;
  // Route-server-style value: alpha 777 not on any path yet.
  classifier.ingest(entry(61, {61, 100, 201}, {Community(777, 5)}));
  EXPECT_EQ(classifier.label_of(Community(777, 5)), Intent::kUnclassified);
  // A later path contains 777: the exclusion lifts and the (off-path-
  // dominated) value classifies.
  classifier.ingest(entry(62, {62, 777, 201}, {Community(777, 5)}));
  EXPECT_NE(classifier.label_of(Community(777, 5)), Intent::kUnclassified);
}

TEST(Incremental, DuplicatePathsDoNotRedirty) {
  IncrementalClassifier classifier;
  const auto e = entry(61, {61, 100, 201}, {Community(100, 20000)});
  classifier.ingest(e);
  (void)classifier.totals();  // clears dirty set
  EXPECT_EQ(classifier.dirty_alpha_count(), 0u);
  classifier.ingest(e);  // identical path & community: no new evidence
  EXPECT_EQ(classifier.dirty_alpha_count(), 0u);
}

TEST(Incremental, PrivateAlphaStaysUnclassified) {
  IncrementalClassifier classifier;
  classifier.ingest(entry(61, {61, 64512, 201}, {Community(64512, 100)}));
  EXPECT_EQ(classifier.label_of(Community(64512, 100)),
            Intent::kUnclassified);
  const auto totals = classifier.totals();
  EXPECT_EQ(totals.unclassified, 1u);
  EXPECT_EQ(totals.communities, 1u);
}

TEST(Incremental, SiblingAwareness) {
  topo::OrgMap orgs;
  orgs.assign(1299, 1);
  orgs.assign(1300, 1);
  IncrementalClassifier classifier;
  classifier.set_org_map(&orgs);
  // Only the sibling 1300 appears in paths; 1299's value still counts as
  // on-path and is classifiable.
  classifier.ingest(entry(61, {61, 1300, 201}, {Community(1299, 20000)}));
  EXPECT_EQ(classifier.label_of(Community(1299, 20000)),
            Intent::kInformation);
}

// The streaming classifier must agree with the batch pipeline when fed the
// same data (same config, same context).
TEST(Incremental, MatchesBatchPipelineOnScenario) {
  routing::ScenarioConfig cfg;
  cfg.topology.seed = 81;
  cfg.topology.tier1_count = 5;
  cfg.topology.tier2_count = 20;
  cfg.topology.stub_count = 100;
  cfg.vantage_point_count = 25;
  const auto scenario = routing::Scenario::build(cfg);
  const auto entries = scenario.entries();

  Pipeline batch;
  batch.set_org_map(&scenario.topology().orgs);
  const auto batch_result = batch.run(entries);

  IncrementalClassifier streaming;
  streaming.set_org_map(&scenario.topology().orgs);
  streaming.ingest(entries);

  std::size_t compared = 0;
  for (const auto& stats : batch_result.observations.all()) {
    ++compared;
    EXPECT_EQ(streaming.label_of(stats.community),
              batch_result.inference.label_of(stats.community))
        << stats.community.to_string();
  }
  EXPECT_GT(compared, 300u);

  const auto totals = streaming.totals();
  EXPECT_EQ(totals.information, batch_result.inference.information_count);
  EXPECT_EQ(totals.action, batch_result.inference.action_count);
}

TEST(Incremental, IncrementalIngestMatchesBulkIngest) {
  routing::ScenarioConfig cfg;
  cfg.topology.seed = 83;
  cfg.topology.tier1_count = 4;
  cfg.topology.tier2_count = 15;
  cfg.topology.stub_count = 60;
  cfg.vantage_point_count = 12;
  const auto scenario = routing::Scenario::build(cfg);
  const auto entries = scenario.entries();

  IncrementalClassifier bulk;
  bulk.ingest(entries);
  IncrementalClassifier one_by_one;
  for (const auto& e : entries) {
    one_by_one.ingest(e);
    // Interleave queries to exercise partial reclassification.
    (void)one_by_one.label_of(e.route.communities.empty()
                                  ? Community(1, 1)
                                  : e.route.communities.front());
  }
  const auto a = bulk.totals();
  const auto b = one_by_one.totals();
  EXPECT_EQ(a.communities, b.communities);
  EXPECT_EQ(a.information, b.information);
  EXPECT_EQ(a.action, b.action);
  EXPECT_EQ(a.unclassified, b.unclassified);
}

}  // namespace
}  // namespace bgpintent::core
