#include "core/large.hpp"

#include <gtest/gtest.h>

#include "core/pipeline.hpp"
#include "routing/scenario.hpp"

namespace bgpintent::core {
namespace {

bgp::RibEntry entry(std::uint32_t vp, std::vector<bgp::Asn> path,
                    std::vector<bgp::LargeCommunity> large) {
  bgp::RibEntry e;
  e.vantage_point.asn = vp;
  e.vantage_point.address = vp;
  e.route.prefix = *bgp::Prefix::parse("10.0.0.0/24");
  e.route.path = bgp::AsPath(std::move(path));
  e.route.large_communities = std::move(large);
  return e;
}

TEST(LargeObservationIndex, PoolsOverGamma) {
  std::vector<bgp::RibEntry> entries;
  entries.push_back(entry(61, {61, 100, 201}, {{100, 10, 1}, {100, 10, 2}}));
  entries.push_back(entry(62, {62, 100, 202}, {{100, 10, 3}}));
  entries.push_back(entry(63, {63, 999}, {{100, 10, 1}}));  // off-path
  const auto index = LargeObservationIndex::from_entries(entries);
  const auto* stats = index.find(100, 10);
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->gamma_count, 3u);
  EXPECT_EQ(stats->on_path_paths, 2u);
  EXPECT_EQ(stats->off_path_paths, 1u);
  EXPECT_EQ(index.value_count(), 3u);  // (10,1), (10,2), (10,3)
  EXPECT_EQ(index.observed_betas(100), (std::vector<std::uint32_t>{10}));
  EXPECT_TRUE(index.alpha_on_any_path(100));
  EXPECT_FALSE(index.alpha_on_any_path(777));
}

TEST(LargeObservationIndex, FindMiss) {
  const auto index =
      LargeObservationIndex::from_entries(std::vector<bgp::RibEntry>{});
  EXPECT_EQ(index.find(1, 1), nullptr);
  EXPECT_TRUE(index.alphas().empty());
}

TEST(ClassifyLarge, PureOnIsInformation) {
  std::vector<bgp::RibEntry> entries;
  for (std::uint32_t vp = 61; vp < 66; ++vp)
    entries.push_back(entry(vp, {vp, 100, 201}, {{100, 10, vp}}));
  const auto index = LargeObservationIndex::from_entries(entries);
  const auto result = classify_large(index);
  EXPECT_EQ(result.label_of(bgp::LargeCommunity(100, 10, 61)),
            Intent::kInformation);
  EXPECT_EQ(result.information_count, 5u);  // five gammas
  EXPECT_EQ(result.action_count, 0u);
}

TEST(ClassifyLarge, MostlyOffPathIsAction) {
  std::vector<bgp::RibEntry> entries;
  entries.push_back(entry(61, {61, 100, 201}, {{100, 20, 7}}));
  for (std::uint32_t vp = 62; vp < 70; ++vp)
    entries.push_back(entry(vp, {vp, 999, 201}, {{100, 20, 7}}));
  // Alpha 100 must appear somewhere on a path to avoid exclusion.
  const auto index = LargeObservationIndex::from_entries(entries);
  const auto result = classify_large(index);
  EXPECT_EQ(result.label_of(bgp::LargeCommunity(100, 20, 7)),
            Intent::kAction);
}

TEST(ClassifyLarge, GapClusteringGroupsFunctions) {
  std::vector<bgp::RibEntry> entries;
  // Functions 10 and 11: info (pure on).  Function 500: action-ish.
  for (std::uint32_t vp = 61; vp < 64; ++vp)
    entries.push_back(
        entry(vp, {vp, 100, 201}, {{100, 10, 1}, {100, 11, 2}}));
  entries.push_back(entry(71, {71, 100, 202}, {{100, 500, 9}}));
  entries.push_back(entry(72, {72, 999}, {{100, 500, 9}}));
  entries.push_back(entry(73, {73, 998}, {{100, 500, 9}}));
  const auto index = LargeObservationIndex::from_entries(entries);
  const auto result = classify_large(index);
  // 10 and 11 cluster together (gap 1), function 500 is separate.
  EXPECT_EQ(result.label_of(bgp::LargeCommunity(100, 10, 1)),
            Intent::kInformation);
  EXPECT_EQ(result.label_of(bgp::LargeCommunity(100, 11, 2)),
            Intent::kInformation);
  EXPECT_EQ(result.label_of(bgp::LargeCommunity(100, 500, 9)),
            Intent::kAction);
}

TEST(ClassifyLarge, NeverOnPathExcluded) {
  std::vector<bgp::RibEntry> entries;
  entries.push_back(entry(61, {61, 999}, {{777, 10, 1}}));
  const auto index = LargeObservationIndex::from_entries(entries);
  const auto result = classify_large(index);
  EXPECT_EQ(result.label_of(bgp::LargeCommunity(777, 10, 1)),
            Intent::kUnclassified);
  EXPECT_EQ(result.excluded_never_on_path, 1u);
}

TEST(ClassifyLarge, PrivateAlphaExcluded) {
  std::vector<bgp::RibEntry> entries;
  entries.push_back(
      entry(61, {61, 4200000001U, 201}, {{4200000001U, 10, 1}}));
  const auto index = LargeObservationIndex::from_entries(entries);
  const auto result = classify_large(index);
  EXPECT_EQ(result.label_of(bgp::LargeCommunity(4200000001U, 10, 1)),
            Intent::kUnclassified);
}

// End-to-end: the simulator's large-community usage mirrors regular usage,
// so the extension should classify geo/rel functions info and the
// no-export function action for most adopting ASes.
TEST(ClassifyLarge, EndToEndOnScenario) {
  routing::ScenarioConfig cfg;
  cfg.topology.seed = 71;
  cfg.topology.tier1_count = 6;
  cfg.topology.tier2_count = 40;
  cfg.topology.stub_count = 250;
  cfg.vantage_point_count = 60;
  const auto scenario = routing::Scenario::build(cfg);
  const auto entries = scenario.entries();
  const auto index = LargeObservationIndex::from_entries(entries);
  ASSERT_GT(index.value_count(), 100u);
  const auto result = classify_large(index);
  ASSERT_GT(result.information_count + result.action_count, 50u);

  // Score against the constructed semantics: geo/rel functions are
  // information, the no-export function is action.
  std::size_t correct = 0;
  std::size_t total = 0;
  for (const auto& stats : index.all()) {
    const auto intent =
        result.label_of(bgp::LargeCommunity(stats.alpha, stats.beta, 0));
    if (intent == Intent::kUnclassified) continue;
    const bool is_info = stats.beta == routing::kLargeGeoFunction ||
                         stats.beta == routing::kLargeRelFunction;
    const bool is_action = stats.beta == routing::kLargeNoExportFunction;
    if (!is_info && !is_action) continue;
    ++total;
    if ((is_info && intent == Intent::kInformation) ||
        (is_action && intent == Intent::kAction))
      ++correct;
  }
  ASSERT_GT(total, 20u);
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(total), 0.85)
      << correct << "/" << total;
}

}  // namespace
}  // namespace bgpintent::core
