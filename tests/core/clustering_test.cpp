#include "core/clustering.hpp"

#include <gtest/gtest.h>

namespace bgpintent::core {
namespace {

std::vector<std::uint16_t> betas_of(const Cluster& c) { return c.betas; }

TEST(GapCluster, SplitsOnGapsLargerThanMinGap) {
  const std::vector<std::uint16_t> betas{100, 150, 200, 500, 520, 2000};
  const auto clusters = gap_cluster(1299, betas, 140);
  ASSERT_EQ(clusters.size(), 3u);
  EXPECT_EQ(betas_of(clusters[0]), (std::vector<std::uint16_t>{100, 150, 200}));
  EXPECT_EQ(betas_of(clusters[1]), (std::vector<std::uint16_t>{500, 520}));
  EXPECT_EQ(betas_of(clusters[2]), (std::vector<std::uint16_t>{2000}));
  for (const auto& c : clusters) EXPECT_EQ(c.alpha, 1299);
}

TEST(GapCluster, GapExactlyMinGapStaysTogether) {
  const std::vector<std::uint16_t> betas{100, 240};
  EXPECT_EQ(gap_cluster(1, betas, 140).size(), 1u);
  EXPECT_EQ(gap_cluster(1, betas, 139).size(), 2u);
}

TEST(GapCluster, ZeroGapMakesSingletons) {
  const std::vector<std::uint16_t> betas{1, 2, 3, 10};
  const auto clusters = gap_cluster(1, betas, 0);
  ASSERT_EQ(clusters.size(), 4u);
  for (const auto& c : clusters) EXPECT_EQ(c.size(), 1u);
}

TEST(GapCluster, HugeGapKeepsEverythingTogether) {
  const std::vector<std::uint16_t> betas{0, 30000, 65535};
  EXPECT_EQ(gap_cluster(1, betas, 65535).size(), 1u);
}

TEST(GapCluster, EmptyInput) {
  EXPECT_TRUE(gap_cluster(1, std::vector<std::uint16_t>{}, 140).empty());
}

TEST(GapCluster, SingleValue) {
  const auto clusters = gap_cluster(7, std::vector<std::uint16_t>{666}, 140);
  ASSERT_EQ(clusters.size(), 1u);
  EXPECT_EQ(clusters[0].lo(), 666);
  EXPECT_EQ(clusters[0].hi(), 666);
  EXPECT_EQ(clusters[0].size(), 1u);
}

TEST(GapCluster, BoundariesOfUint16DoNotOverflow) {
  const std::vector<std::uint16_t> betas{0, 65535};
  EXPECT_EQ(gap_cluster(1, betas, 140).size(), 2u);
  EXPECT_EQ(gap_cluster(1, betas, 65535).size(), 1u);
}

TEST(GapCluster, ArelionLikeLayout) {
  // Echo of Fig. 4: 50,150 | 430,431 | 661,666,999(?) | 2000.. | 20000..
  const std::vector<std::uint16_t> betas{50,   150,  430,   431,  666,
                                         2561, 2569, 20000, 20005, 20019};
  const auto clusters = gap_cluster(1299, betas, 140);
  ASSERT_EQ(clusters.size(), 5u);
  EXPECT_EQ(betas_of(clusters[0]), (std::vector<std::uint16_t>{50, 150}));
  EXPECT_EQ(betas_of(clusters[1]), (std::vector<std::uint16_t>{430, 431}));
  EXPECT_EQ(betas_of(clusters[2]), (std::vector<std::uint16_t>{666}));
  EXPECT_EQ(betas_of(clusters[3]), (std::vector<std::uint16_t>{2561, 2569}));
  EXPECT_EQ(betas_of(clusters[4]),
            (std::vector<std::uint16_t>{20000, 20005, 20019}));
}

}  // namespace
}  // namespace bgpintent::core
