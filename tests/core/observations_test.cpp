#include "core/observations.hpp"

#include <gtest/gtest.h>

namespace bgpintent::core {
namespace {

using bgp::AsPath;
using bgp::PathCommunityTuple;

PathCommunityTuple tuple(std::vector<Asn> path, Community community) {
  return PathCommunityTuple{AsPath(std::move(path)), community, 1};
}

TEST(ObservationIndex, CountsOnAndOffPath) {
  const Community c(1299, 2569);
  const std::vector<PathCommunityTuple> tuples{
      tuple({65541, 3356, 1299, 64496}, c),  // on-path
      tuple({65432, 64496}, c),              // off-path
      tuple({65269, 7018, 1299, 64496}, c),  // on-path
  };
  const auto index = ObservationIndex::build(tuples);
  const CommunityStats* stats = index.find(c);
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->on_path_paths, 2u);
  EXPECT_EQ(stats->off_path_paths, 1u);
  EXPECT_EQ(stats->total_paths(), 3u);
  EXPECT_FALSE(stats->pure_on());
  EXPECT_FALSE(stats->pure_off());
}

TEST(ObservationIndex, UniquePathsCountedOnce) {
  const Community c(1299, 35130);
  const std::vector<PathCommunityTuple> tuples{
      tuple({701, 1299, 64496}, c),
      tuple({701, 1299, 64496}, c),  // duplicate path
      tuple({701, 1299, 64496}, c),
  };
  const auto index = ObservationIndex::build(tuples);
  EXPECT_EQ(index.find(c)->on_path_paths, 1u);
  EXPECT_EQ(index.unique_path_count(), 1u);
}

TEST(ObservationIndex, PrependVariantsAreDistinctPaths) {
  const Community c(1299, 35130);
  const std::vector<PathCommunityTuple> tuples{
      tuple({701, 1299, 64496}, c),
      tuple({701, 1299, 1299, 64496}, c),
  };
  const auto index = ObservationIndex::build(tuples);
  EXPECT_EQ(index.find(c)->on_path_paths, 2u);
}

TEST(ObservationIndex, RatioComputation) {
  CommunityStats stats;
  stats.on_path_paths = 320;
  stats.off_path_paths = 2;
  EXPECT_DOUBLE_EQ(stats.on_off_ratio(), 160.0);
  stats.off_path_paths = 0;
  EXPECT_DOUBLE_EQ(stats.on_off_ratio(), 320.0);  // floored denominator
  EXPECT_TRUE(stats.pure_on());
}

TEST(ObservationIndex, SiblingAwareOnPath) {
  topo::OrgMap orgs;
  orgs.assign(1299, 1);
  orgs.assign(1300, 1);  // sibling of 1299
  const Community c(1299, 100);
  const std::vector<PathCommunityTuple> tuples{
      tuple({701, 1300, 64496}, c),  // sibling on path
  };
  const auto with_siblings = ObservationIndex::build(tuples, &orgs);
  EXPECT_EQ(with_siblings.find(c)->on_path_paths, 1u);
  EXPECT_EQ(with_siblings.find(c)->off_path_paths, 0u);

  const auto without = ObservationIndex::build(tuples, &orgs, nullptr,
                                               ObservationConfig{false});
  EXPECT_EQ(without.find(c)->on_path_paths, 0u);
  EXPECT_EQ(without.find(c)->off_path_paths, 1u);
}

TEST(ObservationIndex, RelationshipVotes) {
  rel::RelationshipDataset rels;
  rels.set_p2c(1299, 64496);  // 64496 is 1299's customer
  rels.set_p2p(1299, 7018);
  const Community c(1299, 2569);
  const std::vector<PathCommunityTuple> tuples{
      tuple({701, 1299, 64496}, c),        // next after 1299 = customer
      tuple({3356, 1299, 7018, 64496}, c), // next after 1299 = peer
      tuple({65000, 64496}, c),            // off-path: no vote
  };
  const auto index = ObservationIndex::build(tuples, nullptr, &rels);
  const CommunityStats* stats = index.find(c);
  EXPECT_EQ(stats->customer_votes, 1u);
  EXPECT_EQ(stats->peer_votes, 1u);
  EXPECT_EQ(stats->provider_votes, 0u);
  EXPECT_DOUBLE_EQ(stats->customer_peer_ratio(), 1.0);
}

TEST(ObservationIndex, RelationshipVotesOncePerUniquePath) {
  rel::RelationshipDataset rels;
  rels.set_p2c(1299, 64496);
  const Community c(1299, 2569);
  const std::vector<PathCommunityTuple> tuples{
      tuple({701, 1299, 64496}, c),
      tuple({701, 1299, 64496}, c),  // duplicate
  };
  const auto index = ObservationIndex::build(tuples, nullptr, &rels);
  EXPECT_EQ(index.find(c)->customer_votes, 1u);
}

TEST(ObservationIndex, ObservedBetasSortedPerAlpha) {
  const std::vector<PathCommunityTuple> tuples{
      tuple({701, 64496}, Community(1299, 300)),
      tuple({701, 64496}, Community(1299, 100)),
      tuple({701, 64496}, Community(1299, 200)),
      tuple({701, 64496}, Community(3356, 5)),
  };
  const auto index = ObservationIndex::build(tuples);
  EXPECT_EQ(index.observed_betas(1299),
            (std::vector<std::uint16_t>{100, 200, 300}));
  EXPECT_EQ(index.observed_betas(3356), (std::vector<std::uint16_t>{5}));
  EXPECT_TRUE(index.observed_betas(9999).empty());
  EXPECT_EQ(index.alphas(), (std::vector<std::uint16_t>{1299, 3356}));
}

TEST(ObservationIndex, AlphaOnAnyPath) {
  const std::vector<PathCommunityTuple> tuples{
      tuple({701, 1299, 64496}, Community(60000, 5)),  // IXP-style tag
  };
  const auto index = ObservationIndex::build(tuples);
  EXPECT_TRUE(index.alpha_on_any_path(1299));
  EXPECT_TRUE(index.alpha_on_any_path(701));
  EXPECT_FALSE(index.alpha_on_any_path(60000));  // never in a path
}

TEST(ObservationIndex, AlphaOnAnyPathViaSibling) {
  topo::OrgMap orgs;
  orgs.assign(1299, 1);
  orgs.assign(1300, 1);
  const std::vector<PathCommunityTuple> tuples{
      tuple({701, 1300, 64496}, Community(1299, 5)),
  };
  const auto index = ObservationIndex::build(tuples, &orgs);
  EXPECT_TRUE(index.alpha_on_any_path(1299));
}

TEST(ObservationIndex, FromEntriesExpandsCommunities) {
  bgp::RibEntry entry;
  entry.route.path = AsPath({701, 1299, 64496});
  entry.route.communities = {Community(1299, 100), Community(701, 5)};
  const auto index =
      ObservationIndex::from_entries(std::vector<bgp::RibEntry>{entry});
  EXPECT_EQ(index.community_count(), 2u);
  EXPECT_NE(index.find(Community(701, 5)), nullptr);
}

TEST(ObservationIndex, FindMissingCommunity) {
  const auto index = ObservationIndex::build({});
  EXPECT_EQ(index.find(Community(1, 1)), nullptr);
  EXPECT_TRUE(index.all().empty());
  EXPECT_TRUE(index.alphas().empty());
}

}  // namespace
}  // namespace bgpintent::core
