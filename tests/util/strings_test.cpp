#include "util/strings.hpp"

#include <gtest/gtest.h>

namespace bgpintent::util {
namespace {

TEST(Trim, RemovesSurroundingWhitespace) {
  EXPECT_EQ(trim("  abc  "), "abc");
  EXPECT_EQ(trim("\tabc\n"), "abc");
  EXPECT_EQ(trim("abc"), "abc");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" a b "), "a b");
}

TEST(Split, KeepsEmptyFields) {
  auto f = split("a,b,,c", ',');
  ASSERT_EQ(f.size(), 4u);
  EXPECT_EQ(f[0], "a");
  EXPECT_EQ(f[2], "");
  EXPECT_EQ(f[3], "c");
}

TEST(Split, SingleField) {
  auto f = split("abc", ',');
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0], "abc");
}

TEST(Split, TrailingDelimiterMakesEmptyField) {
  auto f = split("a,", ',');
  ASSERT_EQ(f.size(), 2u);
  EXPECT_EQ(f[1], "");
}

TEST(Split, EmptyInput) {
  auto f = split("", ',');
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0], "");
}

TEST(SplitWhitespace, DropsEmptyFields) {
  auto f = split_whitespace("  1299 3356\t701  ");
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[0], "1299");
  EXPECT_EQ(f[1], "3356");
  EXPECT_EQ(f[2], "701");
}

TEST(SplitWhitespace, EmptyAndBlank) {
  EXPECT_TRUE(split_whitespace("").empty());
  EXPECT_TRUE(split_whitespace("   \t\n").empty());
}

TEST(ParseU64, ValidValues) {
  EXPECT_EQ(parse_u64("0"), 0u);
  EXPECT_EQ(parse_u64("1299"), 1299u);
  EXPECT_EQ(parse_u64("18446744073709551615"), 18446744073709551615ULL);
}

TEST(ParseU64, RejectsJunk) {
  EXPECT_FALSE(parse_u64(""));
  EXPECT_FALSE(parse_u64("12a"));
  EXPECT_FALSE(parse_u64("-1"));
  EXPECT_FALSE(parse_u64(" 12"));
  EXPECT_FALSE(parse_u64("12 "));
  EXPECT_FALSE(parse_u64("18446744073709551616"));  // overflow
}

TEST(ParseU32, RangeChecked) {
  EXPECT_EQ(parse_u32("4294967295"), 4294967295u);
  EXPECT_FALSE(parse_u32("4294967296"));
  EXPECT_FALSE(parse_u32("x"));
}

TEST(ParseDouble, ValidAndInvalid) {
  EXPECT_DOUBLE_EQ(*parse_double("1.5"), 1.5);
  EXPECT_DOUBLE_EQ(*parse_double("-2"), -2.0);
  EXPECT_FALSE(parse_double(""));
  EXPECT_FALSE(parse_double("1.5x"));
}

TEST(StartsWith, Basic) {
  EXPECT_TRUE(starts_with("1299:2569", "1299:"));
  EXPECT_FALSE(starts_with("1299", "1299:"));
  EXPECT_TRUE(starts_with("abc", ""));
}

TEST(Format, ProducesPrintfOutput) {
  EXPECT_EQ(format("as%u ratio=%.2f", 1299u, 0.5), "as1299 ratio=0.50");
  EXPECT_EQ(format("%s", ""), "");
}

}  // namespace
}  // namespace bgpintent::util
