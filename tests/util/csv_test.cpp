#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/strings.hpp"

namespace bgpintent::util {
namespace {

TEST(CsvWriter, PlainRow) {
  std::ostringstream out;
  CsvWriter w(out);
  w.write_row({"a", "b", "c"});
  EXPECT_EQ(out.str(), "a,b,c\n");
}

TEST(CsvWriter, QuotesSpecialCharacters) {
  std::ostringstream out;
  CsvWriter w(out);
  w.write_row({"a,b", "say \"hi\"", "line\nbreak"});
  EXPECT_EQ(out.str(), "\"a,b\",\"say \"\"hi\"\"\",\"line\nbreak\"\n");
}

TEST(CsvWriter, CustomDelimiter) {
  std::ostringstream out;
  CsvWriter w(out, '|');
  w.write_row({"1299", "2569", "action"});
  EXPECT_EQ(out.str(), "1299|2569|action\n");
}

TEST(ParseCsvLine, Simple) {
  auto f = parse_csv_line("a,b,c");
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[1], "b");
}

TEST(ParseCsvLine, QuotedFieldWithDelimiter) {
  auto f = parse_csv_line("\"a,b\",c");
  ASSERT_EQ(f.size(), 2u);
  EXPECT_EQ(f[0], "a,b");
  EXPECT_EQ(f[1], "c");
}

TEST(ParseCsvLine, EscapedQuote) {
  auto f = parse_csv_line("\"say \"\"hi\"\"\"");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0], "say \"hi\"");
}

TEST(ParseCsvLine, UnterminatedQuoteThrows) {
  EXPECT_THROW(parse_csv_line("\"abc"), ParseError);
}

TEST(ParseCsvLine, EmptyFields) {
  auto f = parse_csv_line(",,");
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[0], "");
  EXPECT_EQ(f[2], "");
}

TEST(ReadCsv, SkipsCommentsAndBlankLines) {
  std::istringstream in("# header comment\n\na,b\n  \nc,d\n");
  auto rows = read_csv(in);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][0], "a");
  EXPECT_EQ(rows[1][1], "d");
}

TEST(ReadCsv, HandlesCrlf) {
  std::istringstream in("a,b\r\nc,d\r\n");
  auto rows = read_csv(in);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][1], "b");
}

TEST(CsvRoundTrip, WriteThenRead) {
  std::ostringstream out;
  CsvWriter w(out);
  w.write_row({"1299:2569", "action", "no,export"});
  std::istringstream in(out.str());
  auto rows = read_csv(in);
  ASSERT_EQ(rows.size(), 1u);
  ASSERT_EQ(rows[0].size(), 3u);
  EXPECT_EQ(rows[0][2], "no,export");
}

}  // namespace
}  // namespace bgpintent::util
