#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace bgpintent::util {
namespace {

TEST(ThreadPool, ResolveMapsZeroToHardwareConcurrency) {
  EXPECT_GE(ThreadPool::resolve(0), 1u);
  EXPECT_EQ(ThreadPool::resolve(1), 1u);
  EXPECT_EQ(ThreadPool::resolve(7), 7u);
}

TEST(ThreadPool, SubmitReturnsResultsThroughFutures) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 200; ++i)
    futures.push_back(pool.submit([i]() { return i * i; }));
  long long sum = 0;
  for (auto& future : futures) sum += future.get();
  long long expected = 0;
  for (int i = 0; i < 200; ++i) expected += static_cast<long long>(i) * i;
  EXPECT_EQ(sum, expected);
}

TEST(ThreadPool, ExceptionsPropagateThroughFutures) {
  ThreadPool pool(2);
  auto bad = pool.submit(
      []() -> int { throw std::runtime_error("task failed"); });
  auto good = pool.submit([]() { return 7; });
  EXPECT_THROW((void)bad.get(), std::runtime_error);
  // The pool survives a throwing task and keeps executing others.
  EXPECT_EQ(good.get(), 7);
  EXPECT_EQ(pool.submit([]() { return 8; }).get(), 8);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kCount = 10'000;
  std::vector<std::atomic<int>> hits(kCount);
  pool.parallel_for(kCount, [&hits](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i)
      hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kCount; ++i)
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, ParallelForHandlesSmallAndEmptyRanges) {
  ThreadPool pool(8);
  std::atomic<int> calls{0};
  pool.parallel_for(0, [&](std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
  // count < workers: every index still visited exactly once.
  std::atomic<int> total{0};
  pool.parallel_for(3, [&](std::size_t begin, std::size_t end) {
    total += static_cast<int>(end - begin);
  });
  EXPECT_EQ(total.load(), 3);
}

TEST(ThreadPool, ParallelForRethrowsTaskException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(100,
                        [](std::size_t begin, std::size_t) {
                          if (begin == 0) throw std::logic_error("chunk 0");
                        }),
      std::logic_error);
  // Still usable afterwards.
  EXPECT_EQ(pool.submit([]() { return 3; }).get(), 3);
}

TEST(ThreadPool, TasksCanSubmitTasks) {
  // Nested submission exercises the stealing path: the inner tasks land on
  // other workers' queues while the outer tasks are still running.
  ThreadPool pool(4);
  std::atomic<int> done{0};
  std::vector<std::future<std::future<void>>> outer;
  for (int i = 0; i < 32; ++i)
    outer.push_back(pool.submit([&pool, &done]() {
      return pool.submit([&done]() { ++done; });
    }));
  for (auto& future : outer) future.get().get();
  EXPECT_EQ(done.load(), 32);
}

TEST(ThreadPool, DestructorDrainsQueuedTasksUnderLoad) {
  std::atomic<int> executed{0};
  constexpr int kTasks = 500;
  {
    ThreadPool pool(4);
    for (int i = 0; i < kTasks; ++i)
      pool.submit([&executed]() {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
        ++executed;
      });
    // Destructor runs with most tasks still queued.
  }
  // Every queued task ran: futures from submit() always become ready.
  EXPECT_EQ(executed.load(), kTasks);
}

TEST(ThreadPool, SingleWorkerPoolStillCompletesEverything) {
  ThreadPool pool(1);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 50; ++i)
    futures.push_back(pool.submit([i]() { return i; }));
  int sum = 0;
  for (auto& future : futures) sum += future.get();
  EXPECT_EQ(sum, 49 * 50 / 2);
}

}  // namespace
}  // namespace bgpintent::util
