#include "util/stats.hpp"

#include <gtest/gtest.h>

namespace bgpintent::util {
namespace {

TEST(Mean, Basic) {
  EXPECT_DOUBLE_EQ(mean({1, 2, 3, 4}), 2.5);
  EXPECT_DOUBLE_EQ(mean({5}), 5.0);
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
}

TEST(Median, OddAndEven) {
  EXPECT_DOUBLE_EQ(median({3, 1, 2}), 2.0);
  EXPECT_DOUBLE_EQ(median({4, 1, 3, 2}), 2.5);
  EXPECT_DOUBLE_EQ(median({}), 0.0);
  EXPECT_DOUBLE_EQ(median({7}), 7.0);
}

TEST(Percentile, NearestRank) {
  std::vector<double> v{10, 20, 30, 40, 50};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 30.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 50.0);
  EXPECT_DOUBLE_EQ(percentile(v, 10), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 90), 50.0);
}

TEST(Percentile, ClampsQ) {
  std::vector<double> v{1, 2};
  EXPECT_DOUBLE_EQ(percentile(v, -5), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 150), 2.0);
}

TEST(EmpiricalCdf, FractionAtMost) {
  EmpiricalCdf cdf({1, 2, 2, 3});
  EXPECT_DOUBLE_EQ(cdf.fraction_at_most(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_most(1), 0.25);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_most(2), 0.75);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_most(3), 1.0);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_most(100), 1.0);
}

TEST(EmpiricalCdf, EmptyCdf) {
  EmpiricalCdf cdf({});
  EXPECT_TRUE(cdf.empty());
  EXPECT_DOUBLE_EQ(cdf.fraction_at_most(1), 0.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 0.0);
  EXPECT_TRUE(cdf.points().empty());
}

TEST(EmpiricalCdf, Quantile) {
  EmpiricalCdf cdf({10, 20, 30, 40});
  EXPECT_DOUBLE_EQ(cdf.quantile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.25), 10.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 20.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 40.0);
}

TEST(EmpiricalCdf, PointsAreStaircase) {
  EmpiricalCdf cdf({1, 1, 2, 5});
  auto pts = cdf.points();
  ASSERT_EQ(pts.size(), 3u);
  EXPECT_DOUBLE_EQ(pts[0].value, 1.0);
  EXPECT_DOUBLE_EQ(pts[0].cumulative_fraction, 0.5);
  EXPECT_DOUBLE_EQ(pts[1].value, 2.0);
  EXPECT_DOUBLE_EQ(pts[1].cumulative_fraction, 0.75);
  EXPECT_DOUBLE_EQ(pts[2].value, 5.0);
  EXPECT_DOUBLE_EQ(pts[2].cumulative_fraction, 1.0);
}

TEST(BinaryTally, CountsCells) {
  BinaryTally t;
  t.add(true, true);    // tp
  t.add(true, false);   // fp
  t.add(false, true);   // fn
  t.add(false, false);  // tn
  EXPECT_EQ(t.true_positive, 1u);
  EXPECT_EQ(t.false_positive, 1u);
  EXPECT_EQ(t.false_negative, 1u);
  EXPECT_EQ(t.true_negative, 1u);
  EXPECT_EQ(t.total(), 4u);
  EXPECT_DOUBLE_EQ(t.accuracy(), 0.5);
  EXPECT_DOUBLE_EQ(t.precision(), 0.5);
  EXPECT_DOUBLE_EQ(t.recall(), 0.5);
  EXPECT_DOUBLE_EQ(t.f1(), 0.5);
}

TEST(BinaryTally, EmptyIsZero) {
  BinaryTally t;
  EXPECT_DOUBLE_EQ(t.accuracy(), 0.0);
  EXPECT_DOUBLE_EQ(t.precision(), 0.0);
  EXPECT_DOUBLE_EQ(t.recall(), 0.0);
  EXPECT_DOUBLE_EQ(t.f1(), 0.0);
}

TEST(BinaryTally, PerfectClassifier) {
  BinaryTally t;
  for (int i = 0; i < 10; ++i) t.add(true, true);
  for (int i = 0; i < 10; ++i) t.add(false, false);
  EXPECT_DOUBLE_EQ(t.accuracy(), 1.0);
  EXPECT_DOUBLE_EQ(t.precision(), 1.0);
  EXPECT_DOUBLE_EQ(t.recall(), 1.0);
  EXPECT_DOUBLE_EQ(t.f1(), 1.0);
}

TEST(BinaryTally, SummaryMentionsAllCells) {
  BinaryTally t;
  t.add(true, true);
  const std::string s = t.summary();
  EXPECT_NE(s.find("acc="), std::string::npos);
  EXPECT_NE(s.find("tp=1"), std::string::npos);
}

}  // namespace
}  // namespace bgpintent::util
