#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <set>
#include <vector>

namespace bgpintent::util {
namespace {

TEST(Splitmix64, KnownSequence) {
  // Reference values from the splitmix64 reference implementation with
  // seed 1234567.
  std::uint64_t state = 1234567;
  const std::uint64_t a = splitmix64(state);
  const std::uint64_t b = splitmix64(state);
  EXPECT_NE(a, b);
  // Determinism: same seed, same outputs.
  std::uint64_t state2 = 1234567;
  EXPECT_EQ(splitmix64(state2), a);
  EXPECT_EQ(splitmix64(state2), b);
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 32; ++i)
    if (a() != b()) ++differing;
  EXPECT_GT(differing, 24);
}

TEST(Rng, SeedZeroIsUsable) {
  Rng r(0);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 64; ++i) seen.insert(r());
  EXPECT_GT(seen.size(), 60u);
}

TEST(Rng, UniformStaysInRange) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const auto v = r.uniform(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(Rng, UniformSingletonRange) {
  Rng r(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(r.uniform(5, 5), 5u);
}

TEST(Rng, UniformFullRangeDoesNotHang) {
  Rng r(9);
  std::uint64_t acc = 0;
  for (int i = 0; i < 100; ++i)
    acc ^= r.uniform(0, std::numeric_limits<std::uint64_t>::max());
  (void)acc;
}

TEST(Rng, UniformCoversAllValues) {
  Rng r(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(r.uniform(0, 9));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, Uniform01Bounds) {
  Rng r(3);
  for (int i = 0; i < 10000; ++i) {
    const double v = r.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, Uniform01MeanNearHalf) {
  Rng r(5);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += r.uniform01();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes) {
  Rng r(13);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
    EXPECT_FALSE(r.chance(-0.5));
    EXPECT_TRUE(r.chance(1.5));
  }
}

TEST(Rng, ChanceApproximatesProbability) {
  Rng r(17);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i)
    if (r.chance(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, IndexInRange) {
  Rng r(19);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.index(17), 17u);
}

TEST(Rng, ZipfSkewsTowardLowRanks) {
  Rng r(23);
  std::array<int, 10> counts{};
  for (int i = 0; i < 20000; ++i) ++counts[r.zipf(10, 1.0)];
  EXPECT_GT(counts[0], counts[4]);
  EXPECT_GT(counts[0], counts[9]);
  EXPECT_GT(counts[1], counts[9]);
}

TEST(Rng, ZipfSingleton) {
  Rng r(23);
  EXPECT_EQ(r.zipf(1, 1.0), 0u);
  EXPECT_EQ(r.zipf(0, 1.0), 0u);
}

TEST(Rng, GeometricBounds) {
  Rng r(29);
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.geometric(0.5, 8);
    EXPECT_GE(v, 1u);
    EXPECT_LE(v, 8u);
  }
  EXPECT_EQ(r.geometric(1.0, 8), 1u);
  EXPECT_EQ(r.geometric(0.0, 8), 8u);
}

TEST(Rng, ShufflePreservesElements) {
  Rng r(31);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto original = v;
  r.shuffle(std::span<int>(v));
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(Rng, ShuffleActuallyPermutes) {
  Rng r(37);
  std::vector<int> v(50);
  for (int i = 0; i < 50; ++i) v[static_cast<std::size_t>(i)] = i;
  auto original = v;
  r.shuffle(std::span<int>(v));
  EXPECT_NE(v, original);
}

TEST(Rng, SampleIndicesDistinctAndBounded) {
  Rng r(41);
  auto sample = r.sample_indices(100, 10);
  ASSERT_EQ(sample.size(), 10u);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
  for (auto idx : sample) EXPECT_LT(idx, 100u);
}

TEST(Rng, SampleIndicesClampsToPopulation) {
  Rng r(43);
  auto sample = r.sample_indices(5, 50);
  EXPECT_EQ(sample.size(), 5u);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 5u);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(47);
  Rng child = parent.fork();
  bool differs = false;
  for (int i = 0; i < 16; ++i)
    if (parent() != child()) differs = true;
  EXPECT_TRUE(differs);
}

}  // namespace
}  // namespace bgpintent::util
