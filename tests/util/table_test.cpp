#include "util/table.hpp"

#include <gtest/gtest.h>

namespace bgpintent::util {
namespace {

TEST(TextTable, RendersHeaderAndRows) {
  TextTable t({"asn", "intent"});
  t.add_row({"1299", "action"});
  t.add_row({"3356", "information"});
  const std::string out = t.render();
  EXPECT_NE(out.find("asn"), std::string::npos);
  EXPECT_NE(out.find("intent"), std::string::npos);
  EXPECT_NE(out.find("1299"), std::string::npos);
  EXPECT_NE(out.find("information"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(TextTable, AlignsColumns) {
  TextTable t({"a", "b"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "22"});
  const std::string out = t.render();
  // Every line should contain the two-space column gap.
  std::size_t lines = 0;
  std::size_t pos = 0;
  while ((pos = out.find('\n', pos)) != std::string::npos) {
    ++lines;
    ++pos;
  }
  EXPECT_EQ(lines, 4u);  // header, underline, two rows
}

TEST(TextTable, ToleratesShortRows) {
  TextTable t({"a", "b", "c"});
  t.add_row({"only"});
  EXPECT_NO_THROW({ auto s = t.render(); });
}

TEST(TextTable, ToleratesLongRows) {
  TextTable t({"a"});
  t.add_row({"1", "extra-cell-ignored"});
  EXPECT_NO_THROW({ auto s = t.render(); });
}

TEST(Fixed, FormatsDigits) {
  EXPECT_EQ(fixed(1.23456, 2), "1.23");
  EXPECT_EQ(fixed(2.0, 0), "2");
}

TEST(Percent, FormatsFraction) {
  EXPECT_EQ(percent(0.965, 1), "96.5%");
  EXPECT_EQ(percent(0.5, 0), "50%");
  EXPECT_EQ(percent(1.0, 2), "100.00%");
}

}  // namespace
}  // namespace bgpintent::util
