#include "rel/asrank.hpp"

#include <gtest/gtest.h>

#include "routing/scenario.hpp"

namespace bgpintent::rel {
namespace {

bgp::AsPath path(std::vector<bgp::Asn> asns) {
  return bgp::AsPath(std::move(asns));
}

TEST(TransitDegrees, CountsDistinctNeighborsWhileTransiting) {
  const std::vector<bgp::AsPath> paths{
      path({10, 20, 30}),
      path({11, 20, 30}),
      path({10, 20, 31}),
  };
  const auto degrees = transit_degrees(paths);
  // AS 20 transits with neighbors {10, 11, 30, 31}.
  EXPECT_EQ(degrees.at(20), 4u);
  // Edge ASes never transit.
  EXPECT_FALSE(degrees.contains(10));
  EXPECT_FALSE(degrees.contains(30));
}

TEST(TransitDegrees, PrependsCollapsed) {
  const std::vector<bgp::AsPath> paths{path({10, 20, 20, 20, 30})};
  const auto degrees = transit_degrees(paths);
  EXPECT_EQ(degrees.at(20), 2u);
}

TEST(InferRelationships, SimpleHierarchy) {
  // 1 is the big transit AS (largest transit degree); 2 and 3 are its
  // customers; 4,5 are customers of 2,3.
  const std::vector<bgp::AsPath> paths{
      path({4, 2, 1, 3, 5}),
      path({5, 3, 1, 2, 4}),
      path({4, 2, 1, 3, 5}),
      path({2, 1, 3}),
      path({3, 1, 2}),
      path({6, 1, 2, 4}),
      path({7, 1, 3, 5}),
      path({6, 1, 3}),
      path({7, 1, 2}),
  };
  const auto inferred = infer_relationships(paths);
  EXPECT_EQ(inferred.relationship(1, 2), RelFrom::kCustomer);
  EXPECT_EQ(inferred.relationship(1, 3), RelFrom::kCustomer);
  EXPECT_EQ(inferred.relationship(2, 4), RelFrom::kCustomer);
  EXPECT_EQ(inferred.relationship(3, 5), RelFrom::kCustomer);
}

TEST(InferRelationships, EveryObservedAdjacencyClassified) {
  const std::vector<bgp::AsPath> paths{
      path({4, 2, 1, 3, 5}),
      path({6, 2, 4}),
  };
  const auto inferred = infer_relationships(paths);
  for (const auto& p : paths) {
    const auto asns = p.unique_asns();
    for (std::size_t i = 0; i + 1 < asns.size(); ++i)
      EXPECT_TRUE(inferred.relationship(asns[i], asns[i + 1]).has_value())
          << asns[i] << "-" << asns[i + 1];
  }
}

// End-to-end: inference over simulated collector paths recovers most of the
// generator's ground-truth relationships.  (CAIDA reports >90% for the real
// algorithm on real data; our compact variant on synthetic data should be
// comfortably above 75% on observed links.)
TEST(InferRelationships, RecoversSyntheticTopology) {
  routing::ScenarioConfig cfg;
  cfg.topology.seed = 31;
  cfg.topology.tier1_count = 5;
  cfg.topology.tier2_count = 25;
  cfg.topology.stub_count = 120;
  cfg.vantage_point_count = 30;
  const auto scenario = routing::Scenario::build(cfg);

  std::vector<bgp::AsPath> paths;
  for (const auto& entry : scenario.entries())
    paths.push_back(entry.route.path);
  const auto inferred = infer_relationships(paths);
  ASSERT_GT(inferred.link_count(), 100u);

  // Score against the generator's graph over links the graph knows.
  std::size_t known = 0, correct = 0;
  for (const auto& link : inferred.all_links()) {
    const auto truth = scenario.topology().graph.relationship(link.a, link.b);
    if (!truth) continue;
    ++known;
    if (link.p2c && *truth == topo::RelFrom::kCustomer)
      ++correct;
    else if (!link.p2c && *truth == topo::RelFrom::kPeer)
      ++correct;
  }
  ASSERT_GT(known, 100u);
  const double accuracy =
      static_cast<double>(correct) / static_cast<double>(known);
  EXPECT_GT(accuracy, 0.75) << "relationship inference accuracy " << accuracy;
}

TEST(InferRelationships, EmptyInput) {
  const auto inferred = infer_relationships({});
  EXPECT_EQ(inferred.link_count(), 0u);
}

TEST(InferRelationships, SinglePathTwoAses) {
  const auto inferred = infer_relationships({path({1, 2})});
  // Both endpoints have zero transit degree; link becomes p2p.
  EXPECT_EQ(inferred.relationship(1, 2), RelFrom::kPeer);
}

}  // namespace
}  // namespace bgpintent::rel
