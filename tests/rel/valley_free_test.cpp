#include "rel/valley_free.hpp"

#include <gtest/gtest.h>

#include "routing/scenario.hpp"

namespace bgpintent::rel {
namespace {

bgp::AsPath path(std::vector<bgp::Asn> asns) {
  return bgp::AsPath(std::move(asns));
}

/// Hierarchy: 1 and 2 are tier-1 peers; 1 provides 10, 2 provides 20;
/// 10 provides 100, 20 provides 200; 10 and 20 also peer directly.
RelationshipDataset dataset() {
  RelationshipDataset d;
  d.set_p2p(1, 2);
  d.set_p2c(1, 10);
  d.set_p2c(2, 20);
  d.set_p2c(10, 100);
  d.set_p2c(20, 200);
  d.set_p2p(10, 20);
  return d;
}

TEST(ValleyFree, PureUphillIsValid) {
  // Collector at tier-1 1, origin at 100: path 1 10 100.
  EXPECT_EQ(check_valley_free(path({1, 10, 100}), dataset()),
            PathVerdict::kValleyFree);
}

TEST(ValleyFree, PureDownhillIsValid) {
  // Collector at stub 100 hearing its provider's route: 100 10 1.
  EXPECT_EQ(check_valley_free(path({100, 10, 1}), dataset()),
            PathVerdict::kValleyFree);
}

TEST(ValleyFree, UpPeerDownIsValid) {
  // 200 -> 20 (up), 20 -> 10 (peer), 10 -> 100: read collector-first.
  EXPECT_EQ(check_valley_free(path({100, 10, 20, 200}), dataset()),
            PathVerdict::kValleyFree);
}

TEST(ValleyFree, UpOverTier1PeakIsValid) {
  // Origin 200 climbs 20 -> 2, crosses the tier-1 peering 2 -> 1, descends
  // 1 -> 10 -> 100.  Collector-first: 100 10 1 2 20 200.
  EXPECT_EQ(check_valley_free(path({100, 10, 1, 2, 20, 200}), dataset()),
            PathVerdict::kValleyFree);
}

TEST(ValleyFree, LeakIsValley) {
  // 10 learns from provider 1 and leaks to peer 20: origin-side read:
  // 1 -> 10 is down (10 is 1's customer), then 10 -> 20 is peer after
  // descent -> valley.  Collector-first: 20 10 1.
  EXPECT_EQ(check_valley_free(path({20, 10, 1}), dataset()),
            PathVerdict::kValley);
}

TEST(ValleyFree, CustomerLeaksProviderRouteUpward) {
  // 100 learns from provider 10, re-exports to ... nothing else in the
  // dataset; emulate with 100 between two providers: add 20 as provider.
  RelationshipDataset d = dataset();
  d.set_p2c(20, 100);
  // Origin 1 -> 10 (down to customer 10? no: 10 is customer of 1):
  // path collector-first: 20 100 10 1: 1->10 down, 10->100 down,
  // 100->20 up after descent -> valley.
  EXPECT_EQ(check_valley_free(path({20, 100, 10, 1}), d),
            PathVerdict::kValley);
}

TEST(ValleyFree, TwoPeerEdgesIsMultiplePeaks) {
  RelationshipDataset d;
  d.set_p2p(1, 2);
  d.set_p2p(2, 3);
  EXPECT_EQ(check_valley_free(path({1, 2, 3}), d),
            PathVerdict::kMultiplePeaks);
}

TEST(ValleyFree, UnknownLinkReported) {
  EXPECT_EQ(check_valley_free(path({1, 99}), dataset()),
            PathVerdict::kUnknownLink);
}

TEST(ValleyFree, TrivialPaths) {
  EXPECT_EQ(check_valley_free(path({}), dataset()), PathVerdict::kTrivial);
  EXPECT_EQ(check_valley_free(path({1}), dataset()), PathVerdict::kTrivial);
  // Prepends collapse to a single AS.
  EXPECT_EQ(check_valley_free(path({1, 1, 1}), dataset()),
            PathVerdict::kTrivial);
}

TEST(ValleyFree, SiblingEdgesAreNeutral) {
  RelationshipDataset d = dataset();
  // The dataset format has no sibling type, but the checker must tolerate
  // datasets loaded from richer sources; p2p-after-sibling etc. is covered
  // by the simulator test below.
  EXPECT_EQ(check_valley_free(path({1, 10, 100}), d),
            PathVerdict::kValleyFree);
}

TEST(ValleyFree, ReportAggregates) {
  const std::vector<bgp::AsPath> paths{
      path({1, 10, 100}),   // valley-free
      path({20, 10, 1}),    // valley
      path({1, 99}),        // unknown
      path({1}),            // trivial
  };
  const auto report = check_paths(paths, dataset());
  EXPECT_EQ(report.total, 4u);
  EXPECT_EQ(report.valley_free, 1u);
  EXPECT_EQ(report.valleys, 1u);
  EXPECT_EQ(report.unknown_links, 1u);
  EXPECT_EQ(report.trivial, 1u);
  EXPECT_DOUBLE_EQ(report.valley_free_fraction(), 0.5);
}

// Structural invariant of the whole substrate: every path the simulator
// produces must be valley-free under the generator's true relationships.
TEST(ValleyFree, SimulatedPathsAreValleyFreeUnderTruth) {
  routing::ScenarioConfig cfg;
  cfg.topology.seed = 61;
  cfg.topology.tier1_count = 5;
  cfg.topology.tier2_count = 25;
  cfg.topology.stub_count = 120;
  cfg.vantage_point_count = 25;
  const auto scenario = routing::Scenario::build(cfg);

  RelationshipDataset truth;
  for (const auto& edge : scenario.topology().graph.all_edges()) {
    if (edge.rel == topo::Relationship::kP2C)
      truth.set_p2c(edge.a, edge.b);
    else if (edge.rel == topo::Relationship::kP2P)
      truth.set_p2p(edge.a, edge.b);
    // kS2S: deliberately omitted; the serial-1 model has no sibling type.
  }

  std::vector<bgp::AsPath> paths;
  for (const auto& entry : scenario.entries())
    paths.push_back(entry.route.path);
  const auto report = check_paths(paths, truth);
  ASSERT_GT(report.total, 1000u);
  EXPECT_EQ(report.valleys, 0u);
  EXPECT_EQ(report.multiple_peaks, 0u);
  // Sibling edges surface as unknown links; everything judged is clean.
  EXPECT_DOUBLE_EQ(report.valley_free_fraction(), 1.0);
}

}  // namespace
}  // namespace bgpintent::rel
