#include "rel/dataset.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/strings.hpp"

namespace bgpintent::rel {
namespace {

TEST(RelationshipDataset, P2cPerspectives) {
  RelationshipDataset d;
  d.set_p2c(1299, 64496);
  EXPECT_EQ(d.relationship(1299, 64496), RelFrom::kCustomer);
  EXPECT_EQ(d.relationship(64496, 1299), RelFrom::kProvider);
  EXPECT_FALSE(d.relationship(1299, 7018));
}

TEST(RelationshipDataset, P2cWithProviderHavingLargerAsn) {
  RelationshipDataset d;
  d.set_p2c(64496, 1299);  // provider has the larger ASN
  EXPECT_EQ(d.relationship(64496, 1299), RelFrom::kCustomer);
  EXPECT_EQ(d.relationship(1299, 64496), RelFrom::kProvider);
}

TEST(RelationshipDataset, P2p) {
  RelationshipDataset d;
  d.set_p2p(1299, 3356);
  EXPECT_EQ(d.relationship(1299, 3356), RelFrom::kPeer);
  EXPECT_EQ(d.relationship(3356, 1299), RelFrom::kPeer);
}

TEST(RelationshipDataset, OverwriteChangesType) {
  RelationshipDataset d;
  d.set_p2c(1, 2);
  d.set_p2p(1, 2);
  EXPECT_EQ(d.relationship(1, 2), RelFrom::kPeer);
  EXPECT_EQ(d.link_count(), 1u);
  d.set_p2c(2, 1);
  EXPECT_EQ(d.relationship(1, 2), RelFrom::kProvider);
}

TEST(RelationshipDataset, Counts) {
  RelationshipDataset d;
  d.set_p2c(1, 2);
  d.set_p2c(1, 3);
  d.set_p2p(2, 3);
  EXPECT_EQ(d.link_count(), 3u);
  EXPECT_EQ(d.p2c_count(), 2u);
  EXPECT_EQ(d.p2p_count(), 1u);
}

TEST(RelationshipDataset, AllLinksOrientedAndSorted) {
  RelationshipDataset d;
  d.set_p2c(9, 2);
  d.set_p2p(5, 4);
  const auto links = d.all_links();
  ASSERT_EQ(links.size(), 2u);
  EXPECT_EQ(links[0].a, 4u);  // p2p reported lo-hi
  EXPECT_EQ(links[0].b, 5u);
  EXPECT_FALSE(links[0].p2c);
  EXPECT_EQ(links[1].a, 9u);  // provider first
  EXPECT_EQ(links[1].b, 2u);
  EXPECT_TRUE(links[1].p2c);
}

TEST(RelationshipDataset, SerialOneRoundTrip) {
  RelationshipDataset d;
  d.set_p2c(1299, 64496);
  d.set_p2p(1299, 3356);
  std::ostringstream out;
  d.save(out);
  RelationshipDataset loaded;
  std::istringstream in(out.str());
  loaded.load(in);
  EXPECT_EQ(loaded.link_count(), 2u);
  EXPECT_EQ(loaded.relationship(64496, 1299), RelFrom::kProvider);
  EXPECT_EQ(loaded.relationship(1299, 3356), RelFrom::kPeer);
}

TEST(RelationshipDataset, LoadRealWorldishFormat) {
  RelationshipDataset d;
  std::istringstream in(
      "# source: CAIDA serial-1\n"
      "1|11537|0\n"
      "1299|2914|0\n"
      "3356|31133|-1\n");
  d.load(in);
  EXPECT_EQ(d.relationship(3356, 31133), RelFrom::kCustomer);
  EXPECT_EQ(d.relationship(1299, 2914), RelFrom::kPeer);
}

TEST(RelationshipDataset, LoadRejectsMalformed) {
  for (const char* bad : {"1|2\n", "x|2|0\n", "1|2|7\n", "1|2|\n"}) {
    RelationshipDataset d;
    std::istringstream in(bad);
    EXPECT_THROW(d.load(in), util::ParseError) << bad;
  }
}

TEST(RelationshipDataset, AgreementWith) {
  RelationshipDataset truth;
  truth.set_p2c(1, 2);
  truth.set_p2p(2, 3);
  truth.set_p2c(3, 4);

  RelationshipDataset inferred;
  inferred.set_p2c(1, 2);   // correct
  inferred.set_p2c(2, 3);   // wrong type
  inferred.set_p2p(9, 10);  // unknown to truth; ignored
  EXPECT_DOUBLE_EQ(inferred.agreement_with(truth), 0.5);
}

TEST(RelationshipDataset, AgreementEmptyIsZero) {
  RelationshipDataset a, b;
  EXPECT_DOUBLE_EQ(a.agreement_with(b), 0.0);
}

}  // namespace
}  // namespace bgpintent::rel
