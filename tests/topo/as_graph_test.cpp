#include "topo/as_graph.hpp"

#include <gtest/gtest.h>

namespace bgpintent::topo {
namespace {

AsNode node(Asn asn, Tier tier = Tier::kStub) {
  AsNode n;
  n.asn = asn;
  n.tier = tier;
  n.presence = {Location{0, 0}};
  return n;
}

AsGraph triangle() {
  AsGraph g;
  g.add_as(node(1, Tier::kTier1));
  g.add_as(node(2, Tier::kTier2));
  g.add_as(node(3, Tier::kStub));
  g.add_edge(1, 2, Relationship::kP2C);  // 1 provides 2
  g.add_edge(2, 3, Relationship::kP2C);  // 2 provides 3
  g.add_edge(1, 3, Relationship::kP2P);
  return g;
}

TEST(AsGraph, AddAndFind) {
  AsGraph g;
  g.add_as(node(42));
  EXPECT_TRUE(g.contains(42));
  EXPECT_FALSE(g.contains(43));
  ASSERT_NE(g.find(42), nullptr);
  EXPECT_EQ(g.find(42)->asn, 42u);
  EXPECT_EQ(g.find(43), nullptr);
  EXPECT_EQ(g.as_count(), 1u);
}

TEST(AsGraph, DuplicateAsThrows) {
  AsGraph g;
  g.add_as(node(42));
  EXPECT_THROW(g.add_as(node(42)), std::invalid_argument);
}

TEST(AsGraph, EdgePerspectives) {
  const AsGraph g = triangle();
  EXPECT_EQ(g.relationship(1, 2), RelFrom::kCustomer);  // 2 is 1's customer
  EXPECT_EQ(g.relationship(2, 1), RelFrom::kProvider);
  EXPECT_EQ(g.relationship(1, 3), RelFrom::kPeer);
  EXPECT_EQ(g.relationship(3, 1), RelFrom::kPeer);
  EXPECT_FALSE(g.relationship(3, 99));
}

TEST(AsGraph, SiblingEdge) {
  AsGraph g;
  g.add_as(node(1));
  g.add_as(node(2));
  g.add_edge(1, 2, Relationship::kS2S);
  EXPECT_EQ(g.relationship(1, 2), RelFrom::kSibling);
  EXPECT_EQ(g.relationship(2, 1), RelFrom::kSibling);
}

TEST(AsGraph, EdgeValidation) {
  AsGraph g;
  g.add_as(node(1));
  g.add_as(node(2));
  EXPECT_THROW(g.add_edge(1, 1, Relationship::kP2P), std::invalid_argument);
  EXPECT_THROW(g.add_edge(1, 9, Relationship::kP2P), std::invalid_argument);
  g.add_edge(1, 2, Relationship::kP2P);
  EXPECT_THROW(g.add_edge(1, 2, Relationship::kP2C), std::invalid_argument);
  EXPECT_THROW(g.add_edge(2, 1, Relationship::kP2C), std::invalid_argument);
}

TEST(AsGraph, NeighborsWithFilter) {
  const AsGraph g = triangle();
  EXPECT_EQ(g.neighbors_with(1, RelFrom::kCustomer), (std::vector<Asn>{2}));
  EXPECT_EQ(g.neighbors_with(1, RelFrom::kPeer), (std::vector<Asn>{3}));
  EXPECT_EQ(g.neighbors_with(3, RelFrom::kProvider), (std::vector<Asn>{2}));
  EXPECT_TRUE(g.neighbors_with(3, RelFrom::kCustomer).empty());
}

TEST(AsGraph, AllAsnsSorted) {
  const AsGraph g = triangle();
  EXPECT_EQ(g.all_asns(), (std::vector<Asn>{1, 2, 3}));
}

TEST(AsGraph, AllEdgesReportedOnce) {
  const AsGraph g = triangle();
  const auto edges = g.all_edges();
  EXPECT_EQ(edges.size(), 3u);
  EXPECT_EQ(g.edge_count(), 3u);
  std::size_t p2c = 0, p2p = 0;
  for (const auto& e : edges) {
    if (e.rel == Relationship::kP2C) {
      ++p2c;
      // Oriented provider -> customer.
      EXPECT_EQ(g.relationship(e.a, e.b), RelFrom::kCustomer);
    } else {
      ++p2p;
    }
  }
  EXPECT_EQ(p2c, 2u);
  EXPECT_EQ(p2p, 1u);
}

TEST(AsGraph, CustomerCone) {
  AsGraph g;
  for (Asn a = 1; a <= 5; ++a) g.add_as(node(a));
  g.add_edge(1, 2, Relationship::kP2C);
  g.add_edge(2, 3, Relationship::kP2C);
  g.add_edge(2, 4, Relationship::kP2C);
  g.add_edge(1, 5, Relationship::kP2P);
  EXPECT_EQ(g.customer_cone(1), (std::vector<Asn>{2, 3, 4}));
  EXPECT_EQ(g.customer_cone(2), (std::vector<Asn>{3, 4}));
  EXPECT_TRUE(g.customer_cone(3).empty());
  EXPECT_TRUE(g.customer_cone(5).empty());
}

TEST(AsGraph, ViaRouteServerRecorded) {
  AsGraph g;
  g.add_as(node(1));
  g.add_as(node(2));
  g.add_edge(1, 2, Relationship::kP2P, Location{1, 4}, Asn{60000});
  const auto& adj = g.neighbors(1);
  ASSERT_EQ(adj.size(), 1u);
  EXPECT_EQ(adj[0].via_route_server, 60000u);
  EXPECT_EQ(adj[0].where, (Location{1, 4}));
}

TEST(AsGraph, NeighborsOfUnknownAsnIsEmpty) {
  const AsGraph g = triangle();
  EXPECT_TRUE(g.neighbors(999).empty());
}

TEST(RelFrom, InvertIsSymmetric) {
  EXPECT_EQ(invert(RelFrom::kProvider), RelFrom::kCustomer);
  EXPECT_EQ(invert(RelFrom::kCustomer), RelFrom::kProvider);
  EXPECT_EQ(invert(RelFrom::kPeer), RelFrom::kPeer);
  EXPECT_EQ(invert(RelFrom::kSibling), RelFrom::kSibling);
}

TEST(AsNode, PresentInRegion) {
  AsNode n = node(1);
  n.presence = {Location{2, 0}, Location{5, 3}};
  EXPECT_TRUE(n.present_in_region(2));
  EXPECT_TRUE(n.present_in_region(5));
  EXPECT_FALSE(n.present_in_region(7));
}

TEST(AsIndex, OrdinalsAreDenseAndAscending) {
  const AsGraph g = triangle();
  const AsIndex index(g);
  ASSERT_EQ(index.size(), 3u);
  EXPECT_EQ(index.asn_at(0), 1u);
  EXPECT_EQ(index.asn_at(1), 2u);
  EXPECT_EQ(index.asn_at(2), 3u);
  EXPECT_EQ(index.find(1), 0u);
  EXPECT_EQ(index.find(3), 2u);
  EXPECT_EQ(index.find(99), AsIndex::kInvalid);
}

TEST(AsIndex, RoundTripsEveryAsn) {
  AsGraph g;
  for (Asn asn : {7u, 100000u, 42u, 65536u}) g.add_as(node(asn));
  const AsIndex index(g);
  for (std::uint32_t i = 0; i < index.size(); ++i)
    EXPECT_EQ(index.find(index.asn_at(i)), i);
  // all_asns() is ascending, so ordinals follow ASN order.
  EXPECT_EQ(index.asn_at(0), 7u);
  EXPECT_EQ(index.asn_at(3), 100000u);
}

TEST(ToString, TierAndRelationship) {
  EXPECT_EQ(to_string(Tier::kTier1), "tier1");
  EXPECT_EQ(to_string(Tier::kRouteServer), "route_server");
  EXPECT_EQ(to_string(Relationship::kP2C), "p2c");
  EXPECT_EQ(to_string(Relationship::kS2S), "s2s");
}

}  // namespace
}  // namespace bgpintent::topo
