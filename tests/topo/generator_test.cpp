#include "topo/generator.hpp"

#include <gtest/gtest.h>

#include <unordered_set>
#include <utility>
#include <vector>

namespace bgpintent::topo {
namespace {

TopologyConfig small_config(std::uint64_t seed = 7) {
  TopologyConfig cfg;
  cfg.seed = seed;
  cfg.tier1_count = 5;
  cfg.tier2_count = 20;
  cfg.stub_count = 60;
  return cfg;
}

TEST(Generator, ProducesRequestedCounts) {
  const Topology topo = generate_topology(small_config());
  EXPECT_EQ(topo.asns_with_tier(Tier::kTier1).size(), 5u);
  EXPECT_EQ(topo.asns_with_tier(Tier::kTier2).size(), 20u);
  EXPECT_EQ(topo.asns_with_tier(Tier::kStub).size(), 60u);
  EXPECT_EQ(topo.asns_with_tier(Tier::kRouteServer).size(),
            static_cast<std::size_t>(topo.config.region_count));
}

TEST(Generator, DeterministicForSeed) {
  const Topology a = generate_topology(small_config(11));
  const Topology b = generate_topology(small_config(11));
  EXPECT_EQ(a.graph.as_count(), b.graph.as_count());
  EXPECT_EQ(a.graph.edge_count(), b.graph.edge_count());
  const auto ea = a.graph.all_edges();
  const auto eb = b.graph.all_edges();
  ASSERT_EQ(ea.size(), eb.size());
  for (std::size_t i = 0; i < ea.size(); ++i) {
    EXPECT_EQ(ea[i].a, eb[i].a);
    EXPECT_EQ(ea[i].b, eb[i].b);
    EXPECT_EQ(ea[i].rel, eb[i].rel);
  }
}

TEST(Generator, DifferentSeedsDiffer) {
  const Topology a = generate_topology(small_config(1));
  const Topology b = generate_topology(small_config(2));
  const auto ea = a.graph.all_edges();
  const auto eb = b.graph.all_edges();
  bool differs = ea.size() != eb.size();
  for (std::size_t i = 0; !differs && i < ea.size(); ++i)
    differs = ea[i].a != eb[i].a || ea[i].b != eb[i].b;
  EXPECT_TRUE(differs);
}

TEST(Generator, Tier1Clique) {
  const Topology topo = generate_topology(small_config());
  const auto tier1s = topo.asns_with_tier(Tier::kTier1);
  for (std::size_t i = 0; i < tier1s.size(); ++i)
    for (std::size_t j = i + 1; j < tier1s.size(); ++j)
      EXPECT_EQ(topo.graph.relationship(tier1s[i], tier1s[j]), RelFrom::kPeer);
}

TEST(Generator, EveryTier2HasTier1Provider) {
  const Topology topo = generate_topology(small_config());
  for (Asn asn : topo.asns_with_tier(Tier::kTier2)) {
    const auto providers = topo.graph.neighbors_with(asn, RelFrom::kProvider);
    bool has_tier1 = false;
    for (Asn p : providers)
      if (topo.graph.find(p)->tier == Tier::kTier1) has_tier1 = true;
    EXPECT_TRUE(has_tier1) << "tier2 AS " << asn;
  }
}

TEST(Generator, EveryStubHasProvider) {
  const Topology topo = generate_topology(small_config());
  for (Asn asn : topo.asns_with_tier(Tier::kStub))
    EXPECT_FALSE(topo.graph.neighbors_with(asn, RelFrom::kProvider).empty())
        << "stub AS " << asn;
}

TEST(Generator, StubsDoNotProvideTransit) {
  const Topology topo = generate_topology(small_config());
  for (Asn asn : topo.asns_with_tier(Tier::kStub))
    EXPECT_TRUE(topo.graph.neighbors_with(asn, RelFrom::kCustomer).empty())
        << "stub AS " << asn;
}

TEST(Generator, SiblingOrgsExistAndShareOrg) {
  TopologyConfig cfg = small_config();
  cfg.sibling_fraction = 0.4;
  const Topology topo = generate_topology(cfg);
  std::size_t multi_as_orgs = 0;
  for (Asn asn : topo.asns_with_tier(Tier::kTier2))
    if (topo.orgs.siblings(asn).size() > 1) ++multi_as_orgs;
  EXPECT_GT(multi_as_orgs, 0u);
}

TEST(Generator, RouteServersHaveMembersButNoGraphEdges) {
  const Topology topo = generate_topology(small_config());
  ASSERT_FALSE(topo.ixps.empty());
  for (const Ixp& ixp : topo.ixps) {
    EXPECT_TRUE(topo.graph.contains(ixp.route_server));
    EXPECT_EQ(topo.graph.find(ixp.route_server)->tier, Tier::kRouteServer);
    // Transparent: the route server has no adjacency of its own.
    EXPECT_TRUE(topo.graph.neighbors(ixp.route_server).empty());
  }
}

TEST(Generator, IxpMemberEdgesAreTaggedWithRouteServer) {
  TopologyConfig cfg = small_config();
  cfg.ixp_member_fraction = 0.5;
  const Topology topo = generate_topology(cfg);
  std::size_t via_rs = 0;
  for (const auto& e : topo.graph.all_edges())
    if (e.via_route_server) {
      ++via_rs;
      EXPECT_EQ(e.rel, Relationship::kP2P);
      // The tag names a real route server of some IXP.
      bool known = false;
      for (const Ixp& ixp : topo.ixps)
        if (ixp.route_server == *e.via_route_server) known = true;
      EXPECT_TRUE(known);
    }
  EXPECT_GT(via_rs, 0u);
}

TEST(Generator, AsnRangesAreDisjoint) {
  const Topology topo = generate_topology(small_config());
  std::unordered_set<Asn> seen;
  for (Asn asn : topo.graph.all_asns()) {
    EXPECT_TRUE(seen.insert(asn).second);
    EXPECT_LE(asn, 0xffffu);  // all 16-bit (regular-community alphas)
  }
}

TEST(Generator, EveryAsHasPresence) {
  const Topology topo = generate_topology(small_config());
  for (Asn asn : topo.graph.all_asns()) {
    const AsNode* node = topo.graph.find(asn);
    ASSERT_FALSE(node->presence.empty()) << asn;
    for (const Location& loc : node->presence) {
      EXPECT_LT(loc.region, topo.config.region_count);
      EXPECT_LT(loc.city, topo.config.cities_per_region);
    }
  }
}

TEST(Generator, StripFractionRoughlyHonored) {
  TopologyConfig cfg = small_config();
  cfg.stub_count = 800;
  cfg.strip_fraction = 0.05;
  const Topology topo = generate_topology(cfg);
  std::size_t strippers = 0;
  for (Asn asn : topo.graph.all_asns())
    if (topo.graph.find(asn)->strips_communities) ++strippers;
  // ~5% of ~820 non-tier1 nodes; allow generous slack.
  EXPECT_GT(strippers, 10u);
  EXPECT_LT(strippers, 100u);
}

TEST(ScalePreset, LadderGrowsMonotonically) {
  std::size_t prev = 0;
  for (const ScalePreset preset : all_scale_presets()) {
    const TopologyConfig cfg = preset_config(preset);
    const std::size_t total = cfg.tier1_count + cfg.tier2_count +
                              cfg.stub_count +
                              static_cast<std::size_t>(cfg.region_count) *
                                  cfg.ixps_per_region;
    EXPECT_GT(total, prev) << preset_name(preset);
    prev = total;
  }
}

TEST(ScalePreset, TinyMatchesDefaults) {
  const TopologyConfig tiny = preset_config(ScalePreset::kTiny);
  const TopologyConfig defaults;
  EXPECT_EQ(tiny.tier1_count, defaults.tier1_count);
  EXPECT_EQ(tiny.tier2_count, defaults.tier2_count);
  EXPECT_EQ(tiny.stub_count, defaults.stub_count);
  EXPECT_EQ(tiny.stub_base, defaults.stub_base);
}

TEST(ScalePreset, InternetReachesPaperScale) {
  const TopologyConfig cfg = preset_config(ScalePreset::kInternet);
  EXPECT_GE(cfg.tier1_count + cfg.tier2_count + cfg.stub_count, 75000u);
  // The stub range crosses the 16-bit ASN boundary by design (32-bit-ASN
  // holders without classic-community alphas).
  EXPECT_GT(cfg.stub_base + cfg.stub_count, 0x10000u);
}

TEST(ScalePreset, AsnRangesNeverOverlap) {
  for (const ScalePreset preset : all_scale_presets()) {
    const TopologyConfig cfg = preset_config(preset);
    // [base, base+count) intervals for each tier must be pairwise disjoint.
    const std::vector<std::pair<Asn, Asn>> ranges = {
        {cfg.tier1_base, cfg.tier1_base + cfg.tier1_count},
        {cfg.tier2_base, cfg.tier2_base + cfg.tier2_count},
        {cfg.stub_base, cfg.stub_base + cfg.stub_count},
        {cfg.route_server_base,
         cfg.route_server_base +
             static_cast<Asn>(cfg.region_count) * cfg.ixps_per_region}};
    for (std::size_t i = 0; i < ranges.size(); ++i)
      for (std::size_t j = i + 1; j < ranges.size(); ++j) {
        const bool disjoint = ranges[i].second <= ranges[j].first ||
                              ranges[j].second <= ranges[i].first;
        EXPECT_TRUE(disjoint) << preset_name(preset) << " ranges " << i
                              << " and " << j;
      }
  }
}

TEST(ScalePreset, SmallPresetGeneratesRequestedShape) {
  TopologyConfig cfg = preset_config(ScalePreset::kSmall);
  cfg.seed = 5;
  const Topology topo = generate_topology(cfg);
  EXPECT_EQ(topo.asns_with_tier(Tier::kTier1).size(), cfg.tier1_count);
  EXPECT_EQ(topo.asns_with_tier(Tier::kTier2).size(), cfg.tier2_count);
  EXPECT_EQ(topo.asns_with_tier(Tier::kStub).size(), cfg.stub_count);
  // Mean stub degree stays Internet-like (roughly 1.5..4 providers).
  std::size_t stub_edges = 0;
  const auto stubs = topo.asns_with_tier(Tier::kStub);
  for (Asn asn : stubs)
    stub_edges += topo.graph.neighbors_with(asn, RelFrom::kProvider).size();
  const double mean = static_cast<double>(stub_edges) /
                      static_cast<double>(stubs.size());
  EXPECT_GT(mean, 1.4);
  EXPECT_LT(mean, 4.0);
}

TEST(ScalePreset, NamesAreStable) {
  EXPECT_STREQ(preset_name(ScalePreset::kTiny), "tiny");
  EXPECT_STREQ(preset_name(ScalePreset::kSmall), "small");
  EXPECT_STREQ(preset_name(ScalePreset::kMedium), "medium");
  EXPECT_STREQ(preset_name(ScalePreset::kLarge), "large");
  EXPECT_STREQ(preset_name(ScalePreset::kInternet), "internet");
}

TEST(Generator, Tier1sNeverStripCommunities) {
  TopologyConfig cfg = small_config();
  cfg.strip_fraction = 1.0;  // force everyone else to strip
  const Topology topo = generate_topology(cfg);
  for (Asn asn : topo.asns_with_tier(Tier::kTier1))
    EXPECT_FALSE(topo.graph.find(asn)->strips_communities);
}

}  // namespace
}  // namespace bgpintent::topo
