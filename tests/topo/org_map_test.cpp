#include "topo/org_map.hpp"

#include <gtest/gtest.h>

namespace bgpintent::topo {
namespace {

TEST(OrgMap, AssignAndQuery) {
  OrgMap m;
  m.assign(1299, 7);
  m.assign(1300, 7);
  m.assign(3356, 8);
  EXPECT_EQ(m.org_of(1299), 7u);
  EXPECT_EQ(m.org_of(3356), 8u);
  EXPECT_FALSE(m.org_of(701));
  EXPECT_EQ(m.asn_count(), 3u);
  EXPECT_EQ(m.org_count(), 2u);
}

TEST(OrgMap, SiblingsSorted) {
  OrgMap m;
  m.assign(20, 1);
  m.assign(10, 1);
  m.assign(30, 1);
  EXPECT_EQ(m.siblings(20), (std::vector<Asn>{10, 20, 30}));
}

TEST(OrgMap, UnmappedAsnIsItsOwnSibling) {
  OrgMap m;
  EXPECT_EQ(m.siblings(42), (std::vector<Asn>{42}));
  EXPECT_TRUE(m.are_siblings(42, 42));
  EXPECT_FALSE(m.are_siblings(42, 43));
}

TEST(OrgMap, AreSiblings) {
  OrgMap m;
  m.assign(1, 100);
  m.assign(2, 100);
  m.assign(3, 200);
  EXPECT_TRUE(m.are_siblings(1, 2));
  EXPECT_TRUE(m.are_siblings(2, 1));
  EXPECT_FALSE(m.are_siblings(1, 3));
  EXPECT_TRUE(m.are_siblings(3, 3));
  EXPECT_FALSE(m.are_siblings(1, 999));  // unmapped partner
}

TEST(OrgMap, ReassignMovesAsn) {
  OrgMap m;
  m.assign(1, 100);
  m.assign(2, 100);
  m.assign(1, 200);
  EXPECT_EQ(m.org_of(1), 200u);
  EXPECT_FALSE(m.are_siblings(1, 2));
  EXPECT_EQ(m.siblings(2), (std::vector<Asn>{2}));
  EXPECT_EQ(m.siblings(1), (std::vector<Asn>{1}));
}

TEST(OrgMap, ReassignCleansEmptyOrg) {
  OrgMap m;
  m.assign(1, 100);
  m.assign(1, 200);
  EXPECT_EQ(m.org_count(), 1u);
}

}  // namespace
}  // namespace bgpintent::topo
