#include "bgp/prefix_trie.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace bgpintent::bgp {
namespace {

Prefix pfx(const char* text) { return *Prefix::parse(text); }

constexpr std::uint32_t ip(unsigned a, unsigned b, unsigned c, unsigned d) {
  return a << 24 | b << 16 | c << 8 | d;
}

TEST(PrefixTrie, InsertFindErase) {
  PrefixTrie<int> trie;
  EXPECT_TRUE(trie.empty());
  EXPECT_TRUE(trie.insert(pfx("10.0.0.0/8"), 1));
  EXPECT_TRUE(trie.insert(pfx("10.1.0.0/16"), 2));
  EXPECT_FALSE(trie.insert(pfx("10.0.0.0/8"), 3));  // overwrite
  EXPECT_EQ(trie.size(), 2u);
  ASSERT_NE(trie.find(pfx("10.0.0.0/8")), nullptr);
  EXPECT_EQ(*trie.find(pfx("10.0.0.0/8")), 3);
  EXPECT_EQ(trie.find(pfx("10.2.0.0/16")), nullptr);
  EXPECT_TRUE(trie.erase(pfx("10.0.0.0/8")));
  EXPECT_FALSE(trie.erase(pfx("10.0.0.0/8")));
  EXPECT_EQ(trie.size(), 1u);
  EXPECT_EQ(trie.find(pfx("10.0.0.0/8")), nullptr);
}

TEST(PrefixTrie, ExactMatchRequiresSameLength) {
  PrefixTrie<int> trie;
  trie.insert(pfx("10.0.0.0/8"), 1);
  EXPECT_EQ(trie.find(pfx("10.0.0.0/16")), nullptr);
  EXPECT_EQ(trie.find(pfx("10.0.0.0/7")), nullptr);
}

TEST(PrefixTrie, LongestMatch) {
  PrefixTrie<int> trie;
  trie.insert(pfx("0.0.0.0/0"), 0);
  trie.insert(pfx("10.0.0.0/8"), 8);
  trie.insert(pfx("10.1.0.0/16"), 16);
  trie.insert(pfx("10.1.2.0/24"), 24);
  EXPECT_EQ(*trie.longest_match(ip(10, 1, 2, 3)), 24);
  EXPECT_EQ(*trie.longest_match(ip(10, 1, 3, 1)), 16);
  EXPECT_EQ(*trie.longest_match(ip(10, 9, 9, 9)), 8);
  EXPECT_EQ(*trie.longest_match(ip(192, 0, 2, 1)), 0);
}

TEST(PrefixTrie, LongestMatchWithoutDefaultRoute) {
  PrefixTrie<int> trie;
  trie.insert(pfx("10.0.0.0/8"), 8);
  EXPECT_EQ(trie.longest_match(ip(192, 0, 2, 1)), nullptr);
  EXPECT_NE(trie.longest_match(ip(10, 0, 0, 1)), nullptr);
}

TEST(PrefixTrie, HostRouteMatch) {
  PrefixTrie<int> trie;
  trie.insert(pfx("203.0.113.7/32"), 32);
  EXPECT_EQ(*trie.longest_match(ip(203, 0, 113, 7)), 32);
  EXPECT_EQ(trie.longest_match(ip(203, 0, 113, 8)), nullptr);
}

TEST(PrefixTrie, Covering) {
  PrefixTrie<int> trie;
  trie.insert(pfx("10.0.0.0/8"), 1);
  trie.insert(pfx("10.1.0.0/16"), 2);
  EXPECT_EQ(trie.covering(pfx("10.1.2.0/24")), pfx("10.1.0.0/16"));
  EXPECT_EQ(trie.covering(pfx("10.2.0.0/16")), pfx("10.0.0.0/8"));
  EXPECT_EQ(trie.covering(pfx("10.1.0.0/16")), pfx("10.1.0.0/16"));
  EXPECT_FALSE(trie.covering(pfx("192.0.2.0/24")));
}

TEST(PrefixTrie, CoveredBy) {
  PrefixTrie<int> trie;
  trie.insert(pfx("10.0.0.0/8"), 1);
  trie.insert(pfx("10.1.0.0/16"), 2);
  trie.insert(pfx("10.1.2.0/24"), 3);
  trie.insert(pfx("192.0.2.0/24"), 4);
  const auto covered = trie.covered_by(pfx("10.0.0.0/8"));
  ASSERT_EQ(covered.size(), 3u);
  EXPECT_EQ(covered[0], pfx("10.0.0.0/8"));
  EXPECT_EQ(covered[1], pfx("10.1.0.0/16"));
  EXPECT_EQ(covered[2], pfx("10.1.2.0/24"));
  EXPECT_TRUE(trie.covered_by(pfx("172.16.0.0/12")).empty());
}

TEST(PrefixTrie, DefaultRouteValue) {
  PrefixTrie<int> trie;
  trie.insert(pfx("0.0.0.0/0"), 42);
  EXPECT_EQ(*trie.find(pfx("0.0.0.0/0")), 42);
  EXPECT_EQ(*trie.longest_match(0), 42);
  EXPECT_EQ(trie.covering(pfx("8.8.8.0/24")), pfx("0.0.0.0/0"));
}

TEST(PrefixTrie, RandomizedConsistencyWithLinearScan) {
  util::Rng rng(99);
  PrefixTrie<std::uint32_t> trie;
  std::vector<Prefix> stored;
  for (int i = 0; i < 500; ++i) {
    const auto addr = static_cast<std::uint32_t>(rng.uniform(0, 0xffffffff));
    const auto len = static_cast<std::uint8_t>(rng.uniform(8, 28));
    const Prefix prefix(addr, len);
    if (trie.insert(prefix, prefix.address())) stored.push_back(prefix);
  }
  for (int i = 0; i < 2000; ++i) {
    const auto probe = static_cast<std::uint32_t>(rng.uniform(0, 0xffffffff));
    // Linear-scan longest match.
    const Prefix* expected = nullptr;
    for (const Prefix& prefix : stored)
      if (prefix.contains(probe) &&
          (expected == nullptr || prefix.length() > expected->length()))
        expected = &prefix;
    const std::uint32_t* got = trie.longest_match(probe);
    if (expected == nullptr) {
      EXPECT_EQ(got, nullptr) << probe;
    } else {
      ASSERT_NE(got, nullptr) << probe;
      EXPECT_EQ(*got, expected->address());
    }
  }
}

}  // namespace
}  // namespace bgpintent::bgp
