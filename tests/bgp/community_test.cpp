#include "bgp/community.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

namespace bgpintent::bgp {
namespace {

TEST(Community, PackingRoundTrip) {
  const Community c(1299, 2569);
  EXPECT_EQ(c.alpha(), 1299);
  EXPECT_EQ(c.beta(), 2569);
  EXPECT_EQ(c.owner(), 1299u);
  EXPECT_EQ(c.wire(), (1299u << 16) | 2569u);
  EXPECT_EQ(Community::from_wire(c.wire()), c);
}

TEST(Community, BoundaryValues) {
  const Community lo(0, 0);
  EXPECT_EQ(lo.alpha(), 0);
  EXPECT_EQ(lo.beta(), 0);
  const Community hi(0xffff, 0xffff);
  EXPECT_EQ(hi.alpha(), 0xffff);
  EXPECT_EQ(hi.beta(), 0xffff);
  EXPECT_EQ(hi.wire(), 0xffffffffu);
}

TEST(Community, Ordering) {
  EXPECT_LT(Community(1299, 100), Community(1299, 200));
  EXPECT_LT(Community(1299, 65535), Community(1300, 0));
  EXPECT_EQ(Community(701, 7), Community(701, 7));
}

TEST(Community, ToString) {
  EXPECT_EQ(Community(1299, 2569).to_string(), "1299:2569");
  EXPECT_EQ(Community(0, 0).to_string(), "0:0");
}

TEST(Community, ParseValid) {
  EXPECT_EQ(Community::parse("1299:2569"), Community(1299, 2569));
  EXPECT_EQ(Community::parse(" 701:120 "), Community(701, 120));
  EXPECT_EQ(Community::parse("65535:666"), Community(65535, 666));
}

TEST(Community, ParseInvalid) {
  EXPECT_FALSE(Community::parse("1299"));
  EXPECT_FALSE(Community::parse("1299:2569:1"));
  EXPECT_FALSE(Community::parse("65536:1"));
  EXPECT_FALSE(Community::parse("1:65536"));
  EXPECT_FALSE(Community::parse("a:b"));
  EXPECT_FALSE(Community::parse(""));
  EXPECT_FALSE(Community::parse(":"));
  EXPECT_FALSE(Community::parse("1299:-1"));
}

TEST(Community, WellKnownConstants) {
  EXPECT_EQ(kNoExport.to_string(), "65535:65281");
  EXPECT_EQ(kNoAdvertise.to_string(), "65535:65282");
  EXPECT_EQ(kBlackhole.to_string(), "65535:666");
  EXPECT_EQ(kGracefulShutdown.to_string(), "65535:0");
  EXPECT_TRUE(kNoExport.is_well_known());
  EXPECT_TRUE(kNoExport.is_reserved_range());
  EXPECT_FALSE(Community(1299, 1).is_well_known());
}

TEST(Community, ReservedRange) {
  EXPECT_TRUE(Community(0, 5).is_reserved_range());
  EXPECT_FALSE(Community(1, 5).is_reserved_range());
}

TEST(Community, HashDistinguishes) {
  std::unordered_set<Community> set;
  for (std::uint16_t beta = 0; beta < 1000; ++beta)
    set.insert(Community(1299, beta));
  EXPECT_EQ(set.size(), 1000u);
  EXPECT_TRUE(set.contains(Community(1299, 999)));
  EXPECT_FALSE(set.contains(Community(1299, 1000)));
}

TEST(LargeCommunity, FieldsAndOrdering) {
  const LargeCommunity c(212483, 1, 42);
  EXPECT_EQ(c.alpha(), 212483u);
  EXPECT_EQ(c.beta(), 1u);
  EXPECT_EQ(c.gamma(), 42u);
  EXPECT_EQ(c.owner(), 212483u);
  EXPECT_LT(LargeCommunity(1, 2, 3), LargeCommunity(1, 2, 4));
  EXPECT_LT(LargeCommunity(1, 2, 3), LargeCommunity(2, 0, 0));
}

TEST(LargeCommunity, StringRoundTrip) {
  const LargeCommunity c(4200000001U, 65536, 7);
  EXPECT_EQ(c.to_string(), "4200000001:65536:7");
  EXPECT_EQ(LargeCommunity::parse(c.to_string()), c);
}

TEST(LargeCommunity, ParseInvalid) {
  EXPECT_FALSE(LargeCommunity::parse("1:2"));
  EXPECT_FALSE(LargeCommunity::parse("1:2:3:4"));
  EXPECT_FALSE(LargeCommunity::parse("1:x:3"));
  EXPECT_FALSE(LargeCommunity::parse("4294967296:0:0"));
}

TEST(LargeCommunity, HashWorksInSets) {
  std::unordered_set<LargeCommunity> set;
  set.insert(LargeCommunity(1, 2, 3));
  set.insert(LargeCommunity(1, 2, 3));
  set.insert(LargeCommunity(1, 2, 4));
  EXPECT_EQ(set.size(), 2u);
}

}  // namespace
}  // namespace bgpintent::bgp
