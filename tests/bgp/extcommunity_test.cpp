#include "bgp/extcommunity.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

namespace bgpintent::bgp {
namespace {

TEST(ExtCommunity, RouteTargetFields) {
  const auto c = ExtCommunity::route_target(64500, 100);
  EXPECT_EQ(c.base_type(), ExtCommunity::kTypeTwoOctetAs);
  EXPECT_EQ(c.subtype(), ExtCommunity::kSubtypeRouteTarget);
  EXPECT_EQ(c.as2(), 64500);
  EXPECT_EQ(c.local4(), 100u);
  EXPECT_TRUE(c.is_transitive());
}

TEST(ExtCommunity, RouteOriginFields) {
  const auto c = ExtCommunity::route_origin(3356, 7);
  EXPECT_EQ(c.subtype(), ExtCommunity::kSubtypeRouteOrigin);
  EXPECT_EQ(c.as2(), 3356);
  EXPECT_EQ(c.local4(), 7u);
}

TEST(ExtCommunity, FourOctetRouteTarget) {
  const auto c = ExtCommunity::route_target4(212483, 9);
  EXPECT_EQ(c.base_type(), ExtCommunity::kTypeFourOctetAs);
  EXPECT_EQ(c.as4(), 212483u);
  EXPECT_EQ(c.local2(), 9);
}

TEST(ExtCommunity, NonTransitiveBit) {
  const auto c = ExtCommunity::from_wire(
      static_cast<std::uint64_t>(ExtCommunity::kTypeTwoOctetAs |
                                 ExtCommunity::kNonTransitiveBit)
      << 56);
  EXPECT_FALSE(c.is_transitive());
  EXPECT_EQ(c.base_type(), ExtCommunity::kTypeTwoOctetAs);
}

TEST(ExtCommunity, ToStringForms) {
  EXPECT_EQ(ExtCommunity::route_target(64500, 100).to_string(),
            "rt:64500:100");
  EXPECT_EQ(ExtCommunity::route_origin(3356, 7).to_string(), "ro:3356:7");
  EXPECT_EQ(ExtCommunity::route_target4(212483, 9).to_string(),
            "rt4:212483:9");
  const auto opaque = ExtCommunity::from_wire(0x03000000deadbeefULL);
  EXPECT_EQ(opaque.to_string(), "ext:03000000deadbeef");
}

TEST(ExtCommunity, ParseRoundTrip) {
  for (const char* text :
       {"rt:64500:100", "ro:3356:7", "rt4:212483:9", "ext:03000000deadbeef"}) {
    const auto c = ExtCommunity::parse(text);
    ASSERT_TRUE(c) << text;
    EXPECT_EQ(c->to_string(), text);
  }
}

TEST(ExtCommunity, ParseRejectsMalformed) {
  EXPECT_FALSE(ExtCommunity::parse("rt:70000:1"));   // asn > 16 bit
  EXPECT_FALSE(ExtCommunity::parse("rt4:1:70000"));  // value > 16 bit
  EXPECT_FALSE(ExtCommunity::parse("rt:1"));
  EXPECT_FALSE(ExtCommunity::parse("ext:123"));      // wrong hex width
  EXPECT_FALSE(ExtCommunity::parse("ext:zz00000000000000"));
  EXPECT_FALSE(ExtCommunity::parse("bogus:1:2"));
  EXPECT_FALSE(ExtCommunity::parse(""));
}

TEST(ExtCommunity, OrderingAndHash) {
  const auto a = ExtCommunity::route_target(1, 1);
  const auto b = ExtCommunity::route_target(1, 2);
  EXPECT_LT(a, b);
  std::unordered_set<ExtCommunity> set{a, b, a};
  EXPECT_EQ(set.size(), 2u);
}

TEST(ExtCommunity, WireRoundTrip) {
  const auto c = ExtCommunity::route_target(64500, 12345);
  EXPECT_EQ(ExtCommunity::from_wire(c.wire()), c);
}

}  // namespace
}  // namespace bgpintent::bgp
