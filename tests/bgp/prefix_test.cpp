#include "bgp/prefix.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

namespace bgpintent::bgp {
namespace {

constexpr std::uint32_t ip(unsigned a, unsigned b, unsigned c, unsigned d) {
  return a << 24 | b << 16 | c << 8 | d;
}

TEST(Prefix, CanonicalizesHostBits) {
  const Prefix p(ip(192, 0, 2, 77), 24);
  EXPECT_EQ(p.address(), ip(192, 0, 2, 0));
  EXPECT_EQ(p.length(), 24);
}

TEST(Prefix, MaskValues) {
  EXPECT_EQ(Prefix(0, 0).mask(), 0u);
  EXPECT_EQ(Prefix(0, 8).mask(), 0xff000000u);
  EXPECT_EQ(Prefix(0, 24).mask(), 0xffffff00u);
  EXPECT_EQ(Prefix(0, 32).mask(), 0xffffffffu);
}

TEST(Prefix, LengthClamped) {
  const Prefix p(ip(10, 0, 0, 0), 40);
  EXPECT_EQ(p.length(), 32);
}

TEST(Prefix, Covers) {
  const Prefix p(ip(192, 0, 2, 0), 24);
  EXPECT_TRUE(p.covers(Prefix(ip(192, 0, 2, 0), 24)));
  EXPECT_TRUE(p.covers(Prefix(ip(192, 0, 2, 128), 25)));
  EXPECT_FALSE(p.covers(Prefix(ip(192, 0, 3, 0), 24)));
  EXPECT_FALSE(p.covers(Prefix(ip(192, 0, 0, 0), 16)));  // less specific
}

TEST(Prefix, ContainsAddress) {
  const Prefix p(ip(198, 51, 100, 0), 24);
  EXPECT_TRUE(p.contains(ip(198, 51, 100, 200)));
  EXPECT_FALSE(p.contains(ip(198, 51, 101, 1)));
}

TEST(Prefix, DefaultRouteCoversEverything) {
  const Prefix def(0, 0);
  EXPECT_TRUE(def.covers(Prefix(ip(8, 8, 8, 0), 24)));
  EXPECT_TRUE(def.contains(ip(255, 255, 255, 255)));
}

TEST(Prefix, ToString) {
  EXPECT_EQ(Prefix(ip(192, 0, 2, 0), 24).to_string(), "192.0.2.0/24");
  EXPECT_EQ(Prefix(0, 0).to_string(), "0.0.0.0/0");
  EXPECT_EQ(Prefix(ip(255, 255, 255, 255), 32).to_string(),
            "255.255.255.255/32");
}

TEST(Prefix, ParseValid) {
  const auto p = Prefix::parse("192.0.2.0/24");
  ASSERT_TRUE(p);
  EXPECT_EQ(p->address(), ip(192, 0, 2, 0));
  EXPECT_EQ(p->length(), 24);
}

TEST(Prefix, ParseCanonicalizes) {
  const auto p = Prefix::parse("192.0.2.77/24");
  ASSERT_TRUE(p);
  EXPECT_EQ(p->to_string(), "192.0.2.0/24");
}

TEST(Prefix, ParseInvalid) {
  EXPECT_FALSE(Prefix::parse("192.0.2.0"));
  EXPECT_FALSE(Prefix::parse("192.0.2/24"));
  EXPECT_FALSE(Prefix::parse("192.0.2.256/24"));
  EXPECT_FALSE(Prefix::parse("192.0.2.0/33"));
  EXPECT_FALSE(Prefix::parse("a.b.c.d/24"));
  EXPECT_FALSE(Prefix::parse(""));
}

TEST(Prefix, RoundTrip) {
  for (const char* text : {"0.0.0.0/0", "10.0.0.0/8", "203.0.113.128/25"}) {
    const auto p = Prefix::parse(text);
    ASSERT_TRUE(p) << text;
    EXPECT_EQ(p->to_string(), text);
  }
}

TEST(Prefix, OrderingAndHash) {
  EXPECT_LT(Prefix(ip(10, 0, 0, 0), 8), Prefix(ip(11, 0, 0, 0), 8));
  std::unordered_set<Prefix> set;
  set.insert(Prefix(ip(10, 0, 0, 0), 8));
  set.insert(Prefix(ip(10, 0, 0, 0), 8));
  set.insert(Prefix(ip(10, 0, 0, 0), 9));
  EXPECT_EQ(set.size(), 2u);
}

}  // namespace
}  // namespace bgpintent::bgp
