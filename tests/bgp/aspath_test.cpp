#include "bgp/aspath.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

namespace bgpintent::bgp {
namespace {

TEST(AsPath, SequenceConstruction) {
  const AsPath p({701, 1299, 64496});
  EXPECT_FALSE(p.empty());
  EXPECT_EQ(p.length(), 3u);
  EXPECT_EQ(p.selection_length(), 3u);
  EXPECT_EQ(p.first(), 701u);
  EXPECT_EQ(p.origin(), 64496u);
}

TEST(AsPath, EmptyPath) {
  const AsPath p;
  EXPECT_TRUE(p.empty());
  EXPECT_EQ(p.length(), 0u);
  EXPECT_FALSE(p.first());
  EXPECT_FALSE(p.origin());
  EXPECT_FALSE(p.contains(1299));
}

TEST(AsPath, Contains) {
  const AsPath p({701, 1299, 64496});
  EXPECT_TRUE(p.contains(1299));
  EXPECT_TRUE(p.contains(701));
  EXPECT_TRUE(p.contains(64496));
  EXPECT_FALSE(p.contains(3356));
}

TEST(AsPath, ContainsLooksInsideSets) {
  const AsPath p(std::vector<PathSegment>{
      {SegmentType::kSequence, {701}},
      {SegmentType::kSet, {64496, 64497}},
  });
  EXPECT_TRUE(p.contains(64497));
  EXPECT_FALSE(p.contains(64498));
}

TEST(AsPath, UniqueAsnsCollapsesPrepends) {
  const AsPath p({701, 1299, 1299, 1299, 64496});
  EXPECT_EQ(p.length(), 5u);
  const auto unique = p.unique_asns();
  ASSERT_EQ(unique.size(), 3u);
  EXPECT_EQ(unique[0], 701u);
  EXPECT_EQ(unique[1], 1299u);
  EXPECT_EQ(unique[2], 64496u);
}

TEST(AsPath, SelectionLengthCountsSetAsOne) {
  const AsPath p(std::vector<PathSegment>{
      {SegmentType::kSequence, {701, 1299}},
      {SegmentType::kSet, {64496, 64497, 64498}},
  });
  EXPECT_EQ(p.length(), 5u);
  EXPECT_EQ(p.selection_length(), 3u);
}

TEST(AsPath, OriginIsLastOfLastSequence) {
  const AsPath p({701, 1299, 64496});
  EXPECT_EQ(p.origin(), 64496u);
}

TEST(AsPath, OriginUndefinedWhenPathEndsInSet) {
  const AsPath p(std::vector<PathSegment>{
      {SegmentType::kSequence, {701}},
      {SegmentType::kSet, {64496, 64497}},
  });
  EXPECT_FALSE(p.origin());
}

TEST(AsPath, NextTowardOrigin) {
  const AsPath p({65269, 7018, 1299, 64496});
  EXPECT_EQ(p.next_toward_origin(1299), 64496u);
  EXPECT_EQ(p.next_toward_origin(7018), 1299u);
  EXPECT_EQ(p.next_toward_origin(65269), 7018u);
  EXPECT_FALSE(p.next_toward_origin(64496));  // origin has no successor
  EXPECT_FALSE(p.next_toward_origin(3356));   // absent
}

TEST(AsPath, NextTowardOriginSkipsPrepends) {
  const AsPath p({7018, 1299, 1299, 1299, 64496});
  EXPECT_EQ(p.next_toward_origin(1299), 64496u);
}

TEST(AsPath, NextTowardOriginAcrossSegmentBoundary) {
  const AsPath p(std::vector<PathSegment>{
      {SegmentType::kSequence, {701, 1299}},
      {SegmentType::kSequence, {64496}},
  });
  EXPECT_EQ(p.next_toward_origin(1299), 64496u);
}

TEST(AsPath, NextTowardOriginStopsAtSet) {
  const AsPath p(std::vector<PathSegment>{
      {SegmentType::kSequence, {701, 1299}},
      {SegmentType::kSet, {64496, 64497}},
  });
  EXPECT_FALSE(p.next_toward_origin(1299));
}

TEST(AsPath, Prepended) {
  const AsPath p({1299, 64496});
  const AsPath q = p.prepended(7018, 2);
  EXPECT_EQ(q.to_string(), "7018 7018 1299 64496");
  EXPECT_EQ(p.to_string(), "1299 64496");  // original untouched
}

TEST(AsPath, PrependZeroIsIdentity) {
  const AsPath p({1299, 64496});
  EXPECT_EQ(p.prepended(7018, 0), p);
}

TEST(AsPath, PrependOntoEmptyPath) {
  const AsPath p;
  const AsPath q = p.prepended(64496, 1);
  EXPECT_EQ(q.to_string(), "64496");
  EXPECT_EQ(q.origin(), 64496u);
}

TEST(AsPath, ToStringWithSet) {
  const AsPath p(std::vector<PathSegment>{
      {SegmentType::kSequence, {701, 1299}},
      {SegmentType::kSet, {64496, 64497}},
  });
  EXPECT_EQ(p.to_string(), "701 1299 {64496,64497}");
}

TEST(AsPath, ParseSequence) {
  const auto p = AsPath::parse("701 1299 64496");
  ASSERT_TRUE(p);
  EXPECT_EQ(p->to_string(), "701 1299 64496");
  EXPECT_EQ(p->origin(), 64496u);
}

TEST(AsPath, ParseWithSet) {
  const auto p = AsPath::parse("701 {64496,64497}");
  ASSERT_TRUE(p);
  ASSERT_EQ(p->segments().size(), 2u);
  EXPECT_EQ(p->segments()[1].type, SegmentType::kSet);
  EXPECT_EQ(p->to_string(), "701 {64496,64497}");
}

TEST(AsPath, ParseRejectsMalformed) {
  EXPECT_FALSE(AsPath::parse("701 abc"));
  EXPECT_FALSE(AsPath::parse("701 {}"));
  EXPECT_FALSE(AsPath::parse("701 {1,x}"));
  EXPECT_FALSE(AsPath::parse("{1,2"));
}

TEST(AsPath, ParseEmptyGivesEmptyPath) {
  const auto p = AsPath::parse("");
  ASSERT_TRUE(p);
  EXPECT_TRUE(p->empty());
}

TEST(AsPath, RoundTripParseToString) {
  for (const char* text : {"701", "701 1299", "701 1299 {2,3} 64496"}) {
    const auto p = AsPath::parse(text);
    ASSERT_TRUE(p) << text;
    EXPECT_EQ(p->to_string(), text);
  }
}

TEST(AsPath, EqualityAndHashing) {
  const AsPath a({701, 1299});
  const AsPath b({701, 1299});
  const AsPath c({701, 1299, 1299});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);  // prepend changes identity (unique-path counting)
  EXPECT_EQ(a.hash(), b.hash());
  EXPECT_NE(a.hash(), c.hash());
}

TEST(AsPath, HashUsableInUnorderedSet) {
  std::unordered_set<AsPath> set;
  set.insert(AsPath({701, 1299}));
  set.insert(AsPath({701, 1299}));
  set.insert(AsPath({701, 3356}));
  EXPECT_EQ(set.size(), 2u);
}

TEST(AsPath, SegmentTypeMattersForEquality) {
  const AsPath seq(std::vector<PathSegment>{{SegmentType::kSequence, {1, 2}}});
  const AsPath set(std::vector<PathSegment>{{SegmentType::kSet, {1, 2}}});
  EXPECT_NE(seq, set);
  EXPECT_NE(seq.hash(), set.hash());
}

TEST(AsPath, EmptySegmentsDropped) {
  const AsPath p(std::vector<PathSegment>{
      {SegmentType::kSequence, {}},
      {SegmentType::kSequence, {701}},
  });
  EXPECT_EQ(p.segments().size(), 1u);
}

}  // namespace
}  // namespace bgpintent::bgp
