#include "bgp/asn.hpp"

#include <gtest/gtest.h>

namespace bgpintent::bgp {
namespace {

TEST(Asn, PrivateRanges16) {
  EXPECT_FALSE(is_private_asn16(64511));
  EXPECT_TRUE(is_private_asn16(64512));
  EXPECT_TRUE(is_private_asn16(65000));
  EXPECT_TRUE(is_private_asn16(65534));
  EXPECT_FALSE(is_private_asn16(65535));
  EXPECT_FALSE(is_private_asn16(1299));
}

TEST(Asn, PrivateRanges32) {
  EXPECT_FALSE(is_private_asn32(4199999999U));
  EXPECT_TRUE(is_private_asn32(4200000000U));
  EXPECT_TRUE(is_private_asn32(4294967294U));
  EXPECT_FALSE(is_private_asn32(4294967295U));
}

TEST(Asn, DocumentationRanges) {
  EXPECT_TRUE(is_documentation_asn(64496));
  EXPECT_TRUE(is_documentation_asn(64511));
  EXPECT_FALSE(is_documentation_asn(64512));
  EXPECT_TRUE(is_documentation_asn(65536));
  EXPECT_TRUE(is_documentation_asn(65551));
  EXPECT_FALSE(is_documentation_asn(65552));
}

TEST(Asn, Reserved) {
  EXPECT_TRUE(is_reserved_asn(0));
  EXPECT_TRUE(is_reserved_asn(65535));
  EXPECT_TRUE(is_reserved_asn(4294967295U));
  EXPECT_FALSE(is_reserved_asn(1));
}

TEST(Asn, PublicAsn16) {
  EXPECT_TRUE(is_public_asn16(1299));
  EXPECT_TRUE(is_public_asn16(3356));
  EXPECT_TRUE(is_public_asn16(64495));
  EXPECT_FALSE(is_public_asn16(0));
  EXPECT_FALSE(is_public_asn16(64496));   // documentation
  EXPECT_FALSE(is_public_asn16(64512));   // private
  EXPECT_FALSE(is_public_asn16(65535));   // reserved
  EXPECT_FALSE(is_public_asn16(kAsTrans));
}

TEST(Asn, Fits16) {
  EXPECT_TRUE(fits_asn16(65535));
  EXPECT_FALSE(fits_asn16(65536));
}

TEST(Asn, ParseRoundTrip) {
  EXPECT_EQ(parse_asn("1299"), 1299u);
  EXPECT_EQ(parse_asn(" 701 "), 701u);
  EXPECT_EQ(parse_asn("4294967295"), 4294967295u);
  EXPECT_FALSE(parse_asn("4294967296"));
  EXPECT_FALSE(parse_asn("AS1299"));
  EXPECT_FALSE(parse_asn(""));
  EXPECT_EQ(asn_to_string(1299), "1299");
}

}  // namespace
}  // namespace bgpintent::bgp
