#include "bgp/route.hpp"

#include <gtest/gtest.h>

namespace bgpintent::bgp {
namespace {

Route make_route() {
  Route r;
  r.prefix = *Prefix::parse("192.0.2.0/24");
  r.path = AsPath({701, 1299, 64496});
  r.communities = {Community(1299, 35130), Community(1299, 2569)};
  return r;
}

TEST(Route, HasCommunity) {
  const Route r = make_route();
  EXPECT_TRUE(r.has_community(Community(1299, 35130)));
  EXPECT_FALSE(r.has_community(Community(1299, 1)));
}

TEST(Route, CanonicalizeSortsAndDedupes) {
  Route r = make_route();
  r.communities.push_back(Community(1299, 2569));  // duplicate
  r.large_communities = {LargeCommunity(2, 0, 0), LargeCommunity(1, 0, 0),
                         LargeCommunity(1, 0, 0)};
  r.canonicalize_communities();
  ASSERT_EQ(r.communities.size(), 2u);
  EXPECT_EQ(r.communities[0], Community(1299, 2569));
  EXPECT_EQ(r.communities[1], Community(1299, 35130));
  ASSERT_EQ(r.large_communities.size(), 2u);
  EXPECT_EQ(r.large_communities[0], LargeCommunity(1, 0, 0));
}

TEST(Route, EqualityIsStructural) {
  EXPECT_EQ(make_route(), make_route());
  Route other = make_route();
  other.local_pref = 200;
  EXPECT_NE(make_route(), other);
}

TEST(TuplesFromEntries, OneTuplePerCommunity) {
  RibEntry entry;
  entry.vantage_point = {65000, 0x0a000001};
  entry.route = make_route();
  const auto tuples = tuples_from_entries({entry});
  ASSERT_EQ(tuples.size(), 2u);
  EXPECT_EQ(tuples[0].path, entry.route.path);
  EXPECT_EQ(tuples[0].community, Community(1299, 35130));
  EXPECT_EQ(tuples[1].community, Community(1299, 2569));
}

TEST(TuplesFromEntries, EmptyCommunitiesYieldNothing) {
  RibEntry entry;
  entry.route = make_route();
  entry.route.communities.clear();
  EXPECT_TRUE(tuples_from_entries({entry}).empty());
}

TEST(TuplesFromEntries, MultipleEntries) {
  RibEntry a;
  a.route = make_route();
  RibEntry b;
  b.route = make_route();
  b.route.path = AsPath({7018, 64496});
  const auto tuples = tuples_from_entries({a, b});
  EXPECT_EQ(tuples.size(), 4u);
}

TEST(VantagePointId, Ordering) {
  const VantagePointId a{65000, 1};
  const VantagePointId b{65000, 2};
  const VantagePointId c{65001, 0};
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
}

}  // namespace
}  // namespace bgpintent::bgp
