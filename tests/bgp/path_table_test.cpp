#include "bgp/path_table.hpp"

#include <gtest/gtest.h>

#include <span>
#include <vector>

#include "bgp/aspath.hpp"
#include "bgp/route.hpp"

namespace bgpintent::bgp {
namespace {

AsPath seq(std::vector<Asn> asns) { return AsPath(std::move(asns)); }

TEST(PathTable, InternDedupesIdenticalPaths) {
  PathTable table;
  EXPECT_TRUE(table.empty());
  const PathId a = table.intern(seq({701, 1299, 64496}));
  const PathId b = table.intern(seq({701, 1299, 64496}));
  const PathId c = table.intern(seq({701, 3356, 64496}));
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(table.size(), 2u);
}

TEST(PathTable, IdsAreDenseInInternOrder) {
  PathTable table;
  EXPECT_EQ(table.intern(seq({1, 2})), 0u);
  EXPECT_EQ(table.intern(seq({3, 4})), 1u);
  EXPECT_EQ(table.intern(seq({1, 2})), 0u);
  EXPECT_EQ(table.intern(seq({5})), 2u);
}

TEST(PathTable, FindReturnsInternedIdOrNullopt) {
  PathTable table;
  const PathId id = table.intern(seq({701, 1299}));
  EXPECT_EQ(table.find(seq({701, 1299})), id);
  EXPECT_EQ(table.find(seq({701, 3356})), std::nullopt);
  EXPECT_EQ(PathTable().find(seq({701})), std::nullopt);
}

TEST(PathTable, HashMatchesAsPathHash) {
  PathTable table;
  const AsPath path = seq({701, 1299, 1299, 64496});
  EXPECT_EQ(table.hash(table.intern(path)), path.hash());
}

TEST(PathTable, AsnsPreservePrependsAndOrder) {
  PathTable table;
  const AsPath path = seq({701, 1299, 1299, 1299, 64496});
  const PathId id = table.intern(path);
  const std::span<const Asn> asns = table.asns(id);
  ASSERT_EQ(asns.size(), 5u);
  EXPECT_EQ(asns[0], 701u);
  EXPECT_EQ(asns[2], 1299u);
  EXPECT_EQ(asns[4], 64496u);
}

TEST(PathTable, UniqueAsnsSortedAndDeduplicated) {
  PathTable table;
  const PathId id = table.intern(seq({701, 1299, 1299, 174, 64496}));
  const std::span<const Asn> uniq = table.unique_asns(id);
  EXPECT_EQ(std::vector<Asn>(uniq.begin(), uniq.end()),
            (std::vector<Asn>{174, 701, 1299, 64496}));
}

TEST(PathTable, ContainsMatchesAsPath) {
  PathTable table;
  const AsPath path(std::vector<PathSegment>{
      PathSegment{SegmentType::kSequence, {701, 1299}},
      PathSegment{SegmentType::kSet, {174, 3356}},
  });
  const PathId id = table.intern(path);
  for (const Asn asn : {701u, 1299u, 174u, 3356u, 65000u, 1u})
    EXPECT_EQ(table.contains(id, asn), path.contains(asn)) << asn;
}

TEST(PathTable, NextTowardOriginMatchesAsPath) {
  PathTable table;
  // Prepends, plus a trailing AS_SET, to exercise the skip rules.
  const AsPath path(std::vector<PathSegment>{
      PathSegment{SegmentType::kSequence, {701, 1299, 1299, 174}},
      PathSegment{SegmentType::kSet, {64496, 64497}},
  });
  const PathId id = table.intern(path);
  for (const Asn asn : {701u, 1299u, 174u, 64496u, 65000u})
    EXPECT_EQ(table.next_toward_origin(id, asn), path.next_toward_origin(asn))
        << asn;
}

TEST(PathTable, SegmentStructureDistinguishesPaths) {
  PathTable table;
  const AsPath one_segment = seq({701, 1299});
  const AsPath two_segments(std::vector<PathSegment>{
      PathSegment{SegmentType::kSequence, {701}},
      PathSegment{SegmentType::kSequence, {1299}},
  });
  const AsPath as_set(std::vector<PathSegment>{
      PathSegment{SegmentType::kSet, {701, 1299}},
  });
  const PathId a = table.intern(one_segment);
  const PathId b = table.intern(two_segments);
  const PathId c = table.intern(as_set);
  EXPECT_NE(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(b, c);
}

TEST(PathTable, MaterializeRoundTrips) {
  PathTable table;
  const AsPath path(std::vector<PathSegment>{
      PathSegment{SegmentType::kSequence, {701, 1299, 1299}},
      PathSegment{SegmentType::kSet, {174, 3356}},
      PathSegment{SegmentType::kSequence, {64496}},
  });
  EXPECT_EQ(table.materialize(table.intern(path)), path);
}

TEST(PathTable, MemoryBytesGrowsWithContent) {
  PathTable table;
  const std::size_t empty_bytes = table.memory_bytes();
  for (Asn asn = 1; asn <= 64; ++asn) table.intern(seq({asn, asn + 1, asn + 2}));
  EXPECT_GT(table.memory_bytes(), empty_bytes);
}

TEST(InternEntries, ExpandsEachCommunityAndSkipsBareRoutes) {
  std::vector<RibEntry> entries(3);
  entries[0].route.path = seq({701, 1299});
  entries[0].route.communities = {Community(1299, 100), Community(1299, 200)};
  entries[1].route.path = seq({701, 174});  // no communities: contributes nothing
  entries[2].route.path = seq({701, 1299});
  entries[2].route.communities = {Community(174, 300)};

  PathTable table;
  const std::vector<InternedTuple> tuples = intern_entries(table, entries);
  ASSERT_EQ(tuples.size(), 3u);
  // Both community-bearing entries share one interned path; the bare route
  // is not interned at all (seed semantics: it contributes nothing).
  EXPECT_EQ(table.size(), 1u);
  EXPECT_EQ(tuples[0].path, tuples[2].path);
  EXPECT_EQ(tuples[0].community, Community(1299, 100));
  EXPECT_EQ(tuples[2].community, Community(174, 300));
}

TEST(InternTuples, SharesPathsAcrossTuples) {
  std::vector<PathCommunityTuple> tuples(3);
  tuples[0].path = seq({701, 1299});
  tuples[0].community = Community(1299, 100);
  tuples[1].path = seq({701, 1299});
  tuples[1].community = Community(1299, 200);
  tuples[2].path = seq({701, 174});
  tuples[2].community = Community(1299, 100);

  PathTable table;
  const std::vector<InternedTuple> interned = intern_tuples(table, tuples);
  ASSERT_EQ(interned.size(), 3u);
  EXPECT_EQ(table.size(), 2u);
  EXPECT_EQ(interned[0].path, interned[1].path);
  EXPECT_NE(interned[0].path, interned[2].path);
  EXPECT_EQ(interned[1].community, Community(1299, 200));
}

TEST(PathTable, InternSequenceMatchesAsPathInterning) {
  // intern_sequence must land in the same slot (same id, same hash) as
  // interning the equivalent single-sequence AsPath — the simulator's
  // compact RIBs and the observation core share tables through this.
  PathTable table;
  const PathId a = table.intern(seq({701, 1299, 64496}));
  const std::vector<Asn> raw = {701, 1299, 64496};
  EXPECT_EQ(table.intern_sequence(raw), a);
  EXPECT_EQ(table.hash(a), seq({701, 1299, 64496}).hash());

  // And the other direction: sequence first, AsPath second.
  PathTable fresh;
  const std::vector<Asn> longer = {3356, 3356, 174};
  const PathId b = fresh.intern_sequence(longer);
  EXPECT_EQ(fresh.intern(seq({3356, 3356, 174})), b);
  EXPECT_EQ(fresh.hash(b), seq({3356, 3356, 174}).hash());
}

TEST(PathTable, InternSequenceEmptyMatchesEmptyPath) {
  PathTable table;
  const PathId a = table.intern_sequence(std::span<const Asn>{});
  EXPECT_EQ(table.intern(AsPath()), a);
  EXPECT_TRUE(table.asns(a).empty());
}

TEST(PathTable, ColumnRoundTripPreservesIdsAtEverySize) {
  // from_columns() once sized its dedup index with an unsigned subtraction
  // that underflowed past 64 paths, leaving the probe table over-full and
  // rehash() spinning forever.  Sweep across that boundary and well beyond
  // it: ids, hashes, spans, and dedup must all survive the round trip.
  for (const std::size_t n : {1u, 56u, 57u, 64u, 65u, 200u, 500u}) {
    PathTable table;
    for (std::uint32_t i = 0; i < n; ++i)
      table.intern(seq({100 + i, 200, 300 + i}));
    const auto exported = table.export_columns();
    const PathTable rebuilt = PathTable::from_columns(PathTable::ImportColumns{
        exported.asn_arena, exported.uniq_arena, exported.seg_types,
        exported.seg_counts, exported.asn_begin, exported.asn_count,
        exported.seg_begin, exported.seg_count, exported.uniq_begin,
        exported.uniq_count, exported.hashes});
    ASSERT_EQ(rebuilt.size(), n);
    for (std::uint32_t i = 0; i < n; ++i) {
      const AsPath path = seq({100 + i, 200, 300 + i});
      EXPECT_EQ(rebuilt.find(path), i) << "n=" << n;
      EXPECT_EQ(rebuilt.hash(i), path.hash());
    }
    // The reseeded index must dedup new interns against imported paths.
    PathTable fresh = PathTable::from_columns(PathTable::ImportColumns{
        exported.asn_arena, exported.uniq_arena, exported.seg_types,
        exported.seg_counts, exported.asn_begin, exported.asn_count,
        exported.seg_begin, exported.seg_count, exported.uniq_begin,
        exported.uniq_count, exported.hashes});
    EXPECT_EQ(fresh.intern(seq({100, 200, 300})), 0u) << "n=" << n;
    EXPECT_EQ(fresh.intern(seq({1, 2, 3})), n) << "n=" << n;
  }
}

TEST(PathTable, InternSequenceDedupesAndGrows) {
  PathTable table;
  std::vector<Asn> path(3);
  for (std::uint32_t i = 0; i < 500; ++i) {
    path[0] = 100 + (i % 250);
    path[1] = 200;
    path[2] = 300 + i;
    table.intern_sequence(path);
  }
  EXPECT_EQ(table.size(), 500u);
  path[0] = 100;
  path[2] = 300;
  EXPECT_EQ(table.intern_sequence(path), 0u);
  EXPECT_EQ(table.unique_asns(0).size(), 3u);
}

}  // namespace
}  // namespace bgpintent::bgp
