// Property tests over randomized scenarios: invariants that must hold for
// every seed, not just the calibrated default.
#include <gtest/gtest.h>

#include "bgp/asn.hpp"
#include "core/pipeline.hpp"
#include "core/summarize.hpp"
#include "routing/scenario.hpp"

namespace bgpintent::core {
namespace {

routing::ScenarioConfig config_for_seed(std::uint64_t seed) {
  routing::ScenarioConfig cfg;
  cfg.topology.seed = seed;
  cfg.policy.seed = seed * 3 + 1;
  cfg.workload_seed = seed * 7 + 2;
  cfg.topology.tier1_count = static_cast<std::uint32_t>(4 + seed % 4);
  cfg.topology.tier2_count = static_cast<std::uint32_t>(16 + seed % 9);
  cfg.topology.stub_count = static_cast<std::uint32_t>(80 + (seed % 5) * 20);
  cfg.vantage_point_count = static_cast<std::uint32_t>(20 + (seed % 3) * 10);
  return cfg;
}

class PipelineProperty : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

TEST_P(PipelineProperty, DeterministicEndToEnd) {
  const auto cfg = config_for_seed(GetParam());
  const auto a = routing::Scenario::build(cfg);
  const auto b = routing::Scenario::build(cfg);
  Pipeline pipeline;
  const auto ra = pipeline.run(a.entries());
  const auto rb = pipeline.run(b.entries());
  EXPECT_EQ(ra.inference.labels, rb.inference.labels);
  EXPECT_EQ(ra.inference.clusters.size(), rb.inference.clusters.size());
}

TEST_P(PipelineProperty, EveryEligibleCommunityGetsExactlyOneLabel) {
  const auto scenario = routing::Scenario::build(config_for_seed(GetParam()));
  Pipeline pipeline;
  pipeline.set_org_map(&scenario.topology().orgs);
  const auto result = pipeline.run(scenario.entries());
  std::size_t eligible = 0;
  for (const auto& stats : result.observations.all()) {
    const auto alpha = stats.community.alpha();
    const bool excluded = !bgp::is_public_asn16(alpha) ||
                          !result.observations.alpha_on_any_path(alpha);
    const Intent label = result.inference.label_of(stats.community);
    if (excluded) {
      EXPECT_EQ(label, Intent::kUnclassified) << stats.community.to_string();
    } else {
      ++eligible;
      EXPECT_NE(label, Intent::kUnclassified) << stats.community.to_string();
    }
  }
  EXPECT_EQ(eligible, result.inference.classified_count());
  EXPECT_EQ(result.inference.information_count +
                result.inference.action_count,
            result.inference.labels.size());
}

TEST_P(PipelineProperty, ClustersPartitionLabeledCommunities) {
  const auto scenario = routing::Scenario::build(config_for_seed(GetParam()));
  Pipeline pipeline;
  pipeline.set_org_map(&scenario.topology().orgs);
  const auto result = pipeline.run(scenario.entries());
  std::size_t member_total = 0;
  for (const auto& cluster : result.inference.clusters) {
    member_total += cluster.cluster.size();
    // Cluster betas are sorted and within the gap bound.
    for (std::size_t i = 1; i < cluster.cluster.betas.size(); ++i) {
      EXPECT_LT(cluster.cluster.betas[i - 1], cluster.cluster.betas[i]);
      EXPECT_LE(cluster.cluster.betas[i] - cluster.cluster.betas[i - 1],
                pipeline.config().classifier.min_gap);
    }
    // Every member carries the cluster's label.
    for (const std::uint16_t beta : cluster.cluster.betas)
      EXPECT_EQ(result.inference.label_of(
                    Community(cluster.cluster.alpha, beta)),
                cluster.intent);
  }
  EXPECT_EQ(member_total, result.inference.labels.size());
}

TEST_P(PipelineProperty, AccuracyFloorAcrossSeeds) {
  const auto scenario = routing::Scenario::build(config_for_seed(GetParam()));
  Pipeline pipeline;
  pipeline.set_org_map(&scenario.topology().orgs);
  const auto result = pipeline.run(scenario.entries());
  const auto eval = result.score(scenario.ground_truth());
  if (eval.classified < 50) GTEST_SKIP() << "too few labeled communities";
  EXPECT_GT(eval.accuracy(), 0.75)
      << "seed " << GetParam() << ": " << eval.correct << "/"
      << eval.classified;
}

TEST_P(PipelineProperty, SummaryDictionaryReproducesLabels) {
  const auto scenario = routing::Scenario::build(config_for_seed(GetParam()));
  Pipeline pipeline;
  pipeline.set_org_map(&scenario.topology().orgs);
  const auto result = pipeline.run(scenario.entries());
  const auto inferred =
      to_dictionary(summarize(result.observations, result.inference));
  // Looking any observed labeled community up in the summarized dictionary
  // must return its inferred coarse intent.
  for (const auto& stats : result.observations.all()) {
    const Intent label = result.inference.label_of(stats.community);
    if (label == Intent::kUnclassified) continue;
    const auto from_dict = inferred.intent(stats.community);
    ASSERT_TRUE(from_dict) << stats.community.to_string();
    EXPECT_EQ(*from_dict, label) << stats.community.to_string();
  }
}

TEST_P(PipelineProperty, GapZeroRefinesClusters) {
  const auto scenario = routing::Scenario::build(config_for_seed(GetParam()));
  PipelineConfig fine;
  fine.classifier.min_gap = 0;
  Pipeline fine_pipeline(fine);
  Pipeline coarse_pipeline;  // default gap 140
  const auto entries = scenario.entries();
  const auto fine_result = fine_pipeline.run(entries);
  const auto coarse_result = coarse_pipeline.run(entries);
  // Same communities classified; only the clustering differs.
  EXPECT_EQ(fine_result.inference.labels.size(),
            coarse_result.inference.labels.size());
  EXPECT_GE(fine_result.inference.clusters.size(),
            coarse_result.inference.clusters.size());
}

}  // namespace
}  // namespace bgpintent::core
