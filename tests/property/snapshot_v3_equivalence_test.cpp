// Cross-version snapshot equivalence (the v3 acceptance property): the
// same classifier state saved as v2 and as v3 must be indistinguishable to
// every consumer — a v2 heap load, a v3 heap load, and a v3 mmap borrow
// answer identically, keep answering identically through the protocol
// surface (LABEL / BATCH-LABEL / TOTALS) at several shard counts, and stay
// identical after post-restore INGEST forces the borrowed classifier
// through its copy-on-write detach.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/incremental.hpp"
#include "routing/scenario.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "serve/snapshot.hpp"

namespace bgpintent::serve {
namespace {

using core::IncrementalClassifier;
using dict::Intent;

struct Fixture {
  routing::Scenario scenario;
  std::vector<bgp::RibEntry> entries;
  IncrementalClassifier original;
  std::vector<std::uint8_t> v2_bytes;
  std::vector<std::uint8_t> v3_bytes;
  std::string v3_path;
  std::vector<bgp::Community> communities;  ///< every known community

  explicit Fixture(std::uint64_t seed) : scenario(build_scenario(seed)) {
    entries = scenario.entries();
    original.set_org_map(&scenario.topology().orgs);
    // Ingest the first half only: the second half drives the post-restore
    // detach comparison.
    original.ingest(std::span(entries).first(entries.size() / 2));
    // Query a subset so the state carries settled labels AND dirty alphas.
    std::size_t queried = 0;
    for (const auto& e : entries) {
      if (e.route.communities.empty()) continue;
      (void)original.label_of(e.route.communities.front());
      if (++queried >= 40) break;
    }
    v2_bytes = encode_snapshot(original, SnapshotFormat::kV2);
    v3_bytes = encode_snapshot(original, SnapshotFormat::kV3);
    v3_path = ::testing::TempDir() + "bgpintent_equiv_" +
              std::to_string(seed) + ".snap";
    write_snapshot_bytes(v3_bytes, v3_path);

    for (const auto& alpha : original.export_state().alphas)
      for (const auto& beta : alpha.betas)
        communities.emplace_back(alpha.alpha, beta.beta);
  }
  ~Fixture() { std::remove(v3_path.c_str()); }

  static routing::Scenario build_scenario(std::uint64_t seed) {
    routing::ScenarioConfig cfg;
    cfg.topology.seed = seed;
    cfg.topology.tier1_count = 4;
    cfg.topology.tier2_count = 14;
    cfg.topology.stub_count = 70;
    cfg.vantage_point_count = 12;
    return routing::Scenario::build(cfg);
  }

  [[nodiscard]] IncrementalClassifier load_v2() const {
    auto classifier = decode_snapshot(v2_bytes);
    classifier.set_org_map(&scenario.topology().orgs);
    return classifier;
  }

  [[nodiscard]] IncrementalClassifier borrow_v3(
      const std::shared_ptr<MappedSnapshot>& mapped) const {
    IncrementalClassifier classifier(mapped->classifier_config(),
                                     mapped->observation_config());
    classifier.set_org_map(&scenario.topology().orgs);
    classifier.restore_view(mapped->state_view());
    return classifier;
  }
};

void expect_totals_equal(IncrementalClassifier& a, IncrementalClassifier& b,
                         const std::string& label) {
  const auto ta = a.totals();
  const auto tb = b.totals();
  EXPECT_EQ(ta.communities, tb.communities) << label;
  EXPECT_EQ(ta.information, tb.information) << label;
  EXPECT_EQ(ta.action, tb.action) << label;
  EXPECT_EQ(ta.unclassified, tb.unclassified) << label;
}

TEST(SnapshotV3Equivalence, AllThreeLoadPathsAgreeBitForBit) {
  const Fixture fx(181);
  auto from_v2 = fx.load_v2();
  auto from_v3_heap = decode_snapshot(fx.v3_bytes);
  from_v3_heap.set_org_map(&fx.scenario.topology().orgs);
  const auto mapped = MappedSnapshot::open(fx.v3_path);
  auto from_v3_mmap = fx.borrow_v3(mapped);

  EXPECT_EQ(from_v2.export_state(), fx.original.export_state());
  EXPECT_EQ(from_v3_heap.export_state(), fx.original.export_state());
  EXPECT_EQ(from_v3_mmap.export_state(), fx.original.export_state());

  // label_snapshot parity (order-insensitive: the borrowed shape iterates
  // wire-sorted, the owned shape iterates its hash maps).
  auto sorted_labels = [](const IncrementalClassifier& c) {
    auto labels = c.label_snapshot();
    std::sort(labels.begin(), labels.end(),
              [](const auto& a, const auto& b) {
                return a.first.wire() < b.first.wire();
              });
    return labels;
  };
  EXPECT_EQ(sorted_labels(from_v3_mmap), sorted_labels(from_v2));
  EXPECT_EQ(sorted_labels(from_v3_heap), sorted_labels(from_v2));

  // Every label answer agrees (this reclassifies the dirty alphas through
  // both the owned and the borrowed code paths).
  ASSERT_GT(fx.communities.size(), 50u);
  for (const auto community : fx.communities)
    EXPECT_EQ(from_v3_mmap.label_of(community), from_v2.label_of(community))
        << community.to_string();
  expect_totals_equal(from_v2, from_v3_mmap, "totals-after-labels");
}

TEST(SnapshotV3Equivalence, DetachAfterIngestMatchesV2Load) {
  const Fixture fx(182);
  auto from_v2 = fx.load_v2();
  const auto mapped = MappedSnapshot::open(fx.v3_path);
  auto from_v3_mmap = fx.borrow_v3(mapped);

  // Interleave queries (borrowed answers) with the detaching ingest.
  (void)from_v2.label_of(fx.communities.front());
  (void)from_v3_mmap.label_of(fx.communities.front());

  const auto rest = std::span(fx.entries).subspan(fx.entries.size() / 2);
  from_v2.ingest(rest);
  from_v3_mmap.ingest(rest);
  EXPECT_FALSE(from_v3_mmap.is_borrowed());

  EXPECT_EQ(from_v3_mmap.export_state(), from_v2.export_state());
  for (const auto community : fx.communities)
    EXPECT_EQ(from_v3_mmap.label_of(community), from_v2.label_of(community))
        << community.to_string();
  expect_totals_equal(from_v2, from_v3_mmap, "totals-after-detach");
}

TEST(SnapshotV3Equivalence, TwoBorrowersShareOneMappingIndependently) {
  const Fixture fx(183);
  const auto mapped = MappedSnapshot::open(fx.v3_path);
  auto reader = fx.borrow_v3(mapped);
  auto writer = fx.borrow_v3(mapped);

  // Mutating one borrower must not disturb the other (the mapped pages
  // are read-only; the writer detaches onto its own heap copy).
  writer.ingest(std::span(fx.entries).subspan(fx.entries.size() / 2));
  EXPECT_TRUE(reader.is_borrowed());
  EXPECT_EQ(reader.export_state(), fx.original.export_state());

  auto from_v2 = fx.load_v2();
  for (const auto community : fx.communities)
    EXPECT_EQ(reader.label_of(community), from_v2.label_of(community))
        << community.to_string();
}

// The protocol surface: servers loaded from v2 and borrowed from a v3
// mapping answer LABEL, BATCH-LABEL, and TOTALS identically at every
// shard-pool size.
TEST(SnapshotV3Equivalence, ServersAgreeOnLabelBatchLabelAndTotals) {
  const Fixture fx(184);
  for (const unsigned shards : {1u, 2u, 8u}) {
    const auto mapped = MappedSnapshot::open(fx.v3_path);
    ServerConfig cfg;
    cfg.port = 0;
    cfg.threads = 2;
    cfg.shards = shards;
    Server v2_server(fx.load_v2(), cfg);
    Server v3_server(fx.borrow_v3(mapped), cfg);
    v2_server.start();
    v3_server.start();

    auto v2_client = Client::connect("127.0.0.1", v2_server.port());
    auto v3_client = Client::connect("127.0.0.1", v3_server.port());
    for (const auto community : fx.communities)
      EXPECT_EQ(v3_client.label(community), v2_client.label(community))
          << "shards=" << shards << " " << community.to_string();

    // BATCH-LABEL over the binary protocol, one round trip.
    auto v2_batch = Client::connect("127.0.0.1", v2_server.port());
    auto v3_batch = Client::connect("127.0.0.1", v3_server.port());
    v2_batch.negotiate_binary();
    v3_batch.negotiate_binary();
    EXPECT_EQ(v3_batch.labels(fx.communities), v2_batch.labels(fx.communities))
        << "shards=" << shards;

    const auto v2_totals = v2_client.totals();
    const auto v3_totals = v3_client.totals();
    EXPECT_EQ(v3_totals.communities, v2_totals.communities);
    EXPECT_EQ(v3_totals.information, v2_totals.information);
    EXPECT_EQ(v3_totals.action, v2_totals.action);
    EXPECT_EQ(v3_totals.unclassified, v2_totals.unclassified);

    v2_server.request_stop();
    v3_server.request_stop();
    v2_server.wait();
    v3_server.wait();
  }
}

}  // namespace
}  // namespace bgpintent::serve
