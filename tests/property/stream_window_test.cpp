// The streaming equivalence property (docs/STREAMING.md, the invariant
// promised in stream/window.hpp): at any point in a live update stream —
// including immediately after epoch expiry — WindowClassifier's labels
// are bit-identical to a from-scratch batch build over the current window
// contents: ObservationIndex::build_interned (or the parallel build, at
// any pool size) + core::classify over window_tuples().  The window *is*
// the batch pipeline restricted to the trailing week; this suite is what
// lets every other streaming claim lean on the batch classifier's tests.
//
// The concurrency test at the bottom exercises StreamEngine's one-mutex
// facade under simultaneous ingest and queries; run under
// -DCMAKE_CXX_FLAGS=-fsanitize=thread it doubles as the TSan gate.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/classifier.hpp"
#include "core/observations.hpp"
#include "mrt/source.hpp"
#include "mrt/update_stream.hpp"
#include "routing/scenario.hpp"
#include "stream/engine.hpp"
#include "stream/synth.hpp"
#include "stream/window.hpp"
#include "util/thread_pool.hpp"

namespace bgpintent::stream {
namespace {

constexpr std::uint32_t kEpochSeconds = 3600;

routing::ScenarioConfig small_scenario() {
  routing::ScenarioConfig cfg;
  cfg.topology.seed = 20230807;
  cfg.topology.tier1_count = 4;
  cfg.topology.tier2_count = 12;
  cfg.topology.stub_count = 40;
  cfg.vantage_point_count = 8;
  cfg.day_churn = 0.3;
  return cfg;
}

/// Eight epochs against a three-epoch window: expiry is guaranteed to
/// fire several times, and flaps guarantee withdrawal records.
SynthStreamConfig synth_config() {
  SynthStreamConfig cfg;
  cfg.scenario = small_scenario();
  cfg.epochs = 8;
  cfg.epoch_seconds = kEpochSeconds;
  cfg.flap_fraction = 0.1;
  return cfg;
}

WindowConfig tight_window() {
  WindowConfig cfg;
  cfg.epoch_seconds = kEpochSeconds;
  cfg.window_epochs = 3;
  return cfg;
}

/// One decoded update, materialized so a stream can be replayed to any
/// checkpoint.
struct Update {
  bool announce = false;
  bgp::RibEntry entry;          // announce only
  bgp::VantagePointId peer;     // withdraw only
  bgp::Prefix prefix;           // withdraw only
  std::uint32_t timestamp = 0;
};

class Recorder final : public mrt::UpdateSink {
 public:
  void on_announce(bgp::RibEntry& entry, std::uint32_t timestamp) override {
    Update u;
    u.announce = true;
    u.entry = entry;  // scratch row: copy before it is reused
    u.timestamp = timestamp;
    updates.push_back(std::move(u));
  }
  void on_withdraw(const bgp::VantagePointId& peer, const bgp::Prefix& prefix,
                   std::uint32_t timestamp) override {
    Update u;
    u.peer = peer;
    u.prefix = prefix;
    u.timestamp = timestamp;
    updates.push_back(std::move(u));
  }
  std::vector<Update> updates;
};

std::vector<Update> decode_synth_stream(const SynthStreamConfig& config) {
  const SynthStream synth = generate_update_stream(config);
  Recorder recorder;
  mrt::decode_update_stream(
      mrt::BufferSource{std::vector<std::uint8_t>(synth.bytes)}, recorder);
  return recorder.updates;
}

/// The from-scratch batch reference over the window's current contents.
core::InferenceResult batch_reference(const WindowClassifier& window,
                                      const topo::OrgMap* orgs,
                                      util::ThreadPool* pool) {
  const auto tuples = window.window_tuples();
  const core::ObservationIndex observations =
      pool ? core::ObservationIndex::build_parallel_interned(
                 window.paths(), tuples, *pool, orgs, nullptr,
                 window.config().observation)
           : core::ObservationIndex::build_interned(
                 window.paths(), tuples, orgs, nullptr,
                 window.config().observation);
  return core::classify(observations, window.config().classifier, pool);
}

/// Bit-identical label comparison in both directions: every cached window
/// label matches the batch inference, and every community the window has
/// evidence for resolves identically (covering the unclassified cases).
void expect_window_matches_batch(const WindowClassifier& window,
                                 const topo::OrgMap* orgs) {
  const core::InferenceResult sequential = batch_reference(window, orgs,
                                                           nullptr);
  const auto labels = window.labels();
  EXPECT_EQ(labels.size(), sequential.labels.size());
  for (const auto& [community, intent] : labels)
    EXPECT_EQ(intent, sequential.label_of(community))
        << community.to_string();
  for (const auto& tuple : window.window_tuples())
    EXPECT_EQ(window.label_of(tuple.community),
              sequential.label_of(tuple.community))
        << tuple.community.to_string();

  const auto totals = window.totals();
  EXPECT_EQ(totals.information, sequential.information_count);
  EXPECT_EQ(totals.action, sequential.action_count);

  for (const unsigned threads : {1u, 2u, 8u}) {
    util::ThreadPool pool(threads);
    const core::InferenceResult parallel =
        batch_reference(window, orgs, &pool);
    EXPECT_EQ(parallel.labels, sequential.labels) << threads << " threads";
    EXPECT_EQ(parallel.information_count, sequential.information_count);
    EXPECT_EQ(parallel.action_count, sequential.action_count);
  }
}

/// Replays a synthetic firehose into a window and checks the equivalence
/// at four checkpoints — mid-epoch, across expiry, and at end of stream.
TEST(StreamWindowProperty, WindowedMatchesBatchAtEveryCheckpoint) {
  const auto scenario = routing::Scenario::build(small_scenario());
  const topo::OrgMap* orgs = &scenario.topology().orgs;
  const auto updates = decode_synth_stream(synth_config());
  ASSERT_GT(updates.size(), 500u);

  WindowClassifier window(tight_window(), orgs);
  const std::size_t checkpoints[] = {updates.size() / 4, updates.size() / 2,
                                     3 * updates.size() / 4, updates.size()};
  std::size_t next = 0;
  for (std::size_t i = 0; i < updates.size(); ++i) {
    const Update& u = updates[i];
    if (u.announce)
      window.announce(u.entry, u.timestamp);
    else
      window.withdraw(u.peer, u.prefix, u.timestamp);
    if (i + 1 == checkpoints[next]) {
      (void)window.reclassify_dirty();
      SCOPED_TRACE("checkpoint " + std::to_string(i + 1));
      expect_window_matches_batch(window, orgs);
      ++next;
    }
  }
  // The stream must actually have exercised the interesting machinery.
  EXPECT_GT(window.expired_epochs(), 0u);
  EXPECT_GT(window.withdraws(), 0u);
}

/// Expiry to empty: once every record has aged out, the window must agree
/// with a batch build over nothing — no labels, all-zero totals.
TEST(StreamWindowProperty, FullExpiryDrainsToEmptyBatch) {
  const auto scenario = routing::Scenario::build(small_scenario());
  const topo::OrgMap* orgs = &scenario.topology().orgs;
  auto cfg = synth_config();
  cfg.epochs = 2;
  const auto updates = decode_synth_stream(cfg);

  WindowClassifier window(tight_window(), orgs);
  for (const Update& u : updates) {
    if (u.announce)
      window.announce(u.entry, u.timestamp);
    else
      window.withdraw(u.peer, u.prefix, u.timestamp);
  }
  (void)window.reclassify_dirty();
  ASSERT_GT(window.live_tuple_count(), 0u);

  // A lone withdrawal far in the future advances the clock past the
  // entire window without adding evidence.
  bgp::VantagePointId vp;
  vp.asn = 65000;
  window.withdraw(vp, *bgp::Prefix::parse("10.0.0.0/24"),
                  cfg.start_timestamp + 100 * kEpochSeconds);
  const auto changes = window.reclassify_dirty();
  EXPECT_FALSE(changes.empty());  // every label retracts
  EXPECT_EQ(window.live_tuple_count(), 0u);
  EXPECT_TRUE(window.labels().empty());
  EXPECT_TRUE(window.window_tuples().empty());
  const auto totals = window.totals();
  EXPECT_EQ(totals.information, 0u);
  EXPECT_EQ(totals.action, 0u);
  expect_window_matches_batch(window, orgs);
}

/// StreamEngine is the one-mutex facade the serve tier shares with the
/// decode loop: queries racing a live ingest must be data-race-free (the
/// TSan gate) and must not perturb the final state — after the dust
/// settles the engine agrees with the batch reference exactly.
TEST(StreamWindowProperty, ConcurrentQueriesDuringIngestAreRaceFree) {
  const auto scenario = routing::Scenario::build(small_scenario());
  const topo::OrgMap* orgs = &scenario.topology().orgs;
  const SynthStream synth = generate_update_stream(synth_config());

  StreamEngine engine(tight_window(), orgs);
  std::atomic<bool> done{false};
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&engine, &done] {
      std::uint64_t last_seq = 0;
      while (!done.load(std::memory_order_relaxed)) {
        const auto stats = engine.stats();
        (void)engine.totals();
        (void)engine.label_of(Community(100, 1));
        bool gap = false;
        const auto events = engine.events_since(last_seq, 64, gap);
        // Sequence numbers are monotonic even mid-ingest.
        for (const auto& event : events) {
          EXPECT_GT(event.seq, last_seq);
          last_seq = event.seq;
        }
        EXPECT_LE(stats.events, engine.stats().events);
      }
    });
  }

  engine.ingest(mrt::BufferSource{std::vector<std::uint8_t>(synth.bytes)});
  done.store(true, std::memory_order_relaxed);
  for (auto& reader : readers) reader.join();

  // Replaying the same stream single-threaded gives the same window.
  WindowClassifier replay(tight_window(), orgs);
  for (const Update& u : decode_synth_stream(synth_config())) {
    if (u.announce)
      replay.announce(u.entry, u.timestamp);
    else
      replay.withdraw(u.peer, u.prefix, u.timestamp);
  }
  (void)replay.reclassify_dirty();

  std::uint64_t as_of = 0;
  const auto engine_labels = StreamEngine(tight_window(), orgs).label_snapshot(
      as_of);  // empty-engine sanity: snapshot of nothing is empty
  EXPECT_TRUE(engine_labels.empty());

  std::uint64_t seq = 0;
  const auto snapshot = engine.label_snapshot(seq);
  EXPECT_EQ(snapshot, replay.labels());
  EXPECT_EQ(seq, engine.last_seq());
  const auto stats = engine.stats();
  EXPECT_EQ(stats.announces, replay.announces());
  EXPECT_EQ(stats.withdraws, replay.withdraws());
  EXPECT_EQ(stats.live_tuples, replay.live_tuple_count());
  expect_window_matches_batch(replay, orgs);
}

}  // namespace
}  // namespace bgpintent::stream
