// Crash-injection property harness for the durable stream journal
// (ISSUE acceptance, docs/ROBUSTNESS.md): for synth streams generated at
// pool sizes 1/2/8 and randomized kill points — including torn final
// frames and decapitated segments — checkpoint-load plus journal replay
// must reproduce labels, event sequence numbers, and window ring contents
// bit-identical to the uninterrupted run, and a post-recovery
// `SUBSCRIBE from=seq` position must observe no gap.
//
// Shape of one trial:
//   1. Reference run: journal the full synth stream, keep the journal
//      directory and the final EngineState.
//   2. Kill: copy the directory, truncate a random segment at a random
//      byte, and delete everything after it — the bytes a crashed process
//      would have left behind.
//   3. Recover tolerantly; the surviving record prefix R is whatever the
//      torn scan salvages.
//   4. Drive the recovered engine through records [R, end) of the
//      *uninterrupted* journal with replay_journal in strict mode — any
//      divergence from the reference run (event content, sequence
//      numbers, pass boundaries) throws — and require the final
//      EngineState to equal the reference bit-for-bit.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "mrt/source.hpp"
#include "stream/engine.hpp"
#include "stream/recovery.hpp"
#include "stream/synth.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/thread_pool.hpp"

namespace bgpintent::stream {
namespace {

namespace fs = std::filesystem;

struct ScratchDir {
  explicit ScratchDir(const std::string& tag)
      : path(fs::path(::testing::TempDir()) /
             util::format("bgpintent_crash_%s_%d", tag.c_str(), ::getpid())) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~ScratchDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  [[nodiscard]] std::string str() const { return path.string(); }
  fs::path path;
};

JournalConfig journal_config(const std::string& directory) {
  JournalConfig cfg;
  cfg.directory = directory;
  cfg.max_segment_bytes = 8 * 1024;  // several segments per run
  cfg.fsync = FsyncPolicy::kNever;   // crashes are simulated by truncation
  return cfg;
}

SynthStream pool_stream(unsigned pool_threads) {
  SynthStreamConfig cfg;
  cfg.scenario.topology.seed = 71;
  cfg.scenario.topology.tier1_count = 4;
  cfg.scenario.topology.tier2_count = 12;
  cfg.scenario.topology.stub_count = 60;
  cfg.scenario.vantage_point_count = 8;
  cfg.epochs = 3;
  cfg.epoch_seconds = 600;
  util::ThreadPool pool(pool_threads);
  return generate_update_stream(cfg, &pool);
}

/// Journals the full stream and returns the uninterrupted final state.
EngineState reference_run(const std::string& directory,
                          const SynthStream& synth,
                          std::uint64_t checkpoint_interval) {
  StreamEngine engine;
  engine.attach_journal(
      std::make_unique<JournalWriter>(journal_config(directory), 0),
      checkpoint_interval);
  engine.ingest(mrt::BufferSource{std::vector<std::uint8_t>(synth.bytes)});
  return engine.export_state();
  // The writer destructor seals without a final checkpoint: recovery
  // always has a journal tail to replay.
}

/// Copies `from` and applies one randomized kill: segment `s` truncated at
/// a random byte (possibly inside its header), later segments deleted.
void kill_copy(const fs::path& from, const fs::path& to, util::Rng& rng) {
  fs::remove_all(to);
  fs::copy(from, to, fs::copy_options::recursive);
  std::vector<fs::path> segments;
  for (const auto& entry : fs::directory_iterator(to)) {
    const std::string name = entry.path().filename().string();
    if (name.starts_with("journal-") && name.ends_with(".seg"))
      segments.push_back(entry.path());
  }
  std::sort(segments.begin(), segments.end());
  ASSERT_GT(segments.size(), 1u);
  const std::size_t victim =
      static_cast<std::size_t>(rng.uniform(0, segments.size() - 1));
  const std::uint64_t size = fs::file_size(segments[victim]);
  fs::resize_file(segments[victim], rng.uniform(1, size - 1));
  for (std::size_t i = victim + 1; i < segments.size(); ++i)
    fs::remove(segments[i]);
  // Checkpoints claiming records past the cut stay behind on purpose:
  // recovery must skip them, not trust them.
}

void run_trials(unsigned pool_threads, std::uint64_t checkpoint_interval,
                int trials) {
  SCOPED_TRACE(util::format("pool=%u interval=%llu", pool_threads,
                            static_cast<unsigned long long>(
                                checkpoint_interval)));
  const SynthStream synth = pool_stream(pool_threads);
  const std::string tag =
      util::format("p%u_i%llu", pool_threads,
                   static_cast<unsigned long long>(checkpoint_interval));
  const ScratchDir reference_dir("ref_" + tag);
  const EngineState reference =
      reference_run(reference_dir.str(), synth, checkpoint_interval);
  const std::uint64_t total_records =
      scan_journal(reference_dir.str()).records;
  ASSERT_GT(total_records, 100u);

  util::Rng rng(0x9e3779b9u * pool_threads + checkpoint_interval);
  for (int trial = 0; trial < trials; ++trial) {
    SCOPED_TRACE(util::format("trial=%d", trial));
    const ScratchDir crashed(util::format("kill_%s_%d", tag.c_str(), trial));
    kill_copy(reference_dir.path, crashed.path, rng);

    RecoveryReport report;
    std::unique_ptr<StreamEngine> recovered;
    ASSERT_NO_THROW(
        recovered = recover_stream(journal_config(crashed.str()), {}, &report));
    ASSERT_LE(report.journal_records, total_records);
    if (checkpoint_interval != 0 && report.used_checkpoint) {
      EXPECT_LE(report.checkpoint_record, report.journal_records);
    }

    // A subscriber that had consumed up to the recovered tip resumes with
    // no gap; so does one resuming from the oldest buffered event.
    bool gap = true;
    (void)recovered->events_since(recovered->last_seq(), 1, gap);
    EXPECT_FALSE(gap);
    const std::uint64_t first = recovered->first_buffered_seq();
    if (first > 0) {
      gap = true;
      (void)recovered->events_since(first - 1, 1, gap);
      EXPECT_FALSE(gap);
    }

    // Continuation: drive the recovered engine through the records the
    // crash destroyed, straight from the uninterrupted journal.  Strict
    // replay cross-checks every journaled event and pass marker against
    // what the recovered engine regenerates.
    const ReplayReport replay = replay_journal(
        *recovered, reference_dir.str(), report.journal_records,
        /*strict=*/true);
    ASSERT_TRUE(replay.complete) << replay.detail;
    EXPECT_EQ(report.journal_records + replay.records_applied, total_records);

    // Bit-identical: window ring, buffered events, sequence counters.
    EXPECT_TRUE(recovered->export_state() == reference);
  }
}

TEST(StreamCrashProperty, Pool1NoCheckpoints) { run_trials(1, 0, 6); }
TEST(StreamCrashProperty, Pool2NoCheckpoints) { run_trials(2, 0, 6); }
TEST(StreamCrashProperty, Pool8NoCheckpoints) { run_trials(8, 0, 6); }
TEST(StreamCrashProperty, Pool1Checkpointed) { run_trials(1, 97, 6); }
TEST(StreamCrashProperty, Pool2Checkpointed) { run_trials(2, 97, 6); }
TEST(StreamCrashProperty, Pool8Checkpointed) { run_trials(8, 97, 6); }

/// The pool size must not leak into the journal: the same scenario
/// generated at different pool widths produces byte-identical streams,
/// so crash trials above all recover toward the same reference.
TEST(StreamCrashProperty, PoolSizeDoesNotChangeTheStream) {
  const SynthStream one = pool_stream(1);
  const SynthStream eight = pool_stream(8);
  EXPECT_EQ(one.bytes, eight.bytes);
}

}  // namespace
}  // namespace bgpintent::stream
