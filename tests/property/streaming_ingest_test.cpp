// Streaming-vs-materializing equivalence: core::MrtIngest (decode ->
// intern in one pass, no row vector) must produce byte-identical interned
// output — PathTable contents, tuple sequence, row count, decode report —
// to the materializing reference (read_rib_entries + intern_entries), in
// strict mode, in tolerant mode over fault-injected inputs, and through
// add_parallel at any pool size.  The perf claim in BENCH_ingest.json
// rests entirely on this property; docs/PERFORMANCE.md points here.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <tuple>
#include <vector>

#include "bgp/path_table.hpp"
#include "core/ingest.hpp"
#include "core/pipeline.hpp"
#include "mrt/fault.hpp"
#include "mrt/mrt_file.hpp"
#include "mrt/source.hpp"
#include "routing/scenario.hpp"
#include "util/thread_pool.hpp"

namespace bgpintent::core {
namespace {

/// A scenario-generated RIB snapshot plus a couple of BGP4MP records —
/// every record shape the streaming decoder handles.
const std::vector<std::uint8_t>& valid_stream() {
  static const std::vector<std::uint8_t> bytes = [] {
    routing::ScenarioConfig cfg;
    cfg.topology.seed = 20230806;
    cfg.topology.tier1_count = 4;
    cfg.topology.tier2_count = 12;
    cfg.topology.stub_count = 40;
    cfg.vantage_point_count = 8;
    const auto scenario = routing::Scenario::build(cfg);
    std::ostringstream out;
    mrt::MrtWriter writer(out);
    const auto entries = scenario.entries();
    writer.write_rib_snapshot(entries, 0x7f000001, 1684886400);
    if (!entries.empty()) {
      writer.write_update(entries.front().vantage_point, entries.front().route,
                          1684886401);
      writer.write_state_change(entries.front().vantage_point, 6, 1,
                                1684886402);
    }
    const std::string str = std::move(out).str();
    return std::vector<std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(str.data()),
        reinterpret_cast<const std::uint8_t*>(str.data()) + str.size());
  }();
  return bytes;
}

/// The materializing reference: full row vector, then interning.
struct Materialized {
  bgp::PathTable table;
  std::vector<bgp::InternedTuple> tuples;
  std::size_t entries = 0;
  mrt::DecodeReport report;
};

Materialized materialize(const std::vector<std::uint8_t>& bytes,
                         const mrt::DecodeOptions& options) {
  Materialized out;
  const auto rows = mrt::read_rib_entries(bytes, options, &out.report);
  out.entries = rows.size();
  out.tuples = bgp::intern_entries(out.table, rows);
  return out;
}

/// Whether the captured error list must match in order: sequential flows
/// are exact replicas; parallel flows record framing errors on the framing
/// thread but body errors via chunk reports merged in submission order, so
/// only the error *multiset* (and every counter) is guaranteed.
enum class ErrorOrder { kExact, kAnyOrder };

std::vector<mrt::DecodeError> sorted(std::vector<mrt::DecodeError> errors) {
  std::sort(errors.begin(), errors.end(),
            [](const mrt::DecodeError& x, const mrt::DecodeError& y) {
              return std::tie(x.byte_offset, x.record_index, x.reason) <
                     std::tie(y.byte_offset, y.record_index, y.reason);
            });
  return errors;
}

void expect_same_report(const mrt::DecodeReport& a, const mrt::DecodeReport& b,
                        ErrorOrder order = ErrorOrder::kExact) {
  EXPECT_EQ(a.records_ok, b.records_ok);
  EXPECT_EQ(a.records_skipped, b.records_skipped);
  EXPECT_EQ(a.bytes_skipped, b.bytes_skipped);
  EXPECT_EQ(a.resyncs, b.resyncs);
  EXPECT_EQ(a.budget_exhausted, b.budget_exhausted);
  if (order == ErrorOrder::kExact)
    EXPECT_EQ(a.errors, b.errors);
  else
    EXPECT_EQ(sorted(a.errors), sorted(b.errors));
}

/// Full interned-state comparison: same tuples in the same order, same
/// PathIds resolving to the same paths, same row count and report.
void expect_matches_reference(const MrtIngest& ingest, const Materialized& ref,
                              ErrorOrder order = ErrorOrder::kExact) {
  EXPECT_EQ(ingest.entries(), ref.entries);
  ASSERT_EQ(ingest.paths().size(), ref.table.size());
  for (bgp::PathId id = 0; id < ref.table.size(); ++id)
    EXPECT_EQ(ingest.paths().materialize(id), ref.table.materialize(id))
        << "path id " << id;
  const std::vector<bgp::InternedTuple> tuples(ingest.tuples().begin(),
                                               ingest.tuples().end());
  EXPECT_EQ(tuples, ref.tuples);
  expect_same_report(ingest.report(), ref.report, order);
}

TEST(StreamingIngestTest, StrictMatchesMaterializingReference) {
  const auto& bytes = valid_stream();
  const Materialized ref = materialize(bytes, {});

  MrtIngest from_source;
  from_source.add(mrt::BufferSource{std::vector<std::uint8_t>(bytes)});
  expect_matches_reference(from_source, ref);

  std::istringstream in(std::string(
      reinterpret_cast<const char*>(bytes.data()), bytes.size()));
  MrtIngest from_stream;
  from_stream.add(in);
  expect_matches_reference(from_stream, ref);
}

TEST(StreamingIngestTest, ParallelMatchesSequentialAtAnyPoolSize) {
  const auto& bytes = valid_stream();
  const Materialized ref = materialize(bytes, {});
  const mrt::BufferSource source{std::vector<std::uint8_t>(bytes)};
  for (const unsigned threads : {1u, 2u, 8u}) {
    util::ThreadPool pool(threads);
    MrtIngest ingest;
    ingest.add_parallel(source, pool);
    expect_matches_reference(ingest, ref, ErrorOrder::kAnyOrder);
  }
}

/// Tolerant mode over every corruption kind and several seeds: whatever
/// the tolerant decoder recovers, the streaming and materializing flows
/// must recover identically — same surviving tuples, same error
/// accounting.  (Recovery *quality* is the fault-injection harness's
/// business; equivalence is what is asserted here.)
class StreamingIngestFaultTest
    : public ::testing::TestWithParam<mrt::CorruptionKind> {};

INSTANTIATE_TEST_SUITE_P(
    CorruptionKinds, StreamingIngestFaultTest,
    ::testing::ValuesIn(mrt::kAllCorruptionKinds),
    [](const auto& inst) { return std::string(to_string(inst.param)); });

TEST_P(StreamingIngestFaultTest, TolerantMatchesMaterializingReference) {
  mrt::DecodeOptions tolerant;
  tolerant.mode = mrt::DecodeMode::kTolerant;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const auto corrupted =
        mrt::corrupt_mrt(valid_stream(), GetParam(), seed);
    const Materialized ref = materialize(corrupted.bytes, tolerant);

    MrtIngest ingest(tolerant);
    ingest.add(mrt::BufferSource{std::vector<std::uint8_t>(corrupted.bytes)});
    SCOPED_TRACE(corrupted.description);
    expect_matches_reference(ingest, ref);

    for (const unsigned threads : {2u, 8u}) {
      util::ThreadPool pool(threads);
      MrtIngest parallel(tolerant);
      parallel.add_parallel(
          mrt::BufferSource{std::vector<std::uint8_t>(corrupted.bytes)}, pool);
      expect_matches_reference(parallel, ref, ErrorOrder::kAnyOrder);
    }
  }
}

/// End to end through classification: Pipeline::run_mrt over a source must
/// agree field-for-field with Pipeline::run over materialized rows.
TEST(StreamingIngestTest, PipelineClassificationIdentical) {
  const auto& bytes = valid_stream();
  const Pipeline pipeline;

  mrt::DecodeReport report;
  const auto rows = mrt::read_rib_entries(bytes, {}, &report);
  PipelineResult expected = pipeline.run(rows);
  expected.decode_report = std::move(report);

  const PipelineResult actual =
      pipeline.run_mrt(mrt::BufferSource{std::vector<std::uint8_t>(bytes)});

  EXPECT_EQ(actual.entries_ingested, expected.entries_ingested);
  EXPECT_EQ(actual.observations.all(), expected.observations.all());
  EXPECT_EQ(actual.inference.labels, expected.inference.labels);
  EXPECT_EQ(actual.inference.information_count,
            expected.inference.information_count);
  EXPECT_EQ(actual.inference.action_count, expected.inference.action_count);
  EXPECT_EQ(actual.inference.excluded_private,
            expected.inference.excluded_private);
  EXPECT_EQ(actual.inference.excluded_never_on_path,
            expected.inference.excluded_never_on_path);
  expect_same_report(actual.decode_report, expected.decode_report);
}

}  // namespace
}  // namespace bgpintent::core
