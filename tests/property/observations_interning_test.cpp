// Property: the interned observation core (PathTable + sort-based
// accumulation, sequential or sharded-parallel at any pool size) produces
// exactly the CommunityStats the seed implementation produced — per-tuple
// AsPath hashing into per-community unordered_set accumulators — on
// randomized tuple sets, with and without org-sibling expansion and
// relationship votes.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <unordered_set>
#include <vector>

#include "bgp/aspath.hpp"
#include "bgp/route.hpp"
#include "core/observations.hpp"
#include "rel/dataset.hpp"
#include "topo/org_map.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace bgpintent::core {
namespace {

struct ReferenceStats {
  std::size_t on = 0;
  std::size_t off = 0;
  std::size_t customer = 0;
  std::size_t peer = 0;
  std::size_t provider = 0;
};

struct ReferenceIndex {
  std::map<Community, ReferenceStats> stats;
  std::size_t unique_paths = 0;
};

/// Replica of the pre-interning ObservationIndex::build: one full AsPath
/// per tuple, hash-set accumulators, on-path recomputed per tuple, one
/// relationship vote per unique on-path path.
ReferenceIndex reference_build(
    const std::vector<bgp::PathCommunityTuple>& tuples,
    const topo::OrgMap* orgs, const rel::RelationshipDataset* relationships,
    const ObservationConfig& config) {
  struct Acc {
    std::unordered_set<std::uint64_t> on_paths;
    std::unordered_set<std::uint64_t> off_paths;
    ReferenceStats votes;
  };
  std::map<Community, Acc> acc;
  std::unordered_set<std::uint64_t> unique_paths;
  for (const bgp::PathCommunityTuple& tuple : tuples) {
    const std::uint64_t hash = tuple.path.hash();
    unique_paths.insert(hash);
    const std::uint16_t alpha = tuple.community.alpha();
    bool on = tuple.path.contains(alpha);
    if (!on && config.sibling_aware && orgs != nullptr)
      for (const bgp::Asn sibling : orgs->siblings(alpha))
        if (sibling != alpha && tuple.path.contains(sibling)) on = true;
    Acc& a = acc[tuple.community];
    if (!on) {
      a.off_paths.insert(hash);
      continue;
    }
    if (!a.on_paths.insert(hash).second || relationships == nullptr) continue;
    if (const auto next = tuple.path.next_toward_origin(alpha))
      if (const auto rel = relationships->relationship(alpha, *next))
        switch (*rel) {
          case topo::RelFrom::kCustomer: ++a.votes.customer; break;
          case topo::RelFrom::kPeer: ++a.votes.peer; break;
          case topo::RelFrom::kProvider: ++a.votes.provider; break;
          case topo::RelFrom::kSibling: break;
        }
  }
  ReferenceIndex index;
  index.unique_paths = unique_paths.size();
  for (const auto& [community, a] : acc) {
    ReferenceStats s = a.votes;
    s.on = a.on_paths.size();
    s.off = a.off_paths.size();
    index.stats.emplace(community, s);
  }
  return index;
}

void expect_matches_reference(const ObservationIndex& index,
                              const ReferenceIndex& reference) {
  EXPECT_EQ(index.unique_path_count(), reference.unique_paths);
  ASSERT_EQ(index.community_count(), reference.stats.size());
  // index.all() is sorted by community; std::map iterates in the same order.
  std::size_t i = 0;
  for (const auto& [community, ref] : reference.stats) {
    const CommunityStats& got = index.all()[i++];
    ASSERT_EQ(got.community, community);
    EXPECT_EQ(got.on_path_paths, ref.on) << community.to_string();
    EXPECT_EQ(got.off_path_paths, ref.off) << community.to_string();
    EXPECT_EQ(got.customer_votes, ref.customer) << community.to_string();
    EXPECT_EQ(got.peer_votes, ref.peer) << community.to_string();
    EXPECT_EQ(got.provider_votes, ref.provider) << community.to_string();
  }
}

/// Randomized tuple set: a small path pool (with prepends and occasional
/// AS_SETs) replayed with repetition, alphas drawn so that on-path,
/// sibling-expanded and off-path cases all occur.
std::vector<bgp::PathCommunityTuple> random_tuples(std::uint64_t seed) {
  util::Rng rng(seed);
  const std::size_t pool_size = 20 + rng.uniform(0, 20);
  std::vector<bgp::AsPath> pool;
  pool.reserve(pool_size);
  for (std::size_t p = 0; p < pool_size; ++p) {
    const std::size_t hops = 2 + rng.uniform(0, 3);
    std::vector<bgp::Asn> asns;
    for (std::size_t h = 0; h < hops; ++h) {
      const bgp::Asn asn = 100 + static_cast<bgp::Asn>(rng.uniform(0, 39));
      asns.push_back(asn);
      if (rng.uniform(0, 5) == 0) asns.push_back(asn);  // prepend
    }
    if (rng.uniform(0, 7) == 0) {
      std::vector<bgp::PathSegment> segments;
      segments.push_back(
          bgp::PathSegment{bgp::SegmentType::kSequence, std::move(asns)});
      segments.push_back(bgp::PathSegment{
          bgp::SegmentType::kSet,
          {200 + static_cast<bgp::Asn>(rng.uniform(0, 9)),
           220 + static_cast<bgp::Asn>(rng.uniform(0, 9))}});
      pool.emplace_back(std::move(segments));
    } else {
      pool.emplace_back(std::move(asns));
    }
  }
  const std::size_t tuple_count = 200 + rng.uniform(0, 600);
  std::vector<bgp::PathCommunityTuple> tuples;
  tuples.reserve(tuple_count);
  for (std::size_t i = 0; i < tuple_count; ++i) {
    bgp::PathCommunityTuple tuple;
    tuple.path = pool[rng.uniform(0, static_cast<std::uint64_t>(pool_size - 1))];
    // Alphas overlap the path ASN range (on-path), its sibling groups, and
    // a disjoint range (always off-path).
    const std::uint16_t alpha =
        rng.uniform(0, 1) == 0
            ? static_cast<std::uint16_t>(100 + rng.uniform(0, 49))
            : static_cast<std::uint16_t>(5000 + rng.uniform(0, 9));
    tuple.community =
        Community(alpha, static_cast<std::uint16_t>(rng.uniform(0, 30)));
    tuples.push_back(std::move(tuple));
  }
  return tuples;
}

/// Sibling groups across the alpha/path ASN range, so sibling expansion
/// changes answers for some (path, alpha) pairs.
topo::OrgMap random_orgs(std::uint64_t seed) {
  util::Rng rng(seed ^ 0x9e3779b97f4a7c15ull);
  topo::OrgMap orgs;
  for (bgp::Asn asn = 100; asn < 150; ++asn)
    if (rng.uniform(0, 1) == 0)
      orgs.assign(asn, static_cast<topo::OrgId>(rng.uniform(0, 11)));
  return orgs;
}

/// Random relationships over the ASN range used by paths.
rel::RelationshipDataset random_relationships(std::uint64_t seed) {
  util::Rng rng(seed ^ 0xdeadbeefull);
  rel::RelationshipDataset rels;
  for (int i = 0; i < 120; ++i) {
    const bgp::Asn a = 100 + static_cast<bgp::Asn>(rng.uniform(0, 49));
    const bgp::Asn b = 100 + static_cast<bgp::Asn>(rng.uniform(0, 49));
    if (a == b) continue;
    if (rng.uniform(0, 2) == 0)
      rels.set_p2p(a, b);
    else
      rels.set_p2c(a, b);
  }
  return rels;
}

class ObservationInterningProperty
    : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, ObservationInterningProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

TEST_P(ObservationInterningProperty, MatchesReferenceWithoutOrgMap) {
  const auto tuples = random_tuples(GetParam());
  const ObservationConfig config;
  const auto reference = reference_build(tuples, nullptr, nullptr, config);
  expect_matches_reference(
      ObservationIndex::build(tuples, nullptr, nullptr, config), reference);
}

TEST_P(ObservationInterningProperty, MatchesReferenceWithSiblings) {
  const auto tuples = random_tuples(GetParam());
  const topo::OrgMap orgs = random_orgs(GetParam());
  const ObservationConfig config;
  const auto reference = reference_build(tuples, &orgs, nullptr, config);
  expect_matches_reference(
      ObservationIndex::build(tuples, &orgs, nullptr, config), reference);
}

TEST_P(ObservationInterningProperty, MatchesReferenceSiblingAwareOff) {
  const auto tuples = random_tuples(GetParam());
  const topo::OrgMap orgs = random_orgs(GetParam());
  ObservationConfig config;
  config.sibling_aware = false;
  const auto reference = reference_build(tuples, &orgs, nullptr, config);
  expect_matches_reference(
      ObservationIndex::build(tuples, &orgs, nullptr, config), reference);
}

TEST_P(ObservationInterningProperty, MatchesReferenceWithRelationshipVotes) {
  const auto tuples = random_tuples(GetParam());
  const topo::OrgMap orgs = random_orgs(GetParam());
  const rel::RelationshipDataset rels = random_relationships(GetParam());
  const ObservationConfig config;
  const auto reference = reference_build(tuples, &orgs, &rels, config);
  expect_matches_reference(
      ObservationIndex::build(tuples, &orgs, &rels, config), reference);
}

TEST_P(ObservationInterningProperty, ParallelMatchesReferenceAtAnyPoolSize) {
  const auto tuples = random_tuples(GetParam());
  const topo::OrgMap orgs = random_orgs(GetParam());
  const rel::RelationshipDataset rels = random_relationships(GetParam());
  const ObservationConfig config;
  const auto reference = reference_build(tuples, &orgs, &rels, config);
  for (const unsigned threads : {1u, 2u, 8u}) {
    util::ThreadPool pool(threads);
    const auto index =
        ObservationIndex::build_parallel(tuples, pool, &orgs, &rels, config);
    expect_matches_reference(index, reference);
  }
}

}  // namespace
}  // namespace bgpintent::core
