// Determinism of the parallel propagation paths: for every pool size the
// frontier-parallel wavefront relaxation must reproduce the sequential
// fixed point bit-for-bit — full route equality including communities,
// large communities, learned-from and local-pref.  This is the contract
// that lets every experiment accept an optional ThreadPool without
// perturbing committed goldens.
#include <gtest/gtest.h>

#include <vector>

#include "routing/scenario.hpp"
#include "util/thread_pool.hpp"

namespace bgpintent::routing {
namespace {

constexpr std::uint32_t kPoolSizes[] = {1, 2, 8};

ScenarioConfig config_for_seed(std::uint64_t seed) {
  ScenarioConfig cfg;
  cfg.topology.seed = seed;
  cfg.policy.seed = seed + 101;
  cfg.workload_seed = seed + 202;
  cfg.topology.tier1_count = static_cast<std::uint32_t>(4 + seed % 3);
  cfg.topology.tier2_count = static_cast<std::uint32_t>(14 + seed % 7);
  cfg.topology.stub_count = static_cast<std::uint32_t>(70 + (seed % 4) * 15);
  cfg.vantage_point_count = static_cast<std::uint32_t>(18 + (seed % 4) * 6);
  // Exercise each noise knob so the comparison covers blackholes, large
  // communities, leaks and partial feeds, not just the happy path.
  cfg.action_attach_prob = 0.5;
  cfg.private_leak_prob = 0.1;
  cfg.info_misuse_prob = 0.02;
  return cfg;
}

class ParallelPropagation : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelPropagation,
                         ::testing::Values(2, 4, 6, 10, 16, 26));

TEST_P(ParallelPropagation, SinglePrefixRibBitIdenticalAcrossPools) {
  const auto scenario = Scenario::build(config_for_seed(GetParam()));
  Simulator simulator(scenario.topology(), scenario.policies());
  // A handful of announcements is enough: every one exercises the full
  // wavefront schedule.
  std::size_t checked = 0;
  for (const Announcement& a : scenario.announcements()) {
    if (checked++ == 8) break;
    const PrefixRib sequential = simulator.propagate(a);
    for (const std::uint32_t threads : kPoolSizes) {
      util::ThreadPool pool(threads);
      const PrefixRib parallel = simulator.propagate(a, pool);
      EXPECT_EQ(sequential, parallel)
          << "pool=" << threads << " origin=" << a.origin;
    }
  }
}

TEST_P(ParallelPropagation, PropagateAllShardingIsChunkInvariant) {
  const auto scenario = Scenario::build(config_for_seed(GetParam()));
  Simulator simulator(scenario.topology(), scenario.policies());
  const auto& announcements = scenario.announcements();
  const Simulator::RibSet sequential = simulator.propagate_all(announcements);
  ASSERT_EQ(sequential.ribs.size(), announcements.size());
  for (const std::uint32_t threads : kPoolSizes) {
    util::ThreadPool pool(threads);
    const Simulator::RibSet parallel =
        simulator.propagate_all(announcements, &pool);
    ASSERT_EQ(parallel.ribs.size(), sequential.ribs.size());
    for (std::size_t i = 0; i < sequential.ribs.size(); ++i)
      EXPECT_EQ(sequential.ribs[i], parallel.ribs[i])
          << "pool=" << threads << " announcement=" << i;
  }
}

TEST_P(ParallelPropagation, ScenarioEntriesBitIdenticalAcrossPools) {
  const auto scenario = Scenario::build(config_for_seed(GetParam()));
  const std::vector<bgp::RibEntry> sequential = scenario.entries();
  for (const std::uint32_t threads : kPoolSizes) {
    util::ThreadPool pool(threads);
    const std::vector<bgp::RibEntry> parallel = scenario.entries(&pool);
    ASSERT_EQ(parallel.size(), sequential.size()) << "pool=" << threads;
    for (std::size_t i = 0; i < sequential.size(); ++i)
      EXPECT_EQ(sequential[i], parallel[i]) << "pool=" << threads;
  }
}

TEST_P(ParallelPropagation, ChurnDayEntriesBitIdenticalAcrossPools) {
  const auto scenario = Scenario::build(config_for_seed(GetParam()));
  const auto sequential = scenario.day_entries(3);
  util::ThreadPool pool(8);
  EXPECT_EQ(scenario.day_entries(3, &pool), sequential);
}

TEST(ParallelPropagation, RibSetPathIdsIndependentOfChunking) {
  // PathIds in a RibSet come from the master reintern pass, so two runs
  // with different pool sizes must agree id-for-id, not just path-for-path.
  const auto scenario = Scenario::build(config_for_seed(6));
  Simulator simulator(scenario.topology(), scenario.policies());
  const auto& announcements = scenario.announcements();
  const Simulator::RibSet a = simulator.propagate_all(announcements);
  util::ThreadPool pool(8);
  const Simulator::RibSet b = simulator.propagate_all(announcements, &pool);
  ASSERT_EQ(a.ribs.size(), b.ribs.size());
  EXPECT_EQ(a.paths->size(), b.paths->size());
  for (std::size_t i = 0; i < a.ribs.size(); ++i) {
    std::vector<bgp::PathId> ids_a, ids_b;
    a.ribs[i].for_each([&](Asn, const PrefixRib::RouteView& r) {
      ids_a.push_back(r.path_id);
    });
    b.ribs[i].for_each([&](Asn, const PrefixRib::RouteView& r) {
      ids_b.push_back(r.path_id);
    });
    EXPECT_EQ(ids_a, ids_b) << "announcement " << i;
  }
}

}  // namespace
}  // namespace bgpintent::routing
