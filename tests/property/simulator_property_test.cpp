// Property tests for the routing substrate: structural invariants of every
// simulated Internet, across seeds.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <unordered_set>

#include "rel/valley_free.hpp"
#include "routing/scenario.hpp"

namespace bgpintent::routing {
namespace {

ScenarioConfig config_for_seed(std::uint64_t seed) {
  ScenarioConfig cfg;
  cfg.topology.seed = seed;
  cfg.policy.seed = seed + 101;
  cfg.workload_seed = seed + 202;
  cfg.topology.tier1_count = static_cast<std::uint32_t>(4 + seed % 3);
  cfg.topology.tier2_count = static_cast<std::uint32_t>(14 + seed % 7);
  cfg.topology.stub_count = static_cast<std::uint32_t>(70 + (seed % 4) * 15);
  cfg.vantage_point_count = static_cast<std::uint32_t>(18 + (seed % 4) * 6);
  return cfg;
}

class SimulatorProperty : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, SimulatorProperty,
                         ::testing::Values(2, 4, 6, 10, 16, 26));

TEST_P(SimulatorProperty, PathsAreLoopFree) {
  const auto scenario = Scenario::build(config_for_seed(GetParam()));
  for (const auto& entry : scenario.entries()) {
    auto asns = entry.route.path.unique_asns();
    const std::unordered_set<bgp::Asn> unique(asns.begin(), asns.end());
    EXPECT_EQ(unique.size(), asns.size())
        << entry.route.path.to_string();
  }
}

TEST_P(SimulatorProperty, PathsStartAtVantagePointAndEndAtOrigin) {
  const auto scenario = Scenario::build(config_for_seed(GetParam()));
  std::unordered_set<bgp::Asn> origins;
  for (const auto& a : scenario.announcements()) origins.insert(a.origin);
  for (const auto& entry : scenario.entries()) {
    EXPECT_EQ(entry.route.path.first(), entry.vantage_point.asn);
    const auto origin = entry.route.path.origin();
    ASSERT_TRUE(origin);
    EXPECT_TRUE(origins.contains(*origin)) << *origin;
  }
}

TEST_P(SimulatorProperty, AllPathsValleyFreeUnderTrueRelationships) {
  const auto scenario = Scenario::build(config_for_seed(GetParam()));
  rel::RelationshipDataset truth;
  for (const auto& edge : scenario.topology().graph.all_edges()) {
    if (edge.rel == topo::Relationship::kP2C)
      truth.set_p2c(edge.a, edge.b);
    else if (edge.rel == topo::Relationship::kP2P)
      truth.set_p2p(edge.a, edge.b);
  }
  std::vector<bgp::AsPath> paths;
  for (const auto& entry : scenario.entries())
    paths.push_back(entry.route.path);
  const auto report = rel::check_paths(paths, truth);
  EXPECT_EQ(report.valleys, 0u);
  EXPECT_EQ(report.multiple_peaks, 0u);
}

TEST_P(SimulatorProperty, RouteServersNeverInPaths) {
  const auto scenario = Scenario::build(config_for_seed(GetParam()));
  std::unordered_set<bgp::Asn> route_servers;
  for (const auto& ixp : scenario.topology().ixps)
    route_servers.insert(ixp.route_server);
  for (const auto& entry : scenario.entries())
    for (const bgp::Asn asn : entry.route.path.unique_asns())
      EXPECT_FALSE(route_servers.contains(asn)) << asn;
}

TEST_P(SimulatorProperty, CommunityListsAreCanonical) {
  const auto scenario = Scenario::build(config_for_seed(GetParam()));
  for (const auto& entry : scenario.entries()) {
    const auto& communities = entry.route.communities;
    EXPECT_TRUE(std::is_sorted(communities.begin(), communities.end()));
    EXPECT_EQ(std::adjacent_find(communities.begin(), communities.end()),
              communities.end());
  }
}

TEST_P(SimulatorProperty, StrippersNeverLeakUpstreamCommunities) {
  // Any route whose path crosses a community-stripping AS below the top
  // must not carry communities attached before that AS... simplified,
  // verifiable form: a route whose FIRST hop after the VP strips carries
  // only communities attached by the VP itself (or none).
  const auto scenario = Scenario::build(config_for_seed(GetParam()));
  const auto& graph = scenario.topology().graph;
  for (const auto& entry : scenario.entries()) {
    const auto asns = entry.route.path.unique_asns();
    if (asns.size() < 2) continue;
    const topo::AsNode* second = graph.find(asns[1]);
    if (second == nullptr || !second->strips_communities) continue;
    for (const bgp::Community community : entry.route.communities)
      EXPECT_EQ(community.alpha(), entry.vantage_point.asn)
          << community.to_string() << " survived a stripping AS";
  }
}

TEST_P(SimulatorProperty, VantagePointSubsetEntriesAreSubset) {
  const auto scenario = Scenario::build(config_for_seed(GetParam()));
  if (scenario.vantage_points().size() < 4) GTEST_SKIP();
  std::vector<bgp::Asn> half(scenario.vantage_points().begin(),
                             scenario.vantage_points().begin() +
                                 static_cast<std::ptrdiff_t>(
                                     scenario.vantage_points().size() / 2));
  const auto full = scenario.entries();
  const auto sub = scenario.entries_with_vps(half);
  EXPECT_LT(sub.size(), full.size());
  // Every subset route exists in the full feed with the same path.  (The
  // community *leakage* noise is data-set dependent by design, so compare
  // route identity rather than full equality.)
  std::unordered_set<std::string> full_keys;
  for (const auto& entry : full)
    full_keys.insert(entry.route.prefix.to_string() + "|" +
                     std::to_string(entry.vantage_point.asn) + "|" +
                     entry.route.path.to_string());
  for (const auto& entry : sub)
    EXPECT_TRUE(full_keys.contains(entry.route.prefix.to_string() + "|" +
                                   std::to_string(entry.vantage_point.asn) +
                                   "|" + entry.route.path.to_string()));
}

}  // namespace
}  // namespace bgpintent::routing
