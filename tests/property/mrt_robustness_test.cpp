// Robustness of the MRT decoder against corrupted input: for any byte
// mutation of a valid stream, read_rib_entries must either succeed or throw
// MrtError — never crash, hang, or throw anything else.  Wire parsers face
// untrusted data; this is the contract fuzzers would check.
//
// The same contract holds for read_rib_entries_parallel, with the extra
// requirement that a worker-side decode error must drain cleanly through
// the bounded chunk queue — an exception may never leave in-flight chunks
// deadlocked or the pool wedged (the shared pool below would hang the
// whole suite if it did).
#include <gtest/gtest.h>

#include <sstream>

#include "mrt/mrt_file.hpp"
#include "routing/scenario.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace bgpintent::mrt {
namespace {

const std::string& valid_stream() {
  static const std::string bytes = [] {
    routing::ScenarioConfig cfg;
    cfg.topology.seed = 123;
    cfg.topology.tier1_count = 4;
    cfg.topology.tier2_count = 10;
    cfg.topology.stub_count = 30;
    cfg.vantage_point_count = 8;
    const auto scenario = routing::Scenario::build(cfg);
    std::ostringstream out;
    MrtWriter writer(out);
    const auto entries = scenario.entries();
    writer.write_rib_snapshot(entries, 0x7f000001, 1684886400);
    if (!entries.empty()) {
      writer.write_update(entries.front().vantage_point, entries.front().route,
                          1684886401);
      writer.write_state_change(entries.front().vantage_point, 6, 1,
                                1684886402);
    }
    return out.str();
  }();
  return bytes;
}

/// One pool shared by every mutation of a test case: reusing it across
/// hundreds of corrupted inputs is itself part of the property — an error
/// that poisoned the pool or leaked an in-flight chunk would hang or fail
/// later iterations.
util::ThreadPool& shared_pool() {
  static util::ThreadPool pool(4);
  return pool;
}

/// Runs the corrupted bytes through the parallel reader; success or
/// MrtError are both acceptable, anything else fails the test.
void expect_parallel_read_is_clean(const std::string& bytes) {
  std::istringstream in(bytes);
  try {
    (void)read_rib_entries_parallel(in, shared_pool());
  } catch (const MrtError&) {
  }
}

class MrtRobustness : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(MutationSeeds, MrtRobustness,
                         ::testing::Range<std::uint64_t>(0, 12));

TEST_P(MrtRobustness, SingleByteFlipsNeverCrash) {
  util::Rng rng(GetParam() * 7919 + 1);
  std::string bytes = valid_stream();
  for (int mutation = 0; mutation < 200; ++mutation) {
    std::string corrupted = bytes;
    const std::size_t pos = rng.index(corrupted.size());
    corrupted[pos] =
        static_cast<char>(rng.uniform(0, 255));
    std::istringstream in(corrupted);
    try {
      const auto entries = read_rib_entries(in);
      (void)entries;  // success with altered content is acceptable
    } catch (const MrtError&) {
      // rejected cleanly: acceptable
    }
  }
}

TEST_P(MrtRobustness, TruncationsNeverCrash) {
  util::Rng rng(GetParam() * 104729 + 3);
  const std::string& bytes = valid_stream();
  for (int mutation = 0; mutation < 50; ++mutation) {
    const std::size_t keep = rng.index(bytes.size());
    std::istringstream in(bytes.substr(0, keep));
    try {
      (void)read_rib_entries(in);
    } catch (const MrtError&) {
    }
  }
}

TEST_P(MrtRobustness, MultiByteGarbageNeverCrashes) {
  util::Rng rng(GetParam() * 31337 + 5);
  for (int mutation = 0; mutation < 20; ++mutation) {
    std::string garbage(rng.index(4096), '\0');
    for (char& c : garbage) c = static_cast<char>(rng.uniform(0, 255));
    std::istringstream in(garbage);
    try {
      (void)read_rib_entries(in);
    } catch (const MrtError&) {
    }
  }
}

TEST_P(MrtRobustness, SingleByteFlipsNeverCrashParallelPath) {
  util::Rng rng(GetParam() * 7919 + 1);
  std::string bytes = valid_stream();
  for (int mutation = 0; mutation < 60; ++mutation) {
    std::string corrupted = bytes;
    const std::size_t pos = rng.index(corrupted.size());
    corrupted[pos] = static_cast<char>(rng.uniform(0, 255));
    expect_parallel_read_is_clean(corrupted);
  }
}

TEST_P(MrtRobustness, TruncationsNeverCrashOrDeadlockParallelPath) {
  util::Rng rng(GetParam() * 104729 + 3);
  const std::string& bytes = valid_stream();
  for (int mutation = 0; mutation < 25; ++mutation) {
    const std::size_t keep = rng.index(bytes.size());
    expect_parallel_read_is_clean(bytes.substr(0, keep));
  }
}

TEST_P(MrtRobustness, MultiByteGarbageNeverCrashesParallelPath) {
  util::Rng rng(GetParam() * 31337 + 5);
  for (int mutation = 0; mutation < 10; ++mutation) {
    std::string garbage(rng.index(4096), '\0');
    for (char& c : garbage) c = static_cast<char>(rng.uniform(0, 255));
    expect_parallel_read_is_clean(garbage);
  }
}

TEST(MrtRobustness, ValidStreamStillParses) {
  std::istringstream in(valid_stream());
  EXPECT_GT(read_rib_entries(in).size(), 10u);
}

TEST(MrtRobustness, ParallelReadMatchesSequentialOnValidStream) {
  std::istringstream seq_in(valid_stream());
  const auto sequential = read_rib_entries(seq_in);
  std::istringstream par_in(valid_stream());
  const auto parallel = read_rib_entries_parallel(par_in, shared_pool());
  EXPECT_EQ(parallel, sequential);
}

}  // namespace
}  // namespace bgpintent::mrt
