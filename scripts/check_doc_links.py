#!/usr/bin/env python3
"""Fail on dead relative links in markdown files.

Usage: check_doc_links.py FILE.md [FILE.md ...]

Scans each file for inline markdown links ``[text](target)`` and checks
that every *relative* target resolves — relative to the linking file's
directory — to an existing file or directory in the repository.  Absolute
URLs (http/https/mailto) and pure in-page anchors (``#section``) are
skipped; a ``path#anchor`` target is checked for the path part only.
Exits 1 and lists every dead link if any target is missing.
"""

import re
import sys
from pathlib import Path

LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
SKIP = ("http://", "https://", "mailto:", "#")


def dead_links(md: Path) -> list[tuple[int, str]]:
    dead = []
    for lineno, line in enumerate(md.read_text(encoding="utf-8").splitlines(), 1):
        for target in LINK.findall(line):
            if target.startswith(SKIP):
                continue
            path = target.split("#", 1)[0]
            if not path:
                continue
            if not (md.parent / path).exists():
                dead.append((lineno, target))
    return dead


def main(argv: list[str]) -> int:
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    failures = 0
    for name in argv[1:]:
        md = Path(name)
        if not md.exists():
            print(f"{name}: file not found", file=sys.stderr)
            failures += 1
            continue
        for lineno, target in dead_links(md):
            print(f"{name}:{lineno}: dead link: {target}", file=sys.stderr)
            failures += 1
    if failures:
        print(f"\n{failures} dead link(s)", file=sys.stderr)
        return 1
    print(f"all relative links resolve in {len(argv) - 1} file(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
