# Empty compiler generated dependencies file for fig10_vantage_points.
# This may be replaced when dependencies are built.
