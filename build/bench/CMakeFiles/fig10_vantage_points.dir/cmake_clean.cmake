file(REMOVE_RECURSE
  "CMakeFiles/fig10_vantage_points.dir/fig10_vantage_points.cpp.o"
  "CMakeFiles/fig10_vantage_points.dir/fig10_vantage_points.cpp.o.d"
  "fig10_vantage_points"
  "fig10_vantage_points.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_vantage_points.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
