file(REMOVE_RECURSE
  "CMakeFiles/table1_locinfer.dir/table1_locinfer.cpp.o"
  "CMakeFiles/table1_locinfer.dir/table1_locinfer.cpp.o.d"
  "table1_locinfer"
  "table1_locinfer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_locinfer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
