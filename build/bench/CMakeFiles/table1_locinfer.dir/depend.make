# Empty dependencies file for table1_locinfer.
# This may be replaced when dependencies are built.
