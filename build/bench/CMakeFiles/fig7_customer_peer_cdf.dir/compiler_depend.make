# Empty compiler generated dependencies file for fig7_customer_peer_cdf.
# This may be replaced when dependencies are built.
