file(REMOVE_RECURSE
  "CMakeFiles/fig7_customer_peer_cdf.dir/fig7_customer_peer_cdf.cpp.o"
  "CMakeFiles/fig7_customer_peer_cdf.dir/fig7_customer_peer_cdf.cpp.o.d"
  "fig7_customer_peer_cdf"
  "fig7_customer_peer_cdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_customer_peer_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
