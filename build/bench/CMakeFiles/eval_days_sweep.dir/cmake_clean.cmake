file(REMOVE_RECURSE
  "CMakeFiles/eval_days_sweep.dir/eval_days_sweep.cpp.o"
  "CMakeFiles/eval_days_sweep.dir/eval_days_sweep.cpp.o.d"
  "eval_days_sweep"
  "eval_days_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eval_days_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
