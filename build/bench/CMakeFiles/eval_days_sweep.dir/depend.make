# Empty dependencies file for eval_days_sweep.
# This may be replaced when dependencies are built.
