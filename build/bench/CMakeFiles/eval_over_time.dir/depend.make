# Empty dependencies file for eval_over_time.
# This may be replaced when dependencies are built.
