file(REMOVE_RECURSE
  "CMakeFiles/eval_over_time.dir/eval_over_time.cpp.o"
  "CMakeFiles/eval_over_time.dir/eval_over_time.cpp.o.d"
  "eval_over_time"
  "eval_over_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eval_over_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
