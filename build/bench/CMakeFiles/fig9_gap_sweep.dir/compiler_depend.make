# Empty compiler generated dependencies file for fig9_gap_sweep.
# This may be replaced when dependencies are built.
