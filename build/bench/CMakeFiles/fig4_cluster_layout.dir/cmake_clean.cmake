file(REMOVE_RECURSE
  "CMakeFiles/fig4_cluster_layout.dir/fig4_cluster_layout.cpp.o"
  "CMakeFiles/fig4_cluster_layout.dir/fig4_cluster_layout.cpp.o.d"
  "fig4_cluster_layout"
  "fig4_cluster_layout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_cluster_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
