# Empty dependencies file for fig4_cluster_layout.
# This may be replaced when dependencies are built.
