# Empty dependencies file for fig6_onpath_ratio_cdf.
# This may be replaced when dependencies are built.
