file(REMOVE_RECURSE
  "CMakeFiles/eval_overall.dir/eval_overall.cpp.o"
  "CMakeFiles/eval_overall.dir/eval_overall.cpp.o.d"
  "eval_overall"
  "eval_overall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eval_overall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
