# Empty dependencies file for eval_overall.
# This may be replaced when dependencies are built.
