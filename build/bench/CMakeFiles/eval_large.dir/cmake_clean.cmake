file(REMOVE_RECURSE
  "CMakeFiles/eval_large.dir/eval_large.cpp.o"
  "CMakeFiles/eval_large.dir/eval_large.cpp.o.d"
  "eval_large"
  "eval_large.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eval_large.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
