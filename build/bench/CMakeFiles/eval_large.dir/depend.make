# Empty dependencies file for eval_large.
# This may be replaced when dependencies are built.
