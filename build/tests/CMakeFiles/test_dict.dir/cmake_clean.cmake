file(REMOVE_RECURSE
  "CMakeFiles/test_dict.dir/dict/dictionary_test.cpp.o"
  "CMakeFiles/test_dict.dir/dict/dictionary_test.cpp.o.d"
  "CMakeFiles/test_dict.dir/dict/intent_test.cpp.o"
  "CMakeFiles/test_dict.dir/dict/intent_test.cpp.o.d"
  "CMakeFiles/test_dict.dir/dict/pattern_test.cpp.o"
  "CMakeFiles/test_dict.dir/dict/pattern_test.cpp.o.d"
  "test_dict"
  "test_dict.pdb"
  "test_dict[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dict.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
