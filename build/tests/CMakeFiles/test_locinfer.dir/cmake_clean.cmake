file(REMOVE_RECURSE
  "CMakeFiles/test_locinfer.dir/locinfer/locinfer_test.cpp.o"
  "CMakeFiles/test_locinfer.dir/locinfer/locinfer_test.cpp.o.d"
  "test_locinfer"
  "test_locinfer.pdb"
  "test_locinfer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_locinfer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
