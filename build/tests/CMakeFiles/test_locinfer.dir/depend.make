# Empty dependencies file for test_locinfer.
# This may be replaced when dependencies are built.
