file(REMOVE_RECURSE
  "CMakeFiles/test_bgp.dir/bgp/asn_test.cpp.o"
  "CMakeFiles/test_bgp.dir/bgp/asn_test.cpp.o.d"
  "CMakeFiles/test_bgp.dir/bgp/aspath_test.cpp.o"
  "CMakeFiles/test_bgp.dir/bgp/aspath_test.cpp.o.d"
  "CMakeFiles/test_bgp.dir/bgp/community_test.cpp.o"
  "CMakeFiles/test_bgp.dir/bgp/community_test.cpp.o.d"
  "CMakeFiles/test_bgp.dir/bgp/extcommunity_test.cpp.o"
  "CMakeFiles/test_bgp.dir/bgp/extcommunity_test.cpp.o.d"
  "CMakeFiles/test_bgp.dir/bgp/prefix_test.cpp.o"
  "CMakeFiles/test_bgp.dir/bgp/prefix_test.cpp.o.d"
  "CMakeFiles/test_bgp.dir/bgp/prefix_trie_test.cpp.o"
  "CMakeFiles/test_bgp.dir/bgp/prefix_trie_test.cpp.o.d"
  "CMakeFiles/test_bgp.dir/bgp/route_test.cpp.o"
  "CMakeFiles/test_bgp.dir/bgp/route_test.cpp.o.d"
  "test_bgp"
  "test_bgp.pdb"
  "test_bgp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bgp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
