
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/bgp/asn_test.cpp" "tests/CMakeFiles/test_bgp.dir/bgp/asn_test.cpp.o" "gcc" "tests/CMakeFiles/test_bgp.dir/bgp/asn_test.cpp.o.d"
  "/root/repo/tests/bgp/aspath_test.cpp" "tests/CMakeFiles/test_bgp.dir/bgp/aspath_test.cpp.o" "gcc" "tests/CMakeFiles/test_bgp.dir/bgp/aspath_test.cpp.o.d"
  "/root/repo/tests/bgp/community_test.cpp" "tests/CMakeFiles/test_bgp.dir/bgp/community_test.cpp.o" "gcc" "tests/CMakeFiles/test_bgp.dir/bgp/community_test.cpp.o.d"
  "/root/repo/tests/bgp/extcommunity_test.cpp" "tests/CMakeFiles/test_bgp.dir/bgp/extcommunity_test.cpp.o" "gcc" "tests/CMakeFiles/test_bgp.dir/bgp/extcommunity_test.cpp.o.d"
  "/root/repo/tests/bgp/prefix_test.cpp" "tests/CMakeFiles/test_bgp.dir/bgp/prefix_test.cpp.o" "gcc" "tests/CMakeFiles/test_bgp.dir/bgp/prefix_test.cpp.o.d"
  "/root/repo/tests/bgp/prefix_trie_test.cpp" "tests/CMakeFiles/test_bgp.dir/bgp/prefix_trie_test.cpp.o" "gcc" "tests/CMakeFiles/test_bgp.dir/bgp/prefix_trie_test.cpp.o.d"
  "/root/repo/tests/bgp/route_test.cpp" "tests/CMakeFiles/test_bgp.dir/bgp/route_test.cpp.o" "gcc" "tests/CMakeFiles/test_bgp.dir/bgp/route_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bgp/CMakeFiles/bgpintent_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bgpintent_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
