file(REMOVE_RECURSE
  "CMakeFiles/test_rel.dir/rel/asrank_test.cpp.o"
  "CMakeFiles/test_rel.dir/rel/asrank_test.cpp.o.d"
  "CMakeFiles/test_rel.dir/rel/dataset_test.cpp.o"
  "CMakeFiles/test_rel.dir/rel/dataset_test.cpp.o.d"
  "CMakeFiles/test_rel.dir/rel/valley_free_test.cpp.o"
  "CMakeFiles/test_rel.dir/rel/valley_free_test.cpp.o.d"
  "test_rel"
  "test_rel.pdb"
  "test_rel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
