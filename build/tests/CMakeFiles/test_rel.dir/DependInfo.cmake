
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/rel/asrank_test.cpp" "tests/CMakeFiles/test_rel.dir/rel/asrank_test.cpp.o" "gcc" "tests/CMakeFiles/test_rel.dir/rel/asrank_test.cpp.o.d"
  "/root/repo/tests/rel/dataset_test.cpp" "tests/CMakeFiles/test_rel.dir/rel/dataset_test.cpp.o" "gcc" "tests/CMakeFiles/test_rel.dir/rel/dataset_test.cpp.o.d"
  "/root/repo/tests/rel/valley_free_test.cpp" "tests/CMakeFiles/test_rel.dir/rel/valley_free_test.cpp.o" "gcc" "tests/CMakeFiles/test_rel.dir/rel/valley_free_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rel/CMakeFiles/bgpintent_rel.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/bgpintent_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/bgpintent_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/dict/CMakeFiles/bgpintent_dict.dir/DependInfo.cmake"
  "/root/repo/build/src/bgp/CMakeFiles/bgpintent_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bgpintent_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
