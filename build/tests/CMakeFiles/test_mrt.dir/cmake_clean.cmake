file(REMOVE_RECURSE
  "CMakeFiles/test_mrt.dir/mrt/bgp_message_test.cpp.o"
  "CMakeFiles/test_mrt.dir/mrt/bgp_message_test.cpp.o.d"
  "CMakeFiles/test_mrt.dir/mrt/buffer_test.cpp.o"
  "CMakeFiles/test_mrt.dir/mrt/buffer_test.cpp.o.d"
  "CMakeFiles/test_mrt.dir/mrt/legacy_test.cpp.o"
  "CMakeFiles/test_mrt.dir/mrt/legacy_test.cpp.o.d"
  "CMakeFiles/test_mrt.dir/mrt/mrt_file_test.cpp.o"
  "CMakeFiles/test_mrt.dir/mrt/mrt_file_test.cpp.o.d"
  "test_mrt"
  "test_mrt.pdb"
  "test_mrt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mrt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
