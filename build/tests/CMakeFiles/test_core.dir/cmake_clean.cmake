file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/classifier_test.cpp.o"
  "CMakeFiles/test_core.dir/core/classifier_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/clustering_test.cpp.o"
  "CMakeFiles/test_core.dir/core/clustering_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/evaluation_test.cpp.o"
  "CMakeFiles/test_core.dir/core/evaluation_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/incremental_test.cpp.o"
  "CMakeFiles/test_core.dir/core/incremental_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/large_test.cpp.o"
  "CMakeFiles/test_core.dir/core/large_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/observations_test.cpp.o"
  "CMakeFiles/test_core.dir/core/observations_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/pipeline_test.cpp.o"
  "CMakeFiles/test_core.dir/core/pipeline_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/summarize_test.cpp.o"
  "CMakeFiles/test_core.dir/core/summarize_test.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
