# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_bgp[1]_include.cmake")
include("/root/repo/build/tests/test_dict[1]_include.cmake")
include("/root/repo/build/tests/test_topo[1]_include.cmake")
include("/root/repo/build/tests/test_routing[1]_include.cmake")
include("/root/repo/build/tests/test_locinfer[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_rel[1]_include.cmake")
include("/root/repo/build/tests/test_mrt[1]_include.cmake")
include("/root/repo/build/tests/test_cli[1]_include.cmake")
include("/root/repo/build/tests/test_property[1]_include.cmake")
