# Empty dependencies file for anomaly_watch.
# This may be replaced when dependencies are built.
