file(REMOVE_RECURSE
  "CMakeFiles/infer_from_mrt.dir/infer_from_mrt.cpp.o"
  "CMakeFiles/infer_from_mrt.dir/infer_from_mrt.cpp.o.d"
  "infer_from_mrt"
  "infer_from_mrt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/infer_from_mrt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
