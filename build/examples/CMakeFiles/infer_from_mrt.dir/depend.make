# Empty dependencies file for infer_from_mrt.
# This may be replaced when dependencies are built.
