# Empty dependencies file for bgpintent_topo.
# This may be replaced when dependencies are built.
