file(REMOVE_RECURSE
  "CMakeFiles/bgpintent_topo.dir/as_graph.cpp.o"
  "CMakeFiles/bgpintent_topo.dir/as_graph.cpp.o.d"
  "CMakeFiles/bgpintent_topo.dir/generator.cpp.o"
  "CMakeFiles/bgpintent_topo.dir/generator.cpp.o.d"
  "CMakeFiles/bgpintent_topo.dir/org_map.cpp.o"
  "CMakeFiles/bgpintent_topo.dir/org_map.cpp.o.d"
  "libbgpintent_topo.a"
  "libbgpintent_topo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgpintent_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
