file(REMOVE_RECURSE
  "libbgpintent_topo.a"
)
