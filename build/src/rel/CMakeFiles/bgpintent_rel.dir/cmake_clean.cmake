file(REMOVE_RECURSE
  "CMakeFiles/bgpintent_rel.dir/asrank.cpp.o"
  "CMakeFiles/bgpintent_rel.dir/asrank.cpp.o.d"
  "CMakeFiles/bgpintent_rel.dir/dataset.cpp.o"
  "CMakeFiles/bgpintent_rel.dir/dataset.cpp.o.d"
  "CMakeFiles/bgpintent_rel.dir/valley_free.cpp.o"
  "CMakeFiles/bgpintent_rel.dir/valley_free.cpp.o.d"
  "libbgpintent_rel.a"
  "libbgpintent_rel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgpintent_rel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
