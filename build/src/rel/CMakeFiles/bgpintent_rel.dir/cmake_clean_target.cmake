file(REMOVE_RECURSE
  "libbgpintent_rel.a"
)
