# Empty dependencies file for bgpintent_rel.
# This may be replaced when dependencies are built.
