
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rel/asrank.cpp" "src/rel/CMakeFiles/bgpintent_rel.dir/asrank.cpp.o" "gcc" "src/rel/CMakeFiles/bgpintent_rel.dir/asrank.cpp.o.d"
  "/root/repo/src/rel/dataset.cpp" "src/rel/CMakeFiles/bgpintent_rel.dir/dataset.cpp.o" "gcc" "src/rel/CMakeFiles/bgpintent_rel.dir/dataset.cpp.o.d"
  "/root/repo/src/rel/valley_free.cpp" "src/rel/CMakeFiles/bgpintent_rel.dir/valley_free.cpp.o" "gcc" "src/rel/CMakeFiles/bgpintent_rel.dir/valley_free.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bgp/CMakeFiles/bgpintent_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/bgpintent_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bgpintent_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
