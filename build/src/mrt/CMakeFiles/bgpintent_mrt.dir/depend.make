# Empty dependencies file for bgpintent_mrt.
# This may be replaced when dependencies are built.
