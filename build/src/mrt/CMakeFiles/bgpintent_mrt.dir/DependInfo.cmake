
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mrt/bgp_message.cpp" "src/mrt/CMakeFiles/bgpintent_mrt.dir/bgp_message.cpp.o" "gcc" "src/mrt/CMakeFiles/bgpintent_mrt.dir/bgp_message.cpp.o.d"
  "/root/repo/src/mrt/buffer.cpp" "src/mrt/CMakeFiles/bgpintent_mrt.dir/buffer.cpp.o" "gcc" "src/mrt/CMakeFiles/bgpintent_mrt.dir/buffer.cpp.o.d"
  "/root/repo/src/mrt/mrt_file.cpp" "src/mrt/CMakeFiles/bgpintent_mrt.dir/mrt_file.cpp.o" "gcc" "src/mrt/CMakeFiles/bgpintent_mrt.dir/mrt_file.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bgp/CMakeFiles/bgpintent_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bgpintent_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
