file(REMOVE_RECURSE
  "libbgpintent_mrt.a"
)
