file(REMOVE_RECURSE
  "CMakeFiles/bgpintent_mrt.dir/bgp_message.cpp.o"
  "CMakeFiles/bgpintent_mrt.dir/bgp_message.cpp.o.d"
  "CMakeFiles/bgpintent_mrt.dir/buffer.cpp.o"
  "CMakeFiles/bgpintent_mrt.dir/buffer.cpp.o.d"
  "CMakeFiles/bgpintent_mrt.dir/mrt_file.cpp.o"
  "CMakeFiles/bgpintent_mrt.dir/mrt_file.cpp.o.d"
  "libbgpintent_mrt.a"
  "libbgpintent_mrt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgpintent_mrt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
