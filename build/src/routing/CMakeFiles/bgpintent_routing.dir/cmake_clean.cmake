file(REMOVE_RECURSE
  "CMakeFiles/bgpintent_routing.dir/policy.cpp.o"
  "CMakeFiles/bgpintent_routing.dir/policy.cpp.o.d"
  "CMakeFiles/bgpintent_routing.dir/scenario.cpp.o"
  "CMakeFiles/bgpintent_routing.dir/scenario.cpp.o.d"
  "CMakeFiles/bgpintent_routing.dir/simulator.cpp.o"
  "CMakeFiles/bgpintent_routing.dir/simulator.cpp.o.d"
  "libbgpintent_routing.a"
  "libbgpintent_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgpintent_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
