file(REMOVE_RECURSE
  "libbgpintent_routing.a"
)
