# Empty dependencies file for bgpintent_routing.
# This may be replaced when dependencies are built.
