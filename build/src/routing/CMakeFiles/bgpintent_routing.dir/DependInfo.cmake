
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/routing/policy.cpp" "src/routing/CMakeFiles/bgpintent_routing.dir/policy.cpp.o" "gcc" "src/routing/CMakeFiles/bgpintent_routing.dir/policy.cpp.o.d"
  "/root/repo/src/routing/scenario.cpp" "src/routing/CMakeFiles/bgpintent_routing.dir/scenario.cpp.o" "gcc" "src/routing/CMakeFiles/bgpintent_routing.dir/scenario.cpp.o.d"
  "/root/repo/src/routing/simulator.cpp" "src/routing/CMakeFiles/bgpintent_routing.dir/simulator.cpp.o" "gcc" "src/routing/CMakeFiles/bgpintent_routing.dir/simulator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bgp/CMakeFiles/bgpintent_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/dict/CMakeFiles/bgpintent_dict.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/bgpintent_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bgpintent_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
