file(REMOVE_RECURSE
  "CMakeFiles/bgpintent_core.dir/classifier.cpp.o"
  "CMakeFiles/bgpintent_core.dir/classifier.cpp.o.d"
  "CMakeFiles/bgpintent_core.dir/clustering.cpp.o"
  "CMakeFiles/bgpintent_core.dir/clustering.cpp.o.d"
  "CMakeFiles/bgpintent_core.dir/evaluation.cpp.o"
  "CMakeFiles/bgpintent_core.dir/evaluation.cpp.o.d"
  "CMakeFiles/bgpintent_core.dir/incremental.cpp.o"
  "CMakeFiles/bgpintent_core.dir/incremental.cpp.o.d"
  "CMakeFiles/bgpintent_core.dir/large.cpp.o"
  "CMakeFiles/bgpintent_core.dir/large.cpp.o.d"
  "CMakeFiles/bgpintent_core.dir/observations.cpp.o"
  "CMakeFiles/bgpintent_core.dir/observations.cpp.o.d"
  "CMakeFiles/bgpintent_core.dir/pipeline.cpp.o"
  "CMakeFiles/bgpintent_core.dir/pipeline.cpp.o.d"
  "CMakeFiles/bgpintent_core.dir/summarize.cpp.o"
  "CMakeFiles/bgpintent_core.dir/summarize.cpp.o.d"
  "libbgpintent_core.a"
  "libbgpintent_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgpintent_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
