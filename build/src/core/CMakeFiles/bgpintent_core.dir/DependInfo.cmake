
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/classifier.cpp" "src/core/CMakeFiles/bgpintent_core.dir/classifier.cpp.o" "gcc" "src/core/CMakeFiles/bgpintent_core.dir/classifier.cpp.o.d"
  "/root/repo/src/core/clustering.cpp" "src/core/CMakeFiles/bgpintent_core.dir/clustering.cpp.o" "gcc" "src/core/CMakeFiles/bgpintent_core.dir/clustering.cpp.o.d"
  "/root/repo/src/core/evaluation.cpp" "src/core/CMakeFiles/bgpintent_core.dir/evaluation.cpp.o" "gcc" "src/core/CMakeFiles/bgpintent_core.dir/evaluation.cpp.o.d"
  "/root/repo/src/core/incremental.cpp" "src/core/CMakeFiles/bgpintent_core.dir/incremental.cpp.o" "gcc" "src/core/CMakeFiles/bgpintent_core.dir/incremental.cpp.o.d"
  "/root/repo/src/core/large.cpp" "src/core/CMakeFiles/bgpintent_core.dir/large.cpp.o" "gcc" "src/core/CMakeFiles/bgpintent_core.dir/large.cpp.o.d"
  "/root/repo/src/core/observations.cpp" "src/core/CMakeFiles/bgpintent_core.dir/observations.cpp.o" "gcc" "src/core/CMakeFiles/bgpintent_core.dir/observations.cpp.o.d"
  "/root/repo/src/core/pipeline.cpp" "src/core/CMakeFiles/bgpintent_core.dir/pipeline.cpp.o" "gcc" "src/core/CMakeFiles/bgpintent_core.dir/pipeline.cpp.o.d"
  "/root/repo/src/core/summarize.cpp" "src/core/CMakeFiles/bgpintent_core.dir/summarize.cpp.o" "gcc" "src/core/CMakeFiles/bgpintent_core.dir/summarize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bgp/CMakeFiles/bgpintent_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/dict/CMakeFiles/bgpintent_dict.dir/DependInfo.cmake"
  "/root/repo/build/src/rel/CMakeFiles/bgpintent_rel.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/bgpintent_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bgpintent_util.dir/DependInfo.cmake"
  "/root/repo/build/src/mrt/CMakeFiles/bgpintent_mrt.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
