file(REMOVE_RECURSE
  "libbgpintent_core.a"
)
