# Empty compiler generated dependencies file for bgpintent_core.
# This may be replaced when dependencies are built.
