# Empty dependencies file for bgpintent_dict.
# This may be replaced when dependencies are built.
