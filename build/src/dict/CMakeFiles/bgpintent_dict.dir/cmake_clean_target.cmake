file(REMOVE_RECURSE
  "libbgpintent_dict.a"
)
