file(REMOVE_RECURSE
  "CMakeFiles/bgpintent_dict.dir/builtin.cpp.o"
  "CMakeFiles/bgpintent_dict.dir/builtin.cpp.o.d"
  "CMakeFiles/bgpintent_dict.dir/dictionary.cpp.o"
  "CMakeFiles/bgpintent_dict.dir/dictionary.cpp.o.d"
  "CMakeFiles/bgpintent_dict.dir/intent.cpp.o"
  "CMakeFiles/bgpintent_dict.dir/intent.cpp.o.d"
  "CMakeFiles/bgpintent_dict.dir/pattern.cpp.o"
  "CMakeFiles/bgpintent_dict.dir/pattern.cpp.o.d"
  "libbgpintent_dict.a"
  "libbgpintent_dict.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgpintent_dict.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
