
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dict/builtin.cpp" "src/dict/CMakeFiles/bgpintent_dict.dir/builtin.cpp.o" "gcc" "src/dict/CMakeFiles/bgpintent_dict.dir/builtin.cpp.o.d"
  "/root/repo/src/dict/dictionary.cpp" "src/dict/CMakeFiles/bgpintent_dict.dir/dictionary.cpp.o" "gcc" "src/dict/CMakeFiles/bgpintent_dict.dir/dictionary.cpp.o.d"
  "/root/repo/src/dict/intent.cpp" "src/dict/CMakeFiles/bgpintent_dict.dir/intent.cpp.o" "gcc" "src/dict/CMakeFiles/bgpintent_dict.dir/intent.cpp.o.d"
  "/root/repo/src/dict/pattern.cpp" "src/dict/CMakeFiles/bgpintent_dict.dir/pattern.cpp.o" "gcc" "src/dict/CMakeFiles/bgpintent_dict.dir/pattern.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bgp/CMakeFiles/bgpintent_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bgpintent_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
