file(REMOVE_RECURSE
  "CMakeFiles/bgpintent.dir/main.cpp.o"
  "CMakeFiles/bgpintent.dir/main.cpp.o.d"
  "bgpintent"
  "bgpintent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgpintent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
