# Empty compiler generated dependencies file for bgpintent.
# This may be replaced when dependencies are built.
