# Empty compiler generated dependencies file for bgpintent_cli.
# This may be replaced when dependencies are built.
