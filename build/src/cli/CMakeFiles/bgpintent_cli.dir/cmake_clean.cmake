file(REMOVE_RECURSE
  "CMakeFiles/bgpintent_cli.dir/args.cpp.o"
  "CMakeFiles/bgpintent_cli.dir/args.cpp.o.d"
  "CMakeFiles/bgpintent_cli.dir/commands.cpp.o"
  "CMakeFiles/bgpintent_cli.dir/commands.cpp.o.d"
  "libbgpintent_cli.a"
  "libbgpintent_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgpintent_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
