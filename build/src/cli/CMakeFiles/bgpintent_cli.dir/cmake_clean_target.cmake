file(REMOVE_RECURSE
  "libbgpintent_cli.a"
)
