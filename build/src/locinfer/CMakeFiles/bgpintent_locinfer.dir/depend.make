# Empty dependencies file for bgpintent_locinfer.
# This may be replaced when dependencies are built.
