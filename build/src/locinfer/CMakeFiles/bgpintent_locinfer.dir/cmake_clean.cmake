file(REMOVE_RECURSE
  "CMakeFiles/bgpintent_locinfer.dir/locinfer.cpp.o"
  "CMakeFiles/bgpintent_locinfer.dir/locinfer.cpp.o.d"
  "libbgpintent_locinfer.a"
  "libbgpintent_locinfer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgpintent_locinfer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
