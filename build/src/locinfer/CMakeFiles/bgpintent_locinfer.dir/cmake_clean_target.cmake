file(REMOVE_RECURSE
  "libbgpintent_locinfer.a"
)
