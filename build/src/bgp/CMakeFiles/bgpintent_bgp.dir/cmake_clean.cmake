file(REMOVE_RECURSE
  "CMakeFiles/bgpintent_bgp.dir/asn.cpp.o"
  "CMakeFiles/bgpintent_bgp.dir/asn.cpp.o.d"
  "CMakeFiles/bgpintent_bgp.dir/aspath.cpp.o"
  "CMakeFiles/bgpintent_bgp.dir/aspath.cpp.o.d"
  "CMakeFiles/bgpintent_bgp.dir/community.cpp.o"
  "CMakeFiles/bgpintent_bgp.dir/community.cpp.o.d"
  "CMakeFiles/bgpintent_bgp.dir/extcommunity.cpp.o"
  "CMakeFiles/bgpintent_bgp.dir/extcommunity.cpp.o.d"
  "CMakeFiles/bgpintent_bgp.dir/prefix.cpp.o"
  "CMakeFiles/bgpintent_bgp.dir/prefix.cpp.o.d"
  "CMakeFiles/bgpintent_bgp.dir/route.cpp.o"
  "CMakeFiles/bgpintent_bgp.dir/route.cpp.o.d"
  "libbgpintent_bgp.a"
  "libbgpintent_bgp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgpintent_bgp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
