# Empty compiler generated dependencies file for bgpintent_bgp.
# This may be replaced when dependencies are built.
