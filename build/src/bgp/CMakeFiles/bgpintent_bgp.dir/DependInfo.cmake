
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bgp/asn.cpp" "src/bgp/CMakeFiles/bgpintent_bgp.dir/asn.cpp.o" "gcc" "src/bgp/CMakeFiles/bgpintent_bgp.dir/asn.cpp.o.d"
  "/root/repo/src/bgp/aspath.cpp" "src/bgp/CMakeFiles/bgpintent_bgp.dir/aspath.cpp.o" "gcc" "src/bgp/CMakeFiles/bgpintent_bgp.dir/aspath.cpp.o.d"
  "/root/repo/src/bgp/community.cpp" "src/bgp/CMakeFiles/bgpintent_bgp.dir/community.cpp.o" "gcc" "src/bgp/CMakeFiles/bgpintent_bgp.dir/community.cpp.o.d"
  "/root/repo/src/bgp/extcommunity.cpp" "src/bgp/CMakeFiles/bgpintent_bgp.dir/extcommunity.cpp.o" "gcc" "src/bgp/CMakeFiles/bgpintent_bgp.dir/extcommunity.cpp.o.d"
  "/root/repo/src/bgp/prefix.cpp" "src/bgp/CMakeFiles/bgpintent_bgp.dir/prefix.cpp.o" "gcc" "src/bgp/CMakeFiles/bgpintent_bgp.dir/prefix.cpp.o.d"
  "/root/repo/src/bgp/route.cpp" "src/bgp/CMakeFiles/bgpintent_bgp.dir/route.cpp.o" "gcc" "src/bgp/CMakeFiles/bgpintent_bgp.dir/route.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/bgpintent_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
