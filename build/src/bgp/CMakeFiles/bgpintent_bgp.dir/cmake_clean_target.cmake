file(REMOVE_RECURSE
  "libbgpintent_bgp.a"
)
