file(REMOVE_RECURSE
  "CMakeFiles/bgpintent_util.dir/csv.cpp.o"
  "CMakeFiles/bgpintent_util.dir/csv.cpp.o.d"
  "CMakeFiles/bgpintent_util.dir/log.cpp.o"
  "CMakeFiles/bgpintent_util.dir/log.cpp.o.d"
  "CMakeFiles/bgpintent_util.dir/rng.cpp.o"
  "CMakeFiles/bgpintent_util.dir/rng.cpp.o.d"
  "CMakeFiles/bgpintent_util.dir/stats.cpp.o"
  "CMakeFiles/bgpintent_util.dir/stats.cpp.o.d"
  "CMakeFiles/bgpintent_util.dir/strings.cpp.o"
  "CMakeFiles/bgpintent_util.dir/strings.cpp.o.d"
  "CMakeFiles/bgpintent_util.dir/table.cpp.o"
  "CMakeFiles/bgpintent_util.dir/table.cpp.o.d"
  "libbgpintent_util.a"
  "libbgpintent_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgpintent_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
