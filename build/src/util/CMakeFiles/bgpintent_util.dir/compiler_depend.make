# Empty compiler generated dependencies file for bgpintent_util.
# This may be replaced when dependencies are built.
