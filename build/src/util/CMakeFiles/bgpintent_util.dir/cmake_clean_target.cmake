file(REMOVE_RECURSE
  "libbgpintent_util.a"
)
