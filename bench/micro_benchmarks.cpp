// Performance micro-benchmarks (google-benchmark): throughput of the hot
// paths a consumer of this library cares about when pointing it at real
// RouteViews-scale data — tuple indexing, clustering, classification,
// pattern matching, and MRT encode/decode.
#include <benchmark/benchmark.h>

#include <sstream>

#include "core/pipeline.hpp"
#include "dict/builtin.hpp"
#include "mrt/mrt_file.hpp"
#include "routing/scenario.hpp"
#include "util/rng.hpp"

namespace {

using namespace bgpintent;

const routing::Scenario& shared_scenario() {
  static const routing::Scenario scenario = [] {
    routing::ScenarioConfig cfg;
    cfg.topology.seed = 20230501;
    cfg.topology.tier1_count = 8;
    cfg.topology.tier2_count = 60;
    cfg.topology.stub_count = 400;
    cfg.vantage_point_count = 40;
    return routing::Scenario::build(cfg);
  }();
  return scenario;
}

const std::vector<bgp::RibEntry>& shared_entries() {
  static const std::vector<bgp::RibEntry> entries = shared_scenario().entries();
  return entries;
}

void BM_ObservationIndexBuild(benchmark::State& state) {
  const auto& entries = shared_entries();
  const auto tuples = bgp::tuples_from_entries(entries);
  for (auto _ : state) {
    auto index = core::ObservationIndex::build(tuples);
    benchmark::DoNotOptimize(index.community_count());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(tuples.size()));
}
BENCHMARK(BM_ObservationIndexBuild);

void BM_GapClustering(benchmark::State& state) {
  util::Rng rng(7);
  std::vector<std::uint16_t> betas;
  for (int i = 0; i < 2000; ++i)
    betas.push_back(static_cast<std::uint16_t>(rng.uniform(0, 65535)));
  std::sort(betas.begin(), betas.end());
  betas.erase(std::unique(betas.begin(), betas.end()), betas.end());
  for (auto _ : state) {
    auto clusters = core::gap_cluster(1299, betas, 140);
    benchmark::DoNotOptimize(clusters.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(betas.size()));
}
BENCHMARK(BM_GapClustering);

void BM_Classify(benchmark::State& state) {
  const auto index = core::ObservationIndex::from_entries(
      shared_entries(), &shared_scenario().topology().orgs);
  for (auto _ : state) {
    auto result = core::classify(index);
    benchmark::DoNotOptimize(result.classified_count());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(index.community_count()));
}
BENCHMARK(BM_Classify);

void BM_FullPipeline(benchmark::State& state) {
  const auto& entries = shared_entries();
  core::Pipeline pipeline;
  pipeline.set_org_map(&shared_scenario().topology().orgs);
  for (auto _ : state) {
    auto result = pipeline.run(entries);
    benchmark::DoNotOptimize(result.inference.classified_count());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(entries.size()));
}
BENCHMARK(BM_FullPipeline);

void BM_PatternMatch(benchmark::State& state) {
  const auto pattern = dict::CommunityPattern::compile("1299:[257]\\d\\d[1239]");
  std::vector<bgp::Community> probe;
  util::Rng rng(11);
  for (int i = 0; i < 4096; ++i)
    probe.emplace_back(1299, static_cast<std::uint16_t>(rng.uniform(0, 65535)));
  for (auto _ : state) {
    std::size_t hits = 0;
    for (const bgp::Community c : probe)
      if (pattern.matches(c)) ++hits;
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(probe.size()));
}
BENCHMARK(BM_PatternMatch);

void BM_DictionaryLookup(benchmark::State& state) {
  const auto store = dict::builtin_dictionary();
  std::vector<bgp::Community> probe;
  util::Rng rng(13);
  for (int i = 0; i < 4096; ++i)
    probe.emplace_back(1299, static_cast<std::uint16_t>(rng.uniform(0, 65535)));
  for (auto _ : state) {
    std::size_t hits = 0;
    for (const bgp::Community c : probe)
      if (store.lookup(c) != nullptr) ++hits;
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(probe.size()));
}
BENCHMARK(BM_DictionaryLookup);

void BM_MrtEncodeRib(benchmark::State& state) {
  const auto& entries = shared_entries();
  for (auto _ : state) {
    std::ostringstream out;
    mrt::MrtWriter writer(out);
    writer.write_rib_snapshot(entries, 0x7f000001, 1684886400);
    benchmark::DoNotOptimize(out.str().size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(entries.size()));
}
BENCHMARK(BM_MrtEncodeRib);

void BM_MrtDecodeRib(benchmark::State& state) {
  std::ostringstream out;
  mrt::MrtWriter writer(out);
  writer.write_rib_snapshot(shared_entries(), 0x7f000001, 1684886400);
  const std::string bytes = out.str();
  for (auto _ : state) {
    std::istringstream in(bytes);
    auto entries = mrt::read_rib_entries(in);
    benchmark::DoNotOptimize(entries.size());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes.size()));
}
BENCHMARK(BM_MrtDecodeRib);

void BM_RoutePropagation(benchmark::State& state) {
  const auto& scenario = shared_scenario();
  routing::Simulator simulator(scenario.topology(), scenario.policies());
  const auto& announcement = scenario.announcements().front();
  for (auto _ : state) {
    auto rib = simulator.propagate(announcement);
    benchmark::DoNotOptimize(rib.size());
  }
}
BENCHMARK(BM_RoutePropagation);

}  // namespace

BENCHMARK_MAIN();
