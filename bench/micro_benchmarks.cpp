// Performance micro-benchmarks (google-benchmark): throughput of the hot
// paths a consumer of this library cares about when pointing it at real
// RouteViews-scale data — tuple indexing, clustering, classification,
// pattern matching, and MRT encode/decode.
//
// After the google-benchmark suite, main() runs the observation-core
// report: the multi-community synthetic workload (many communities per
// route, heavy path repetition — the shape Krenc et al. report for real
// feeds) built twice, once with the seed's per-tuple AsPath copies and
// hash-set accumulators ("legacy") and once through the bgp::PathTable
// interned core.  Results are printed as JSON lines and written to
// BENCH_observations.json (override the path with BGPINTENT_BENCH_JSON)
// so the perf trajectory accumulates across PRs — see docs/PERFORMANCE.md.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "core/pipeline.hpp"
#include "dict/builtin.hpp"
#include "mrt/mrt_file.hpp"
#include "routing/scenario.hpp"
#include "util/rng.hpp"

namespace {

using namespace bgpintent;

const routing::Scenario& shared_scenario() {
  static const routing::Scenario scenario = [] {
    routing::ScenarioConfig cfg;
    cfg.topology.seed = 20230501;
    cfg.topology.tier1_count = 8;
    cfg.topology.tier2_count = 60;
    cfg.topology.stub_count = 400;
    cfg.vantage_point_count = 40;
    return routing::Scenario::build(cfg);
  }();
  return scenario;
}

const std::vector<bgp::RibEntry>& shared_entries() {
  static const std::vector<bgp::RibEntry> entries = shared_scenario().entries();
  return entries;
}

void BM_ObservationIndexBuild(benchmark::State& state) {
  const auto& entries = shared_entries();
  const auto tuples = bgp::tuples_from_entries(entries);
  for (auto _ : state) {
    auto index = core::ObservationIndex::build(tuples);
    benchmark::DoNotOptimize(index.community_count());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(tuples.size()));
}
BENCHMARK(BM_ObservationIndexBuild);

void BM_PathTableIntern(benchmark::State& state) {
  const auto& entries = shared_entries();
  for (auto _ : state) {
    bgp::PathTable table;
    auto tuples = bgp::intern_entries(table, entries);
    benchmark::DoNotOptimize(tuples.size());
    benchmark::DoNotOptimize(table.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(entries.size()));
}
BENCHMARK(BM_PathTableIntern);

void BM_ObservationIndexBuildInterned(benchmark::State& state) {
  // The steady-state serving shape: paths interned once up front, the
  // index rebuilt from the 8-byte records.
  const auto& entries = shared_entries();
  bgp::PathTable table;
  const auto tuples = bgp::intern_entries(table, entries);
  for (auto _ : state) {
    auto index = core::ObservationIndex::build_interned(table, tuples);
    benchmark::DoNotOptimize(index.community_count());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(tuples.size()));
}
BENCHMARK(BM_ObservationIndexBuildInterned);

void BM_GapClustering(benchmark::State& state) {
  util::Rng rng(7);
  std::vector<std::uint16_t> betas;
  for (int i = 0; i < 2000; ++i)
    betas.push_back(static_cast<std::uint16_t>(rng.uniform(0, 65535)));
  std::sort(betas.begin(), betas.end());
  betas.erase(std::unique(betas.begin(), betas.end()), betas.end());
  for (auto _ : state) {
    auto clusters = core::gap_cluster(1299, betas, 140);
    benchmark::DoNotOptimize(clusters.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(betas.size()));
}
BENCHMARK(BM_GapClustering);

void BM_Classify(benchmark::State& state) {
  const auto index = core::ObservationIndex::from_entries(
      shared_entries(), &shared_scenario().topology().orgs);
  for (auto _ : state) {
    auto result = core::classify(index);
    benchmark::DoNotOptimize(result.classified_count());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(index.community_count()));
}
BENCHMARK(BM_Classify);

void BM_FullPipeline(benchmark::State& state) {
  const auto& entries = shared_entries();
  core::Pipeline pipeline;
  pipeline.set_org_map(&shared_scenario().topology().orgs);
  for (auto _ : state) {
    auto result = pipeline.run(entries);
    benchmark::DoNotOptimize(result.inference.classified_count());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(entries.size()));
}
BENCHMARK(BM_FullPipeline);

void BM_PatternMatch(benchmark::State& state) {
  const auto pattern = dict::CommunityPattern::compile("1299:[257]\\d\\d[1239]");
  std::vector<bgp::Community> probe;
  util::Rng rng(11);
  for (int i = 0; i < 4096; ++i)
    probe.emplace_back(1299, static_cast<std::uint16_t>(rng.uniform(0, 65535)));
  for (auto _ : state) {
    std::size_t hits = 0;
    for (const bgp::Community c : probe)
      if (pattern.matches(c)) ++hits;
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(probe.size()));
}
BENCHMARK(BM_PatternMatch);

void BM_DictionaryLookup(benchmark::State& state) {
  const auto store = dict::builtin_dictionary();
  std::vector<bgp::Community> probe;
  util::Rng rng(13);
  for (int i = 0; i < 4096; ++i)
    probe.emplace_back(1299, static_cast<std::uint16_t>(rng.uniform(0, 65535)));
  for (auto _ : state) {
    std::size_t hits = 0;
    for (const bgp::Community c : probe)
      if (store.lookup(c) != nullptr) ++hits;
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(probe.size()));
}
BENCHMARK(BM_DictionaryLookup);

void BM_MrtEncodeRib(benchmark::State& state) {
  const auto& entries = shared_entries();
  for (auto _ : state) {
    std::ostringstream out;
    mrt::MrtWriter writer(out);
    writer.write_rib_snapshot(entries, 0x7f000001, 1684886400);
    benchmark::DoNotOptimize(out.str().size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(entries.size()));
}
BENCHMARK(BM_MrtEncodeRib);

void BM_MrtDecodeRib(benchmark::State& state) {
  std::ostringstream out;
  mrt::MrtWriter writer(out);
  writer.write_rib_snapshot(shared_entries(), 0x7f000001, 1684886400);
  const std::string bytes = out.str();
  for (auto _ : state) {
    std::istringstream in(bytes);
    auto entries = mrt::read_rib_entries(in);
    benchmark::DoNotOptimize(entries.size());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes.size()));
}
BENCHMARK(BM_MrtDecodeRib);

void BM_RoutePropagation(benchmark::State& state) {
  const auto& scenario = shared_scenario();
  routing::Simulator simulator(scenario.topology(), scenario.policies());
  const auto& announcement = scenario.announcements().front();
  for (auto _ : state) {
    auto rib = simulator.propagate(announcement);
    benchmark::DoNotOptimize(rib.size());
  }
}
BENCHMARK(BM_RoutePropagation);

// ---------------------------------------------------------------------------
// Observation-core report: legacy (seed) build vs interned build on the
// multi-community workload, emitted as JSON.

/// The seed implementation of ObservationIndex accumulation, kept here as
/// the measurement baseline: one full AsPath per tuple, per-community
/// unordered_set<uint64> on/off accumulators, on-path recomputed for every
/// tuple.  Counts must match the interned build exactly (verified below).
struct LegacyStats {
  std::size_t on = 0;
  std::size_t off = 0;
};

std::unordered_map<bgp::Community, LegacyStats> legacy_build(
    const std::vector<bgp::PathCommunityTuple>& tuples,
    const topo::OrgMap* orgs) {
  struct Acc {
    std::unordered_set<std::uint64_t> on_paths;
    std::unordered_set<std::uint64_t> off_paths;
  };
  std::unordered_map<bgp::Community, Acc> acc;
  std::unordered_set<std::uint64_t> unique_paths;
  std::unordered_set<bgp::Asn> asns_on_paths;
  for (const bgp::PathCommunityTuple& tuple : tuples) {
    const std::uint64_t path_hash = tuple.path.hash();
    unique_paths.insert(path_hash);
    for (const bgp::Asn asn : tuple.path.unique_asns())
      asns_on_paths.insert(asn);
    const std::uint16_t alpha = tuple.community.alpha();
    bool on = tuple.path.contains(alpha);
    if (!on && orgs != nullptr)
      for (const bgp::Asn sibling : orgs->siblings(alpha))
        if (sibling != alpha && tuple.path.contains(sibling)) on = true;
    Acc& a = acc[tuple.community];
    (on ? a.on_paths : a.off_paths).insert(path_hash);
  }
  benchmark::DoNotOptimize(unique_paths.size());
  benchmark::DoNotOptimize(asns_on_paths.size());
  std::unordered_map<bgp::Community, LegacyStats> stats;
  for (const auto& [community, a] : acc)
    stats[community] = LegacyStats{a.on_paths.size(), a.off_paths.size()};
  return stats;
}

/// Heap bytes behind one AsPath value (segment vector + per-segment ASN
/// storage) — what every materialized tuple pays again for an already-seen
/// path.
std::size_t aspath_heap_bytes(const bgp::AsPath& path) {
  std::size_t bytes = path.segments().capacity() * sizeof(bgp::PathSegment);
  for (const auto& seg : path.segments())
    bytes += seg.asns.capacity() * sizeof(bgp::Asn);
  return bytes;
}

/// Multi-community workload: a pool of unique AS paths replayed with heavy
/// repetition (a week of updates re-announces the same paths), each route
/// carrying many communities of a handful of alphas — the shape that makes
/// per-tuple path copies quadratic-feeling in practice.
std::vector<bgp::RibEntry> multi_community_entries(std::size_t unique_paths,
                                                   std::size_t announcements,
                                                   std::size_t communities_per,
                                                   topo::OrgMap& orgs) {
  util::Rng rng(20230807);
  std::vector<bgp::AsPath> pool;
  pool.reserve(unique_paths);
  for (std::size_t p = 0; p < unique_paths; ++p) {
    const std::size_t hops = 3 + rng.uniform(0, 4);
    std::vector<bgp::Asn> seq;
    seq.reserve(hops);
    seq.push_back(64000 + static_cast<bgp::Asn>(rng.uniform(0, 499)));  // VP neighbor
    for (std::size_t h = 1; h + 1 < hops; ++h)
      seq.push_back(1000 + static_cast<bgp::Asn>(rng.uniform(0, 299)));  // transit
    seq.push_back(30000 + static_cast<bgp::Asn>(rng.uniform(0, 1999)));  // origin
    pool.emplace_back(std::move(seq));
  }
  // Sibling groups over part of the transit range, to exercise the
  // org-expansion in both implementations.
  for (bgp::Asn asn = 1000; asn < 1100; ++asn)
    orgs.assign(asn, static_cast<topo::OrgId>((asn - 1000) / 4));

  std::vector<bgp::RibEntry> entries;
  entries.reserve(announcements);
  for (std::size_t i = 0; i < announcements; ++i) {
    bgp::RibEntry entry;
    entry.route.path = pool[rng.uniform(0, static_cast<std::uint32_t>(
                                               unique_paths - 1))];
    entry.route.communities.reserve(communities_per);
    // ~3 distinct alphas per route tag blocks of betas (a route's tags come
    // from the few networks it traversed); half the alphas are transit ASNs
    // (often on-path), half are edge tags (off-path).
    std::uint16_t route_alphas[3];
    for (std::uint16_t& alpha : route_alphas) {
      const bool transit = rng.uniform(0, 1) == 0;
      alpha = transit ? static_cast<std::uint16_t>(1000 + rng.uniform(0, 299))
                      : static_cast<std::uint16_t>(20000 + rng.uniform(0, 99));
    }
    for (std::size_t c = 0; c < communities_per; ++c) {
      const std::uint16_t alpha = route_alphas[rng.uniform(0, 2)];
      const std::uint16_t beta =
          static_cast<std::uint16_t>(rng.uniform(0, 1) == 0
                                         ? 100 + rng.uniform(0, 40)
                                         : 3000 + rng.uniform(0, 40));
      entry.route.communities.emplace_back(alpha, beta);
    }
    entries.push_back(std::move(entry));
  }
  return entries;
}

double best_of_ms(int repeats, const std::function<void()>& body) {
  double best = 0.0;
  for (int r = 0; r < repeats; ++r) {
    const auto start = std::chrono::steady_clock::now();
    body();
    const auto stop = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(stop - start).count();
    if (r == 0 || ms < best) best = ms;
  }
  return best;
}

int observation_core_report() {
  const int repeats = [] {
    const char* env = std::getenv("BGPINTENT_BENCH_REPEATS");
    return env != nullptr ? std::max(1, std::atoi(env)) : 3;
  }();

  topo::OrgMap orgs;
  const auto entries = multi_community_entries(
      /*unique_paths=*/4000, /*announcements=*/24000, /*communities_per=*/12,
      orgs);

  // Legacy representation: one AsPath copy per (path, community) tuple.
  // The timed region mirrors what the seed from_entries() paid on every
  // build: materialize the tuple vector, then accumulate — symmetric with
  // the interned region below, which likewise starts from the entries.
  std::vector<bgp::PathCommunityTuple> legacy_tuples;
  std::unordered_map<bgp::Community, LegacyStats> legacy_stats;
  const double legacy_ms = best_of_ms(repeats, [&] {
    legacy_tuples = bgp::tuples_from_entries(entries);
    legacy_stats = legacy_build(legacy_tuples, &orgs);
  });
  std::size_t legacy_bytes =
      legacy_tuples.capacity() * sizeof(bgp::PathCommunityTuple);
  for (const auto& tuple : legacy_tuples)
    legacy_bytes += aspath_heap_bytes(tuple.path);

  // Interned representation: flat path arena + 8-byte records.  The timed
  // region includes interning itself — it is part of every real build.
  std::size_t interned_bytes = 0;
  core::ObservationIndex interned_index;
  const double interned_ms = best_of_ms(repeats, [&] {
    bgp::PathTable table;
    const auto tuples = bgp::intern_entries(table, entries);
    interned_index = core::ObservationIndex::build_interned(table, tuples,
                                                            &orgs);
    interned_bytes =
        table.memory_bytes() + tuples.capacity() * sizeof(bgp::InternedTuple);
  });

  // The speedup claim is only worth reporting if the outputs agree.
  bool identical = interned_index.community_count() == legacy_stats.size();
  for (const auto& [community, stats] : legacy_stats) {
    const core::CommunityStats* s = interned_index.find(community);
    if (s == nullptr || s->on_path_paths != stats.on ||
        s->off_path_paths != stats.off) {
      identical = false;
      break;
    }
  }

  const double speedup = interned_ms > 0.0 ? legacy_ms / interned_ms : 0.0;
  const double memory_ratio =
      interned_bytes > 0
          ? static_cast<double>(legacy_bytes) /
                static_cast<double>(interned_bytes)
          : 0.0;

  const auto json_line = [](const char* metric, double value) {
    std::printf(
        "{\"bench\": \"observation_core_multi_community\", \"metric\": "
        "\"%s\", \"value\": %.3f}\n",
        metric, value);
  };
  std::printf("\n== observation core: legacy vs interned ==\n");
  json_line("legacy_build_ms", legacy_ms);
  json_line("interned_build_ms", interned_ms);
  json_line("build_speedup", speedup);
  json_line("legacy_tuple_bytes", static_cast<double>(legacy_bytes));
  json_line("interned_tuple_bytes", static_cast<double>(interned_bytes));
  json_line("memory_ratio", memory_ratio);
  json_line("identical", identical ? 1.0 : 0.0);

  const char* out_path = std::getenv("BGPINTENT_BENCH_JSON");
  if (out_path == nullptr) out_path = "BENCH_observations.json";
  if (std::FILE* out = std::fopen(out_path, "w")) {
    std::fprintf(
        out,
        "{\n"
        "  \"bench\": \"observation_core_multi_community\",\n"
        "  \"workload\": {\"unique_paths\": 4000, \"announcements\": 24000, "
        "\"communities_per_route\": 12, \"tuples\": %zu},\n"
        "  \"results\": {\n"
        "    \"legacy_build_ms\": %.3f,\n"
        "    \"interned_build_ms\": %.3f,\n"
        "    \"build_speedup\": %.2f,\n"
        "    \"legacy_tuple_bytes\": %zu,\n"
        "    \"interned_tuple_bytes\": %zu,\n"
        "    \"memory_ratio\": %.2f,\n"
        "    \"identical\": %s\n"
        "  }\n"
        "}\n",
        legacy_tuples.size(), legacy_ms, interned_ms, speedup, legacy_bytes,
        interned_bytes, memory_ratio, identical ? "true" : "false");
    std::fclose(out);
    std::printf("wrote %s\n", out_path);
  } else {
    std::fprintf(stderr, "could not write %s\n", out_path);
    return 1;
  }
  if (!identical) {
    std::printf("FAIL: interned build disagrees with the legacy build\n");
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return observation_core_report();
}
