// Figure 9: inference accuracy as a function of the minimum-gap clustering
// parameter.  Paper: gap 100-250 yields a plateau above 96%, gap 140 is
// chosen (96.5%), and no clustering at all (each community in isolation)
// drops accuracy to 73.7%.  Shapes to match: a wide high plateau and a
// clearly lower no-clustering point.
#include "bench/common.hpp"

using namespace bgpintent;

int main() {
  const auto cfg = bench::default_scenario_config();
  bench::print_banner("fig9 — accuracy vs minimum gap between clusters", cfg);
  const auto scenario = routing::Scenario::build(cfg);
  const auto entries = scenario.entries();

  util::TextTable table({"min gap", "accuracy", "clusters", "classified"});
  double at_140 = 0.0;
  double at_0 = 0.0;
  for (const std::uint32_t gap :
       {0u, 10u, 20u, 40u, 70u, 100u, 140u, 180u, 250u, 350u, 500u, 750u,
        1000u, 1500u, 2000u}) {
    core::PipelineConfig pipeline_cfg;
    pipeline_cfg.classifier.min_gap = gap;
    core::Pipeline pipeline(pipeline_cfg);
    pipeline.set_org_map(&scenario.topology().orgs);
    const auto result = pipeline.run(entries);
    const auto eval = result.score(scenario.ground_truth());
    if (gap == 140) at_140 = eval.accuracy();
    if (gap == 0) at_0 = eval.accuracy();
    table.add_row({std::to_string(gap), util::percent(eval.accuracy()),
                   std::to_string(result.inference.clusters.size()),
                   std::to_string(result.inference.classified_count())});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("min gap 140 (paper: 96.5%%): %s\n",
              util::percent(at_140).c_str());
  std::printf("no clustering, gap 0 (paper: 73.7%%): %s\n",
              util::percent(at_0).c_str());
  return 0;
}
