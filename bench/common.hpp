// Shared scaffolding for the figure/table benches: the default "May 2023
// week" scenario every experiment runs against, and small print helpers.
//
// Every bench is a stand-alone binary that takes no arguments, prints its
// configuration (including seeds) and the rows/series of the corresponding
// paper figure or table, and exits 0.  EXPERIMENTS.md records how each
// output compares with the published numbers.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/pipeline.hpp"
#include "routing/scenario.hpp"
#include "topo/generator.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace bgpintent::bench {

/// The default evaluation scenario: a scaled-down Internet (paper: 75K
/// ASes, 1.8K vantage points; here ~700 ASes, 60 VPs) with the same
/// structural properties.
inline routing::ScenarioConfig default_scenario_config(
    std::uint64_t seed = 20230501) {
  routing::ScenarioConfig cfg;
  cfg.topology.seed = seed;
  cfg.topology.tier1_count = 10;
  cfg.topology.tier2_count = 80;
  cfg.topology.stub_count = 600;
  cfg.policy.seed = seed + 1;
  cfg.workload_seed = seed + 2;
  cfg.vantage_point_count = 150;
  return cfg;
}

/// `BGPINTENT_BENCH_SCALE=<preset>` swaps a bench's hand-sized topology
/// for a rung of the `topo::ScalePreset` ladder (tiny .. internet, see
/// docs/SIMULATION.md), keeping the bench's seeds and vantage-point
/// count.  Returns the preset name in effect, or nullptr when the
/// variable is unset; an unknown name exits with usage code 2 so CI
/// misconfigurations fail loudly instead of silently benchmarking the
/// default world.
inline const char* apply_bench_scale(routing::ScenarioConfig& cfg) {
  const char* env = std::getenv("BGPINTENT_BENCH_SCALE");
  if (env == nullptr || *env == '\0') return nullptr;
  for (const topo::ScalePreset preset : topo::all_scale_presets()) {
    if (std::strcmp(env, topo::preset_name(preset)) == 0) {
      const std::uint64_t seed = cfg.topology.seed;
      cfg.topology = topo::preset_config(preset);
      cfg.topology.seed = seed;
      return topo::preset_name(preset);
    }
  }
  std::fprintf(stderr,
               "BGPINTENT_BENCH_SCALE=%s: unknown preset (want tiny, "
               "small, medium, large, or internet)\n",
               env);
  std::exit(2);
}

inline void print_banner(const char* title, const routing::ScenarioConfig& cfg) {
  std::printf("== %s ==\n", title);
  std::printf(
      "scenario: %u tier1 / %u tier2 / %u stub ASes, %u vantage points, "
      "seeds topo=%llu policy=%llu workload=%llu\n\n",
      cfg.topology.tier1_count, cfg.topology.tier2_count,
      cfg.topology.stub_count, cfg.vantage_point_count,
      static_cast<unsigned long long>(cfg.topology.seed),
      static_cast<unsigned long long>(cfg.policy.seed),
      static_cast<unsigned long long>(cfg.workload_seed));
}

/// Prints an empirical CDF as a fixed set of staircase rows.
inline void print_cdf(const char* label, const util::EmpiricalCdf& cdf) {
  std::printf("%s (n=%zu)\n", label, cdf.size());
  util::TextTable table({"fraction", "value<="});
  for (const double f : {0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 1.0})
    table.add_row({util::fixed(f, 2), util::fixed(cdf.quantile(f), 3)});
  std::printf("%s\n", table.render().c_str());
}

}  // namespace bgpintent::bench
