// Figure 10: accuracy and coverage as a function of the number of vantage
// points, over repeated random VP subsets.  Paper: 50 experiments per
// size; with 20 VPs the median accuracy stabilizes above 93% while
// covering ~76.5% of the communities observed with all vantage points.
// Shapes to match: rising-then-flat median accuracy, 10th percentile
// catching up, coverage growing steadily with VP count.
#include <algorithm>
#include <unordered_set>

#include "bench/common.hpp"
#include "util/rng.hpp"

using namespace bgpintent;

int main() {
  auto cfg = bench::default_scenario_config();
  bench::print_banner("fig10 — accuracy vs number of vantage points", cfg);
  const auto scenario = routing::Scenario::build(cfg);
  const auto& all_vps = scenario.vantage_points();

  // Reference run with every vantage point (fixed ratio 160, gap 140).
  // Routes are propagated once; VP subsets are filters over the full feed.
  const auto full_entries = scenario.entries();
  core::Pipeline pipeline;
  pipeline.set_org_map(&scenario.topology().orgs);
  const auto full = pipeline.run(full_entries);
  const double full_communities =
      static_cast<double>(full.observations.community_count());
  std::printf("full feed: %zu VPs, %zu communities, accuracy %s\n\n",
              all_vps.size(), full.observations.community_count(),
              util::percent(full.score(scenario.ground_truth()).accuracy())
                  .c_str());

  constexpr int kExperiments = 50;
  util::Rng rng(4242);
  util::TextTable table({"VPs", "p10 acc", "median acc", "p90 acc",
                         "median coverage"});
  for (const std::size_t count : {1u, 2u, 4u, 8u, 12u, 16u, 20u, 30u, 45u,
                                  60u}) {
    if (count > all_vps.size()) break;
    std::vector<double> accuracies;
    std::vector<double> coverages;
    for (int run = 0; run < kExperiments; ++run) {
      std::unordered_set<bgp::Asn> subset;
      for (const std::size_t idx : rng.sample_indices(all_vps.size(), count))
        subset.insert(all_vps[idx]);
      std::vector<bgp::RibEntry> entries;
      for (const auto& entry : full_entries)
        if (subset.contains(entry.vantage_point.asn)) entries.push_back(entry);
      const auto result = pipeline.run(entries);
      const auto eval = result.score(scenario.ground_truth());
      accuracies.push_back(eval.accuracy());
      coverages.push_back(
          static_cast<double>(result.observations.community_count()) /
          full_communities);
    }
    table.add_row({std::to_string(count),
                   util::percent(util::percentile(accuracies, 10)),
                   util::percent(util::median(accuracies)),
                   util::percent(util::percentile(accuracies, 90)),
                   util::percent(util::median(coverages))});
  }
  std::printf("%d experiments per row, fixed gap=140, ratio=160 "
              "(paper: median accuracy >93%% and coverage ~76.5%% at 20 VPs)\n\n%s",
              kExperiments, table.render().c_str());
  return 0;
}
