// Robustness ablation (DESIGN.md §5): how the method's accuracy responds to
// the strength of each real-world noise source the simulator models —
// community leakage (Krenc et al. 2020), customers misusing provider
// information values, and partial collector feeds.  The paper's method has
// no knob for any of these; this bench documents how gracefully the fixed
// gap-140 / 160:1 configuration degrades as the data gets dirtier.
#include "bench/common.hpp"

using namespace bgpintent;

namespace {

double accuracy_for(routing::ScenarioConfig cfg) {
  const auto scenario = routing::Scenario::build(cfg);
  core::Pipeline pipeline;
  pipeline.set_org_map(&scenario.topology().orgs);
  const auto result = pipeline.run(scenario.entries());
  return result.score(scenario.ground_truth()).accuracy();
}

}  // namespace

int main() {
  auto base = bench::default_scenario_config();
  // A slightly smaller world keeps the 12-point sweep fast.
  base.topology.stub_count = 400;
  base.vantage_point_count = 100;
  bench::print_banner("ablation — noise-source sensitivity", base);

  util::TextTable leak({"community leak prob", "accuracy"});
  for (const double p : {0.0, 0.0006, 0.0012, 0.0025, 0.005, 0.01}) {
    auto cfg = base;
    cfg.community_leak_prob = p;
    leak.add_row({util::fixed(p * 100, 2) + "%",
                  util::percent(accuracy_for(cfg))});
  }
  std::printf("community leakage (default 0.12%%):\n%s\n",
              leak.render().c_str());

  util::TextTable misuse({"info misuse prob", "accuracy"});
  for (const double p : {0.0, 0.006, 0.02, 0.05}) {
    auto cfg = base;
    cfg.info_misuse_prob = p;
    misuse.add_row({util::fixed(p * 100, 1) + "%",
                    util::percent(accuracy_for(cfg))});
  }
  std::printf("information-value misuse by customers (default 0.6%%):\n%s\n",
              misuse.render().c_str());

  util::TextTable feeds({"partial-feed fraction", "accuracy"});
  for (const double f : {0.0, 0.3, 0.6, 0.9}) {
    auto cfg = base;
    cfg.partial_feed_fraction = f;
    feeds.add_row({util::percent(f, 0), util::percent(accuracy_for(cfg))});
  }
  std::printf("partial collector feeds (default 60%%):\n%s",
              feeds.render().c_str());
  return 0;
}
