// §6 "Accuracy of inferences over time": apply the method to one snapshot
// per month for a year of an evolving Internet.  Paper (Jun 2022 - May
// 2023): accuracy stable between 92.6% and 95.4%; the number of inferred
// communities grows ~5% over the year, mostly new information communities.
// Shapes to match: flat accuracy band, slowly growing inference count.
#include "bench/common.hpp"
#include "util/strings.hpp"

using namespace bgpintent;

int main() {
  const auto base = bench::default_scenario_config();
  bench::print_banner("eval_over_time — monthly snapshots of an evolving net",
                      base);

  core::Pipeline pipeline;
  util::TextTable table({"month", "ASes", "communities", "classified",
                         "info", "action", "accuracy"});
  double min_acc = 1.0;
  double max_acc = 0.0;
  std::size_t first_classified = 0;
  std::size_t last_classified = 0;
  for (std::uint32_t month = 0; month < 12; ++month) {
    // The Internet grows: more stubs, more tier-2s, more vantage points.
    // Workload churn differs per month; the base topology seed is shared so
    // the core stays recognizable month over month.
    auto cfg = base;
    cfg.topology.stub_count += month * 6;        // ~1%/month stub growth
    cfg.topology.tier2_count += month / 4;
    cfg.workload_seed = base.workload_seed + month * 1000;
    const auto scenario = routing::Scenario::build(cfg);
    core::Pipeline monthly;
    monthly.set_org_map(&scenario.topology().orgs);
    const auto result = monthly.run(scenario.entries());
    const auto eval = result.score(scenario.ground_truth());
    min_acc = std::min(min_acc, eval.accuracy());
    max_acc = std::max(max_acc, eval.accuracy());
    if (month == 0) first_classified = result.inference.classified_count();
    last_classified = result.inference.classified_count();
    const std::uint32_t month_number = 6 + month;  // Jun 2022 .. May 2023
    const std::uint32_t year = month_number > 12 ? 2023u : 2022u;
    table.add_row({util::format("%u-%02u", year,
                                month_number > 12 ? month_number - 12
                                                  : month_number),
                   std::to_string(scenario.topology().graph.as_count()),
                   std::to_string(result.observations.community_count()),
                   std::to_string(result.inference.classified_count()),
                   std::to_string(result.inference.information_count),
                   std::to_string(result.inference.action_count),
                   util::percent(eval.accuracy())});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("accuracy range (paper: 92.6%%–95.4%%): %s – %s\n",
              util::percent(min_acc).c_str(), util::percent(max_acc).c_str());
  const double growth =
      first_classified == 0
          ? 0.0
          : (static_cast<double>(last_classified) -
             static_cast<double>(first_classified)) /
                static_cast<double>(first_classified);
  std::printf("inferred communities growth over the year (paper: ~5%%): %s\n",
              util::percent(growth).c_str());
  return 0;
}
