// Extension experiment (the paper's future work, §4/§7): apply the same
// on-path:off-path method to LARGE communities (RFC 8092).  The paper
// observed 11,524 large communities in May 2023 but classified only the
// regular ones; here the simulator's RFC 8092 adopters mirror their geo /
// relationship tagging (information) and accept a large no-export action,
// and the extension classifier labels the (alpha, beta) function space.
#include "bench/common.hpp"
#include "core/large.hpp"

using namespace bgpintent;

int main() {
  const auto cfg = bench::default_scenario_config();
  bench::print_banner("eval_large — RFC 8092 large-community extension", cfg);
  const auto scenario = routing::Scenario::build(cfg);
  const auto entries = scenario.entries();

  const auto index = core::LargeObservationIndex::from_entries(entries);
  const auto result = core::classify_large(index);

  std::size_t adopters = 0;
  for (const auto& [asn, policy] : scenario.policies().policies)
    if (policy.emit_large) ++adopters;
  std::printf("RFC 8092 adopters in scenario: %zu ASes\n", adopters);

  util::TextTable table({"metric", "value"});
  table.add_row({"distinct (alpha,beta,gamma) values",
                 std::to_string(index.value_count())});
  table.add_row({"(alpha,beta) functions", std::to_string(index.all().size())});
  table.add_row({"values classified information",
                 std::to_string(result.information_count)});
  table.add_row({"values classified action",
                 std::to_string(result.action_count)});
  table.add_row({"values excluded", std::to_string(result.excluded_never_on_path)});
  std::printf("%s\n", table.render().c_str());

  // Score against the constructed semantics of the simulator's policies.
  std::size_t correct = 0;
  std::size_t total = 0;
  std::size_t info_fn = 0;
  std::size_t action_fn = 0;
  for (const auto& stats : index.all()) {
    const auto intent =
        result.label_of(bgp::LargeCommunity(stats.alpha, stats.beta, 0));
    if (intent == core::Intent::kUnclassified) continue;
    const bool is_info = stats.beta == routing::kLargeGeoFunction ||
                         stats.beta == routing::kLargeRelFunction;
    const bool is_action = stats.beta == routing::kLargeNoExportFunction;
    if (!is_info && !is_action) continue;
    ++total;
    if (is_info) ++info_fn;
    if (is_action) ++action_fn;
    if ((is_info && intent == core::Intent::kInformation) ||
        (is_action && intent == core::Intent::kAction))
      ++correct;
  }
  std::printf("function-level ground truth: %zu info + %zu action functions\n",
              info_fn, action_fn);
  std::printf("extension accuracy over labeled functions: %s\n",
              util::percent(total == 0 ? 0.0
                                       : static_cast<double>(correct) /
                                             static_cast<double>(total))
                  .c_str());
  std::printf("(no paper baseline exists — the paper defers large "
              "communities; shape expectation: info/action separation "
              "carries over)\n");
  return 0;
}
