// Durability cost and crash-recovery latency (docs/STREAMING.md §6):
// write-ahead journal overhead on top of plain engine ingest, cold-replay
// recovery (no checkpoint) vs checkpoint-bounded recovery, and the
// torn-tail salvage path.  Doubles as a correctness smoke: every recovered
// engine must export a state identical to the uninterrupted run, and the
// process exits non-zero when one does not.
//
// BGPINTENT_WORLD_SCALE=smoke shrinks the world for CI;
// BGPINTENT_BENCH_REPEATS repeats the timed phases (best-of);
// BGPINTENT_BENCH_JSON writes the machine-readable report compared
// against the committed BENCH_recovery.json baseline.
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "mrt/source.hpp"
#include "stream/engine.hpp"
#include "stream/journal.hpp"
#include "stream/recovery.hpp"
#include "stream/synth.hpp"

using namespace bgpintent;
namespace fs = std::filesystem;

namespace {

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

stream::JournalConfig journal_config(const std::string& directory) {
  stream::JournalConfig cfg;
  cfg.directory = directory;
  cfg.fsync = stream::FsyncPolicy::kNever;  // isolate CPU/copy cost from disk
  return cfg;
}

/// Journals the full stream into `directory` (wiped first) and returns the
/// final state.  `checkpoint_interval` 0 = no checkpoints; the journal is
/// left sealed but checkpoint-less at the tail (the crash shape) unless
/// `clean_shutdown`.
stream::EngineState journaled_run(const std::string& directory,
                                  const stream::SynthStream& synth,
                                  std::uint64_t checkpoint_interval,
                                  bool clean_shutdown, double& ms) {
  fs::remove_all(directory);
  fs::create_directories(directory);
  stream::StreamEngine engine;
  engine.attach_journal(
      std::make_unique<stream::JournalWriter>(journal_config(directory), 0),
      checkpoint_interval);
  const mrt::BufferSource source(synth.bytes);
  const auto start = std::chrono::steady_clock::now();
  engine.ingest(source);
  ms = ms_since(start);
  const stream::EngineState state = engine.export_state();
  if (clean_shutdown) engine.detach_journal();
  return state;
}

}  // namespace

int main() {
  const char* mode_env = std::getenv("BGPINTENT_WORLD_SCALE");
  const bool smoke =
      mode_env != nullptr && std::strcmp(mode_env, "smoke") == 0;
  int repeats = 3;
  if (const char* env = std::getenv("BGPINTENT_BENCH_REPEATS")) {
    repeats = std::atoi(env);
    if (repeats < 1) repeats = 1;
  }

  stream::SynthStreamConfig synth_cfg;
  synth_cfg.scenario = bench::default_scenario_config(20230511);
  synth_cfg.scenario.topology.tier1_count = smoke ? 6 : 10;
  synth_cfg.scenario.topology.tier2_count = smoke ? 60 : 80;
  synth_cfg.scenario.topology.stub_count = smoke ? 120 : 300;
  synth_cfg.scenario.vantage_point_count = smoke ? 12 : 40;
  synth_cfg.epochs = smoke ? 12 : 36;
  synth_cfg.epoch_seconds = 600;
  // BGPINTENT_BENCH_SCALE trades the hand-sized world for a preset rung
  // (tiny .. internet); it composes with (and overrides) the smoke sizes.
  const char* scale = bench::apply_bench_scale(synth_cfg.scenario);

  bench::print_banner("recovery_time — journal durability and crash recovery",
                      synth_cfg.scenario);
  std::printf("stream: %u epochs x %us%s%s%s\n", synth_cfg.epochs,
              synth_cfg.epoch_seconds, smoke ? " (smoke)" : "",
              scale != nullptr ? ", scale preset " : "",
              scale != nullptr ? scale : "");

  const stream::SynthStream synth = stream::generate_update_stream(synth_cfg);
  std::printf("workload: %llu records, %zu MRT bytes\n\n",
              static_cast<unsigned long long>(synth.stats.records),
              synth.bytes.size());

  const std::string scratch =
      (fs::temp_directory_path() /
       ("bgpintent_bench_recovery_" + std::to_string(::getpid())))
          .string();
  const std::string cold_dir = scratch + "/cold";
  const std::string ckpt_dir = scratch + "/ckpt";
  const std::uint64_t checkpoint_interval = smoke ? 2000 : 10000;

  // --- Phase 0: plain ingest (the no-durability baseline). ---
  double plain_ms = 0.0;
  for (int repeat = 0; repeat < repeats; ++repeat) {
    stream::StreamEngine engine;
    const mrt::BufferSource source(synth.bytes);
    const auto start = std::chrono::steady_clock::now();
    engine.ingest(source);
    const double ms = ms_since(start);
    if (repeat == 0 || ms < plain_ms) plain_ms = ms;
  }

  // --- Phase 1: journaled ingest (fsync=never isolates the frame cost).
  double journaled_ms = 0.0;
  stream::EngineState reference;
  for (int repeat = 0; repeat < repeats; ++repeat) {
    double ms = 0.0;
    reference = journaled_run(cold_dir, synth, 0, false, ms);
    if (repeat == 0 || ms < journaled_ms) journaled_ms = ms;
  }
  const stream::ScanSummary scan = stream::scan_journal(cold_dir);
  const double journal_overhead_pct =
      plain_ms > 0.0 ? (journaled_ms - plain_ms) / plain_ms * 100.0 : 0.0;
  std::uint64_t journal_bytes = 0;
  for (const stream::SegmentInfo& segment : scan.segments)
    journal_bytes += segment.bytes;

  int exit_code = 0;
  const auto check = [&](const stream::StreamEngine& engine,
                         const char* phase) {
    if (engine.export_state() == reference) return;
    std::fprintf(stderr, "FAIL: %s diverged from the uninterrupted run\n",
                 phase);
    exit_code = 1;
  };

  // --- Phase 2: cold recovery — full journal replay, no checkpoint. ---
  double cold_ms = 0.0;
  std::uint64_t cold_replayed = 0;
  for (int repeat = 0; repeat < repeats; ++repeat) {
    // Recovery truncates/compacts in place, so each repeat runs on a copy.
    const std::string copy = scratch + "/cold_copy";
    fs::remove_all(copy);
    fs::copy(cold_dir, copy, fs::copy_options::recursive);
    stream::RecoveryReport report;
    const auto start = std::chrono::steady_clock::now();
    const auto engine =
        stream::recover_stream(journal_config(copy), {}, &report);
    const double ms = ms_since(start);
    if (repeat == 0 || ms < cold_ms) cold_ms = ms;
    cold_replayed = report.records_replayed;
    if (repeat == 0) check(*engine, "cold recovery");
  }
  const double cold_records_per_sec =
      cold_ms > 0.0 ? static_cast<double>(cold_replayed) / (cold_ms / 1e3)
                    : 0.0;

  // --- Phase 3: checkpointed recovery — bounded replay. ---
  {
    double ignored = 0.0;
    (void)journaled_run(ckpt_dir, synth, checkpoint_interval, false, ignored);
  }
  double ckpt_ms = 0.0;
  std::uint64_t ckpt_replayed = 0;
  for (int repeat = 0; repeat < repeats; ++repeat) {
    const std::string copy = scratch + "/ckpt_copy";
    fs::remove_all(copy);
    fs::copy(ckpt_dir, copy, fs::copy_options::recursive);
    stream::RecoveryReport report;
    const auto start = std::chrono::steady_clock::now();
    const auto engine =
        stream::recover_stream(journal_config(copy), {}, &report);
    const double ms = ms_since(start);
    if (repeat == 0 || ms < ckpt_ms) ckpt_ms = ms;
    ckpt_replayed = report.records_replayed;
    if (repeat == 0) {
      check(*engine, "checkpointed recovery");
      if (!report.used_checkpoint) {
        std::fprintf(stderr, "FAIL: checkpointed run recovered cold\n");
        exit_code = 1;
      }
    }
  }
  const double ckpt_speedup = ckpt_ms > 0.0 ? cold_ms / ckpt_ms : 0.0;

  // --- Phase 4: torn-tail salvage (correctness gate, timed for free). ---
  double torn_ms = 0.0;
  {
    const std::string copy = scratch + "/torn_copy";
    fs::remove_all(copy);
    fs::copy(cold_dir, copy, fs::copy_options::recursive);
    std::string last_segment;
    for (const auto& entry : fs::directory_iterator(copy)) {
      const std::string name = entry.path().filename().string();
      if (name.starts_with("journal-") && name.ends_with(".seg") &&
          (last_segment.empty() || entry.path().string() > last_segment))
        last_segment = entry.path().string();
    }
    fs::resize_file(last_segment, fs::file_size(last_segment) - 11);
    stream::RecoveryReport report;
    const auto start = std::chrono::steady_clock::now();
    const auto engine =
        stream::recover_stream(journal_config(copy), {}, &report);
    torn_ms = ms_since(start);
    if (report.torn_tail_truncated == 0) {
      std::fprintf(stderr, "FAIL: torn tail not detected\n");
      exit_code = 1;
    }
    if (engine->stats().recovered_events == 0) {
      std::fprintf(stderr, "FAIL: torn recovery salvaged nothing\n");
      exit_code = 1;
    }
  }
  fs::remove_all(scratch);

  util::TextTable table({"metric", "value"});
  table.add_row({"plain ingest ms", util::fixed(plain_ms, 1)});
  table.add_row({"journaled ingest ms", util::fixed(journaled_ms, 1)});
  table.add_row({"journal overhead %", util::fixed(journal_overhead_pct, 1)});
  table.add_row({"journal records", std::to_string(scan.records)});
  table.add_row(
      {"journal KiB",
       util::fixed(static_cast<double>(journal_bytes) / 1024.0, 1)});
  table.add_row({"cold recovery ms", util::fixed(cold_ms, 1)});
  table.add_row({"cold replay records/sec",
                 util::fixed(cold_records_per_sec, 0)});
  table.add_row({"checkpointed recovery ms", util::fixed(ckpt_ms, 1)});
  table.add_row({"checkpointed records replayed",
                 std::to_string(ckpt_replayed)});
  table.add_row({"checkpoint speedup", util::fixed(ckpt_speedup, 2)});
  table.add_row({"torn-tail recovery ms", util::fixed(torn_ms, 1)});
  std::printf("%s\n", table.render().c_str());
  std::printf("correctness: %s\n", exit_code == 0 ? "ok" : "FAILED");

  if (const char* out_path = std::getenv("BGPINTENT_BENCH_JSON")) {
    if (std::FILE* out = std::fopen(out_path, "w")) {
      std::fprintf(
          out,
          "{\n"
          "  \"bench\": \"recovery_time\",\n"
          "  \"workload\": {\"records\": %llu, \"mrt_bytes\": %zu, "
          "\"journal_records\": %llu, \"journal_bytes\": %llu, "
          "\"checkpoint_interval\": %llu, \"smoke\": %s},\n"
          "  \"results\": {\n"
          "    \"plain_ingest_ms\": %.3f,\n"
          "    \"journaled_ingest_ms\": %.3f,\n"
          "    \"journal_overhead_pct\": %.1f,\n"
          "    \"cold_recovery_ms\": %.3f,\n"
          "    \"cold_replay_records_per_sec\": %.1f,\n"
          "    \"checkpointed_recovery_ms\": %.3f,\n"
          "    \"checkpointed_records_replayed\": %llu,\n"
          "    \"checkpoint_speedup\": %.2f,\n"
          "    \"torn_recovery_ms\": %.3f,\n"
          "    \"identical\": %s\n"
          "  }\n"
          "}\n",
          static_cast<unsigned long long>(synth.stats.records),
          synth.bytes.size(),
          static_cast<unsigned long long>(scan.records),
          static_cast<unsigned long long>(journal_bytes),
          static_cast<unsigned long long>(checkpoint_interval),
          smoke ? "true" : "false", plain_ms, journaled_ms,
          journal_overhead_pct, cold_ms, cold_records_per_sec, ckpt_ms,
          static_cast<unsigned long long>(ckpt_replayed), ckpt_speedup,
          torn_ms, exit_code == 0 ? "true" : "false");
      std::fclose(out);
    } else {
      std::fprintf(stderr, "could not write %s\n", out_path);
      exit_code = 1;
    }
  }
  return exit_code;
}
