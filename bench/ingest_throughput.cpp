// Ingest throughput report: materializing vs streaming MRT decode into the
// interned observation core, end to end through classification.
//
// The comparison is file-based and matches the product's real before/after
// data flows.  The materializing baseline is the seed CLI path — an
// std::ifstream feeding read_rib_entries(), which holds every decoded row
// (prefix, full AsPath, community vectors) live at once before
// intern_entries() collapses them into the PathTable + 8-byte tuple
// records.  The streaming variant is the current CLI path — open_source()
// mmaps the file and core::MrtIngest decodes each record into one reused
// scratch row and interns it immediately, so neither the file copy nor the
// row vector ever exists.  Both halves are timed, the classification
// outputs are compared field-for-field, and results are printed as JSON
// lines and written to BENCH_ingest.json (override with
// BGPINTENT_BENCH_JSON) so the perf trajectory accumulates across PRs —
// see docs/PERFORMANCE.md.
#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "bgp/path_table.hpp"
#include "core/ingest.hpp"
#include "core/pipeline.hpp"
#include "mrt/mrt_file.hpp"
#include "mrt/source.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace bgpintent;

/// Collector-RIB-shaped workload: P prefixes seen by V vantage points,
/// paths drawn with heavy repetition from a small unique pool (a week of
/// RouteViews updates re-announces the same paths over and over), each
/// route tagged with regular, large, and extended communities the way
/// transit-provider routes are in the wild.  Only the regular communities
/// reach the tuple core; the large/extended attributes are baggage every
/// materialized row still has to carry.
std::string make_mrt_workload(std::size_t prefixes, std::size_t vps,
                              std::size_t unique_paths,
                              std::size_t communities_per,
                              std::size_t large_per, std::size_t ext_per) {
  util::Rng rng(20230806);
  std::vector<bgp::AsPath> pool;
  pool.reserve(unique_paths);
  for (std::size_t p = 0; p < unique_paths; ++p) {
    const std::size_t hops = 3 + rng.uniform(0, 4);
    std::vector<bgp::Asn> seq;
    seq.reserve(hops);
    seq.push_back(64000 + static_cast<bgp::Asn>(rng.uniform(0, 499)));
    for (std::size_t h = 1; h + 1 < hops; ++h)
      seq.push_back(1000 + static_cast<bgp::Asn>(rng.uniform(0, 299)));
    seq.push_back(30000 + static_cast<bgp::Asn>(rng.uniform(0, 1999)));
    pool.emplace_back(std::move(seq));
  }

  std::vector<bgp::RibEntry> entries;
  entries.reserve(prefixes * vps);
  for (std::size_t p = 0; p < prefixes; ++p) {
    const bgp::Prefix prefix(
        0x0a000000u + (static_cast<std::uint32_t>(p) << 8), 24);
    for (std::size_t v = 0; v < vps; ++v) {
      bgp::RibEntry entry;
      entry.vantage_point.asn = 64000 + static_cast<bgp::Asn>(v);
      entry.vantage_point.address = 0xc0000000u + static_cast<std::uint32_t>(v);
      entry.route.prefix = prefix;
      entry.route.path = pool[rng.uniform(0, unique_paths - 1)];
      entry.route.next_hop = entry.vantage_point.address;
      entry.route.communities.reserve(communities_per);
      std::uint16_t route_alphas[3];
      for (std::uint16_t& alpha : route_alphas) {
        const bool transit = rng.uniform(0, 1) == 0;
        alpha = transit
                    ? static_cast<std::uint16_t>(1000 + rng.uniform(0, 299))
                    : static_cast<std::uint16_t>(20000 + rng.uniform(0, 99));
      }
      for (std::size_t c = 0; c < communities_per; ++c) {
        const std::uint16_t alpha = route_alphas[rng.uniform(0, 2)];
        const std::uint16_t beta = static_cast<std::uint16_t>(
            rng.uniform(0, 1) == 0 ? 100 + rng.uniform(0, 40)
                                   : 3000 + rng.uniform(0, 40));
        entry.route.communities.emplace_back(alpha, beta);
      }
      entry.route.large_communities.reserve(large_per);
      for (std::size_t c = 0; c < large_per; ++c)
        entry.route.large_communities.emplace_back(
            4200000000u + static_cast<std::uint32_t>(rng.uniform(0, 99)),
            static_cast<std::uint32_t>(rng.uniform(0, 999)),
            static_cast<std::uint32_t>(rng.uniform(0, 999)));
      entry.route.ext_communities.reserve(ext_per);
      for (std::size_t c = 0; c < ext_per; ++c)
        entry.route.ext_communities.push_back(bgp::ExtCommunity::route_target(
            static_cast<std::uint16_t>(64000 + rng.uniform(0, 499)),
            static_cast<std::uint32_t>(rng.uniform(0, 999))));
      entries.push_back(std::move(entry));
    }
  }

  std::ostringstream out;
  mrt::MrtWriter writer(out);
  writer.write_rib_snapshot(entries, 0x7f000001, 1684886400);
  return std::move(out).str();
}

/// Heap bytes behind one materialized RIB row — what the row vector pays
/// beyond sizeof(RibEntry) for paths and attribute lists.
std::size_t rib_entry_heap_bytes(const bgp::RibEntry& entry) {
  std::size_t bytes =
      entry.route.path.segments().capacity() * sizeof(bgp::PathSegment);
  for (const auto& seg : entry.route.path.segments())
    bytes += seg.asns.capacity() * sizeof(bgp::Asn);
  bytes += entry.route.communities.capacity() * sizeof(bgp::Community);
  bytes += entry.route.large_communities.capacity() *
           sizeof(bgp::LargeCommunity);
  bytes +=
      entry.route.ext_communities.capacity() * sizeof(bgp::ExtCommunity);
  return bytes;
}

double best_of_ms(int repeats, const std::function<void()>& body) {
  double best = 0.0;
  for (int r = 0; r < repeats; ++r) {
    const auto start = std::chrono::steady_clock::now();
    body();
    const auto stop = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(stop - start).count();
    if (r == 0 || ms < best) best = ms;
  }
  return best;
}

double mb_per_s(std::size_t bytes, double ms) {
  if (ms <= 0.0) return 0.0;
  return static_cast<double>(bytes) / 1e6 / (ms / 1e3);
}

/// Same classification output from both data flows, compared field by
/// field — the speedup claim is only worth reporting if this holds.
bool results_identical(const core::PipelineResult& a,
                       const core::PipelineResult& b) {
  if (a.observations.all() != b.observations.all()) return false;
  if (a.inference.clusters != b.inference.clusters) return false;
  if (a.inference.labels != b.inference.labels) return false;
  if (a.inference.information_count != b.inference.information_count ||
      a.inference.action_count != b.inference.action_count ||
      a.inference.excluded_private != b.inference.excluded_private ||
      a.inference.excluded_never_on_path != b.inference.excluded_never_on_path)
    return false;
  if (a.entries_ingested != b.entries_ingested) return false;
  return a.decode_report.records_ok == b.decode_report.records_ok &&
         a.decode_report.records_skipped == b.decode_report.records_skipped;
}

/// BGPINTENT_BENCH_SCALE for a workload that is synthesized directly
/// rather than scenario-built: each preset rung multiplies the default
/// row count (prefixes x vantage points) and path pool.  Unknown names
/// exit 2, matching bench::apply_bench_scale.
std::size_t workload_multiplier(const char*& name) {
  const char* env = std::getenv("BGPINTENT_BENCH_SCALE");
  if (env == nullptr || *env == '\0') {
    name = nullptr;
    return 1;
  }
  name = env;
  if (std::strcmp(env, "tiny") == 0) return 1;
  if (std::strcmp(env, "small") == 0) return 2;
  if (std::strcmp(env, "medium") == 0) return 4;
  if (std::strcmp(env, "large") == 0) return 8;
  if (std::strcmp(env, "internet") == 0) return 16;
  std::fprintf(stderr,
               "BGPINTENT_BENCH_SCALE=%s: unknown preset (want tiny, "
               "small, medium, large, or internet)\n",
               env);
  std::exit(2);
}

}  // namespace

int main() {
  const int repeats = [] {
    const char* env = std::getenv("BGPINTENT_BENCH_REPEATS");
    return env != nullptr ? std::max(1, std::atoi(env)) : 5;
  }();

  const char* scale = nullptr;
  const std::size_t multiplier = workload_multiplier(scale);
  const std::size_t prefixes = 1000 * multiplier;
  const std::size_t unique_paths = 4000 * multiplier;
  if (scale != nullptr)
    std::printf("scale preset %s: %zu prefixes, %zu unique paths\n", scale,
                prefixes, unique_paths);

  const std::string bytes = make_mrt_workload(
      prefixes, /*vps=*/30, unique_paths,
      /*communities_per=*/6, /*large_per=*/4, /*ext_per=*/2);

  // Both flows read a real file, the way the CLI does: the materializing
  // baseline through an ifstream, the streaming flow through open_source
  // (an mmap when the filesystem allows it, else a buffered fallback).
  const std::string path = "ingest_throughput_workload.mrt";
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    if (!out) {
      std::fprintf(stderr, "could not write %s\n", path.c_str());
      return 1;
    }
  }
  const bool zero_copy = mrt::open_source(path)->zero_copy();

  // --- Ingest halves: MRT file -> PathTable + packed tuples. ---

  // Peak tuple+row bytes, measured once outside the timed regions: the
  // materializing flow holds the full row vector AND the interned
  // representation live at the handoff; the streaming flow only ever holds
  // the latter.
  std::size_t materialize_bytes = 0;
  std::size_t streaming_bytes = 0;
  std::size_t streaming_rows = 0;
  {
    std::ifstream in(path, std::ios::binary);
    const auto entries = mrt::read_rib_entries(in);
    bgp::PathTable table;
    const auto tuples = bgp::intern_entries(table, entries);
    materialize_bytes = entries.capacity() * sizeof(bgp::RibEntry) +
                        table.memory_bytes() +
                        tuples.capacity() * sizeof(bgp::InternedTuple);
    for (const bgp::RibEntry& entry : entries)
      materialize_bytes += rib_entry_heap_bytes(entry);
    const auto source = mrt::open_source(path);
    core::MrtIngest ingest;
    ingest.add(*source);
    streaming_bytes = ingest.memory_bytes();
    streaming_rows = ingest.entries();
  }

  // Materializing: the full row vector exists, then interning walks it
  // again; freeing the rows afterwards is part of the flow and stays in
  // the timed region.
  const double materialize_ms = best_of_ms(repeats, [&] {
    std::ifstream in(path, std::ios::binary);
    const auto entries = mrt::read_rib_entries(in);
    bgp::PathTable table;
    const auto tuples = bgp::intern_entries(table, entries);
    if (tuples.empty()) std::abort();  // keep the work observable
  });

  // Streaming: mmap the file, one reused scratch row, rows intern as they
  // decode.
  const double streaming_ms = best_of_ms(repeats, [&] {
    const auto source = mrt::open_source(path);
    core::MrtIngest ingest;
    ingest.add(*source);
    if (ingest.tuples().empty()) std::abort();
  });

  // Parallel streaming (informational): same output, chunked across a
  // pool.
  const unsigned pool_size = util::ThreadPool::resolve(0);
  double streaming_parallel_ms = 0.0;
  {
    util::ThreadPool pool(pool_size);
    const auto source = mrt::open_source(path);
    core::MrtIngest reference;
    reference.add(*source);
    bool parallel_identical = true;
    streaming_parallel_ms = best_of_ms(repeats, [&] {
      core::MrtIngest ingest;
      ingest.add_parallel(*source, pool);
      if (ingest.paths().size() != reference.paths().size() ||
          !std::equal(ingest.tuples().begin(), ingest.tuples().end(),
                      reference.tuples().begin(), reference.tuples().end()))
        parallel_identical = false;
    });
    if (!parallel_identical) {
      std::fprintf(stderr,
                   "FAIL: parallel streaming ingest diverged from "
                   "sequential\n");
      return 1;
    }
  }

  // --- End to end: MRT file -> classification. ---
  core::Pipeline pipeline;
  core::PipelineResult materialized_result;
  const double materialize_e2e_ms = best_of_ms(repeats, [&] {
    std::ifstream in(path, std::ios::binary);
    mrt::DecodeReport report;
    const auto rows = mrt::read_rib_entries(in, {}, &report);
    materialized_result = pipeline.run(rows);
    materialized_result.decode_report = std::move(report);
  });
  core::PipelineResult streaming_result;
  const double streaming_e2e_ms = best_of_ms(repeats, [&] {
    const auto source = mrt::open_source(path);
    streaming_result = pipeline.run_mrt(*source);
  });

  const bool identical =
      results_identical(materialized_result, streaming_result);
  const double ingest_speedup =
      streaming_ms > 0.0 ? materialize_ms / streaming_ms : 0.0;
  const double e2e_speedup =
      streaming_e2e_ms > 0.0 ? materialize_e2e_ms / streaming_e2e_ms : 0.0;
  const double memory_ratio =
      streaming_bytes > 0 ? static_cast<double>(materialize_bytes) /
                                static_cast<double>(streaming_bytes)
                          : 0.0;

  struct rusage usage {};
  getrusage(RUSAGE_SELF, &usage);

  const auto json_line = [](const char* metric, double value) {
    std::printf(
        "{\"bench\": \"ingest_throughput\", \"metric\": \"%s\", "
        "\"value\": %.3f}\n",
        metric, value);
  };
  std::printf("== MRT ingest: materializing (ifstream) vs streaming "
              "(%s) ==\n",
              zero_copy ? "mmap" : "buffered fallback");
  json_line("mrt_bytes", static_cast<double>(bytes.size()));
  json_line("rows", static_cast<double>(streaming_rows));
  json_line("mmap", zero_copy ? 1.0 : 0.0);
  json_line("materialize_ingest_ms", materialize_ms);
  json_line("streaming_ingest_ms", streaming_ms);
  json_line("streaming_parallel_ingest_ms", streaming_parallel_ms);
  json_line("ingest_speedup", ingest_speedup);
  json_line("materialize_ingest_mb_s", mb_per_s(bytes.size(), materialize_ms));
  json_line("streaming_ingest_mb_s", mb_per_s(bytes.size(), streaming_ms));
  json_line("materialize_e2e_ms", materialize_e2e_ms);
  json_line("streaming_e2e_ms", streaming_e2e_ms);
  json_line("e2e_speedup", e2e_speedup);
  json_line("materialize_peak_bytes", static_cast<double>(materialize_bytes));
  json_line("streaming_peak_bytes", static_cast<double>(streaming_bytes));
  json_line("memory_ratio", memory_ratio);
  json_line("ru_maxrss_kb", static_cast<double>(usage.ru_maxrss));
  json_line("identical", identical ? 1.0 : 0.0);

  const char* out_path = std::getenv("BGPINTENT_BENCH_JSON");
  if (out_path == nullptr) out_path = "BENCH_ingest.json";
  if (std::FILE* out = std::fopen(out_path, "w")) {
    std::fprintf(
        out,
        "{\n"
        "  \"bench\": \"ingest_throughput\",\n"
        "  \"workload\": {\"prefixes\": %zu, \"vantage_points\": 30, "
        "\"unique_paths\": %zu, \"communities_per_route\": 6, "
        "\"large_communities_per_route\": 4, "
        "\"ext_communities_per_route\": 2, \"scale\": \"%s\", "
        "\"mrt_bytes\": %zu, \"rows\": %zu},\n"
        "  \"results\": {\n"
        "    \"materialize_ingest_ms\": %.3f,\n"
        "    \"streaming_ingest_ms\": %.3f,\n"
        "    \"streaming_parallel_ingest_ms\": %.3f,\n"
        "    \"ingest_speedup\": %.2f,\n"
        "    \"materialize_ingest_mb_s\": %.1f,\n"
        "    \"streaming_ingest_mb_s\": %.1f,\n"
        "    \"materialize_e2e_ms\": %.3f,\n"
        "    \"streaming_e2e_ms\": %.3f,\n"
        "    \"e2e_speedup\": %.2f,\n"
        "    \"materialize_peak_bytes\": %zu,\n"
        "    \"streaming_peak_bytes\": %zu,\n"
        "    \"memory_ratio\": %.2f,\n"
        "    \"identical\": %s\n"
        "  }\n"
        "}\n",
        prefixes, unique_paths, scale != nullptr ? scale : "default",
        bytes.size(), streaming_rows, materialize_ms, streaming_ms,
        streaming_parallel_ms, ingest_speedup,
        mb_per_s(bytes.size(), materialize_ms),
        mb_per_s(bytes.size(), streaming_ms), materialize_e2e_ms,
        streaming_e2e_ms, e2e_speedup, materialize_bytes, streaming_bytes,
        memory_ratio, identical ? "true" : "false");
    std::fclose(out);
    std::printf("wrote %s\n", out_path);
  } else {
    std::fprintf(stderr, "could not write %s\n", out_path);
    std::remove(path.c_str());
    return 1;
  }
  std::remove(path.c_str());
  if (!identical) {
    std::printf(
        "FAIL: streaming classification disagrees with materializing\n");
    return 1;
  }
  return 0;
}
