// Throughput of the serve daemon over loopback TCP: INGEST observations/sec
// and LABEL queries/sec, measured end-to-end through the line protocol
// (client encode -> socket -> server parse -> classifier -> response).
//
// Two query phases are reported separately because they exercise different
// paths: "cold" queries right after an ingest burst pay lazy
// reclassification of the dirty alphas; "warm" queries are pure map
// lookups under the classifier lock.  The in-process classifier rates are
// printed alongside as the protocol-overhead baseline.
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench/common.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"

using namespace bgpintent;

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

double rate(std::size_t count, double seconds) {
  return seconds > 0.0 ? static_cast<double>(count) / seconds : 0.0;
}

}  // namespace

int main() {
  auto cfg = bench::default_scenario_config();
  cfg.topology.stub_count = 400;
  cfg.vantage_point_count = 80;
  if (const char* scale = bench::apply_bench_scale(cfg))
    std::printf("scale preset: %s (BGPINTENT_BENCH_SCALE)\n", scale);
  bench::print_banner("serve_throughput — daemon ingest and query rates",
                      cfg);

  const auto scenario = routing::Scenario::build(cfg);
  const auto entries = scenario.entries();

  // The distinct communities to query, from a quick local pass.
  std::vector<bgp::Community> communities;
  {
    core::IncrementalClassifier probe;
    probe.ingest(entries);
    for (const auto& alpha : probe.export_state().alphas)
      for (const auto& beta : alpha.betas)
        communities.emplace_back(alpha.alpha, beta.beta);
  }
  std::printf("workload: %zu RIB entries, %zu distinct communities\n\n",
              entries.size(), communities.size());

  // In-process baseline (no protocol, no socket).
  double local_ingest_s = 0.0;
  double local_query_s = 0.0;
  {
    core::IncrementalClassifier local;
    local.set_org_map(&scenario.topology().orgs);
    auto start = std::chrono::steady_clock::now();
    local.ingest(entries);
    local_ingest_s = seconds_since(start);
    (void)local.totals();  // settle dirty alphas
    start = std::chrono::steady_clock::now();
    for (const bgp::Community community : communities)
      (void)local.label_of(community);
    local_query_s = seconds_since(start);
  }

  core::IncrementalClassifier classifier;
  classifier.set_org_map(&scenario.topology().orgs);
  serve::ServerConfig server_cfg;
  server_cfg.threads = 2;
  serve::Server server(std::move(classifier), server_cfg);
  server.start();
  auto client = serve::Client::connect("127.0.0.1", server.port());

  // INGEST burst.
  auto start = std::chrono::steady_clock::now();
  std::size_t sent = 0;
  for (const auto& entry : entries) {
    if (entry.route.communities.empty()) continue;
    client.ingest(entry.route.path, entry.route.communities);
    ++sent;
  }
  const double ingest_s = seconds_since(start);

  // Cold queries: every alpha is dirty after the burst.
  start = std::chrono::steady_clock::now();
  for (const bgp::Community community : communities)
    (void)client.label(community);
  const double cold_s = seconds_since(start);

  // Warm queries: labels cached, pure lookups.
  start = std::chrono::steady_clock::now();
  for (const bgp::Community community : communities)
    (void)client.label(community);
  const double warm_s = seconds_since(start);

  const auto stats = server.stats();
  client.quit();
  server.request_stop();
  server.wait();

  util::TextTable table({"metric", "count", "seconds", "rate/s", "local/s"});
  table.add_row({"INGEST observations", std::to_string(sent),
                 util::fixed(ingest_s, 3), util::fixed(rate(sent, ingest_s), 0),
                 util::fixed(rate(entries.size(), local_ingest_s), 0)});
  table.add_row({"LABEL cold", std::to_string(communities.size()),
                 util::fixed(cold_s, 3),
                 util::fixed(rate(communities.size(), cold_s), 0), "-"});
  table.add_row({"LABEL warm", std::to_string(communities.size()),
                 util::fixed(warm_s, 3),
                 util::fixed(rate(communities.size(), warm_s), 0),
                 util::fixed(rate(communities.size(), local_query_s), 0)});
  std::printf("%s\n", table.render().c_str());
  std::printf("server-side latency: p50=%.1fus p99=%.1fus over %llu queries\n",
              stats.p50_query_us, stats.p99_query_us,
              static_cast<unsigned long long>(stats.queries_served));
  return 0;
}
