// Throughput of the serve daemon over loopback TCP, before and after the
// protocol matters: INGEST observations/sec, cold and warm LABEL rates
// through the line protocol, and the multi-connection pipelined binary
// load that the shard-per-core epoll tier exists for.
//
// Rows:
//   - "LABEL warm line 1-conn" is the seed-comparable baseline: one
//     synchronous line-protocol query per socket round trip, exactly the
//     per-query cost profile of the pre-epoll daemon.
//   - "LABEL warm binary N-conn" is the load-generator phase: N
//     connections, each pipelining P binary LABEL frames per batch, with
//     client-side p50/p95/p99 over per-response latencies.
//   - "BATCH-LABEL" amortizes framing further: one frame carrying P
//     communities.
//
// Knobs (env): BGPINTENT_SERVE_CONNS (default 8), BGPINTENT_SERVE_PIPELINE
// (64), BGPINTENT_SERVE_SHARDS (8), BGPINTENT_SERVE_QUERIES (total warm
// queries per phase, 20000), BGPINTENT_SERVE_MIN_SPEEDUP (gate, 10).
// BGPINTENT_BENCH_JSON writes the machine-readable report
// (BENCH_serve.json in-repo); the run exits 1 when the pipelined binary
// rate fails the >= 10x gate over the line baseline.
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <arpa/inet.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.hpp"
#include "serve/binary.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "util/stats.hpp"

using namespace bgpintent;
namespace bin = serve::binary;

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

double rate(std::size_t count, double seconds) {
  return seconds > 0.0 ? static_cast<double>(count) / seconds : 0.0;
}

std::size_t env_u64(const char* name, std::size_t fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return fallback;
  const long long v = std::atoll(env);
  return v > 0 ? static_cast<std::size_t>(v) : fallback;
}

/// One pipelined binary load-generator connection: sends `pipeline` LABEL
/// frames per batch, then drains the batch's responses, recording one
/// client-side latency sample per response.
struct Worker {
  std::size_t queries = 0;
  std::vector<double> latencies_us;
  bool ok = true;

  void run(std::uint16_t port, const std::vector<bgp::Community>& communities,
           std::size_t target_queries, std::size_t pipeline,
           std::size_t offset) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
      ok = false;
      return;
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof addr) != 0) {
      ::close(fd);
      ok = false;
      return;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);

    std::string out;
    bin::encode_hello(out);
    ok = send_all(fd, out) && read_responses(fd, 1, nullptr);
    latencies_us.reserve(target_queries);

    std::size_t cursor = offset;
    while (ok && queries < target_queries) {
      const std::size_t batch =
          std::min(pipeline, target_queries - queries);
      out.clear();
      for (std::size_t i = 0; i < batch; ++i) {
        bin::encode_label_request(out,
                                  communities[cursor % communities.size()]);
        ++cursor;
      }
      const auto sent_at = std::chrono::steady_clock::now();
      ok = send_all(fd, out) && read_responses(fd, batch, &sent_at);
      queries += batch;
    }
    ::close(fd);
  }

 private:
  static bool send_all(int fd, const std::string& bytes) {
    std::size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                               MSG_NOSIGNAL);
      if (n <= 0) return false;
      sent += static_cast<std::size_t>(n);
    }
    return true;
  }

  /// Reads until `want` complete frames arrive; per frame, records
  /// now - *sent_at as that response's latency.
  bool read_responses(int fd, std::size_t want,
                      const std::chrono::steady_clock::time_point* sent_at) {
    while (want > 0) {
      char chunk[16 * 1024];
      const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
      if (n <= 0) return false;
      in_.append(chunk, static_cast<std::size_t>(n));
      std::size_t consumed = 0;
      while (want > 0) {
        bin::Frame frame;
        const auto result = bin::parse_frame(
            {reinterpret_cast<const unsigned char*>(in_.data()) + consumed,
             in_.size() - consumed},
            frame);
        if (result != bin::ParseResult::kFrame) break;
        if (frame.tag != static_cast<std::uint8_t>(bin::Status::kOk))
          return false;
        consumed += frame.consumed;
        --want;
        if (sent_at != nullptr)
          latencies_us.push_back(
              std::chrono::duration<double, std::micro>(
                  std::chrono::steady_clock::now() - *sent_at)
                  .count());
      }
      in_.erase(0, consumed);
    }
    return true;
  }

  std::string in_;
};

}  // namespace

int main() {
  auto cfg = bench::default_scenario_config();
  cfg.topology.stub_count = 400;
  cfg.vantage_point_count = 80;
  if (const char* scale = bench::apply_bench_scale(cfg))
    std::printf("scale preset: %s (BGPINTENT_BENCH_SCALE)\n", scale);
  bench::print_banner("serve_throughput — daemon ingest and query rates",
                      cfg);

  const std::size_t conns = env_u64("BGPINTENT_SERVE_CONNS", 8);
  const std::size_t pipeline = env_u64("BGPINTENT_SERVE_PIPELINE", 64);
  const std::size_t shards = env_u64("BGPINTENT_SERVE_SHARDS", 8);
  const std::size_t warm_queries = env_u64("BGPINTENT_SERVE_QUERIES", 20000);
  const double min_speedup = static_cast<double>(
      env_u64("BGPINTENT_SERVE_MIN_SPEEDUP", 10));

  const auto scenario = routing::Scenario::build(cfg);
  const auto entries = scenario.entries();

  // The distinct communities to query, from a quick local pass.
  std::vector<bgp::Community> communities;
  {
    core::IncrementalClassifier probe;
    probe.ingest(entries);
    for (const auto& alpha : probe.export_state().alphas)
      for (const auto& beta : alpha.betas)
        communities.emplace_back(alpha.alpha, beta.beta);
  }
  std::printf(
      "workload: %zu RIB entries, %zu distinct communities; load gen: "
      "%zu conns x %zu pipelined, %zu shards, %zu warm queries/phase\n\n",
      entries.size(), communities.size(), conns, pipeline, shards,
      warm_queries);

  // In-process baseline (no protocol, no socket).
  double local_query_s = 0.0;
  {
    core::IncrementalClassifier local;
    local.set_org_map(&scenario.topology().orgs);
    local.ingest(entries);
    (void)local.totals();  // settle dirty alphas
    auto start = std::chrono::steady_clock::now();
    for (const bgp::Community community : communities)
      (void)local.label_of(community);
    local_query_s = seconds_since(start);
  }

  core::IncrementalClassifier classifier;
  classifier.set_org_map(&scenario.topology().orgs);
  serve::ServerConfig server_cfg;
  server_cfg.shards = static_cast<unsigned>(shards);
  serve::Server server(std::move(classifier), server_cfg);
  server.start();
  auto client = serve::Client::connect("127.0.0.1", server.port());

  // INGEST burst.
  auto start = std::chrono::steady_clock::now();
  std::size_t sent = 0;
  for (const auto& entry : entries) {
    if (entry.route.communities.empty()) continue;
    client.ingest(entry.route.path, entry.route.communities);
    ++sent;
  }
  const double ingest_s = seconds_since(start);

  // Cold queries: every alpha is dirty after the burst; the first query
  // settles them and publishes the fresh label epoch.
  start = std::chrono::steady_clock::now();
  for (const bgp::Community community : communities)
    (void)client.label(community);
  const double cold_s = seconds_since(start);

  // Warm line-protocol baseline: one query per socket round trip on one
  // connection — the pre-epoll daemon's cost profile.
  start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < warm_queries; ++i)
    (void)client.label(communities[i % communities.size()]);
  const double warm_line_s = seconds_since(start);
  const double warm_line_qps = rate(warm_queries, warm_line_s);

  // Warm binary multi-connection pipelined load.
  std::vector<Worker> workers(conns);
  {
    std::vector<std::thread> threads;
    threads.reserve(conns);
    const std::size_t per_conn = warm_queries;  // each conn runs the budget
    start = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < conns; ++i)
      threads.emplace_back([&, i] {
        workers[i].run(server.port(), communities, per_conn, pipeline,
                       i * 37);
      });
    for (auto& thread : threads) thread.join();
  }
  const double warm_binary_s = seconds_since(start);
  std::size_t binary_queries = 0;
  std::vector<double> latencies;
  bool load_ok = true;
  for (const Worker& worker : workers) {
    binary_queries += worker.queries;
    load_ok = load_ok && worker.ok;
    latencies.insert(latencies.end(), worker.latencies_us.begin(),
                     worker.latencies_us.end());
  }
  const double warm_binary_qps = rate(binary_queries, warm_binary_s);
  const double p50 = util::percentile(latencies, 50.0);
  const double p95 = util::percentile(latencies, 95.0);
  const double p99 = util::percentile(latencies, 99.0);

  // BATCH-LABEL: one frame per `pipeline` communities, one connection.
  double warm_batch_qps = 0.0;
  {
    auto batch_client = serve::Client::connect("127.0.0.1", server.port());
    batch_client.negotiate_binary();
    std::vector<bgp::Community> batch(pipeline);
    std::size_t done = 0;
    start = std::chrono::steady_clock::now();
    while (done < warm_queries) {
      for (std::size_t i = 0; i < batch.size(); ++i)
        batch[i] = communities[(done + i) % communities.size()];
      (void)batch_client.labels(batch);
      done += batch.size();
    }
    warm_batch_qps = rate(done, seconds_since(start));
  }

  const auto stats = server.stats();
  client.quit();
  server.request_stop();
  server.wait();

  const double speedup =
      warm_line_qps > 0.0 ? warm_binary_qps / warm_line_qps : 0.0;

  util::TextTable table({"metric", "count", "seconds", "rate/s"});
  table.add_row({"INGEST observations", std::to_string(sent),
                 util::fixed(ingest_s, 3),
                 util::fixed(rate(sent, ingest_s), 0)});
  table.add_row({"LABEL cold", std::to_string(communities.size()),
                 util::fixed(cold_s, 3),
                 util::fixed(rate(communities.size(), cold_s), 0)});
  table.add_row({"LABEL warm line 1-conn", std::to_string(warm_queries),
                 util::fixed(warm_line_s, 3), util::fixed(warm_line_qps, 0)});
  table.add_row(
      {"LABEL warm binary " + std::to_string(conns) + "-conn",
       std::to_string(binary_queries), util::fixed(warm_binary_s, 3),
       util::fixed(warm_binary_qps, 0)});
  table.add_row({"BATCH-LABEL warm", std::to_string(warm_queries), "-",
                 util::fixed(warm_batch_qps, 0)});
  table.add_row({"local label_of", std::to_string(communities.size()),
                 util::fixed(local_query_s, 3),
                 util::fixed(rate(communities.size(), local_query_s), 0)});
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "client-side pipelined latency: p50=%.1fus p95=%.1fus p99=%.1fus\n",
      p50, p95, p99);
  std::printf("server-side latency: p50=%.1fus p99=%.1fus over %llu queries "
              "(%llu wakeups, %llu epochs)\n",
              stats.p50_query_us, stats.p99_query_us,
              static_cast<unsigned long long>(stats.queries_served),
              static_cast<unsigned long long>(stats.loop_wakeups),
              static_cast<unsigned long long>(stats.label_epochs));
  std::printf("binary vs line speedup: %.1fx (gate: >= %.0fx)\n\n", speedup,
              min_speedup);

  if (const char* out_path = std::getenv("BGPINTENT_BENCH_JSON")) {
    if (std::FILE* out = std::fopen(out_path, "w")) {
      std::fprintf(
          out,
          "{\n"
          "  \"bench\": \"serve_throughput\",\n"
          "  \"workload\": {\"entries\": %zu, \"communities\": %zu, "
          "\"conns\": %zu, \"pipeline\": %zu, \"shards\": %zu, "
          "\"warm_queries\": %zu},\n"
          "  \"results\": {\n"
          "    \"ingest_obs_per_sec\": %.1f,\n"
          "    \"local_label_qps\": %.1f,\n"
          "    \"cold_label_qps\": %.1f,\n"
          "    \"warm_line_single_qps\": %.1f,\n"
          "    \"warm_binary_mc_qps\": %.1f,\n"
          "    \"warm_batch_qps\": %.1f,\n"
          "    \"binary_vs_line_speedup\": %.2f,\n"
          "    \"client_p50_us\": %.1f,\n"
          "    \"client_p95_us\": %.1f,\n"
          "    \"client_p99_us\": %.1f,\n"
          "    \"server_p50_us\": %.1f,\n"
          "    \"server_p99_us\": %.1f,\n"
          "    \"loop_wakeups\": %llu,\n"
          "    \"label_epochs\": %llu\n"
          "  }\n"
          "}\n",
          entries.size(), communities.size(), conns, pipeline, shards,
          warm_queries, rate(sent, ingest_s),
          rate(communities.size(), local_query_s),
          rate(communities.size(), cold_s), warm_line_qps, warm_binary_qps,
          warm_batch_qps, speedup, p50, p95, p99, stats.p50_query_us,
          stats.p99_query_us,
          static_cast<unsigned long long>(stats.loop_wakeups),
          static_cast<unsigned long long>(stats.label_epochs));
      std::fclose(out);
    } else {
      std::fprintf(stderr, "could not write %s\n", out_path);
      return 1;
    }
  }

  if (!load_ok) {
    std::fprintf(stderr, "FAIL: a load-generator connection errored out\n");
    return 1;
  }
  if (speedup < min_speedup) {
    std::fprintf(stderr,
                 "FAIL: pipelined binary rate is %.1fx the line baseline "
                 "(gate: >= %.0fx)\n",
                 speedup, min_speedup);
    return 1;
  }
  return 0;
}
