// World-scale propagation bench: walks the ScalePreset ladder from the
// CI-sized default world up to the ~75K-AS "internet" rung, measuring for
// each rung
//   - topology generation and scenario assembly time,
//   - route-propagation throughput (RIB route tuples produced per second)
//     over a bounded announcement sample,
//   - rounds-to-convergence of the wavefront relaxation,
//   - compact-RIB and path-table memory, and peak RSS,
// and verifies on every rung that frontier-parallel propagation at pool
// sizes 1/2/8 is bit-identical to the sequential fixed point (non-zero
// exit on divergence — this doubles as the scale-level determinism gate).
//
// The announcement sample is bounded per rung so the full ladder stays
// tractable on one core; the sample is propagated to convergence, which is
// what the paper-scale acceptance needs.  Results are printed as JSON
// lines and written to BENCH_world.json (override with
// BGPINTENT_BENCH_JSON).  BGPINTENT_WORLD_SCALE=smoke restricts the run to
// the two smallest rungs for CI; any other value (or none) runs the full
// ladder.  BGPINTENT_BENCH_REPEATS sets best-of repeats for the timed
// propagation (default 1 — the large rungs dominate wall time).
#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "routing/scenario.hpp"
#include "topo/generator.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace bgpintent;

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

long peak_rss_kb() {
  struct rusage usage {};
  getrusage(RUSAGE_SELF, &usage);
  return usage.ru_maxrss;
}

/// Announcement sample per rung: enough to exercise the full wavefront
/// schedule many times over, small enough that the ladder finishes in
/// minutes on one core.
std::size_t sample_for(topo::ScalePreset preset, bool smoke) {
  using topo::ScalePreset;
  switch (preset) {
    case ScalePreset::kTiny: return smoke ? 64 : 256;
    case ScalePreset::kSmall: return smoke ? 24 : 160;
    case ScalePreset::kMedium: return 96;
    case ScalePreset::kLarge: return 48;
    case ScalePreset::kInternet: return 32;
  }
  return 32;
}

struct Row {
  std::string preset;
  std::size_t ases = 0;
  std::size_t edges = 0;
  std::size_t announcements = 0;
  double topo_gen_ms = 0.0;
  double scenario_build_ms = 0.0;
  double propagate_ms = 0.0;
  std::size_t routes = 0;
  double tuples_per_sec = 0.0;
  double mean_rounds = 0.0;
  std::uint32_t max_rounds = 0;
  bool converged = false;
  std::size_t rib_bytes = 0;
  std::size_t path_table_bytes = 0;
  std::size_t unique_paths = 0;
  bool identical = false;
  long ru_maxrss_kb = 0;
};

}  // namespace

int main() {
  const char* mode_env = std::getenv("BGPINTENT_WORLD_SCALE");
  const bool smoke =
      mode_env != nullptr && std::strcmp(mode_env, "smoke") == 0;
  const int repeats = [] {
    const char* env = std::getenv("BGPINTENT_BENCH_REPEATS");
    return env != nullptr ? std::max(1, std::atoi(env)) : 1;
  }();

  std::vector<topo::ScalePreset> ladder = topo::all_scale_presets();
  if (smoke) ladder.resize(2);  // tiny + small

  const auto json_line = [](const std::string& preset, const char* metric,
                            double value) {
    std::printf(
        "{\"bench\": \"world_scale\", \"preset\": \"%s\", "
        "\"metric\": \"%s\", \"value\": %.3f}\n",
        preset.c_str(), metric, value);
  };

  std::vector<Row> rows;
  bool all_identical = true;
  for (const topo::ScalePreset preset : ladder) {
    Row row;
    row.preset = topo::preset_name(preset);

    routing::ScenarioConfig cfg;
    cfg.topology = topo::preset_config(preset);

    const auto topo_start = std::chrono::steady_clock::now();
    const topo::Topology world = topo::generate_topology(cfg.topology);
    row.topo_gen_ms = ms_since(topo_start);
    row.ases = world.graph.as_count();
    row.edges = world.graph.edge_count();

    // Scenario assembly (policies + workload + vantage points) gives the
    // rung its realistic announcement mix; propagation then runs on a
    // bounded sample of those announcements.
    const auto build_start = std::chrono::steady_clock::now();
    const routing::Scenario scenario = routing::Scenario::build(cfg);
    row.scenario_build_ms = ms_since(build_start);

    const std::span<const routing::Announcement> sample(
        scenario.announcements().data(),
        std::min(sample_for(preset, smoke),
                 scenario.announcements().size()));
    row.announcements = sample.size();

    routing::Simulator simulator(scenario.topology(), scenario.policies());

    routing::Simulator::RibSet sequential;
    double best_ms = 0.0;
    for (int r = 0; r < repeats; ++r) {
      const auto start = std::chrono::steady_clock::now();
      sequential = simulator.propagate_all(sample);
      const double ms = ms_since(start);
      if (r == 0 || ms < best_ms) best_ms = ms;
    }
    row.propagate_ms = best_ms;

    std::uint64_t rounds_sum = 0;
    row.converged = true;
    for (const routing::PrefixRib& rib : sequential.ribs) {
      row.routes += rib.size();
      row.rib_bytes += rib.memory_bytes();
      rounds_sum += rib.rounds();
      row.max_rounds = std::max(row.max_rounds, rib.rounds());
      if (rib.rounds() >= routing::Simulator::kMaxRounds)
        row.converged = false;
    }
    row.mean_rounds =
        sequential.ribs.empty()
            ? 0.0
            : static_cast<double>(rounds_sum) /
                  static_cast<double>(sequential.ribs.size());
    row.tuples_per_sec =
        best_ms > 0.0 ? static_cast<double>(row.routes) / (best_ms / 1e3)
                      : 0.0;
    row.path_table_bytes = sequential.paths->memory_bytes();
    row.unique_paths = sequential.paths->size();

    // Determinism gate: per-prefix sharding AND within-prefix frontier
    // parallelism must both reproduce the sequential fixed point exactly
    // at every pool size.
    row.identical = true;
    const std::size_t parity = std::min<std::size_t>(sample.size(), 8);
    for (const unsigned threads : {1u, 2u, 8u}) {
      util::ThreadPool pool(threads);
      const auto sharded = simulator.propagate_all(sample, &pool);
      for (std::size_t i = 0; i < sequential.ribs.size(); ++i)
        if (!(sharded.ribs[i] == sequential.ribs[i])) row.identical = false;
      for (std::size_t i = 0; i < parity; ++i)
        if (!(simulator.propagate(sample[i], pool) == sequential.ribs[i]))
          row.identical = false;
    }
    if (!row.identical) all_identical = false;

    row.ru_maxrss_kb = peak_rss_kb();

    json_line(row.preset, "ases", static_cast<double>(row.ases));
    json_line(row.preset, "edges", static_cast<double>(row.edges));
    json_line(row.preset, "announcements",
              static_cast<double>(row.announcements));
    json_line(row.preset, "topo_gen_ms", row.topo_gen_ms);
    json_line(row.preset, "scenario_build_ms", row.scenario_build_ms);
    json_line(row.preset, "propagate_ms", row.propagate_ms);
    json_line(row.preset, "routes", static_cast<double>(row.routes));
    json_line(row.preset, "tuples_per_sec", row.tuples_per_sec);
    json_line(row.preset, "mean_rounds", row.mean_rounds);
    json_line(row.preset, "max_rounds", static_cast<double>(row.max_rounds));
    json_line(row.preset, "converged", row.converged ? 1.0 : 0.0);
    json_line(row.preset, "rib_bytes", static_cast<double>(row.rib_bytes));
    json_line(row.preset, "path_table_bytes",
              static_cast<double>(row.path_table_bytes));
    json_line(row.preset, "unique_paths",
              static_cast<double>(row.unique_paths));
    json_line(row.preset, "identical", row.identical ? 1.0 : 0.0);
    json_line(row.preset, "ru_maxrss_kb",
              static_cast<double>(row.ru_maxrss_kb));
    rows.push_back(std::move(row));
  }

  const char* out_path = std::getenv("BGPINTENT_BENCH_JSON");
  if (out_path == nullptr) out_path = "BENCH_world.json";
  if (std::FILE* out = std::fopen(out_path, "w")) {
    std::fprintf(out, "{\n  \"bench\": \"world_scale\",\n  \"rows\": [\n");
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      std::fprintf(
          out,
          "    {\"preset\": \"%s\", \"ases\": %zu, \"edges\": %zu, "
          "\"announcements\": %zu, \"topo_gen_ms\": %.1f, "
          "\"scenario_build_ms\": %.1f, \"propagate_ms\": %.1f, "
          "\"routes\": %zu, \"tuples_per_sec\": %.0f, "
          "\"mean_rounds\": %.2f, \"max_rounds\": %u, \"converged\": %s, "
          "\"rib_bytes\": %zu, \"path_table_bytes\": %zu, "
          "\"unique_paths\": %zu, \"identical\": %s, "
          "\"ru_maxrss_kb\": %ld}%s\n",
          r.preset.c_str(), r.ases, r.edges, r.announcements, r.topo_gen_ms,
          r.scenario_build_ms, r.propagate_ms, r.routes, r.tuples_per_sec,
          r.mean_rounds, r.max_rounds, r.converged ? "true" : "false",
          r.rib_bytes, r.path_table_bytes, r.unique_paths,
          r.identical ? "true" : "false", r.ru_maxrss_kb,
          i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
    std::printf("wrote %s\n", out_path);
  } else {
    std::fprintf(stderr, "could not write %s\n", out_path);
    return 1;
  }

  if (!all_identical) {
    std::fprintf(stderr,
                 "FAIL: parallel propagation diverged from sequential\n");
    return 1;
  }
  return 0;
}
