// Figure 6: CDF of on-path:off-path ratios of baseline (dictionary-defined)
// clusters, split by true intent, plus the threshold sweep that motivates
// the 160:1 cutoff.  Paper: 332 clusters covering 6,259 communities; 937
// communities purely on-path, 66 purely off-path, 5,256 in 183 mixed
// clusters (111 info / 72 action); nearly all info clusters sit at ratio
// >= 160:1 and the optimal threshold classifies ~98% of mixed clusters
// correctly.  Shapes to match: info ratios far above action ratios, a wide
// accuracy plateau around the optimum.
#include "bench/common.hpp"

using namespace bgpintent;

int main() {
  const auto cfg = bench::default_scenario_config();
  bench::print_banner("fig6 — on-path:off-path ratio CDF of baseline clusters",
                      cfg);
  const auto scenario = routing::Scenario::build(cfg);
  const auto entries = scenario.entries();
  const auto index = core::ObservationIndex::from_entries(
      entries, &scenario.topology().orgs);
  const auto clusters =
      core::baseline_clusters(index, scenario.ground_truth());

  std::size_t pure_on_communities = 0;
  std::size_t pure_off_communities = 0;
  std::size_t mixed_communities = 0;
  std::size_t mixed_info = 0;
  std::size_t mixed_action = 0;
  std::vector<double> info_ratios;
  std::vector<double> action_ratios;
  for (const auto& cluster : clusters) {
    if (cluster.pure_on) {
      pure_on_communities += cluster.member_count;
    } else if (cluster.pure_off) {
      pure_off_communities += cluster.member_count;
    } else {
      mixed_communities += cluster.member_count;
      if (cluster.truth == dict::Intent::kInformation) {
        ++mixed_info;
        info_ratios.push_back(cluster.mean_on_off_ratio);
      } else {
        ++mixed_action;
        action_ratios.push_back(cluster.mean_on_off_ratio);
      }
    }
  }
  std::printf(
      "baseline clusters: %zu total; communities: %zu pure on-path, %zu pure "
      "off-path, %zu in %zu mixed clusters (%zu info / %zu action)\n\n",
      clusters.size(), pure_on_communities, pure_off_communities,
      mixed_communities, mixed_info + mixed_action, mixed_info, mixed_action);

  bench::print_cdf("CDF of mixed INFO cluster on:off ratios",
                   util::EmpiricalCdf(info_ratios));
  bench::print_cdf("CDF of mixed ACTION cluster on:off ratios",
                   util::EmpiricalCdf(action_ratios));

  const std::vector<double> thresholds{1,  2,   5,   10,  20,   40,  80,
                                       120, 160, 240, 320, 640, 1280};
  util::TextTable sweep({"threshold", "pooled-ratio acc", "mean-ratio acc"});
  const auto pooled = core::sweep_ratio_threshold(
      clusters, thresholds, core::ClusterFeature::kPooledOnOff);
  const auto mean = core::sweep_ratio_threshold(
      clusters, thresholds, core::ClusterFeature::kMeanOnOff);
  for (std::size_t i = 0; i < thresholds.size(); ++i) {
    sweep.add_row({util::fixed(thresholds[i], 0),
                   util::percent(pooled[i].accuracy),
                   util::percent(mean[i].accuracy)});
  }
  std::printf(
      "threshold sweep over mixed clusters (paper: 160:1 yields ~98%%;\n"
      "pooled ratio is the classifier default — see DESIGN.md §5):\n%s",
      sweep.render().c_str());
  return 0;
}
