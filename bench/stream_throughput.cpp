// Streaming subsystem throughput (docs/STREAMING.md §5): end-to-end
// updates/second through StreamEngine over a synthetic BGP4MP firehose,
// reclassification latency percentiles, window memory, and the headline
// comparison — dirty-alpha reclassification vs. relabeling the whole
// window (`mark_all_dirty`) every epoch.
//
// The dirty-vs-full comparison is also a correctness smoke: both replays
// must end with identical labels, and the process exits non-zero if they
// differ or if dirty tracking fails the >=5x acceptance gate.
//
// BGPINTENT_WORLD_SCALE=smoke shrinks the world for CI;
// BGPINTENT_BENCH_REPEATS repeats the timed phases (best-of);
// BGPINTENT_BENCH_JSON writes the machine-readable report compared
// against the committed BENCH_stream.json baseline.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "mrt/source.hpp"
#include "mrt/update_stream.hpp"
#include "stream/engine.hpp"
#include "stream/synth.hpp"
#include "stream/window.hpp"

using namespace bgpintent;

namespace {

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// One decoded update, materialized so the replay phases pay no decode
/// cost inside the timed region.
struct Update {
  bool announce = false;
  bgp::RibEntry entry;
  bgp::VantagePointId peer;
  bgp::Prefix prefix;
  std::uint32_t timestamp = 0;
};

class Recorder final : public mrt::UpdateSink {
 public:
  void on_announce(bgp::RibEntry& entry, std::uint32_t timestamp) override {
    Update update;
    update.announce = true;
    update.entry = entry;
    update.timestamp = timestamp;
    updates.push_back(std::move(update));
  }
  void on_withdraw(const bgp::VantagePointId& peer, const bgp::Prefix& prefix,
                   std::uint32_t timestamp) override {
    Update update;
    update.peer = peer;
    update.prefix = prefix;
    update.timestamp = timestamp;
    updates.push_back(std::move(update));
  }
  std::vector<Update> updates;
};

/// Replays the updates, reclassifying once per epoch (and once at the
/// end).  Record timestamps spread *within* an epoch and are not globally
/// sorted, so the boundary is the monotone maximum — the same "window
/// never moves backward" rule the classifier itself applies.  `full`
/// switches to the mark_all_dirty() baseline.  Returns per-reclassify
/// durations in microseconds; `total_ms` accumulates only the reclassify
/// time, so the comparison isolates the classification work the two
/// strategies differ in.
std::vector<double> replay(stream::WindowClassifier& window,
                           const std::vector<Update>& updates,
                           std::uint32_t epoch_seconds, bool full,
                           double& total_ms) {
  std::vector<double> reclassify_us;
  const auto reclassify = [&]() {
    if (full) window.mark_all_dirty();
    const auto start = std::chrono::steady_clock::now();
    (void)window.reclassify_dirty();
    const double ms = ms_since(start);
    total_ms += ms;
    reclassify_us.push_back(ms * 1000.0);
  };
  bool started = false;
  std::uint32_t max_epoch = 0;
  for (const Update& update : updates) {
    const std::uint32_t epoch = update.timestamp / epoch_seconds;
    if (started && epoch > max_epoch) reclassify();
    max_epoch = std::max(max_epoch, epoch);
    started = true;
    if (update.announce)
      window.announce(update.entry, update.timestamp);
    else
      window.withdraw(update.peer, update.prefix, update.timestamp);
  }
  reclassify();
  return reclassify_us;
}

}  // namespace

int main() {
  const char* mode_env = std::getenv("BGPINTENT_WORLD_SCALE");
  const bool smoke =
      mode_env != nullptr && std::strcmp(mode_env, "smoke") == 0;
  const int repeats = [] {
    const char* env = std::getenv("BGPINTENT_BENCH_REPEATS");
    return env != nullptr ? std::max(1, std::atoi(env)) : 1;
  }();

  // The shipped default window shape: a trailing week of 168 epochs.  The
  // benched stream covers the table-transfer epoch plus a long steady
  // phase of diff/flap traffic — the regime a collector session spends
  // its life in, where each epoch touches a small fraction of the
  // community universe.  (Epoch expiry itself is equivalence-tested in
  // tests/property/stream_window_test.cpp; in a mini-world whose whole
  // alpha universe fits in one epoch of expiry, "expiring evidence"
  // degenerates to "relabel everything" and measures nothing.)
  stream::SynthStreamConfig synth_cfg;
  synth_cfg.scenario = bench::default_scenario_config(20230807);
  synth_cfg.scenario.topology.stub_count = smoke ? 120 : 300;
  synth_cfg.scenario.topology.tier2_count = smoke ? 60 : 80;
  synth_cfg.scenario.topology.tier1_count = smoke ? 6 : 10;
  synth_cfg.scenario.vantage_point_count = smoke ? 12 : 40;
  synth_cfg.scenario.day_churn = 0.02;
  synth_cfg.epochs = smoke ? 24 : 36;
  synth_cfg.epoch_seconds = 600;
  synth_cfg.flap_fraction = 0.05;

  stream::WindowConfig window_cfg;
  window_cfg.epoch_seconds = synth_cfg.epoch_seconds;
  window_cfg.window_epochs = 168;  // the paper-shaped trailing week

  bench::print_banner("stream_throughput — sliding-window update ingest",
                      synth_cfg.scenario);
  std::printf("stream: %u epochs x %us, flap %.2f, window %u epochs%s\n",
              synth_cfg.epochs, synth_cfg.epoch_seconds,
              synth_cfg.flap_fraction, window_cfg.window_epochs,
              smoke ? " (smoke)" : "");

  const stream::SynthStream synth = stream::generate_update_stream(synth_cfg);
  std::printf("workload: %llu records (%llu announce / %llu withdraw), "
              "%zu MRT bytes\n\n",
              static_cast<unsigned long long>(synth.stats.records),
              static_cast<unsigned long long>(synth.stats.announcements),
              static_cast<unsigned long long>(synth.stats.withdrawals),
              synth.bytes.size());

  // --- Phase 1: end-to-end engine ingest (decode + window + events). ---
  double ingest_ms = 0.0;
  stream::EngineStats engine_stats;
  for (int repeat = 0; repeat < repeats; ++repeat) {
    stream::StreamEngine engine(window_cfg);
    const mrt::BufferSource source(synth.bytes);
    const auto start = std::chrono::steady_clock::now();
    engine.ingest(source);
    const double ms = ms_since(start);
    if (repeat == 0 || ms < ingest_ms) ingest_ms = ms;
    engine_stats = engine.stats();
  }
  const double updates_per_sec =
      ingest_ms > 0.0
          ? static_cast<double>(engine_stats.updates_ok) / (ingest_ms / 1e3)
          : 0.0;

  // --- Phase 2: dirty tracking vs. full relabel, per epoch. ---
  Recorder recorder;
  {
    const mrt::BufferSource source(synth.bytes);
    mrt::decode_update_stream(source, recorder);
  }
  double dirty_ms = 0.0;
  double full_ms = 0.0;
  std::vector<double> dirty_us;
  std::vector<std::pair<stream::Community, stream::Intent>> dirty_labels;
  std::vector<std::pair<stream::Community, stream::Intent>> full_labels;
  for (int repeat = 0; repeat < repeats; ++repeat) {
    stream::WindowClassifier dirty_window(window_cfg);
    stream::WindowClassifier full_window(window_cfg);
    double dirty_total = 0.0;
    double full_total = 0.0;
    auto us = replay(dirty_window, recorder.updates,
                     window_cfg.epoch_seconds, false, dirty_total);
    (void)replay(full_window, recorder.updates, window_cfg.epoch_seconds,
                 true, full_total);
    if (repeat == 0 || dirty_total < dirty_ms) {
      dirty_ms = dirty_total;
      dirty_us = std::move(us);
    }
    if (repeat == 0 || full_total < full_ms) full_ms = full_total;
    if (repeat == 0) {
      dirty_labels = dirty_window.labels();
      full_labels = full_window.labels();
    }
  }
  const double speedup = dirty_ms > 0.0 ? full_ms / dirty_ms : 0.0;
  const double p50_us = util::percentile(dirty_us, 50.0);
  const double p99_us = util::percentile(dirty_us, 99.0);
  const bool identical = dirty_labels == full_labels;

  util::TextTable table({"metric", "value"});
  table.add_row({"engine ingest ms", util::fixed(ingest_ms, 1)});
  table.add_row({"updates/sec", util::fixed(updates_per_sec, 0)});
  table.add_row({"label events",
                 std::to_string(engine_stats.events)});
  table.add_row({"live tuples", std::to_string(engine_stats.live_tuples)});
  table.add_row({"window memory KiB",
                 util::fixed(static_cast<double>(
                                 engine_stats.window_memory_bytes) /
                                 1024.0,
                             1)});
  table.add_row({"dirty reclassify ms (total)", util::fixed(dirty_ms, 2)});
  table.add_row({"full reclassify ms (total)", util::fixed(full_ms, 2)});
  table.add_row({"dirty speedup", util::fixed(speedup, 2)});
  table.add_row({"dirty reclassify p50 us", util::fixed(p50_us, 1)});
  table.add_row({"dirty reclassify p99 us", util::fixed(p99_us, 1)});
  std::printf("%s\n", table.render().c_str());

  if (const char* out_path = std::getenv("BGPINTENT_BENCH_JSON")) {
    if (std::FILE* out = std::fopen(out_path, "w")) {
      std::fprintf(
          out,
          "{\n"
          "  \"bench\": \"stream_throughput\",\n"
          "  \"workload\": {\"records\": %llu, \"announcements\": %llu, "
          "\"withdrawals\": %llu, \"mrt_bytes\": %zu, \"epochs\": %u, "
          "\"window_epochs\": %u, \"smoke\": %s},\n"
          "  \"results\": {\n"
          "    \"ingest_ms\": %.3f,\n"
          "    \"updates_per_sec\": %.1f,\n"
          "    \"label_events\": %llu,\n"
          "    \"live_tuples\": %llu,\n"
          "    \"window_memory_bytes\": %zu,\n"
          "    \"dirty_reclassify_ms\": %.3f,\n"
          "    \"full_reclassify_ms\": %.3f,\n"
          "    \"dirty_speedup\": %.2f,\n"
          "    \"reclassify_p50_us\": %.1f,\n"
          "    \"reclassify_p99_us\": %.1f,\n"
          "    \"identical\": %s\n"
          "  }\n"
          "}\n",
          static_cast<unsigned long long>(synth.stats.records),
          static_cast<unsigned long long>(synth.stats.announcements),
          static_cast<unsigned long long>(synth.stats.withdrawals),
          synth.bytes.size(), synth_cfg.epochs, window_cfg.window_epochs,
          smoke ? "true" : "false", ingest_ms, updates_per_sec,
          static_cast<unsigned long long>(engine_stats.events),
          static_cast<unsigned long long>(engine_stats.live_tuples),
          engine_stats.window_memory_bytes, dirty_ms, full_ms, speedup,
          p50_us, p99_us, identical ? "true" : "false");
      std::fclose(out);
    } else {
      std::fprintf(stderr, "could not write %s\n", out_path);
    }
  }

  if (!identical) {
    std::printf("FAIL: dirty-tracking labels differ from full relabeling\n");
    return 1;
  }
  if (speedup < 5.0) {
    std::printf("FAIL: dirty tracking speedup %.2fx below the 5x gate\n",
                speedup);
    return 1;
  }
  std::printf("labels identical; dirty tracking %.2fx faster than full "
              "relabeling (gate: 5x)\n",
              speedup);
  return 0;
}
