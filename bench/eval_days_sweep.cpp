// §6 "Benefits of additional days of input BGP data": run the method on
// 1..7 accumulated days.  Paper: accuracy stabilizes between 96.4% and
// 96.6% with two or more days.  Shapes to match: small gain from day 1 to
// day 2, flat afterwards; observed tuples keep growing slowly.
#include "bench/common.hpp"

using namespace bgpintent;

int main() {
  const auto cfg = bench::default_scenario_config();
  bench::print_banner("eval_days — accuracy vs days of input data", cfg);
  const auto scenario = routing::Scenario::build(cfg);

  core::Pipeline pipeline;
  pipeline.set_org_map(&scenario.topology().orgs);

  std::vector<bgp::RibEntry> accumulated;
  util::TextTable table(
      {"days", "RIB entries", "communities", "accuracy", "coverage"});
  for (std::uint32_t day = 0; day < 7; ++day) {
    const auto day_entries = scenario.day_entries(day);
    accumulated.insert(accumulated.end(), day_entries.begin(),
                       day_entries.end());
    const auto result = pipeline.run(accumulated);
    const auto eval = result.score(scenario.ground_truth());
    table.add_row({std::to_string(day + 1), std::to_string(accumulated.size()),
                   std::to_string(result.observations.community_count()),
                   util::percent(eval.accuracy()),
                   util::percent(eval.coverage())});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("(paper: stabilizes at 96.4–96.6%% with >= 2 days)\n");
  return 0;
}
