// Restart-to-first-query latency and cross-process page sharing for the
// v3 columnar snapshot (docs/SERVING.md §3, docs/PERFORMANCE.md §9).
//
// Three restart paths over the same saved state:
//   v2 parse     — load_snapshot() of the row-oriented format: decode every
//                  record, rebuild every hash set (the seed behaviour).
//   v3 heap      — decode_snapshot() of the columnar format: one structural
//                  pass, then materialize owned state.
//   v3 mmap      — MappedSnapshot::open() + restore_view(): no decode, the
//                  mapping IS the state; first query binary-searches the
//                  borrowed columns.
// Each is timed end to end through the first LABEL answer.  The speedup
// claim self-gates on identity: the v3-mmap classifier must answer every
// label exactly as the v2-parse one, and export identical state.
//
// The sharing experiment forks two children per format which restore the
// same snapshot simultaneously and label every community; each child
// reports the Pss growth of its address space (/proc/self/smaps_rollup).
// Two v2 children each build a private heap; two v3 children split the
// snapshot's file-backed pages between them, so their combined growth
// must come in well under the v2 pair's.
//
// BGPINTENT_WORLD_SCALE=smoke shrinks the world for CI;
// BGPINTENT_BENCH_SCALE swaps in a topo preset rung;
// BGPINTENT_BENCH_REPEATS repeats the timed phases (best-of);
// BGPINTENT_BENCH_JSON overrides the BENCH_restart.json report path.
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "core/incremental.hpp"
#include "serve/snapshot.hpp"

using namespace bgpintent;
namespace fs = std::filesystem;

namespace {

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// Proportional-set-size of this process in kB; Pss (unlike RSS) divides
/// shared pages among their mappers, which is exactly the sharing this
/// bench wants to observe.  Returns 0 when the kernel lacks smaps_rollup.
double pss_kb() {
  std::ifstream in("/proc/self/smaps_rollup");
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("Pss:", 0) != 0) continue;
    return std::atof(line.c_str() + 4);
  }
  return 0.0;
}

struct ChildReport {
  double pss_growth_kb = 0.0;
  std::uint64_t label_checksum = 0;
};

enum class RestorePath { kV2Parse, kV3Mmap };

/// Child body for the sharing experiment: restore, label every community,
/// report Pss growth, then hold the state alive until the parent releases
/// us — both children must be resident at once or the pages have no one
/// to share with.
[[noreturn]] void sharing_child(RestorePath path, const std::string& snap,
                                const std::vector<bgp::Community>& communities,
                                int report_fd, int release_fd) {
  ChildReport report;
  const double before_kb = pss_kb();
  core::IncrementalClassifier classifier;
  std::shared_ptr<serve::MappedSnapshot> mapped;  // pins the mapping
  if (path == RestorePath::kV2Parse) {
    classifier = serve::load_snapshot(snap);
  } else {
    mapped = serve::MappedSnapshot::open(snap);
    classifier = core::IncrementalClassifier(mapped->classifier_config(),
                                             mapped->observation_config());
    classifier.restore_view(mapped->state_view());
  }
  for (const bgp::Community community : communities)
    report.label_checksum =
        report.label_checksum * 31 +
        static_cast<std::uint64_t>(classifier.label_of(community));
  report.pss_growth_kb = pss_kb() - before_kb;

  if (::write(report_fd, &report, sizeof report) != sizeof report) _exit(3);
  char go = 0;
  (void)!::read(release_fd, &go, 1);  // parent releases after both report
  _exit(0);
}

/// Runs the two-process sharing experiment; returns the pair's combined
/// Pss growth in kB (and checks both children agreed on every label).
double sharing_pair_kb(RestorePath path, const std::string& snap,
                       const std::vector<bgp::Community>& communities,
                       bool& identical) {
  int report_pipe[2], release_pipe[2];
  if (::pipe(report_pipe) != 0 || ::pipe(release_pipe) != 0) {
    std::perror("pipe");
    std::exit(1);
  }
  pid_t pids[2];
  for (pid_t& pid : pids) {
    pid = ::fork();
    if (pid < 0) {
      std::perror("fork");
      std::exit(1);
    }
    if (pid == 0) {
      ::close(report_pipe[0]);
      ::close(release_pipe[1]);
      sharing_child(path, snap, communities, report_pipe[1], release_pipe[0]);
    }
  }
  ::close(report_pipe[1]);
  ::close(release_pipe[0]);

  ChildReport reports[2];
  double combined_kb = 0.0;
  for (ChildReport& report : reports) {
    if (::read(report_pipe[0], &report, sizeof report) !=
        static_cast<ssize_t>(sizeof report)) {
      std::fprintf(stderr, "FAIL: sharing child died before reporting\n");
      std::exit(1);
    }
    combined_kb += report.pss_growth_kb;
  }
  identical = identical && reports[0].label_checksum == reports[1].label_checksum;

  const char go[2] = {1, 1};
  (void)!::write(release_pipe[1], go, 2);
  for (const pid_t pid : pids) {
    int status = 0;
    ::waitpid(pid, &status, 0);
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
      std::fprintf(stderr, "FAIL: sharing child exited abnormally\n");
      std::exit(1);
    }
  }
  ::close(report_pipe[0]);
  ::close(release_pipe[1]);
  return combined_kb;
}

double best_of_ms(int repeats, const std::function<void()>& body) {
  double best = 0.0;
  for (int r = 0; r < repeats; ++r) {
    const auto start = std::chrono::steady_clock::now();
    body();
    const double ms = ms_since(start);
    if (r == 0 || ms < best) best = ms;
  }
  return best;
}

}  // namespace

int main() {
  const char* mode_env = std::getenv("BGPINTENT_WORLD_SCALE");
  const bool smoke =
      mode_env != nullptr && std::strcmp(mode_env, "smoke") == 0;
  int repeats = 5;
  if (const char* env = std::getenv("BGPINTENT_BENCH_REPEATS")) {
    repeats = std::atoi(env);
    if (repeats < 1) repeats = 1;
  }

  routing::ScenarioConfig cfg = bench::default_scenario_config(20230517);
  if (smoke) {
    cfg.topology.tier1_count = 6;
    cfg.topology.tier2_count = 40;
    cfg.topology.stub_count = 150;
    cfg.vantage_point_count = 30;
  }
  const char* scale = bench::apply_bench_scale(cfg);
  bench::print_banner("restart_time — snapshot restart-to-first-query", cfg);
  if (smoke || scale != nullptr)
    std::printf("mode:%s%s%s\n", smoke ? " smoke" : "",
                scale != nullptr ? " scale preset " : "",
                scale != nullptr ? scale : "");

  const auto scenario = routing::Scenario::build(cfg);
  const auto entries = scenario.entries();
  core::IncrementalClassifier original;
  original.set_org_map(&scenario.topology().orgs);
  original.ingest(entries);
  // Settle part of the state so the snapshot carries cached labels, leave
  // the rest dirty so the restart paths also exercise lazy reclassify.
  std::vector<bgp::Community> communities;
  for (const auto& alpha : original.export_state().alphas)
    for (const auto& beta : alpha.betas)
      communities.emplace_back(alpha.alpha, beta.beta);
  for (std::size_t i = 0; i < communities.size() / 2; ++i)
    (void)original.label_of(communities[i]);
  std::printf("workload: %zu entries, %zu communities\n\n", entries.size(),
              communities.size());

  const std::string scratch =
      (fs::temp_directory_path() /
       ("bgpintent_bench_restart_" + std::to_string(::getpid())))
          .string();
  fs::remove_all(scratch);
  fs::create_directories(scratch);
  const std::string v2_path = scratch + "/state_v2.snap";
  const std::string v3_path = scratch + "/state_v3.snap";
  serve::save_snapshot(original, v2_path, serve::SnapshotFormat::kV2);
  serve::save_snapshot(original, v3_path, serve::SnapshotFormat::kV3);
  const auto v2_bytes = fs::file_size(v2_path);
  const auto v3_bytes = fs::file_size(v3_path);
  const bgp::Community probe = communities.front();

  // --- Restart-to-first-query, three paths. ---
  volatile int sink = 0;
  const double v2_restart_ms = best_of_ms(repeats, [&] {
    auto classifier = serve::load_snapshot(v2_path);
    sink = static_cast<int>(classifier.label_of(probe));
  });
  const double v3_heap_restart_ms = best_of_ms(repeats, [&] {
    auto classifier = serve::load_snapshot(v3_path);
    sink = static_cast<int>(classifier.label_of(probe));
  });
  const double v3_mmap_restart_ms = best_of_ms(repeats, [&] {
    const auto mapped = serve::MappedSnapshot::open(v3_path);
    core::IncrementalClassifier classifier(mapped->classifier_config(),
                                           mapped->observation_config());
    classifier.restore_view(mapped->state_view());
    sink = static_cast<int>(classifier.label_of(probe));
  });
  const double v3_mmap_noverify_ms = best_of_ms(repeats, [&] {
    serve::MappedSnapshotOptions options;
    options.verify_segment_checksums = false;
    const auto mapped = serve::MappedSnapshot::open(v3_path, options);
    core::IncrementalClassifier classifier(mapped->classifier_config(),
                                           mapped->observation_config());
    classifier.restore_view(mapped->state_view());
    sink = static_cast<int>(classifier.label_of(probe));
  });
  (void)sink;

  // --- The identity gate: the fast path must not change one answer. ---
  bool identical = true;
  {
    auto from_v2 = serve::load_snapshot(v2_path);
    from_v2.set_org_map(&scenario.topology().orgs);
    const auto mapped = serve::MappedSnapshot::open(v3_path);
    core::IncrementalClassifier from_v3(mapped->classifier_config(),
                                        mapped->observation_config());
    from_v3.set_org_map(&scenario.topology().orgs);
    from_v3.restore_view(mapped->state_view());
    if (from_v3.export_state() != from_v2.export_state()) identical = false;
    for (const bgp::Community community : communities)
      if (from_v3.label_of(community) != from_v2.label_of(community))
        identical = false;
    const auto a = from_v2.totals();
    const auto b = from_v3.totals();
    if (a.communities != b.communities || a.information != b.information ||
        a.action != b.action || a.unclassified != b.unclassified)
      identical = false;
  }

  // --- Cross-process sharing: two restarts of each format at once. ---
  const double v2_pair_kb =
      sharing_pair_kb(RestorePath::kV2Parse, v2_path, communities, identical);
  const double v3_pair_kb =
      sharing_pair_kb(RestorePath::kV3Mmap, v3_path, communities, identical);

  const double speedup =
      v3_mmap_restart_ms > 0.0 ? v2_restart_ms / v3_mmap_restart_ms : 0.0;
  const double pss_ratio =
      v2_pair_kb > 0.0 ? v3_pair_kb / v2_pair_kb : 0.0;
  const bool pss_measured = v2_pair_kb > 0.0 && v3_pair_kb > 0.0;

  const auto json_line = [](const char* metric, double value) {
    std::printf(
        "{\"bench\": \"restart_time\", \"metric\": \"%s\", "
        "\"value\": %.3f}\n",
        metric, value);
  };
  json_line("snapshot_v2_bytes", static_cast<double>(v2_bytes));
  json_line("snapshot_v3_bytes", static_cast<double>(v3_bytes));
  json_line("v2_restart_ms", v2_restart_ms);
  json_line("v3_heap_restart_ms", v3_heap_restart_ms);
  json_line("v3_mmap_restart_ms", v3_mmap_restart_ms);
  json_line("v3_mmap_noverify_ms", v3_mmap_noverify_ms);
  json_line("restart_speedup", speedup);
  json_line("v2_pair_pss_kb", v2_pair_kb);
  json_line("v3_pair_pss_kb", v3_pair_kb);
  json_line("pair_pss_ratio", pss_ratio);
  json_line("identical", identical ? 1.0 : 0.0);

  const char* out_path = std::getenv("BGPINTENT_BENCH_JSON");
  if (out_path == nullptr) out_path = "BENCH_restart.json";
  if (std::FILE* out = std::fopen(out_path, "w")) {
    std::fprintf(
        out,
        "{\n"
        "  \"bench\": \"restart_time\",\n"
        "  \"workload\": {\"entries\": %zu, \"communities\": %zu, "
        "\"snapshot_v2_bytes\": %llu, \"snapshot_v3_bytes\": %llu, "
        "\"mode\": \"%s\"},\n"
        "  \"results\": {\n"
        "    \"v2_restart_ms\": %.3f,\n"
        "    \"v3_heap_restart_ms\": %.3f,\n"
        "    \"v3_mmap_restart_ms\": %.3f,\n"
        "    \"v3_mmap_noverify_ms\": %.3f,\n"
        "    \"restart_speedup\": %.2f,\n"
        "    \"v2_pair_pss_kb\": %.1f,\n"
        "    \"v3_pair_pss_kb\": %.1f,\n"
        "    \"pair_pss_ratio\": %.3f,\n"
        "    \"identical\": %s\n"
        "  }\n"
        "}\n",
        entries.size(), communities.size(),
        static_cast<unsigned long long>(v2_bytes),
        static_cast<unsigned long long>(v3_bytes),
        smoke ? "smoke" : (scale != nullptr ? scale : "default"),
        v2_restart_ms, v3_heap_restart_ms, v3_mmap_restart_ms,
        v3_mmap_noverify_ms, speedup, v2_pair_kb, v3_pair_kb, pss_ratio,
        identical ? "true" : "false");
    std::fclose(out);
    std::printf("wrote %s\n", out_path);
  } else {
    std::fprintf(stderr, "could not write %s\n", out_path);
    fs::remove_all(scratch);
    return 1;
  }
  fs::remove_all(scratch);

  if (!identical) {
    std::printf("FAIL: v3-mmap restart answers diverged from v2 parse\n");
    return 1;
  }
  // Perf gates (skipped in smoke mode, where timer noise dominates): the
  // acceptance numbers this PR claims — 10x faster first query, and a
  // process pair paying well under two private heaps.
  if (!smoke) {
    if (speedup < 10.0) {
      std::printf("FAIL: restart speedup %.1fx is under the 10x gate\n",
                  speedup);
      return 1;
    }
    if (pss_measured && pss_ratio > 0.75) {
      std::printf("FAIL: pair Pss ratio %.2f exceeds the 0.75 sharing gate\n",
                  pss_ratio);
      return 1;
    }
  }
  return 0;
}
