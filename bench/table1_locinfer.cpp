// Table 1: improving the location-community inference of Da Silva Jr. et
// al. by filtering out communities our method classifies as action.
// Paper: precision rises from 68.2% to 94.8%; traffic-engineering false
// positives drop from 206 to 12 while geolocation true positives are
// nearly untouched (476 -> 472).  Shapes to match: TE row collapses, geo
// row (and other info rows) barely change, precision jumps.
#include "bench/common.hpp"
#include "locinfer/locinfer.hpp"

using namespace bgpintent;

int main() {
  const auto cfg = bench::default_scenario_config();
  bench::print_banner("table1 — location inference before/after action filter",
                      cfg);
  const auto scenario = routing::Scenario::build(cfg);
  const auto entries = scenario.entries();

  core::Pipeline pipeline;
  pipeline.set_org_map(&scenario.topology().orgs);
  const auto intent = pipeline.run(entries);

  const auto inferences = locinfer::infer_locations(entries);
  std::size_t inferred_location = 0;
  for (const auto& inference : inferences)
    if (inference.inferred_location) ++inferred_location;
  std::printf("location baseline: %zu communities considered, %zu inferred "
              "as location\n\n",
              inferences.size(), inferred_location);

  const auto table1 = locinfer::table1_comparison(
      inferences, scenario.ground_truth(), intent.inference);

  util::TextTable table({"class", "type", "before", "after"});
  for (const auto& row : table1.rows) {
    const bool is_action =
        row.klass == locinfer::Table1Class::kTrafficEngineering;
    table.add_row({is_action ? "Action" : "Info",
                   std::string(locinfer::to_string(row.klass)),
                   std::to_string(row.before), std::to_string(row.after)});
  }
  table.add_row({"", "Total", std::to_string(table1.total_before),
                 std::to_string(table1.total_after)});
  std::printf("%s\n", table.render().c_str());
  std::printf("precision before (paper: 68.2%%): %s\n",
              util::percent(table1.precision_before).c_str());
  std::printf("precision after  (paper: 94.8%%): %s\n",
              util::percent(table1.precision_after).c_str());
  return 0;
}
