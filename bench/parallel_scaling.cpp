// Parallel pipeline scaling: end-to-end wall clock of Pipeline::run_mrt
// (chunked MRT decode -> sharded observation index -> per-alpha
// classification) at 1/2/4/8 worker threads over a large synthetic
// workload, plus the tuple-ingest stage alone — the stage that dominates
// on the paper's billions-of-records inputs.
//
// Besides speedup, this bench *verifies* the determinism contract: every
// thread count must produce an observation index and inference that are
// identical to the threads=1 reference, and the process exits non-zero if
// any differ.
#include <chrono>
#include <functional>
#include <sstream>

#include "bench/common.hpp"
#include "mrt/mrt_file.hpp"
#include "util/thread_pool.hpp"

using namespace bgpintent;

namespace {

double best_of(int repeats, const std::function<void()>& body) {
  double best_ms = 0.0;
  for (int repeat = 0; repeat < repeats; ++repeat) {
    const auto start = std::chrono::steady_clock::now();
    body();
    const auto stop = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(stop - start).count();
    if (repeat == 0 || ms < best_ms) best_ms = ms;
  }
  return best_ms;
}

bool identical(const core::PipelineResult& result,
               const core::PipelineResult& reference) {
  return result.observations.all() == reference.observations.all() &&
         result.observations.unique_path_count() ==
             reference.observations.unique_path_count() &&
         result.inference.clusters == reference.inference.clusters &&
         result.inference.labels == reference.inference.labels;
}

}  // namespace

int main() {
  auto cfg = bench::default_scenario_config();
  cfg.topology.stub_count = 900;
  cfg.vantage_point_count = 200;
  if (const char* scale = bench::apply_bench_scale(cfg))
    std::printf("scale preset: %s (BGPINTENT_BENCH_SCALE)\n", scale);
  bench::print_banner("parallel_scaling — pipeline speedup vs threads", cfg);

  const auto scenario = routing::Scenario::build(cfg);
  const auto entries = scenario.entries();
  std::ostringstream mrt_bytes;
  mrt::MrtWriter writer(mrt_bytes);
  writer.write_rib_snapshot(entries, 0x7f000001, 1684886400);
  const std::string bytes = mrt_bytes.str();

  // Ingest workload: the tuple stream repeated 3x, mimicking the heavy
  // duplication of a week of RIB snapshots + updates (the method counts
  // unique paths, so repetition changes work, not results).
  const auto base_tuples = bgp::tuples_from_entries(entries);
  std::vector<bgp::PathCommunityTuple> tuples;
  tuples.reserve(base_tuples.size() * 3);
  for (int copy = 0; copy < 3; ++copy)
    tuples.insert(tuples.end(), base_tuples.begin(), base_tuples.end());

  std::printf("workload: %zu RIB entries, %zu MRT bytes, %zu tuples\n\n",
              entries.size(), bytes.size(), tuples.size());

  struct Row {
    unsigned threads;
    double end_to_end_ms;
    double ingest_ms;
    bool identical;
  };
  std::vector<Row> rows;
  core::PipelineResult reference;

  for (const unsigned threads : {1u, 2u, 4u, 8u}) {
    core::PipelineConfig pipeline_cfg;
    pipeline_cfg.threads = threads;
    core::Pipeline pipeline(pipeline_cfg);
    pipeline.set_org_map(&scenario.topology().orgs);

    core::PipelineResult result;
    const double end_to_end_ms = best_of(3, [&]() {
      std::istringstream in(bytes);
      result = pipeline.run_mrt(in);
    });
    const double ingest_ms =
        best_of(3, [&]() { (void)pipeline.run(tuples); });

    if (threads == 1) reference = std::move(result);
    const bool same = threads == 1 || identical(result, reference);
    rows.push_back(Row{threads, end_to_end_ms, ingest_ms, same});
  }

  util::TextTable table({"threads", "end-to-end ms", "speedup", "ingest ms",
                         "ingest speedup", "identical"});
  bool all_identical = true;
  for (const Row& row : rows) {
    table.add_row({std::to_string(row.threads),
                   util::fixed(row.end_to_end_ms, 1),
                   util::fixed(rows[0].end_to_end_ms / row.end_to_end_ms, 2),
                   util::fixed(row.ingest_ms, 1),
                   util::fixed(rows[0].ingest_ms / row.ingest_ms, 2),
                   row.identical ? "yes" : "NO"});
    all_identical = all_identical && row.identical;
  }
  std::printf("%s\n", table.render().c_str());
  // Machine-readable mirror of the table (one JSON object per line) so CI
  // and the perf trajectory can scrape it — docs/PERFORMANCE.md.
  for (const Row& row : rows) {
    std::printf(
        "{\"bench\": \"parallel_scaling\", \"metric\": \"end_to_end_ms\", "
        "\"threads\": %u, \"value\": %.3f}\n",
        row.threads, row.end_to_end_ms);
    std::printf(
        "{\"bench\": \"parallel_scaling\", \"metric\": \"ingest_ms\", "
        "\"threads\": %u, \"value\": %.3f}\n",
        row.threads, row.ingest_ms);
  }
  std::printf("hardware concurrency: %u\n",
              util::ThreadPool::resolve(0));
  if (!all_identical) {
    std::printf("FAIL: output differs across thread counts\n");
    return 1;
  }
  std::printf("output bit-identical across all thread counts\n");
  return 0;
}
