// Re-runs the scale-sensitive pieces of the evaluation on the large
// topology presets (EXPERIMENTS.md "re-run at paper scale"): the Fig. 6
// on:off threshold sweep and the pooled-vs-mean cluster-feature ablation.
//
// Motivation: every experiment bench runs the ~700-AS default world, where
// per-community on-path counts are capped by the vantage-point count and
// the optimal ratio threshold sits left of the paper's 160:1.  The scale
// presets (topo::ScalePreset, docs/SIMULATION.md §2) remove that cap —
// this binary measures whether the caveat survives when the world grows
// toward the paper's shape.
//
// Runs the small and medium rungs by default (the medium rung relaxes
// ~13K announcements over an 11K-AS world — minutes, not seconds).  Set
// BGPINTENT_PAPER_SCALE=small|medium|large|internet to run one rung.
#include <cstdlib>
#include <cstring>

#include "bench/common.hpp"
#include "core/evaluation.hpp"
#include "topo/generator.hpp"

using namespace bgpintent;

namespace {

routing::ScenarioConfig config_for(topo::ScalePreset preset,
                                   std::uint32_t vantage_points) {
  routing::ScenarioConfig cfg;
  cfg.topology = topo::preset_config(preset);
  cfg.topology.seed = 20230501;
  cfg.policy.seed = 20230502;
  cfg.workload_seed = 20230503;
  cfg.vantage_point_count = vantage_points;
  return cfg;
}

void run_rung(topo::ScalePreset preset, std::uint32_t vantage_points) {
  const auto cfg = config_for(preset, vantage_points);
  std::printf("==== preset %s ====\n", topo::preset_name(preset));
  bench::print_banner("paper_scale_eval — threshold sweep + cluster feature",
                      cfg);
  const auto scenario = routing::Scenario::build(cfg);
  const auto entries = scenario.entries();

  core::Pipeline pipeline;
  pipeline.set_org_map(&scenario.topology().orgs);
  const auto result = pipeline.run(entries);
  const auto eval = result.score(scenario.ground_truth());
  std::printf("BGP data: %zu RIB entries, %zu unique paths, %zu observed "
              "communities\n",
              entries.size(), result.observations.unique_path_count(),
              result.observations.community_count());

  const auto clusters =
      core::baseline_clusters(result.observations, scenario.ground_truth());
  std::size_t mixed = 0;
  for (const auto& cluster : clusters)
    if (cluster.mixed()) ++mixed;
  std::printf("baseline clusters: %zu (%zu mixed)\n\n", clusters.size(),
              mixed);

  const std::vector<double> thresholds{1,   2,   5,   10,  20,  40, 80,
                                       120, 160, 240, 320, 640, 1280};
  const auto pooled = core::sweep_ratio_threshold(
      clusters, thresholds, core::ClusterFeature::kPooledOnOff);
  const auto mean = core::sweep_ratio_threshold(
      clusters, thresholds, core::ClusterFeature::kMeanOnOff);
  util::TextTable sweep({"threshold", "pooled-ratio acc", "mean-ratio acc"});
  std::size_t best_pooled = 0;
  std::size_t best_mean = 0;
  for (std::size_t i = 0; i < thresholds.size(); ++i) {
    sweep.add_row({util::fixed(thresholds[i], 0),
                   util::percent(pooled[i].accuracy),
                   util::percent(mean[i].accuracy)});
    if (pooled[i].accuracy > pooled[best_pooled].accuracy) best_pooled = i;
    if (mean[i].accuracy > mean[best_mean].accuracy) best_mean = i;
  }
  std::printf("threshold sweep over mixed clusters:\n%s",
              sweep.render().c_str());
  std::printf("best pooled: %.1f%% at %.0f:1; best mean: %.1f%% at %.0f:1; "
              "at the paper's 160:1 — pooled %.1f%%, mean %.1f%%\n\n",
              pooled[best_pooled].accuracy * 100.0, thresholds[best_pooled],
              mean[best_mean].accuracy * 100.0, thresholds[best_mean],
              pooled[8].accuracy * 100.0, mean[8].accuracy * 100.0);

  // End-to-end accuracy with each cluster feature (eval_overall ablation,
  // re-run at this scale).
  core::PipelineConfig mean_mode;
  mean_mode.classifier.mean_of_ratios = true;
  core::Pipeline mean_pipeline(mean_mode);
  mean_pipeline.set_org_map(&scenario.topology().orgs);
  const auto mean_result = mean_pipeline.run(entries);
  const auto mean_eval = mean_result.score(scenario.ground_truth());
  util::TextTable features({"pipeline variant", "accuracy", "classified"});
  features.add_row({"pooled ratio (default)", util::percent(eval.accuracy()),
                    std::to_string(result.inference.classified_count())});
  features.add_row({"mean of member ratios", util::percent(mean_eval.accuracy()),
                    std::to_string(mean_result.inference.classified_count())});
  std::printf("cluster-feature ablation at this scale:\n%s\n",
              features.render().c_str());
}

}  // namespace

int main() {
  const char* only = std::getenv("BGPINTENT_PAPER_SCALE");
  if (only != nullptr) {
    for (const auto preset : topo::all_scale_presets()) {
      if (std::strcmp(only, topo::preset_name(preset)) == 0) {
        run_rung(preset, preset >= topo::ScalePreset::kMedium ? 150u : 100u);
        return 0;
      }
    }
    std::fprintf(stderr, "unknown BGPINTENT_PAPER_SCALE preset: %s\n", only);
    return 2;
  }
  run_rung(topo::ScalePreset::kSmall, 100);
  run_rung(topo::ScalePreset::kMedium, 150);
  return 0;
}
