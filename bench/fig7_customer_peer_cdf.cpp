// Figure 7: CDF of customer:peer ratios of baseline clusters — the
// alternative feature the paper evaluates and rejects.  Paper: a best-case
// threshold of 5:1 reaches only ~80% accuracy because ASes tag information
// communities on customer routes too.  Shapes to match: substantial overlap
// between the info and action CDFs; best sweep accuracy clearly below the
// Fig. 6 feature's.
#include "bench/common.hpp"
#include "rel/asrank.hpp"

using namespace bgpintent;

int main() {
  const auto cfg = bench::default_scenario_config();
  bench::print_banner("fig7 — customer:peer ratio CDF of baseline clusters",
                      cfg);
  const auto scenario = routing::Scenario::build(cfg);
  const auto entries = scenario.entries();

  // The paper uses CAIDA's relationship inferences; we infer from the same
  // paths (rel::infer_relationships ~ AS-Rank).
  std::vector<bgp::AsPath> paths;
  paths.reserve(entries.size());
  for (const auto& entry : entries) paths.push_back(entry.route.path);
  const auto relationships = rel::infer_relationships(paths);
  std::printf("inferred relationships: %zu links (%zu p2c / %zu p2p)\n\n",
              relationships.link_count(), relationships.p2c_count(),
              relationships.p2p_count());

  const auto index = core::ObservationIndex::from_entries(
      entries, &scenario.topology().orgs, &relationships);
  const auto clusters =
      core::baseline_clusters(index, scenario.ground_truth());

  std::vector<double> info_ratios;
  std::vector<double> action_ratios;
  for (const auto& cluster : clusters) {
    if (!cluster.mixed()) continue;
    (cluster.truth == dict::Intent::kInformation ? info_ratios : action_ratios)
        .push_back(cluster.mean_customer_peer_ratio);
  }
  bench::print_cdf("CDF of mixed INFO cluster customer:peer ratios",
                   util::EmpiricalCdf(info_ratios));
  bench::print_cdf("CDF of mixed ACTION cluster customer:peer ratios",
                   util::EmpiricalCdf(action_ratios));

  util::TextTable sweep({"threshold", "mixed-cluster accuracy"});
  const std::vector<double> thresholds{0.5, 1, 2, 3, 5, 8, 12, 20, 50, 100};
  double best = 0.0;
  for (const auto& point : core::sweep_ratio_threshold(
           clusters, thresholds, core::ClusterFeature::kCustomerPeer)) {
    best = std::max(best, point.accuracy);
    sweep.add_row({util::fixed(point.threshold, 1),
                   util::percent(point.accuracy)});
  }
  std::printf("threshold sweep (paper: best ~80%% at 5:1):\n%s",
              sweep.render().c_str());
  std::printf("\nbest customer:peer accuracy: %s  (Fig. 6 feature reaches "
              "near-perfect separation on the same clusters)\n",
              util::percent(best).c_str());
  return 0;
}
