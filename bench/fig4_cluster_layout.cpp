// Figure 4: per-AS community layout — dictionary beta values cluster into
// contiguous purpose-blocks, and BGP data contains additional undocumented
// communities.  The paper plots 30 ASes that define both intents; we print
// the same structure: each AS's dictionary-defined blocks (with intent)
// side by side with what was actually observed in BGP data, including the
// "unknown" (undocumented) values.
#include <algorithm>

#include "bench/common.hpp"
#include "util/strings.hpp"

using namespace bgpintent;

namespace {

std::string render_blocks(const std::vector<core::Cluster>& clusters,
                          const dict::AsDictionary* dictionary) {
  std::string out;
  for (const auto& cluster : clusters) {
    if (!out.empty()) out += "  ";
    char intent_mark = '?';
    if (dictionary != nullptr) {
      const auto intent =
          dictionary->intent(bgp::Community(cluster.alpha, cluster.lo()));
      if (intent == dict::Intent::kAction) intent_mark = 'A';
      if (intent == dict::Intent::kInformation) intent_mark = 'I';
    }
    if (cluster.lo() == cluster.hi())
      out += util::format("%u(%c)", cluster.lo(), intent_mark);
    else
      out += util::format("%u-%u(%c,%zu)", cluster.lo(), cluster.hi(),
                          intent_mark, cluster.size());
  }
  return out;
}

}  // namespace

int main() {
  const auto cfg = bench::default_scenario_config();
  bench::print_banner("fig4 — dictionary vs BGP-observed community clusters",
                      cfg);
  const auto scenario = routing::Scenario::build(cfg);
  const auto index = core::ObservationIndex::from_entries(
      scenario.entries(), &scenario.topology().orgs);

  // Pick ASes that (like the paper's 30) define both intents and were
  // observed in BGP data.
  std::vector<std::uint16_t> chosen;
  for (const auto& [alpha, dictionary] : scenario.ground_truth().all()) {
    bool has_info = false;
    bool has_action = false;
    for (const auto& entry : dictionary.entries()) {
      (entry.intent() == dict::Intent::kInformation ? has_info : has_action) =
          true;
    }
    if (has_info && has_action && !index.observed_betas(alpha).empty())
      chosen.push_back(alpha);
    if (chosen.size() >= 12) break;
  }

  std::printf("ASes with both information and action communities: showing "
              "%zu (paper plots 30)\n\n", chosen.size());
  for (const std::uint16_t alpha : chosen) {
    const auto* dictionary = scenario.ground_truth().find(alpha);
    const auto observed = index.observed_betas(alpha);
    // (a) dictionary values observed in BGP, clustered for display.
    std::vector<std::uint16_t> documented;
    std::vector<std::uint16_t> unknown;
    for (const std::uint16_t beta : observed) {
      if (dictionary->lookup(bgp::Community(alpha, beta)) != nullptr)
        documented.push_back(beta);
      else
        unknown.push_back(beta);
    }
    std::printf("AS%u\n", alpha);
    std::printf("  dict-observed : %s\n",
                render_blocks(core::gap_cluster(alpha, documented, 140),
                              dictionary)
                    .c_str());
    if (!unknown.empty())
      std::printf("  undocumented  : %s\n",
                  render_blocks(core::gap_cluster(alpha, unknown, 140), nullptr)
                      .c_str());
  }
  std::printf("\nblocks rendered as lo-hi(intent,count); A=action, "
              "I=information, ?=undocumented\n");
  return 0;
}
