// §6 headline numbers: communities observed / classified / excluded, the
// information-action split, and accuracy against the ground-truth
// dictionary.  Paper (May 2023): 88,982 regular communities observed,
// 78,480 classified (54,104 information + 24,376 action), 96.5% accuracy
// over 6,259 dictionary-covered communities.  Shapes to match: most
// observed communities classified, information majority, accuracy >> 90%.
// Also prints the design-choice ablations called out in DESIGN.md §5.
#include "bench/common.hpp"

using namespace bgpintent;

int main() {
  const auto cfg = bench::default_scenario_config();
  bench::print_banner("eval_overall — §6 headline numbers", cfg);
  const auto scenario = routing::Scenario::build(cfg);
  const auto entries = scenario.entries();

  core::Pipeline pipeline;
  pipeline.set_org_map(&scenario.topology().orgs);
  const auto result = pipeline.run(entries);
  const auto eval = result.score(scenario.ground_truth());
  const auto& inference = result.inference;

  const auto dict_counts = scenario.ground_truth().count_entries_by_intent();
  std::printf("ground truth: %zu ASes, %zu info + %zu action patterns\n",
              scenario.ground_truth().as_count(), dict_counts.information,
              dict_counts.action);
  std::printf("BGP data: %zu RIB entries, %zu unique paths\n\n", entries.size(),
              result.observations.unique_path_count());

  util::TextTable table({"metric", "value"});
  table.add_row({"observed communities",
                 std::to_string(result.observations.community_count())});
  table.add_row({"classified", std::to_string(inference.classified_count())});
  table.add_row({"  information", std::to_string(inference.information_count)});
  table.add_row({"  action", std::to_string(inference.action_count)});
  table.add_row({"excluded (private alpha)",
                 std::to_string(inference.excluded_private)});
  table.add_row({"excluded (never on-path, IXP)",
                 std::to_string(inference.excluded_never_on_path)});
  table.add_row({"clusters", std::to_string(inference.clusters.size())});
  table.add_row({"dictionary-covered observed",
                 std::to_string(eval.labeled_observed)});
  table.add_row({"accuracy (paper: 96.5%)", util::percent(eval.accuracy())});
  table.add_row({"coverage of labeled", util::percent(eval.coverage())});
  table.add_row({"info misclassified as action",
                 std::to_string(eval.info_as_action)});
  table.add_row({"action misclassified as info",
                 std::to_string(eval.action_as_info)});
  std::printf("%s\n", table.render().c_str());

  // Ablations (DESIGN.md §5).
  util::TextTable ablations({"variant", "accuracy", "classified"});
  {
    core::PipelineConfig no_sibling;
    no_sibling.observation.sibling_aware = false;
    core::Pipeline p(no_sibling);
    p.set_org_map(&scenario.topology().orgs);
    const auto r = p.run(entries);
    const auto e = r.score(scenario.ground_truth());
    ablations.add_row({"no sibling matching", util::percent(e.accuracy()),
                       std::to_string(r.inference.classified_count())});
  }
  {
    core::PipelineConfig mean_mode;
    mean_mode.classifier.mean_of_ratios = true;
    core::Pipeline p(mean_mode);
    p.set_org_map(&scenario.topology().orgs);
    const auto r = p.run(entries);
    const auto e = r.score(scenario.ground_truth());
    ablations.add_row({"mean-of-ratios cluster feature",
                       util::percent(e.accuracy()),
                       std::to_string(r.inference.classified_count())});
  }
  ablations.add_row({"default (sibling + pooled ratio)",
                     util::percent(eval.accuracy()),
                     std::to_string(inference.classified_count())});
  std::printf("ablations:\n%s", ablations.render().c_str());
  return 0;
}
