#include "util/strings.hpp"

#include <cctype>
#include <charconv>
#include <cstdarg>
#include <cstdio>

namespace bgpintent::util {

namespace {
bool is_space(char c) noexcept {
  return std::isspace(static_cast<unsigned char>(c)) != 0;
}
}  // namespace

std::string_view trim(std::string_view text) noexcept {
  while (!text.empty() && is_space(text.front())) text.remove_prefix(1);
  while (!text.empty() && is_space(text.back())) text.remove_suffix(1);
  return text;
}

std::vector<std::string_view> split(std::string_view text, char delim) {
  std::vector<std::string_view> fields;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == delim) {
      fields.push_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return fields;
}

std::vector<std::string_view> split_whitespace(std::string_view text) {
  std::vector<std::string_view> fields;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && is_space(text[i])) ++i;
    std::size_t start = i;
    while (i < text.size() && !is_space(text[i])) ++i;
    if (i > start) fields.push_back(text.substr(start, i - start));
  }
  return fields;
}

std::optional<std::uint64_t> parse_u64(std::string_view text) noexcept {
  if (text.empty()) return std::nullopt;
  std::uint64_t value = 0;
  const char* first = text.data();
  const char* last = first + text.size();
  auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc{} || ptr != last) return std::nullopt;
  return value;
}

std::optional<std::uint32_t> parse_u32(std::string_view text) noexcept {
  auto wide = parse_u64(text);
  if (!wide || *wide > 0xffffffffULL) return std::nullopt;
  return static_cast<std::uint32_t>(*wide);
}

std::optional<double> parse_double(std::string_view text) noexcept {
  if (text.empty()) return std::nullopt;
  double value = 0.0;
  const char* first = text.data();
  const char* last = first + text.size();
  auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc{} || ptr != last) return std::nullopt;
  return value;
}

bool starts_with(std::string_view text, std::string_view prefix) noexcept {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

std::string format(const char* fmt, ...) {
  char buf[4096];
  std::va_list args;
  va_start(args, fmt);
  const int written = std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);
  if (written < 0) return {};
  return std::string(buf, std::min(static_cast<std::size_t>(written),
                                   sizeof buf - 1));
}

}  // namespace bgpintent::util
