#include "util/rng.hpp"

#include <bit>
#include <cmath>

namespace bgpintent::util {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) noexcept {
  // splitmix64 expansion guarantees a non-zero state even for seed 0.
  for (auto& word : s_) word = splitmix64(seed);
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = std::rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = std::rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::uniform(std::uint64_t lo, std::uint64_t hi) noexcept {
  const std::uint64_t span = hi - lo;
  if (span == max()) return (*this)();
  // Debiased modulo (Lemire-style rejection on the low bits).
  const std::uint64_t bound = span + 1;
  const std::uint64_t limit = max() - max() % bound;
  std::uint64_t raw;
  do {
    raw = (*this)();
  } while (raw >= limit);
  return lo + raw % bound;
}

double Rng::uniform01() noexcept {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

std::size_t Rng::index(std::size_t n) noexcept {
  return static_cast<std::size_t>(uniform(0, static_cast<std::uint64_t>(n) - 1));
}

std::size_t Rng::zipf(std::size_t n, double s) noexcept {
  if (n <= 1) return 0;
  // Inverse-CDF on the harmonic weights; n is small in our workloads so a
  // linear scan is simpler and cache-friendly.
  double total = 0.0;
  for (std::size_t r = 0; r < n; ++r)
    total += std::pow(static_cast<double>(r + 1), -s);
  double target = uniform01() * total;
  for (std::size_t r = 0; r < n; ++r) {
    target -= std::pow(static_cast<double>(r + 1), -s);
    if (target <= 0.0) return r;
  }
  return n - 1;
}

std::uint32_t Rng::geometric(double p, std::uint32_t cap) noexcept {
  if (p >= 1.0 || cap <= 1) return 1;
  if (p <= 0.0) return cap;
  std::uint32_t trials = 1;
  while (trials < cap && !chance(p)) ++trials;
  return trials;
}

std::vector<std::size_t> Rng::sample_indices(std::size_t n, std::size_t k) {
  std::vector<std::size_t> all(n);
  for (std::size_t i = 0; i < n; ++i) all[i] = i;
  if (k > n) k = n;
  // Partial Fisher-Yates: the first k slots become the sample.
  for (std::size_t i = 0; i < k; ++i) {
    std::size_t j = i + index(n - i);
    std::swap(all[i], all[j]);
  }
  all.resize(k);
  return all;
}

Rng Rng::fork() noexcept { return Rng((*this)()); }

}  // namespace bgpintent::util
