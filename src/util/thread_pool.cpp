#include "util/thread_pool.hpp"

#include <algorithm>

namespace bgpintent::util {

unsigned ThreadPool::resolve(unsigned requested) noexcept {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

ThreadPool::ThreadPool(unsigned threads) {
  const unsigned count = resolve(threads);
  queues_.reserve(count);
  for (unsigned i = 0; i < count; ++i)
    queues_.push_back(std::make_unique<Queue>());
  workers_.reserve(count);
  for (unsigned i = 0; i < count; ++i)
    workers_.emplace_back([this, i]() { worker_loop(i); });
}

ThreadPool::~ThreadPool() {
  {
    // Lock so no worker can check the predicate between our store and
    // notify, sleep afterwards, and miss the shutdown forever.
    std::lock_guard<std::mutex> lock(sleep_mutex_);
    stop_.store(true, std::memory_order_release);
  }
  wake_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::enqueue(std::function<void()> task) {
  const std::size_t target =
      next_queue_.fetch_add(1, std::memory_order_relaxed) % queues_.size();
  {
    std::lock_guard<std::mutex> lock(queues_[target]->mutex);
    queues_[target]->tasks.push_back(std::move(task));
  }
  {
    // Incrementing under sleep_mutex_ serializes with the workers'
    // predicate check — otherwise a notify could fire between a worker
    // seeing pending_ == 0 and blocking, and be lost.
    std::lock_guard<std::mutex> lock(sleep_mutex_);
    pending_.fetch_add(1, std::memory_order_release);
  }
  wake_.notify_one();
}

bool ThreadPool::try_pop(std::size_t self, std::function<void()>& out) {
  // Own queue first, newest task (LIFO: it is the cache-warmest) …
  {
    Queue& own = *queues_[self];
    std::lock_guard<std::mutex> lock(own.mutex);
    if (!own.tasks.empty()) {
      out = std::move(own.tasks.back());
      own.tasks.pop_back();
      pending_.fetch_sub(1, std::memory_order_acquire);
      return true;
    }
  }
  // … then steal the oldest task from any other queue (FIFO keeps the
  // victim's locality intact and drains the longest-waiting work first).
  for (std::size_t offset = 1; offset < queues_.size(); ++offset) {
    Queue& victim = *queues_[(self + offset) % queues_.size()];
    std::lock_guard<std::mutex> lock(victim.mutex);
    if (!victim.tasks.empty()) {
      out = std::move(victim.tasks.front());
      victim.tasks.pop_front();
      pending_.fetch_sub(1, std::memory_order_acquire);
      return true;
    }
  }
  return false;
}

void ThreadPool::worker_loop(std::size_t self) {
  std::function<void()> task;
  for (;;) {
    if (try_pop(self, task)) {
      task();           // exceptions are captured by the packaged_task
      task = nullptr;   // release captures before sleeping
      continue;
    }
    std::unique_lock<std::mutex> lock(sleep_mutex_);
    wake_.wait(lock, [this]() {
      return stop_.load(std::memory_order_acquire) ||
             pending_.load(std::memory_order_acquire) > 0;
    });
    if (stop_.load(std::memory_order_acquire) &&
        pending_.load(std::memory_order_acquire) == 0)
      return;  // drained: every queued task has been popped
  }
}

void ThreadPool::parallel_for(
    std::size_t count,
    const std::function<void(std::size_t, std::size_t)>& body) {
  if (count == 0) return;
  const std::size_t chunks =
      std::min(count, static_cast<std::size_t>(size()) * 4);
  const std::size_t base = count / chunks;
  const std::size_t extra = count % chunks;
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  std::size_t begin = 0;
  for (std::size_t chunk = 0; chunk < chunks; ++chunk) {
    const std::size_t end = begin + base + (chunk < extra ? 1 : 0);
    // `body` by reference is safe: we block on every future below.
    futures.push_back(submit([&body, begin, end]() { body(begin, end); }));
    begin = end;
  }
  std::exception_ptr first_error;
  for (std::future<void>& future : futures) {
    try {
      future.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace bgpintent::util
