#include "util/log.hpp"

#include <atomic>
#include <cstdio>

namespace bgpintent::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level); }
LogLevel log_level() noexcept { return g_level.load(); }

void log(LogLevel level, std::string_view message) {
  if (level < g_level.load() || level == LogLevel::kOff) return;
  std::fprintf(stderr, "[%s] %.*s\n", level_name(level),
               static_cast<int>(message.size()), message.data());
}

void log_debug(std::string_view message) { log(LogLevel::kDebug, message); }
void log_info(std::string_view message) { log(LogLevel::kInfo, message); }
void log_warn(std::string_view message) { log(LogLevel::kWarn, message); }
void log_error(std::string_view message) { log(LogLevel::kError, message); }

}  // namespace bgpintent::util
