#include "util/table.hpp"

#include <algorithm>
#include <cctype>

#include "util/strings.hpp"

namespace bgpintent::util {

namespace {
bool looks_numeric(std::string_view cell) noexcept {
  if (cell.empty()) return false;
  std::size_t digits = 0;
  for (char c : cell) {
    if (std::isdigit(static_cast<unsigned char>(c)) != 0)
      ++digits;
    else if (c != '.' && c != '-' && c != '+' && c != '%' && c != ',' &&
             c != ':' && c != 'e' && c != 'x' && c != 'K' && c != 'M')
      return false;
  }
  return digits > 0;
}
}  // namespace

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(headers_.size(), 0);
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto emit_cell = [&](std::string& out, std::string_view cell, std::size_t c,
                       bool right) {
    const std::size_t pad = widths[c] - std::min(widths[c], cell.size());
    if (right) out.append(pad, ' ');
    out.append(cell);
    if (!right && c + 1 < widths.size()) out.append(pad, ' ');
  };

  std::string out;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c > 0) out += "  ";
    emit_cell(out, headers_[c], c, false);
  }
  out += '\n';
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c > 0) out += "  ";
    out.append(widths[c], '-');
  }
  out += '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      if (c > 0) out += "  ";
      emit_cell(out, row[c], c, looks_numeric(row[c]));
    }
    out += '\n';
  }
  return out;
}

std::string fixed(double value, int digits) {
  return format("%.*f", digits, value);
}

std::string percent(double fraction, int digits) {
  return format("%.*f%%", digits, fraction * 100.0);
}

}  // namespace bgpintent::util
