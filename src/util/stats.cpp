#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace bgpintent::util {

double mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double median(std::vector<double> values) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const std::size_t n = values.size();
  if (n % 2 == 1) return values[n / 2];
  return (values[n / 2 - 1] + values[n / 2]) / 2.0;
}

double percentile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  q = std::clamp(q, 0.0, 100.0);
  const auto n = static_cast<double>(values.size());
  // Nearest-rank: smallest index i with (i+1)/n >= q/100.
  auto rank = static_cast<std::size_t>(std::ceil(q / 100.0 * n));
  if (rank > 0) --rank;
  return values[std::min(rank, values.size() - 1)];
}

EmpiricalCdf::EmpiricalCdf(std::vector<double> sample)
    : sorted_(std::move(sample)) {
  std::sort(sorted_.begin(), sorted_.end());
}

double EmpiricalCdf::fraction_at_most(double x) const {
  if (sorted_.empty()) return 0.0;
  auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double EmpiricalCdf::quantile(double f) const {
  if (sorted_.empty()) return 0.0;
  f = std::clamp(f, 0.0, 1.0);
  auto rank =
      static_cast<std::size_t>(std::ceil(f * static_cast<double>(sorted_.size())));
  if (rank > 0) --rank;
  return sorted_[std::min(rank, sorted_.size() - 1)];
}

std::vector<EmpiricalCdf::Point> EmpiricalCdf::points() const {
  std::vector<Point> out;
  const auto n = static_cast<double>(sorted_.size());
  for (std::size_t i = 0; i < sorted_.size(); ++i) {
    // Emit only the last occurrence of each distinct value so the staircase
    // has one point per value with its final cumulative fraction.
    if (i + 1 < sorted_.size() && sorted_[i + 1] == sorted_[i]) continue;
    out.push_back(Point{sorted_[i], static_cast<double>(i + 1) / n});
  }
  return out;
}

void BinaryTally::add(bool predicted_positive, bool actually_positive) noexcept {
  if (predicted_positive && actually_positive)
    ++true_positive;
  else if (predicted_positive && !actually_positive)
    ++false_positive;
  else if (!predicted_positive && actually_positive)
    ++false_negative;
  else
    ++true_negative;
}

std::size_t BinaryTally::total() const noexcept {
  return true_positive + false_positive + true_negative + false_negative;
}

double BinaryTally::accuracy() const noexcept {
  const std::size_t n = total();
  if (n == 0) return 0.0;
  return static_cast<double>(true_positive + true_negative) /
         static_cast<double>(n);
}

double BinaryTally::precision() const noexcept {
  const std::size_t denom = true_positive + false_positive;
  if (denom == 0) return 0.0;
  return static_cast<double>(true_positive) / static_cast<double>(denom);
}

double BinaryTally::recall() const noexcept {
  const std::size_t denom = true_positive + false_negative;
  if (denom == 0) return 0.0;
  return static_cast<double>(true_positive) / static_cast<double>(denom);
}

double BinaryTally::f1() const noexcept {
  const double p = precision();
  const double r = recall();
  if (p + r == 0.0) return 0.0;
  return 2.0 * p * r / (p + r);
}

std::string BinaryTally::summary() const {
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "acc=%.3f prec=%.3f rec=%.3f f1=%.3f (tp=%zu fp=%zu tn=%zu fn=%zu)",
                accuracy(), precision(), recall(), f1(), true_positive,
                false_positive, true_negative, false_negative);
  return buf;
}

}  // namespace bgpintent::util
