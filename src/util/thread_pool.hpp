// Work-stealing thread pool — the execution substrate of the parallel
// inference pipeline (docs/THREADING.md).
//
// Design and invariants:
//
//   * One task deque per worker.  submit() distributes round-robin; a
//     worker pops its own deque from the back (LIFO, cache-warm) and, when
//     empty, steals from other workers' fronts (FIFO, oldest first).  This
//     keeps coarse shard tasks balanced even when their costs are skewed,
//     without a single contended queue.
//   * Exceptions thrown inside a task are captured in the task's future
//     (submit) or rethrown to the caller (parallel_for) — they never
//     terminate a worker thread or leave the pool in a broken state.
//   * The destructor drains every queued task, then joins.  A future
//     obtained from submit() therefore always becomes ready; abandoning a
//     future (e.g. when an earlier task already failed) is safe and leaks
//     nothing.
//   * The pool itself is thread-safe: any thread, including a worker, may
//     submit().  parallel_for must be called from OUTSIDE the pool (a
//     worker calling it could deadlock waiting on its own queue).
//
// threads == 1 is a legal pool but callers on the hot path should prefer
// their sequential reference implementation instead (see PipelineConfig::
// threads); the pool is for threads >= 2.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace bgpintent::util {

class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(unsigned threads = 0);

  /// Drains all queued tasks, then joins every worker.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] unsigned size() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }

  /// Maps the PipelineConfig convention to a worker count: 0 resolves to
  /// hardware concurrency (at least 1), anything else is taken literally.
  [[nodiscard]] static unsigned resolve(unsigned requested) noexcept;

  /// Schedules `fn` and returns a future for its result.  An exception
  /// escaping `fn` is delivered through the future.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using Result = std::invoke_result_t<std::decay_t<F>>;
    auto task =
        std::make_shared<std::packaged_task<Result()>>(std::forward<F>(fn));
    std::future<Result> future = task->get_future();
    enqueue([task]() { (*task)(); });
    return future;
  }

  /// Splits [0, count) into roughly 4x-oversubscribed contiguous ranges,
  /// runs `body(begin, end)` on the pool, and blocks until every range is
  /// done.  The chunking depends only on `count` and the pool size, so
  /// callers can rely on it for deterministic work assignment.  Rethrows
  /// the first (submission-order) exception after all ranges finished.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t, std::size_t)>& body);

 private:
  struct Queue {
    std::mutex mutex;
    std::deque<std::function<void()>> tasks;
  };

  void enqueue(std::function<void()> task);
  [[nodiscard]] bool try_pop(std::size_t self, std::function<void()>& out);
  void worker_loop(std::size_t self);

  std::vector<std::unique_ptr<Queue>> queues_;  // one per worker
  std::vector<std::thread> workers_;
  std::mutex sleep_mutex_;
  std::condition_variable wake_;
  std::atomic<std::size_t> next_queue_{0};  // round-robin submit cursor
  std::atomic<std::size_t> pending_{0};     // queued, not yet popped
  std::atomic<bool> stop_{false};
};

}  // namespace bgpintent::util
