// Minimal CSV reader/writer (RFC 4180 quoting subset) used to persist
// inference results and evaluation tables.  Not a general-purpose CSV
// library: no multi-line quoted fields, UTF-8 passes through untouched.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace bgpintent::util {

/// Writes rows to an ostream, quoting fields that contain the delimiter,
/// quotes, or newlines.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out, char delim = ',') noexcept
      : out_(&out), delim_(delim) {}

  void write_row(const std::vector<std::string>& fields);
  void write_row(std::initializer_list<std::string_view> fields);

 private:
  void write_field(std::string_view field, bool first);
  std::ostream* out_;
  char delim_;
};

/// Parses one CSV line into fields, honoring double-quote escaping.
/// Throws ParseError on an unterminated quote.
[[nodiscard]] std::vector<std::string> parse_csv_line(std::string_view line,
                                                      char delim = ',');

/// Reads all rows from a stream; skips blank lines and lines starting
/// with '#'.
[[nodiscard]] std::vector<std::vector<std::string>> read_csv(
    std::istream& in, char delim = ',');

}  // namespace bgpintent::util
