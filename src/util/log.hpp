// Leveled logging to stderr.  Intentionally tiny: no sinks, no formatting
// machinery — library code logs sparingly and benches print their own
// structured output to stdout.
#pragma once

#include <string_view>

namespace bgpintent::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global minimum level (default kWarn so library use is quiet).
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

/// Writes "[level] message\n" to stderr if `level` passes the global filter.
void log(LogLevel level, std::string_view message);

void log_debug(std::string_view message);
void log_info(std::string_view message);
void log_warn(std::string_view message);
void log_error(std::string_view message);

}  // namespace bgpintent::util
