// Deterministic pseudo-random number generation for simulations.
//
// Every stochastic component in this library takes an explicit 64-bit seed
// so that experiments are reproducible bit-for-bit.  We provide
// xoshiro256** (Blackman & Vigna), seeded through splitmix64 as its authors
// recommend, plus the distribution helpers the simulators need.  The
// generator satisfies the C++ UniformRandomBitGenerator requirements, but
// callers should prefer the member helpers over <random> distributions:
// libstdc++ distribution output is not pinned across versions, and our
// helpers are.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

namespace bgpintent::util {

/// splitmix64 step; used for seeding and for hash mixing.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// xoshiro256** 1.0 — fast, high-quality, 256-bit state PRNG.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four state words via splitmix64 of `seed`.
  explicit Rng(std::uint64_t seed = 0) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  /// Next raw 64-bit output.
  result_type operator()() noexcept;

  /// Uniform integer in [lo, hi] (inclusive).  Requires lo <= hi.
  [[nodiscard]] std::uint64_t uniform(std::uint64_t lo, std::uint64_t hi) noexcept;

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform01() noexcept;

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  [[nodiscard]] bool chance(double p) noexcept;

  /// Uniform index in [0, n).  Requires n > 0.
  [[nodiscard]] std::size_t index(std::size_t n) noexcept;

  /// Zipf-like rank selection over [0, n): rank r is chosen with weight
  /// (r+1)^-s.  Used to skew popularity (prefix origination, AS degree).
  [[nodiscard]] std::size_t zipf(std::size_t n, double s) noexcept;

  /// Geometric number of trials until first success (>= 1), capped at `cap`.
  [[nodiscard]] std::uint32_t geometric(double p, std::uint32_t cap) noexcept;

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::span<T> values) noexcept {
    if (values.size() < 2) return;
    for (std::size_t i = values.size() - 1; i > 0; --i) {
      std::size_t j = index(i + 1);
      using std::swap;
      swap(values[i], values[j]);
    }
  }

  /// Sample k distinct indices from [0, n) in selection order.
  [[nodiscard]] std::vector<std::size_t> sample_indices(std::size_t n,
                                                        std::size_t k);

  /// Derive an independent child generator (for parallel sub-experiments).
  [[nodiscard]] Rng fork() noexcept;

 private:
  std::uint64_t s_[4];
};

}  // namespace bgpintent::util
