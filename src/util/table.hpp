// ASCII table rendering for the bench harnesses: every figure/table bench
// prints its rows through this so the output is aligned and diffable.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace bgpintent::util {

/// Column-aligned plain-text table.  Numeric-looking cells are right
/// aligned, text cells left aligned.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  /// Appends a row; it may have fewer cells than there are headers.
  void add_row(std::vector<std::string> cells);

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

  /// Renders with a header underline and two-space column gaps.
  [[nodiscard]] std::string render() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Convenience: format a double with fixed precision.
[[nodiscard]] std::string fixed(double value, int digits);

/// Convenience: "12.3%" style percentage from a fraction in [0,1].
[[nodiscard]] std::string percent(double fraction, int digits = 1);

}  // namespace bgpintent::util
