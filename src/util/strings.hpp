// String parsing helpers shared by the text-format loaders (dictionaries,
// relationship files, CSV).  Parsers that can fail softly return
// std::optional; ParseError is thrown only by loaders whose input is
// supposed to be well-formed.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace bgpintent::util {

/// Thrown by text-format loaders on malformed input.
class ParseError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Strip leading/trailing ASCII whitespace.
[[nodiscard]] std::string_view trim(std::string_view text) noexcept;

/// Split on a single-character delimiter; keeps empty fields.
[[nodiscard]] std::vector<std::string_view> split(std::string_view text,
                                                  char delim);

/// Split on runs of ASCII whitespace; drops empty fields.
[[nodiscard]] std::vector<std::string_view> split_whitespace(
    std::string_view text);

/// Parse an unsigned decimal that must consume the whole field.
[[nodiscard]] std::optional<std::uint64_t> parse_u64(
    std::string_view text) noexcept;

/// parse_u64 restricted to [0, 2^32).
[[nodiscard]] std::optional<std::uint32_t> parse_u32(
    std::string_view text) noexcept;

/// Parse a double that must consume the whole field.
[[nodiscard]] std::optional<double> parse_double(std::string_view text) noexcept;

/// True if `text` starts with `prefix`.
[[nodiscard]] bool starts_with(std::string_view text,
                               std::string_view prefix) noexcept;

/// printf-style formatting into a std::string (bounded to 4 KiB).
[[nodiscard]] std::string format(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace bgpintent::util
