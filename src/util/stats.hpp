// Small statistics helpers used by the evaluation and bench harnesses:
// summary statistics, empirical CDFs, and binary-classification tallies.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace bgpintent::util {

/// Arithmetic mean; 0 for an empty range.
[[nodiscard]] double mean(const std::vector<double>& values);

/// Median (average of middle two for even sizes); 0 for an empty range.
[[nodiscard]] double median(std::vector<double> values);

/// q-th percentile via nearest-rank on a copy, q in [0, 100].
[[nodiscard]] double percentile(std::vector<double> values, double q);

/// Empirical cumulative distribution function over a fixed sample.
///
/// Built once from a sample; `fraction_at_most(x)` answers P[X <= x].
/// `points()` yields the staircase suitable for plotting (one point per
/// distinct value).
class EmpiricalCdf {
 public:
  explicit EmpiricalCdf(std::vector<double> sample);

  [[nodiscard]] std::size_t size() const noexcept { return sorted_.size(); }
  [[nodiscard]] bool empty() const noexcept { return sorted_.empty(); }

  /// P[X <= x] over the sample; 0 for an empty CDF.
  [[nodiscard]] double fraction_at_most(double x) const;

  /// Value at cumulative fraction f in [0,1] (inverse CDF, nearest rank).
  [[nodiscard]] double quantile(double f) const;

  struct Point {
    double value;
    double cumulative_fraction;
  };
  /// Staircase points, one per distinct sample value, ascending.
  [[nodiscard]] std::vector<Point> points() const;

  [[nodiscard]] const std::vector<double>& sorted_sample() const noexcept {
    return sorted_;
  }

 private:
  std::vector<double> sorted_;
};

/// Running tally for a binary classifier evaluated against ground truth.
struct BinaryTally {
  std::size_t true_positive = 0;
  std::size_t false_positive = 0;
  std::size_t true_negative = 0;
  std::size_t false_negative = 0;

  void add(bool predicted_positive, bool actually_positive) noexcept;

  [[nodiscard]] std::size_t total() const noexcept;
  /// (TP+TN)/total; 0 when empty.
  [[nodiscard]] double accuracy() const noexcept;
  /// TP/(TP+FP); 0 when no positive predictions.
  [[nodiscard]] double precision() const noexcept;
  /// TP/(TP+FN); 0 when no actual positives.
  [[nodiscard]] double recall() const noexcept;
  /// Harmonic mean of precision and recall; 0 when either is 0.
  [[nodiscard]] double f1() const noexcept;

  [[nodiscard]] std::string summary() const;
};

}  // namespace bgpintent::util
