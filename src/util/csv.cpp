#include "util/csv.hpp"

#include <istream>
#include <ostream>

#include "util/strings.hpp"

namespace bgpintent::util {

void CsvWriter::write_field(std::string_view field, bool first) {
  if (!first) *out_ << delim_;
  const bool needs_quotes =
      field.find(delim_) != std::string_view::npos ||
      field.find('"') != std::string_view::npos ||
      field.find('\n') != std::string_view::npos ||
      field.find('\r') != std::string_view::npos;
  if (!needs_quotes) {
    *out_ << field;
    return;
  }
  *out_ << '"';
  for (char c : field) {
    if (c == '"') *out_ << '"';
    *out_ << c;
  }
  *out_ << '"';
}

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  bool first = true;
  for (const auto& f : fields) {
    write_field(f, first);
    first = false;
  }
  *out_ << '\n';
}

void CsvWriter::write_row(std::initializer_list<std::string_view> fields) {
  bool first = true;
  for (auto f : fields) {
    write_field(f, first);
    first = false;
  }
  *out_ << '\n';
}

std::vector<std::string> parse_csv_line(std::string_view line, char delim) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  std::size_t i = 0;
  while (i < line.size()) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current.push_back(c);
      }
    } else if (c == '"' && current.empty()) {
      in_quotes = true;
    } else if (c == delim) {
      fields.push_back(std::move(current));
      current.clear();
    } else {
      current.push_back(c);
    }
    ++i;
  }
  if (in_quotes) throw ParseError("unterminated quote in CSV line");
  fields.push_back(std::move(current));
  return fields;
}

std::vector<std::vector<std::string>> read_csv(std::istream& in, char delim) {
  std::vector<std::vector<std::string>> rows;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    std::string_view view = trim(line);
    if (view.empty() || view.front() == '#') continue;
    rows.push_back(parse_csv_line(line, delim));
  }
  return rows;
}

}  // namespace bgpintent::util
