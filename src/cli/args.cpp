#include "cli/args.hpp"

#include <cstdio>

#include "util/strings.hpp"

namespace bgpintent::cli {

std::optional<Args> Args::parse(int argc, char** argv, int start,
                                const std::set<std::string>& value_options,
                                const std::set<std::string>& flag_options) {
  Args args;
  for (int i = start; i < argc; ++i) {
    const std::string_view token = argv[i];
    if (!token.starts_with("--")) {
      args.positional_.emplace_back(token);
      continue;
    }
    const std::string name(token.substr(2));
    if (flag_options.contains(name)) {
      args.flags_.insert(name);
    } else if (value_options.contains(name)) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: --%s requires a value\n", name.c_str());
        return std::nullopt;
      }
      args.values_[name] = argv[++i];
    } else {
      std::fprintf(stderr, "error: unknown option --%s\n", name.c_str());
      return std::nullopt;
    }
  }
  return args;
}

bool Args::flag(std::string_view name) const noexcept {
  return flags_.contains(name);
}

std::optional<std::string> Args::value(std::string_view name) const noexcept {
  const auto it = values_.find(name);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::optional<std::uint64_t> Args::value_u64(
    std::string_view name, std::uint64_t fallback,
    std::uint64_t max) const noexcept {
  const auto raw = value(name);
  if (!raw) return fallback;
  const auto parsed = util::parse_u64(*raw);
  if (!parsed) {
    std::fprintf(stderr, "error: --%.*s expects an unsigned integer\n",
                 static_cast<int>(name.size()), name.data());
    return std::nullopt;
  }
  if (*parsed > max) {
    std::fprintf(stderr,
                 "error: --%.*s expects an unsigned integer <= %llu (got "
                 "%llu)\n",
                 static_cast<int>(name.size()), name.data(),
                 static_cast<unsigned long long>(max),
                 static_cast<unsigned long long>(*parsed));
    return std::nullopt;
  }
  return parsed;
}

std::optional<double> Args::value_double(std::string_view name,
                                         double fallback) const noexcept {
  const auto raw = value(name);
  if (!raw) return fallback;
  const auto parsed = util::parse_double(*raw);
  if (!parsed) {
    std::fprintf(stderr, "error: --%.*s expects a number\n",
                 static_cast<int>(name.size()), name.data());
    return std::nullopt;
  }
  return parsed;
}

}  // namespace bgpintent::cli
