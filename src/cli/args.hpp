// Tiny command-line argument parser for the bgpintent CLI.
//
// Supports "--key value", "--flag", and positional arguments; unknown
// options are an error.  Deliberately minimal — no subcommand registry,
// no abbreviations — so behavior is obvious from the usage text.
#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace bgpintent::cli {

class Args {
 public:
  /// Parses argv[start..argc).  `value_options` lists "--key value"
  /// options, `flag_options` lists boolean "--flag" options.
  /// Returns nullopt (after printing to stderr) on unknown or malformed
  /// options.
  [[nodiscard]] static std::optional<Args> parse(
      int argc, char** argv, int start,
      const std::set<std::string>& value_options,
      const std::set<std::string>& flag_options);

  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }
  [[nodiscard]] bool flag(std::string_view name) const noexcept;
  [[nodiscard]] std::optional<std::string> value(
      std::string_view name) const noexcept;

  /// Typed access with defaults; prints to stderr and returns nullopt on a
  /// malformed number.  `max` is the inclusive upper bound — values above
  /// it are rejected the same way, so a later narrowing cast (to a port, a
  /// thread count, a u32 gap) can never silently wrap.  Negative input is
  /// rejected by the unsigned parse itself.
  [[nodiscard]] std::optional<std::uint64_t> value_u64(
      std::string_view name, std::uint64_t fallback,
      std::uint64_t max =
          std::numeric_limits<std::uint64_t>::max()) const noexcept;
  [[nodiscard]] std::optional<double> value_double(
      std::string_view name, double fallback) const noexcept;

 private:
  std::vector<std::string> positional_;
  std::map<std::string, std::string, std::less<>> values_;
  std::set<std::string, std::less<>> flags_;
};

}  // namespace bgpintent::cli
