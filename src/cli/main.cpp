// bgpintent CLI entry point.
#include <cstdio>
#include <cstring>

#include "cli/commands.hpp"

int main(int argc, char** argv) {
  using namespace bgpintent::cli;
  if (argc < 2) return cmd_help();
  const char* command = argv[1];
  if (std::strcmp(command, "infer") == 0) return cmd_infer(argc, argv);
  if (std::strcmp(command, "simulate") == 0) return cmd_simulate(argc, argv);
  if (std::strcmp(command, "relationships") == 0)
    return cmd_relationships(argc, argv);
  if (std::strcmp(command, "eval") == 0) return cmd_eval(argc, argv);
  if (std::strcmp(command, "annotate") == 0) return cmd_annotate(argc, argv);
  if (std::strcmp(command, "mrt-info") == 0) return cmd_mrt_info(argc, argv);
  if (std::strcmp(command, "mrt-corrupt") == 0)
    return cmd_mrt_corrupt(argc, argv);
  if (std::strcmp(command, "serve") == 0) return cmd_serve(argc, argv);
  if (std::strcmp(command, "query") == 0) return cmd_query(argc, argv);
  if (std::strcmp(command, "stream") == 0) return cmd_stream(argc, argv);
  if (std::strcmp(command, "subscribe") == 0)
    return cmd_subscribe(argc, argv);
  if (std::strcmp(command, "synth-stream") == 0)
    return cmd_synth_stream(argc, argv);
  if (std::strcmp(command, "recover") == 0) return cmd_recover(argc, argv);
  if (std::strcmp(command, "help") == 0 ||
      std::strcmp(command, "--help") == 0 || std::strcmp(command, "-h") == 0)
    return cmd_help();
  std::fprintf(stderr, "error: unknown command '%s' (try: bgpintent help)\n",
               command);
  return 2;
}
