// Subcommands of the bgpintent CLI.  Each takes already-parsed argv and
// returns a process exit code.
#pragma once

namespace bgpintent::cli {

// Process exit codes (docs/ROBUSTNESS.md).  Scripts and CI gate on these:
// a decode failure under --tolerant --max-errors N is distinguishable from
// a typo'd flag without parsing stderr.
inline constexpr int kExitOk = 0;
inline constexpr int kExitRuntime = 1;  ///< everything not covered below
inline constexpr int kExitUsage = 2;    ///< bad flags / missing arguments
inline constexpr int kExitData = 3;     ///< unreadable or malformed input
inline constexpr int kExitBudget = 4;   ///< tolerant decode budget exceeded

/// `bgpintent infer <rib.mrt>...` — classify community intent from MRT
/// input, write per-community CSV and optional dictionary summary.
int cmd_infer(int argc, char** argv);

/// `bgpintent simulate` — generate a synthetic Internet and write its
/// collector RIB as MRT plus the ground-truth dictionary.
int cmd_simulate(int argc, char** argv);

/// `bgpintent relationships <rib.mrt>...` — infer AS relationships from
/// the AS paths in MRT input (CAIDA serial-1 output).
int cmd_relationships(int argc, char** argv);

/// `bgpintent eval <rib.mrt> --dict truth.dict` — score inferences against
/// a ground-truth dictionary.
int cmd_eval(int argc, char** argv);

/// `bgpintent annotate <community>...` — explain community values using a
/// dictionary (built-in by default).
int cmd_annotate(int argc, char** argv);

/// `bgpintent mrt-info <file.mrt>...` — record/statistics summary of MRT
/// files.
int cmd_mrt_info(int argc, char** argv);

/// `bgpintent mrt-corrupt <in.mrt> --out <out.mrt> --kind <kind>` — apply
/// one seeded corruption to a valid MRT file (fault-injection tooling).
int cmd_mrt_corrupt(int argc, char** argv);

/// `bgpintent serve [rib.mrt]...` — run the long-lived TCP query daemon,
/// optionally primed from MRT files and/or a state snapshot.
int cmd_serve(int argc, char** argv);

/// `bgpintent query <COMMAND>...` — send one protocol line to a running
/// daemon and print the response.
int cmd_query(int argc, char** argv);

/// `bgpintent stream [updates.mrt]...` — consume a BGP4MP update stream
/// ('-' reads stdin) into the sliding-window classifier, optionally
/// serving live queries and SUBSCRIBE push (docs/STREAMING.md).
int cmd_stream(int argc, char** argv);

/// `bgpintent subscribe` — attach to a stream-mode daemon and print
/// label-change events as they happen.
int cmd_subscribe(int argc, char** argv);

/// `bgpintent synth-stream` — write a synthetic BGP4MP update stream
/// generated from simulator churn (the firehose fixture for tests, CI,
/// and benches).
int cmd_synth_stream(int argc, char** argv);

/// `bgpintent recover <journal-dir>` — read-only inspection of a stream
/// journal: segments, per-type record counts, checkpoints, torn-tail
/// status (docs/STREAMING.md §6).
int cmd_recover(int argc, char** argv);

/// Prints global usage.
int cmd_help();

}  // namespace bgpintent::cli
