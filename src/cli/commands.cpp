#include "cli/commands.hpp"

#include <csignal>
#include <cstdio>
#include <fstream>
#include <iostream>

#include "cli/args.hpp"
#include "core/incremental.hpp"
#include "core/ingest.hpp"
#include "core/pipeline.hpp"
#include "core/summarize.hpp"
#include "dict/builtin.hpp"
#include "mrt/fault.hpp"
#include "mrt/mrt_file.hpp"
#include "rel/asrank.hpp"
#include "routing/scenario.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "serve/snapshot.hpp"
#include "stream/engine.hpp"
#include "stream/recovery.hpp"
#include "stream/synth.hpp"
#include "util/csv.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace bgpintent::cli {

namespace {

/// Parses the shared decode flags (--tolerant, --max-errors,
/// --max-error-frac); false means a usage error was already printed.
bool parse_decode_options(const Args& args, mrt::DecodeOptions& options) {
  if (args.flag("tolerant")) options.mode = mrt::DecodeMode::kTolerant;
  const auto max_errors = args.value_u64("max-errors", options.max_errors);
  const auto max_frac =
      args.value_double("max-error-frac", options.max_error_frac);
  if (!max_errors || !max_frac) return false;
  if (*max_frac < 0.0 || *max_frac > 1.0) {
    std::fprintf(stderr, "error: --max-error-frac must be in [0, 1]\n");
    return false;
  }
  if ((args.value("max-errors") || args.value("max-error-frac")) &&
      !options.tolerant()) {
    std::fprintf(stderr,
                 "error: --max-errors/--max-error-frac require --tolerant\n");
    return false;
  }
  options.max_errors = *max_errors;
  options.max_error_frac = *max_frac;
  return true;
}

/// How MRT inputs are opened: try mmap then fall back (the default), demand
/// mmap, or always read into memory.  `-` (stdin) is never mappable.
enum class MmapMode { kAuto, kForce, kOff };

/// Parses the shared --mmap/--no-mmap pair; nullopt means a usage error
/// was already printed.
std::optional<MmapMode> parse_mmap_mode(const Args& args) {
  const bool force = args.flag("mmap");
  const bool off = args.flag("no-mmap");
  if (force && off) {
    std::fprintf(stderr,
                 "error: --mmap and --no-mmap are mutually exclusive\n");
    return std::nullopt;
  }
  if (force) return MmapMode::kForce;
  if (off) return MmapMode::kOff;
  return MmapMode::kAuto;
}

/// One opened MRT input: the display name plus the byte source feeding the
/// streaming decode (mmap-backed when eligible).
struct MrtSource {
  std::string name;
  std::unique_ptr<mrt::ByteSource> source;
};

/// Opens every input operand as a ByteSource.  Regular files mmap under
/// kAuto/kForce; `-` reads stdin; anything unmappable falls back to a
/// buffered read with a stderr note (kAuto) or fails (kForce).  On failure
/// prints the error and returns nullopt with `exit_code` set.
std::optional<std::vector<MrtSource>> open_mrt_sources(
    const std::vector<std::string>& paths, MmapMode mode, int& exit_code) {
  if (paths.empty()) {
    std::fprintf(stderr, "error: at least one MRT file required\n");
    exit_code = kExitUsage;
    return std::nullopt;
  }
  std::vector<MrtSource> sources;
  sources.reserve(paths.size());
  for (const std::string& path : paths) {
    if (path == "-") {
      // Buffered stdin is the expected default; only an explicit --mmap
      // warrants telling the user it cannot be honored.
      if (mode == MmapMode::kForce)
        std::fprintf(stderr,
                     "note: <stdin>: mmap unavailable, falling back to "
                     "buffered read\n");
      try {
        sources.push_back({"<stdin>", std::make_unique<mrt::BufferSource>(
                                          mrt::slurp_stream(std::cin))});
      } catch (const mrt::MrtError& error) {
        std::fprintf(stderr, "error: <stdin>: %s\n", error.what());
        exit_code = kExitData;
        return std::nullopt;
      }
      continue;
    }
    if (mode != MmapMode::kOff) {
      try {
        sources.push_back({path, std::make_unique<mrt::MmapSource>(path)});
        continue;
      } catch (const mrt::MrtError& error) {
        if (mode == MmapMode::kForce) {
          std::fprintf(stderr, "error: %s\n", error.what());
          exit_code = kExitData;
          return std::nullopt;
        }
        // kAuto: fall through to the buffered read below, which reports
        // its own failure if the path is flatly unreadable.
      }
    }
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "error: cannot open %s\n", path.c_str());
      exit_code = kExitData;
      return std::nullopt;
    }
    if (mode == MmapMode::kAuto)
      std::fprintf(stderr,
                   "note: %s: mmap unavailable, falling back to buffered "
                   "read\n",
                   path.c_str());
    try {
      sources.push_back({path, std::make_unique<mrt::BufferSource>(
                                   mrt::slurp_stream(in))});
    } catch (const mrt::MrtError& error) {
      std::fprintf(stderr, "error: %s: %s\n", path.c_str(), error.what());
      exit_code = kExitData;
      return std::nullopt;
    }
  }
  return sources;
}

/// Streams every opened source into `ingest` (chunk-parallel when `pool`
/// is non-null; identical output either way), printing the per-file error
/// lines and the end-of-run decode summary exactly as the materializing
/// loader did.  False means the error was printed and `exit_code` set.
bool ingest_sources(const std::vector<MrtSource>& sources,
                    core::MrtIngest& ingest, util::ThreadPool* pool,
                    int& exit_code) {
  for (const MrtSource& src : sources) {
    try {
      if (pool != nullptr)
        ingest.add_parallel(*src.source, *pool);
      else
        ingest.add(*src.source);
    } catch (const mrt::DecodeBudgetError& error) {
      std::fprintf(stderr, "error: %s: %s\n", src.name.c_str(), error.what());
      std::fprintf(stderr, "decode: %s\n",
                   ingest.report().summary().c_str());
      exit_code = kExitBudget;
      return false;
    } catch (const mrt::MrtError& error) {
      std::fprintf(stderr, "error: %s: %s\n", src.name.c_str(), error.what());
      exit_code = kExitData;
      return false;
    }
  }
  std::fprintf(stderr, "decode: %s\n", ingest.report().summary().c_str());
  return true;
}

std::optional<dict::DictionaryStore> load_dictionary(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "error: cannot open dictionary %s\n", path.c_str());
    return std::nullopt;
  }
  dict::DictionaryStore store;
  try {
    store.load(in);
  } catch (const util::ParseError& error) {
    std::fprintf(stderr, "error: %s: %s\n", path.c_str(), error.what());
    return std::nullopt;
  }
  return store;
}

// Inclusive upper bounds for numeric flags that end up in narrower types;
// Args::value_u64 rejects anything above them instead of letting a cast
// wrap (e.g. --threads 4294967297 silently becoming 1 worker).
constexpr std::uint64_t kMaxThreads = 4096;
constexpr std::uint64_t kMaxU32 = 0xffffffffULL;
constexpr std::uint64_t kMaxPort = 65535;

bool write_to(const std::optional<std::string>& path, auto&& writer) {
  if (!path) {
    writer(std::cout);
    return true;
  }
  std::ofstream out(*path);
  if (!out) {
    std::fprintf(stderr, "error: cannot write %s\n", path->c_str());
    return false;
  }
  writer(out);
  return true;
}

}  // namespace

int cmd_infer(int argc, char** argv) {
  const auto args = Args::parse(argc, argv, 2,
                                {"gap", "threshold", "out", "summary",
                                 "threads", "max-errors", "max-error-frac"},
                                {"no-siblings", "mean-ratios", "tolerant",
                                 "mmap", "no-mmap"});
  if (!args) return kExitUsage;
  const auto gap = args->value_u64("gap", 140, kMaxU32);
  const auto threshold = args->value_double("threshold", 160.0);
  const auto threads = args->value_u64("threads", 0, kMaxThreads);
  if (!gap || !threshold || !threads) return kExitUsage;
  mrt::DecodeOptions decode;
  if (!parse_decode_options(*args, decode)) return kExitUsage;
  const auto mmap_mode = parse_mmap_mode(*args);
  if (!mmap_mode) return kExitUsage;

  int exit_code = kExitRuntime;
  const auto sources =
      open_mrt_sources(args->positional(), *mmap_mode, exit_code);
  if (!sources) return exit_code;

  core::PipelineConfig cfg;
  cfg.classifier.min_gap = static_cast<std::uint32_t>(*gap);
  cfg.classifier.ratio_threshold = *threshold;
  cfg.classifier.mean_of_ratios = args->flag("mean-ratios");
  cfg.observation.sibling_aware = !args->flag("no-siblings");
  cfg.threads = static_cast<unsigned>(*threads);
  cfg.decode = decode;

  // Decoded rows stream straight into the interned core; no RibEntry
  // vector is ever materialized (docs/PERFORMANCE.md).
  core::MrtIngest ingest(decode);
  {
    std::optional<util::ThreadPool> pool;
    if (util::ThreadPool::resolve(cfg.threads) > 1) pool.emplace(cfg.threads);
    if (!ingest_sources(*sources, ingest, pool ? &*pool : nullptr, exit_code))
      return exit_code;
  }
  core::Pipeline pipeline(cfg);
  const auto result = pipeline.run(ingest);

  std::fprintf(stderr,
               "%zu entries, %zu unique paths, %zu communities -> "
               "%zu information / %zu action / %zu excluded\n",
               result.entries_ingested,
               result.observations.unique_path_count(),
               result.observations.community_count(),
               result.inference.information_count,
               result.inference.action_count,
               result.inference.excluded_private +
                   result.inference.excluded_never_on_path);

  const bool wrote = write_to(args->value("out"), [&](std::ostream& out) {
    util::CsvWriter csv(out);
    csv.write_row({"community", "intent", "on_path_paths", "off_path_paths"});
    for (const auto& stats : result.observations.all())
      csv.write_row({stats.community.to_string(),
                     std::string(dict::to_string(
                         result.inference.label_of(stats.community))),
                     std::to_string(stats.on_path_paths),
                     std::to_string(stats.off_path_paths)});
  });
  if (!wrote) return 1;

  if (const auto summary_path = args->value("summary")) {
    const auto summary =
        core::summarize(result.observations, result.inference);
    if (!write_to(summary_path, [&](std::ostream& out) {
          core::write_summary(out, summary);
        }))
      return 1;
    std::fprintf(stderr, "summary: %zu inferred dictionary entries -> %s\n",
                 summary.size(), summary_path->c_str());
  }
  return 0;
}

int cmd_simulate(int argc, char** argv) {
  const auto args = Args::parse(
      argc, argv, 2,
      {"seed", "tier1", "tier2", "stubs", "vantage-points", "out", "dict"},
      {});
  if (!args) return 2;
  const auto seed = args->value_u64("seed", 20230501);
  const auto tier1 = args->value_u64("tier1", 10, kMaxU32);
  const auto tier2 = args->value_u64("tier2", 80, kMaxU32);
  const auto stubs = args->value_u64("stubs", 600, kMaxU32);
  const auto vps = args->value_u64("vantage-points", 60, kMaxU32);
  if (!seed || !tier1 || !tier2 || !stubs || !vps) return 2;

  routing::ScenarioConfig cfg;
  cfg.topology.seed = *seed;
  cfg.policy.seed = *seed + 1;
  cfg.workload_seed = *seed + 2;
  cfg.topology.tier1_count = static_cast<std::uint32_t>(*tier1);
  cfg.topology.tier2_count = static_cast<std::uint32_t>(*tier2);
  cfg.topology.stub_count = static_cast<std::uint32_t>(*stubs);
  cfg.vantage_point_count = static_cast<std::uint32_t>(*vps);
  const auto scenario = routing::Scenario::build(cfg);
  const auto entries = scenario.entries();

  const std::string out_path = args->value("out").value_or("rib.mrt");
  {
    std::ofstream out(out_path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
      return 1;
    }
    mrt::MrtWriter writer(out);
    writer.write_rib_snapshot(entries, 0x7f000001, 1682899200);
  }
  std::fprintf(stderr, "wrote %zu RIB entries (%zu ASes, %zu VPs) to %s\n",
               entries.size(), scenario.topology().graph.as_count(),
               scenario.vantage_points().size(), out_path.c_str());

  if (const auto dict_path = args->value("dict")) {
    std::ofstream out(*dict_path);
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n", dict_path->c_str());
      return 1;
    }
    scenario.ground_truth().save(out);
    std::fprintf(stderr, "wrote ground-truth dictionary (%zu entries) to %s\n",
                 scenario.ground_truth().entry_count(), dict_path->c_str());
  }
  return 0;
}

int cmd_relationships(int argc, char** argv) {
  const auto args = Args::parse(argc, argv, 2,
                                {"out", "max-errors", "max-error-frac"},
                                {"tolerant", "mmap", "no-mmap"});
  if (!args) return kExitUsage;
  mrt::DecodeOptions decode;
  if (!parse_decode_options(*args, decode)) return kExitUsage;
  const auto mmap_mode = parse_mmap_mode(*args);
  if (!mmap_mode) return kExitUsage;
  int exit_code = kExitRuntime;
  const auto sources =
      open_mrt_sources(args->positional(), *mmap_mode, exit_code);
  if (!sources) return exit_code;

  // Relationship inference wants one AsPath per decoded row; the sink
  // steals it off the scratch, skipping the rest of the entry.
  class PathSink final : public mrt::EntrySink {
   public:
    explicit PathSink(std::vector<bgp::AsPath>& paths) noexcept
        : paths_(&paths) {}
    void on_entry(bgp::RibEntry& entry) override {
      paths_->push_back(std::move(entry.route.path));
    }

   private:
    std::vector<bgp::AsPath>* paths_;
  };
  std::vector<bgp::AsPath> paths;
  PathSink sink(paths);
  mrt::DecodeReport merged;
  for (const MrtSource& src : *sources) {
    mrt::DecodeReport file_report;
    try {
      mrt::decode_rib_stream(*src.source, sink, decode, &file_report);
      merged.merge(file_report);
    } catch (const mrt::DecodeBudgetError& error) {
      merged.merge(file_report);
      std::fprintf(stderr, "error: %s: %s\n", src.name.c_str(), error.what());
      std::fprintf(stderr, "decode: %s\n", merged.summary().c_str());
      return kExitBudget;
    } catch (const mrt::MrtError& error) {
      merged.merge(file_report);
      std::fprintf(stderr, "error: %s: %s\n", src.name.c_str(), error.what());
      return kExitData;
    }
  }
  std::fprintf(stderr, "decode: %s\n", merged.summary().c_str());
  const auto dataset = rel::infer_relationships(paths);
  std::fprintf(stderr, "inferred %zu links: %zu p2c, %zu p2p\n",
               dataset.link_count(), dataset.p2c_count(), dataset.p2p_count());
  if (!write_to(args->value("out"),
                [&](std::ostream& out) { dataset.save(out); }))
    return 1;
  return 0;
}

int cmd_eval(int argc, char** argv) {
  const auto args = Args::parse(argc, argv, 2,
                                {"dict", "gap", "threshold", "threads",
                                 "max-errors", "max-error-frac"},
                                {"tolerant", "mmap", "no-mmap"});
  if (!args) return kExitUsage;
  const auto dict_path = args->value("dict");
  if (!dict_path) {
    std::fprintf(stderr, "error: --dict <truth.dict> is required\n");
    return kExitUsage;
  }
  const auto truth = load_dictionary(*dict_path);
  if (!truth) return kExitData;
  const auto gap = args->value_u64("gap", 140, kMaxU32);
  const auto threshold = args->value_double("threshold", 160.0);
  const auto threads = args->value_u64("threads", 0, kMaxThreads);
  if (!gap || !threshold || !threads) return kExitUsage;
  mrt::DecodeOptions decode;
  if (!parse_decode_options(*args, decode)) return kExitUsage;
  const auto mmap_mode = parse_mmap_mode(*args);
  if (!mmap_mode) return kExitUsage;
  int exit_code = kExitRuntime;
  const auto sources =
      open_mrt_sources(args->positional(), *mmap_mode, exit_code);
  if (!sources) return exit_code;

  core::PipelineConfig cfg;
  cfg.classifier.min_gap = static_cast<std::uint32_t>(*gap);
  cfg.classifier.ratio_threshold = *threshold;
  cfg.threads = static_cast<unsigned>(*threads);
  cfg.decode = decode;
  core::MrtIngest ingest(decode);
  {
    std::optional<util::ThreadPool> pool;
    if (util::ThreadPool::resolve(cfg.threads) > 1) pool.emplace(cfg.threads);
    if (!ingest_sources(*sources, ingest, pool ? &*pool : nullptr, exit_code))
      return exit_code;
  }
  core::Pipeline pipeline(cfg);
  const auto result = pipeline.run(ingest);
  const auto eval = result.score(*truth);

  util::TextTable table({"metric", "value"});
  table.add_row({"labeled observed", std::to_string(eval.labeled_observed)});
  table.add_row({"classified", std::to_string(eval.classified)});
  table.add_row({"correct", std::to_string(eval.correct)});
  table.add_row({"accuracy", util::percent(eval.accuracy())});
  table.add_row({"coverage", util::percent(eval.coverage())});
  table.add_row({"info as action", std::to_string(eval.info_as_action)});
  table.add_row({"action as info", std::to_string(eval.action_as_info)});
  std::printf("%s", table.render().c_str());
  return 0;
}

int cmd_annotate(int argc, char** argv) {
  const auto args = Args::parse(argc, argv, 2, {"dict"}, {});
  if (!args) return 2;
  dict::DictionaryStore store;
  if (const auto dict_path = args->value("dict")) {
    auto loaded = load_dictionary(*dict_path);
    if (!loaded) return kExitData;
    store = std::move(*loaded);
  } else {
    store = dict::builtin_dictionary();
  }
  if (args->positional().empty()) {
    std::fprintf(stderr, "error: pass community values like 1299:2569\n");
    return 2;
  }
  for (const std::string& raw : args->positional()) {
    const auto community = bgp::Community::parse(raw);
    if (!community) {
      std::fprintf(stderr, "error: '%s' is not alpha:beta\n", raw.c_str());
      return 2;
    }
    const dict::DictEntry* entry = store.lookup(*community);
    if (entry == nullptr)
      std::printf("%-12s  unknown\n", community->to_string().c_str());
    else
      std::printf("%-12s  %-11s  %-20s  %s\n",
                  community->to_string().c_str(),
                  std::string(dict::to_string(entry->intent())).c_str(),
                  std::string(dict::to_string(entry->category)).c_str(),
                  entry->description.c_str());
  }
  return 0;
}

int cmd_mrt_info(int argc, char** argv) {
  const auto args = Args::parse(argc, argv, 2, {}, {});
  if (!args) return 2;
  if (args->positional().empty()) {
    std::fprintf(stderr, "error: at least one MRT file required\n");
    return 2;
  }
  for (const std::string& path : args->positional()) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "error: cannot open %s\n", path.c_str());
      return kExitData;
    }
    std::size_t records = 0;
    std::size_t rib_rows = 0;
    std::size_t updates = 0;
    std::size_t bytes = 0;
    try {
      mrt::MrtReader reader(in);
      mrt::MrtRecord record;
      while (reader.next(record)) {
        ++records;
        bytes += 12 + record.body.size();
        if (record.type == mrt::kTypeTableDumpV2 &&
            record.subtype == mrt::kSubtypeRibIpv4Unicast)
          ++rib_rows;
        else if (record.type == mrt::kTypeBgp4mp)
          ++updates;
      }
    } catch (const mrt::MrtError& error) {
      std::fprintf(stderr, "error: %s: %s\n", path.c_str(), error.what());
      return kExitData;
    }
    std::printf("%s: %zu records (%zu RIB prefixes, %zu BGP4MP), %zu bytes\n",
                path.c_str(), records, rib_rows, updates, bytes);
  }
  return 0;
}

int cmd_mrt_corrupt(int argc, char** argv) {
  const auto args = Args::parse(argc, argv, 2, {"out", "kind", "seed"}, {});
  if (!args) return kExitUsage;
  if (args->positional().size() != 1) {
    std::fprintf(stderr,
                 "error: usage: mrt-corrupt <in.mrt> --out <out.mrt> "
                 "[--kind bitflip|truncate|splice|lengthlie] [--seed N]\n");
    return kExitUsage;
  }
  const auto out_path = args->value("out");
  if (!out_path) {
    std::fprintf(stderr, "error: --out <out.mrt> is required\n");
    return kExitUsage;
  }
  const std::string kind_name = args->value("kind").value_or("bitflip");
  const auto kind = mrt::parse_corruption_kind(kind_name);
  if (!kind) {
    std::fprintf(stderr,
                 "error: --kind must be bitflip, truncate, splice, or "
                 "lengthlie (got '%s')\n",
                 kind_name.c_str());
    return kExitUsage;
  }
  const auto seed = args->value_u64("seed", 1);
  if (!seed) return kExitUsage;

  const std::string& in_path = args->positional().front();
  std::ifstream in(in_path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "error: cannot open %s\n", in_path.c_str());
    return kExitData;
  }
  std::vector<std::uint8_t> bytes;
  char buffer[64 * 1024];
  while (in.read(buffer, sizeof buffer) || in.gcount() > 0)
    bytes.insert(bytes.end(), buffer, buffer + in.gcount());
  if (in.bad()) {
    std::fprintf(stderr, "error: failed to read %s\n", in_path.c_str());
    return kExitData;
  }

  mrt::CorruptionResult corrupted;
  try {
    corrupted = mrt::corrupt_mrt(bytes, *kind, *seed);
  } catch (const mrt::MrtError& error) {
    std::fprintf(stderr, "error: %s: %s\n", in_path.c_str(), error.what());
    return kExitData;
  }

  std::ofstream out(*out_path, std::ios::binary | std::ios::trunc);
  if (!out ||
      !out.write(reinterpret_cast<const char*>(corrupted.bytes.data()),
                 static_cast<std::streamsize>(corrupted.bytes.size()))) {
    std::fprintf(stderr, "error: cannot write %s\n", out_path->c_str());
    return kExitRuntime;
  }

  std::string touched;
  for (const std::uint64_t record : corrupted.touched_records) {
    if (!touched.empty()) touched += ',';
    touched += std::to_string(record);
  }
  std::printf("%s: %s (touched records: %s)\n", out_path->c_str(),
              corrupted.description.c_str(), touched.c_str());
  return 0;
}

namespace {

/// Default TCP port of the query daemon (also baked into cmd_query).
constexpr std::uint64_t kDefaultServePort = 7179;

// Signal plumbing for `bgpintent serve`: the handlers may only touch the
// running server through the async-signal-safe request_stop().
serve::Server* g_serve_server = nullptr;

void serve_signal_handler(int) {
  if (g_serve_server != nullptr) g_serve_server->request_stop();
}

}  // namespace

int cmd_serve(int argc, char** argv) {
  const auto args = Args::parse(
      argc, argv, 2,
      {"listen", "port", "threads", "shards", "snapshot", "snapshot-interval",
       "snapshot-format", "read-timeout", "gap", "threshold", "max-errors",
       "max-error-frac"},
      {"no-siblings", "mean-ratios", "tolerant", "mmap", "no-mmap",
       "snapshot-mmap"});
  if (!args) return 2;
  mrt::DecodeOptions decode;
  if (!parse_decode_options(*args, decode)) return kExitUsage;
  const auto port = args->value_u64("port", kDefaultServePort, kMaxPort);
  const auto threads = args->value_u64("threads", 0, kMaxThreads);
  const auto shards = args->value_u64("shards", 0, kMaxThreads);
  const auto interval = args->value_u64("snapshot-interval", 0, 31536000);
  const auto read_timeout =
      args->value_u64("read-timeout", 30000, 86400000);
  const auto gap = args->value_u64("gap", 140, kMaxU32);
  const auto threshold = args->value_double("threshold", 160.0);
  if (!port || !threads || !shards || !interval || !read_timeout || !gap ||
      !threshold)
    return 2;
  const auto snapshot_path = args->value("snapshot");
  if (*interval > 0 && !snapshot_path) {
    std::fprintf(stderr,
                 "error: --snapshot-interval requires --snapshot <file>\n");
    return 2;
  }
  const std::string format_name =
      args->value("snapshot-format").value_or("v2");
  serve::SnapshotFormat snapshot_format;
  if (format_name == "v2") {
    snapshot_format = serve::SnapshotFormat::kV2;
  } else if (format_name == "v3") {
    snapshot_format = serve::SnapshotFormat::kV3;
  } else {
    std::fprintf(stderr, "error: --snapshot-format must be v2 or v3, got %s\n",
                 format_name.c_str());
    return 2;
  }
  const bool snapshot_mmap = args->flag("snapshot-mmap");
  if (snapshot_mmap && !snapshot_path) {
    std::fprintf(stderr, "error: --snapshot-mmap requires --snapshot <file>\n");
    return 2;
  }

  core::ClassifierConfig classifier_cfg;
  classifier_cfg.min_gap = static_cast<std::uint32_t>(*gap);
  classifier_cfg.ratio_threshold = *threshold;
  classifier_cfg.mean_of_ratios = args->flag("mean-ratios");
  core::ObservationConfig observation_cfg;
  observation_cfg.sibling_aware = !args->flag("no-siblings");
  core::IncrementalClassifier classifier(classifier_cfg, observation_cfg);

  // An existing snapshot wins over the classifier flags: it carries the
  // configs it was built with, and mixing configs would corrupt labels.
  if (snapshot_path) {
    if (std::ifstream probe(*snapshot_path, std::ios::binary); probe) {
      try {
        if (snapshot_mmap) {
          // Near-instant restart: borrow the mapped v3 columns instead of
          // decoding them into heap state.  The first INGEST detaches.
          const auto mapped = serve::MappedSnapshot::open(*snapshot_path);
          classifier = core::IncrementalClassifier(
              mapped->classifier_config(), mapped->observation_config());
          classifier.restore_view(mapped->state_view());
        } else {
          classifier = serve::load_snapshot(*snapshot_path);
        }
      } catch (const serve::SnapshotError& error) {
        std::fprintf(stderr, "error: %s: %s\n", snapshot_path->c_str(),
                     error.what());
        return 1;
      }
      std::fprintf(stderr, "restored %zu ingested entries from %s%s\n",
                   classifier.entries_ingested(), snapshot_path->c_str(),
                   snapshot_mmap ? " (mapped)" : "");
    }
  }

  if (!args->positional().empty()) {
    const auto mmap_mode = parse_mmap_mode(*args);
    if (!mmap_mode) return kExitUsage;
    int exit_code = kExitRuntime;
    const auto sources =
        open_mrt_sources(args->positional(), *mmap_mode, exit_code);
    if (!sources) return exit_code;
    // Each source streams row-by-row into the classifier (ingest_mrt);
    // decode counters fold in per file, exactly like the old batch path.
    const std::size_t before = classifier.entries_ingested();
    mrt::DecodeReport merged;
    for (const MrtSource& src : *sources) {
      mrt::DecodeReport file_report;
      try {
        classifier.ingest_mrt(*src.source, decode, &file_report);
        merged.merge(file_report);
      } catch (const mrt::DecodeBudgetError& error) {
        merged.merge(file_report);
        std::fprintf(stderr, "error: %s: %s\n", src.name.c_str(),
                     error.what());
        std::fprintf(stderr, "decode: %s\n", merged.summary().c_str());
        return kExitBudget;
      } catch (const mrt::MrtError& error) {
        merged.merge(file_report);
        std::fprintf(stderr, "error: %s: %s\n", src.name.c_str(),
                     error.what());
        return kExitData;
      }
    }
    std::fprintf(stderr, "decode: %s\n", merged.summary().c_str());
    std::fprintf(stderr, "primed with %zu RIB entries from %zu MRT files\n",
                 classifier.entries_ingested() - before,
                 args->positional().size());
  }

  serve::ServerConfig cfg;
  cfg.listen_address = args->value("listen").value_or("127.0.0.1");
  cfg.port = static_cast<std::uint16_t>(*port);
  cfg.threads = static_cast<unsigned>(*threads);
  cfg.shards = static_cast<unsigned>(*shards);
  cfg.read_timeout_ms = static_cast<int>(*read_timeout);
  cfg.snapshot_interval_s = static_cast<unsigned>(*interval);
  cfg.snapshot_format = snapshot_format;
  if (snapshot_path) cfg.snapshot_path = *snapshot_path;

  serve::Server server(std::move(classifier), cfg);
  try {
    server.start();
  } catch (const serve::ServeError& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
  g_serve_server = &server;
  std::signal(SIGINT, serve_signal_handler);
  std::signal(SIGTERM, serve_signal_handler);
  // Machine-readable readiness line on stdout: scripts started us with
  // --port 0 and need the resolved port before their first connect.
  std::printf("LISTENING %u\n", server.port());
  std::fflush(stdout);
  std::fprintf(stderr, "serving on %s:%u (ctrl-c to drain and exit)\n",
               cfg.listen_address.c_str(), server.port());
  server.wait();
  std::signal(SIGINT, SIG_DFL);
  std::signal(SIGTERM, SIG_DFL);
  g_serve_server = nullptr;

  const auto stats = server.stats();
  std::fprintf(stderr,
               "drained after %.1fs: %llu connections, %llu label queries, "
               "%llu entries ingested\n",
               stats.uptime_seconds,
               static_cast<unsigned long long>(stats.connections_accepted),
               static_cast<unsigned long long>(stats.queries_served),
               static_cast<unsigned long long>(stats.entries_ingested));
  return 0;
}

int cmd_query(int argc, char** argv) {
  const auto args = Args::parse(argc, argv, 2, {"host", "port"}, {});
  if (!args) return 2;
  const auto port = args->value_u64("port", kDefaultServePort, kMaxPort);
  if (!port) return 2;
  const std::string host = args->value("host").value_or("127.0.0.1");
  if (args->positional().empty()) {
    std::fprintf(stderr,
                 "error: pass a protocol command, e.g. LABEL 1299:2569\n");
    return 2;
  }
  std::string line;
  for (const std::string& token : args->positional()) {
    if (!line.empty()) line += ' ';
    line += token;
  }
  try {
    // Retrying absorbs the daemon's startup window and brief restarts
    // (transient ECONNREFUSED/ETIMEDOUT, serve/client.hpp RetryPolicy).
    auto client = serve::Client::connect_with_retry(
        host, static_cast<std::uint16_t>(*port));
    const std::string response = client.request(line);
    std::printf("%s\n", response.c_str());
    client.quit();
    return util::starts_with(response, "ERR") ? 1 : 0;
  } catch (const serve::ServeError& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
}

int cmd_stream(int argc, char** argv) {
  const auto args = Args::parse(
      argc, argv, 2,
      {"listen", "port", "threads", "shards", "read-timeout", "epoch-seconds",
       "window-epochs", "gap", "threshold", "max-errors", "max-error-frac",
       "journal", "fsync", "checkpoint-interval", "max-segment-bytes"},
      {"serve", "no-siblings", "mean-ratios", "tolerant", "mmap", "no-mmap",
       "journal-strict"});
  if (!args) return kExitUsage;
  mrt::DecodeOptions decode;
  if (!parse_decode_options(*args, decode)) return kExitUsage;
  const auto mmap_mode = parse_mmap_mode(*args);
  if (!mmap_mode) return kExitUsage;
  const auto port = args->value_u64("port", kDefaultServePort, kMaxPort);
  const auto threads = args->value_u64("threads", 0, kMaxThreads);
  const auto shards = args->value_u64("shards", 0, kMaxThreads);
  const auto read_timeout = args->value_u64("read-timeout", 30000, 86400000);
  const auto epoch_seconds = args->value_u64("epoch-seconds", 3600, kMaxU32);
  const auto window_epochs = args->value_u64("window-epochs", 168, kMaxU32);
  const auto gap = args->value_u64("gap", 140, kMaxU32);
  const auto threshold = args->value_double("threshold", 160.0);
  const auto checkpoint_interval =
      args->value_u64("checkpoint-interval", 100000);
  const auto max_segment = args->value_u64("max-segment-bytes", 4ull << 20);
  if (!port || !threads || !shards || !read_timeout || !epoch_seconds ||
      !window_epochs || !gap || !threshold || !checkpoint_interval ||
      !max_segment)
    return kExitUsage;
  if (*epoch_seconds == 0 || *window_epochs == 0) {
    std::fprintf(stderr,
                 "error: --epoch-seconds and --window-epochs must be >= 1\n");
    return kExitUsage;
  }
  const auto journal_dir = args->value("journal");
  stream::JournalConfig journal_cfg;
  if (journal_dir) {
    journal_cfg.directory = *journal_dir;
    journal_cfg.max_segment_bytes = *max_segment;
    if (journal_cfg.max_segment_bytes < stream::kSegmentHeaderBytes + 64) {
      std::fprintf(stderr, "error: --max-segment-bytes is too small\n");
      return kExitUsage;
    }
    if (const auto fsync_name = args->value("fsync")) {
      const auto policy = stream::parse_fsync_policy(*fsync_name);
      if (!policy) {
        std::fprintf(stderr,
                     "error: --fsync must be never, interval, or "
                     "every-record\n");
        return kExitUsage;
      }
      journal_cfg.fsync = *policy;
    }
  } else if (args->value("fsync") || args->flag("journal-strict") ||
             args->value("checkpoint-interval") ||
             args->value("max-segment-bytes")) {
    std::fprintf(stderr,
                 "error: --fsync/--checkpoint-interval/--max-segment-bytes/"
                 "--journal-strict require --journal\n");
    return kExitUsage;
  }

  stream::WindowConfig window_cfg;
  window_cfg.epoch_seconds = static_cast<std::uint32_t>(*epoch_seconds);
  window_cfg.window_epochs = static_cast<std::uint32_t>(*window_epochs);
  window_cfg.classifier.min_gap = static_cast<std::uint32_t>(*gap);
  window_cfg.classifier.ratio_threshold = *threshold;
  window_cfg.classifier.mean_of_ratios = args->flag("mean-ratios");
  window_cfg.observation.sibling_aware = !args->flag("no-siblings");

  // With --journal the engine comes out of crash recovery (checkpoint +
  // replay, stream/recovery.hpp) with a writer attached that resumes the
  // journal where the last process stopped; without it, a plain transient
  // engine.
  std::unique_ptr<stream::StreamEngine> recovered;
  std::optional<stream::StreamEngine> transient;
  if (journal_dir) {
    stream::RecoveryOptions recovery;
    recovery.strict = args->flag("journal-strict");
    recovery.config = window_cfg;
    recovery.checkpoint_interval_updates = *checkpoint_interval;
    stream::RecoveryReport report;
    try {
      recovered = stream::recover_stream(journal_cfg, recovery, &report);
    } catch (const stream::JournalError& error) {
      std::fprintf(stderr, "error: journal recovery failed: %s\n",
                   error.what());
      return kExitData;
    }
    if (report.fresh) {
      std::fprintf(stderr, "journal: %s is fresh\n", journal_dir->c_str());
    } else {
      std::fprintf(
          stderr,
          "journal: recovered %llu records (%llu replayed%s%s), last event "
          "seq %llu\n",
          static_cast<unsigned long long>(report.journal_records),
          static_cast<unsigned long long>(report.records_replayed),
          report.used_checkpoint ? " past checkpoint" : "",
          report.torn_tail_truncated > 0 ? ", torn tail truncated" : "",
          static_cast<unsigned long long>(report.recovered_events));
    }
    if (report.config_overridden)
      std::fprintf(stderr,
                   "journal: persisted window config wins over the flags "
                   "(docs/STREAMING.md)\n");
  } else {
    transient.emplace(window_cfg);
  }
  stream::StreamEngine& engine = recovered ? *recovered : *transient;

  const bool serving =
      args->flag("serve") || args->value("listen").has_value();
  if (!serving && args->positional().empty() && !journal_dir) {
    std::fprintf(stderr,
                 "error: pass BGP4MP update files ('-' reads stdin) and/or "
                 "--serve/--listen\n");
    return kExitUsage;
  }

  // The server starts before ingest so subscribers can watch labels change
  // while the firehose is still being consumed.
  std::optional<serve::Server> server;
  if (serving) {
    serve::ServerConfig cfg;
    cfg.listen_address = args->value("listen").value_or("127.0.0.1");
    cfg.port = static_cast<std::uint16_t>(*port);
    cfg.threads = static_cast<unsigned>(*threads);
    cfg.shards = static_cast<unsigned>(*shards);
    cfg.read_timeout_ms = static_cast<int>(*read_timeout);
    server.emplace(engine, cfg);
    try {
      server->start();
    } catch (const serve::ServeError& error) {
      std::fprintf(stderr, "error: %s\n", error.what());
      return kExitRuntime;
    }
    g_serve_server = &*server;
    std::signal(SIGINT, serve_signal_handler);
    std::signal(SIGTERM, serve_signal_handler);
    std::printf("LISTENING %u\n", server->port());
    std::fflush(stdout);
    std::fprintf(stderr, "streaming on %s:%u (ctrl-c to drain and exit)\n",
                 cfg.listen_address.c_str(), server->port());
  }

  int code = kExitOk;
  mrt::DecodeReport merged;
  for (const std::string& path : args->positional()) {
    mrt::DecodeReport file_report;
    const std::string name = path == "-" ? "<stdin>" : path;
    try {
      if (path == "-") {
        // Strict stdin decode is record-at-a-time (bounded memory), so a
        // live pipe classifies as it flows instead of waiting for EOF.
        engine.ingest(std::cin, decode, &file_report);
      } else {
        std::unique_ptr<mrt::ByteSource> source;
        if (*mmap_mode != MmapMode::kOff) {
          try {
            source = std::make_unique<mrt::MmapSource>(path);
          } catch (const mrt::MrtError& error) {
            if (*mmap_mode == MmapMode::kForce) {
              std::fprintf(stderr, "error: %s\n", error.what());
              code = kExitData;
              break;
            }
          }
        }
        if (!source) {
          std::ifstream in(path, std::ios::binary);
          if (!in) {
            std::fprintf(stderr, "error: cannot open %s\n", path.c_str());
            code = kExitData;
            break;
          }
          if (*mmap_mode == MmapMode::kAuto)
            std::fprintf(stderr,
                         "note: %s: mmap unavailable, falling back to "
                         "buffered read\n",
                         path.c_str());
          source = std::make_unique<mrt::BufferSource>(mrt::slurp_stream(in));
        }
        engine.ingest(*source, decode, &file_report);
      }
      merged.merge(file_report);
    } catch (const mrt::DecodeBudgetError& error) {
      merged.merge(file_report);
      std::fprintf(stderr, "error: %s: %s\n", name.c_str(), error.what());
      code = kExitBudget;
      break;
    } catch (const mrt::MrtError& error) {
      merged.merge(file_report);
      std::fprintf(stderr, "error: %s: %s\n", name.c_str(), error.what());
      code = kExitData;
      break;
    }
  }
  if (!args->positional().empty())
    std::fprintf(stderr, "decode: %s\n", merged.summary().c_str());
  {
    const stream::EngineStats es = engine.stats();
    std::fprintf(
        stderr,
        "window: %llu announces, %llu withdraws, %llu live tuples, "
        "%llu epochs retained (%llu expired), %llu label changes\n",
        static_cast<unsigned long long>(es.announces),
        static_cast<unsigned long long>(es.withdraws),
        static_cast<unsigned long long>(es.live_tuples),
        static_cast<unsigned long long>(es.window_epochs),
        static_cast<unsigned long long>(es.expired_epochs),
        static_cast<unsigned long long>(es.events));
  }

  if (server) {
    if (code != kExitOk) server->request_stop();
    server->wait();
    std::signal(SIGINT, SIG_DFL);
    std::signal(SIGTERM, SIG_DFL);
    g_serve_server = nullptr;
    const auto stats = server->stats();
    std::fprintf(stderr,
                 "drained after %.1fs: %llu connections, %llu label queries\n",
                 stats.uptime_seconds,
                 static_cast<unsigned long long>(stats.connections_accepted),
                 static_cast<unsigned long long>(stats.queries_served));
  }
  if (engine.has_journal()) {
    // Clean shutdown: final checkpoint + sealed segment, so the next start
    // replays nothing.
    try {
      engine.detach_journal();
    } catch (const stream::JournalError& error) {
      std::fprintf(stderr, "error: journal shutdown failed: %s\n",
                   error.what());
      if (code == kExitOk) code = kExitRuntime;
    }
    const stream::EngineStats es = engine.stats();
    std::fprintf(stderr,
                 "journal: %llu records appended (%llu bytes)\n",
                 static_cast<unsigned long long>(es.journal_appends),
                 static_cast<unsigned long long>(es.journal_bytes));
  }
  return code;
}

int cmd_subscribe(int argc, char** argv) {
  const auto args = Args::parse(
      argc, argv, 2, {"host", "port", "from", "max-events", "timeout-ms"},
      {"snapshot"});
  if (!args) return kExitUsage;
  const auto port = args->value_u64("port", kDefaultServePort, kMaxPort);
  const auto from = args->value_u64("from", 0);
  const auto max_events = args->value_u64("max-events", 0);
  const auto timeout_ms = args->value_u64("timeout-ms", 0, 0x7fffffff);
  if (!port || !from || !max_events || !timeout_ms) return kExitUsage;
  const std::string host = args->value("host").value_or("127.0.0.1");

  std::string request = "SUBSCRIBE";
  if (args->flag("snapshot")) request += " snapshot";
  if (args->value("from"))
    request +=
        util::format(" from=%llu", static_cast<unsigned long long>(*from));
  const int line_timeout =
      *timeout_ms == 0 ? -1 : static_cast<int>(*timeout_ms);

  try {
    auto client = serve::Client::connect_with_retry(
        host, static_cast<std::uint16_t>(*port));
    client.send_line(request);
    auto line = client.read_line(line_timeout);
    if (!line) {
      std::fprintf(stderr, "error: timed out waiting for the server\n");
      return kExitRuntime;
    }
    std::printf("%s\n", line->c_str());
    std::fflush(stdout);
    if (util::starts_with(*line, "ERR")) return kExitRuntime;
    std::uint64_t events_seen = 0;
    while (*max_events == 0 || events_seen < *max_events) {
      line = client.read_line(line_timeout);
      if (!line) {
        std::fprintf(stderr, "error: timed out waiting for events\n");
        return kExitRuntime;
      }
      std::printf("%s\n", line->c_str());
      std::fflush(stdout);
      if (util::starts_with(*line, "EVENT")) ++events_seen;
    }
    return kExitOk;
  } catch (const serve::ServeError& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return kExitRuntime;
  }
}

int cmd_synth_stream(int argc, char** argv) {
  const auto args = Args::parse(
      argc, argv, 2,
      {"out", "seed", "tier1", "tier2", "stubs", "vantage-points", "epochs",
       "epoch-seconds", "day-churn", "flap-fraction", "start-timestamp"},
      {});
  if (!args) return kExitUsage;
  const auto seed = args->value_u64("seed", 20230501);
  const auto tier1 = args->value_u64("tier1", 10, kMaxU32);
  const auto tier2 = args->value_u64("tier2", 80, kMaxU32);
  const auto stubs = args->value_u64("stubs", 600, kMaxU32);
  const auto vps = args->value_u64("vantage-points", 60, kMaxU32);
  const auto epochs = args->value_u64("epochs", 4, kMaxU32);
  const auto epoch_seconds = args->value_u64("epoch-seconds", 3600, kMaxU32);
  const auto churn = args->value_double("day-churn", 0.1);
  const auto flap = args->value_double("flap-fraction", 0.05);
  const auto start = args->value_u64("start-timestamp", 1000000000, kMaxU32);
  if (!seed || !tier1 || !tier2 || !stubs || !vps || !epochs ||
      !epoch_seconds || !churn || !flap || !start)
    return kExitUsage;
  if (*epochs == 0 || *epoch_seconds == 0) {
    std::fprintf(stderr,
                 "error: --epochs and --epoch-seconds must be >= 1\n");
    return kExitUsage;
  }
  if (*churn < 0.0 || *churn > 1.0 || *flap < 0.0 || *flap > 1.0) {
    std::fprintf(stderr,
                 "error: --day-churn and --flap-fraction must be in [0, 1]\n");
    return kExitUsage;
  }

  stream::SynthStreamConfig cfg;
  cfg.scenario.topology.seed = *seed;
  cfg.scenario.policy.seed = *seed + 1;
  cfg.scenario.workload_seed = *seed + 2;
  cfg.scenario.topology.tier1_count = static_cast<std::uint32_t>(*tier1);
  cfg.scenario.topology.tier2_count = static_cast<std::uint32_t>(*tier2);
  cfg.scenario.topology.stub_count = static_cast<std::uint32_t>(*stubs);
  cfg.scenario.vantage_point_count = static_cast<std::uint32_t>(*vps);
  cfg.scenario.day_churn = *churn;
  cfg.flap_fraction = *flap;
  cfg.epochs = static_cast<std::uint32_t>(*epochs);
  cfg.epoch_seconds = static_cast<std::uint32_t>(*epoch_seconds);
  cfg.start_timestamp = static_cast<std::uint32_t>(*start);

  stream::SynthStreamStats stats;
  const auto out_path = args->value("out");
  if (out_path) {
    std::ofstream out(*out_path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n", out_path->c_str());
      return kExitRuntime;
    }
    stats = stream::write_update_stream(out, cfg);
    if (!out) {
      std::fprintf(stderr, "error: failed writing %s\n", out_path->c_str());
      return kExitRuntime;
    }
  } else {
    stats = stream::write_update_stream(std::cout, cfg);
  }
  std::fprintf(stderr,
               "wrote %llu update records (%llu announcements, %llu "
               "withdrawals) over %u epochs to %s\n",
               static_cast<unsigned long long>(stats.records),
               static_cast<unsigned long long>(stats.announcements),
               static_cast<unsigned long long>(stats.withdrawals),
               static_cast<unsigned>(*epochs),
               out_path ? out_path->c_str() : "<stdout>");
  return kExitOk;
}

int cmd_recover(int argc, char** argv) {
  const auto args = Args::parse(argc, argv, 2, {}, {});
  if (!args) return kExitUsage;
  if (args->positional().size() != 1) {
    std::fprintf(stderr, "error: usage: bgpintent recover <journal-dir>\n");
    return kExitUsage;
  }
  const std::string& directory = args->positional().front();

  stream::JournalInspection inspection;
  try {
    inspection = stream::inspect_journal(directory);
  } catch (const stream::JournalError& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return kExitData;
  }

  std::printf("journal %s\n", directory.c_str());
  std::printf("  segments:   %zu\n", inspection.scan.segments.size());
  std::printf("  records:    %llu\n",
              static_cast<unsigned long long>(inspection.scan.records));
  for (const auto& segment : inspection.scan.segments)
    std::printf("    %s  first=%llu records=%llu%s\n",
                segment.path.c_str(),
                static_cast<unsigned long long>(segment.first_record),
                static_cast<unsigned long long>(segment.records),
                segment.sealed ? " sealed" : "");
  static constexpr const char* kTypeNames[] = {
      "",           "config",     "announce", "withdraw", "epoch",
      "event",      "reclassify", "decode-stats", "footer"};
  for (std::size_t type = 1; type < inspection.type_counts.size(); ++type)
    if (inspection.type_counts[type] > 0)
      std::printf("  %-12s %llu\n", kTypeNames[type],
                  static_cast<unsigned long long>(
                      inspection.type_counts[type]));
  if (inspection.undecodable > 0)
    std::printf("  undecodable: %llu\n",
                static_cast<unsigned long long>(inspection.undecodable));
  std::printf("  last event seq: %llu\n",
              static_cast<unsigned long long>(inspection.last_event_seq));
  for (const auto& [records, path] : inspection.checkpoints)
    std::printf("  checkpoint covering %llu records: %s\n",
                static_cast<unsigned long long>(records), path.c_str());
  if (inspection.checkpoints.empty())
    std::printf("  no checkpoints (recovery replays the full journal)\n");
  if (inspection.scan.torn) {
    std::printf("  TORN TAIL: %s\n", inspection.scan.torn_detail.c_str());
    std::printf(
        "  tolerant recovery (bgpintent stream --journal %s) keeps the "
        "%llu-record prefix;\n  --journal-strict refuses\n",
        directory.c_str(),
        static_cast<unsigned long long>(inspection.scan.records));
    return kExitData;
  }
  std::printf("  clean\n");
  return kExitOk;
}

int cmd_help() {
  std::printf(
      "bgpintent — coarse-grained inference of BGP community intent\n"
      "\n"
      "usage: bgpintent <command> [options]\n"
      "\n"
      "commands:\n"
      "  infer <rib.mrt>...     classify communities from MRT input\n"
      "      ('-' reads stdin; decoded rows stream straight into the\n"
      "      interned core, files are mmap'd when possible)\n"
      "      [--gap N] [--threshold R] [--no-siblings] [--mean-ratios]\n"
      "      [--out file.csv] [--summary file.dict]\n"
      "      [--threads N]      workers (0 = all cores, default; 1 = "
      "sequential)\n"
      "      [--tolerant]       skip malformed MRT records and resync\n"
      "      [--max-errors N] [--max-error-frac R]   tolerant error budget\n"
      "      [--mmap | --no-mmap]   require or disable zero-copy file "
      "maps\n"
      "  simulate               generate a synthetic collector RIB as MRT\n"
      "      [--seed N] [--tier1 N] [--tier2 N] [--stubs N]\n"
      "      [--vantage-points N] [--out rib.mrt] [--dict truth.dict]\n"
      "  relationships <mrt>... infer AS relationships (CAIDA serial-1)\n"
      "      [--out file] [--tolerant] [--max-errors N] "
      "[--max-error-frac R]\n"
      "      [--mmap | --no-mmap]   ('-' reads stdin)\n"
      "  eval <rib.mrt>...      score against a ground-truth dictionary\n"
      "      --dict truth.dict [--gap N] [--threshold R] [--threads N]\n"
      "      [--tolerant] [--max-errors N] [--max-error-frac R]\n"
      "      [--mmap | --no-mmap]   ('-' reads stdin)\n"
      "  annotate <a:b>...      explain community values [--dict file]\n"
      "  mrt-info <file>...     MRT record statistics\n"
      "  mrt-corrupt <in.mrt>   seeded fault injection into a valid MRT "
      "file\n"
      "      --out out.mrt [--kind bitflip|truncate|splice|lengthlie] "
      "[--seed N]\n"
      "  serve [rib.mrt]...     run the live query daemon (docs/SERVING.md)\n"
      "      [--listen ADDR] [--port N] [--shards N]  (--port 0 prints\n"
      "      'LISTENING <port>' on stdout once bound)\n"
      "      [--snapshot file.snap] [--snapshot-interval SECONDS]\n"
      "      [--snapshot-format v2|v3] [--snapshot-mmap]  (v3 + mmap =\n"
      "      near-instant restart, pages shared across processes)\n"
      "      [--read-timeout MS] [--gap N] [--threshold R]\n"
      "      [--no-siblings] [--mean-ratios]\n"
      "      [--tolerant] [--max-errors N] [--max-error-frac R]\n"
      "      [--mmap | --no-mmap]   ('-' reads stdin)\n"
      "  query <COMMAND>...     send one protocol command to a daemon\n"
      "      [--host ADDR] [--port N]   e.g.: query LABEL 1299:2569\n"
      "  stream [updates.mrt]...  sliding-window classification of a BGP4MP\n"
      "      update stream ('-' reads stdin; docs/STREAMING.md)\n"
      "      [--serve | --listen ADDR] [--port N] [--shards N]\n"
      "      [--epoch-seconds N] [--window-epochs N]\n"
      "      [--gap N] [--threshold R] [--no-siblings] [--mean-ratios]\n"
      "      [--tolerant] [--max-errors N] [--max-error-frac R]\n"
      "      [--mmap | --no-mmap] [--read-timeout MS]\n"
      "      [--journal DIR]    write-ahead journal; recovers on start\n"
      "      [--fsync never|interval|every-record] [--checkpoint-interval "
      "N]\n"
      "      [--max-segment-bytes N] [--journal-strict]\n"
      "  recover <journal-dir>  inspect a stream journal: segments, record\n"
      "      counts, checkpoints, torn-tail status (read-only)\n"
      "  subscribe              print label-change events from a stream\n"
      "      daemon  [--host ADDR] [--port N] [--snapshot] [--from SEQ]\n"
      "      [--max-events N] [--timeout-ms MS]\n"
      "  synth-stream           write a synthetic BGP4MP update stream\n"
      "      [--out updates.mrt] [--seed N] [--tier1 N] [--tier2 N]\n"
      "      [--stubs N] [--vantage-points N] [--epochs N]\n"
      "      [--epoch-seconds N] [--day-churn R] [--flap-fraction R]\n"
      "      [--start-timestamp N]\n"
      "  help                   this text\n"
      "\n"
      "exit codes: 0 success, 1 runtime error, 2 usage error,\n"
      "            3 unreadable or malformed input, 4 tolerant decode\n"
      "            error budget exceeded (docs/ROBUSTNESS.md)\n");
  return 0;
}

}  // namespace bgpintent::cli
