// BGP route propagation simulator.
//
// Propagates prefix announcements over an AS graph under Gao-Rexford
// policies, with full community semantics:
//
//   selection   customer > peer > provider routes (numeric local-pref with
//               class defaults; honored SetLocalPref actions override),
//               then shortest path, then lowest neighbor ASN;
//   export      customer(& sibling)-learned routes go to everyone, other
//               routes go to customers/siblings only (valley-free);
//   actions     communities whose alpha matches an AS are honored by it:
//               no-export-to-AS/region, prepend-toward-AS, blackhole,
//               set-local-pref, scoped no-export;
//   information each AS with a tagging policy attaches geo / relationship /
//               ROV communities at ingress;
//   transit     communities are transitive; ~0.5% of ASes strip all
//               communities on export; IXP route servers tag member routes
//               with their own communities while staying out of the path.
//
// The fixed point is computed by frontier-pruned Gauss-Seidel sweeps in
// ascending ASN order — only ASes with a neighbor that changed since their
// last evaluation are recomputed, which cannot alter the sweep's result.
// Each sweep is scheduled as a sequence of wavefronts: AS i's wave level
// is the longest ascending-ordinal path through adjacent ASes ending at i,
// so adjacent ASes always sit in different waves and one wave's members
// never read each other's state.  Running the waves in order reproduces
// the ascending sweep exactly, and each wave parallelizes over a
// util::ThreadPool with bit-identical results at any pool size
// (docs/SIMULATION.md has the full determinism argument).  With
// valley-free export and class-based preference this converges in
// O(diameter) sweeps.
//
// Results land in PrefixRib, a compact dense RIB: per-AS slots indexed by
// topo::AsIndex ordinals, AS paths interned through bgp::PathTable, and
// community lists packed into flat arenas — a 75K-AS world costs flat
// arrays, not a hash map of vector-of-vectors per prefix.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "bgp/path_table.hpp"
#include "bgp/route.hpp"
#include "routing/policy.hpp"
#include "topo/generator.hpp"

namespace bgpintent::util {
class ThreadPool;
}

namespace bgpintent::routing {

/// One announcement entering the system.
struct Announcement {
  bgp::Prefix prefix;
  Asn origin = 0;
  /// Communities the originator attaches (typically action communities
  /// addressed to one of its providers).
  std::vector<Community> communities;
  std::vector<bgp::LargeCommunity> large_communities;
};

/// Result of propagating one prefix: the best route of every AS that has
/// one, stored compactly.  Slots are dense (one per AS ordinal of the
/// underlying topo::AsIndex), paths are PathIds into a shared
/// bgp::PathTable, and community lists live in flat arenas; a route is
/// read through a cheap RouteView of spans.
class PrefixRib {
 public:
  /// A borrowed view of one AS's best route.  Valid as long as the rib
  /// (and its path table) lives.
  struct RouteView {
    /// Full AS path from this AS to the origin, this AS first (prepends
    /// included).
    std::span<const Asn> path;
    std::span<const Community> communities;
    std::span<const bgp::LargeCommunity> large_communities;
    Asn learned_from = 0;  ///< 0 for the origin itself
    std::uint32_t local_pref = 0;
    bgp::PathId path_id = 0;  ///< into paths()
  };

  PrefixRib() = default;

  [[nodiscard]] bool contains(Asn asn) const noexcept;

  /// Best route of `asn`, or nullopt when it has none.
  [[nodiscard]] std::optional<RouteView> find(Asn asn) const noexcept;

  /// Best route of `asn`; throws std::out_of_range when it has none.
  [[nodiscard]] RouteView at(Asn asn) const;

  /// Number of ASes holding a route.
  [[nodiscard]] std::size_t size() const noexcept { return valid_count_; }
  [[nodiscard]] bool empty() const noexcept { return valid_count_ == 0; }

  /// Relaxation rounds until the fixed point (0 for an unknown origin).
  [[nodiscard]] std::uint32_t rounds() const noexcept { return rounds_; }

  /// The path table this rib's PathIds resolve against (shared across ribs
  /// from the same propagate_all call).
  [[nodiscard]] const bgp::PathTable& paths() const noexcept { return *paths_; }

  /// Visits every AS with a route in ascending ASN order.
  void for_each(
      const std::function<void(Asn, const RouteView&)>& fn) const;

  /// Bytes held by the slots and community arenas (capacities).  The path
  /// table and AS index are shared across ribs and excluded; add
  /// paths().memory_bytes() once per table.
  [[nodiscard]] std::size_t memory_bytes() const noexcept;

  /// Content equality: same ASes, and per AS the same path (by content,
  /// not PathId), communities, large communities, learned_from and
  /// local_pref — plus the same round count.  This is the bit-identity
  /// check behind the sequential == parallel property tests.
  friend bool operator==(const PrefixRib& a, const PrefixRib& b);

 private:
  friend class Simulator;

  static constexpr bgp::PathId kNoRoute = 0xffffffffu;

  struct Slot {
    bgp::PathId path = kNoRoute;  ///< kNoRoute marks "no route"
    std::uint32_t comm_begin = 0;
    std::uint32_t large_begin = 0;
    std::uint16_t comm_count = 0;
    std::uint16_t large_count = 0;
    Asn learned_from = 0;
    std::uint32_t local_pref = 0;
  };

  [[nodiscard]] RouteView view(std::uint32_t ordinal) const noexcept;

  /// Re-interns every slot's path into `master` (the chunk-local-then-
  /// reintern merge of propagate_all) and repoints paths_ at `handle`.
  void reintern(bgp::PathTable& master,
                std::shared_ptr<const bgp::PathTable> handle);

  std::shared_ptr<const topo::AsIndex> index_;
  std::shared_ptr<const bgp::PathTable> paths_;
  std::vector<Slot> slots_;  ///< one per AS ordinal
  std::vector<Community> comm_arena_;
  std::vector<bgp::LargeCommunity> large_arena_;
  std::size_t valid_count_ = 0;
  std::uint32_t rounds_ = 0;
};

class Simulator {
 public:
  Simulator(const topo::Topology& topo, const PolicySet& policies);

  /// Propagates one announcement to convergence (sequential reference).
  [[nodiscard]] PrefixRib propagate(const Announcement& announcement) const;

  /// Same fixed point, with the within-prefix frontier rounds run on
  /// `pool`.  Bit-identical to the sequential overload at any pool size.
  [[nodiscard]] PrefixRib propagate(const Announcement& announcement,
                                    util::ThreadPool& pool) const;

  /// Ribs of many announcements sharing one path table.  With a pool the
  /// announcements are sharded over the workers (chunk-local path tables,
  /// re-interned into the shared table in announcement order, so the
  /// result is bit-identical at any pool size including none).
  struct RibSet {
    std::shared_ptr<const bgp::PathTable> paths;
    std::vector<PrefixRib> ribs;  ///< parallel to the announcements
  };
  [[nodiscard]] RibSet propagate_all(std::span<const Announcement> announcements,
                                     util::ThreadPool* pool = nullptr) const;

  /// Dense ordinal index over the topology's ASes (shared with the ribs).
  [[nodiscard]] const topo::AsIndex& index() const noexcept { return *index_; }

  /// Maximum relaxation rounds (defense against policy disputes).
  static constexpr int kMaxRounds = 64;

 private:
  friend class Collector;

  /// Dense working form of one AS's best route during relaxation.
  struct WorkRoute {
    std::vector<Asn> path;
    std::vector<Community> communities;
    std::vector<bgp::LargeCommunity> large_communities;
    Asn learned_from = 0;  ///< 0 for the origin itself
    topo::RelFrom learned_rel = topo::RelFrom::kCustomer;
    std::uint32_t local_pref = 0;
    bool valid = false;

    /// Invalid routes compare equal regardless of stale payload (the
    /// relaxation workspace resets lazily by flipping `valid` off).
    friend bool operator==(const WorkRoute& a, const WorkRoute& b) noexcept {
      if (a.valid != b.valid) return false;
      if (!a.valid) return true;
      return a.learned_from == b.learned_from && a.local_pref == b.local_pref &&
             a.path == b.path && a.communities == b.communities &&
             a.large_communities == b.large_communities;
    }
  };

  struct ExportedRoute {
    std::vector<Asn> path;  ///< as received by the importer
    std::vector<Community> communities;
    std::vector<bgp::LargeCommunity> large_communities;
    bool valid = false;
  };

  /// One directed adjacency in the flattened graph, with everything the
  /// inner relaxation loop needs precomputed.
  struct Arc {
    std::uint32_t neighbor = 0;  ///< AS ordinal of the neighbor
    topo::Adjacency adj;         ///< as seen from the owning AS
    topo::Adjacency reverse;     ///< as seen from the neighbor (its export)
    const CommunityPolicy* rs_policy = nullptr;  ///< via-route-server tagger
  };

  /// Per-propagation scratch, reusable across announcements.
  struct Workspace {
    std::vector<WorkRoute> state;  ///< per ordinal; reset lazily via live
    /// Per-ordinal "needs evaluation" flags.  Atomic because one wave's
    /// members mark their (never same-wave) neighbors concurrently; all
    /// accesses are relaxed — the parallel_for barrier orders waves.
    std::unique_ptr<std::atomic<std::uint8_t>[]> marked;
    std::size_t marked_size = 0;
    std::atomic<std::uint32_t> pending{0};  ///< count of set marks
    std::vector<std::uint32_t> live;  ///< ordinals valid at the fixed point
  };

  /// What `from` announces over `to_adj` given its current best route, or
  /// an invalid route if export policy forbids it.
  [[nodiscard]] ExportedRoute export_route(const WorkRoute& best,
                                           std::uint32_t from,
                                           const topo::Adjacency& to_adj) const;

  /// Import processing at ordinal `to` for a route arriving over
  /// `from_arc`: loop check, blackhole, info tagging, local-pref.
  [[nodiscard]] WorkRoute import_route(ExportedRoute route, std::uint32_t to,
                                       const Arc& from_arc,
                                       bool rov_valid) const;

  /// True if `candidate` is preferred over `incumbent`.
  [[nodiscard]] static bool better(const WorkRoute& candidate,
                                   const WorkRoute& incumbent) noexcept;

  /// Runs the Gauss-Seidel sweeps for one announcement, leaving the fixed
  /// point in `ws.state` (`ws.live` lists the ordinals holding a route,
  /// ascending).  Returns the number of sweeps.  `pool` may be null
  /// (sequential).
  std::uint32_t relax(const Announcement& announcement, Workspace& ws,
                      util::ThreadPool* pool) const;

  /// Interns the fixed point into a compact rib against `table`.
  [[nodiscard]] PrefixRib compact(const Workspace& ws, std::uint32_t rounds,
                                  const std::shared_ptr<bgp::PathTable>& table)
      const;

  const topo::Topology* topo_;
  const PolicySet* policies_;
  std::shared_ptr<const topo::AsIndex> index_;
  std::vector<Arc> arcs_;                   // CSR adjacency, ordinal-ordered
  std::vector<std::uint32_t> arc_begin_;    // size() + 1 offsets into arcs_
  std::vector<const CommunityPolicy*> policy_of_;  // per ordinal
  std::vector<std::uint8_t> strips_;               // per ordinal
  // Wavefront schedule: ordinals grouped by level (longest ascending path
  // through adjacent ASes), ascending within a level.  Adjacent ASes are
  // never in the same level.
  std::vector<std::uint32_t> level_members_;
  std::vector<std::uint32_t> level_begin_;  // per-level offsets, + sentinel
};

/// A route collector: a set of vantage-point ASes whose best routes are
/// recorded (one RIB entry per VP per prefix), as RouteViews / RIS do.
class Collector {
 public:
  Collector(const topo::Topology& topo, const PolicySet& policies,
            std::vector<Asn> vantage_points);

  [[nodiscard]] const std::vector<Asn>& vantage_points() const noexcept {
    return vantage_points_;
  }

  /// Runs all announcements and collects RIB entries at the vantage
  /// points.  With a pool, announcements are sharded over the workers;
  /// the result is identical to the sequential run at any pool size.
  [[nodiscard]] std::vector<bgp::RibEntry> collect(
      const std::vector<Announcement>& announcements,
      util::ThreadPool* pool = nullptr) const;

 private:
  Simulator simulator_;
  std::vector<Asn> vantage_points_;
};

}  // namespace bgpintent::routing
