// BGP route propagation simulator.
//
// Propagates prefix announcements over an AS graph under Gao-Rexford
// policies, with full community semantics:
//
//   selection   customer > peer > provider routes (numeric local-pref with
//               class defaults; honored SetLocalPref actions override),
//               then shortest path, then lowest neighbor ASN;
//   export      customer(& sibling)-learned routes go to everyone, other
//               routes go to customers/siblings only (valley-free);
//   actions     communities whose alpha matches an AS are honored by it:
//               no-export-to-AS/region, prepend-toward-AS, blackhole,
//               set-local-pref, scoped no-export;
//   information each AS with a tagging policy attaches geo / relationship /
//               ROV communities at ingress;
//   transit     communities are transitive; ~0.5% of ASes strip all
//               communities on export; IXP route servers tag member routes
//               with their own communities while staying out of the path.
//
// The fixed point is computed by deterministic rounds of synchronous
// relaxation (Bellman-Ford style); with valley-free export and class-based
// preference this converges in O(diameter) rounds.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "bgp/route.hpp"
#include "routing/policy.hpp"
#include "topo/generator.hpp"

namespace bgpintent::routing {

/// One announcement entering the system.
struct Announcement {
  bgp::Prefix prefix;
  Asn origin = 0;
  /// Communities the originator attaches (typically action communities
  /// addressed to one of its providers).
  std::vector<Community> communities;
  std::vector<bgp::LargeCommunity> large_communities;
};

/// The best route of one AS for one prefix.
struct RibRoute {
  /// Full AS path from this AS to the origin, this AS first (prepends
  /// included).
  std::vector<Asn> path;
  std::vector<Community> communities;
  std::vector<bgp::LargeCommunity> large_communities;
  Asn learned_from = 0;              ///< 0 for the origin itself
  std::uint32_t local_pref = 0;
  bool valid = false;

  friend bool operator==(const RibRoute&, const RibRoute&) = default;
};

/// Result of propagating one prefix: best route per AS.
using PrefixRib = std::unordered_map<Asn, RibRoute>;

class Simulator {
 public:
  Simulator(const topo::Topology& topo, const PolicySet& policies);

  /// Propagates one announcement to convergence.
  [[nodiscard]] PrefixRib propagate(const Announcement& announcement) const;

  /// Maximum relaxation rounds (defense against policy disputes).
  static constexpr int kMaxRounds = 64;

 private:
  struct ExportedRoute {
    std::vector<Asn> path;  ///< as received by the importer
    std::vector<Community> communities;
    std::vector<bgp::LargeCommunity> large_communities;
    bool valid = false;
  };

  /// What `from` announces to `to` given its current best route, or an
  /// invalid route if export policy forbids it.
  [[nodiscard]] ExportedRoute export_route(const RibRoute& best, Asn from,
                                           const topo::Adjacency& to_adj) const;

  /// Import processing at `to` for a route arriving from `from`:
  /// loop check, blackhole, info tagging, local-pref computation.
  [[nodiscard]] RibRoute import_route(ExportedRoute route, Asn to,
                                      const topo::Adjacency& from_adj,
                                      bool rov_valid) const;

  /// True if `candidate` is preferred over `incumbent`.
  [[nodiscard]] static bool better(const RibRoute& candidate,
                                   const RibRoute& incumbent) noexcept;

  const topo::Topology* topo_;
  const PolicySet* policies_;
};

/// A route collector: a set of vantage-point ASes whose best routes are
/// recorded (one RIB entry per VP per prefix), as RouteViews / RIS do.
class Collector {
 public:
  Collector(const topo::Topology& topo, const PolicySet& policies,
            std::vector<Asn> vantage_points);

  [[nodiscard]] const std::vector<Asn>& vantage_points() const noexcept {
    return vantage_points_;
  }

  /// Runs all announcements and collects RIB entries at the vantage points.
  [[nodiscard]] std::vector<bgp::RibEntry> collect(
      const std::vector<Announcement>& announcements) const;

 private:
  Simulator simulator_;
  std::vector<Asn> vantage_points_;
};

}  // namespace bgpintent::routing
