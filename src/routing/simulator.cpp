#include "routing/simulator.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "util/thread_pool.hpp"

namespace bgpintent::routing {

namespace {

using topo::RelFrom;

constexpr std::uint32_t kPrefOrigin = 1000;
constexpr std::uint32_t kPrefCustomer = 300;
constexpr std::uint32_t kPrefSibling = 300;
constexpr std::uint32_t kPrefPeer = 200;
constexpr std::uint32_t kPrefProvider = 100;

bool region_matches(const ActionSpec& spec, topo::Location where) noexcept {
  return spec.target_region == kAnyRegion || spec.target_region == where.region;
}

/// Deterministic per-announcement ROV outcome (~86% valid).
bool rov_outcome(const Announcement& announcement) noexcept {
  const std::uint64_t key =
      (static_cast<std::uint64_t>(announcement.origin) << 32) ^
      announcement.prefix.address();
  return (key * 0x9e3779b97f4a7c15ULL >> 61) != 3;
}

template <typename T>
void sort_unique(std::vector<T>& values) {
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
}

}  // namespace

// ---------------------------------------------------------------------------
// PrefixRib

PrefixRib::RouteView PrefixRib::view(std::uint32_t ordinal) const noexcept {
  const Slot& s = slots_[ordinal];
  RouteView v;
  v.path = paths_->asns(s.path);
  v.communities = {comm_arena_.data() + s.comm_begin, s.comm_count};
  v.large_communities = {large_arena_.data() + s.large_begin, s.large_count};
  v.learned_from = s.learned_from;
  v.local_pref = s.local_pref;
  v.path_id = s.path;
  return v;
}

bool PrefixRib::contains(Asn asn) const noexcept {
  if (index_ == nullptr) return false;
  const std::uint32_t idx = index_->find(asn);
  return idx != topo::AsIndex::kInvalid && slots_[idx].path != kNoRoute;
}

std::optional<PrefixRib::RouteView> PrefixRib::find(Asn asn) const noexcept {
  if (index_ == nullptr) return std::nullopt;
  const std::uint32_t idx = index_->find(asn);
  if (idx == topo::AsIndex::kInvalid || slots_[idx].path == kNoRoute)
    return std::nullopt;
  return view(idx);
}

PrefixRib::RouteView PrefixRib::at(Asn asn) const {
  auto v = find(asn);
  if (!v) throw std::out_of_range("no route for AS " + std::to_string(asn));
  return *v;
}

void PrefixRib::for_each(
    const std::function<void(Asn, const RouteView&)>& fn) const {
  for (std::uint32_t idx = 0; idx < slots_.size(); ++idx) {
    if (slots_[idx].path == kNoRoute) continue;
    fn(index_->asn_at(idx), view(idx));
  }
}

std::size_t PrefixRib::memory_bytes() const noexcept {
  return slots_.capacity() * sizeof(Slot) +
         comm_arena_.capacity() * sizeof(Community) +
         large_arena_.capacity() * sizeof(bgp::LargeCommunity);
}

void PrefixRib::reintern(bgp::PathTable& master,
                         std::shared_ptr<const bgp::PathTable> handle) {
  for (Slot& s : slots_) {
    if (s.path == kNoRoute) continue;
    s.path = master.intern_sequence(paths_->asns(s.path));
  }
  paths_ = std::move(handle);
}

bool operator==(const PrefixRib& a, const PrefixRib& b) {
  if (a.rounds_ != b.rounds_ || a.valid_count_ != b.valid_count_ ||
      a.slots_.size() != b.slots_.size())
    return false;
  if (a.index_ != b.index_) {
    const auto lhs = a.index_ ? a.index_->asns() : std::span<const Asn>{};
    const auto rhs = b.index_ ? b.index_->asns() : std::span<const Asn>{};
    if (!std::equal(lhs.begin(), lhs.end(), rhs.begin(), rhs.end()))
      return false;
  }
  for (std::uint32_t idx = 0; idx < a.slots_.size(); ++idx) {
    const bool va = a.slots_[idx].path != PrefixRib::kNoRoute;
    const bool vb = b.slots_[idx].path != PrefixRib::kNoRoute;
    if (va != vb) return false;
    if (!va) continue;
    const auto ra = a.view(idx);
    const auto rb = b.view(idx);
    if (ra.learned_from != rb.learned_from ||
        ra.local_pref != rb.local_pref ||
        !std::equal(ra.path.begin(), ra.path.end(), rb.path.begin(),
                    rb.path.end()) ||
        !std::equal(ra.communities.begin(), ra.communities.end(),
                    rb.communities.begin(), rb.communities.end()) ||
        !std::equal(ra.large_communities.begin(), ra.large_communities.end(),
                    rb.large_communities.begin(), rb.large_communities.end()))
      return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Simulator

Simulator::Simulator(const topo::Topology& topo, const PolicySet& policies)
    : topo_(&topo),
      policies_(&policies),
      index_(std::make_shared<topo::AsIndex>(topo.graph)) {
  const std::size_t n = index_->size();
  policy_of_.resize(n);
  strips_.resize(n);
  arc_begin_.assign(n + 1, 0);
  std::size_t total = 0;
  for (std::uint32_t i = 0; i < n; ++i)
    total += topo_->graph.neighbors(index_->asn_at(i)).size();
  arcs_.reserve(total);
  for (std::uint32_t i = 0; i < n; ++i) {
    const Asn asn = index_->asn_at(i);
    policy_of_[i] = policies_->find(asn);
    const topo::AsNode* node = topo_->graph.find(asn);
    strips_[i] = node != nullptr && node->strips_communities ? 1 : 0;
    for (const topo::Adjacency& adj : topo_->graph.neighbors(asn)) {
      Arc arc;
      arc.neighbor = index_->find(adj.neighbor);
      arc.adj = adj;
      arc.reverse = topo::Adjacency{asn, topo::invert(adj.rel), adj.where,
                                    adj.via_route_server};
      if (adj.via_route_server)
        arc.rs_policy = policies_->find(*adj.via_route_server);
      arcs_.push_back(std::move(arc));
    }
    arc_begin_[i + 1] = static_cast<std::uint32_t>(arcs_.size());
  }

  // Wavefront schedule: level(i) = 1 + max level of i's lower-ordinal
  // neighbors (0 when none).  Processing levels in order reproduces an
  // ascending Gauss-Seidel sweep exactly — every adjacent pair is split
  // across levels, lower ordinal first.
  std::vector<std::uint32_t> level_of(n, 0);
  std::uint32_t max_level = 0;
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::uint32_t a = arc_begin_[i]; a < arc_begin_[i + 1]; ++a) {
      const std::uint32_t nb = arcs_[a].neighbor;
      if (nb < i) level_of[i] = std::max(level_of[i], level_of[nb] + 1);
    }
    max_level = std::max(max_level, level_of[i]);
  }
  level_begin_.assign(max_level + 2, 0);
  for (std::uint32_t i = 0; i < n; ++i) ++level_begin_[level_of[i] + 1];
  for (std::size_t l = 1; l < level_begin_.size(); ++l)
    level_begin_[l] += level_begin_[l - 1];
  level_members_.resize(n);
  std::vector<std::uint32_t> cursor(level_begin_.begin(),
                                    level_begin_.end() - 1);
  for (std::uint32_t i = 0; i < n; ++i)
    level_members_[cursor[level_of[i]]++] = i;
}

Simulator::ExportedRoute Simulator::export_route(
    const WorkRoute& best, std::uint32_t from,
    const topo::Adjacency& to_adj) const {
  ExportedRoute out;
  if (!best.valid) return out;

  // Valley-free: routes learned from peers/providers go to customers and
  // siblings only.  (learned_rel caches the graph relationship to
  // learned_from, recorded at import time.)
  if (best.learned_from != 0) {
    const bool from_down = best.learned_rel == RelFrom::kCustomer ||
                           best.learned_rel == RelFrom::kSibling;
    const bool to_down = to_adj.rel == RelFrom::kCustomer ||
                         to_adj.rel == RelFrom::kSibling;
    if (!from_down && !to_down) return out;
  }

  const Asn from_asn = index_->asn_at(from);

  // Honor this AS's own action communities.
  std::uint8_t extra_prepends = 0;
  const CommunityPolicy* policy = policy_of_[from];
  if (policy != nullptr) {
    for (const Community c : best.communities) {
      if (c.alpha() != from_asn) continue;
      const ActionSpec* spec = policy->action_for(c.beta());
      if (spec == nullptr) continue;
      switch (spec->type) {
        case ActionType::kNoExportAll:
          return out;
        case ActionType::kNoExportToAs:
          if (spec->target_as == to_adj.neighbor &&
              region_matches(*spec, to_adj.where))
            return out;
          break;
        case ActionType::kPrependToAs:
          if (spec->target_as == to_adj.neighbor &&
              region_matches(*spec, to_adj.where))
            extra_prepends =
                static_cast<std::uint8_t>(extra_prepends + spec->prepend_count);
          break;
        case ActionType::kAnnounceToAs:  // default policy already announces
        case ActionType::kSetLocalPref:  // honored at import
        case ActionType::kBlackhole:     // honored at import
          break;
      }
    }
  }

  // Large-community no-export action (RFC 8092 policies).
  if (policy != nullptr && policy->emit_large) {
    for (const bgp::LargeCommunity& c : best.large_communities)
      if (c.alpha() == from_asn && c.beta() == kLargeNoExportFunction &&
          c.gamma() == to_adj.neighbor)
        return out;
  }

  out.path.reserve(best.path.size() + extra_prepends);
  out.path.insert(out.path.end(), extra_prepends, from_asn);
  out.path.insert(out.path.end(), best.path.begin(), best.path.end());
  if (!strips_[from]) {
    out.communities = best.communities;
    out.large_communities = best.large_communities;
  }
  out.valid = true;
  return out;
}

Simulator::WorkRoute Simulator::import_route(ExportedRoute route,
                                             std::uint32_t to,
                                             const Arc& from_arc,
                                             bool rov_valid) const {
  WorkRoute out;
  if (!route.valid) return out;
  const Asn to_asn = index_->asn_at(to);
  // Loop prevention.
  if (std::find(route.path.begin(), route.path.end(), to_asn) !=
      route.path.end())
    return out;

  const topo::Adjacency& from_adj = from_arc.adj;
  std::uint32_t local_pref = 0;
  switch (from_adj.rel) {
    case RelFrom::kCustomer: local_pref = kPrefCustomer; break;
    case RelFrom::kSibling: local_pref = kPrefSibling; break;
    case RelFrom::kPeer: local_pref = kPrefPeer; break;
    case RelFrom::kProvider: local_pref = kPrefProvider; break;
  }

  out.communities = std::move(route.communities);
  out.large_communities = std::move(route.large_communities);
  const CommunityPolicy* policy = policy_of_[to];
  if (policy != nullptr) {
    // Honor blackhole / set-local-pref addressed to this AS.
    for (const Community c : out.communities) {
      if (c.alpha() != to_asn) continue;
      const ActionSpec* spec = policy->action_for(c.beta());
      if (spec == nullptr) continue;
      if (spec->type == ActionType::kBlackhole) return WorkRoute{};
      if (spec->type == ActionType::kSetLocalPref)
        local_pref = spec->local_pref;
    }
    // Attach information communities at ingress.
    if (const auto geo = policy->geo_community(
            from_adj.where, from_adj.neighbor,
            topo_->config.cities_per_region))
      out.communities.push_back(*geo);
    if (const auto rel = policy->relationship_community(from_adj.rel))
      out.communities.push_back(*rel);
    if (const auto rov = policy->rov_community(rov_valid))
      out.communities.push_back(*rov);
    if (policy->emit_large) {
      // Mirror the geo / relationship tags as large communities: the
      // function selector picks the meaning, gamma carries the argument.
      const std::uint32_t geo_code =
          static_cast<std::uint32_t>(from_adj.where.region) * 1000 +
          from_adj.where.city;
      out.large_communities.push_back(
          bgp::LargeCommunity(to_asn, kLargeGeoFunction, geo_code));
      out.large_communities.push_back(bgp::LargeCommunity(
          to_asn, kLargeRelFunction, static_cast<std::uint32_t>(from_adj.rel)));
    }
  }
  // IXP route server tagging: the RS adds its own per-member community but
  // never appears in the path.
  if (from_adj.via_route_server && from_arc.rs_policy != nullptr) {
    if (const auto tag = from_arc.rs_policy->geo_community(
            from_adj.where, from_adj.neighbor, topo_->config.cities_per_region))
      out.communities.push_back(*tag);
  }
  sort_unique(out.communities);
  sort_unique(out.large_communities);

  out.path.reserve(route.path.size() + 1);
  out.path.push_back(to_asn);
  out.path.insert(out.path.end(), route.path.begin(), route.path.end());
  out.learned_from = from_adj.neighbor;
  out.learned_rel = from_adj.rel;
  out.local_pref = local_pref;
  out.valid = true;
  return out;
}

bool Simulator::better(const WorkRoute& candidate,
                       const WorkRoute& incumbent) noexcept {
  if (candidate.valid != incumbent.valid) return candidate.valid;
  if (!candidate.valid) return false;
  if (candidate.local_pref != incumbent.local_pref)
    return candidate.local_pref > incumbent.local_pref;
  if (candidate.path.size() != incumbent.path.size())
    return candidate.path.size() < incumbent.path.size();
  if (candidate.learned_from != incumbent.learned_from)
    return candidate.learned_from < incumbent.learned_from;
  return candidate.path < incumbent.path;
}

std::uint32_t Simulator::relax(const Announcement& announcement, Workspace& ws,
                               util::ThreadPool* pool) const {
  const std::size_t n = index_->size();
  if (ws.state.size() != n) {
    ws.state.assign(n, WorkRoute{});
    ws.marked = std::make_unique<std::atomic<std::uint8_t>[]>(n);
    for (std::size_t i = 0; i < n; ++i)
      ws.marked[i].store(0, std::memory_order_relaxed);
    ws.marked_size = n;
  } else {
    // Lazy reset: only ordinals holding a route from the previous
    // announcement (stale payloads behind valid == false are never read).
    for (const std::uint32_t idx : ws.live) ws.state[idx].valid = false;
  }
  ws.live.clear();
  ws.pending.store(0, std::memory_order_relaxed);

  const std::uint32_t origin = index_->find(announcement.origin);
  if (origin == topo::AsIndex::kInvalid) return 0;
  const bool rov_valid = rov_outcome(announcement);

  WorkRoute& seed = ws.state[origin];
  seed.path.assign(1, announcement.origin);
  seed.communities = announcement.communities;
  seed.large_communities = announcement.large_communities;
  sort_unique(seed.communities);
  sort_unique(seed.large_communities);
  seed.learned_from = 0;
  seed.local_pref = kPrefOrigin;
  seed.valid = true;

  std::uint32_t initial = 0;
  for (std::uint32_t a = arc_begin_[origin]; a < arc_begin_[origin + 1]; ++a) {
    ws.marked[arcs_[a].neighbor].store(1, std::memory_order_relaxed);
    ++initial;
  }
  ws.pending.store(initial, std::memory_order_relaxed);

  std::uint32_t rounds = 0;
  while (ws.pending.load(std::memory_order_relaxed) > 0 &&
         rounds < static_cast<std::uint32_t>(kMaxRounds)) {
    ++rounds;
    // One ascending Gauss-Seidel sweep, wave by wave.  A wave's members
    // are pairwise non-adjacent, so they read disjoint neighbourhoods and
    // may run concurrently; marks raised by a wave always target other
    // waves (later ones continue this sweep, earlier ones wait for the
    // next).  Skipping unmarked ASes cannot change the sweep's outcome —
    // re-evaluating an AS whose neighbours did not change is a no-op.
    for (std::size_t level = 0; level + 1 < level_begin_.size(); ++level) {
      const std::uint32_t mb = level_begin_[level];
      const std::size_t count = level_begin_[level + 1] - mb;
      auto body = [&, mb](std::size_t begin, std::size_t end) {
        for (std::size_t k = begin; k < end; ++k) {
          const std::uint32_t idx = level_members_[mb + k];
          if (!ws.marked[idx].load(std::memory_order_relaxed)) continue;
          ws.marked[idx].store(0, std::memory_order_relaxed);
          ws.pending.fetch_sub(1, std::memory_order_relaxed);
          WorkRoute best;
          for (std::uint32_t a = arc_begin_[idx]; a < arc_begin_[idx + 1];
               ++a) {
            const Arc& arc = arcs_[a];
            const WorkRoute& nb = ws.state[arc.neighbor];
            if (!nb.valid) continue;
            WorkRoute candidate =
                import_route(export_route(nb, arc.neighbor, arc.reverse), idx,
                             arc, rov_valid);
            if (better(candidate, best)) best = std::move(candidate);
          }
          if (best == ws.state[idx]) continue;
          ws.state[idx] = std::move(best);
          for (std::uint32_t a = arc_begin_[idx]; a < arc_begin_[idx + 1];
               ++a) {
            const std::uint32_t nb = arcs_[a].neighbor;
            if (nb == origin) continue;  // the origin's route is pinned
            if (ws.marked[nb].exchange(1, std::memory_order_relaxed) == 0)
              ws.pending.fetch_add(1, std::memory_order_relaxed);
          }
        }
      };
      if (pool != nullptr && count > 1)
        pool->parallel_for(count, body);
      else if (count > 0)
        body(0, count);
    }
  }

  if (ws.pending.load(std::memory_order_relaxed) != 0) {
    // The round cap fired mid-dispute: marks are still raised.  They must
    // not leak into the next announcement that reuses this workspace — a
    // stale mark would be decremented from a pending count that never
    // included it, truncating that announcement's fixed point.
    for (std::size_t i = 0; i < n; ++i)
      ws.marked[i].store(0, std::memory_order_relaxed);
    ws.pending.store(0, std::memory_order_relaxed);
  }

  for (std::uint32_t i = 0; i < n; ++i)
    if (ws.state[i].valid) ws.live.push_back(i);
  return rounds;
}

PrefixRib Simulator::compact(
    const Workspace& ws, std::uint32_t rounds,
    const std::shared_ptr<bgp::PathTable>& table) const {
  PrefixRib rib;
  rib.index_ = index_;
  rib.paths_ = table;
  rib.rounds_ = rounds;
  rib.slots_.assign(index_->size(), PrefixRib::Slot{});

  // Intern in ascending ordinal order (ws.live is ascending): the sequence
  // of intern_sequence calls — and thus the PathIds — depends only on the
  // fixed point.
  std::size_t comm_total = 0;
  std::size_t large_total = 0;
  for (const std::uint32_t idx : ws.live) {
    const WorkRoute& r = ws.state[idx];
    comm_total += r.communities.size();
    large_total += r.large_communities.size();
  }
  rib.comm_arena_.reserve(comm_total);
  rib.large_arena_.reserve(large_total);
  for (const std::uint32_t idx : ws.live) {
    const WorkRoute& r = ws.state[idx];
    PrefixRib::Slot s;
    s.path = table->intern_sequence(r.path);
    s.comm_begin = static_cast<std::uint32_t>(rib.comm_arena_.size());
    s.comm_count = static_cast<std::uint16_t>(r.communities.size());
    rib.comm_arena_.insert(rib.comm_arena_.end(), r.communities.begin(),
                           r.communities.end());
    s.large_begin = static_cast<std::uint32_t>(rib.large_arena_.size());
    s.large_count = static_cast<std::uint16_t>(r.large_communities.size());
    rib.large_arena_.insert(rib.large_arena_.end(),
                            r.large_communities.begin(),
                            r.large_communities.end());
    s.learned_from = r.learned_from;
    s.local_pref = r.local_pref;
    rib.slots_[idx] = s;
    ++rib.valid_count_;
  }
  return rib;
}

PrefixRib Simulator::propagate(const Announcement& announcement) const {
  Workspace ws;
  const std::uint32_t rounds = relax(announcement, ws, nullptr);
  return compact(ws, rounds, std::make_shared<bgp::PathTable>());
}

PrefixRib Simulator::propagate(const Announcement& announcement,
                               util::ThreadPool& pool) const {
  Workspace ws;
  const std::uint32_t rounds = relax(announcement, ws, &pool);
  return compact(ws, rounds, std::make_shared<bgp::PathTable>());
}

Simulator::RibSet Simulator::propagate_all(
    std::span<const Announcement> announcements, util::ThreadPool* pool) const {
  RibSet out;
  out.ribs.resize(announcements.size());
  // Chunk-local-then-reintern (the MrtIngest::add_parallel idiom): each
  // chunk interns into a private table; the merge below re-interns every
  // rib into the shared table in announcement order, which is independent
  // of the chunking.
  auto chunk = [&](std::size_t begin, std::size_t end) {
    auto local = std::make_shared<bgp::PathTable>();
    Workspace ws;
    for (std::size_t i = begin; i < end; ++i) {
      const std::uint32_t rounds = relax(announcements[i], ws, nullptr);
      out.ribs[i] = compact(ws, rounds, local);
    }
  };
  if (pool != nullptr && announcements.size() > 1)
    pool->parallel_for(announcements.size(), chunk);
  else if (!announcements.empty())
    chunk(0, announcements.size());

  auto master = std::make_shared<bgp::PathTable>();
  for (PrefixRib& rib : out.ribs)
    rib.reintern(*master, std::shared_ptr<const bgp::PathTable>(master));
  out.paths = std::move(master);
  return out;
}

// ---------------------------------------------------------------------------
// Collector

Collector::Collector(const topo::Topology& topo, const PolicySet& policies,
                     std::vector<Asn> vantage_points)
    : simulator_(topo, policies), vantage_points_(std::move(vantage_points)) {
  std::sort(vantage_points_.begin(), vantage_points_.end());
  vantage_points_.erase(
      std::unique(vantage_points_.begin(), vantage_points_.end()),
      vantage_points_.end());
}

std::vector<bgp::RibEntry> Collector::collect(
    const std::vector<Announcement>& announcements,
    util::ThreadPool* pool) const {
  std::vector<std::pair<Asn, std::uint32_t>> vps;  // (asn, ordinal)
  vps.reserve(vantage_points_.size());
  for (const Asn vp : vantage_points_) {
    const std::uint32_t idx = simulator_.index().find(vp);
    if (idx != topo::AsIndex::kInvalid) vps.emplace_back(vp, idx);
  }

  // Entries are gathered per announcement and concatenated in announcement
  // order, so the chunking cannot affect the output.  The collector reads
  // the fixed point straight out of the relaxation workspace — no per-
  // prefix rib is materialized.
  std::vector<std::vector<bgp::RibEntry>> per_announcement(
      announcements.size());
  auto chunk = [&](std::size_t begin, std::size_t end) {
    Simulator::Workspace ws;
    for (std::size_t i = begin; i < end; ++i) {
      simulator_.relax(announcements[i], ws, nullptr);
      auto& entries = per_announcement[i];
      for (const auto& [vp, idx] : vps) {
        const Simulator::WorkRoute& r = ws.state[idx];
        if (!r.valid) continue;
        bgp::RibEntry entry;
        entry.vantage_point.asn = vp;
        entry.vantage_point.address = 0xc0000000u | (vp & 0xffffffu);
        entry.route.prefix = announcements[i].prefix;
        entry.route.path = bgp::AsPath(r.path);
        entry.route.communities = r.communities;
        entry.route.large_communities = r.large_communities;
        entry.route.next_hop = entry.vantage_point.address;
        entries.push_back(std::move(entry));
      }
    }
  };
  if (pool != nullptr && announcements.size() > 1)
    pool->parallel_for(announcements.size(), chunk);
  else if (!announcements.empty())
    chunk(0, announcements.size());

  std::size_t total = 0;
  for (const auto& entries : per_announcement) total += entries.size();
  std::vector<bgp::RibEntry> out;
  out.reserve(total);
  for (auto& entries : per_announcement)
    for (auto& entry : entries) out.push_back(std::move(entry));
  return out;
}

}  // namespace bgpintent::routing
