#include "routing/simulator.hpp"

#include <algorithm>

namespace bgpintent::routing {

namespace {

using topo::RelFrom;

constexpr std::uint32_t kPrefOrigin = 1000;
constexpr std::uint32_t kPrefCustomer = 300;
constexpr std::uint32_t kPrefSibling = 300;
constexpr std::uint32_t kPrefPeer = 200;
constexpr std::uint32_t kPrefProvider = 100;

bool region_matches(const ActionSpec& spec, topo::Location where) noexcept {
  return spec.target_region == kAnyRegion || spec.target_region == where.region;
}

/// Deterministic per-announcement ROV outcome (~86% valid).
bool rov_outcome(const Announcement& announcement) noexcept {
  const std::uint64_t key =
      (static_cast<std::uint64_t>(announcement.origin) << 32) ^
      announcement.prefix.address();
  return (key * 0x9e3779b97f4a7c15ULL >> 61) != 3;
}

}  // namespace

Simulator::Simulator(const topo::Topology& topo, const PolicySet& policies)
    : topo_(&topo), policies_(&policies) {}

Simulator::ExportedRoute Simulator::export_route(
    const RibRoute& best, Asn from, const topo::Adjacency& to_adj) const {
  ExportedRoute out;
  if (!best.valid) return out;

  // Valley-free: routes learned from peers/providers go to customers and
  // siblings only.
  if (best.learned_from != 0) {
    const auto learned_rel = topo_->graph.relationship(from, best.learned_from);
    const bool from_down = learned_rel == RelFrom::kCustomer ||
                           learned_rel == RelFrom::kSibling;
    const bool to_down = to_adj.rel == RelFrom::kCustomer ||
                         to_adj.rel == RelFrom::kSibling;
    if (!from_down && !to_down) return out;
  }

  // Honor this AS's own action communities.
  std::uint8_t extra_prepends = 0;
  const CommunityPolicy* policy = policies_->find(from);
  if (policy != nullptr) {
    for (const Community c : best.communities) {
      if (c.alpha() != from) continue;
      const ActionSpec* spec = policy->action_for(c.beta());
      if (spec == nullptr) continue;
      switch (spec->type) {
        case ActionType::kNoExportAll:
          return out;
        case ActionType::kNoExportToAs:
          if (spec->target_as == to_adj.neighbor &&
              region_matches(*spec, to_adj.where))
            return out;
          break;
        case ActionType::kPrependToAs:
          if (spec->target_as == to_adj.neighbor &&
              region_matches(*spec, to_adj.where))
            extra_prepends =
                static_cast<std::uint8_t>(extra_prepends + spec->prepend_count);
          break;
        case ActionType::kAnnounceToAs:  // default policy already announces
        case ActionType::kSetLocalPref:  // honored at import
        case ActionType::kBlackhole:     // honored at import
          break;
      }
    }
  }

  // Large-community no-export action (RFC 8092 policies).
  if (policy != nullptr && policy->emit_large) {
    for (const bgp::LargeCommunity& c : best.large_communities)
      if (c.alpha() == from && c.beta() == kLargeNoExportFunction &&
          c.gamma() == to_adj.neighbor)
        return out;
  }

  out.path.reserve(best.path.size() + extra_prepends);
  out.path.insert(out.path.end(), extra_prepends, from);
  out.path.insert(out.path.end(), best.path.begin(), best.path.end());
  const topo::AsNode* node = topo_->graph.find(from);
  if (node == nullptr || !node->strips_communities) {
    out.communities = best.communities;
    out.large_communities = best.large_communities;
  }
  out.valid = true;
  return out;
}

RibRoute Simulator::import_route(ExportedRoute route, Asn to,
                                 const topo::Adjacency& from_adj,
                                 bool rov_valid) const {
  RibRoute out;
  if (!route.valid) return out;
  // Loop prevention.
  if (std::find(route.path.begin(), route.path.end(), to) != route.path.end())
    return out;

  std::uint32_t local_pref = 0;
  switch (from_adj.rel) {
    case RelFrom::kCustomer: local_pref = kPrefCustomer; break;
    case RelFrom::kSibling: local_pref = kPrefSibling; break;
    case RelFrom::kPeer: local_pref = kPrefPeer; break;
    case RelFrom::kProvider: local_pref = kPrefProvider; break;
  }

  out.communities = std::move(route.communities);
  out.large_communities = std::move(route.large_communities);
  const CommunityPolicy* policy = policies_->find(to);
  if (policy != nullptr) {
    // Honor blackhole / set-local-pref addressed to this AS.
    for (const Community c : out.communities) {
      if (c.alpha() != to) continue;
      const ActionSpec* spec = policy->action_for(c.beta());
      if (spec == nullptr) continue;
      if (spec->type == ActionType::kBlackhole) return RibRoute{};
      if (spec->type == ActionType::kSetLocalPref)
        local_pref = spec->local_pref;
    }
    // Attach information communities at ingress.
    if (const auto geo = policy->geo_community(
            from_adj.where, from_adj.neighbor,
            topo_->config.cities_per_region))
      out.communities.push_back(*geo);
    if (const auto rel = policy->relationship_community(from_adj.rel))
      out.communities.push_back(*rel);
    if (const auto rov = policy->rov_community(rov_valid))
      out.communities.push_back(*rov);
    if (policy->emit_large) {
      // Mirror the geo / relationship tags as large communities: the
      // function selector picks the meaning, gamma carries the argument.
      const std::uint32_t geo_code =
          static_cast<std::uint32_t>(from_adj.where.region) * 1000 +
          from_adj.where.city;
      out.large_communities.push_back(
          bgp::LargeCommunity(to, kLargeGeoFunction, geo_code));
      out.large_communities.push_back(bgp::LargeCommunity(
          to, kLargeRelFunction, static_cast<std::uint32_t>(from_adj.rel)));
    }
  }
  // IXP route server tagging: the RS adds its own per-member community but
  // never appears in the path.
  if (from_adj.via_route_server) {
    if (const CommunityPolicy* rs = policies_->find(*from_adj.via_route_server))
      if (const auto tag = rs->geo_community(from_adj.where, from_adj.neighbor,
                                             topo_->config.cities_per_region))
        out.communities.push_back(*tag);
  }
  std::sort(out.communities.begin(), out.communities.end());
  out.communities.erase(
      std::unique(out.communities.begin(), out.communities.end()),
      out.communities.end());
  std::sort(out.large_communities.begin(), out.large_communities.end());
  out.large_communities.erase(
      std::unique(out.large_communities.begin(), out.large_communities.end()),
      out.large_communities.end());

  out.path.reserve(route.path.size() + 1);
  out.path.push_back(to);
  out.path.insert(out.path.end(), route.path.begin(), route.path.end());
  out.learned_from = from_adj.neighbor;
  out.local_pref = local_pref;
  out.valid = true;
  return out;
}

bool Simulator::better(const RibRoute& candidate,
                       const RibRoute& incumbent) noexcept {
  if (candidate.valid != incumbent.valid) return candidate.valid;
  if (!candidate.valid) return false;
  if (candidate.local_pref != incumbent.local_pref)
    return candidate.local_pref > incumbent.local_pref;
  if (candidate.path.size() != incumbent.path.size())
    return candidate.path.size() < incumbent.path.size();
  if (candidate.learned_from != incumbent.learned_from)
    return candidate.learned_from < incumbent.learned_from;
  return candidate.path < incumbent.path;
}

PrefixRib Simulator::propagate(const Announcement& announcement) const {
  PrefixRib rib;
  if (!topo_->graph.contains(announcement.origin)) return rib;
  const bool rov_valid = rov_outcome(announcement);

  RibRoute origin_route;
  origin_route.path = {announcement.origin};
  origin_route.communities = announcement.communities;
  origin_route.large_communities = announcement.large_communities;
  std::sort(origin_route.communities.begin(), origin_route.communities.end());
  origin_route.communities.erase(
      std::unique(origin_route.communities.begin(),
                  origin_route.communities.end()),
      origin_route.communities.end());
  std::sort(origin_route.large_communities.begin(),
            origin_route.large_communities.end());
  origin_route.large_communities.erase(
      std::unique(origin_route.large_communities.begin(),
                  origin_route.large_communities.end()),
      origin_route.large_communities.end());
  origin_route.learned_from = 0;
  origin_route.local_pref = kPrefOrigin;
  origin_route.valid = true;
  rib[announcement.origin] = std::move(origin_route);

  const std::vector<Asn> order = topo_->graph.all_asns();
  for (int round = 0; round < kMaxRounds; ++round) {
    bool changed = false;
    for (const Asn asn : order) {
      if (asn == announcement.origin) continue;
      RibRoute best;  // invalid
      for (const topo::Adjacency& adj : topo_->graph.neighbors(asn)) {
        const auto it = rib.find(adj.neighbor);
        if (it == rib.end() || !it->second.valid) continue;
        // The neighbor's view of this edge (for its export decision).
        const topo::Adjacency reverse{asn, topo::invert(adj.rel), adj.where,
                                      adj.via_route_server};
        ExportedRoute exported =
            export_route(it->second, adj.neighbor, reverse);
        RibRoute candidate =
            import_route(std::move(exported), asn, adj, rov_valid);
        if (better(candidate, best)) best = std::move(candidate);
      }
      auto& current = rib[asn];
      if (current != best) {
        current = std::move(best);
        changed = true;
      }
    }
    if (!changed) break;
  }
  // Drop invalid placeholder rows.
  for (auto it = rib.begin(); it != rib.end();)
    it = it->second.valid ? std::next(it) : rib.erase(it);
  return rib;
}

Collector::Collector(const topo::Topology& topo, const PolicySet& policies,
                     std::vector<Asn> vantage_points)
    : simulator_(topo, policies), vantage_points_(std::move(vantage_points)) {
  std::sort(vantage_points_.begin(), vantage_points_.end());
  vantage_points_.erase(
      std::unique(vantage_points_.begin(), vantage_points_.end()),
      vantage_points_.end());
}

std::vector<bgp::RibEntry> Collector::collect(
    const std::vector<Announcement>& announcements) const {
  std::vector<bgp::RibEntry> entries;
  for (const Announcement& announcement : announcements) {
    const PrefixRib rib = simulator_.propagate(announcement);
    for (const Asn vp : vantage_points_) {
      const auto it = rib.find(vp);
      if (it == rib.end()) continue;
      bgp::RibEntry entry;
      entry.vantage_point.asn = vp;
      entry.vantage_point.address = 0xc0000000u | (vp & 0xffffffu);
      entry.route.prefix = announcement.prefix;
      entry.route.path = bgp::AsPath(it->second.path);
      entry.route.communities = it->second.communities;
      entry.route.large_communities = it->second.large_communities;
      entry.route.next_hop = entry.vantage_point.address;
      entries.push_back(std::move(entry));
    }
  }
  return entries;
}

}  // namespace bgpintent::routing
