#include "routing/policy.hpp"

#include <algorithm>
#include <array>
#include <string>

namespace bgpintent::routing {

namespace {

using topo::RelFrom;
using topo::Tier;

/// Region index -> leading digit of export-control betas, echoing
/// Arelion's 2 = Europe, 5 = North America, 7 = Asia-Pacific convention.
constexpr std::array<std::uint16_t, 8> kRegionDigit{2, 5, 7, 3, 4, 6, 8, 9};

std::uint16_t region_digit(std::uint8_t region) noexcept {
  return kRegionDigit[region % kRegionDigit.size()];
}

}  // namespace

std::optional<Community> CommunityPolicy::geo_community(
    topo::Location where, std::uint32_t port,
    std::uint16_t cities_per_region) const noexcept {
  if (!geo_base) return std::nullopt;
  const std::uint32_t block =
      static_cast<std::uint32_t>(where.region) * cities_per_region + where.city;
  const std::uint32_t beta = *geo_base + block * geo_block_width +
                             port % geo_block_width;
  if (beta > 0xffff) return std::nullopt;
  return Community(static_cast<std::uint16_t>(asn),
                   static_cast<std::uint16_t>(beta));
}

std::optional<Community> CommunityPolicy::relationship_community(
    topo::RelFrom rel) const noexcept {
  if (!rel_base) return std::nullopt;
  std::uint16_t code = 0;
  switch (rel) {
    case RelFrom::kCustomer: code = 0; break;  // learned from customer
    case RelFrom::kPeer: code = 1; break;
    case RelFrom::kProvider: code = 2; break;
    case RelFrom::kSibling: code = 3; break;
  }
  return Community(static_cast<std::uint16_t>(asn),
                   static_cast<std::uint16_t>(*rel_base + code));
}

std::optional<Community> CommunityPolicy::rov_community(bool valid) const noexcept {
  if (!rov_base) return std::nullopt;
  return Community(static_cast<std::uint16_t>(asn),
                   static_cast<std::uint16_t>(*rov_base + (valid ? 0 : 1)));
}

const ActionSpec* CommunityPolicy::action_for(std::uint16_t beta) const noexcept {
  auto it = actions.find(beta);
  return it == actions.end() ? nullptr : &it->second;
}

std::vector<Community> CommunityPolicy::offered_actions() const {
  std::vector<Community> out;
  out.reserve(actions.size());
  for (const auto& [beta, spec] : actions)
    out.emplace_back(static_cast<std::uint16_t>(asn), beta);
  return out;
}

const CommunityPolicy* PolicySet::find(Asn asn) const noexcept {
  auto it = policies.find(asn);
  return it == policies.end() ? nullptr : &it->second;
}

namespace {

/// Builds the full policy + published dictionary for one transit AS.
void build_transit_policy(const topo::Topology& topo, const PolicyConfig& cfg,
                          util::Rng& rng, Asn asn, PolicySet& out) {
  CommunityPolicy policy;
  policy.asn = asn;
  auto& dict = out.ground_truth.dictionary_for(static_cast<std::uint16_t>(asn));
  const auto alpha = static_cast<std::uint16_t>(asn);
  auto pattern = [alpha](const std::string& beta_pattern) {
    return dict::CommunityPattern::from_parts(
        alpha, dict::BetaPattern::compile(beta_pattern));
  };

  if (rng.chance(cfg.with_local_pref)) {
    policy.actions[50] =
        ActionSpec{ActionType::kSetLocalPref, 0, kAnyRegion, 0, 50};
    policy.actions[150] =
        ActionSpec{ActionType::kSetLocalPref, 0, kAnyRegion, 0, 150};
    dict.add(pattern("50"), dict::Category::kSetLocalPref,
             "set local preference 50");
    dict.add(pattern("150"), dict::Category::kSetLocalPref,
             "set local preference 150");
  }
  policy.emit_large = rng.chance(cfg.with_large);
  if (rng.chance(cfg.with_rov)) {
    policy.rov_base = cfg.rov_base;
    dict.add(pattern("430-431"), dict::Category::kRovStatus,
             "RPKI origin validation status");
  }
  if (rng.chance(cfg.with_blackhole)) {
    policy.actions[666] =
        ActionSpec{ActionType::kBlackhole, 0, kAnyRegion, 0, 0};
    dict.add(pattern("666"), dict::Category::kBlackhole, "blackhole");
  }

  if (rng.chance(cfg.with_export_control)) {
    // Targets: this AS's transit peers (fallback: providers).
    auto targets = topo.graph.neighbors_with(asn, RelFrom::kPeer);
    if (targets.empty())
      targets = topo.graph.neighbors_with(asn, RelFrom::kProvider);
    targets.resize(
        std::min<std::size_t>(targets.size(), cfg.export_control_targets));
    const auto& presence = topo.graph.find(asn)->presence;
    for (const topo::Location& loc : presence) {
      const std::uint16_t digit = region_digit(loc.region);
      for (std::size_t t = 0; t < targets.size(); ++t) {
        const auto base =
            static_cast<std::uint16_t>(digit * 1000 + (t + 1) * 10);
        for (std::uint8_t x = 1; x <= 3; ++x)
          policy.actions[static_cast<std::uint16_t>(base + x)] = ActionSpec{
              ActionType::kPrependToAs, targets[t], loc.region, x, 0};
        policy.actions[static_cast<std::uint16_t>(base + 9)] = ActionSpec{
            ActionType::kNoExportToAs, targets[t], loc.region, 0, 0};
        policy.actions[base] = ActionSpec{ActionType::kAnnounceToAs,
                                          targets[t], loc.region, 0, 0};
      }
      const std::string d = std::to_string(digit);
      dict.add(pattern(d + "\\d\\d[123]"), dict::Category::kPrepend,
               "prepend 1-3x toward peer in region " + d);
      dict.add(pattern(d + "\\d\\d9"), dict::Category::kSuppressToAs,
               "do not export to peer in region " + d);
      dict.add(pattern(d + "\\d\\d0"), dict::Category::kAnnounceToAs,
               "announce to peer in region " + d);
    }
  }

  if (rng.chance(cfg.with_geo)) {
    policy.geo_base = cfg.geo_base;
    policy.geo_block_width = cfg.geo_block_width;
    // One published range per (region, city) block this AS is present in;
    // operators document blocks, not individual PoP values.
    const auto cities = topo.config.cities_per_region;
    for (const topo::Location& loc : topo.graph.find(asn)->presence) {
      const std::uint32_t block =
          static_cast<std::uint32_t>(loc.region) * cities + loc.city;
      const std::uint32_t lo = cfg.geo_base + block * cfg.geo_block_width;
      const std::uint32_t hi = lo + cfg.geo_block_width - 1;
      if (hi > 0xffff) continue;
      dict.add(pattern(std::to_string(lo) + "-" + std::to_string(hi)),
               dict::Category::kLocationCity,
               "learned in region " + std::to_string(loc.region) + " city " +
                   std::to_string(loc.city));
    }
  }
  if (rng.chance(cfg.with_relationship)) {
    policy.rel_base = cfg.rel_base;
    dict.add(pattern(std::to_string(cfg.rel_base) + "-" +
                     std::to_string(cfg.rel_base + 3)),
             dict::Category::kRelationship, "relationship with neighbor");
  }

  out.policies.emplace(asn, std::move(policy));
}

/// Stub policy: a small origin-tag block (information only).
void build_stub_policy(const PolicyConfig& cfg, util::Rng& rng, Asn asn,
                       PolicySet& out) {
  CommunityPolicy policy;
  policy.asn = asn;
  policy.rel_base = cfg.rel_base;
  auto& dict = out.ground_truth.dictionary_for(static_cast<std::uint16_t>(asn));
  dict.add(dict::CommunityPattern::from_parts(
               static_cast<std::uint16_t>(asn),
               dict::BetaPattern::compile(std::to_string(cfg.rel_base) + "-" +
                                          std::to_string(cfg.rel_base + 3))),
           dict::Category::kRelationship, "relationship with neighbor");
  if (rng.chance(0.5)) {
    policy.rov_base = cfg.rov_base;
    dict.add(dict::CommunityPattern::from_parts(
                 static_cast<std::uint16_t>(asn),
                 dict::BetaPattern::compile("430-431")),
             dict::Category::kRovStatus, "RPKI origin validation status");
  }
  out.policies.emplace(asn, std::move(policy));
}

}  // namespace

PolicySet generate_policies(const topo::Topology& topo,
                            const PolicyConfig& config) {
  PolicySet out;
  util::Rng rng(config.seed);
  for (Asn asn : topo.graph.all_asns()) {
    const topo::AsNode* node = topo.graph.find(asn);
    // Classic communities carry a 16-bit alpha: an AS past the 16-bit ASN
    // boundary cannot key values with its own ASN, so it defines no classic
    // policy (matching real 32-bit-ASN holders, who moved to RFC 8092).
    // Large-scale presets deliberately place part of the stub range there.
    if (asn > 0xffff) continue;
    switch (node->tier) {
      case Tier::kTier1:
        if (rng.chance(config.tier1_defines))
          build_transit_policy(topo, config, rng, asn, out);
        break;
      case Tier::kTier2:
        if (rng.chance(config.tier2_defines))
          build_transit_policy(topo, config, rng, asn, out);
        break;
      case Tier::kStub:
        if (rng.chance(config.stub_defines))
          build_stub_policy(config, rng, asn, out);
        break;
      case Tier::kRouteServer: {
        // Route servers tag member routes with per-member communities but
        // publish no dictionary; the method must exclude them (§5.2).
        CommunityPolicy policy;
        policy.asn = asn;
        policy.geo_base = config.geo_base;
        policy.geo_block_width = config.geo_block_width;
        out.policies.emplace(asn, std::move(policy));
        break;
      }
    }
  }
  return out;
}

}  // namespace bgpintent::routing
