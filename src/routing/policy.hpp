// Per-AS community semantics.
//
// A CommunityPolicy describes how one AS uses its community namespace:
// which beta blocks carry information it attaches at ingress (geo,
// relationship, ROV), and which betas are action communities its customers
// may attach to influence its routing.  Policies are generated to echo the
// block structure documented for Arelion in the paper (Figs. 1/3, §5.1):
// contiguous, purpose-grouped ranges separated by wide gaps.
//
// The generator simultaneously emits the "published dictionary" for the AS
// (ground truth for evaluation) — exactly like an operator documenting
// their communities on their website.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <unordered_map>
#include <vector>

#include "bgp/community.hpp"
#include "dict/dictionary.hpp"
#include "topo/generator.hpp"
#include "util/rng.hpp"

namespace bgpintent::routing {

using bgp::Asn;
using bgp::Community;

/// Region applies-anywhere sentinel for ActionSpec.
inline constexpr std::uint8_t kAnyRegion = 0xff;

/// Large-community function selectors used by the simulator's policies.
inline constexpr std::uint32_t kLargeGeoFunction = 10;
inline constexpr std::uint32_t kLargeRelFunction = 11;
inline constexpr std::uint32_t kLargeNoExportFunction = 500;

/// What an action community asks its owner AS to do.
enum class ActionType : std::uint8_t {
  kNoExportToAs,    ///< do not export to target_as (optionally in region)
  kAnnounceToAs,    ///< export to target_as even where default suppresses
  kPrependToAs,     ///< prepend owner prepend_count times toward target_as
  kSetLocalPref,    ///< set local preference to local_pref
  kBlackhole,       ///< drop the route at the owner
  kNoExportAll,     ///< do not export to anyone (scoped NO_EXPORT)
};

struct ActionSpec {
  ActionType type = ActionType::kSetLocalPref;
  Asn target_as = 0;                     ///< for per-AS actions
  std::uint8_t target_region = kAnyRegion;
  std::uint8_t prepend_count = 0;
  std::uint32_t local_pref = 100;
};

/// Community usage of one AS.
struct CommunityPolicy {
  Asn asn = 0;

  /// Action communities offered to customers: beta -> effect.
  std::map<std::uint16_t, ActionSpec> actions;

  /// Large-community (RFC 8092) usage: when true the AS mirrors its geo /
  /// relationship tagging as large communities (function selectors
  /// kLargeGeoFunction / kLargeRelFunction) and honors the large
  /// no-export action (kLargeNoExportFunction with gamma = target ASN).
  bool emit_large = false;

  /// Information tagging at ingress (disabled when nullopt).
  std::optional<std::uint16_t> geo_base;   ///< + city-block offset
  std::uint16_t geo_block_width = 20;      ///< betas per (region, city)
  std::optional<std::uint16_t> rel_base;   ///< + 0 cust / 1 peer / 2 prov / 3 sib
  std::optional<std::uint16_t> rov_base;   ///< + 0 valid / 1 invalid

  /// Geo information community for an ingress at `where`.
  /// `port` differentiates parallel ingress points in the same city.
  [[nodiscard]] std::optional<Community> geo_community(
      topo::Location where, std::uint32_t port,
      std::uint16_t cities_per_region) const noexcept;

  /// Relationship information community for a route learned from a
  /// neighbor related as `rel` (from this AS's perspective).
  [[nodiscard]] std::optional<Community> relationship_community(
      topo::RelFrom rel) const noexcept;

  /// ROV information community; `valid` is the validation outcome.
  [[nodiscard]] std::optional<Community> rov_community(bool valid) const noexcept;

  /// The effect of `beta`, if it is one of this AS's action communities.
  [[nodiscard]] const ActionSpec* action_for(std::uint16_t beta) const noexcept;

  /// All concrete action communities offered (ascending beta).
  [[nodiscard]] std::vector<Community> offered_actions() const;

  [[nodiscard]] bool defines_any() const noexcept {
    return !actions.empty() || geo_base || rel_base || rov_base;
  }
};

/// Policy knobs for the generator.
struct PolicyConfig {
  std::uint64_t seed = 2;

  /// Probability that an AS of each tier defines communities at all.
  double tier1_defines = 1.0;
  double tier2_defines = 0.85;
  double stub_defines = 0.05;

  /// Among defining transit ASes, probability of each block.
  double with_export_control = 0.85;
  double with_geo = 0.9;
  double with_relationship = 0.7;
  double with_rov = 0.4;
  double with_blackhole = 0.6;
  double with_local_pref = 0.6;

  /// Probability a defining transit AS also uses large communities.
  double with_large = 0.35;

  /// Peers targeted by the export-control block (capped by peer count).
  std::uint32_t export_control_targets = 6;

  std::uint16_t geo_base = 20000;
  std::uint16_t geo_block_width = 20;
  std::uint16_t rel_base = 45000;
  std::uint16_t rov_base = 430;
};

/// Policies for every AS, plus the published (ground-truth) dictionaries.
struct PolicySet {
  std::unordered_map<Asn, CommunityPolicy> policies;
  dict::DictionaryStore ground_truth;

  [[nodiscard]] const CommunityPolicy* find(Asn asn) const noexcept;
};

/// Generates policies for `topo` (deterministic in config.seed).
/// Route servers receive an information-tagging policy (their communities
/// are structurally unclassifiable — the §5.2 exclusion); stubs usually
/// define nothing.
[[nodiscard]] PolicySet generate_policies(const topo::Topology& topo,
                                          const PolicyConfig& config);

}  // namespace bgpintent::routing
