// Scenario assembly: topology + policies + announcement workload + vantage
// points.  A Scenario is the reproduction's stand-in for "one week of
// RouteViews/RIS data": it deterministically generates the BGP observations
// every experiment consumes, together with the ground truth needed to score
// inferences (published dictionaries, true relationships, IXP list).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "bgp/route.hpp"
#include "routing/simulator.hpp"

namespace bgpintent::routing {

struct ScenarioConfig {
  topo::TopologyConfig topology;
  PolicyConfig policy;

  std::uint64_t workload_seed = 3;

  /// Mean prefixes originated per stub (>= 1; geometric).
  double prefixes_per_stub = 1.3;
  /// Probability a tier-2 AS also originates a prefix.
  double tier2_origination_prob = 0.4;
  /// Probability an origination carries action communities for a provider.
  double action_attach_prob = 0.35;
  /// Probability an origination leaks an internal community with a
  /// private-ASN alpha (the §5.2 private-alpha exclusion case).
  double private_leak_prob = 0.05;
  /// Probability an origination (mis)uses a provider *information*
  /// community value — a real-world practice that puts information
  /// communities off-path occasionally and produces the mixed information
  /// clusters of Fig. 6.
  double info_misuse_prob = 0.006;
  /// Zipf skew when picking which offered action community to attach:
  /// customers overwhelmingly reuse the documented, popular values.
  double action_popularity_skew = 1.2;
  /// Max distinct action communities attached to one origination.
  std::uint32_t max_actions_per_route = 2;
  /// Fraction of re-rolled originations per churn day (see day_entries).
  double day_churn = 0.1;

  /// Vantage points peering with the collector.
  std::uint32_t vantage_point_count = 60;
  /// Fraction of vantage points that are *partial* feeds: like many real
  /// RIS/RouteViews peers, they export only a subset of their table.
  /// Partial feeds create the sparse observation tail that makes
  /// per-community classification unreliable without clustering (Fig. 9).
  double partial_feed_fraction = 0.6;
  /// Fraction of prefixes a partial feed exports (deterministic per
  /// (vantage point, prefix)).
  double partial_feed_keep = 0.25;
  /// Per-recorded-route probability that a stale community from another
  /// AS "leaks" onto it (Krenc et al., CoNEXT 2020 document this in the
  /// wild).  Leakage puts information communities off-path at a low rate,
  /// which is what makes per-community classification unreliable and
  /// clustering necessary (Fig. 9's 73.7% no-clustering baseline).
  double community_leak_prob = 0.0012;
};

class Scenario {
 public:
  /// Builds topology, policies, workload and vantage points.
  [[nodiscard]] static Scenario build(const ScenarioConfig& config);

  [[nodiscard]] const ScenarioConfig& config() const noexcept { return config_; }
  [[nodiscard]] const topo::Topology& topology() const noexcept { return topo_; }
  [[nodiscard]] const PolicySet& policies() const noexcept { return policies_; }
  [[nodiscard]] const dict::DictionaryStore& ground_truth() const noexcept {
    return policies_.ground_truth;
  }
  [[nodiscard]] const std::vector<Announcement>& announcements() const noexcept {
    return announcements_;
  }
  [[nodiscard]] const std::vector<Asn>& vantage_points() const noexcept {
    return vantage_points_;
  }

  /// Collects RIB entries at all vantage points for the base day.  A pool
  /// shards the propagation over announcements; the output is identical to
  /// the sequential run at any pool size.
  [[nodiscard]] std::vector<bgp::RibEntry> entries(
      util::ThreadPool* pool = nullptr) const;

  /// Same, restricted to a subset of vantage points (Fig. 10 experiments).
  [[nodiscard]] std::vector<bgp::RibEntry> entries_with_vps(
      std::span<const Asn> vantage_points,
      util::ThreadPool* pool = nullptr) const;

  /// Entries for churn day `day` (day 0 == base): a `day_churn` fraction of
  /// originations re-roll their action communities, emulating daily update
  /// traffic that exposes additional (path, community) tuples.
  [[nodiscard]] std::vector<bgp::RibEntry> day_entries(
      std::uint32_t day, util::ThreadPool* pool = nullptr) const;

 private:
  [[nodiscard]] std::vector<Announcement> announcements_for_day(
      std::uint32_t day) const;

  /// Drops entries that partial-feed vantage points do not export and
  /// applies community leakage noise.
  [[nodiscard]] std::vector<bgp::RibEntry> apply_partial_feeds(
      std::vector<bgp::RibEntry> entries) const;

  /// Rolls action communities for one origination with `rng`.
  void attach_actions(Announcement& announcement, util::Rng& rng) const;

  ScenarioConfig config_;
  topo::Topology topo_;
  PolicySet policies_;
  std::vector<Announcement> announcements_;
  std::vector<Asn> vantage_points_;
  /// Pool of defined information values used by the leakage model.
  std::vector<Community> leakable_info_values_;
};

}  // namespace bgpintent::routing
