#include "routing/scenario.hpp"

#include <algorithm>
#include <unordered_set>

#include "util/rng.hpp"

namespace bgpintent::routing {

namespace {
using topo::Tier;

/// Sequential /24s under 10.0.0.0/8 for synthetic originations; spills
/// into the next /8 every 65536 prefixes so paper-scale workloads (~100K
/// originations) stay collision-free.  Identical to the historical layout
/// for n < 65536, which keeps every committed golden byte-stable.
bgp::Prefix nth_prefix(std::uint32_t n) {
  return bgp::Prefix(((10u + (n >> 16)) << 24) | ((n & 0xffff) << 8), 24);
}
}  // namespace

void Scenario::attach_actions(Announcement& announcement,
                              util::Rng& rng) const {
  if (rng.chance(config_.private_leak_prob)) {
    // Leaked internal tag: private-ASN alpha, small beta block.
    const auto alpha =
        static_cast<std::uint16_t>(64512 + rng.index(8));
    const auto beta = static_cast<std::uint16_t>(100 + rng.index(20));
    announcement.communities.push_back(Community(alpha, beta));
  }
  if (rng.chance(config_.info_misuse_prob)) {
    // Customer attaches one of a provider's *information* values (a
    // real-world misuse): the value then shows up off-path on the
    // origin's other upstream paths.
    std::vector<Community> info_values;
    for (const Asn provider : topo_.graph.neighbors_with(
             announcement.origin, topo::RelFrom::kProvider)) {
      const CommunityPolicy* policy = policies_.find(provider);
      if (policy == nullptr) continue;
      const topo::AsNode* node = topo_.graph.find(provider);
      // Copy the *base* value of the provider's busiest geo block — the
      // value with the most legitimate on-path exposure.
      if (const auto geo = policy->geo_community(
              node->presence.front(), 0, topo_.config.cities_per_region))
        info_values.push_back(*geo);
      if (const auto rel =
              policy->relationship_community(topo::RelFrom::kCustomer))
        info_values.push_back(*rel);
    }
    if (!info_values.empty())
      announcement.communities.push_back(
          info_values[rng.index(info_values.size())]);
  }
  if (!rng.chance(config_.action_attach_prob)) return;
  // Pick a provider that offers action communities.
  std::vector<Asn> candidates;
  for (const Asn provider : topo_.graph.neighbors_with(
           announcement.origin, topo::RelFrom::kProvider)) {
    const CommunityPolicy* policy = policies_.find(provider);
    if (policy != nullptr && !policy->actions.empty())
      candidates.push_back(provider);
  }
  if (candidates.empty()) return;
  const Asn provider = candidates[rng.index(candidates.size())];
  const auto offered = policies_.find(provider)->offered_actions();
  const std::uint32_t count = static_cast<std::uint32_t>(
      1 + rng.index(config_.max_actions_per_route));
  for (std::uint32_t k = 0; k < count; ++k) {
    const Community action =
        offered[rng.zipf(offered.size(), config_.action_popularity_skew)];
    // Blackhole actions would suppress the route entirely; origins signal
    // them for attack mitigation, which we model rarely.
    if (policies_.find(provider)->action_for(action.beta())->type ==
            ActionType::kBlackhole &&
        !rng.chance(0.02))
      continue;
    announcement.communities.push_back(action);
  }
  // Providers that adopted RFC 8092 policies also take large-community
  // actions; customers signal "do not export to <gamma>" occasionally.
  if (policies_.find(provider)->emit_large && rng.chance(0.3)) {
    const auto peers =
        topo_.graph.neighbors_with(provider, topo::RelFrom::kPeer);
    if (!peers.empty())
      announcement.large_communities.push_back(
          bgp::LargeCommunity(provider, kLargeNoExportFunction,
                              peers[rng.index(peers.size())]));
  }
  std::sort(announcement.communities.begin(), announcement.communities.end());
  announcement.communities.erase(
      std::unique(announcement.communities.begin(),
                  announcement.communities.end()),
      announcement.communities.end());
}

std::vector<Announcement> Scenario::announcements_for_day(
    std::uint32_t day) const {
  if (day == 0) return announcements_;
  std::vector<Announcement> out = announcements_;
  util::Rng day_rng(config_.workload_seed ^ (0xd1b54a32d192ed03ULL * day));
  for (Announcement& announcement : out) {
    if (!day_rng.chance(config_.day_churn)) continue;
    announcement.communities.clear();
    attach_actions(announcement, day_rng);
  }
  return out;
}

Scenario Scenario::build(const ScenarioConfig& config) {
  Scenario s;
  s.config_ = config;
  s.topo_ = topo::generate_topology(config.topology);
  s.policies_ = generate_policies(s.topo_, config.policy);

  util::Rng rng(config.workload_seed);

  // Originations: every stub, plus a fraction of tier-2s.
  std::uint32_t prefix_counter = 0;
  for (const Asn asn : s.topo_.asns_with_tier(Tier::kStub)) {
    const auto count = rng.geometric(1.0 / config.prefixes_per_stub, 3);
    for (std::uint32_t k = 0; k < count; ++k) {
      Announcement a;
      a.prefix = nth_prefix(prefix_counter++);
      a.origin = asn;
      s.attach_actions(a, rng);
      s.announcements_.push_back(std::move(a));
    }
  }
  for (const Asn asn : s.topo_.asns_with_tier(Tier::kTier2)) {
    if (!rng.chance(config.tier2_origination_prob)) continue;
    Announcement a;
    a.prefix = nth_prefix(prefix_counter++);
    a.origin = asn;
    // Tier-2s rarely signal actions upward; they are providers themselves.
    if (rng.chance(0.1)) s.attach_actions(a, rng);
    s.announcements_.push_back(std::move(a));
  }

  // Pool of leakable information values (community leakage noise model):
  // the values with real on-path exposure — relationship/ROV tags and the
  // low-port geo values of every tagging transit AS.
  for (const auto& [asn, policy] : s.policies_.policies) {
    const topo::AsNode* node = s.topo_.graph.find(asn);
    if (node == nullptr || node->tier == topo::Tier::kRouteServer) continue;
    if (policy.rel_base)
      for (std::uint16_t code = 0; code < 3; ++code)
        s.leakable_info_values_.push_back(Community(
            static_cast<std::uint16_t>(asn),
            static_cast<std::uint16_t>(*policy.rel_base + code)));
    if (policy.rov_base)
      s.leakable_info_values_.push_back(
          Community(static_cast<std::uint16_t>(asn), *policy.rov_base));
    if (policy.geo_base) {
      for (const topo::Location& loc : node->presence)
        for (std::uint32_t port = 0;
             port < std::min<std::uint32_t>(policy.geo_block_width, 6); ++port)
          if (const auto geo = policy.geo_community(
                  loc, port, config.topology.cities_per_region))
            s.leakable_info_values_.push_back(*geo);
    }
  }
  std::sort(s.leakable_info_values_.begin(), s.leakable_info_values_.end());
  s.leakable_info_values_.erase(
      std::unique(s.leakable_info_values_.begin(),
                  s.leakable_info_values_.end()),
      s.leakable_info_values_.end());

  // Vantage points: mix of tiers, echoing the RouteViews/RIS peer mix
  // (mostly transit networks, some stubs).
  const auto tier1s = s.topo_.asns_with_tier(Tier::kTier1);
  const auto tier2s = s.topo_.asns_with_tier(Tier::kTier2);
  const auto stubs = s.topo_.asns_with_tier(Tier::kStub);
  std::vector<Asn> pool;
  pool.insert(pool.end(), tier1s.begin(), tier1s.end());
  pool.insert(pool.end(), tier2s.begin(), tier2s.end());
  // Every fourth VP candidate is a stub.
  for (std::size_t i = 0; i < stubs.size() && i < pool.size() / 3; ++i)
    pool.push_back(stubs[rng.index(stubs.size())]);
  std::sort(pool.begin(), pool.end());
  pool.erase(std::unique(pool.begin(), pool.end()), pool.end());
  const std::size_t want =
      std::min<std::size_t>(config.vantage_point_count, pool.size());
  for (const std::size_t idx : rng.sample_indices(pool.size(), want))
    s.vantage_points_.push_back(pool[idx]);
  std::sort(s.vantage_points_.begin(), s.vantage_points_.end());

  return s;
}

std::vector<bgp::RibEntry> Scenario::entries(util::ThreadPool* pool) const {
  return entries_with_vps(vantage_points_, pool);
}

std::vector<bgp::RibEntry> Scenario::entries_with_vps(
    std::span<const Asn> vantage_points, util::ThreadPool* pool) const {
  Collector collector(topo_, policies_,
                      std::vector<Asn>(vantage_points.begin(),
                                       vantage_points.end()));
  return apply_partial_feeds(collector.collect(announcements_, pool));
}

std::vector<bgp::RibEntry> Scenario::day_entries(std::uint32_t day,
                                                 util::ThreadPool* pool) const {
  Collector collector(topo_, policies_, vantage_points_);
  return apply_partial_feeds(
      collector.collect(announcements_for_day(day), pool));
}

std::vector<bgp::RibEntry> Scenario::apply_partial_feeds(
    std::vector<bgp::RibEntry> entries) const {
  // Deterministic, rng-state-free hashing so a vantage point exports the
  // same prefix subset regardless of which experiment asks.
  const auto unit_hash = [this](std::uint64_t key) {
    std::uint64_t state = key ^ config_.workload_seed;
    return static_cast<double>(util::splitmix64(state) >> 11) * 0x1.0p-53;
  };
  if (config_.partial_feed_fraction > 0.0) {
    std::erase_if(entries, [&](const bgp::RibEntry& entry) {
      const std::uint64_t vp = entry.vantage_point.asn;
      if (unit_hash(vp * 0x9e3779b97f4a7c15ULL) >=
          config_.partial_feed_fraction)
        return false;  // full feed
      const std::uint64_t key = (vp << 40) ^ entry.route.prefix.address() ^
                                entry.route.prefix.length();
      return unit_hash(key) >= config_.partial_feed_keep;
    });
  }
  if (config_.community_leak_prob > 0.0) {
    // Leak only values with genuine on-path exposure in THIS dataset, so
    // leakage adds noise to real communities instead of inventing ghosts.
    std::unordered_set<Community> pool_set(leakable_info_values_.begin(),
                                           leakable_info_values_.end());
    std::vector<Community> pool;
    for (const bgp::RibEntry& entry : entries)
      for (const Community community : entry.route.communities)
        if (pool_set.contains(community) &&
            entry.route.path.contains(community.alpha())) {
          pool.push_back(community);
          pool_set.erase(community);
        }
    std::sort(pool.begin(), pool.end());
    if (pool.empty()) return entries;
    for (bgp::RibEntry& entry : entries) {
      const std::uint64_t key =
          (static_cast<std::uint64_t>(entry.vantage_point.asn) << 34) ^
          (static_cast<std::uint64_t>(entry.route.prefix.address()) << 2) ^
          entry.route.prefix.length() ^ 0x5ca1ab1eULL;
      if (unit_hash(key) >= config_.community_leak_prob) continue;
      std::uint64_t pick_state = key * 0x2545f4914f6cdd1dULL;
      const Community leaked = pool[static_cast<std::size_t>(
          util::splitmix64(pick_state) % pool.size())];
      if (!entry.route.has_community(leaked)) {
        entry.route.communities.push_back(leaked);
        entry.route.canonicalize_communities();
      }
    }
  }
  return entries;
}

}  // namespace bgpintent::routing
