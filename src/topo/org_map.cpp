#include "topo/org_map.hpp"

#include <algorithm>

namespace bgpintent::topo {

void OrgMap::assign(Asn asn, OrgId org) {
  auto it = org_.find(asn);
  if (it != org_.end()) {
    auto& old_members = members_[it->second];
    std::erase(old_members, asn);
    if (old_members.empty()) members_.erase(it->second);
    it->second = org;
  } else {
    org_.emplace(asn, org);
  }
  auto& member_list = members_[org];
  member_list.insert(
      std::lower_bound(member_list.begin(), member_list.end(), asn), asn);
}

std::optional<OrgId> OrgMap::org_of(Asn asn) const noexcept {
  auto it = org_.find(asn);
  if (it == org_.end()) return std::nullopt;
  return it->second;
}

std::vector<Asn> OrgMap::siblings(Asn asn) const {
  auto org = org_of(asn);
  if (!org) return {asn};
  return members_.at(*org);
}

bool OrgMap::are_siblings(Asn a, Asn b) const noexcept {
  if (a == b) return true;
  const auto org_a = org_of(a);
  const auto org_b = org_of(b);
  return org_a && org_b && *org_a == *org_b;
}

}  // namespace bgpintent::topo
