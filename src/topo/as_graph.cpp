#include "topo/as_graph.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>
#include <unordered_set>

namespace bgpintent::topo {

const std::vector<Adjacency> AsGraph::kNoAdjacencies{};

std::string_view to_string(Tier tier) noexcept {
  switch (tier) {
    case Tier::kTier1: return "tier1";
    case Tier::kTier2: return "tier2";
    case Tier::kStub: return "stub";
    case Tier::kRouteServer: return "route_server";
  }
  return "?";
}

std::string_view to_string(Relationship rel) noexcept {
  switch (rel) {
    case Relationship::kP2C: return "p2c";
    case Relationship::kP2P: return "p2p";
    case Relationship::kS2S: return "s2s";
  }
  return "?";
}

bool AsNode::present_in_region(std::uint8_t region) const noexcept {
  for (const Location& loc : presence)
    if (loc.region == region) return true;
  return false;
}

void AsGraph::add_as(AsNode node) {
  const Asn asn = node.asn;
  if (!nodes_.try_emplace(asn, std::move(node)).second)
    throw std::invalid_argument("duplicate AS " + std::to_string(asn));
  adjacency_.try_emplace(asn);
}

void AsGraph::add_edge(Asn a, Asn b, Relationship rel, Location where,
                       std::optional<Asn> via_route_server) {
  if (a == b) throw std::invalid_argument("self edge on AS " + std::to_string(a));
  if (!contains(a) || !contains(b))
    throw std::invalid_argument("edge references unknown AS");
  if (relationship(a, b))
    throw std::invalid_argument("duplicate edge " + std::to_string(a) + "-" +
                                std::to_string(b));
  RelFrom from_a = RelFrom::kPeer;
  switch (rel) {
    case Relationship::kP2C: from_a = RelFrom::kCustomer; break;  // b is a's customer
    case Relationship::kP2P: from_a = RelFrom::kPeer; break;
    case Relationship::kS2S: from_a = RelFrom::kSibling; break;
  }
  adjacency_[a].push_back(Adjacency{b, from_a, where, via_route_server});
  adjacency_[b].push_back(Adjacency{a, invert(from_a), where, via_route_server});
  ++edge_count_;
}

bool AsGraph::contains(Asn asn) const noexcept { return nodes_.contains(asn); }

const AsNode* AsGraph::find(Asn asn) const noexcept {
  auto it = nodes_.find(asn);
  return it == nodes_.end() ? nullptr : &it->second;
}

const std::vector<Adjacency>& AsGraph::neighbors(Asn asn) const noexcept {
  auto it = adjacency_.find(asn);
  return it == adjacency_.end() ? kNoAdjacencies : it->second;
}

std::optional<RelFrom> AsGraph::relationship(Asn a, Asn b) const noexcept {
  for (const Adjacency& adj : neighbors(a))
    if (adj.neighbor == b) return adj.rel;
  return std::nullopt;
}

std::vector<Asn> AsGraph::neighbors_with(Asn asn, RelFrom rel) const {
  std::vector<Asn> out;
  for (const Adjacency& adj : neighbors(asn))
    if (adj.rel == rel) out.push_back(adj.neighbor);
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<Asn> AsGraph::all_asns() const {
  std::vector<Asn> out;
  out.reserve(nodes_.size());
  for (const auto& [asn, node] : nodes_) out.push_back(asn);
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<AsGraph::Edge> AsGraph::all_edges() const {
  std::vector<Edge> out;
  out.reserve(edge_count_);
  for (const Asn a : all_asns()) {
    for (const Adjacency& adj : neighbors(a)) {
      // Report each edge once: from the provider side for p2c, from the
      // lower ASN otherwise.
      if (adj.rel == RelFrom::kCustomer) {
        out.push_back(
            Edge{a, adj.neighbor, Relationship::kP2C, adj.where,
                 adj.via_route_server});
      } else if (adj.rel != RelFrom::kProvider && a < adj.neighbor) {
        out.push_back(Edge{a, adj.neighbor,
                           adj.rel == RelFrom::kSibling ? Relationship::kS2S
                                                        : Relationship::kP2P,
                           adj.where, adj.via_route_server});
      }
    }
  }
  return out;
}

AsIndex::AsIndex(const AsGraph& graph) : asns_(graph.all_asns()) {
  ordinals_.reserve(asns_.size());
  for (std::uint32_t i = 0; i < asns_.size(); ++i) ordinals_.emplace(asns_[i], i);
}

std::uint32_t AsIndex::find(Asn asn) const noexcept {
  auto it = ordinals_.find(asn);
  return it == ordinals_.end() ? kInvalid : it->second;
}

std::vector<Asn> AsGraph::customer_cone(Asn asn) const {
  std::vector<Asn> cone;
  std::unordered_set<Asn> visited{asn};
  std::deque<Asn> frontier{asn};
  while (!frontier.empty()) {
    const Asn current = frontier.front();
    frontier.pop_front();
    for (const Adjacency& adj : neighbors(current)) {
      if (adj.rel != RelFrom::kCustomer) continue;
      if (visited.insert(adj.neighbor).second) {
        cone.push_back(adj.neighbor);
        frontier.push_back(adj.neighbor);
      }
    }
  }
  std::sort(cone.begin(), cone.end());
  return cone;
}

}  // namespace bgpintent::topo
