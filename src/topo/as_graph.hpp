// AS-level topology model: nodes (ASes with tier, organization, geographic
// presence) and relationship-typed edges (provider-to-customer, peer-to-peer,
// sibling-to-sibling), optionally crossing an IXP route server.
//
// The graph is the substrate under the routing simulator; it also backs the
// relationship-inference module, which tries to recover the edge types from
// observed paths.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "bgp/asn.hpp"

namespace bgpintent::topo {

using bgp::Asn;
using OrgId = std::uint32_t;

/// Geographic location: a region (continent) and a city within it.
/// Region ids intentionally echo the Arelion convention of Fig. 3
/// (2 = Europe, 5 = North America, 7 = Asia-Pacific) in bench output.
struct Location {
  std::uint8_t region = 0;
  std::uint16_t city = 0;

  friend auto operator<=>(const Location&, const Location&) = default;
};

/// Coarse role of an AS in the hierarchy.
enum class Tier : std::uint8_t {
  kTier1,        ///< transit-free core; full p2p clique
  kTier2,        ///< regional transit provider
  kStub,         ///< edge network, originates prefixes
  kRouteServer,  ///< transparent IXP route server
};

/// Relationship of an edge, oriented: kP2C means `a` is the provider of `b`.
enum class Relationship : std::uint8_t { kP2C, kP2P, kS2S };

/// Relationship from the perspective of one endpoint.
enum class RelFrom : std::uint8_t { kProvider, kCustomer, kPeer, kSibling };

/// Inverts the perspective (my provider sees me as a customer).
[[nodiscard]] constexpr RelFrom invert(RelFrom rel) noexcept {
  switch (rel) {
    case RelFrom::kProvider: return RelFrom::kCustomer;
    case RelFrom::kCustomer: return RelFrom::kProvider;
    case RelFrom::kPeer: return RelFrom::kPeer;
    case RelFrom::kSibling: return RelFrom::kSibling;
  }
  return RelFrom::kPeer;
}

[[nodiscard]] std::string_view to_string(Tier tier) noexcept;
[[nodiscard]] std::string_view to_string(Relationship rel) noexcept;

/// A node in the AS graph.
struct AsNode {
  Asn asn = 0;
  Tier tier = Tier::kStub;
  OrgId org = 0;
  std::vector<Location> presence;  ///< locations with at least one PoP
  /// ~0.5% of ASes strip all communities before propagating (§5.1).
  bool strips_communities = false;

  [[nodiscard]] bool present_in_region(std::uint8_t region) const noexcept;
};

/// One adjacency as seen from a specific AS.
struct Adjacency {
  Asn neighbor = 0;
  RelFrom rel = RelFrom::kPeer;
  /// The interconnection point; info communities encode this ingress.
  Location where;
  /// Set when the session is multilateral via an IXP route server: the
  /// route server's ASN.  The RS does not appear in the AS path.
  std::optional<Asn> via_route_server;
};

class AsGraph {
 public:
  /// Adds a node; throws std::invalid_argument on duplicate ASN.
  void add_as(AsNode node);

  /// Adds an edge `a -(rel)-> b` (kP2C: a provides transit to b).
  /// Throws std::invalid_argument if either node is missing, a == b, or the
  /// edge already exists.
  void add_edge(Asn a, Asn b, Relationship rel, Location where = {},
                std::optional<Asn> via_route_server = std::nullopt);

  [[nodiscard]] bool contains(Asn asn) const noexcept;
  [[nodiscard]] const AsNode* find(Asn asn) const noexcept;
  [[nodiscard]] std::size_t as_count() const noexcept { return nodes_.size(); }
  [[nodiscard]] std::size_t edge_count() const noexcept { return edge_count_; }

  /// Adjacencies of `asn` (empty for unknown ASes).
  [[nodiscard]] const std::vector<Adjacency>& neighbors(Asn asn) const noexcept;

  /// Relationship between two ASes from `a`'s perspective; nullopt if not
  /// adjacent.
  [[nodiscard]] std::optional<RelFrom> relationship(Asn a, Asn b) const noexcept;

  /// Neighbors of `asn` filtered by perspective relationship.
  [[nodiscard]] std::vector<Asn> neighbors_with(Asn asn, RelFrom rel) const;

  /// All ASNs, ascending (stable iteration order for determinism).
  [[nodiscard]] std::vector<Asn> all_asns() const;

  /// All edges, each reported once with kP2C oriented provider->customer.
  struct Edge {
    Asn a = 0;
    Asn b = 0;
    Relationship rel = Relationship::kP2P;
    Location where;
    std::optional<Asn> via_route_server;
  };
  [[nodiscard]] std::vector<Edge> all_edges() const;

  /// ASes in the customer cone of `asn` (customers, customers of
  /// customers, ...), excluding `asn` itself.
  [[nodiscard]] std::vector<Asn> customer_cone(Asn asn) const;

 private:
  std::unordered_map<Asn, AsNode> nodes_;
  std::unordered_map<Asn, std::vector<Adjacency>> adjacency_;
  std::size_t edge_count_ = 0;
  static const std::vector<Adjacency> kNoAdjacencies;
};

/// Dense index over the ASNs of a graph: every AS gets a stable ordinal in
/// [0, size()), assigned in ascending ASN order.  Dense per-AS state (the
/// compact RIB, precomputed policy pointers) is keyed on these ordinals
/// instead of hashing ASNs, so a 75K-AS world costs a flat array, not a
/// hash map per prefix.
class AsIndex {
 public:
  static constexpr std::uint32_t kInvalid = 0xffffffffu;

  AsIndex() = default;
  explicit AsIndex(const AsGraph& graph);

  [[nodiscard]] std::size_t size() const noexcept { return asns_.size(); }

  /// ASN at ordinal `idx`; precondition idx < size().
  [[nodiscard]] Asn asn_at(std::uint32_t idx) const noexcept {
    return asns_[idx];
  }

  /// Ordinal of `asn`, or kInvalid if the AS is not in the graph.
  [[nodiscard]] std::uint32_t find(Asn asn) const noexcept;

  /// All ASNs, ascending (ordinal i holds the i-th smallest ASN).
  [[nodiscard]] std::span<const Asn> asns() const noexcept { return asns_; }

 private:
  std::vector<Asn> asns_;
  std::unordered_map<Asn, std::uint32_t> ordinals_;
};

}  // namespace bgpintent::topo
