// Synthetic Internet topology generator.
//
// Produces a scaled-down Internet with the structural features the paper's
// method depends on:
//   - a transit hierarchy (tier-1 clique, regional tier-2s, multihomed
//     stubs) so valley-free routing yields realistic path diversity,
//   - organizations owning several ASNs (sibling-aware on-path matching),
//   - transparent IXP route servers whose ASN never appears in paths (the
//     exclusion case of §5.2),
//   - a small fraction of community-stripping ASes (§5.1 noise).
//
// Everything is driven by an explicit seed; the same config generates the
// same topology byte-for-byte.
#pragma once

#include <cstdint>
#include <vector>

#include "topo/as_graph.hpp"
#include "topo/org_map.hpp"
#include "util/rng.hpp"

namespace bgpintent::topo {

/// A transparent IXP: members exchange routes multilaterally through the
/// route server, which tags routes with its own communities but does not
/// insert its ASN into the AS path.
struct Ixp {
  Asn route_server = 0;
  Location where;
  std::vector<Asn> members;
};

struct TopologyConfig {
  std::uint64_t seed = 1;

  std::uint32_t tier1_count = 10;
  std::uint32_t tier2_count = 80;
  std::uint32_t stub_count = 500;

  std::uint8_t region_count = 3;
  std::uint16_t cities_per_region = 6;

  /// Mean provider count for multihomed stubs / tier-2s (>= 1).
  double mean_providers = 2.0;
  /// Probability a stub is multihomed (>= 2 providers).  Multihoming is
  /// what exposes customer-signaled action communities off-path (§5.1).
  double stub_multihome_prob = 0.55;
  /// Probability two same-region tier-2s peer directly.
  double tier2_peering_prob = 0.15;
  /// Fraction of tier-2 ASes grouped into multi-AS organizations.
  double sibling_fraction = 0.10;
  /// Fraction of non-tier-1 ASes that strip communities on export.
  double strip_fraction = 0.005;

  /// IXPs per region (members drawn from that region's ASes).
  std::uint32_t ixps_per_region = 1;
  /// Fraction of a region's tier-2s/stubs joining its IXP.
  double ixp_member_fraction = 0.15;
  /// Peers each IXP member reaches through the route server (capped by
  /// membership size).
  std::uint32_t ixp_peers_per_member = 4;

  // ASN allocation bases (16-bit public space).
  Asn tier1_base = 100;
  Asn tier2_base = 1000;
  Asn stub_base = 10000;
  Asn route_server_base = 60000;
};

struct Topology {
  AsGraph graph;
  OrgMap orgs;
  std::vector<Ixp> ixps;
  TopologyConfig config;

  /// ASNs by tier, ascending.
  [[nodiscard]] std::vector<Asn> asns_with_tier(Tier tier) const;
};

/// Generates a topology from `config`.  Deterministic in config.seed.
[[nodiscard]] Topology generate_topology(const TopologyConfig& config);

/// Named scale rungs for the synthetic world.  Every rung keeps the same
/// structural model and knob semantics; only the counts and densities move
/// toward the measured shape of today's Internet: ~15 tier-1s, a few
/// thousand transit networks, and ~75K ASes total, the overwhelming
/// majority stubs.  Densities (tier-2 peering probability, IXP membership)
/// shrink as the AS count grows so per-AS degree stays Internet-like
/// instead of scaling quadratically.
enum class ScalePreset : std::uint8_t {
  kTiny,      ///< CI-sized default (~600 ASes); identical to TopologyConfig{}.
  kSmall,     ///< ~2.3K ASes.
  kMedium,    ///< ~11K ASes.
  kLarge,     ///< ~32K ASes.
  kInternet,  ///< ~75K ASes — the paper-scale rung.
};

/// Config for `preset` (seed stays at the default; callers override).
/// Large rungs move the stub ASN base so stub, route-server and transit
/// ranges never collide, and deliberately let the stub range cross the
/// 16-bit ASN boundary: like real 32-bit-ASN holders, those ASes cannot
/// key classic communities with their own ASN (see generate_policies).
[[nodiscard]] TopologyConfig preset_config(ScalePreset preset);

/// Lower-case preset name ("tiny", "small", ..., "internet").
[[nodiscard]] const char* preset_name(ScalePreset preset) noexcept;

/// All presets, ascending by size (for benches sweeping the ladder).
[[nodiscard]] std::vector<ScalePreset> all_scale_presets();

}  // namespace bgpintent::topo
