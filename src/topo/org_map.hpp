// AS-to-organization mapping (the CAIDA as2org substitute).
//
// The paper's method counts a community alpha as "on-path" when alpha or an
// organizational *sibling* of alpha appears in the AS path; this map answers
// those sibling queries.
#pragma once

#include <unordered_map>
#include <vector>

#include "bgp/asn.hpp"

namespace bgpintent::topo {

using bgp::Asn;
using OrgId = std::uint32_t;

class OrgMap {
 public:
  /// Associates `asn` with `org`; re-assigning an ASN overwrites.
  void assign(Asn asn, OrgId org);

  /// Org of `asn`; nullopt if unmapped.
  [[nodiscard]] std::optional<OrgId> org_of(Asn asn) const noexcept;

  /// All ASNs in the same org as `asn`, including `asn` itself if mapped
  /// (ascending).  An unmapped ASN yields just itself.
  [[nodiscard]] std::vector<Asn> siblings(Asn asn) const;

  /// True when the two ASNs map to the same org (an ASN is always its own
  /// sibling, mapped or not).
  [[nodiscard]] bool are_siblings(Asn a, Asn b) const noexcept;

  [[nodiscard]] std::size_t asn_count() const noexcept { return org_.size(); }
  [[nodiscard]] std::size_t org_count() const noexcept { return members_.size(); }

 private:
  std::unordered_map<Asn, OrgId> org_;
  std::unordered_map<OrgId, std::vector<Asn>> members_;
};

}  // namespace bgpintent::topo
