#include "topo/generator.hpp"

#include <algorithm>
#include <unordered_set>

namespace bgpintent::topo {

namespace {

using util::Rng;

Location random_city(Rng& rng, std::uint8_t region,
                     std::uint16_t cities_per_region) {
  return Location{region,
                  static_cast<std::uint16_t>(rng.index(cities_per_region))};
}

/// A shared location for two ASes; prefers a region both are present in.
Location meeting_point(Rng& rng, const AsNode& a, const AsNode& b,
                       std::uint16_t cities_per_region) {
  for (const Location& loc : a.presence)
    if (b.present_in_region(loc.region))
      return random_city(rng, loc.region, cities_per_region);
  // No overlap (possible for tier-1 <-> remote stub): use a's first region.
  return random_city(rng, a.presence.empty() ? std::uint8_t{0}
                                             : a.presence.front().region,
                     cities_per_region);
}

}  // namespace

std::vector<Asn> Topology::asns_with_tier(Tier tier) const {
  std::vector<Asn> out;
  for (Asn asn : graph.all_asns())
    if (graph.find(asn)->tier == tier) out.push_back(asn);
  return out;
}

Topology generate_topology(const TopologyConfig& config) {
  Topology topo;
  topo.config = config;
  Rng rng(config.seed);
  AsGraph& g = topo.graph;

  OrgId next_org = 1;
  std::vector<Asn> tier1s, tier2s, stubs;

  // --- Tier-1 core: present in every region, full p2p clique. ---
  for (std::uint32_t i = 0; i < config.tier1_count; ++i) {
    AsNode node;
    node.asn = config.tier1_base + i;
    node.tier = Tier::kTier1;
    node.org = next_org++;
    for (std::uint8_t r = 0; r < config.region_count; ++r)
      node.presence.push_back(random_city(rng, r, config.cities_per_region));
    tier1s.push_back(node.asn);
    g.add_as(std::move(node));
    topo.orgs.assign(tier1s.back(), g.find(tier1s.back())->org);
  }
  for (std::size_t i = 0; i < tier1s.size(); ++i)
    for (std::size_t j = i + 1; j < tier1s.size(); ++j)
      g.add_edge(tier1s[i], tier1s[j], Relationship::kP2P,
                 meeting_point(rng, *g.find(tier1s[i]), *g.find(tier1s[j]),
                               config.cities_per_region));

  // --- Tier-2: regional transit, multihomed to tier-1s. ---
  for (std::uint32_t i = 0; i < config.tier2_count; ++i) {
    AsNode node;
    node.asn = config.tier2_base + i;
    node.tier = Tier::kTier2;
    node.org = next_org++;
    node.strips_communities = rng.chance(config.strip_fraction);
    const auto home =
        static_cast<std::uint8_t>(rng.index(config.region_count));
    node.presence.push_back(random_city(rng, home, config.cities_per_region));
    if (config.region_count > 1 && rng.chance(0.3)) {
      auto second = static_cast<std::uint8_t>(rng.index(config.region_count));
      if (second != home)
        node.presence.push_back(
            random_city(rng, second, config.cities_per_region));
    }
    tier2s.push_back(node.asn);
    g.add_as(std::move(node));
    topo.orgs.assign(tier2s.back(), g.find(tier2s.back())->org);
  }
  // Sibling organizations: group runs of tier-2s into shared orgs.
  {
    const auto grouped = static_cast<std::size_t>(
        config.sibling_fraction * static_cast<double>(tier2s.size()));
    std::size_t assigned = 0;
    while (assigned + 1 < grouped) {
      const std::size_t group_size = std::min<std::size_t>(
          2 + rng.index(2), grouped - assigned);  // 2-3 ASes per org
      if (group_size < 2) break;
      const OrgId org = next_org++;
      for (std::size_t k = 0; k < group_size; ++k)
        topo.orgs.assign(tier2s[assigned + k], org);
      assigned += group_size;
    }
  }
  for (Asn asn : tier2s) {
    // Providers: 1..N tier-1s, zipf-weighted so some tier-1s dominate.
    const auto provider_count =
        rng.geometric(1.0 / config.mean_providers, 4);
    std::unordered_set<Asn> chosen;
    while (chosen.size() < provider_count) {
      const Asn provider = tier1s[rng.zipf(tier1s.size(), 1.0)];
      if (chosen.insert(provider).second)
        g.add_edge(provider, asn, Relationship::kP2C,
                   meeting_point(rng, *g.find(provider), *g.find(asn),
                                 config.cities_per_region));
    }
  }
  // Tier-2 <-> tier-2 regional peering.
  for (std::size_t i = 0; i < tier2s.size(); ++i) {
    for (std::size_t j = i + 1; j < tier2s.size(); ++j) {
      const AsNode& a = *g.find(tier2s[i]);
      const AsNode& b = *g.find(tier2s[j]);
      bool share_region = false;
      for (const Location& loc : a.presence)
        if (b.present_in_region(loc.region)) share_region = true;
      if (share_region && rng.chance(config.tier2_peering_prob))
        g.add_edge(tier2s[i], tier2s[j], Relationship::kP2P,
                   meeting_point(rng, a, b, config.cities_per_region));
    }
  }
  // Sibling edges inside orgs.
  for (Asn asn : tier2s)
    for (Asn sibling : topo.orgs.siblings(asn))
      if (sibling > asn && !g.relationship(asn, sibling))
        g.add_edge(asn, sibling, Relationship::kS2S,
                   meeting_point(rng, *g.find(asn), *g.find(sibling),
                                 config.cities_per_region));

  // --- Stubs: multihomed customers of regional tier-2s. ---
  for (std::uint32_t i = 0; i < config.stub_count; ++i) {
    AsNode node;
    node.asn = config.stub_base + i;
    node.tier = Tier::kStub;
    node.org = next_org++;
    node.strips_communities = rng.chance(config.strip_fraction);
    const auto home =
        static_cast<std::uint8_t>(rng.index(config.region_count));
    node.presence.push_back(random_city(rng, home, config.cities_per_region));
    stubs.push_back(node.asn);
    g.add_as(std::move(node));
    topo.orgs.assign(stubs.back(), g.find(stubs.back())->org);
  }
  // Region -> tier-2s present there (fallback: all tier-2s).
  std::vector<std::vector<Asn>> region_tier2s(config.region_count);
  for (Asn asn : tier2s)
    for (const Location& loc : g.find(asn)->presence)
      region_tier2s[loc.region].push_back(asn);
  for (Asn asn : stubs) {
    const AsNode& node = *g.find(asn);
    const std::uint8_t home = node.presence.front().region;
    const auto& local = region_tier2s[home].empty() ? tier2s
                                                    : region_tier2s[home];
    std::uint32_t provider_count =
        rng.geometric(1.0 / config.mean_providers, 3);
    if (rng.chance(config.stub_multihome_prob))
      provider_count = std::max(provider_count, 2u);
    std::unordered_set<Asn> chosen;
    std::uint32_t attempts = 0;
    while (chosen.size() < provider_count && attempts++ < 16) {
      // Mostly regional tier-2s; occasionally a tier-1 (direct transit).
      const Asn provider = rng.chance(0.9)
                               ? local[rng.zipf(local.size(), 0.8)]
                               : tier1s[rng.zipf(tier1s.size(), 1.0)];
      if (chosen.insert(provider).second)
        g.add_edge(provider, asn, Relationship::kP2C,
                   meeting_point(rng, *g.find(provider), node,
                                 config.cities_per_region));
    }
  }

  // --- IXPs: transparent route servers with multilateral peering. ---
  Asn next_rs = config.route_server_base;
  for (std::uint8_t region = 0; region < config.region_count; ++region) {
    for (std::uint32_t k = 0; k < config.ixps_per_region; ++k) {
      Ixp ixp;
      ixp.route_server = next_rs++;
      ixp.where = random_city(rng, region, config.cities_per_region);
      AsNode rs;
      rs.asn = ixp.route_server;
      rs.tier = Tier::kRouteServer;
      rs.org = next_org++;
      rs.presence.push_back(ixp.where);
      g.add_as(std::move(rs));
      topo.orgs.assign(ixp.route_server, g.find(ixp.route_server)->org);

      std::vector<Asn> candidates;
      for (Asn asn : tier2s)
        if (g.find(asn)->present_in_region(region)) candidates.push_back(asn);
      for (Asn asn : stubs)
        if (g.find(asn)->present_in_region(region)) candidates.push_back(asn);
      for (Asn asn : candidates)
        if (rng.chance(config.ixp_member_fraction))
          ixp.members.push_back(asn);
      // Multilateral peering: each member peers with a few others through
      // the route server (the RS stays out of the AS path).
      for (std::size_t i = 0; i < ixp.members.size(); ++i) {
        const std::uint32_t want =
            std::min<std::uint32_t>(config.ixp_peers_per_member,
                                    static_cast<std::uint32_t>(
                                        ixp.members.size() - 1));
        std::uint32_t made = 0;
        std::uint32_t attempts = 0;
        while (made < want && attempts++ < 4 * want + 8) {
          const Asn other = ixp.members[rng.index(ixp.members.size())];
          if (other == ixp.members[i]) continue;
          if (g.relationship(ixp.members[i], other)) continue;
          g.add_edge(ixp.members[i], other, Relationship::kP2P, ixp.where,
                     ixp.route_server);
          ++made;
        }
      }
      topo.ixps.push_back(std::move(ixp));
    }
  }

  return topo;
}

TopologyConfig preset_config(ScalePreset preset) {
  TopologyConfig config;  // kTiny == the defaults.
  switch (preset) {
    case ScalePreset::kTiny:
      break;
    case ScalePreset::kSmall:
      config.tier1_count = 12;
      config.tier2_count = 260;
      config.stub_count = 2000;
      config.region_count = 4;
      config.cities_per_region = 8;
      config.tier2_peering_prob = 0.08;
      config.ixp_member_fraction = 0.12;
      break;
    case ScalePreset::kMedium:
      config.tier1_count = 14;
      config.tier2_count = 900;
      config.stub_count = 10000;
      config.region_count = 5;
      config.cities_per_region = 10;
      config.tier2_peering_prob = 0.03;
      config.ixps_per_region = 2;
      config.ixp_member_fraction = 0.08;
      config.ixp_peers_per_member = 6;
      break;
    case ScalePreset::kLarge:
      config.tier1_count = 15;
      config.tier2_count = 1700;
      config.stub_count = 30000;
      config.region_count = 6;
      config.cities_per_region = 12;
      config.tier2_peering_prob = 0.015;
      config.ixps_per_region = 2;
      config.ixp_member_fraction = 0.06;
      config.ixp_peers_per_member = 8;
      config.stub_base = 20000;  // 20000..50000, clear of the RS base.
      break;
    case ScalePreset::kInternet:
      config.tier1_count = 15;
      config.tier2_count = 2600;
      config.stub_count = 72500;
      config.region_count = 8;
      config.cities_per_region = 12;
      config.tier2_peering_prob = 0.01;
      config.ixps_per_region = 2;
      config.ixp_member_fraction = 0.05;
      config.ixp_peers_per_member = 8;
      // 72.5K stubs overflow any 16-bit slot above the transit ranges:
      // park route servers between transit and stubs, and let the stub
      // range run past the 16-bit ASN boundary (20000..92500) the way
      // real 32-bit ASN allocations do.
      config.route_server_base = 15000;
      config.stub_base = 20000;
      break;
  }
  return config;
}

const char* preset_name(ScalePreset preset) noexcept {
  switch (preset) {
    case ScalePreset::kTiny: return "tiny";
    case ScalePreset::kSmall: return "small";
    case ScalePreset::kMedium: return "medium";
    case ScalePreset::kLarge: return "large";
    case ScalePreset::kInternet: return "internet";
  }
  return "?";
}

std::vector<ScalePreset> all_scale_presets() {
  return {ScalePreset::kTiny, ScalePreset::kSmall, ScalePreset::kMedium,
          ScalePreset::kLarge, ScalePreset::kInternet};
}

}  // namespace bgpintent::topo
