// IPv4 prefix value type.
//
// The reproduction (like the paper's regular-community analysis) works on
// IPv4 unicast routes.  Prefixes are canonicalized: host bits beyond the
// prefix length are zeroed on construction so equality and hashing behave.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

namespace bgpintent::bgp {

class Prefix {
 public:
  constexpr Prefix() noexcept = default;

  /// addr is host byte order; len in [0, 32].  Host bits are zeroed.
  constexpr Prefix(std::uint32_t addr, std::uint8_t len) noexcept
      : addr_(addr & mask_for(len)), len_(len > 32 ? 32 : len) {}

  [[nodiscard]] constexpr std::uint32_t address() const noexcept { return addr_; }
  [[nodiscard]] constexpr std::uint8_t length() const noexcept { return len_; }

  /// Network mask for this prefix length, host byte order.
  [[nodiscard]] constexpr std::uint32_t mask() const noexcept {
    return mask_for(len_);
  }

  /// True if `other` is equal to or more specific than this prefix.
  [[nodiscard]] constexpr bool covers(const Prefix& other) const noexcept {
    return other.len_ >= len_ && (other.addr_ & mask()) == addr_;
  }

  /// True if the address (host byte order) falls inside the prefix.
  [[nodiscard]] constexpr bool contains(std::uint32_t addr) const noexcept {
    return (addr & mask()) == addr_;
  }

  /// "a.b.c.d/len".
  [[nodiscard]] std::string to_string() const;

  /// Parses "a.b.c.d/len"; rejects octets > 255, len > 32, junk.
  /// Host bits are canonicalized (zeroed), matching the constructor.
  [[nodiscard]] static std::optional<Prefix> parse(std::string_view text) noexcept;

  friend constexpr auto operator<=>(const Prefix&, const Prefix&) noexcept =
      default;

 private:
  [[nodiscard]] static constexpr std::uint32_t mask_for(std::uint8_t len) noexcept {
    return len == 0 ? 0 : ~std::uint32_t{0} << (32 - (len > 32 ? 32 : len));
  }

  std::uint32_t addr_ = 0;
  std::uint8_t len_ = 0;
};

}  // namespace bgpintent::bgp

template <>
struct std::hash<bgpintent::bgp::Prefix> {
  std::size_t operator()(const bgpintent::bgp::Prefix& p) const noexcept {
    const std::uint64_t key =
        static_cast<std::uint64_t>(p.address()) << 8 | p.length();
    return static_cast<std::size_t>(key * 0x9e3779b97f4a7c15ULL);
  }
};
