// Route records as observed at a BGP vantage point, and the
// (AS path, community) tuple that is the unit of input to the paper's
// inference method (§4: "unique AS path and BGP Community tuples").
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "bgp/aspath.hpp"
#include "bgp/community.hpp"
#include "bgp/extcommunity.hpp"
#include "bgp/prefix.hpp"

namespace bgpintent::bgp {

/// BGP ORIGIN attribute (RFC 4271 §4.3).
enum class Origin : std::uint8_t { kIgp = 0, kEgp = 1, kIncomplete = 2 };

/// A best route as dumped by a collector RIB or carried in an update.
struct Route {
  Prefix prefix;
  AsPath path;
  std::vector<Community> communities;
  std::vector<LargeCommunity> large_communities;
  std::vector<ExtCommunity> ext_communities;
  std::uint32_t next_hop = 0;  // IPv4, host byte order
  Origin origin_attr = Origin::kIgp;
  std::optional<std::uint32_t> med;
  std::optional<std::uint32_t> local_pref;

  /// True if the regular community list contains `c`.
  [[nodiscard]] bool has_community(Community c) const noexcept;

  /// Sorts and deduplicates both community lists (canonical form for
  /// comparisons; BGP community order is not semantically meaningful).
  void canonicalize_communities();

  friend bool operator==(const Route&, const Route&) = default;
};

/// Identity of the collector peer (vantage point) that exported a route.
struct VantagePointId {
  Asn asn = 0;
  std::uint32_t address = 0;  // peer IP, host byte order

  friend auto operator<=>(const VantagePointId&, const VantagePointId&) = default;
};

/// One RIB row: which vantage point saw which route.
struct RibEntry {
  VantagePointId vantage_point;
  Route route;

  friend bool operator==(const RibEntry&, const RibEntry&) = default;
};

/// The pipeline's unit of input.  The paper extracts unique
/// (AS path, community) pairs from RIBs and updates; `count` tracks how
/// many times the pair was seen (informational only — the method counts
/// unique paths, not occurrences).
struct PathCommunityTuple {
  AsPath path;
  Community community;
  std::uint64_t count = 1;

  friend bool operator==(const PathCommunityTuple&,
                         const PathCommunityTuple&) = default;
};

/// Expands RIB entries into per-community tuples (one per (path, community)
/// pair present on each route).
[[nodiscard]] std::vector<PathCommunityTuple> tuples_from_entries(
    const std::vector<RibEntry>& entries);

}  // namespace bgpintent::bgp
