#include "bgp/aspath.hpp"

#include <algorithm>

#include "util/strings.hpp"

namespace bgpintent::bgp {

AsPath::AsPath(std::vector<Asn> sequence) {
  if (!sequence.empty())
    segments_.push_back(PathSegment{SegmentType::kSequence, std::move(sequence)});
}

AsPath::AsPath(std::vector<PathSegment> segments)
    : segments_(std::move(segments)) {
  std::erase_if(segments_,
                [](const PathSegment& s) { return s.asns.empty(); });
}

std::size_t AsPath::length() const noexcept {
  std::size_t n = 0;
  for (const auto& seg : segments_) n += seg.asns.size();
  return n;
}

std::size_t AsPath::selection_length() const noexcept {
  std::size_t n = 0;
  for (const auto& seg : segments_)
    n += seg.type == SegmentType::kSet ? 1 : seg.asns.size();
  return n;
}

bool AsPath::contains(Asn asn) const noexcept {
  for (const auto& seg : segments_)
    for (Asn a : seg.asns)
      if (a == asn) return true;
  return false;
}

std::vector<Asn> AsPath::unique_asns() const {
  std::vector<Asn> out;
  for (const auto& seg : segments_)
    for (Asn a : seg.asns)
      if (std::find(out.begin(), out.end(), a) == out.end()) out.push_back(a);
  return out;
}

std::optional<Asn> AsPath::first() const noexcept {
  if (segments_.empty() || segments_.front().asns.empty()) return std::nullopt;
  return segments_.front().asns.front();
}

std::optional<Asn> AsPath::origin() const noexcept {
  if (segments_.empty()) return std::nullopt;
  const PathSegment& last = segments_.back();
  if (last.type != SegmentType::kSequence || last.asns.empty())
    return std::nullopt;
  return last.asns.back();
}

std::optional<Asn> AsPath::next_toward_origin(Asn asn) const noexcept {
  for (std::size_t s = 0; s < segments_.size(); ++s) {
    const auto& seg = segments_[s];
    if (seg.type != SegmentType::kSequence) continue;
    for (std::size_t i = 0; i < seg.asns.size(); ++i) {
      if (seg.asns[i] != asn) continue;
      // Skip prepends of asn itself.
      std::size_t j = i;
      while (j < seg.asns.size() && seg.asns[j] == asn) ++j;
      if (j < seg.asns.size()) return seg.asns[j];
      // Next element is in the following segment.
      if (s + 1 < segments_.size()) {
        const auto& next = segments_[s + 1];
        if (next.type == SegmentType::kSequence && !next.asns.empty())
          return next.asns.front();
      }
      return std::nullopt;
    }
  }
  return std::nullopt;
}

AsPath AsPath::prepended(Asn asn, std::size_t count) const {
  AsPath out = *this;
  if (count == 0) return out;
  if (!out.segments_.empty() &&
      out.segments_.front().type == SegmentType::kSequence) {
    auto& front = out.segments_.front().asns;
    front.insert(front.begin(), count, asn);
  } else {
    out.segments_.insert(
        out.segments_.begin(),
        PathSegment{SegmentType::kSequence, std::vector<Asn>(count, asn)});
  }
  return out;
}

std::string AsPath::to_string() const {
  std::string out;
  for (const auto& seg : segments_) {
    if (seg.type == SegmentType::kSequence) {
      for (Asn a : seg.asns) {
        if (!out.empty()) out += ' ';
        out += std::to_string(a);
      }
    } else {
      if (!out.empty()) out += ' ';
      out += '{';
      for (std::size_t i = 0; i < seg.asns.size(); ++i) {
        if (i > 0) out += ',';
        out += std::to_string(seg.asns[i]);
      }
      out += '}';
    }
  }
  return out;
}

std::optional<AsPath> AsPath::parse(std::string_view text) {
  std::vector<PathSegment> segments;
  auto flush_seq = [&](std::vector<Asn>& seq) {
    if (!seq.empty()) {
      segments.push_back(PathSegment{SegmentType::kSequence, std::move(seq)});
      seq.clear();
    }
  };
  std::vector<Asn> seq;
  for (std::string_view token : util::split_whitespace(text)) {
    if (token.front() == '{') {
      if (token.back() != '}' || token.size() < 3) return std::nullopt;
      flush_seq(seq);
      PathSegment set{SegmentType::kSet, {}};
      for (auto member : util::split(token.substr(1, token.size() - 2), ',')) {
        auto asn = parse_asn(member);
        if (!asn) return std::nullopt;
        set.asns.push_back(*asn);
      }
      if (set.asns.empty()) return std::nullopt;
      segments.push_back(std::move(set));
    } else {
      auto asn = parse_asn(token);
      if (!asn) return std::nullopt;
      seq.push_back(*asn);
    }
  }
  flush_seq(seq);
  return AsPath(std::move(segments));
}

std::uint64_t AsPath::hash() const noexcept {
  // FNV-1a over segment boundaries and ASNs; stable across runs.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ULL;
  };
  for (const auto& seg : segments_) {
    mix(static_cast<std::uint64_t>(seg.type) << 32 | seg.asns.size());
    for (Asn a : seg.asns) mix(a);
  }
  return h;
}

}  // namespace bgpintent::bgp
