// Autonomous System Number helpers.
//
// ASNs are plain 32-bit integers (RFC 6793 4-octet space).  Regular BGP
// communities can only name 16-bit ASNs in their alpha field, so several
// predicates distinguish the 16-bit sub-ranges.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace bgpintent::bgp {

using Asn = std::uint32_t;

/// AS_TRANS (RFC 6793): placeholder for 4-octet ASNs in 2-octet fields.
inline constexpr Asn kAsTrans = 23456;

/// True for 16-bit private-use ASNs 64512-65534 (RFC 6996).
[[nodiscard]] constexpr bool is_private_asn16(Asn asn) noexcept {
  return asn >= 64512 && asn <= 65534;
}

/// True for 32-bit private-use ASNs 4200000000-4294967294 (RFC 6996).
[[nodiscard]] constexpr bool is_private_asn32(Asn asn) noexcept {
  return asn >= 4200000000U && asn <= 4294967294U;
}

/// True for documentation ASNs 64496-64511 and 65536-65551 (RFC 5398).
[[nodiscard]] constexpr bool is_documentation_asn(Asn asn) noexcept {
  return (asn >= 64496 && asn <= 64511) || (asn >= 65536 && asn <= 65551);
}

/// True for ASN 0 and 65535 / 4294967295 (reserved, RFC 7607 / RFC 1930).
[[nodiscard]] constexpr bool is_reserved_asn(Asn asn) noexcept {
  return asn == 0 || asn == 65535 || asn == 4294967295U;
}

/// The paper excludes communities whose alpha is not a routable public
/// 16-bit ASN: private, documentation, reserved, or AS_TRANS values cannot
/// identify the operator that defined the community.
[[nodiscard]] constexpr bool is_public_asn16(Asn asn) noexcept {
  return asn > 0 && asn < 64496 && asn != kAsTrans;
}

/// True if the ASN fits in 16 bits (encodable in a 2-octet AS path).
[[nodiscard]] constexpr bool fits_asn16(Asn asn) noexcept {
  return asn <= 0xffff;
}

/// "asplain" decimal rendering (RFC 5396).
[[nodiscard]] std::string asn_to_string(Asn asn);

/// Parses asplain decimal; rejects trailing garbage and values > 2^32-1.
[[nodiscard]] std::optional<Asn> parse_asn(std::string_view text) noexcept;

}  // namespace bgpintent::bgp
