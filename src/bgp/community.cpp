#include "bgp/community.hpp"

#include "util/strings.hpp"

namespace bgpintent::bgp {

std::string Community::to_string() const {
  return std::to_string(alpha()) + ":" + std::to_string(beta());
}

std::optional<Community> Community::parse(std::string_view text) noexcept {
  const auto fields = util::split(util::trim(text), ':');
  if (fields.size() != 2) return std::nullopt;
  const auto alpha = util::parse_u32(fields[0]);
  const auto beta = util::parse_u32(fields[1]);
  if (!alpha || !beta || *alpha > 0xffff || *beta > 0xffff) return std::nullopt;
  return Community(static_cast<std::uint16_t>(*alpha),
                   static_cast<std::uint16_t>(*beta));
}

std::string LargeCommunity::to_string() const {
  return std::to_string(alpha_) + ":" + std::to_string(beta_) + ":" +
         std::to_string(gamma_);
}

std::optional<LargeCommunity> LargeCommunity::parse(
    std::string_view text) noexcept {
  const auto fields = util::split(util::trim(text), ':');
  if (fields.size() != 3) return std::nullopt;
  const auto alpha = util::parse_u32(fields[0]);
  const auto beta = util::parse_u32(fields[1]);
  const auto gamma = util::parse_u32(fields[2]);
  if (!alpha || !beta || !gamma) return std::nullopt;
  return LargeCommunity(*alpha, *beta, *gamma);
}

}  // namespace bgpintent::bgp
