// BGP community attribute values.
//
// Community      — regular 32-bit community (RFC 1997), alpha:beta where
//                  alpha is the 16-bit ASN that defines the meaning of the
//                  16-bit beta.
// LargeCommunity — 96-bit community (RFC 8092), alpha:beta:gamma with a
//                  32-bit ASN alpha.
//
// Both are small value types with total ordering (by alpha, then beta[,
// gamma]) and std::hash support so they can key maps and sets.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

#include "bgp/asn.hpp"

namespace bgpintent::bgp {

/// Regular 32-bit BGP community (RFC 1997): alpha:beta.
class Community {
 public:
  constexpr Community() noexcept = default;
  constexpr Community(std::uint16_t alpha, std::uint16_t beta) noexcept
      : value_(static_cast<std::uint32_t>(alpha) << 16 | beta) {}

  /// From the 32-bit wire representation (alpha in the high 16 bits).
  [[nodiscard]] static constexpr Community from_wire(std::uint32_t raw) noexcept {
    Community c;
    c.value_ = raw;
    return c;
  }

  [[nodiscard]] constexpr std::uint16_t alpha() const noexcept {
    return static_cast<std::uint16_t>(value_ >> 16);
  }
  [[nodiscard]] constexpr std::uint16_t beta() const noexcept {
    return static_cast<std::uint16_t>(value_ & 0xffff);
  }
  [[nodiscard]] constexpr std::uint32_t wire() const noexcept { return value_; }

  /// The AS that assigns meaning to this community.
  [[nodiscard]] constexpr Asn owner() const noexcept { return alpha(); }

  /// True for values in the reserved ranges 0:* and 65535:* (RFC 1997).
  [[nodiscard]] constexpr bool is_reserved_range() const noexcept {
    return alpha() == 0 || alpha() == 0xffff;
  }

  /// True if this is one of the IANA well-known communities (65535:*).
  [[nodiscard]] constexpr bool is_well_known() const noexcept {
    return alpha() == 0xffff;
  }

  /// "alpha:beta" decimal form.
  [[nodiscard]] std::string to_string() const;

  /// Parses "alpha:beta"; both fields must be decimal and fit 16 bits.
  [[nodiscard]] static std::optional<Community> parse(
      std::string_view text) noexcept;

  friend constexpr auto operator<=>(Community, Community) noexcept = default;

 private:
  std::uint32_t value_ = 0;
};

// Well-known communities (RFC 1997, RFC 3765, RFC 7999, RFC 8326).
inline constexpr Community kNoExport = Community::from_wire(0xffffff01);
inline constexpr Community kNoAdvertise = Community::from_wire(0xffffff02);
inline constexpr Community kNoExportSubconfed = Community::from_wire(0xffffff03);
inline constexpr Community kNoPeer = Community::from_wire(0xffffff04);
inline constexpr Community kBlackhole = Community::from_wire(0xffff029a);
inline constexpr Community kGracefulShutdown = Community::from_wire(0xffff0000);

/// Large 96-bit BGP community (RFC 8092): alpha:beta:gamma.
class LargeCommunity {
 public:
  constexpr LargeCommunity() noexcept = default;
  constexpr LargeCommunity(std::uint32_t alpha, std::uint32_t beta,
                           std::uint32_t gamma) noexcept
      : alpha_(alpha), beta_(beta), gamma_(gamma) {}

  [[nodiscard]] constexpr std::uint32_t alpha() const noexcept { return alpha_; }
  [[nodiscard]] constexpr std::uint32_t beta() const noexcept { return beta_; }
  [[nodiscard]] constexpr std::uint32_t gamma() const noexcept { return gamma_; }
  [[nodiscard]] constexpr Asn owner() const noexcept { return alpha_; }

  /// "alpha:beta:gamma" decimal form.
  [[nodiscard]] std::string to_string() const;

  /// Parses "alpha:beta:gamma" decimal.
  [[nodiscard]] static std::optional<LargeCommunity> parse(
      std::string_view text) noexcept;

  friend constexpr auto operator<=>(LargeCommunity,
                                    LargeCommunity) noexcept = default;

 private:
  std::uint32_t alpha_ = 0;
  std::uint32_t beta_ = 0;
  std::uint32_t gamma_ = 0;
};

}  // namespace bgpintent::bgp

template <>
struct std::hash<bgpintent::bgp::Community> {
  std::size_t operator()(bgpintent::bgp::Community c) const noexcept {
    // Fibonacci scrambling; community values cluster densely in low betas.
    return static_cast<std::size_t>(c.wire()) * 0x9e3779b97f4a7c15ULL;
  }
};

template <>
struct std::hash<bgpintent::bgp::LargeCommunity> {
  std::size_t operator()(const bgpintent::bgp::LargeCommunity& c) const noexcept {
    std::size_t h = static_cast<std::size_t>(c.alpha()) * 0x9e3779b97f4a7c15ULL;
    h ^= (static_cast<std::size_t>(c.beta()) + 0x9e3779b97f4a7c15ULL + (h << 6) +
          (h >> 2));
    h ^= (static_cast<std::size_t>(c.gamma()) + 0x9e3779b97f4a7c15ULL +
          (h << 6) + (h >> 2));
    return h;
  }
};
