#include "bgp/path_table.hpp"

#include <algorithm>
#include <stdexcept>

namespace bgpintent::bgp {

bool PathTable::equals(PathId id, const AsPath& path) const noexcept {
  const Meta& m = meta_[id];
  const auto& segments = path.segments();
  if (segments.size() != m.seg_count) return false;
  const Asn* slot = asn_arena_.data() + m.asn_begin;
  for (std::uint32_t s = 0; s < m.seg_count; ++s) {
    const SegmentSpan& seg = seg_arena_[m.seg_begin + s];
    if (segments[s].type != seg.type || segments[s].asns.size() != seg.count)
      return false;
    if (!std::equal(segments[s].asns.begin(), segments[s].asns.end(), slot))
      return false;
    slot += seg.count;
  }
  return true;
}

std::size_t PathTable::probe_start(std::uint64_t hash) const noexcept {
  // Fibonacci finalizer: the FNV path hash is well mixed in the low bits,
  // but one multiply costs nothing and keeps the linear probe sequences
  // short even for adversarial inputs.
  return static_cast<std::size_t>((hash * 0x9e3779b97f4a7c15ULL) >> 32) &
         slot_mask_;
}

void PathTable::rehash(std::size_t capacity) {
  slots_.assign(capacity, kEmptySlot);
  slot_mask_ = capacity - 1;
  for (PathId id = 0; id < meta_.size(); ++id) {
    std::size_t slot = probe_start(meta_[id].hash);
    while (slots_[slot] != kEmptySlot) slot = (slot + 1) & slot_mask_;
    slots_[slot] = id;
  }
}

std::optional<PathId> PathTable::find(const AsPath& path) const noexcept {
  if (slots_.empty()) return std::nullopt;
  const std::uint64_t h = path.hash();
  for (std::size_t slot = probe_start(h);; slot = (slot + 1) & slot_mask_) {
    const PathId id = slots_[slot];
    if (id == kEmptySlot) return std::nullopt;
    if (meta_[id].hash == h && equals(id, path)) return id;
  }
}

PathId PathTable::intern(const AsPath& path) {
  // Grow at 7/8 load so probe sequences stay short.
  if (slots_.size() - meta_.size() <= slots_.size() / 8)
    rehash(slots_.empty() ? 64 : slots_.size() * 2);
  const std::uint64_t h = path.hash();
  std::size_t slot = probe_start(h);
  for (;; slot = (slot + 1) & slot_mask_) {
    const PathId id = slots_[slot];
    if (id == kEmptySlot) break;
    if (meta_[id].hash == h && equals(id, path)) return id;
  }
  slots_[slot] = static_cast<PathId>(meta_.size());

  Meta m;
  m.hash = h;
  m.asn_begin = static_cast<std::uint32_t>(asn_arena_.size());
  m.seg_begin = static_cast<std::uint32_t>(seg_arena_.size());
  for (const PathSegment& seg : path.segments()) {
    seg_arena_.push_back(
        SegmentSpan{seg.type, static_cast<std::uint32_t>(seg.asns.size())});
    asn_arena_.insert(asn_arena_.end(), seg.asns.begin(), seg.asns.end());
  }
  m.asn_count = static_cast<std::uint32_t>(asn_arena_.size()) - m.asn_begin;
  m.seg_count = static_cast<std::uint32_t>(seg_arena_.size()) - m.seg_begin;

  m.uniq_begin = static_cast<std::uint32_t>(uniq_arena_.size());
  uniq_arena_.insert(uniq_arena_.end(), asn_arena_.begin() + m.asn_begin,
                     asn_arena_.end());
  const auto uniq_begin = uniq_arena_.begin() + m.uniq_begin;
  std::sort(uniq_begin, uniq_arena_.end());
  uniq_arena_.erase(std::unique(uniq_begin, uniq_arena_.end()),
                    uniq_arena_.end());
  m.uniq_count = static_cast<std::uint32_t>(uniq_arena_.size()) - m.uniq_begin;

  const PathId id = static_cast<PathId>(meta_.size());
  meta_.push_back(m);
  return id;
}

bool PathTable::equals_sequence(PathId id,
                                std::span<const Asn> sequence) const noexcept {
  const Meta& m = meta_[id];
  if (sequence.empty()) return m.seg_count == 0;
  if (m.seg_count != 1) return false;
  const SegmentSpan& seg = seg_arena_[m.seg_begin];
  if (seg.type != SegmentType::kSequence || seg.count != sequence.size())
    return false;
  return std::equal(sequence.begin(), sequence.end(),
                    asn_arena_.data() + m.asn_begin);
}

PathId PathTable::intern_sequence(std::span<const Asn> sequence) {
  if (slots_.size() - meta_.size() <= slots_.size() / 8)
    rehash(slots_.empty() ? 64 : slots_.size() * 2);
  // FNV-1a, byte-for-byte the AsPath::hash() of a single kSequence segment
  // (AsPath drops empty segments, so an empty sequence hashes to the basis).
  std::uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ULL;
  };
  if (!sequence.empty()) {
    mix(static_cast<std::uint64_t>(SegmentType::kSequence) << 32 |
        sequence.size());
    for (Asn a : sequence) mix(a);
  }
  std::size_t slot = probe_start(h);
  for (;; slot = (slot + 1) & slot_mask_) {
    const PathId id = slots_[slot];
    if (id == kEmptySlot) break;
    if (meta_[id].hash == h && equals_sequence(id, sequence)) return id;
  }
  slots_[slot] = static_cast<PathId>(meta_.size());

  Meta m;
  m.hash = h;
  m.asn_begin = static_cast<std::uint32_t>(asn_arena_.size());
  m.seg_begin = static_cast<std::uint32_t>(seg_arena_.size());
  if (!sequence.empty()) {
    seg_arena_.push_back(SegmentSpan{
        SegmentType::kSequence, static_cast<std::uint32_t>(sequence.size())});
    asn_arena_.insert(asn_arena_.end(), sequence.begin(), sequence.end());
  }
  m.asn_count = static_cast<std::uint32_t>(asn_arena_.size()) - m.asn_begin;
  m.seg_count = static_cast<std::uint32_t>(seg_arena_.size()) - m.seg_begin;

  m.uniq_begin = static_cast<std::uint32_t>(uniq_arena_.size());
  uniq_arena_.insert(uniq_arena_.end(), sequence.begin(), sequence.end());
  const auto uniq_begin = uniq_arena_.begin() + m.uniq_begin;
  std::sort(uniq_begin, uniq_arena_.end());
  uniq_arena_.erase(std::unique(uniq_begin, uniq_arena_.end()),
                    uniq_arena_.end());
  m.uniq_count = static_cast<std::uint32_t>(uniq_arena_.size()) - m.uniq_begin;

  const PathId id = static_cast<PathId>(meta_.size());
  meta_.push_back(m);
  return id;
}

std::span<const Asn> PathTable::asns(PathId id) const noexcept {
  const Meta& m = meta_[id];
  return {asn_arena_.data() + m.asn_begin, m.asn_count};
}

std::span<const Asn> PathTable::unique_asns(PathId id) const noexcept {
  const Meta& m = meta_[id];
  return {uniq_arena_.data() + m.uniq_begin, m.uniq_count};
}

bool PathTable::contains(PathId id, Asn asn) const noexcept {
  const std::span<const Asn> uniq = unique_asns(id);
  return std::binary_search(uniq.begin(), uniq.end(), asn);
}

std::optional<Asn> PathTable::next_toward_origin(PathId id,
                                                 Asn asn) const noexcept {
  const Meta& m = meta_[id];
  const Asn* slot = asn_arena_.data() + m.asn_begin;
  for (std::uint32_t s = 0; s < m.seg_count; ++s) {
    const SegmentSpan& seg = seg_arena_[m.seg_begin + s];
    if (seg.type != SegmentType::kSequence) {
      slot += seg.count;
      continue;
    }
    for (std::uint32_t i = 0; i < seg.count; ++i) {
      if (slot[i] != asn) continue;
      // Skip prepends of asn itself.
      std::uint32_t j = i;
      while (j < seg.count && slot[j] == asn) ++j;
      if (j < seg.count) return slot[j];
      // Next element is in the following segment.
      if (s + 1 < m.seg_count) {
        const SegmentSpan& next = seg_arena_[m.seg_begin + s + 1];
        if (next.type == SegmentType::kSequence && next.count > 0)
          return slot[seg.count];
      }
      return std::nullopt;
    }
    slot += seg.count;
  }
  return std::nullopt;
}

AsPath PathTable::materialize(PathId id) const {
  const Meta& m = meta_[id];
  std::vector<PathSegment> segments;
  segments.reserve(m.seg_count);
  const Asn* slot = asn_arena_.data() + m.asn_begin;
  for (std::uint32_t s = 0; s < m.seg_count; ++s) {
    const SegmentSpan& seg = seg_arena_[m.seg_begin + s];
    segments.push_back(
        PathSegment{seg.type, std::vector<Asn>(slot, slot + seg.count)});
    slot += seg.count;
  }
  return AsPath(std::move(segments));
}

PathTable::ExportedColumns PathTable::export_columns() const {
  ExportedColumns out;
  out.asn_arena = asn_arena_;
  out.uniq_arena = uniq_arena_;
  out.seg_types.reserve(seg_arena_.size());
  out.seg_counts.reserve(seg_arena_.size());
  for (const SegmentSpan& seg : seg_arena_) {
    out.seg_types.push_back(static_cast<std::uint8_t>(seg.type));
    out.seg_counts.push_back(seg.count);
  }
  const std::size_t n = meta_.size();
  out.asn_begin.reserve(n);
  out.asn_count.reserve(n);
  out.seg_begin.reserve(n);
  out.seg_count.reserve(n);
  out.uniq_begin.reserve(n);
  out.uniq_count.reserve(n);
  out.hashes.reserve(n);
  for (const Meta& m : meta_) {
    out.asn_begin.push_back(m.asn_begin);
    out.asn_count.push_back(m.asn_count);
    out.seg_begin.push_back(m.seg_begin);
    out.seg_count.push_back(m.seg_count);
    out.uniq_begin.push_back(m.uniq_begin);
    out.uniq_count.push_back(m.uniq_count);
    out.hashes.push_back(m.hash);
  }
  return out;
}

PathTable PathTable::from_columns(const ImportColumns& columns) {
  const std::size_t n = columns.hashes.size();
  if (columns.asn_begin.size() != n || columns.asn_count.size() != n ||
      columns.seg_begin.size() != n || columns.seg_count.size() != n ||
      columns.uniq_begin.size() != n || columns.uniq_count.size() != n)
    throw std::invalid_argument("path columns: per-path column length mismatch");
  if (columns.seg_types.size() != columns.seg_counts.size())
    throw std::invalid_argument("path columns: segment column length mismatch");

  PathTable table;
  table.asn_arena_.assign(columns.asn_arena.begin(), columns.asn_arena.end());
  table.uniq_arena_.assign(columns.uniq_arena.begin(),
                           columns.uniq_arena.end());
  table.seg_arena_.reserve(columns.seg_types.size());
  for (std::size_t s = 0; s < columns.seg_types.size(); ++s) {
    const std::uint8_t type = columns.seg_types[s];
    if (type != static_cast<std::uint8_t>(SegmentType::kSet) &&
        type != static_cast<std::uint8_t>(SegmentType::kSequence))
      throw std::invalid_argument("path columns: invalid segment type");
    table.seg_arena_.push_back(
        SegmentSpan{static_cast<SegmentType>(type), columns.seg_counts[s]});
  }
  table.meta_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Meta m;
    m.asn_begin = columns.asn_begin[i];
    m.asn_count = columns.asn_count[i];
    m.seg_begin = columns.seg_begin[i];
    m.seg_count = columns.seg_count[i];
    m.uniq_begin = columns.uniq_begin[i];
    m.uniq_count = columns.uniq_count[i];
    m.hash = columns.hashes[i];
    if (std::uint64_t{m.asn_begin} + m.asn_count > table.asn_arena_.size() ||
        std::uint64_t{m.seg_begin} + m.seg_count > table.seg_arena_.size() ||
        std::uint64_t{m.uniq_begin} + m.uniq_count > table.uniq_arena_.size())
      throw std::invalid_argument("path columns: span outside arena");
    table.meta_.push_back(m);
  }
  // Rebuild the dedup index at the same load factor intern() maintains, so
  // the first post-import intern() neither rehashes eagerly nor probes an
  // over-full table.
  if (n > 0) {
    // Grow while free slots (capacity - n) would be <= capacity/8, written
    // without the subtraction so n > capacity cannot underflow and leave
    // the probe table over-full (a full table makes rehash() spin forever).
    std::size_t capacity = 64;
    while (n + capacity / 8 >= capacity) capacity *= 2;
    table.rehash(capacity);
  }
  return table;
}

std::size_t PathTable::memory_bytes() const noexcept {
  return asn_arena_.capacity() * sizeof(Asn) +
         seg_arena_.capacity() * sizeof(SegmentSpan) +
         uniq_arena_.capacity() * sizeof(Asn) +
         meta_.capacity() * sizeof(Meta) +
         slots_.capacity() * sizeof(PathId);
}

std::vector<InternedTuple> intern_entries(PathTable& table,
                                          std::span<const RibEntry> entries) {
  std::size_t tuple_count = 0;
  for (const RibEntry& entry : entries)
    tuple_count += entry.route.communities.size();
  std::vector<InternedTuple> tuples;
  tuples.reserve(tuple_count);
  for (const RibEntry& entry : entries) {
    if (entry.route.communities.empty()) continue;  // contributes no tuples
    const PathId id = table.intern(entry.route.path);
    for (const Community community : entry.route.communities)
      tuples.push_back(InternedTuple{id, community});
  }
  return tuples;
}

std::vector<InternedTuple> intern_tuples(
    PathTable& table, std::span<const PathCommunityTuple> tuples) {
  std::vector<InternedTuple> out;
  out.reserve(tuples.size());
  for (const PathCommunityTuple& tuple : tuples)
    out.push_back(InternedTuple{table.intern(tuple.path), tuple.community});
  return out;
}

}  // namespace bgpintent::bgp
