#include "bgp/prefix.hpp"

#include "util/strings.hpp"

namespace bgpintent::bgp {

std::string Prefix::to_string() const {
  return std::to_string(addr_ >> 24) + "." + std::to_string((addr_ >> 16) & 0xff) +
         "." + std::to_string((addr_ >> 8) & 0xff) + "." +
         std::to_string(addr_ & 0xff) + "/" + std::to_string(len_);
}

std::optional<Prefix> Prefix::parse(std::string_view text) noexcept {
  const auto slash = util::split(util::trim(text), '/');
  if (slash.size() != 2) return std::nullopt;
  const auto octets = util::split(slash[0], '.');
  if (octets.size() != 4) return std::nullopt;
  std::uint32_t addr = 0;
  for (const auto octet : octets) {
    const auto value = util::parse_u32(octet);
    if (!value || *value > 255) return std::nullopt;
    addr = addr << 8 | *value;
  }
  const auto len = util::parse_u32(slash[1]);
  if (!len || *len > 32) return std::nullopt;
  return Prefix(addr, static_cast<std::uint8_t>(*len));
}

}  // namespace bgpintent::bgp
