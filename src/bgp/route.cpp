#include "bgp/route.hpp"

#include <algorithm>

namespace bgpintent::bgp {

bool Route::has_community(Community c) const noexcept {
  return std::find(communities.begin(), communities.end(), c) !=
         communities.end();
}

void Route::canonicalize_communities() {
  std::sort(communities.begin(), communities.end());
  communities.erase(std::unique(communities.begin(), communities.end()),
                    communities.end());
  std::sort(large_communities.begin(), large_communities.end());
  large_communities.erase(
      std::unique(large_communities.begin(), large_communities.end()),
      large_communities.end());
  std::sort(ext_communities.begin(), ext_communities.end());
  ext_communities.erase(
      std::unique(ext_communities.begin(), ext_communities.end()),
      ext_communities.end());
}

std::vector<PathCommunityTuple> tuples_from_entries(
    const std::vector<RibEntry>& entries) {
  std::size_t tuple_count = 0;
  for (const auto& entry : entries)
    tuple_count += entry.route.communities.size();
  std::vector<PathCommunityTuple> tuples;
  tuples.reserve(tuple_count);
  for (const auto& entry : entries)
    for (Community c : entry.route.communities)
      tuples.push_back(PathCommunityTuple{entry.route.path, c, 1});
  return tuples;
}

}  // namespace bgpintent::bgp
