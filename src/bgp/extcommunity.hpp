// Extended BGP communities (RFC 4360, RFC 5668).
//
// 64-bit values: type (with transitivity bit), subtype, and a 6-byte body
// whose layout depends on the type.  We model the common kinds seen in
// public BGP data — two-octet-AS specific, IPv4-address specific,
// four-octet-AS specific (RFC 5668) and opaque — with the route-target /
// route-origin subtypes spelled out.
//
// The intent-inference method operates on regular communities (the paper's
// scope); extended communities are carried through the MRT layer so the
// library round-trips real RouteViews data faithfully.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

#include "bgp/asn.hpp"

namespace bgpintent::bgp {

class ExtCommunity {
 public:
  // High-order type octets (transitive variants).
  static constexpr std::uint8_t kTypeTwoOctetAs = 0x00;
  static constexpr std::uint8_t kTypeIpv4Address = 0x01;
  static constexpr std::uint8_t kTypeFourOctetAs = 0x02;
  static constexpr std::uint8_t kTypeOpaque = 0x03;
  static constexpr std::uint8_t kNonTransitiveBit = 0x40;

  // Common subtypes.
  static constexpr std::uint8_t kSubtypeRouteTarget = 0x02;
  static constexpr std::uint8_t kSubtypeRouteOrigin = 0x03;

  constexpr ExtCommunity() noexcept = default;

  /// From the 8-byte wire value (big-endian interpreted as u64).
  [[nodiscard]] static constexpr ExtCommunity from_wire(
      std::uint64_t raw) noexcept {
    ExtCommunity c;
    c.value_ = raw;
    return c;
  }

  /// Two-octet-AS specific route target "rt:asn:value".
  [[nodiscard]] static ExtCommunity route_target(std::uint16_t asn,
                                                 std::uint32_t value) noexcept;
  /// Two-octet-AS specific route origin "ro:asn:value".
  [[nodiscard]] static ExtCommunity route_origin(std::uint16_t asn,
                                                 std::uint32_t value) noexcept;
  /// Four-octet-AS specific route target (RFC 5668).
  [[nodiscard]] static ExtCommunity route_target4(std::uint32_t asn,
                                                  std::uint16_t value) noexcept;

  [[nodiscard]] constexpr std::uint64_t wire() const noexcept { return value_; }
  [[nodiscard]] constexpr std::uint8_t type() const noexcept {
    return static_cast<std::uint8_t>(value_ >> 56);
  }
  [[nodiscard]] constexpr std::uint8_t subtype() const noexcept {
    return static_cast<std::uint8_t>(value_ >> 48);
  }
  /// Type with the transitivity bit masked off.
  [[nodiscard]] constexpr std::uint8_t base_type() const noexcept {
    return type() & static_cast<std::uint8_t>(~kNonTransitiveBit);
  }
  [[nodiscard]] constexpr bool is_transitive() const noexcept {
    return (type() & kNonTransitiveBit) == 0;
  }

  /// For two-octet-AS specific: the AS number field.
  [[nodiscard]] constexpr std::uint16_t as2() const noexcept {
    return static_cast<std::uint16_t>(value_ >> 32);
  }
  /// For two-octet-AS specific: the 4-byte local value.
  [[nodiscard]] constexpr std::uint32_t local4() const noexcept {
    return static_cast<std::uint32_t>(value_);
  }
  /// For four-octet-AS specific: the AS number field.
  [[nodiscard]] constexpr std::uint32_t as4() const noexcept {
    return static_cast<std::uint32_t>(value_ >> 16);
  }
  /// For four-octet-AS specific: the 2-byte local value.
  [[nodiscard]] constexpr std::uint16_t local2() const noexcept {
    return static_cast<std::uint16_t>(value_);
  }

  /// "rt:64500:100", "ro:64500:7", "rt4:212483:9", or "ext:<16 hex>".
  [[nodiscard]] std::string to_string() const;

  /// Parses the to_string() forms.
  [[nodiscard]] static std::optional<ExtCommunity> parse(
      std::string_view text) noexcept;

  friend constexpr auto operator<=>(ExtCommunity, ExtCommunity) noexcept =
      default;

 private:
  std::uint64_t value_ = 0;
};

}  // namespace bgpintent::bgp

template <>
struct std::hash<bgpintent::bgp::ExtCommunity> {
  std::size_t operator()(bgpintent::bgp::ExtCommunity c) const noexcept {
    return static_cast<std::size_t>(c.wire() * 0x9e3779b97f4a7c15ULL);
  }
};
