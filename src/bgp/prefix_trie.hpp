// Binary radix trie keyed by IPv4 prefixes.
//
// A header-only prefix table supporting exact lookup, longest-prefix match
// and covering-prefix enumeration — the data structure behind routing-table
// style tooling (anomaly watch, RIB diffing).  One node per bit on the
// inserted paths; values live only at marked nodes.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "bgp/prefix.hpp"

namespace bgpintent::bgp {

template <typename T>
class PrefixTrie {
 public:
  PrefixTrie() : root_(std::make_unique<Node>()) {}

  /// Inserts or overwrites the value at `prefix`.  Returns true if the
  /// prefix was newly inserted.
  bool insert(const Prefix& prefix, T value) {
    Node* node = walk_to(prefix, /*create=*/true);
    const bool fresh = !node->value.has_value();
    node->value = std::move(value);
    if (fresh) ++size_;
    return fresh;
  }

  /// Removes `prefix`; returns true if it was present.  (Nodes are kept;
  /// the trie is optimized for build-then-query workloads.)
  bool erase(const Prefix& prefix) {
    Node* node = walk_to(prefix, /*create=*/false);
    if (node == nullptr || !node->value.has_value()) return false;
    node->value.reset();
    --size_;
    return true;
  }

  /// Exact-match lookup.
  [[nodiscard]] const T* find(const Prefix& prefix) const {
    const Node* node = walk_to_const(prefix);
    if (node == nullptr || !node->value.has_value()) return nullptr;
    return &*node->value;
  }

  /// Longest-prefix match for a host address; nullptr when nothing covers.
  [[nodiscard]] const T* longest_match(std::uint32_t address) const {
    const Node* node = root_.get();
    const T* best = node->value ? &*node->value : nullptr;
    for (int bit = 31; bit >= 0 && node != nullptr; --bit) {
      node = node->child[(address >> bit) & 1].get();
      if (node != nullptr && node->value) best = &*node->value;
    }
    return best;
  }

  /// The most specific stored prefix covering `prefix` (including itself).
  [[nodiscard]] std::optional<Prefix> covering(const Prefix& prefix) const {
    const Node* node = root_.get();
    std::optional<Prefix> best;
    if (node->value) best = Prefix(0, 0);
    std::uint32_t accumulated = 0;
    for (std::uint8_t depth = 0; depth < prefix.length(); ++depth) {
      const std::uint32_t bit =
          (prefix.address() >> (31 - depth)) & 1;
      node = node->child[bit].get();
      if (node == nullptr) break;
      accumulated |= bit << (31 - depth);
      if (node->value)
        best = Prefix(accumulated, static_cast<std::uint8_t>(depth + 1));
    }
    return best;
  }

  /// All stored prefixes equal to or more specific than `prefix`,
  /// ascending by (address, length).
  [[nodiscard]] std::vector<Prefix> covered_by(const Prefix& prefix) const {
    std::vector<Prefix> out;
    const Node* node = walk_to_const(prefix);
    if (node != nullptr)
      collect(node, prefix.address(), prefix.length(), out);
    std::sort(out.begin(), out.end());
    return out;
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

 private:
  struct Node {
    std::optional<T> value;
    std::unique_ptr<Node> child[2];
  };

  Node* walk_to(const Prefix& prefix, bool create) {
    Node* node = root_.get();
    for (std::uint8_t depth = 0; depth < prefix.length(); ++depth) {
      const std::uint32_t bit = (prefix.address() >> (31 - depth)) & 1;
      if (node->child[bit] == nullptr) {
        if (!create) return nullptr;
        node->child[bit] = std::make_unique<Node>();
      }
      node = node->child[bit].get();
    }
    return node;
  }

  [[nodiscard]] const Node* walk_to_const(const Prefix& prefix) const {
    const Node* node = root_.get();
    for (std::uint8_t depth = 0; depth < prefix.length() && node != nullptr;
         ++depth) {
      const std::uint32_t bit = (prefix.address() >> (31 - depth)) & 1;
      node = node->child[bit].get();
    }
    return node;
  }

  static void collect(const Node* node, std::uint32_t address,
                      std::uint8_t depth, std::vector<Prefix>& out) {
    if (node->value) out.emplace_back(address, depth);
    if (depth >= 32) return;
    if (node->child[0])
      collect(node->child[0].get(), address,
              static_cast<std::uint8_t>(depth + 1), out);
    if (node->child[1])
      collect(node->child[1].get(),
              address | (1u << (31 - depth)),
              static_cast<std::uint8_t>(depth + 1), out);
  }

  std::unique_ptr<Node> root_;
  std::size_t size_ = 0;
};

}  // namespace bgpintent::bgp
