// AS_PATH attribute model.
//
// An AS path is a list of segments (RFC 4271 §4.3); we support AS_SEQUENCE
// and AS_SET.  Paths are written collector-first: element 0 is the vantage
// point's neighbor, the last element is (usually) the origin AS.
//
// AsPath is an immutable-ish value type with cheap equality/hashing so the
// pipeline can count *unique* AS paths, which is the unit of measurement in
// the paper's on-path:off-path ratios.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "bgp/asn.hpp"

namespace bgpintent::bgp {

/// Segment kinds we model (CONFED segments are deliberately out of scope:
/// they never appear in collector-facing eBGP paths).  Values match the
/// RFC 4271 wire encoding: AS_SET = 1, AS_SEQUENCE = 2.
enum class SegmentType : std::uint8_t { kSet = 1, kSequence = 2 };

/// One AS_PATH segment.
struct PathSegment {
  SegmentType type = SegmentType::kSequence;
  std::vector<Asn> asns;

  friend bool operator==(const PathSegment&, const PathSegment&) = default;
};

class AsPath {
 public:
  AsPath() = default;

  /// Builds a single-sequence path (the overwhelmingly common case).
  explicit AsPath(std::vector<Asn> sequence);

  /// Builds from explicit segments.
  explicit AsPath(std::vector<PathSegment> segments);

  [[nodiscard]] const std::vector<PathSegment>& segments() const noexcept {
    return segments_;
  }

  /// Mutable segment access for decoders that rebuild a scratch path in
  /// place to reuse its heap buffers (mrt::decode_path_attributes).  The
  /// caller owns the class invariant: no empty segments may remain.
  [[nodiscard]] std::vector<PathSegment>& mutable_segments() noexcept {
    return segments_;
  }

  [[nodiscard]] bool empty() const noexcept { return segments_.empty(); }

  /// Number of ASN slots across all segments (prepends counted).
  [[nodiscard]] std::size_t length() const noexcept;

  /// Hop count as used for best-path selection: an AS_SET counts as one hop,
  /// sequences count each (possibly prepended) slot.
  [[nodiscard]] std::size_t selection_length() const noexcept;

  /// True if `asn` appears anywhere in the path (any segment type).
  [[nodiscard]] bool contains(Asn asn) const noexcept;

  /// Distinct ASNs in path order (first occurrence), prepends collapsed.
  [[nodiscard]] std::vector<Asn> unique_asns() const;

  /// The first AS (vantage point's neighbor), if any.
  [[nodiscard]] std::optional<Asn> first() const noexcept;

  /// The origin AS: last ASN of the last AS_SEQUENCE; nullopt if the path
  /// ends in an AS_SET (aggregated route) or is empty.
  [[nodiscard]] std::optional<Asn> origin() const noexcept;

  /// The AS that follows `asn` toward the origin, skipping prepends of
  /// `asn` itself.  This is the neighbor that *sent* the route to `asn` —
  /// the paper inspects its relationship with `asn` for the customer:peer
  /// feature.  nullopt if `asn` is absent, is the origin, or the next
  /// element is inside an AS_SET.
  [[nodiscard]] std::optional<Asn> next_toward_origin(Asn asn) const noexcept;

  /// Returns a copy with `asn` prepended `count` times at the front.
  [[nodiscard]] AsPath prepended(Asn asn, std::size_t count) const;

  /// "701 1299 64496" with sets rendered "{4,5}".
  [[nodiscard]] std::string to_string() const;

  /// Parses the to_string() form.  Rejects malformed sets/ASNs.
  [[nodiscard]] static std::optional<AsPath> parse(std::string_view text);

  friend bool operator==(const AsPath&, const AsPath&) = default;

  /// Stable 64-bit hash of the full segment structure.
  [[nodiscard]] std::uint64_t hash() const noexcept;

 private:
  std::vector<PathSegment> segments_;
};

}  // namespace bgpintent::bgp

template <>
struct std::hash<bgpintent::bgp::AsPath> {
  std::size_t operator()(const bgpintent::bgp::AsPath& path) const noexcept {
    return static_cast<std::size_t>(path.hash());
  }
};
