// Path interning: each unique AS path is stored exactly once in a flat
// arena and referenced everywhere else by a dense 32-bit PathId.
//
// The paper's method operates on unique (AS path, community) tuples, and
// real routes carry many communities: materializing one AsPath copy per
// community multiplies both memory and per-tuple work (hashing, unique-ASN
// extraction, on-path scans) by the community count.  PathTable collapses
// that duplication at the ingestion boundary:
//
//   * All ASN slots live in one contiguous arena (`std::vector<Asn>`);
//     a path is an (offset, length) span into it plus a span of segment
//     descriptors, so interning N paths costs N spans, not N vectors of
//     vectors.
//   * Per-path facts are computed once at intern time: the structural
//     64-bit hash (identical to AsPath::hash()) and the sorted unique-ASN
//     span that makes contains() a binary search and unique-ASN iteration
//     an allocation-free span walk.
//   * Tuples shrink to trivially-copyable (PathId, Community) records —
//     8 bytes instead of a full AsPath copy.
//
// PathTable is append-only and single-writer; established ids and spans
// are never invalidated by later intern() calls from the same thread, and
// a const table is safe to read from many threads (the parallel
// observation build shards over a table interned up front).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "bgp/aspath.hpp"
#include "bgp/community.hpp"
#include "bgp/route.hpp"

namespace bgpintent::bgp {

/// Dense index into a PathTable; ids are assigned 0, 1, 2, ... in intern
/// order, so parallel consumers can use plain vectors keyed by PathId.
using PathId = std::uint32_t;

/// The interned pipeline record: one unique path reference + one community.
struct InternedTuple {
  PathId path = 0;
  Community community;

  friend bool operator==(const InternedTuple&, const InternedTuple&) = default;
};

class PathTable {
 public:
  /// Interns `path`, returning the existing id when the identical path
  /// (full segment structure) was interned before.
  PathId intern(const AsPath& path);

  /// Interns a plain ASN sequence (one kSequence segment; empty sequence is
  /// the empty path) without materializing an AsPath.  Ids, hashes, and
  /// dedup behaviour are exactly as if `AsPath(std::vector<Asn>(...))` had
  /// been interned — the routing simulator's compact RIBs use this to fold
  /// per-AS best paths straight out of working vectors.
  PathId intern_sequence(std::span<const Asn> sequence);

  /// Id of an already-interned path; nullopt when never interned.
  [[nodiscard]] std::optional<PathId> find(const AsPath& path) const noexcept;

  /// Number of unique paths interned.
  [[nodiscard]] std::size_t size() const noexcept { return meta_.size(); }
  [[nodiscard]] bool empty() const noexcept { return meta_.empty(); }

  /// Structural hash, identical to AsPath::hash() of the interned path.
  [[nodiscard]] std::uint64_t hash(PathId id) const noexcept {
    return meta_[id].hash;
  }

  /// Every ASN slot of the path in order (prepends preserved), flattened
  /// across segments.
  [[nodiscard]] std::span<const Asn> asns(PathId id) const noexcept;

  /// Distinct ASNs of the path, ascending (computed once at intern time).
  [[nodiscard]] std::span<const Asn> unique_asns(PathId id) const noexcept;

  /// True if `asn` appears anywhere in the path (binary search over the
  /// sorted unique-ASN span).
  [[nodiscard]] bool contains(PathId id, Asn asn) const noexcept;

  /// Mirrors AsPath::next_toward_origin over the interned representation.
  [[nodiscard]] std::optional<Asn> next_toward_origin(PathId id,
                                                      Asn asn) const noexcept;

  /// Reconstructs a full AsPath value (tests / debugging; the hot path
  /// never needs it).
  [[nodiscard]] AsPath materialize(PathId id) const;

  /// Bytes held by the arenas and per-path metadata (capacity, not size, so
  /// the figure matches what the allocator is actually charged for).  The
  /// dedup index is included.  This is the "tuple storage" number the
  /// observation-core bench reports against the legacy per-tuple AsPath
  /// copies (docs/PERFORMANCE.md).
  [[nodiscard]] std::size_t memory_bytes() const noexcept;

  // --- arena export / import (snapshot format v3, docs/SERVING.md §3) ---
  //
  // The table's backing storage decomposed into flat primitive columns:
  // the two ASN arenas are borrowed straight from the live vectors, the
  // per-segment and per-path metadata are flattened into freshly built
  // parallel columns.  from_columns() is the exact inverse — PathIds,
  // hashes, spans, and dedup behaviour of the rebuilt table are identical
  // to the exported one, so evidence keyed by id or hash survives a
  // snapshot round-trip untouched.

  /// Owned/borrowed mix produced by export_columns(); the spans borrow the
  /// live arenas and stay valid only while the table is unmodified.
  struct ExportedColumns {
    std::span<const Asn> asn_arena;
    std::span<const Asn> uniq_arena;
    std::vector<std::uint8_t> seg_types;    ///< SegmentType per segment
    std::vector<std::uint32_t> seg_counts;  ///< ASN slots per segment
    // Per-path metadata, one entry per PathId in id order.
    std::vector<std::uint32_t> asn_begin, asn_count;
    std::vector<std::uint32_t> seg_begin, seg_count;
    std::vector<std::uint32_t> uniq_begin, uniq_count;
    std::vector<std::uint64_t> hashes;
  };
  [[nodiscard]] ExportedColumns export_columns() const;

  /// Borrowed views handed to from_columns(); the caller (the snapshot
  /// reader) owns the backing bytes and has already checksummed them.
  struct ImportColumns {
    std::span<const Asn> asn_arena;
    std::span<const Asn> uniq_arena;
    std::span<const std::uint8_t> seg_types;
    std::span<const std::uint32_t> seg_counts;
    std::span<const std::uint32_t> asn_begin, asn_count;
    std::span<const std::uint32_t> seg_begin, seg_count;
    std::span<const std::uint32_t> uniq_begin, uniq_count;
    std::span<const std::uint64_t> hashes;
  };
  /// Rebuilds a table from exported columns: arenas are copied, metadata is
  /// re-assembled, and the dedup index is reseeded from the persisted
  /// hashes, so intern() of an already-known path returns its original id.
  /// Throws std::invalid_argument when the column shapes are inconsistent
  /// (mismatched per-path column lengths, spans outside the arenas, or an
  /// invalid segment type byte).
  [[nodiscard]] static PathTable from_columns(const ImportColumns& columns);

 private:
  /// One AS_PATH segment of an interned path: `count` ASN slots of `type`,
  /// consumed in order from the path's flattened ASN span.
  struct SegmentSpan {
    SegmentType type = SegmentType::kSequence;
    std::uint32_t count = 0;
  };
  struct Meta {
    std::uint32_t asn_begin = 0;   // into asn_arena_
    std::uint32_t asn_count = 0;
    std::uint32_t seg_begin = 0;   // into seg_arena_
    std::uint32_t seg_count = 0;
    std::uint32_t uniq_begin = 0;  // into uniq_arena_
    std::uint32_t uniq_count = 0;
    std::uint64_t hash = 0;
  };

  /// Structural equality between an interned path and a candidate.
  [[nodiscard]] bool equals(PathId id, const AsPath& path) const noexcept;

  /// Structural equality against a single-sequence candidate.
  [[nodiscard]] bool equals_sequence(PathId id,
                                     std::span<const Asn> sequence)
      const noexcept;

  /// Grows the probe table to `capacity` slots (a power of two) and
  /// re-seeds it from meta_.
  void rehash(std::size_t capacity);
  /// First probe slot for `hash` (finalizer over the FNV hash so nearby
  /// hashes do not cluster in the table).
  [[nodiscard]] std::size_t probe_start(std::uint64_t hash) const noexcept;

  std::vector<Asn> asn_arena_;          // all slots, path after path
  std::vector<SegmentSpan> seg_arena_;  // all segments, path after path
  std::vector<Asn> uniq_arena_;         // sorted unique ASNs, path after path
  std::vector<Meta> meta_;              // indexed by PathId
  // Open-addressing dedup index: a flat power-of-two slot array holding
  // PathIds (kEmptySlot marks free), probed linearly.  intern() is the
  // hottest call in streaming ingest — one flat array beats a node-based
  // map by keeping the whole probe sequence in one or two cache lines.
  // Structurally distinct paths sharing a hash simply occupy separate
  // slots (full equality is checked before a hit is returned).
  static constexpr PathId kEmptySlot = 0xffffffffu;
  std::vector<PathId> slots_;
  std::size_t slot_mask_ = 0;
};

/// Expands RIB entries into interned tuples against `table`: each route's
/// path is interned once, then referenced by every community it carries.
/// The result vector is reserve()d from a counting pre-pass.  This is the
/// single tuple-expansion helper behind ObservationIndex::from_entries and
/// both Pipeline entry points.
[[nodiscard]] std::vector<InternedTuple> intern_entries(
    PathTable& table, std::span<const RibEntry> entries);

/// Interns legacy materialized tuples (compat path for callers that still
/// hold PathCommunityTuple vectors).
[[nodiscard]] std::vector<InternedTuple> intern_tuples(
    PathTable& table, std::span<const PathCommunityTuple> tuples);

}  // namespace bgpintent::bgp
