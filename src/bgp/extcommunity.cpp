#include "bgp/extcommunity.hpp"

#include <cstdio>

#include "util/strings.hpp"

namespace bgpintent::bgp {

ExtCommunity ExtCommunity::route_target(std::uint16_t asn,
                                        std::uint32_t value) noexcept {
  return from_wire(static_cast<std::uint64_t>(kTypeTwoOctetAs) << 56 |
                   static_cast<std::uint64_t>(kSubtypeRouteTarget) << 48 |
                   static_cast<std::uint64_t>(asn) << 32 | value);
}

ExtCommunity ExtCommunity::route_origin(std::uint16_t asn,
                                        std::uint32_t value) noexcept {
  return from_wire(static_cast<std::uint64_t>(kTypeTwoOctetAs) << 56 |
                   static_cast<std::uint64_t>(kSubtypeRouteOrigin) << 48 |
                   static_cast<std::uint64_t>(asn) << 32 | value);
}

ExtCommunity ExtCommunity::route_target4(std::uint32_t asn,
                                         std::uint16_t value) noexcept {
  return from_wire(static_cast<std::uint64_t>(kTypeFourOctetAs) << 56 |
                   static_cast<std::uint64_t>(kSubtypeRouteTarget) << 48 |
                   static_cast<std::uint64_t>(asn) << 16 | value);
}

std::string ExtCommunity::to_string() const {
  if (base_type() == kTypeTwoOctetAs && subtype() == kSubtypeRouteTarget)
    return "rt:" + std::to_string(as2()) + ":" + std::to_string(local4());
  if (base_type() == kTypeTwoOctetAs && subtype() == kSubtypeRouteOrigin)
    return "ro:" + std::to_string(as2()) + ":" + std::to_string(local4());
  if (base_type() == kTypeFourOctetAs && subtype() == kSubtypeRouteTarget)
    return "rt4:" + std::to_string(as4()) + ":" + std::to_string(local2());
  char buf[24];
  std::snprintf(buf, sizeof buf, "ext:%016llx",
                static_cast<unsigned long long>(value_));
  return buf;
}

std::optional<ExtCommunity> ExtCommunity::parse(std::string_view text) noexcept {
  text = util::trim(text);
  const auto fields = util::split(text, ':');
  if (fields.size() == 3 && (fields[0] == "rt" || fields[0] == "ro")) {
    const auto asn = util::parse_u32(fields[1]);
    const auto value = util::parse_u32(fields[2]);
    if (!asn || !value || *asn > 0xffff) return std::nullopt;
    return fields[0] == "rt"
               ? route_target(static_cast<std::uint16_t>(*asn), *value)
               : route_origin(static_cast<std::uint16_t>(*asn), *value);
  }
  if (fields.size() == 3 && fields[0] == "rt4") {
    const auto asn = util::parse_u32(fields[1]);
    const auto value = util::parse_u32(fields[2]);
    if (!asn || !value || *value > 0xffff) return std::nullopt;
    return route_target4(*asn, static_cast<std::uint16_t>(*value));
  }
  if (fields.size() == 2 && fields[0] == "ext") {
    if (fields[1].size() != 16) return std::nullopt;
    std::uint64_t raw = 0;
    for (const char c : fields[1]) {
      int digit;
      if (c >= '0' && c <= '9')
        digit = c - '0';
      else if (c >= 'a' && c <= 'f')
        digit = c - 'a' + 10;
      else if (c >= 'A' && c <= 'F')
        digit = c - 'A' + 10;
      else
        return std::nullopt;
      raw = raw << 4 | static_cast<std::uint64_t>(digit);
    }
    return from_wire(raw);
  }
  return std::nullopt;
}

}  // namespace bgpintent::bgp
