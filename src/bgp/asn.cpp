#include "bgp/asn.hpp"

#include "util/strings.hpp"

namespace bgpintent::bgp {

std::string asn_to_string(Asn asn) { return std::to_string(asn); }

std::optional<Asn> parse_asn(std::string_view text) noexcept {
  return util::parse_u32(util::trim(text));
}

}  // namespace bgpintent::bgp
