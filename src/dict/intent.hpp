// The paper's taxonomy of BGP community meanings (Figure 2).
//
// The coarse split the method infers is Intent: a community either asks the
// owning AS to do something (action) or records metadata about the route
// (information).  Category is the fine-grained sub-type that dictionaries
// record; every category maps onto exactly one coarse intent.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

namespace bgpintent::dict {

/// Coarse community intent — the classification target of the paper.
enum class Intent : std::uint8_t {
  kAction,
  kInformation,
  /// Not classified: private-ASN alpha, never-on-path alpha (IXP route
  /// servers), or insufficient observations.
  kUnclassified,
};

/// Fine-grained categories following Figure 2 of the paper.
enum class Category : std::uint8_t {
  // --- Action: Suppress ---
  kNoExport,            ///< RFC 1997 NO_EXPORT / NO_ADVERTISE
  kNoPeer,              ///< RFC 3765 NOPEER
  kSuppressToAs,        ///< do not export to a given AS
  kSuppressInLocation,  ///< do not export in a given location
  // --- Action: Set attribute ---
  kBlackhole,         ///< RFC 7999 BLACKHOLE
  kGracefulShutdown,  ///< RFC 8326 GRACEFUL_SHUTDOWN
  kSetLocalPref,      ///< set LocalPref to N
  kPrepend,           ///< prepend owner ASN N times
  // --- Action: Announce ---
  kAnnounceToAs,        ///< selectively announce to a given AS
  kAnnounceInLocation,  ///< selectively announce in a given location
  kOtherAction,         ///< action without a finer label
  // --- Information: Location ---
  kLocationCity,     ///< received in city X
  kLocationCountry,  ///< received in country Y
  kLocationRegion,   ///< received in region Z (continent)
  // --- Information: Other ---
  kRovStatus,     ///< RPKI origin-validation outcome
  kRelationship,  ///< relationship with the sending neighbor
  kInterface,     ///< received on interface / ingress id
  kOtherInfo,     ///< information without a finer label
};

/// The coarse intent each category belongs to.
[[nodiscard]] constexpr Intent intent_of(Category category) noexcept {
  switch (category) {
    case Category::kNoExport:
    case Category::kNoPeer:
    case Category::kSuppressToAs:
    case Category::kSuppressInLocation:
    case Category::kBlackhole:
    case Category::kGracefulShutdown:
    case Category::kSetLocalPref:
    case Category::kPrepend:
    case Category::kAnnounceToAs:
    case Category::kAnnounceInLocation:
    case Category::kOtherAction:
      return Intent::kAction;
    case Category::kLocationCity:
    case Category::kLocationCountry:
    case Category::kLocationRegion:
    case Category::kRovStatus:
    case Category::kRelationship:
    case Category::kInterface:
    case Category::kOtherInfo:
      return Intent::kInformation;
  }
  return Intent::kUnclassified;
}

/// True for the location sub-categories targeted by Da Silva et al.
[[nodiscard]] constexpr bool is_location_category(Category category) noexcept {
  return category == Category::kLocationCity ||
         category == Category::kLocationCountry ||
         category == Category::kLocationRegion;
}

/// Stable lowercase token ("suppress_to_as"), used in the dictionary file
/// format and in bench output.
[[nodiscard]] std::string_view to_string(Category category) noexcept;
[[nodiscard]] std::string_view to_string(Intent intent) noexcept;

/// Inverse of to_string(Category); nullopt for unknown tokens.
[[nodiscard]] std::optional<Category> parse_category(
    std::string_view token) noexcept;

/// Inverse of to_string(Intent); nullopt for unknown tokens.
[[nodiscard]] std::optional<Intent> parse_intent(std::string_view token) noexcept;

}  // namespace bgpintent::dict
