// A curated built-in dictionary of publicly documented community values.
//
// Sources: the RFC well-known communities, and Arelion's published
// dictionary as described in the paper (Figures 1, 3 and §5.1).  It is
// intentionally small — real deployments should load the full assembled
// dictionary from disk — but it makes the examples and the looking-glass
// style route annotation work out of the box on real-world values.
#pragma once

#include "dict/dictionary.hpp"

namespace bgpintent::dict {

/// Returns a fresh store populated with the built-in entries.
[[nodiscard]] DictionaryStore builtin_dictionary();

/// Adds the RFC well-known communities (owner 65535) to `store`.
void add_wellknown_communities(DictionaryStore& store);

/// Adds Arelion (AS1299) entries documented in the paper to `store`.
void add_arelion_dictionary(DictionaryStore& store);

}  // namespace bgpintent::dict
