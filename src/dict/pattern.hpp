// Community value patterns.
//
// The paper summarizes each operator's contiguous community blocks with
// regular expressions over the decimal rendering of the beta value, e.g.
// 1299:[257]\d\d[1239] for Arelion's export-control block.  We implement
// exactly that subset — literal digits, \d, digit classes with ranges —
// plus an explicit numeric range form "2000-7999", which dictionaries in
// the wild (and our generator) use for wide blocks.
//
// Patterns are anchored: they must match the whole beta string (betas render
// without leading zeros).  Compilation throws util::ParseError on malformed
// input; matching is noexcept and allocation-free.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "bgp/community.hpp"

namespace bgpintent::dict {

/// A compiled pattern over 16-bit beta values.
class BetaPattern {
 public:
  /// Compiles "2569", "[257]\d\d[1239]", "430-431", etc.
  /// Throws util::ParseError on syntax errors or out-of-range bounds.
  [[nodiscard]] static BetaPattern compile(std::string_view text);

  /// True if the decimal rendering of `beta` matches.
  [[nodiscard]] bool matches(std::uint16_t beta) const noexcept;

  /// Smallest and largest beta that could match (inclusive).  For digit
  /// patterns this is the per-position min/max digit; unmatched values can
  /// still exist inside the bounds.
  [[nodiscard]] std::pair<std::uint16_t, std::uint16_t> bounds() const noexcept;

  /// All matching beta values, ascending.
  [[nodiscard]] std::vector<std::uint16_t> enumerate() const;

  /// The original pattern text.
  [[nodiscard]] const std::string& text() const noexcept { return text_; }

  friend bool operator==(const BetaPattern& a, const BetaPattern& b) noexcept {
    return a.text_ == b.text_;
  }

 private:
  /// One position of a digit pattern: a bitmask over digits 0-9.
  using DigitClass = std::uint16_t;

  struct DigitForm {
    std::vector<DigitClass> positions;
  };
  struct RangeForm {
    std::uint16_t lo;
    std::uint16_t hi;
  };

  std::string text_;
  std::variant<DigitForm, RangeForm> form_;
};

/// alpha:beta-pattern — a pattern over full communities of one owner AS.
class CommunityPattern {
 public:
  /// Compiles "1299:[257]\d\d[1239]" or "1299:2000-7999".
  /// Throws util::ParseError on malformed input.
  [[nodiscard]] static CommunityPattern compile(std::string_view text);

  [[nodiscard]] static CommunityPattern from_parts(std::uint16_t alpha,
                                                   BetaPattern beta);

  [[nodiscard]] std::uint16_t alpha() const noexcept { return alpha_; }
  [[nodiscard]] const BetaPattern& beta_pattern() const noexcept {
    return beta_;
  }

  [[nodiscard]] bool matches(bgp::Community c) const noexcept {
    return c.alpha() == alpha_ && beta_.matches(c.beta());
  }

  /// All communities the pattern covers, ascending by beta.
  [[nodiscard]] std::vector<bgp::Community> enumerate() const;

  /// "alpha:pattern-text".
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const CommunityPattern&,
                         const CommunityPattern&) noexcept = default;

 private:
  CommunityPattern(std::uint16_t alpha, BetaPattern beta)
      : alpha_(alpha), beta_(std::move(beta)) {}

  std::uint16_t alpha_ = 0;
  BetaPattern beta_ = BetaPattern::compile("0");
};

}  // namespace bgpintent::dict
