#include "dict/builtin.hpp"

namespace bgpintent::dict {

namespace {
void add(DictionaryStore& store, std::uint16_t alpha, const char* beta_pattern,
         Category category, const char* description) {
  store.dictionary_for(alpha).add(
      CommunityPattern::from_parts(alpha, BetaPattern::compile(beta_pattern)),
      category, description);
}
}  // namespace

void add_wellknown_communities(DictionaryStore& store) {
  // RFC 1997 / 3765 / 7999 / 8326 values live under alpha 65535.
  add(store, 65535, "0", Category::kGracefulShutdown,
      "GRACEFUL_SHUTDOWN (RFC 8326)");
  add(store, 65535, "666", Category::kBlackhole, "BLACKHOLE (RFC 7999)");
  add(store, 65535, "65281", Category::kNoExport, "NO_EXPORT (RFC 1997)");
  add(store, 65535, "65282", Category::kNoExport, "NO_ADVERTISE (RFC 1997)");
  add(store, 65535, "65283", Category::kNoExport,
      "NO_EXPORT_SUBCONFED (RFC 1997)");
  add(store, 65535, "65284", Category::kNoPeer, "NOPEER (RFC 3765)");
}

void add_arelion_dictionary(DictionaryStore& store) {
  // Arelion (AS1299) values documented publicly and cited in the paper.
  add(store, 1299, "50", Category::kSetLocalPref,
      "set local preference 50 (lowest)");
  add(store, 1299, "150", Category::kSetLocalPref,
      "set local preference 150");
  add(store, 1299, "43[01]", Category::kRovStatus,
      "RPKI origin validation status");
  add(store, 1299, "66[16]", Category::kBlackhole, "blackhole the prefix");
  add(store, 1299, "999", Category::kBlackhole, "blackhole (legacy value)");
  // Export control block 2000-7999: [257]xx{1,2,3} prepend 1-3 times,
  // [257]xx9 do not export; digit 1 selects Europe(2)/N.America(5)/Asia(7),
  // the middle two digits select the transit peer (Fig. 3).
  add(store, 1299, "[257]\\d\\d[123]", Category::kPrepend,
      "prepend 1299 1-3 times toward peer AS in region");
  add(store, 1299, "[257]\\d\\d9", Category::kSuppressToAs,
      "do not export to peer AS in region");
  add(store, 1299, "[257]\\d\\d0", Category::kAnnounceToAs,
      "announce to peer AS in region");
  // 10050-17150: regional local-pref control (action).
  add(store, 1299, "1[0-7]\\d\\d\\d", Category::kSetLocalPref,
      "set local preference in region");
  // 20000-39999: ingress location (information), e.g. 35130 = Boston, MA.
  add(store, 1299, "2\\d\\d\\d\\d", Category::kLocationCity,
      "route learned in city (2xxxx block)");
  add(store, 1299, "3\\d\\d\\d\\d", Category::kLocationCity,
      "route learned in city (3xxxx block)");
}

DictionaryStore builtin_dictionary() {
  DictionaryStore store;
  add_wellknown_communities(store);
  add_arelion_dictionary(store);
  return store;
}

}  // namespace bgpintent::dict
