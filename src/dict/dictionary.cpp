#include "dict/dictionary.hpp"

#include <algorithm>
#include <istream>
#include <ostream>

#include "util/strings.hpp"

namespace bgpintent::dict {

void AsDictionary::add(CommunityPattern pattern, Category category,
                       std::string description) {
  entries_.push_back(
      DictEntry{std::move(pattern), category, std::move(description)});
}

const DictEntry* AsDictionary::lookup(bgp::Community c) const noexcept {
  for (const auto& entry : entries_)
    if (entry.pattern.matches(c)) return &entry;
  return nullptr;
}

std::optional<Intent> AsDictionary::intent(bgp::Community c) const noexcept {
  const DictEntry* entry = lookup(c);
  if (entry == nullptr) return std::nullopt;
  return entry->intent();
}

std::vector<bgp::Community> AsDictionary::covered_communities() const {
  std::vector<bgp::Community> out;
  for (const auto& entry : entries_) {
    auto covered = entry.pattern.enumerate();
    out.insert(out.end(), covered.begin(), covered.end());
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

AsDictionary& DictionaryStore::dictionary_for(std::uint16_t asn) {
  auto [it, inserted] = dicts_.try_emplace(asn, AsDictionary(asn));
  return it->second;
}

const AsDictionary* DictionaryStore::find(std::uint16_t asn) const noexcept {
  auto it = dicts_.find(asn);
  return it == dicts_.end() ? nullptr : &it->second;
}

std::size_t DictionaryStore::entry_count() const noexcept {
  std::size_t n = 0;
  for (const auto& [asn, dict] : dicts_) n += dict.entries().size();
  return n;
}

const DictEntry* DictionaryStore::lookup(bgp::Community c) const noexcept {
  const AsDictionary* dict = find(c.alpha());
  return dict == nullptr ? nullptr : dict->lookup(c);
}

std::optional<Intent> DictionaryStore::intent(bgp::Community c) const noexcept {
  const DictEntry* entry = lookup(c);
  if (entry == nullptr) return std::nullopt;
  return entry->intent();
}

DictionaryStore::EntryCounts DictionaryStore::count_entries_by_intent()
    const noexcept {
  EntryCounts counts;
  for (const auto& [asn, dict] : dicts_)
    for (const auto& entry : dict.entries()) {
      if (entry.intent() == Intent::kAction)
        ++counts.action;
      else if (entry.intent() == Intent::kInformation)
        ++counts.information;
    }
  return counts;
}

void DictionaryStore::save(std::ostream& out) const {
  out << "# bgpintent dictionary: alpha|beta-pattern|category|description\n";
  for (const auto& [asn, dict] : dicts_)
    for (const auto& entry : dict.entries())
      out << asn << '|' << entry.pattern.beta_pattern().text() << '|'
          << to_string(entry.category) << '|' << entry.description << '\n';
}

void DictionaryStore::load(std::istream& in) {
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::string_view view = util::trim(line);
    if (view.empty() || view.front() == '#') continue;
    const auto fields = util::split(view, '|');
    if (fields.size() < 3)
      throw util::ParseError(
          util::format("dictionary line %zu: expected >=3 fields", line_no));
    const auto alpha = util::parse_u32(util::trim(fields[0]));
    if (!alpha || *alpha > 0xffff)
      throw util::ParseError(
          util::format("dictionary line %zu: bad alpha", line_no));
    const auto category = parse_category(util::trim(fields[2]));
    if (!category)
      throw util::ParseError(
          util::format("dictionary line %zu: unknown category", line_no));
    auto pattern = CommunityPattern::from_parts(
        static_cast<std::uint16_t>(*alpha),
        BetaPattern::compile(util::trim(fields[1])));
    std::string description =
        fields.size() > 3 ? std::string(util::trim(fields[3])) : std::string{};
    dictionary_for(static_cast<std::uint16_t>(*alpha))
        .add(std::move(pattern), *category, std::move(description));
  }
}

}  // namespace bgpintent::dict
