#include "dict/intent.hpp"

#include <array>
#include <utility>

namespace bgpintent::dict {

namespace {
constexpr std::array<std::pair<Category, std::string_view>, 18> kCategoryNames{{
    {Category::kNoExport, "no_export"},
    {Category::kNoPeer, "no_peer"},
    {Category::kSuppressToAs, "suppress_to_as"},
    {Category::kSuppressInLocation, "suppress_in_location"},
    {Category::kBlackhole, "blackhole"},
    {Category::kGracefulShutdown, "graceful_shutdown"},
    {Category::kSetLocalPref, "set_local_pref"},
    {Category::kPrepend, "prepend"},
    {Category::kAnnounceToAs, "announce_to_as"},
    {Category::kAnnounceInLocation, "announce_in_location"},
    {Category::kOtherAction, "other_action"},
    {Category::kLocationCity, "location_city"},
    {Category::kLocationCountry, "location_country"},
    {Category::kLocationRegion, "location_region"},
    {Category::kRovStatus, "rov_status"},
    {Category::kRelationship, "relationship"},
    {Category::kInterface, "interface"},
    {Category::kOtherInfo, "other_info"},
}};
}  // namespace

std::string_view to_string(Category category) noexcept {
  for (const auto& [cat, name] : kCategoryNames)
    if (cat == category) return name;
  return "?";
}

std::string_view to_string(Intent intent) noexcept {
  switch (intent) {
    case Intent::kAction: return "action";
    case Intent::kInformation: return "information";
    case Intent::kUnclassified: return "unclassified";
  }
  return "?";
}

std::optional<Category> parse_category(std::string_view token) noexcept {
  for (const auto& [cat, name] : kCategoryNames)
    if (name == token) return cat;
  return std::nullopt;
}

std::optional<Intent> parse_intent(std::string_view token) noexcept {
  if (token == "action") return Intent::kAction;
  if (token == "information") return Intent::kInformation;
  if (token == "unclassified") return Intent::kUnclassified;
  return std::nullopt;
}

}  // namespace bgpintent::dict
