// BGP community dictionaries: per-AS mappings from community patterns to
// meanings, mirroring what operators publish on their websites / in IRR
// records and what NLNOG aggregates.  Dictionaries serve two roles here:
//   1. ground truth for evaluating the inference method (§4 of the paper:
//      59 ASes, 199 information + 133 action regexes), and
//   2. a lookup facility for interpreting observed routes (examples/).
//
// Text format (pipe-separated, '#' comments):
//   alpha|beta-pattern|category|description
//   1299|[257]\d\d[1239]|suppress_to_as|Export control to transit peers
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "bgp/community.hpp"
#include "dict/intent.hpp"
#include "dict/pattern.hpp"

namespace bgpintent::dict {

/// One dictionary rule: a pattern and its meaning.
struct DictEntry {
  CommunityPattern pattern;
  Category category = Category::kOtherInfo;
  std::string description;

  [[nodiscard]] Intent intent() const noexcept { return intent_of(category); }
};

/// The community dictionary of a single AS.
class AsDictionary {
 public:
  AsDictionary() = default;
  explicit AsDictionary(std::uint16_t asn) : asn_(asn) {}

  [[nodiscard]] std::uint16_t asn() const noexcept { return asn_; }
  [[nodiscard]] const std::vector<DictEntry>& entries() const noexcept {
    return entries_;
  }
  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }

  /// Appends a rule.  Entries are consulted in insertion order; the first
  /// match wins, so put specific rules before broad ones.
  void add(CommunityPattern pattern, Category category,
           std::string description = {});

  /// First entry whose pattern matches, or nullptr.
  [[nodiscard]] const DictEntry* lookup(bgp::Community c) const noexcept;

  /// Convenience: the coarse intent of `c`, if covered.
  [[nodiscard]] std::optional<Intent> intent(bgp::Community c) const noexcept;

  /// Every community covered by any entry (deduplicated, ascending).
  [[nodiscard]] std::vector<bgp::Community> covered_communities() const;

 private:
  std::uint16_t asn_ = 0;
  std::vector<DictEntry> entries_;
};

/// A collection of per-AS dictionaries (the "assembled dictionary" of §4).
class DictionaryStore {
 public:
  /// Returns the dictionary for `asn`, creating an empty one if absent.
  [[nodiscard]] AsDictionary& dictionary_for(std::uint16_t asn);

  /// Returns the dictionary for `asn` or nullptr.
  [[nodiscard]] const AsDictionary* find(std::uint16_t asn) const noexcept;

  [[nodiscard]] std::size_t as_count() const noexcept { return dicts_.size(); }
  [[nodiscard]] std::size_t entry_count() const noexcept;

  [[nodiscard]] const std::map<std::uint16_t, AsDictionary>& all()
      const noexcept {
    return dicts_;
  }

  /// Looks up `c` in its owner's dictionary.
  [[nodiscard]] const DictEntry* lookup(bgp::Community c) const noexcept;
  [[nodiscard]] std::optional<Intent> intent(bgp::Community c) const noexcept;

  /// Number of entries per coarse intent (paper: 199 info / 133 action).
  struct EntryCounts {
    std::size_t information = 0;
    std::size_t action = 0;
  };
  [[nodiscard]] EntryCounts count_entries_by_intent() const noexcept;

  /// Serializes all entries in the pipe-separated text format.
  void save(std::ostream& out) const;

  /// Parses the text format, merging into this store.
  /// Throws util::ParseError on malformed lines.
  void load(std::istream& in);

 private:
  std::map<std::uint16_t, AsDictionary> dicts_;
};

}  // namespace bgpintent::dict
