#include "dict/pattern.hpp"

#include <algorithm>
#include <cctype>

#include "util/strings.hpp"

namespace bgpintent::dict {

namespace {

using util::ParseError;

bool is_digit(char c) noexcept { return c >= '0' && c <= '9'; }

/// Parses the body of a [...] class (without brackets) into a bitmask.
std::uint16_t parse_class(std::string_view body, std::string_view whole) {
  if (body.empty())
    throw ParseError("empty digit class in pattern: " + std::string(whole));
  std::uint16_t mask = 0;
  std::size_t i = 0;
  while (i < body.size()) {
    if (!is_digit(body[i]))
      throw ParseError("non-digit in class: " + std::string(whole));
    const int lo = body[i] - '0';
    int hi = lo;
    if (i + 2 < body.size() && body[i + 1] == '-') {
      if (!is_digit(body[i + 2]))
        throw ParseError("bad range in class: " + std::string(whole));
      hi = body[i + 2] - '0';
      i += 3;
    } else {
      i += 1;
    }
    if (hi < lo)
      throw ParseError("descending range in class: " + std::string(whole));
    for (int d = lo; d <= hi; ++d)
      mask = static_cast<std::uint16_t>(mask | (1u << d));
  }
  return mask;
}

/// True if the pattern text is a plain numeric range "lo-hi".
bool looks_like_range(std::string_view text) noexcept {
  const auto dash = text.find('-');
  if (dash == std::string_view::npos || dash == 0 || dash + 1 >= text.size())
    return false;
  for (std::size_t i = 0; i < text.size(); ++i)
    if (i != dash && !is_digit(text[i])) return false;
  return true;
}

}  // namespace

BetaPattern BetaPattern::compile(std::string_view text) {
  BetaPattern pattern;
  pattern.text_ = std::string(text);
  if (text.empty()) throw ParseError("empty beta pattern");

  if (looks_like_range(text)) {
    const auto dash = text.find('-');
    const auto lo = util::parse_u32(text.substr(0, dash));
    const auto hi = util::parse_u32(text.substr(dash + 1));
    if (!lo || !hi || *lo > 0xffff || *hi > 0xffff)
      throw ParseError("range bound out of [0,65535]: " + pattern.text_);
    if (*lo > *hi) throw ParseError("descending range: " + pattern.text_);
    pattern.form_ = RangeForm{static_cast<std::uint16_t>(*lo),
                              static_cast<std::uint16_t>(*hi)};
    return pattern;
  }

  DigitForm form;
  std::size_t i = 0;
  while (i < text.size()) {
    const char c = text[i];
    if (is_digit(c)) {
      form.positions.push_back(static_cast<DigitClass>(1u << (c - '0')));
      ++i;
    } else if (c == '\\') {
      if (i + 1 >= text.size() || text[i + 1] != 'd')
        throw ParseError("unsupported escape in pattern: " + pattern.text_);
      form.positions.push_back(0x3ff);  // all ten digits
      i += 2;
    } else if (c == '[') {
      const auto close = text.find(']', i);
      if (close == std::string_view::npos)
        throw ParseError("unterminated class in pattern: " + pattern.text_);
      form.positions.push_back(
          parse_class(text.substr(i + 1, close - i - 1), pattern.text_));
      i = close + 1;
    } else {
      throw ParseError("unsupported character in pattern: " + pattern.text_);
    }
  }
  if (form.positions.size() > 5)
    throw ParseError("pattern longer than any 16-bit value: " + pattern.text_);
  pattern.form_ = std::move(form);
  return pattern;
}

bool BetaPattern::matches(std::uint16_t beta) const noexcept {
  if (const auto* range = std::get_if<RangeForm>(&form_))
    return beta >= range->lo && beta <= range->hi;

  const auto& digits = std::get<DigitForm>(form_);
  // Render beta without allocating.
  char buf[5];
  int len = 0;
  std::uint16_t v = beta;
  do {
    buf[len++] = static_cast<char>('0' + v % 10);
    v = static_cast<std::uint16_t>(v / 10);
  } while (v != 0);
  if (static_cast<std::size_t>(len) != digits.positions.size()) return false;
  for (int i = 0; i < len; ++i) {
    const int digit = buf[len - 1 - i] - '0';
    if ((digits.positions[static_cast<std::size_t>(i)] & (1u << digit)) == 0)
      return false;
  }
  return true;
}

std::pair<std::uint16_t, std::uint16_t> BetaPattern::bounds() const noexcept {
  if (const auto* range = std::get_if<RangeForm>(&form_))
    return {range->lo, range->hi};
  const auto& digits = std::get<DigitForm>(form_);
  std::uint32_t lo = 0;
  std::uint32_t hi = 0;
  for (DigitClass mask : digits.positions) {
    int min_d = 0;
    int max_d = 9;
    while (min_d < 10 && (mask & (1u << min_d)) == 0) ++min_d;
    while (max_d >= 0 && (mask & (1u << max_d)) == 0) --max_d;
    lo = lo * 10 + static_cast<std::uint32_t>(min_d < 10 ? min_d : 0);
    hi = hi * 10 + static_cast<std::uint32_t>(max_d >= 0 ? max_d : 9);
  }
  lo = std::min<std::uint32_t>(lo, 0xffff);
  hi = std::min<std::uint32_t>(hi, 0xffff);
  return {static_cast<std::uint16_t>(lo), static_cast<std::uint16_t>(hi)};
}

std::vector<std::uint16_t> BetaPattern::enumerate() const {
  std::vector<std::uint16_t> out;
  const auto [lo, hi] = bounds();
  for (std::uint32_t beta = lo; beta <= hi; ++beta)
    if (matches(static_cast<std::uint16_t>(beta)))
      out.push_back(static_cast<std::uint16_t>(beta));
  return out;
}

CommunityPattern CommunityPattern::compile(std::string_view text) {
  const auto colon = text.find(':');
  if (colon == std::string_view::npos)
    throw util::ParseError("community pattern needs alpha: " +
                           std::string(text));
  const auto alpha = util::parse_u32(text.substr(0, colon));
  if (!alpha || *alpha > 0xffff)
    throw util::ParseError("bad alpha in pattern: " + std::string(text));
  return CommunityPattern(static_cast<std::uint16_t>(*alpha),
                          BetaPattern::compile(text.substr(colon + 1)));
}

CommunityPattern CommunityPattern::from_parts(std::uint16_t alpha,
                                              BetaPattern beta) {
  return CommunityPattern(alpha, std::move(beta));
}

std::vector<bgp::Community> CommunityPattern::enumerate() const {
  std::vector<bgp::Community> out;
  for (std::uint16_t beta : beta_.enumerate())
    out.emplace_back(alpha_, beta);
  return out;
}

std::string CommunityPattern::to_string() const {
  return std::to_string(alpha_) + ":" + beta_.text();
}

}  // namespace bgpintent::dict
