// Observation index: per-community path statistics extracted from BGP data.
//
// This is step 0 of the paper's method (§4/§5): reduce RIBs and updates to
// unique (AS path, community) tuples, then count, for every community
// alpha:beta, how many *unique* AS paths contain alpha (on-path) vs. do not
// (off-path).  Matching is optionally sibling-aware: a path containing any
// ASN of alpha's organization counts as on-path (CAIDA as2org in the paper,
// topo::OrgMap here).
//
// The index also accumulates the customer/peer/provider votes used by the
// alternative customer:peer feature the paper evaluates and rejects
// (Fig. 7): for each on-path observation, the relationship between alpha
// and the AS that follows it toward the origin.
//
// Interned core (docs/PERFORMANCE.md): inputs are interned into a
// bgp::PathTable first, so every unique AS path is hashed and scanned for
// its distinct ASNs exactly once, tuples are 8-byte (PathId, Community)
// records, and on-path membership — including the org-sibling expansion —
// is memoized per (path, alpha): a route carrying ten betas of one alpha
// resolves the on-path question once, not ten times.  Accumulators are
// plain PathId vectors deduplicated by sort+unique at merge time instead
// of per-community hash sets.
//
// Parallel construction (build_parallel, docs/THREADING.md): tuples are
// sharded by `alpha % shard_count`, so every community — and with it every
// on/off-path set and vote counter — is owned by exactly one shard and
// accumulated without locks.  Shards see their tuples in the original
// input order and the merge sorts stats by community, which makes the
// parallel index identical to the sequential one for any thread count.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <unordered_set>
#include <vector>

#include "bgp/path_table.hpp"
#include "bgp/route.hpp"
#include "rel/dataset.hpp"
#include "topo/org_map.hpp"

namespace bgpintent::util {
class ThreadPool;
}

namespace bgpintent::core {

using bgp::Asn;
using bgp::Community;

/// Per-community statistics over unique AS paths.
struct CommunityStats {
  Community community;
  std::size_t on_path_paths = 0;   ///< unique paths with alpha on-path
  std::size_t off_path_paths = 0;  ///< unique paths with alpha off-path
  // Relationship of the AS following alpha toward the origin (Fig. 7
  // feature), counted once per unique on-path path.
  std::size_t customer_votes = 0;
  std::size_t peer_votes = 0;
  std::size_t provider_votes = 0;

  [[nodiscard]] std::size_t total_paths() const noexcept {
    return on_path_paths + off_path_paths;
  }
  /// on:off ratio with the off count floored at 1 so it is always finite
  /// ("never off-path" is additionally captured by pure_on()).
  [[nodiscard]] double on_off_ratio() const noexcept {
    return static_cast<double>(on_path_paths) /
           static_cast<double>(off_path_paths == 0 ? 1 : off_path_paths);
  }
  [[nodiscard]] bool pure_on() const noexcept { return off_path_paths == 0; }
  [[nodiscard]] bool pure_off() const noexcept { return on_path_paths == 0; }
  /// customer:peer ratio, peer count floored at 1.
  [[nodiscard]] double customer_peer_ratio() const noexcept {
    return static_cast<double>(customer_votes) /
           static_cast<double>(peer_votes == 0 ? 1 : peer_votes);
  }

  friend bool operator==(const CommunityStats&,
                         const CommunityStats&) = default;
};

struct ObservationConfig {
  /// Count a path as on-path when a sibling of alpha appears (§5.2).
  bool sibling_aware = true;
};

class ObservationIndex {
 public:
  /// Builds the index from interned (path, community) tuples.  `orgs` may
  /// be null (no sibling awareness regardless of config); `relationships`
  /// may be null (customer/peer votes left at zero).  Only `paths` entries
  /// referenced by `tuples` contribute to the unique-path and
  /// ASN-on-path accounting.
  [[nodiscard]] static ObservationIndex build_interned(
      const bgp::PathTable& paths, std::span<const bgp::InternedTuple> tuples,
      const topo::OrgMap* orgs = nullptr,
      const rel::RelationshipDataset* relationships = nullptr,
      const ObservationConfig& config = {});

  /// Sharded parallel build on `pool`; the result is identical to
  /// build_interned() for any pool size (see the file comment for the
  /// sharding argument).  Falls back to the sequential path on a
  /// single-worker pool.
  [[nodiscard]] static ObservationIndex build_parallel_interned(
      const bgp::PathTable& paths, std::span<const bgp::InternedTuple> tuples,
      util::ThreadPool& pool, const topo::OrgMap* orgs = nullptr,
      const rel::RelationshipDataset* relationships = nullptr,
      const ObservationConfig& config = {});

  /// Compat: interns materialized tuples, then runs the interned build.
  [[nodiscard]] static ObservationIndex build(
      std::span<const bgp::PathCommunityTuple> tuples,
      const topo::OrgMap* orgs = nullptr,
      const rel::RelationshipDataset* relationships = nullptr,
      const ObservationConfig& config = {});

  /// Compat: interns materialized tuples, then runs the parallel build.
  [[nodiscard]] static ObservationIndex build_parallel(
      std::span<const bgp::PathCommunityTuple> tuples, util::ThreadPool& pool,
      const topo::OrgMap* orgs = nullptr,
      const rel::RelationshipDataset* relationships = nullptr,
      const ObservationConfig& config = {});

  /// Convenience: intern RIB entries (bgp::intern_entries — each route's
  /// path once, one record per carried community) and build.
  [[nodiscard]] static ObservationIndex from_entries(
      std::span<const bgp::RibEntry> entries,
      const topo::OrgMap* orgs = nullptr,
      const rel::RelationshipDataset* relationships = nullptr,
      const ObservationConfig& config = {});

  [[nodiscard]] const CommunityStats* find(Community community) const noexcept;

  /// All stats, ascending by community.
  [[nodiscard]] const std::vector<CommunityStats>& all() const noexcept {
    return stats_;
  }

  /// The contiguous run of stats belonging to `alpha` (stats_ is sorted by
  /// community = (alpha, beta)), without allocating.  Empty span when the
  /// alpha was never observed.  cluster/classify iterate this instead of
  /// materializing beta vectors per call.
  [[nodiscard]] std::span<const CommunityStats> alpha_range(
      std::uint16_t alpha) const noexcept;

  /// Distinct observed beta values of `alpha`, ascending.
  [[nodiscard]] std::vector<std::uint16_t> observed_betas(
      std::uint16_t alpha) const;

  /// Distinct alphas observed, ascending.
  [[nodiscard]] std::vector<std::uint16_t> alphas() const;

  /// True if `alpha` (or, when sibling-aware, any sibling) appears in at
  /// least one AS path of the dataset — the §5.2 exclusion check that
  /// keeps transparent IXP route servers out of classification.
  [[nodiscard]] bool alpha_on_any_path(std::uint16_t alpha) const;

  [[nodiscard]] std::size_t community_count() const noexcept {
    return stats_.size();
  }
  [[nodiscard]] std::size_t unique_path_count() const noexcept {
    return unique_paths_;
  }

 private:
  // Build-time helper (observations.cpp) that assembles the index from
  // per-shard accumulation state.
  friend struct ObservationBuilder;

  std::vector<CommunityStats> stats_;          // sorted by community
  std::unordered_set<Asn> asns_on_paths_;      // every ASN seen in any path
  const topo::OrgMap* orgs_ = nullptr;         // for sibling queries
  bool sibling_aware_ = true;
  std::size_t unique_paths_ = 0;
};

}  // namespace bgpintent::core
