#include "core/pipeline.hpp"

#include "mrt/mrt_file.hpp"
#include "util/thread_pool.hpp"

namespace bgpintent::core {

PipelineResult Pipeline::run(
    std::span<const bgp::PathCommunityTuple> tuples) const {
  if (util::ThreadPool::resolve(config_.threads) <= 1) {
    // Sequential reference path: no pool, no sharding.
    PipelineResult result;
    result.observations = ObservationIndex::build(tuples, orgs_,
                                                  relationships_,
                                                  config_.observation);
    result.inference = classify(result.observations, config_.classifier);
    return result;
  }
  util::ThreadPool pool(config_.threads);
  return run_on_pool(tuples, pool);
}

PipelineResult Pipeline::run_on_pool(
    std::span<const bgp::PathCommunityTuple> tuples,
    util::ThreadPool& pool) const {
  PipelineResult result;
  result.observations = ObservationIndex::build_parallel(
      tuples, pool, orgs_, relationships_, config_.observation);
  result.inference = classify(result.observations, config_.classifier, &pool);
  return result;
}

PipelineResult Pipeline::run(std::span<const bgp::RibEntry> entries) const {
  // Tuple expansion is a cheap copy pass; both paths share it so entry
  // and tuple inputs stay equivalent.
  std::vector<bgp::PathCommunityTuple> tuples;
  for (const bgp::RibEntry& entry : entries)
    for (const Community community : entry.route.communities)
      tuples.push_back(bgp::PathCommunityTuple{entry.route.path, community, 1});
  return run(tuples);
}

PipelineResult Pipeline::run_mrt(std::istream& in) const {
  mrt::DecodeReport report;
  if (util::ThreadPool::resolve(config_.threads) <= 1) {
    const std::vector<bgp::RibEntry> entries =
        mrt::read_rib_entries(in, config_.decode, &report);
    PipelineResult result = run(entries);
    result.decode_report = std::move(report);
    return result;
  }
  // One pool serves all three stages: chunked decode, sharded indexing,
  // per-alpha classification.
  util::ThreadPool pool(config_.threads);
  const std::vector<bgp::RibEntry> entries =
      mrt::read_rib_entries_parallel(in, pool, config_.decode, &report);
  std::vector<bgp::PathCommunityTuple> tuples;
  for (const bgp::RibEntry& entry : entries)
    for (const Community community : entry.route.communities)
      tuples.push_back(bgp::PathCommunityTuple{entry.route.path, community, 1});
  PipelineResult result = run_on_pool(tuples, pool);
  result.decode_report = std::move(report);
  return result;
}

}  // namespace bgpintent::core
