#include "core/pipeline.hpp"

#include "mrt/mrt_file.hpp"

namespace bgpintent::core {

PipelineResult Pipeline::run(
    std::span<const bgp::PathCommunityTuple> tuples) const {
  PipelineResult result;
  result.observations = ObservationIndex::build(tuples, orgs_, relationships_,
                                                config_.observation);
  result.inference = classify(result.observations, config_.classifier);
  return result;
}

PipelineResult Pipeline::run(std::span<const bgp::RibEntry> entries) const {
  PipelineResult result;
  result.observations = ObservationIndex::from_entries(
      entries, orgs_, relationships_, config_.observation);
  result.inference = classify(result.observations, config_.classifier);
  return result;
}

PipelineResult Pipeline::run_mrt(std::istream& in) const {
  const std::vector<bgp::RibEntry> entries = mrt::read_rib_entries(in);
  return run(entries);
}

}  // namespace bgpintent::core
