#include "core/pipeline.hpp"

#include "core/ingest.hpp"
#include "mrt/mrt_file.hpp"
#include "util/thread_pool.hpp"

namespace bgpintent::core {

// Every entry point funnels through the same shape: intern paths once
// (bgp::PathTable), expand routes into 8-byte (PathId, community) records,
// then hand the interned stream to the observation/classification stages.
// Interning is a single sequential pass — it is bound by the same memory
// stream as reading the input, and it is what makes the later stages cheap
// (docs/PERFORMANCE.md).

PipelineResult Pipeline::run_interned(
    const bgp::PathTable& paths, std::span<const bgp::InternedTuple> tuples,
    util::ThreadPool* pool) const {
  PipelineResult result;
  if (pool == nullptr) {
    // Sequential reference path: no pool, no sharding.
    result.observations = ObservationIndex::build_interned(
        paths, tuples, orgs_, relationships_, config_.observation);
    result.inference = classify(result.observations, config_.classifier);
    return result;
  }
  result.observations = ObservationIndex::build_parallel_interned(
      paths, tuples, *pool, orgs_, relationships_, config_.observation);
  result.inference = classify(result.observations, config_.classifier, pool);
  return result;
}

PipelineResult Pipeline::run(
    std::span<const bgp::PathCommunityTuple> tuples) const {
  bgp::PathTable paths;
  const std::vector<bgp::InternedTuple> interned =
      bgp::intern_tuples(paths, tuples);
  if (util::ThreadPool::resolve(config_.threads) <= 1)
    return run_interned(paths, interned, nullptr);
  util::ThreadPool pool(config_.threads);
  return run_interned(paths, interned, &pool);
}

PipelineResult Pipeline::run(std::span<const bgp::RibEntry> entries) const {
  bgp::PathTable paths;
  const std::vector<bgp::InternedTuple> tuples =
      bgp::intern_entries(paths, entries);
  PipelineResult result;
  if (util::ThreadPool::resolve(config_.threads) <= 1) {
    result = run_interned(paths, tuples, nullptr);
  } else {
    util::ThreadPool pool(config_.threads);
    result = run_interned(paths, tuples, &pool);
  }
  result.entries_ingested = entries.size();
  return result;
}

PipelineResult Pipeline::run(const MrtIngest& ingest) const {
  PipelineResult result;
  if (util::ThreadPool::resolve(config_.threads) <= 1) {
    result = run_interned(ingest.paths(), ingest.tuples(), nullptr);
  } else {
    util::ThreadPool pool(config_.threads);
    result = run_interned(ingest.paths(), ingest.tuples(), &pool);
  }
  result.decode_report = ingest.report();
  result.entries_ingested = ingest.entries();
  return result;
}

PipelineResult Pipeline::run_mrt(std::istream& in) const {
  MrtIngest ingest(config_.decode);
  if (util::ThreadPool::resolve(config_.threads) <= 1) {
    ingest.add(in);
    PipelineResult result = run_interned(ingest.paths(), ingest.tuples(),
                                         nullptr);
    result.decode_report = ingest.report();
    result.entries_ingested = ingest.entries();
    return result;
  }
  // One pool serves all three stages: chunked decode+intern, sharded
  // indexing, per-alpha classification.
  util::ThreadPool pool(config_.threads);
  ingest.add_parallel(in, pool);
  PipelineResult result = run_interned(ingest.paths(), ingest.tuples(), &pool);
  result.decode_report = ingest.report();
  result.entries_ingested = ingest.entries();
  return result;
}

PipelineResult Pipeline::run_mrt(const mrt::ByteSource& source) const {
  MrtIngest ingest(config_.decode);
  if (util::ThreadPool::resolve(config_.threads) <= 1) {
    ingest.add(source);
    PipelineResult result = run_interned(ingest.paths(), ingest.tuples(),
                                         nullptr);
    result.decode_report = ingest.report();
    result.entries_ingested = ingest.entries();
    return result;
  }
  util::ThreadPool pool(config_.threads);
  ingest.add_parallel(source, pool);
  PipelineResult result = run_interned(ingest.paths(), ingest.tuples(), &pool);
  result.decode_report = ingest.report();
  result.entries_ingested = ingest.entries();
  return result;
}

}  // namespace bgpintent::core
